(* Tests for the message-level protocols (Chord.Protocol and
   Hieras.Hprotocol) on the event simulator: join convergence against the
   oracle fixpoint, lookup correctness, failure healing, message loss and
   ring-table maintenance. *)

module Id = Hashid.Id
module Engine = Simnet.Engine
module CP = Chord.Protocol
module HP = Hieras.Hprotocol

let space = Id.space ~bits:32

let make_world ?(hosts = 24) seed =
  let rng = Prng.Rng.create ~seed in
  let lat = Topology.Transit_stub.generate ~hosts rng in
  let latency a b = Topology.Latency.host_latency lat a b in
  (lat, Engine.create ~latency ~nodes:hosts)

let ids n = Array.init n (fun i -> Id.of_hash space (Printf.sprintf "proto-%d" i))

let oracle n =
  Chord.Network.of_ids ~space ~ids:(ids n) ~hosts:(Array.init n (fun i -> i)) ()

(* rotate a cycle list so it starts at its smallest element, for comparison *)
let canonical cycle =
  match cycle with
  | [] -> []
  | _ ->
      let m = List.fold_left min (List.hd cycle) cycle in
      let rec rot = function
        | x :: rest when x = m -> (x :: rest) @ []
        | x :: rest -> rot (rest @ [ x ])
        | [] -> []
      in
      rot cycle

let expected_ring n =
  canonical (List.sort (fun a b -> Id.compare (ids n).(a) (ids n).(b)) (List.init n (fun i -> i)))

(* --- Chord protocol ---------------------------------------------------------- *)

let build_chord ?(hosts = 24) seed =
  let _, eng = make_world ~hosts seed in
  let p = CP.create (CP.default_config space) eng in
  let id = ids hosts in
  CP.spawn p ~addr:0 ~id:id.(0);
  for i = 1 to hosts - 1 do
    Engine.schedule eng ~delay:(float_of_int i *. 250.0) (fun () ->
        CP.join p ~addr:i ~id:id.(i) ~bootstrap:0)
  done;
  Engine.run ~until:120_000.0 eng;
  (eng, p)

let test_chord_ring_converges () =
  let n = 24 in
  let _, p = build_chord 1 in
  let ring = canonical (CP.ring_from p 0) in
  Alcotest.(check (list int)) "ring equals oracle order" (expected_ring n) ring

let test_chord_predecessors_converge () =
  let n = 16 in
  let _, p = build_chord ~hosts:n 2 in
  let net = oracle n in
  (* protocol node addr i has oracle index: position of its id *)
  let pos = Hashtbl.create 16 in
  for i = 0 to n - 1 do
    Hashtbl.replace pos (Chord.Network.id net i) i
  done;
  for addr = 0 to n - 1 do
    match CP.predecessor_addr p addr with
    | None -> Alcotest.fail "predecessor unset after convergence"
    | Some paddr ->
        let i = Hashtbl.find pos (CP.node_id p addr) in
        let expect_pred = Chord.Network.id net (Chord.Network.predecessor net i) in
        Alcotest.(check bool) "predecessor id matches oracle" true
          (Id.equal expect_pred (CP.node_id p paddr))
  done

let test_chord_successor_lists () =
  let n = 16 in
  let _, p = build_chord ~hosts:n 3 in
  for addr = 0 to n - 1 do
    let sl = CP.successor_list_addrs p addr in
    Alcotest.(check bool) "non-empty" true (sl <> []);
    Alcotest.(check bool) "bounded" true (List.length sl <= (CP.config p).CP.succ_list_len);
    Alcotest.(check bool) "self not in list" true (not (List.mem addr sl))
  done

let test_chord_lookups_correct () =
  let n = 24 in
  let eng, p = build_chord 4 in
  let net = oracle n in
  let rng = Prng.Rng.create ~seed:5 in
  let ok = ref 0 in
  let total = 100 in
  for _ = 1 to total do
    let key = Id.random space rng in
    let origin = Prng.Rng.int rng n in
    let expect = Chord.Network.id net (Chord.Network.successor_of_key net key) in
    CP.lookup p ~origin ~key (fun r ->
        match r with
        | Some o when Id.equal o.CP.owner_id expect -> incr ok
        | _ -> ())
  done;
  Engine.run ~until:400_000.0 eng;
  Alcotest.(check int) "all lookups correct" total !ok

let test_chord_heals_after_failures () =
  let n = 24 in
  let eng, p = build_chord 6 in
  List.iter (CP.fail_node p) [ 2; 9; 17 ];
  Engine.run ~until:400_000.0 eng;
  let ring = CP.ring_from p 0 in
  Alcotest.(check int) "survivors form a full ring" (n - 3) (List.length ring);
  Alcotest.(check bool) "dead nodes not in ring" true
    (not (List.exists (fun a -> List.mem a [ 2; 9; 17 ]) ring));
  (* lookups still resolve to live successors *)
  let rng = Prng.Rng.create ~seed:7 in
  let answered = ref 0 in
  for _ = 1 to 50 do
    let key = Id.random space rng in
    CP.lookup p ~origin:0 ~key (fun r -> if r <> None then incr answered)
  done;
  Engine.run ~until:900_000.0 eng;
  Alcotest.(check bool) "most lookups answered" true (!answered >= 45)

let test_chord_survives_message_loss () =
  let n = 16 in
  let _, eng = make_world ~hosts:n 8 in
  Engine.set_loss eng ~rate:0.05 ~rng:(Prng.Rng.create ~seed:9);
  let p = CP.create (CP.default_config space) eng in
  let id = ids n in
  CP.spawn p ~addr:0 ~id:id.(0);
  for i = 1 to n - 1 do
    Engine.schedule eng ~delay:(float_of_int i *. 400.0) (fun () ->
        CP.join p ~addr:i ~id:id.(i) ~bootstrap:0)
  done;
  Engine.run ~until:300_000.0 eng;
  let ring = canonical (CP.ring_from p 0) in
  Alcotest.(check (list int)) "ring converges despite loss" (expected_ring n) ring

let test_chord_rejects_duplicate_addr () =
  let _, eng = make_world 10 in
  let p = CP.create (CP.default_config space) eng in
  CP.spawn p ~addr:0 ~id:(ids 1).(0);
  Alcotest.check_raises "addr reuse" (Invalid_argument "Chord.Protocol: address already in use")
    (fun () -> CP.spawn p ~addr:0 ~id:(ids 1).(0))

let test_chord_single_node_lookup () =
  let _, eng = make_world 11 in
  let p = CP.create (CP.default_config space) eng in
  let id = (ids 1).(0) in
  CP.spawn p ~addr:0 ~id;
  let got = ref None in
  CP.lookup p ~origin:0 ~key:(Id.of_int space 12345) (fun r -> got := r);
  Engine.run ~until:60_000.0 eng;
  match !got with
  | Some o -> Alcotest.(check bool) "owns everything" true (Id.equal o.CP.owner_id id)
  | None -> Alcotest.fail "lookup unanswered"

(* --- HIERAS protocol ------------------------------------------------------------- *)

let build_hieras ?(hosts = 24) ?(depth = 2) ?(landmarks = 3) ?(loss = 0.0) seed =
  let lat, eng = make_world ~hosts seed in
  if loss > 0.0 then Engine.set_loss eng ~rate:loss ~rng:(Prng.Rng.create ~seed:(seed + 1));
  let lm = Binning.Landmark.choose_spread lat ~count:landmarks (Prng.Rng.create ~seed:(seed + 2)) in
  let p = HP.create (HP.default_config space ~depth) eng ~lat ~landmarks:lm in
  let id = ids hosts in
  HP.spawn p ~addr:0 ~id:id.(0);
  for i = 1 to hosts - 1 do
    Engine.schedule eng ~delay:(float_of_int i *. 400.0) (fun () ->
        HP.join p ~addr:i ~id:id.(i) ~bootstrap:0)
  done;
  Engine.run ~until:200_000.0 eng;
  (lat, eng, p)

let test_hieras_global_ring_converges () =
  let n = 24 in
  let _, _, p = build_hieras 20 in
  Alcotest.(check (list int)) "global ring equals oracle"
    (expected_ring n)
    (canonical (HP.ring_from p 0 ~layer:1))

let test_hieras_layer2_rings_partition () =
  let n = 24 in
  let _, _, p = build_hieras 21 in
  let orders = List.init n (fun i -> HP.order_of p i ~layer:2) in
  let distinct = List.sort_uniq compare orders in
  Alcotest.(check bool) "more than one ring" true (List.length distinct > 1);
  List.iter
    (fun o ->
      let members =
        List.filteri (fun i _ -> List.nth orders i = o) (List.init n (fun i -> i))
      in
      let cycle = HP.ring_from p (List.hd members) ~layer:2 in
      Alcotest.(check (list int)) ("ring " ^ o) (List.sort compare members)
        (List.sort compare cycle))
    distinct

let test_hieras_lookups_correct () =
  let n = 24 in
  let _, eng, p = build_hieras 22 in
  let net = oracle n in
  let rng = Prng.Rng.create ~seed:23 in
  let ok = ref 0 and lower_used = ref 0 in
  let total = 100 in
  for _ = 1 to total do
    let key = Id.random space rng in
    let origin = Prng.Rng.int rng n in
    let expect = Chord.Network.id net (Chord.Network.successor_of_key net key) in
    HP.lookup p ~origin ~key (fun r ->
        match r with
        | Some o ->
            if Id.equal o.HP.owner_id expect then incr ok;
            if o.HP.lower_hops > 0 then incr lower_used
        | None -> ())
  done;
  Engine.run ~until:600_000.0 eng;
  Alcotest.(check int) "all lookups correct" total !ok;
  Alcotest.(check bool) "lower layers actually used" true (!lower_used > total / 4)

let test_hieras_ring_tables_present () =
  let n = 24 in
  let _, _, p = build_hieras 24 in
  let orders = List.sort_uniq compare (List.init n (fun i -> HP.order_of p i ~layer:2)) in
  List.iter
    (fun o ->
      match HP.find_ring_table p (Hieras.Ring_name.make ~layer:2 ~order:o) with
      | None -> Alcotest.fail ("missing ring table for " ^ o)
      | Some (_, rt) ->
          Alcotest.(check bool) "table non-empty" false (Hieras.Ring_table.is_empty rt))
    orders

let test_hieras_depth3 () =
  let n = 20 in
  let _, eng, p = build_hieras ~hosts:n ~depth:3 25 in
  let net = oracle n in
  let rng = Prng.Rng.create ~seed:26 in
  let ok = ref 0 in
  for _ = 1 to 50 do
    let key = Id.random space rng in
    let origin = Prng.Rng.int rng n in
    let expect = Chord.Network.id net (Chord.Network.successor_of_key net key) in
    HP.lookup p ~origin ~key (fun r ->
        match r with Some o when Id.equal o.HP.owner_id expect -> incr ok | _ -> ())
  done;
  Engine.run ~until:600_000.0 eng;
  Alcotest.(check int) "depth-3 lookups correct" 50 !ok;
  (* layer-3 rings nest inside layer-2 rings *)
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if HP.order_of p i ~layer:3 = HP.order_of p j ~layer:3 then
        Alcotest.(check string) "nesting" (HP.order_of p i ~layer:2) (HP.order_of p j ~layer:2)
    done
  done

let test_hieras_heals_after_failures () =
  let n = 24 in
  let _, eng, p = build_hieras 27 in
  List.iter (HP.fail_node p) [ 3; 11; 19 ];
  Engine.run ~until:700_000.0 eng;
  let ring = HP.ring_from p 0 ~layer:1 in
  Alcotest.(check int) "global ring heals" (n - 3) (List.length ring);
  (* layer-2 rings heal too: every live node's layer-2 cycle contains only
     live nodes of its order *)
  let live = HP.live_members p in
  List.iter
    (fun a ->
      let cycle = HP.ring_from p a ~layer:2 in
      List.iter
        (fun m ->
          Alcotest.(check bool) "cycle members alive" true (List.mem m live);
          Alcotest.(check string) "same order" (HP.order_of p a ~layer:2)
            (HP.order_of p m ~layer:2))
        cycle)
    live

let test_hieras_ring_table_failure_recovery () =
  let n = 24 in
  let _, eng, p = build_hieras 28 in
  (* kill one recorded extreme of some ring; the manager's duty cycle must
     expunge it from the table *)
  let orders = List.sort_uniq compare (List.init n (fun i -> HP.order_of p i ~layer:2)) in
  let victim_order =
    List.find (fun o -> List.length (List.filter (fun i -> HP.order_of p i ~layer:2 = o) (List.init n (fun i -> i))) >= 3) orders
  in
  let rn = Hieras.Ring_name.make ~layer:2 ~order:victim_order in
  let victim =
    match HP.find_ring_table p rn with
    | Some (_, rt) -> (
        match Hieras.Ring_table.any_member rt with
        | Some e -> e.Hieras.Ring_table.node
        | None -> Alcotest.fail "empty table")
    | None -> Alcotest.fail "table missing"
  in
  HP.fail_node p victim;
  Engine.run ~until:800_000.0 eng;
  (match HP.find_ring_table p rn with
  | Some (_, rt) ->
      Alcotest.(check bool) "victim expunged" true
        (not (List.exists (fun e -> e.Hieras.Ring_table.node = victim) (Hieras.Ring_table.entries rt)));
      Alcotest.(check bool) "table refilled" false (Hieras.Ring_table.is_empty rt)
  | None -> Alcotest.fail "table lost")

let test_hieras_ring_table_replication () =
  let n = 24 in
  let _, eng, p = build_hieras 40 in
  (* replicas appear after a few duty cycles *)
  let replicas_exist =
    List.exists (fun a -> HP.replica_ring_tables p a <> []) (HP.live_members p)
  in
  Alcotest.(check bool) "replicas pushed" true replicas_exist;
  (* kill a manager that stores at least one table; its tables must reappear
     elsewhere (replica promotion or ring_refresh recreation) *)
  let manager =
    List.find (fun a -> a <> 0 && HP.stored_ring_tables p a <> []) (HP.live_members p)
  in
  let lost = List.map Hieras.Ring_table.name (HP.stored_ring_tables p manager) in
  HP.fail_node p manager;
  Engine.run ~until:900_000.0 eng;
  List.iter
    (fun rname ->
      (* only rings that still have live members must recover their table *)
      let order = Hieras.Ring_name.order rname in
      let still_populated =
        List.exists
          (fun a -> HP.order_of p a ~layer:(Hieras.Ring_name.layer rname) = order)
          (HP.live_members p)
      in
      if still_populated then
        match HP.find_ring_table p rname with
        | Some (holder, rt) ->
            Alcotest.(check bool) "recovered table non-empty" false
              (Hieras.Ring_table.is_empty rt);
            Alcotest.(check bool) "held by a live node" true
              (List.mem holder (HP.live_members p))
        | None -> Alcotest.fail ("table lost for ring " ^ Hieras.Ring_name.to_string rname))
    lost;
  ignore n

let test_hieras_survives_message_loss () =
  let n = 16 in
  let _, eng, p = build_hieras ~hosts:n ~loss:0.03 29 in
  Engine.run ~until:400_000.0 eng;
  Alcotest.(check (list int)) "global ring converges despite loss" (expected_ring n)
    (canonical (HP.ring_from p 0 ~layer:1))

let test_hieras_concurrent_joins_unify_rings () =
  (* all nodes join nearly simultaneously: the ring-refresh duty must merge
     the private rings that stale ring tables produce *)
  let n = 16 in
  let lat, eng = make_world ~hosts:n 30 in
  let lm = Binning.Landmark.choose_spread lat ~count:3 (Prng.Rng.create ~seed:31) in
  let p = HP.create (HP.default_config space ~depth:2) eng ~lat ~landmarks:lm in
  let id = ids n in
  HP.spawn p ~addr:0 ~id:id.(0);
  for i = 1 to n - 1 do
    Engine.schedule eng ~delay:(10.0 +. float_of_int i) (fun () ->
        HP.join p ~addr:i ~id:id.(i) ~bootstrap:0)
  done;
  Engine.run ~until:300_000.0 eng;
  let orders = List.init n (fun i -> HP.order_of p i ~layer:2) in
  List.iter
    (fun o ->
      let members =
        List.filteri (fun i _ -> List.nth orders i = o) (List.init n (fun i -> i))
      in
      let cycle = HP.ring_from p (List.hd members) ~layer:2 in
      Alcotest.(check (list int)) ("unified ring " ^ o) (List.sort compare members)
        (List.sort compare cycle))
    (List.sort_uniq compare orders)

(* --- protocol conformance ----------------------------------------------------
   The analytic networks (Chord.Network, and per-ring restrictions of it) are
   the fixpoint the maintenance machinery is supposed to reach. These tests
   demand byte-for-byte agreement at convergence: every node's successor list
   and every conceptual finger slot of the message-level protocol must equal
   the analytic table built over the same (id, address) population — not just
   "a correct ring", the *same* ring. *)

let oracle_of_members ~succ_list_len idf members =
  let members = Array.of_list members in
  Chord.Network.of_ids ~space ~ids:(Array.map idf members) ~hosts:members ~succ_list_len ()

let oracle_index net ~n addr =
  let rec go i =
    if i >= n then Alcotest.fail (Printf.sprintf "addr %d not in oracle" addr)
    else if Chord.Network.host net i = addr then i
    else go (i + 1)
  in
  go 0

let oracle_succ_addrs net ~n addr =
  Chord.Network.successor_list net (oracle_index net ~n addr)
  |> Array.to_list
  |> List.map (Chord.Network.host net)

let oracle_finger_addrs net ~n addr =
  let ft = Chord.Network.finger_table net (oracle_index net ~n addr) in
  Array.init (Id.bits space) (fun k -> Chord.Network.host net (Chord.Finger_table.finger ft k))

let check_fingers ~what expect got =
  Array.iteri
    (fun k e ->
      match got.(k) with
      | Some a -> Alcotest.(check int) (Printf.sprintf "%s finger %d" what k) e a
      | None -> Alcotest.fail (Printf.sprintf "%s finger %d unset at convergence" what k))
    expect

let test_chord_conforms_to_network () =
  let n = 16 in
  let _, p = build_chord ~hosts:n 33 in
  let sll = (CP.config p).CP.succ_list_len in
  let net = oracle_of_members ~succ_list_len:sll (CP.node_id p) (List.init n (fun i -> i)) in
  Alcotest.(check bool) "detector agrees the ring is converged" true (CP.converged p);
  for addr = 0 to n - 1 do
    let what = Printf.sprintf "node %d" addr in
    Alcotest.(check (list int))
      (what ^ " successor list")
      (oracle_succ_addrs net ~n addr)
      (CP.successor_list_addrs p addr);
    check_fingers ~what (oracle_finger_addrs net ~n addr) (CP.finger_addrs p addr)
  done

let test_hieras_conforms_per_layer () =
  let n = 24 and depth = 2 in
  let _, _, p = build_hieras ~hosts:n ~depth 34 in
  let sll = (HP.config p).HP.succ_list_len in
  Alcotest.(check bool) "all layers converged" true (HP.converged p);
  for layer = 1 to depth do
    (* partition the membership into this layer's rings; layer 1 is the one
       global ring (order_of is undefined there), deeper layers split by
       landmark order *)
    let order_of i = if layer = 1 then "global" else HP.order_of p i ~layer in
    let orders = List.sort_uniq compare (List.init n order_of) in
    List.iter
      (fun o ->
        let members = List.filter (fun i -> order_of i = o) (List.init n (fun i -> i)) in
        let rn = List.length members in
        let net = oracle_of_members ~succ_list_len:sll (HP.node_id p) members in
        List.iter
          (fun addr ->
            let what = Printf.sprintf "layer %d ring %s node %d" layer o addr in
            (* a singleton ring has no analytic successor list (r = n-1 = 0);
               the protocol represents it as a self-loop *)
            let expect_succs =
              if rn = 1 then [ addr ] else oracle_succ_addrs net ~n:rn addr
            in
            Alcotest.(check (list int))
              (what ^ " successor list") expect_succs
              (HP.successor_list_addrs p addr ~layer);
            check_fingers ~what (oracle_finger_addrs net ~n:rn addr)
              (HP.finger_addrs p addr ~layer))
          members)
      orders
  done

let test_conformance_survives_healing () =
  (* kill a few nodes, let maintenance re-converge, then demand the healed
     ring again equals the analytic network over the survivors *)
  let n = 24 in
  let eng, p = build_chord ~hosts:n 35 in
  let dead = [ 4; 13; 21 ] in
  List.iter (CP.fail_node p) dead;
  Engine.run ~until:500_000.0 eng;
  let live = List.filter (fun i -> not (List.mem i dead)) (List.init n (fun i -> i)) in
  let rn = List.length live in
  let net = oracle_of_members ~succ_list_len:(CP.config p).CP.succ_list_len (CP.node_id p) live in
  List.iter
    (fun addr ->
      Alcotest.(check (list int))
        (Printf.sprintf "survivor %d successor list" addr)
        (oracle_succ_addrs net ~n:rn addr)
        (CP.successor_list_addrs p addr))
    live

let () =
  Alcotest.run "protocols"
    [
      ( "chord-protocol",
        [
          Alcotest.test_case "ring converges" `Slow test_chord_ring_converges;
          Alcotest.test_case "predecessors converge" `Slow test_chord_predecessors_converge;
          Alcotest.test_case "successor lists" `Slow test_chord_successor_lists;
          Alcotest.test_case "lookups correct" `Slow test_chord_lookups_correct;
          Alcotest.test_case "heals after failures" `Slow test_chord_heals_after_failures;
          Alcotest.test_case "survives message loss" `Slow test_chord_survives_message_loss;
          Alcotest.test_case "duplicate addr" `Quick test_chord_rejects_duplicate_addr;
          Alcotest.test_case "single node" `Quick test_chord_single_node_lookup;
        ] );
      ( "hieras-protocol",
        [
          Alcotest.test_case "global ring converges" `Slow test_hieras_global_ring_converges;
          Alcotest.test_case "layer-2 rings partition" `Slow test_hieras_layer2_rings_partition;
          Alcotest.test_case "lookups correct" `Slow test_hieras_lookups_correct;
          Alcotest.test_case "ring tables present" `Slow test_hieras_ring_tables_present;
          Alcotest.test_case "depth 3" `Slow test_hieras_depth3;
          Alcotest.test_case "heals after failures" `Slow test_hieras_heals_after_failures;
          Alcotest.test_case "ring table recovery" `Slow test_hieras_ring_table_failure_recovery;
          Alcotest.test_case "ring table replication" `Slow test_hieras_ring_table_replication;
          Alcotest.test_case "survives message loss" `Slow test_hieras_survives_message_loss;
          Alcotest.test_case "concurrent joins unify" `Slow test_hieras_concurrent_joins_unify_rings;
        ] );
      ( "conformance",
        [
          Alcotest.test_case "chord matches analytic network" `Slow test_chord_conforms_to_network;
          Alcotest.test_case "hieras matches per-layer oracles" `Slow test_hieras_conforms_per_layer;
          Alcotest.test_case "healed ring matches survivor oracle" `Slow
            test_conformance_survives_healing;
        ] );
    ]
