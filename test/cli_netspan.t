Message-level span recording rides on the soak driver. The stream flag
pair is validated up front with exit code 2: a sample rate without a
destination would silently do nothing, and out-of-range rates are
rejected before any topology construction.

  $ ../bin/hieras_sim.exe soak --net-sample 0.5
  hieras-sim: --net-sample requires --net-trace-out
  [2]

  $ ../bin/hieras_sim.exe soak --net-trace-out x.jsonl --net-sample 1.5
  hieras-sim: --net-sample must be in [0, 1] (got 1.5)
  [2]

  $ ../bin/hieras_sim.exe churn --net-sample 0.5
  hieras-sim: --net-sample requires --net-trace-out
  [2]

  $ ../bin/hieras_sim.exe trace --trace-sample 2
  hieras-sim: --trace-sample must be in [0, 1] (got 2)
  [2]

A tiny soak with recording enabled writes the stream and reports the
event count; the analyzer recognises the stream and audits it clean
(violations: 0 -- no duplicate spans, no orphan parents):

  $ ../bin/hieras_sim.exe soak --pool 8 --initial 4 --horizon 5 --factors 1 --seed 7 \
  >   --net-trace-out spans.jsonl | grep 'net span' | sed 's/[0-9]\{1,\}/N/'
  wrote N net span events to spans.jsonl

  $ ../bin/hieras_sim.exe analyze spans.jsonl | head -1 | grep -o 'violations: 0'
  violations: 0

Reading the stream from stdin gives byte-identical analysis -- the
"-" path and the file path share one streaming implementation:

  $ ../bin/hieras_sim.exe analyze spans.jsonl --json > from_file.json
  $ ../bin/hieras_sim.exe analyze - --json < spans.jsonl > from_stdin.json
  $ cmp from_file.json from_stdin.json

The stream is byte-identical for any worker count, at any sample rate
(root-keyed sampling is a pure function of span ids, not of scheduling):

  $ ../bin/hieras_sim.exe soak --pool 8 --initial 4 --horizon 5 --factors 1 --seed 7 \
  >   --net-trace-out j1.jsonl --net-sample 0.3 --jobs 1 > /dev/null
  $ ../bin/hieras_sim.exe soak --pool 8 --initial 4 --horizon 5 --factors 1 --seed 7 \
  >   --net-trace-out j4.jsonl --net-sample 0.3 --jobs 4 > /dev/null
  $ cmp j1.jsonl j4.jsonl

Sampling thins the stream (the 30% trace is smaller than the full one)
yet still audits clean, because causal trees are kept or dropped whole:

  $ full=$(wc -l < spans.jsonl); part=$(wc -l < j1.jsonl); test "$part" -lt "$full"
  $ ../bin/hieras_sim.exe analyze j1.jsonl | head -1 | grep -o 'violations: 0'
  violations: 0

The net report carries the per-kind and bandwidth tables:

  $ ../bin/hieras_sim.exe analyze spans.jsonl | grep -c '^\(per-kind traffic\|traffic classes\|bandwidth hotspots\)'
  3

analyze compare understands the netspan schema; a report compared
against itself has no regressions (exit 0):

  $ ../bin/hieras_sim.exe analyze spans.jsonl --json > nr.json
  $ ../bin/hieras_sim.exe analyze compare nr.json nr.json | tail -1
  0 regression(s)
