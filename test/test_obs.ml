(* Tests for the observability layer: the metrics registry, the trace
   sinks, the trace-stream invariants of both routing algorithms (qcheck
   properties over random seeds/topologies), the golden-trace regression,
   and the simulation engine's counter conservation law. *)

module Metrics = Obs.Metrics
module Trace = Obs.Trace
module Lookup = Chord.Lookup
module Hlookup = Hieras.Hlookup

(* --- a minimal JSON validity checker ---------------------------------------
   The repo has no JSON parser dependency; the observability layer only
   emits. This recursive-descent acceptor is enough to assert that every
   emitted line/object is well-formed standalone JSON. *)

let json_valid (s : string) : bool =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let fail = ref false in
  let expect c = match peek () with Some x when x = c -> advance () | _ -> fail := true in
  let rec value () =
    skip_ws ();
    (match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> string_lit ()
    | Some ('t' | 'f' | 'n') -> keyword ()
    | Some ('-' | '0' .. '9') -> number ()
    | _ -> fail := true);
    skip_ws ()
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then advance ()
    else begin
      let continue = ref true in
      while !continue && not !fail do
        skip_ws ();
        string_lit ();
        skip_ws ();
        expect ':';
        value ();
        match peek () with
        | Some ',' -> advance ()
        | Some '}' ->
            advance ();
            continue := false
        | _ ->
            fail := true;
            continue := false
      done
    end
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then advance ()
    else begin
      let continue = ref true in
      while !continue && not !fail do
        value ();
        match peek () with
        | Some ',' -> advance ()
        | Some ']' ->
            advance ();
            continue := false
        | _ ->
            fail := true;
            continue := false
      done
    end
  and string_lit () =
    expect '"';
    let closed = ref false in
    while (not !closed) && not !fail do
      match peek () with
      | None -> fail := true
      | Some '\\' ->
          advance ();
          if peek () = None then fail := true else advance ()
      | Some '"' ->
          advance ();
          closed := true
      | Some _ -> advance ()
    done
  and keyword () =
    let kw = [ "true"; "false"; "null" ] in
    match
      List.find_opt (fun k -> !pos + String.length k <= n && String.sub s !pos (String.length k) = k) kw
    with
    | Some k -> pos := !pos + String.length k
    | None -> fail := true
  and number () =
    (* permissive: consume the number-ish characters, float_of_string checks *)
    let start = !pos in
    while
      !pos < n
      && match s.[!pos] with '-' | '+' | '.' | 'e' | 'E' | '0' .. '9' -> true | _ -> false
    do
      advance ()
    done;
    if float_of_string_opt (String.sub s start (!pos - start)) = None then fail := true
  in
  value ();
  (not !fail) && !pos = n

(* --- metrics registry ------------------------------------------------------ *)

let test_counter_gauge () =
  let m = Metrics.create () in
  let c = Metrics.counter m "a.count" in
  Metrics.incr c;
  Metrics.add c 4;
  Alcotest.(check int) "incr+add" 5 (Metrics.counter_value c);
  (* re-registration returns the same handle *)
  Metrics.incr (Metrics.counter m "a.count");
  Alcotest.(check int) "idempotent registration" 6 (Metrics.counter_value c);
  Metrics.set_counter c 42;
  Alcotest.(check int) "set_counter" 42 (Metrics.counter_value c);
  let g = Metrics.gauge m "a.gauge" in
  Metrics.set g 2.5;
  Alcotest.(check (float 0.0)) "gauge" 2.5 (Metrics.gauge_value (Metrics.gauge m "a.gauge"));
  ignore (Metrics.gauge_value g)

let test_kind_clash_raises () =
  let m = Metrics.create () in
  ignore (Metrics.counter m "x");
  Alcotest.check_raises "gauge over counter"
    (Invalid_argument "Metrics: x is already registered as a counter") (fun () ->
      ignore (Metrics.gauge m "x"));
  Alcotest.check_raises "histogram over counter"
    (Invalid_argument "Metrics: x is already registered as a counter") (fun () ->
      ignore (Metrics.histogram m "x"))

let test_histogram_buckets () =
  let m = Metrics.create () in
  let h = Metrics.histogram ~buckets:[| 1.0; 10.0; 100.0 |] m "h" in
  List.iter (Metrics.observe h) [ 0.5; 1.0; 5.0; 10.0; 99.0; 100.5; 1e9 ];
  match Metrics.find (Metrics.snapshot m) "h" with
  | Some (Metrics.Hist hs) ->
      Alcotest.(check int) "count" 7 hs.Metrics.count;
      Alcotest.(check (array int)) "bucket counts" [| 2; 2; 1; 2 |] hs.Metrics.bucket_counts;
      Alcotest.(check (float 1e-9)) "sum" (0.5 +. 1.0 +. 5.0 +. 10.0 +. 99.0 +. 100.5 +. 1e9)
        hs.Metrics.sum
  | _ -> Alcotest.fail "histogram not in snapshot"

let test_histogram_validation () =
  let m = Metrics.create () in
  Alcotest.check_raises "non-increasing"
    (Invalid_argument "Metrics.histogram: buckets must be strictly increasing") (fun () ->
      ignore (Metrics.histogram ~buckets:[| 1.0; 1.0 |] m "bad"));
  Alcotest.check_raises "empty" (Invalid_argument "Metrics.histogram: empty buckets") (fun () ->
      ignore (Metrics.histogram ~buckets:[||] m "bad2"))

let test_snapshot_sorted_and_rendering () =
  let m = Metrics.create () in
  Metrics.set (Metrics.gauge m "zz") 1.0;
  Metrics.incr (Metrics.counter m "aa");
  Metrics.observe (Metrics.histogram m "mm") 3.0;
  let snap = Metrics.snapshot m in
  Alcotest.(check (list string)) "sorted names" [ "aa"; "mm"; "zz" ] (List.map fst snap);
  (* snapshot is a frozen copy *)
  Metrics.incr (Metrics.counter m "aa");
  Alcotest.(check bool) "frozen" true (Metrics.find snap "aa" = Some (Metrics.Counter 1));
  let json = Metrics.to_json snap in
  Alcotest.(check bool) ("valid JSON: " ^ json) true (json_valid json);
  let text = Metrics.to_text snap in
  Alcotest.(check int) "one line per series" 3
    (List.length (String.split_on_char '\n' (String.trim text)))

(* --- trace sinks ------------------------------------------------------------ *)

let ev_hop i =
  Trace.Hop { lookup = 0; seq = i; layer = 1; from_node = i; to_node = i + 1; latency_ms = 1.0 }

let test_disabled_tracer () =
  Alcotest.(check bool) "disabled" false (Trace.enabled Trace.disabled);
  Alcotest.(check int) "start is 0" 0
    (Trace.start Trace.disabled ~algo:"chord" ~origin:3 ~key:"ff");
  Trace.hop Trace.disabled ~lookup:0 ~seq:0 ~layer:1 ~from_node:0 ~to_node:1 ~latency_ms:1.0;
  Alcotest.(check int) "no events" 0 (List.length (Trace.events Trace.disabled))

let test_ring_keeps_most_recent () =
  let tr = Trace.ring ~capacity:4 in
  Alcotest.(check bool) "enabled" true (Trace.enabled tr);
  for i = 0 to 9 do
    Trace.emit tr (ev_hop i)
  done;
  let seqs =
    List.map (function Trace.Hop { seq; _ } -> seq | _ -> -1) (Trace.events tr)
  in
  Alcotest.(check (list int)) "last 4, oldest first" [ 6; 7; 8; 9 ] seqs;
  Trace.clear tr;
  Alcotest.(check int) "cleared" 0 (List.length (Trace.events tr))

let test_ring_ids_sequential () =
  let tr = Trace.ring ~capacity:16 in
  let a = Trace.start tr ~algo:"chord" ~origin:0 ~key:"00" in
  let b = Trace.start tr ~algo:"hieras" ~origin:1 ~key:"01" in
  Alcotest.(check int) "first id" 0 a;
  Alcotest.(check int) "second id" 1 b

let test_jsonl_sink_lines () =
  let buf = Buffer.create 256 in
  let tr = Trace.jsonl (Buffer.add_string buf) in
  let id = Trace.start tr ~algo:"chord" ~origin:7 ~key:"abcd" in
  Trace.hop tr ~lookup:id ~seq:0 ~layer:1 ~from_node:7 ~to_node:9 ~latency_ms:12.5;
  Trace.finish tr ~lookup:id ~destination:9 ~hops:1 ~latency_ms:12.5 ~finished_at_layer:1;
  let lines = String.split_on_char '\n' (Buffer.contents buf) in
  Alcotest.(check int) "3 lines + trailing" 4 (List.length lines);
  Alcotest.(check string) "trailing newline" "" (List.nth lines 3);
  List.iteri
    (fun i l ->
      if i < 3 then Alcotest.(check bool) ("line parses: " ^ l) true (json_valid l))
    lines;
  Alcotest.(check bool) "start line tagged" true
    (String.length (List.nth lines 0) > 0
    && String.sub (List.nth lines 0) 0 14 = {|{"ev":"start",|})

(* --- trace-stream invariants (qcheck) --------------------------------------- *)

type scenario = {
  net : Chord.Network.t;
  hnet : Hieras.Hnetwork.t;
  lat : Topology.Latency.t;
  nodes : int;
  depth : int;
}

(* Topology construction dominates; cache scenarios per (seed mod variants). *)
let scenario_cache : (int, scenario) Hashtbl.t = Hashtbl.create 8

let scenario_of_seed seed =
  let variant = abs seed mod 6 in
  match Hashtbl.find_opt scenario_cache variant with
  | Some s -> s
  | None ->
      let rng = Prng.Rng.create ~seed:(1000 + variant) in
      let nodes = 48 + (17 * variant) in
      let depth = 2 + (variant mod 2) in
      let lat = Topology.Transit_stub.generate ~hosts:nodes rng in
      let net =
        Chord.Network.build ~space:Hashid.Id.sha1_space ~hosts:(Array.init nodes (fun i -> i)) ()
      in
      let lm = Binning.Landmark.choose_spread lat ~count:4 rng in
      let hnet = Hieras.Hnetwork.build ~chord:net ~lat ~landmarks:lm ~depth () in
      let s = { net; hnet; lat; nodes; depth } in
      Hashtbl.add scenario_cache variant s;
      s

let close a b = Float.abs (a -. b) <= 1e-9 *. (1.0 +. Float.abs a +. Float.abs b)

(* Inline constructor records can't escape a match, so events are destructured
   into these plain mirrors before checking. *)
type start_ev = { s_origin : int; s_key : string }
type hop_ev = { h_seq : int; h_layer : int; h_from : int; h_to : int; h_lat : float }
type end_ev = { e_dest : int; e_hops : int; e_lat : float; e_flayer : int }

(* Split a ring-buffered event stream back into per-lookup (start, hops, end)
   triples and check every invariant the mli promises. *)
let check_traced_lookup ~what ~origin ~key ~(events : Trace.event list) ~destination ~hop_count
    ~latency ~depth ~finished_at_layer =
  let starts, hops, ends =
    List.fold_left
      (fun (s, h, e) ev ->
        match ev with
        | Trace.Start { origin; key; _ } -> ({ s_origin = origin; s_key = key } :: s, h, e)
        | Trace.Hop { seq; layer; from_node; to_node; latency_ms; _ } ->
            ( s,
              { h_seq = seq; h_layer = layer; h_from = from_node; h_to = to_node; h_lat = latency_ms }
              :: h,
              e )
        | Trace.End { destination; hops; latency_ms; finished_at_layer; _ } ->
            ( s,
              h,
              { e_dest = destination; e_hops = hops; e_lat = latency_ms; e_flayer = finished_at_layer }
              :: e )
        | Trace.Recover _ -> (s, h, e))
      ([], [], []) events
  in
  let fail fmt = QCheck.Test.fail_reportf fmt in
  (match (starts, ends) with
  | [ st ], [ en ] ->
      if st.s_origin <> origin then fail "%s: start origin %d <> %d" what st.s_origin origin;
      if st.s_key <> key then fail "%s: start key mismatch" what;
      if en.e_dest <> destination then
        fail "%s: end destination %d <> %d" what en.e_dest destination;
      if en.e_hops <> hop_count then fail "%s: end hops %d <> %d" what en.e_hops hop_count;
      if not (close en.e_lat latency) then fail "%s: end latency %g <> %g" what en.e_lat latency;
      if en.e_flayer <> finished_at_layer then
        fail "%s: finished_at_layer %d <> %d" what en.e_flayer finished_at_layer
  | _ -> fail "%s: expected exactly one start and one end event" what);
  let hops = List.rev hops in
  if List.length hops <> hop_count then
    fail "%s: %d hop events <> hop_count %d" what (List.length hops) hop_count;
  List.iteri
    (fun i h ->
      if h.h_seq <> i then fail "%s: hop %d has seq %d" what i h.h_seq;
      if h.h_layer < 1 || h.h_layer > depth then
        fail "%s: hop %d layer %d outside 1..%d" what i h.h_layer depth)
    hops;
  (* hop-chain contiguity, anchored at origin and destination *)
  let rec chain prev = function
    | [] -> if prev <> destination then fail "%s: chain ends at %d, not destination %d" what prev destination
    | h :: rest ->
        if h.h_from <> prev then
          fail "%s: hop seq %d from %d, previous node %d" what h.h_seq h.h_from prev;
        chain h.h_to rest
  in
  if hop_count > 0 then chain origin hops
  else if origin <> destination then fail "%s: zero hops but origin <> destination" what;
  (* per-hop latencies sum to the result's total *)
  let sum = List.fold_left (fun acc h -> acc +. h.h_lat) 0.0 hops in
  if not (close sum latency) then fail "%s: hop latencies sum %g <> total %g" what sum latency

let trace_prop seed =
  let s = scenario_of_seed seed in
  let rng = Prng.Rng.create ~seed in
  let tr = Trace.ring ~capacity:8192 in
  for _ = 1 to 5 do
    let key = Hashid.Id.random Hashid.Id.sha1_space rng in
    let origin = Prng.Rng.int rng s.nodes in
    (* chord *)
    Trace.clear tr;
    let rc = Lookup.route ~trace:tr s.net s.lat ~origin ~key in
    check_traced_lookup ~what:"chord" ~origin ~key:(Hashid.Id.to_hex key) ~events:(Trace.events tr)
      ~destination:rc.Lookup.destination ~hop_count:rc.Lookup.hop_count ~latency:rc.Lookup.latency
      ~depth:1 ~finished_at_layer:1;
    (* hieras *)
    Trace.clear tr;
    let rh = Hlookup.route_checked ~trace:tr s.hnet ~origin ~key in
    check_traced_lookup ~what:"hieras" ~origin ~key:(Hashid.Id.to_hex key)
      ~events:(Trace.events tr) ~destination:rh.Hlookup.destination ~hop_count:rh.Hlookup.hop_count
      ~latency:rh.Hlookup.latency ~depth:s.depth ~finished_at_layer:rh.Hlookup.finished_at_layer;
    (* per-layer accounting closes over the totals *)
    let layer_hops = Array.fold_left ( + ) 0 rh.Hlookup.hops_per_layer in
    if layer_hops <> rh.Hlookup.hop_count then
      QCheck.Test.fail_reportf "hops_per_layer sums to %d, hop_count %d" layer_hops
        rh.Hlookup.hop_count;
    let layer_lat = Array.fold_left ( +. ) 0.0 rh.Hlookup.latency_per_layer in
    if not (close layer_lat rh.Hlookup.latency) then
      QCheck.Test.fail_reportf "latency_per_layer sums to %g, latency %g" layer_lat
        rh.Hlookup.latency;
    (* trace layer tags agree with the per-layer hop accounting *)
    let per_layer = Array.make s.depth 0 in
    List.iter
      (function
        | Trace.Hop { layer; _ } -> per_layer.(layer - 1) <- per_layer.(layer - 1) + 1
        | _ -> ())
      (Trace.events tr);
    Array.iteri
      (fun k c ->
        if c <> rh.Hlookup.hops_per_layer.(k) then
          QCheck.Test.fail_reportf "layer %d: %d traced hops, %d accounted" (k + 1) c
            rh.Hlookup.hops_per_layer.(k))
      per_layer
  done;
  true

let test_trace_invariants =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"traced lookups satisfy stream invariants" ~count:40
       QCheck.(int_range 0 100_000)
       trace_prop)

(* --- golden trace ----------------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let golden_path = Filename.concat "golden" "trace_ts64.jsonl"

let test_golden_trace () =
  let want = read_file golden_path in
  let got = Obs_test_support.Golden.build_trace () in
  let want_lines = String.split_on_char '\n' want in
  let got_lines = String.split_on_char '\n' got in
  Alcotest.(check int)
    "line count (regenerate with: dune exec test/support/gen_golden.exe > test/golden/trace_ts64.jsonl)"
    (List.length want_lines) (List.length got_lines);
  List.iteri
    (fun i w -> Alcotest.(check string) (Printf.sprintf "line %d" (i + 1)) w (List.nth got_lines i))
    want_lines;
  Alcotest.(check string) "byte-identical" want got

let test_golden_trace_is_valid_jsonl () =
  read_file golden_path |> String.split_on_char '\n'
  |> List.iteri (fun i line ->
         if line <> "" then
           Alcotest.(check bool) (Printf.sprintf "golden line %d parses" (i + 1)) true
             (json_valid line))

(* --- engine counter conservation (qcheck) ------------------------------------ *)

let engine_prop (seed, loss_centi, nodes, ops) =
  let rng = Prng.Rng.create ~seed in
  let eng =
    Simnet.Engine.create ~latency:(fun a b -> 1.0 +. float_of_int (abs (a - b))) ~nodes
  in
  let rate = float_of_int loss_centi /. 100.0 in
  if rate > 0.0 then Simnet.Engine.set_loss eng ~rate ~rng:(Prng.Rng.create ~seed:(seed + 1));
  (* interleave sends from node 0 (kept alive) with local timers,
     kills/revives of others, plus scheduled mid-flight kills — every drop
     path (message loss, dead destination, dead timer owner) is exercised *)
  for op = 1 to ops do
    match Prng.Rng.int rng 5 with
    | 0 | 1 -> Simnet.Engine.send eng ~src:0 ~dst:(Prng.Rng.int rng nodes) (fun () -> ())
    | 2 ->
        Simnet.Engine.timer eng ~node:(Prng.Rng.int rng nodes)
          ~delay:(float_of_int (op mod 11))
          (fun () -> ())
    | 3 ->
        if nodes > 1 then
          let victim = 1 + Prng.Rng.int rng (nodes - 1) in
          if Prng.Rng.int rng 2 = 0 then Simnet.Engine.kill eng victim
          else Simnet.Engine.revive eng victim
    | _ ->
        if nodes > 1 then
          let victim = 1 + Prng.Rng.int rng (nodes - 1) in
          Simnet.Engine.schedule eng ~delay:(float_of_int (op mod 7))
            (fun () -> Simnet.Engine.kill eng victim)
  done;
  Simnet.Engine.run eng;
  let sent = Simnet.Engine.sent eng
  and delivered = Simnet.Engine.delivered eng
  and dead = Simnet.Engine.dropped_dead eng
  and loss = Simnet.Engine.dropped_loss eng
  and tset = Simnet.Engine.timers_set eng
  and tfired = Simnet.Engine.timers_fired eng in
  if sent + tset <> delivered + tfired + dead + loss then
    QCheck.Test.fail_reportf
      "sent %d + timers_set %d <> delivered %d + timers_fired %d + dropped_dead %d + dropped_loss %d"
      sent tset delivered tfired dead loss;
  (* the registry export mirrors the engine's own fields exactly *)
  let m = Metrics.create () in
  Simnet.Engine.export_metrics eng m;
  let snap = Metrics.snapshot m in
  let check name v =
    match Metrics.find snap name with
    | Some (Metrics.Counter c) when c = v -> ()
    | Some (Metrics.Counter c) -> QCheck.Test.fail_reportf "%s: registry %d <> engine %d" name c v
    | _ -> QCheck.Test.fail_reportf "%s missing from registry snapshot" name
  in
  check "simnet.sent" sent;
  check "simnet.delivered" delivered;
  check "simnet.dropped_dead" dead;
  check "simnet.dropped_loss" loss;
  check "simnet.timers_set" tset;
  check "simnet.timers_fired" tfired;
  check "simnet.pending_events" 0;
  true

let test_engine_conservation =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make
       ~name:"sent + timers_set = delivered + timers_fired + dropped_dead + dropped_loss"
       ~count:100
       QCheck.(
         quad (int_range 0 1_000_000) (int_range 0 90) (int_range 1 24) (int_range 0 400))
       engine_prop)

(* --- Jsonu parser ------------------------------------------------------------ *)

let test_jsonu_parse () =
  let open Obs.Jsonu in
  (match parse {| {"a": [1, -2.5, true, null], "b": "xé\n"} |} with
  | Ok (Obj [ ("a", Arr [ Num 1.0; Num -2.5; Bool true; Null ]); ("b", Str s) ]) ->
      Alcotest.(check string) "escapes decoded" "x\xc3\xa9\n" s
  | Ok _ -> Alcotest.fail "unexpected shape"
  | Error e -> Alcotest.fail e);
  List.iter
    (fun bad ->
      match parse bad with
      | Ok _ -> Alcotest.fail ("accepted: " ^ bad)
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":1,}"; "1 2"; "nul"; "\"unterminated"; "{\"a\"}"; "01" ];
  (* numbers round-trip through the emitter's shortest representation *)
  List.iter
    (fun f ->
      match parse (number f) with
      | Ok (Num g) -> Alcotest.(check (float 0.0)) (number f) f g
      | _ -> Alcotest.fail ("number did not round-trip: " ^ number f))
    [ 0.0; -1.5; 3.7499999999999996; 1e-9; 6.02214076e23; -0.0001; 42.0 ]

let test_metrics_json_roundtrip () =
  let m = Metrics.create () in
  Metrics.set (Metrics.gauge m "neg") (-123.456789);
  Metrics.set (Metrics.gauge m "tiny") 1.0000000000000002;
  Metrics.set_counter (Metrics.counter m "c") 7;
  let json = Metrics.to_json (Metrics.snapshot m) in
  match Obs.Jsonu.parse json with
  | Error e -> Alcotest.fail ("registry JSON does not parse: " ^ e)
  | Ok j ->
      let value name =
        match Option.bind (Obs.Jsonu.member name j) (Obs.Jsonu.member "value") with
        | Some v -> Option.get (Obs.Jsonu.to_float v)
        | None -> Alcotest.fail (name ^ " missing")
      in
      Alcotest.(check (float 0.0)) "negative gauge exact" (-123.456789) (value "neg");
      Alcotest.(check (float 0.0)) "ulp-precision gauge exact" 1.0000000000000002 (value "tiny");
      Alcotest.(check (float 0.0)) "counter" 7.0 (value "c")

(* --- analyzer ---------------------------------------------------------------- *)

module Analyze = Obs.Analyze

(* Feed the tracer output of real lookups straight into the analyzer and
   check the report against the routing results it summarises. *)
let analyze_prop seed =
  let s = scenario_of_seed seed in
  let rng = Prng.Rng.create ~seed in
  let an = Analyze.create () in
  let tr = Trace.ring ~capacity:65536 in
  let lookups = 8 in
  let chord_hops = ref 0 and chord_lat = ref 0.0 in
  let hieras_hops = ref 0 and hieras_lat = ref 0.0 in
  for _ = 1 to lookups do
    let key = Hashid.Id.random Hashid.Id.sha1_space rng in
    let origin = Prng.Rng.int rng s.nodes in
    let rc = Lookup.route ~trace:tr s.net s.lat ~origin ~key in
    chord_hops := !chord_hops + rc.Lookup.hop_count;
    chord_lat := !chord_lat +. rc.Lookup.latency;
    let rh = Hlookup.route ~trace:tr s.hnet ~origin ~key in
    hieras_hops := !hieras_hops + rh.Hlookup.hop_count;
    hieras_lat := !hieras_lat +. rh.Hlookup.latency
  done;
  List.iter (Analyze.feed_event an) (Trace.events tr);
  let r = Analyze.report an in
  let fail fmt = QCheck.Test.fail_reportf fmt in
  if r.Analyze.violations <> 0 then fail "%d violations on a clean trace" r.Analyze.violations;
  if r.Analyze.spans_open <> 0 then fail "%d open spans" r.Analyze.spans_open;
  if List.length r.Analyze.algos <> 2 then fail "expected 2 algos";
  List.iter
    (fun (a : Analyze.algo_report) ->
      if a.Analyze.lookups <> lookups then
        fail "%s: %d lookups recorded, %d run" a.Analyze.algo a.Analyze.lookups lookups;
      let want_hops, want_lat =
        if a.Analyze.algo = "chord" then (!chord_hops, !chord_lat) else (!hieras_hops, !hieras_lat)
      in
      (* means agree with the End events of the actual routing results *)
      if not (close a.Analyze.hops_mean (float_of_int want_hops /. float_of_int lookups)) then
        fail "%s: hops_mean %g, expected %g" a.Analyze.algo a.Analyze.hops_mean
          (float_of_int want_hops /. float_of_int lookups);
      if not (close a.Analyze.latency_mean_ms (want_lat /. float_of_int lookups)) then
        fail "%s: latency_mean %g, expected %g" a.Analyze.algo a.Analyze.latency_mean_ms
          (want_lat /. float_of_int lookups);
      (* per-layer attribution closes over the totals *)
      (match a.Analyze.layers with
      | [] -> if want_hops > 0 then fail "%s: no layer stats" a.Analyze.algo
      | layers ->
          let hop_share = List.fold_left (fun acc l -> acc +. l.Analyze.hop_share) 0.0 layers in
          let lat_share = List.fold_left (fun acc l -> acc +. l.Analyze.latency_share) 0.0 layers in
          if not (close hop_share 1.0) then fail "%s: hop shares sum to %g" a.Analyze.algo hop_share;
          if not (close lat_share 1.0) then
            fail "%s: latency shares sum to %g" a.Analyze.algo lat_share;
          let l_hops = List.fold_left (fun acc l -> acc + l.Analyze.l_hops) 0 layers in
          if l_hops <> want_hops then
            fail "%s: layer hops %d <> total %d" a.Analyze.algo l_hops want_hops;
          let l_lat = List.fold_left (fun acc l -> acc +. l.Analyze.l_latency_ms) 0.0 layers in
          if not (close l_lat want_lat) then
            fail "%s: layer latency %g <> total %g" a.Analyze.algo l_lat want_lat);
      (* ring residency partitions the lookups *)
      let fin = List.fold_left (fun acc (_, n) -> acc + n) 0 a.Analyze.finished_at in
      if fin <> lookups then fail "%s: finished_at sums to %d" a.Analyze.algo fin;
      (* forwarding shares over the hotspot list never exceed 1 *)
      let fwd = List.fold_left (fun acc h -> acc +. h.Analyze.fwd_share) 0.0 a.Analyze.hotspots in
      if fwd > 1.0 +. 1e-9 then fail "%s: hotspot shares sum to %g > 1" a.Analyze.algo fwd;
      if a.Analyze.gini < 0.0 || a.Analyze.gini > 1.0 then
        fail "%s: gini %g outside [0,1]" a.Analyze.algo a.Analyze.gini)
    r.Analyze.algos;
  (* both renderings are total and the JSON one parses *)
  let json = Analyze.report_json r in
  if not (json_valid json) then fail "report JSON invalid";
  ignore (Analyze.report_text r);
  true

let test_analyze_invariants =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"analyzer report agrees with the routed lookups" ~count:25
       QCheck.(int_range 0 100_000)
       analyze_prop)

let test_analyze_golden_report () =
  let want = read_file (Filename.concat "golden" "report_ts64.json") in
  let got = Obs_test_support.Golden.build_report () in
  Alcotest.(check string)
    "byte-identical (regenerate with: dune exec test/support/gen_golden.exe -- --report > test/golden/report_ts64.json)"
    want got;
  (* and the streaming file path agrees with the in-memory path *)
  let an = Analyze.of_file golden_path in
  Alcotest.(check string) "of_file agrees" want (Analyze.report_json (Analyze.report an) ^ "\n")

let test_analyze_audit_detects_corruption () =
  let feed an lines = List.iter (Analyze.feed_line an) lines in
  (* a well-formed span, but End claims one hop too many *)
  let an = Analyze.create () in
  feed an
    [
      {|{"ev":"start","lookup":0,"algo":"chord","origin":3,"key":"ff"}|};
      {|{"ev":"hop","lookup":0,"seq":0,"layer":1,"from":3,"to":9,"lat_ms":5}|};
      {|{"ev":"end","lookup":0,"dest":9,"hops":2,"lat_ms":5,"finished_at_layer":1}|};
    ];
  Alcotest.(check int) "hop-count mismatch counted" 1 (Analyze.report an).Analyze.violations;
  (* broken hop chain: second hop does not start where the first ended *)
  let an = Analyze.create () in
  feed an
    [
      {|{"ev":"start","lookup":1,"algo":"chord","origin":0,"key":"00"}|};
      {|{"ev":"hop","lookup":1,"seq":0,"layer":1,"from":0,"to":4,"lat_ms":1}|};
      {|{"ev":"hop","lookup":1,"seq":1,"layer":1,"from":5,"to":6,"lat_ms":1}|};
      {|{"ev":"end","lookup":1,"dest":6,"hops":2,"lat_ms":2,"finished_at_layer":1}|};
    ];
  Alcotest.(check int) "chain break counted" 1 (Analyze.report an).Analyze.violations;
  (* an End without a Start *)
  let an = Analyze.create () in
  feed an [ {|{"ev":"end","lookup":9,"dest":1,"hops":0,"lat_ms":0,"finished_at_layer":1}|} ];
  Alcotest.(check int) "orphan end counted" 1 (Analyze.report an).Analyze.violations;
  (* truncated trace: Start without End is open, not a violation *)
  let an = Analyze.create () in
  feed an [ {|{"ev":"start","lookup":2,"algo":"chord","origin":0,"key":"00"}|} ];
  let r = Analyze.report an in
  Alcotest.(check int) "open span" 1 r.Analyze.spans_open;
  Alcotest.(check int) "no violation" 0 r.Analyze.violations;
  (* malformed lines fail loudly *)
  let an = Analyze.create () in
  Alcotest.(check bool) "bad line raises" true
    (try
       Analyze.feed_line an {|{"ev":"frobnicate"}|};
       false
     with Failure _ -> true);
  Analyze.feed_line an "";
  Alcotest.(check int) "blank lines ignored" 0 (Analyze.report an).Analyze.events

let with_temp_file content f =
  let path = Filename.temp_file "analyze_test" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_text path (fun oc -> output_string oc content);
      f path)

let test_analyze_compare () =
  let report_of lines =
    let an = Analyze.create () in
    List.iter (Analyze.feed_line an) lines;
    Analyze.report_json (Analyze.report an)
  in
  let span ~lookup ~lat =
    [
      Printf.sprintf {|{"ev":"start","lookup":%d,"algo":"chord","origin":0,"key":"00"}|} lookup;
      Printf.sprintf {|{"ev":"hop","lookup":%d,"seq":0,"layer":1,"from":0,"to":1,"lat_ms":%g}|}
        lookup lat;
      Printf.sprintf
        {|{"ev":"end","lookup":%d,"dest":1,"hops":1,"lat_ms":%g,"finished_at_layer":1}|} lookup lat;
    ]
  in
  let base = report_of (span ~lookup:0 ~lat:100.0) in
  let slower = report_of (span ~lookup:0 ~lat:150.0) in
  with_temp_file base (fun b ->
      with_temp_file slower (fun c ->
          match Analyze.compare_files ~base:b ~cand:c ~threshold:0.2 with
          | Error e -> Alcotest.fail e
          | Ok cmp ->
              Alcotest.(check string) "kind" "trace-report" cmp.Analyze.kind;
              let reg = List.map (fun r -> r.Analyze.metric) cmp.Analyze.regressions in
              Alcotest.(check bool) "latency regression flagged" true
                (List.mem "chord.latency_ms.mean" reg);
              (* the 50% slowdown appears with the right delta *)
              let row =
                List.find (fun r -> r.Analyze.metric = "chord.latency_ms.mean") cmp.Analyze.rows
              in
              Alcotest.(check (float 1e-9)) "delta" 0.5 row.Analyze.delta;
              ignore (Analyze.comparison_text cmp));
      (* same file against itself: no regressions *)
      with_temp_file base (fun c ->
          match Analyze.compare_files ~base:b ~cand:c ~threshold:0.2 with
          | Error e -> Alcotest.fail e
          | Ok cmp -> Alcotest.(check int) "self-compare clean" 0 (List.length cmp.Analyze.regressions)));
  (* mismatched kinds are an error, not a silent empty diff *)
  with_temp_file base (fun b ->
      with_temp_file {|{"label":"x","micro":[{"name":"op","ns_per_op":5}]}|} (fun c ->
          match Analyze.compare_files ~base:b ~cand:c ~threshold:0.2 with
          | Error _ -> ()
          | Ok _ -> Alcotest.fail "kind mismatch accepted"))

let test_analyze_compare_bench () =
  let bench label ns secs =
    Printf.sprintf
      {|{"label":"%s","figures":[{"id":"fig4","seconds":%g}],"micro":[{"name":"op","ns_per_op":%g}]}|}
      label secs ns
  in
  with_temp_file (bench "a" 100.0 2.0) (fun b ->
      with_temp_file (bench "b" 130.0 2.0) (fun c ->
          match Analyze.compare_files ~base:b ~cand:c ~threshold:0.2 with
          | Error e -> Alcotest.fail e
          | Ok cmp ->
              Alcotest.(check string) "kind" "bench" cmp.Analyze.kind;
              Alcotest.(check (list string)) "only the micro regressed" [ "micro.op.ns_per_op" ]
                (List.map (fun r -> r.Analyze.metric) cmp.Analyze.regressions)))

(* --- phase timer -------------------------------------------------------------- *)

module Timer = Obs.Timer

(* fake clock: each reading advances by 1.0s — a leaf span (entry + exit
   reading) measures exactly 1s, so all renderings are deterministic *)
let fake_clock () =
  let t = ref 0.0 in
  fun () ->
    let v = !t in
    t := v +. 1.0;
    v

let test_timer_disabled () =
  Alcotest.(check bool) "disabled" false (Timer.enabled Timer.disabled);
  Alcotest.(check int) "span runs thunk" 41 (Timer.span Timer.disabled "x" (fun () -> 41));
  Alcotest.(check int) "nothing recorded" 0 (List.length (Timer.roots Timer.disabled))

let test_timer_tree () =
  let tm = Timer.create ~clock:(fake_clock ()) in
  Timer.span tm "build" (fun () ->
      Timer.span tm "topology" (fun () -> ());
      Timer.span tm "binning" (fun () -> ()));
  Timer.span tm "replay" (fun () -> ());
  Timer.span tm "replay" (fun () -> ());
  match Timer.roots tm with
  | [ b; r ] ->
      Alcotest.(check string) "first root" "build" b.Timer.name;
      Alcotest.(check (list string)) "children in entry order" [ "topology"; "binning" ]
        (List.map (fun n -> n.Timer.name) b.Timer.children);
      Alcotest.(check string) "second root" "replay" r.Timer.name;
      Alcotest.(check int) "re-entry accumulates" 2 r.Timer.count;
      (* fake clock: a leaf span spans one tick, the parent's entry/exit
         readings bracket both children (entry 0, exits at 2 and 4, exit 5) *)
      Alcotest.(check (float 1e-9)) "child total" 1.0 (List.hd b.Timer.children).Timer.total_s;
      Alcotest.(check (float 1e-9)) "parent self = total - children" (b.Timer.total_s -. 2.0)
        (Timer.self_s b);
      Alcotest.(check (float 1e-9)) "replay total accumulates" 2.0 r.Timer.total_s
  | l -> Alcotest.fail (Printf.sprintf "expected 2 roots, got %d" (List.length l))

let test_timer_raise_still_recorded () =
  let tm = Timer.create ~clock:(fake_clock ()) in
  (try Timer.span tm "boom" (fun () -> failwith "x") with Failure _ -> ());
  match Timer.roots tm with
  | [ n ] ->
      Alcotest.(check string) "recorded" "boom" n.Timer.name;
      Alcotest.(check bool) "time accumulated" true (n.Timer.total_s > 0.0)
  | _ -> Alcotest.fail "span lost on raise"

let test_timer_renderings_deterministic () =
  let build () =
    let tm = Timer.create ~clock:(fake_clock ()) in
    Timer.span tm "a" (fun () -> Timer.span tm "b" (fun () -> ()));
    tm
  in
  let tm = build () in
  Alcotest.(check string) "folded stable" (Timer.folded tm) (Timer.folded (build ()));
  Alcotest.(check string) "text stable" (Timer.to_text tm) (Timer.to_text (build ()));
  Alcotest.(check bool) "folded lines are path space value" true
    (String.split_on_char '\n' (String.trim (Timer.folded tm))
    |> List.for_all (fun l -> String.contains l ' '));
  let m = Metrics.create () in
  Timer.export_metrics tm m;
  let snap = Metrics.snapshot m in
  (match Metrics.find snap "timer.a.b.count" with
  | Some (Metrics.Counter 1) -> ()
  | _ -> Alcotest.fail "timer.a.b.count missing");
  match Metrics.find snap "timer.a.total_ms" with
  | Some (Metrics.Gauge g) -> Alcotest.(check (float 1e-9)) "total ms" 3000.0 g
  | _ -> Alcotest.fail "timer.a.total_ms missing"

(* --- time series --------------------------------------------------------------- *)

module Ts = Obs.Timeseries

let test_timeseries_disabled () =
  Alcotest.(check bool) "disabled" false (Ts.enabled Ts.disabled);
  let c = Ts.counter Ts.disabled "x" in
  Ts.add c ~at:5.0 1.0;
  Alcotest.(check int) "no series" 0 (List.length (Ts.names Ts.disabled))

let test_timeseries_bucketing () =
  let ts = Ts.create ~bucket_ms:100.0 () in
  let c = Ts.counter ts "ev" in
  Ts.add c ~at:10.0 1.0;
  Ts.add c ~at:99.0 2.0;
  Ts.add c ~at:100.0 5.0;
  Ts.add c ~at:250.0 1.0;
  let g = Ts.gauge ts "lvl" in
  Ts.set g ~at:10.0 7.0;
  Ts.set g ~at:90.0 9.0;
  (* counter buckets sum, gauge buckets keep the last write *)
  Alcotest.(check (list (pair (float 0.0) (float 0.0))))
    "counter points"
    [ (0.0, 3.0); (100.0, 5.0); (200.0, 1.0) ]
    (List.map (fun p -> (p.Ts.t_ms, p.Ts.v)) (Ts.points ts "ev"));
  Alcotest.(check (list (pair (float 0.0) (float 0.0))))
    "gauge last-write-wins" [ (0.0, 9.0) ]
    (List.map (fun p -> (p.Ts.t_ms, p.Ts.v)) (Ts.points ts "lvl"));
  Alcotest.(check (list string)) "names sorted" [ "ev"; "lvl" ] (Ts.names ts);
  (* kind discipline *)
  Alcotest.(check bool) "set on counter raises" true
    (try
       Ts.set c ~at:0.0 1.0;
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "kind clash raises" true
    (try
       ignore (Ts.gauge ts "ev");
       false
     with Invalid_argument _ -> true);
  (* renderings parse and are stable *)
  let json = Ts.to_json ts in
  Alcotest.(check bool) ("valid JSON: " ^ json) true (json_valid json);
  Alcotest.(check string) "json stable" json (Ts.to_json ts);
  let m = Metrics.create () in
  Ts.export_metrics ts m;
  let snap = Metrics.snapshot m in
  (match Metrics.find snap "ts.ev.sum" with
  | Some (Metrics.Gauge g) -> Alcotest.(check (float 0.0)) "counter sum" 9.0 g
  | _ -> Alcotest.fail "ts.ev.sum missing");
  match Metrics.find snap "ts.lvl.last" with
  | Some (Metrics.Gauge g) -> Alcotest.(check (float 0.0)) "gauge last" 9.0 g
  | _ -> Alcotest.fail "ts.lvl.last missing"

let test_timeseries_bucket_edges () =
  let ts = Ts.create ~bucket_ms:100.0 () in
  let c = Ts.counter ts "ev" in
  (* a stamp exactly on a bucket edge opens the new bucket, never pads the
     old one *)
  Ts.add c ~at:0.0 1.0;
  Ts.add c ~at:100.0 1.0;
  Ts.add c ~at:200.0 1.0;
  Alcotest.(check (list (float 0.0)))
    "edge stamps open their own buckets" [ 0.0; 100.0; 200.0 ]
    (List.map (fun p -> p.Ts.t_ms) (Ts.points ts "ev"));
  (* equal stamps are fine: same bucket, values accumulate *)
  Ts.add c ~at:200.0 2.0;
  Alcotest.(check (float 0.0)) "equal stamp accumulates" 3.0
    (List.nth (Ts.points ts "ev") 2).Ts.v;
  (* a single-point series has a well-defined horizon *)
  let ts1 = Ts.create ~bucket_ms:100.0 () in
  Ts.set (Ts.gauge ts1 "g") ~at:42.0 1.0;
  Alcotest.(check (list (float 0.0))) "single point" [ 0.0 ]
    (List.map (fun p -> p.Ts.t_ms) (Ts.points ts1 "g"));
  Alcotest.(check bool) ("single-point json parses: " ^ Ts.to_json ts1) true
    (json_valid (Ts.to_json ts1))

let test_timeseries_monotone_stamps () =
  let ts = Ts.create ~bucket_ms:100.0 () in
  let c = Ts.counter ts "ev" in
  let g = Ts.gauge ts "lvl" in
  Ts.add c ~at:250.0 1.0;
  Ts.set g ~at:300.0 5.0;
  (* regressing stamps raise per series, not globally: "ev" is at 250 *)
  Alcotest.check_raises "add regresses"
    (Invalid_argument "Timeseries.add: stamp 249 regresses behind 250") (fun () ->
      Ts.add c ~at:249.0 1.0);
  Alcotest.check_raises "set regresses"
    (Invalid_argument "Timeseries.set: stamp 299 regresses behind 300") (fun () ->
      Ts.set g ~at:299.0 1.0);
  (* equal stamps are allowed, and an independent series has its own clock *)
  Ts.add c ~at:250.0 1.0;
  Ts.set g ~at:300.0 6.0;
  Ts.add (Ts.counter ts "other") ~at:10.0 1.0;
  (* kind discipline is checked before monotonicity: a stale-stamped write
     of the wrong kind reports the kind clash *)
  Alcotest.(check bool) "kind check first" true
    (try
       Ts.set c ~at:0.0 1.0;
       false
     with Invalid_argument m -> m = "Timeseries.set: counter series")

(* --- registry export from the runner ----------------------------------------- *)

let test_runner_registry_export () =
  let cfg =
    let open Experiments.Config in
    let c = paper_default in
    let c = with_nodes c 96 in
    let c = with_requests c 400 in
    with_seed c 11
  in
  let reg = Metrics.create () in
  let m = Experiments.Runner.run ~registry:reg cfg in
  let snap = Metrics.snapshot reg in
  (match Metrics.find snap "runner.requests" with
  | Some (Metrics.Counter c) -> Alcotest.(check int) "request count" 400 c
  | _ -> Alcotest.fail "runner.requests missing");
  (match Metrics.find snap "runner.hieras.hops_mean" with
  | Some (Metrics.Gauge g) ->
      Alcotest.(check (float 0.0)) "hops mean matches metrics" (Stats.Summary.mean m.Experiments.Runner.hieras_hops) g
  | _ -> Alcotest.fail "runner.hieras.hops_mean missing");
  let json = Metrics.to_json snap in
  Alcotest.(check bool) "registry JSON parses" true (json_valid json)

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter and gauge" `Quick test_counter_gauge;
          Alcotest.test_case "kind clash raises" `Quick test_kind_clash_raises;
          Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
          Alcotest.test_case "histogram validation" `Quick test_histogram_validation;
          Alcotest.test_case "snapshot sorted + rendering" `Quick test_snapshot_sorted_and_rendering;
        ] );
      ( "trace-sinks",
        [
          Alcotest.test_case "disabled tracer" `Quick test_disabled_tracer;
          Alcotest.test_case "ring keeps most recent" `Quick test_ring_keeps_most_recent;
          Alcotest.test_case "ring ids sequential" `Quick test_ring_ids_sequential;
          Alcotest.test_case "jsonl one line per event" `Quick test_jsonl_sink_lines;
        ] );
      ("trace-invariants", [ test_trace_invariants ]);
      ( "golden",
        [
          Alcotest.test_case "fixed-seed TS-64 trace is byte-identical" `Quick test_golden_trace;
          Alcotest.test_case "golden file is valid JSONL" `Quick test_golden_trace_is_valid_jsonl;
        ] );
      ( "jsonu",
        [
          Alcotest.test_case "parser accepts/rejects/round-trips" `Quick test_jsonu_parse;
          Alcotest.test_case "registry JSON round-trips floats" `Quick test_metrics_json_roundtrip;
        ] );
      ( "analyze",
        [
          test_analyze_invariants;
          Alcotest.test_case "golden report is byte-identical" `Quick test_analyze_golden_report;
          Alcotest.test_case "audit detects corrupted traces" `Quick
            test_analyze_audit_detects_corruption;
          Alcotest.test_case "compare flags trace-report regressions" `Quick test_analyze_compare;
          Alcotest.test_case "compare flags bench regressions" `Quick test_analyze_compare_bench;
        ] );
      ( "timer",
        [
          Alcotest.test_case "disabled timer records nothing" `Quick test_timer_disabled;
          Alcotest.test_case "span tree and accumulation" `Quick test_timer_tree;
          Alcotest.test_case "raising span still recorded" `Quick test_timer_raise_still_recorded;
          Alcotest.test_case "renderings deterministic under fake clock" `Quick
            test_timer_renderings_deterministic;
        ] );
      ( "timeseries",
        [
          Alcotest.test_case "disabled collector records nothing" `Quick test_timeseries_disabled;
          Alcotest.test_case "bucketing, kinds, renderings" `Quick test_timeseries_bucketing;
          Alcotest.test_case "bucket edges and single points" `Quick test_timeseries_bucket_edges;
          Alcotest.test_case "regressing stamps fail loudly" `Quick
            test_timeseries_monotone_stamps;
        ] );
      ("engine", [ test_engine_conservation ]);
      ("runner", [ Alcotest.test_case "registry export" `Quick test_runner_registry_export ]);
    ]
