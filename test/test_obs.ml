(* Tests for the observability layer: the metrics registry, the trace
   sinks, the trace-stream invariants of both routing algorithms (qcheck
   properties over random seeds/topologies), the golden-trace regression,
   and the simulation engine's counter conservation law. *)

module Metrics = Obs.Metrics
module Trace = Obs.Trace
module Lookup = Chord.Lookup
module Hlookup = Hieras.Hlookup

(* --- a minimal JSON validity checker ---------------------------------------
   The repo has no JSON parser dependency; the observability layer only
   emits. This recursive-descent acceptor is enough to assert that every
   emitted line/object is well-formed standalone JSON. *)

let json_valid (s : string) : bool =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let fail = ref false in
  let expect c = match peek () with Some x when x = c -> advance () | _ -> fail := true in
  let rec value () =
    skip_ws ();
    (match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> string_lit ()
    | Some ('t' | 'f' | 'n') -> keyword ()
    | Some ('-' | '0' .. '9') -> number ()
    | _ -> fail := true);
    skip_ws ()
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then advance ()
    else begin
      let continue = ref true in
      while !continue && not !fail do
        skip_ws ();
        string_lit ();
        skip_ws ();
        expect ':';
        value ();
        match peek () with
        | Some ',' -> advance ()
        | Some '}' ->
            advance ();
            continue := false
        | _ ->
            fail := true;
            continue := false
      done
    end
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then advance ()
    else begin
      let continue = ref true in
      while !continue && not !fail do
        value ();
        match peek () with
        | Some ',' -> advance ()
        | Some ']' ->
            advance ();
            continue := false
        | _ ->
            fail := true;
            continue := false
      done
    end
  and string_lit () =
    expect '"';
    let closed = ref false in
    while (not !closed) && not !fail do
      match peek () with
      | None -> fail := true
      | Some '\\' ->
          advance ();
          if peek () = None then fail := true else advance ()
      | Some '"' ->
          advance ();
          closed := true
      | Some _ -> advance ()
    done
  and keyword () =
    let kw = [ "true"; "false"; "null" ] in
    match
      List.find_opt (fun k -> !pos + String.length k <= n && String.sub s !pos (String.length k) = k) kw
    with
    | Some k -> pos := !pos + String.length k
    | None -> fail := true
  and number () =
    (* permissive: consume the number-ish characters, float_of_string checks *)
    let start = !pos in
    while
      !pos < n
      && match s.[!pos] with '-' | '+' | '.' | 'e' | 'E' | '0' .. '9' -> true | _ -> false
    do
      advance ()
    done;
    if float_of_string_opt (String.sub s start (!pos - start)) = None then fail := true
  in
  value ();
  (not !fail) && !pos = n

(* --- metrics registry ------------------------------------------------------ *)

let test_counter_gauge () =
  let m = Metrics.create () in
  let c = Metrics.counter m "a.count" in
  Metrics.incr c;
  Metrics.add c 4;
  Alcotest.(check int) "incr+add" 5 (Metrics.counter_value c);
  (* re-registration returns the same handle *)
  Metrics.incr (Metrics.counter m "a.count");
  Alcotest.(check int) "idempotent registration" 6 (Metrics.counter_value c);
  Metrics.set_counter c 42;
  Alcotest.(check int) "set_counter" 42 (Metrics.counter_value c);
  let g = Metrics.gauge m "a.gauge" in
  Metrics.set g 2.5;
  Alcotest.(check (float 0.0)) "gauge" 2.5 (Metrics.gauge_value (Metrics.gauge m "a.gauge"));
  ignore (Metrics.gauge_value g)

let test_kind_clash_raises () =
  let m = Metrics.create () in
  ignore (Metrics.counter m "x");
  Alcotest.check_raises "gauge over counter"
    (Invalid_argument "Metrics: x is already registered as a counter") (fun () ->
      ignore (Metrics.gauge m "x"));
  Alcotest.check_raises "histogram over counter"
    (Invalid_argument "Metrics: x is already registered as a counter") (fun () ->
      ignore (Metrics.histogram m "x"))

let test_histogram_buckets () =
  let m = Metrics.create () in
  let h = Metrics.histogram ~buckets:[| 1.0; 10.0; 100.0 |] m "h" in
  List.iter (Metrics.observe h) [ 0.5; 1.0; 5.0; 10.0; 99.0; 100.5; 1e9 ];
  match Metrics.find (Metrics.snapshot m) "h" with
  | Some (Metrics.Hist hs) ->
      Alcotest.(check int) "count" 7 hs.Metrics.count;
      Alcotest.(check (array int)) "bucket counts" [| 2; 2; 1; 2 |] hs.Metrics.bucket_counts;
      Alcotest.(check (float 1e-9)) "sum" (0.5 +. 1.0 +. 5.0 +. 10.0 +. 99.0 +. 100.5 +. 1e9)
        hs.Metrics.sum
  | _ -> Alcotest.fail "histogram not in snapshot"

let test_histogram_validation () =
  let m = Metrics.create () in
  Alcotest.check_raises "non-increasing"
    (Invalid_argument "Metrics.histogram: buckets must be strictly increasing") (fun () ->
      ignore (Metrics.histogram ~buckets:[| 1.0; 1.0 |] m "bad"));
  Alcotest.check_raises "empty" (Invalid_argument "Metrics.histogram: empty buckets") (fun () ->
      ignore (Metrics.histogram ~buckets:[||] m "bad2"))

let test_snapshot_sorted_and_rendering () =
  let m = Metrics.create () in
  Metrics.set (Metrics.gauge m "zz") 1.0;
  Metrics.incr (Metrics.counter m "aa");
  Metrics.observe (Metrics.histogram m "mm") 3.0;
  let snap = Metrics.snapshot m in
  Alcotest.(check (list string)) "sorted names" [ "aa"; "mm"; "zz" ] (List.map fst snap);
  (* snapshot is a frozen copy *)
  Metrics.incr (Metrics.counter m "aa");
  Alcotest.(check bool) "frozen" true (Metrics.find snap "aa" = Some (Metrics.Counter 1));
  let json = Metrics.to_json snap in
  Alcotest.(check bool) ("valid JSON: " ^ json) true (json_valid json);
  let text = Metrics.to_text snap in
  Alcotest.(check int) "one line per series" 3
    (List.length (String.split_on_char '\n' (String.trim text)))

(* --- trace sinks ------------------------------------------------------------ *)

let ev_hop i =
  Trace.Hop { lookup = 0; seq = i; layer = 1; from_node = i; to_node = i + 1; latency_ms = 1.0 }

let test_disabled_tracer () =
  Alcotest.(check bool) "disabled" false (Trace.enabled Trace.disabled);
  Alcotest.(check int) "start is 0" 0
    (Trace.start Trace.disabled ~algo:"chord" ~origin:3 ~key:"ff");
  Trace.hop Trace.disabled ~lookup:0 ~seq:0 ~layer:1 ~from_node:0 ~to_node:1 ~latency_ms:1.0;
  Alcotest.(check int) "no events" 0 (List.length (Trace.events Trace.disabled))

let test_ring_keeps_most_recent () =
  let tr = Trace.ring ~capacity:4 in
  Alcotest.(check bool) "enabled" true (Trace.enabled tr);
  for i = 0 to 9 do
    Trace.emit tr (ev_hop i)
  done;
  let seqs =
    List.map (function Trace.Hop { seq; _ } -> seq | _ -> -1) (Trace.events tr)
  in
  Alcotest.(check (list int)) "last 4, oldest first" [ 6; 7; 8; 9 ] seqs;
  Trace.clear tr;
  Alcotest.(check int) "cleared" 0 (List.length (Trace.events tr))

let test_ring_ids_sequential () =
  let tr = Trace.ring ~capacity:16 in
  let a = Trace.start tr ~algo:"chord" ~origin:0 ~key:"00" in
  let b = Trace.start tr ~algo:"hieras" ~origin:1 ~key:"01" in
  Alcotest.(check int) "first id" 0 a;
  Alcotest.(check int) "second id" 1 b

let test_jsonl_sink_lines () =
  let buf = Buffer.create 256 in
  let tr = Trace.jsonl (Buffer.add_string buf) in
  let id = Trace.start tr ~algo:"chord" ~origin:7 ~key:"abcd" in
  Trace.hop tr ~lookup:id ~seq:0 ~layer:1 ~from_node:7 ~to_node:9 ~latency_ms:12.5;
  Trace.finish tr ~lookup:id ~destination:9 ~hops:1 ~latency_ms:12.5 ~finished_at_layer:1;
  let lines = String.split_on_char '\n' (Buffer.contents buf) in
  Alcotest.(check int) "3 lines + trailing" 4 (List.length lines);
  Alcotest.(check string) "trailing newline" "" (List.nth lines 3);
  List.iteri
    (fun i l ->
      if i < 3 then Alcotest.(check bool) ("line parses: " ^ l) true (json_valid l))
    lines;
  Alcotest.(check bool) "start line tagged" true
    (String.length (List.nth lines 0) > 0
    && String.sub (List.nth lines 0) 0 14 = {|{"ev":"start",|})

(* --- trace-stream invariants (qcheck) --------------------------------------- *)

type scenario = {
  net : Chord.Network.t;
  hnet : Hieras.Hnetwork.t;
  lat : Topology.Latency.t;
  nodes : int;
  depth : int;
}

(* Topology construction dominates; cache scenarios per (seed mod variants). *)
let scenario_cache : (int, scenario) Hashtbl.t = Hashtbl.create 8

let scenario_of_seed seed =
  let variant = abs seed mod 6 in
  match Hashtbl.find_opt scenario_cache variant with
  | Some s -> s
  | None ->
      let rng = Prng.Rng.create ~seed:(1000 + variant) in
      let nodes = 48 + (17 * variant) in
      let depth = 2 + (variant mod 2) in
      let lat = Topology.Transit_stub.generate ~hosts:nodes rng in
      let net =
        Chord.Network.build ~space:Hashid.Id.sha1_space ~hosts:(Array.init nodes (fun i -> i)) ()
      in
      let lm = Binning.Landmark.choose_spread lat ~count:4 rng in
      let hnet = Hieras.Hnetwork.build ~chord:net ~lat ~landmarks:lm ~depth () in
      let s = { net; hnet; lat; nodes; depth } in
      Hashtbl.add scenario_cache variant s;
      s

let close a b = Float.abs (a -. b) <= 1e-9 *. (1.0 +. Float.abs a +. Float.abs b)

(* Inline constructor records can't escape a match, so events are destructured
   into these plain mirrors before checking. *)
type start_ev = { s_origin : int; s_key : string }
type hop_ev = { h_seq : int; h_layer : int; h_from : int; h_to : int; h_lat : float }
type end_ev = { e_dest : int; e_hops : int; e_lat : float; e_flayer : int }

(* Split a ring-buffered event stream back into per-lookup (start, hops, end)
   triples and check every invariant the mli promises. *)
let check_traced_lookup ~what ~origin ~key ~(events : Trace.event list) ~destination ~hop_count
    ~latency ~depth ~finished_at_layer =
  let starts, hops, ends =
    List.fold_left
      (fun (s, h, e) ev ->
        match ev with
        | Trace.Start { origin; key; _ } -> ({ s_origin = origin; s_key = key } :: s, h, e)
        | Trace.Hop { seq; layer; from_node; to_node; latency_ms; _ } ->
            ( s,
              { h_seq = seq; h_layer = layer; h_from = from_node; h_to = to_node; h_lat = latency_ms }
              :: h,
              e )
        | Trace.End { destination; hops; latency_ms; finished_at_layer; _ } ->
            ( s,
              h,
              { e_dest = destination; e_hops = hops; e_lat = latency_ms; e_flayer = finished_at_layer }
              :: e ))
      ([], [], []) events
  in
  let fail fmt = QCheck.Test.fail_reportf fmt in
  (match (starts, ends) with
  | [ st ], [ en ] ->
      if st.s_origin <> origin then fail "%s: start origin %d <> %d" what st.s_origin origin;
      if st.s_key <> key then fail "%s: start key mismatch" what;
      if en.e_dest <> destination then
        fail "%s: end destination %d <> %d" what en.e_dest destination;
      if en.e_hops <> hop_count then fail "%s: end hops %d <> %d" what en.e_hops hop_count;
      if not (close en.e_lat latency) then fail "%s: end latency %g <> %g" what en.e_lat latency;
      if en.e_flayer <> finished_at_layer then
        fail "%s: finished_at_layer %d <> %d" what en.e_flayer finished_at_layer
  | _ -> fail "%s: expected exactly one start and one end event" what);
  let hops = List.rev hops in
  if List.length hops <> hop_count then
    fail "%s: %d hop events <> hop_count %d" what (List.length hops) hop_count;
  List.iteri
    (fun i h ->
      if h.h_seq <> i then fail "%s: hop %d has seq %d" what i h.h_seq;
      if h.h_layer < 1 || h.h_layer > depth then
        fail "%s: hop %d layer %d outside 1..%d" what i h.h_layer depth)
    hops;
  (* hop-chain contiguity, anchored at origin and destination *)
  let rec chain prev = function
    | [] -> if prev <> destination then fail "%s: chain ends at %d, not destination %d" what prev destination
    | h :: rest ->
        if h.h_from <> prev then
          fail "%s: hop seq %d from %d, previous node %d" what h.h_seq h.h_from prev;
        chain h.h_to rest
  in
  if hop_count > 0 then chain origin hops
  else if origin <> destination then fail "%s: zero hops but origin <> destination" what;
  (* per-hop latencies sum to the result's total *)
  let sum = List.fold_left (fun acc h -> acc +. h.h_lat) 0.0 hops in
  if not (close sum latency) then fail "%s: hop latencies sum %g <> total %g" what sum latency

let trace_prop seed =
  let s = scenario_of_seed seed in
  let rng = Prng.Rng.create ~seed in
  let tr = Trace.ring ~capacity:8192 in
  for _ = 1 to 5 do
    let key = Hashid.Id.random Hashid.Id.sha1_space rng in
    let origin = Prng.Rng.int rng s.nodes in
    (* chord *)
    Trace.clear tr;
    let rc = Lookup.route ~trace:tr s.net s.lat ~origin ~key in
    check_traced_lookup ~what:"chord" ~origin ~key:(Hashid.Id.to_hex key) ~events:(Trace.events tr)
      ~destination:rc.Lookup.destination ~hop_count:rc.Lookup.hop_count ~latency:rc.Lookup.latency
      ~depth:1 ~finished_at_layer:1;
    (* hieras *)
    Trace.clear tr;
    let rh = Hlookup.route_checked ~trace:tr s.hnet ~origin ~key in
    check_traced_lookup ~what:"hieras" ~origin ~key:(Hashid.Id.to_hex key)
      ~events:(Trace.events tr) ~destination:rh.Hlookup.destination ~hop_count:rh.Hlookup.hop_count
      ~latency:rh.Hlookup.latency ~depth:s.depth ~finished_at_layer:rh.Hlookup.finished_at_layer;
    (* per-layer accounting closes over the totals *)
    let layer_hops = Array.fold_left ( + ) 0 rh.Hlookup.hops_per_layer in
    if layer_hops <> rh.Hlookup.hop_count then
      QCheck.Test.fail_reportf "hops_per_layer sums to %d, hop_count %d" layer_hops
        rh.Hlookup.hop_count;
    let layer_lat = Array.fold_left ( +. ) 0.0 rh.Hlookup.latency_per_layer in
    if not (close layer_lat rh.Hlookup.latency) then
      QCheck.Test.fail_reportf "latency_per_layer sums to %g, latency %g" layer_lat
        rh.Hlookup.latency;
    (* trace layer tags agree with the per-layer hop accounting *)
    let per_layer = Array.make s.depth 0 in
    List.iter
      (function
        | Trace.Hop { layer; _ } -> per_layer.(layer - 1) <- per_layer.(layer - 1) + 1
        | _ -> ())
      (Trace.events tr);
    Array.iteri
      (fun k c ->
        if c <> rh.Hlookup.hops_per_layer.(k) then
          QCheck.Test.fail_reportf "layer %d: %d traced hops, %d accounted" (k + 1) c
            rh.Hlookup.hops_per_layer.(k))
      per_layer
  done;
  true

let test_trace_invariants =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"traced lookups satisfy stream invariants" ~count:40
       QCheck.(int_range 0 100_000)
       trace_prop)

(* --- golden trace ----------------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let golden_path = Filename.concat "golden" "trace_ts64.jsonl"

let test_golden_trace () =
  let want = read_file golden_path in
  let got = Obs_test_support.Golden.build_trace () in
  let want_lines = String.split_on_char '\n' want in
  let got_lines = String.split_on_char '\n' got in
  Alcotest.(check int)
    "line count (regenerate with: dune exec test/support/gen_golden.exe > test/golden/trace_ts64.jsonl)"
    (List.length want_lines) (List.length got_lines);
  List.iteri
    (fun i w -> Alcotest.(check string) (Printf.sprintf "line %d" (i + 1)) w (List.nth got_lines i))
    want_lines;
  Alcotest.(check string) "byte-identical" want got

let test_golden_trace_is_valid_jsonl () =
  read_file golden_path |> String.split_on_char '\n'
  |> List.iteri (fun i line ->
         if line <> "" then
           Alcotest.(check bool) (Printf.sprintf "golden line %d parses" (i + 1)) true
             (json_valid line))

(* --- engine counter conservation (qcheck) ------------------------------------ *)

let engine_prop (seed, loss_centi, nodes, ops) =
  let rng = Prng.Rng.create ~seed in
  let eng =
    Simnet.Engine.create ~latency:(fun a b -> 1.0 +. float_of_int (abs (a - b))) ~nodes
  in
  let rate = float_of_int loss_centi /. 100.0 in
  if rate > 0.0 then Simnet.Engine.set_loss eng ~rate ~rng:(Prng.Rng.create ~seed:(seed + 1));
  (* interleave sends from node 0 (kept alive) with kills/revives of others,
     plus scheduled mid-flight kills — every drop path gets exercised *)
  for op = 1 to ops do
    match Prng.Rng.int rng 4 with
    | 0 | 1 -> Simnet.Engine.send eng ~src:0 ~dst:(Prng.Rng.int rng nodes) (fun () -> ())
    | 2 ->
        if nodes > 1 then
          let victim = 1 + Prng.Rng.int rng (nodes - 1) in
          if Prng.Rng.int rng 2 = 0 then Simnet.Engine.kill eng victim
          else Simnet.Engine.revive eng victim
    | _ ->
        if nodes > 1 then
          let victim = 1 + Prng.Rng.int rng (nodes - 1) in
          Simnet.Engine.schedule eng ~delay:(float_of_int (op mod 7))
            (fun () -> Simnet.Engine.kill eng victim)
  done;
  Simnet.Engine.run eng;
  let sent = Simnet.Engine.sent eng
  and delivered = Simnet.Engine.delivered eng
  and dead = Simnet.Engine.dropped_dead eng
  and loss = Simnet.Engine.dropped_loss eng in
  if sent <> delivered + dead + loss then
    QCheck.Test.fail_reportf "sent %d <> delivered %d + dropped_dead %d + dropped_loss %d" sent
      delivered dead loss;
  (* the registry export mirrors the engine's own fields exactly *)
  let m = Metrics.create () in
  Simnet.Engine.export_metrics eng m;
  let snap = Metrics.snapshot m in
  let check name v =
    match Metrics.find snap name with
    | Some (Metrics.Counter c) when c = v -> ()
    | Some (Metrics.Counter c) -> QCheck.Test.fail_reportf "%s: registry %d <> engine %d" name c v
    | _ -> QCheck.Test.fail_reportf "%s missing from registry snapshot" name
  in
  check "simnet.sent" sent;
  check "simnet.delivered" delivered;
  check "simnet.dropped_dead" dead;
  check "simnet.dropped_loss" loss;
  check "simnet.pending_events" 0;
  true

let test_engine_conservation =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"sent = delivered + dropped_dead + dropped_loss" ~count:100
       QCheck.(
         quad (int_range 0 1_000_000) (int_range 0 90) (int_range 1 24) (int_range 0 400))
       engine_prop)

(* --- registry export from the runner ----------------------------------------- *)

let test_runner_registry_export () =
  let cfg =
    let open Experiments.Config in
    let c = paper_default in
    let c = with_nodes c 96 in
    let c = with_requests c 400 in
    with_seed c 11
  in
  let reg = Metrics.create () in
  let m = Experiments.Runner.run ~registry:reg cfg in
  let snap = Metrics.snapshot reg in
  (match Metrics.find snap "runner.requests" with
  | Some (Metrics.Counter c) -> Alcotest.(check int) "request count" 400 c
  | _ -> Alcotest.fail "runner.requests missing");
  (match Metrics.find snap "runner.hieras.hops_mean" with
  | Some (Metrics.Gauge g) ->
      Alcotest.(check (float 0.0)) "hops mean matches metrics" (Stats.Summary.mean m.Experiments.Runner.hieras_hops) g
  | _ -> Alcotest.fail "runner.hieras.hops_mean missing");
  let json = Metrics.to_json snap in
  Alcotest.(check bool) "registry JSON parses" true (json_valid json)

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter and gauge" `Quick test_counter_gauge;
          Alcotest.test_case "kind clash raises" `Quick test_kind_clash_raises;
          Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
          Alcotest.test_case "histogram validation" `Quick test_histogram_validation;
          Alcotest.test_case "snapshot sorted + rendering" `Quick test_snapshot_sorted_and_rendering;
        ] );
      ( "trace-sinks",
        [
          Alcotest.test_case "disabled tracer" `Quick test_disabled_tracer;
          Alcotest.test_case "ring keeps most recent" `Quick test_ring_keeps_most_recent;
          Alcotest.test_case "ring ids sequential" `Quick test_ring_ids_sequential;
          Alcotest.test_case "jsonl one line per event" `Quick test_jsonl_sink_lines;
        ] );
      ("trace-invariants", [ test_trace_invariants ]);
      ( "golden",
        [
          Alcotest.test_case "fixed-seed TS-64 trace is byte-identical" `Quick test_golden_trace;
          Alcotest.test_case "golden file is valid JSONL" `Quick test_golden_trace_is_valid_jsonl;
        ] );
      ("engine", [ test_engine_conservation ]);
      ("runner", [ Alcotest.test_case "registry export" `Quick test_runner_registry_export ]);
    ]
