(* The cross-algorithm tournament (ISSUE 8): the golden matrix bytes, the
   --jobs independence contract, and the shape invariants of the comparison
   matrix itself. *)

module T = Experiments.Tournament
module Config = Experiments.Config

let tcfg = Obs_test_support.Golden.tournament_cfg

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

(* one sequential run shared by every test (the matrix is deterministic) *)
let results = lazy (T.run tcfg)

let test_golden () =
  let golden = read_file (Filename.concat "golden" "tournament_ts64.json") in
  Alcotest.(check string)
    "tournament matrix is byte-identical to the golden\n\
     (if routing or the schema intentionally changed, regenerate with:\n\
     \  dune exec test/support/gen_golden.exe -- --tournament \\\n\
     \    > test/golden/tournament_ts64.json)"
    golden
    (T.results_json (Lazy.force results) ^ "\n")

let test_jobs_independent () =
  let seq = T.results_json (Lazy.force results) in
  let par =
    Parallel.Pool.with_pool ~jobs:4 (fun pool -> T.results_json (T.run ~pool tcfg))
  in
  Alcotest.(check string) "results_json identical for jobs 1 and 4" seq par

let expected_algos =
  [ "chord"; "hieras"; "pastry"; "hieras-pastry"; "can"; "hieras-can"; "tapestry"; "hieras-tapestry" ]

let test_matrix_shape () =
  let r = Lazy.force results in
  Alcotest.(check int) "lookups" tcfg.Config.requests r.T.lookups;
  Alcotest.(check (list string))
    "all eight contestants in fixed order" expected_algos
    (List.map (fun (e : T.entry) -> e.T.algo) r.T.entries);
  List.iter
    (fun (e : T.entry) ->
      Alcotest.(check int)
        (e.T.algo ^ ": every baseline route ends at the owner")
        r.T.lookups e.T.owner_ok;
      Alcotest.(check bool)
        (e.T.algo ^ ": hops_mean positive")
        true
        (e.T.hops_mean > 0.0 && e.T.hops_mean <= e.T.hops_max);
      Alcotest.(check bool)
        (e.T.algo ^ ": stretch >= 1")
        true (e.T.stretch >= 1.0);
      List.iter
        (fun (p : T.fault_point) ->
          Alcotest.(check bool)
            (e.T.algo ^ ": fault successes bounded by lookups")
            true
            (p.T.succeeded >= 0 && p.T.succeeded <= r.T.lookups);
          Alcotest.(check bool)
            (e.T.algo ^ ": non-negative recovery accounting")
            true
            (p.T.retries >= 0 && p.T.timeouts >= 0 && p.T.fallbacks >= 0
            && p.T.layer_escapes >= 0 && p.T.penalty_ms >= 0.0))
        [ e.T.crash; e.T.outage ])
    r.T.entries

let test_flat_substrates_no_escapes () =
  let r = Lazy.force results in
  List.iter
    (fun (e : T.entry) ->
      if not (List.exists (fun p -> e.T.algo = p) [ "hieras"; "hieras-pastry"; "hieras-can"; "hieras-tapestry" ])
      then (
        Alcotest.(check int) (e.T.algo ^ ": crash layer escapes") 0 e.T.crash.T.layer_escapes;
        Alcotest.(check int) (e.T.algo ^ ": outage layer escapes") 0 e.T.outage.T.layer_escapes))
    r.T.entries

let test_rejects_bad_fraction () =
  Alcotest.check_raises "fault_fraction out of range"
    (Invalid_argument "Tournament.run: fault fraction must be in [0, 0.95]") (fun () ->
      ignore (T.run ~fault_fraction:1.5 tcfg))

let () =
  Alcotest.run "tournament"
    [
      ( "tournament",
        [
          Alcotest.test_case "golden matrix bytes" `Quick test_golden;
          Alcotest.test_case "jobs independence (1 vs 4)" `Quick test_jobs_independent;
          Alcotest.test_case "matrix shape invariants" `Quick test_matrix_shape;
          Alcotest.test_case "flat substrates never layer-escape" `Quick
            test_flat_substrates_no_escapes;
          Alcotest.test_case "rejects bad fault fraction" `Quick test_rejects_bad_fraction;
        ] );
    ]
