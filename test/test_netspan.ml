(* Tests for message-level causal tracing (Obs.Netspan + engine plumbing):
   the deterministic sampler, the exact-count contract, causal-tree
   integrity at every sample rate, the engine accounting reconciliation,
   the netspan golden regression with its --jobs independence, and the
   per-lookup trace sampling that rides on the same sampler. *)

module Id = Hashid.Id
module Engine = Simnet.Engine
module CP = Chord.Protocol
module Netspan = Obs.Netspan
module Sampler = Obs.Sampler
module Analyze = Obs.Analyze

let space = Id.space ~bits:32

(* --- sampler ----------------------------------------------------------------- *)

let test_sampler_pure_and_bounded () =
  for i = 0 to 999 do
    Alcotest.(check bool) "deterministic" (Sampler.keep ~rate:0.5 i) (Sampler.keep ~rate:0.5 i);
    Alcotest.(check bool) "mix non-negative" true (Sampler.mix i >= 0);
    Alcotest.(check bool) "rate 1 keeps all" true (Sampler.keep ~rate:1.0 i);
    Alcotest.(check bool) "rate 0 keeps none" false (Sampler.keep ~rate:0.0 i)
  done;
  (* out-of-range rates clamp rather than misbehave *)
  Alcotest.(check bool) "rate > 1" true (Sampler.keep ~rate:2.0 17);
  Alcotest.(check bool) "rate < 0" false (Sampler.keep ~rate:(-1.0) 17)

let sampler_monotone_prop seed =
  let rng = Prng.Rng.create ~seed in
  let r1 = Prng.Rng.float rng 1.0 in
  let r2 = r1 +. Prng.Rng.float rng (1.0 -. r1) in
  for _ = 1 to 200 do
    let id = Prng.Rng.int rng 1_000_000 in
    if Sampler.keep ~rate:r1 id && not (Sampler.keep ~rate:r2 id) then
      QCheck.Test.fail_reportf "id %d kept at %g but dropped at %g >= it" id r1 r2
  done;
  true

let test_sampler_monotone =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"lower-rate sample is a subset of higher-rate" ~count:50
       QCheck.(int_range 0 100_000)
       sampler_monotone_prop)

let test_sampler_rate_roughly_honoured () =
  let kept = ref 0 in
  let n = 20_000 in
  for i = 0 to n - 1 do
    if Sampler.keep ~rate:0.25 i then incr kept
  done;
  let frac = float_of_int !kept /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "kept fraction %g within 0.25 +- 0.02" frac)
    true
    (Float.abs (frac -. 0.25) < 0.02)

(* --- sink basics ------------------------------------------------------------- *)

let test_disabled_sink () =
  let t = Netspan.disabled in
  Alcotest.(check bool) "disabled" false (Netspan.enabled t);
  Alcotest.(check int) "next_span is 0" 0 (Netspan.next_span t);
  Alcotest.(check int) "and does not advance" 0 (Netspan.next_span t);
  Netspan.msg t ~span:0 ~parent:(-1) ~root:0 ~kind:Netspan.Lookup ~src:0 ~dst:1 ~at:0.0 ~lat:1.0;
  Netspan.drop t ~span:0 ~root:0 ~at:0.0 ~why:`Loss;
  Alcotest.(check int) "nothing counted" 0 (Netspan.messages t)

let test_kind_taxonomy () =
  Alcotest.(check int) "n_kinds" (List.length Netspan.all_kinds) Netspan.n_kinds;
  List.iteri
    (fun i k ->
      Alcotest.(check int) "declaration order" i (Netspan.kind_index k);
      (match Netspan.kind_of_name (Netspan.kind_name k) with
      | Some k' -> Alcotest.(check int) "name round-trips" i (Netspan.kind_index k')
      | None -> Alcotest.fail ("kind_of_name fails on " ^ Netspan.kind_name k));
      Alcotest.(check bool) "wire bytes positive" true (Netspan.wire_bytes k > 0))
    Netspan.all_kinds;
  Alcotest.(check (option reject)) "unknown name" None (Netspan.kind_of_name "frobnicate")

(* --- a small protocol world with the tracer attached ------------------------- *)

let ids n = Array.init n (fun i -> Id.of_hash space (Printf.sprintf "nspan-%d" i))

(* 12 chord nodes joining, stabilizing, three failing, then 20 lookups under
   2% loss — every span kind family and both drop paths get traffic. The
   whole scenario is a deterministic function of [seed]. *)
let run_world ?(sample = 1.0) ~seed sink_of =
  let rng = Prng.Rng.create ~seed in
  let hosts = 12 in
  let lat = Topology.Transit_stub.generate ~hosts rng in
  let eng = Engine.create ~latency:(fun a b -> Topology.Latency.host_latency lat a b) ~nodes:hosts in
  let net = sink_of ~sample in
  if Netspan.enabled net then Engine.attach_netspan eng net;
  let p = CP.create (CP.default_config space) eng in
  let id = ids hosts in
  CP.spawn p ~addr:0 ~id:id.(0);
  for i = 1 to hosts - 1 do
    Engine.schedule eng ~delay:(float_of_int i *. 250.0) (fun () ->
        CP.join p ~addr:i ~id:id.(i) ~bootstrap:0)
  done;
  Engine.run ~until:30_000.0 eng;
  Engine.set_loss eng ~rate:0.02 ~rng:(Prng.Rng.create ~seed:(seed + 1));
  List.iter (CP.fail_node p) [ 3; 7 ];
  let krng = Prng.Rng.create ~seed:(seed + 2) in
  for _ = 1 to 20 do
    let key = Id.random space krng in
    let origin = if Prng.Rng.int krng 2 = 0 then 0 else 1 in
    CP.lookup p ~origin ~key (fun _ -> ())
  done;
  Engine.run ~until:90_000.0 eng;
  eng

let traced_world ~sample ~seed =
  let buf = Buffer.create 65536 in
  let eng = run_world ~sample ~seed (fun ~sample -> Netspan.jsonl ~sample (Buffer.add_string buf)) in
  (eng, Buffer.contents buf)

let nonblank_lines s = String.split_on_char '\n' s |> List.filter (fun l -> l <> "")

let test_accounting_reconciles () =
  let eng, out = traced_world ~sample:1.0 ~seed:42 in
  let net = Engine.netspan eng in
  (* the tracer was attached before the first send, so its exact counters
     mirror the engine's own *)
  Alcotest.(check int) "messages = engine sent" (Engine.sent eng) (Netspan.messages net);
  Alcotest.(check int) "kind counts sum to messages" (Netspan.messages net)
    (List.fold_left (fun acc k -> acc + Netspan.kind_count net k) 0 Netspan.all_kinds);
  (* loss only ever hits messages, so that counter matches exactly; the
     engine's dropped_dead additionally counts timers expiring on dead
     nodes, which are not messages and leave no span *)
  Alcotest.(check int) "drops loss" (Engine.dropped_loss eng) (Netspan.drops_loss net);
  Alcotest.(check bool) "dead drops bounded by the engine's" true
    (Netspan.drops_dead net <= Engine.dropped_dead eng);
  Alcotest.(check bool) "scenario exercises dead drops" true (Netspan.drops_dead net > 0);
  Alcotest.(check bool) "scenario exercises loss drops" true (Netspan.drops_loss net > 0);
  (* at rate 1 every send is a line: msg lines = messages, drop lines = drops *)
  let lines = nonblank_lines out in
  let msgs = List.filter (fun l -> String.length l > 10 && String.sub l 0 11 = {|{"ev":"msg"|}) lines in
  Alcotest.(check int) "one msg line per send" (Netspan.messages net) (List.length msgs);
  Alcotest.(check int) "one drop line per drop"
    (Netspan.drops_dead net + Netspan.drops_loss net)
    (List.length lines - List.length msgs);
  (* registry export mirrors the same counters *)
  let m = Obs.Metrics.create () in
  Netspan.export_metrics net m;
  let snap = Obs.Metrics.snapshot m in
  match Obs.Metrics.find snap "netspan.msgs.total" with
  | Some (Obs.Metrics.Counter c) -> Alcotest.(check int) "exported total" (Netspan.messages net) c
  | _ -> Alcotest.fail "netspan.msgs.total missing"

let test_tracing_does_not_change_simulation () =
  let bare = run_world ~seed:42 (fun ~sample:_ -> Netspan.disabled) in
  let traced, _ = traced_world ~sample:1.0 ~seed:42 in
  Alcotest.(check int) "sent" (Engine.sent bare) (Engine.sent traced);
  Alcotest.(check int) "delivered" (Engine.delivered bare) (Engine.delivered traced);
  Alcotest.(check int) "dropped_dead" (Engine.dropped_dead bare) (Engine.dropped_dead traced);
  Alcotest.(check int) "dropped_loss" (Engine.dropped_loss bare) (Engine.dropped_loss traced)

let test_sampled_stream_is_stable_subset () =
  let _, full = traced_world ~sample:1.0 ~seed:42 in
  let _, sampled = traced_world ~sample:0.4 ~seed:42 in
  let full_lines = nonblank_lines full in
  let sampled_lines = nonblank_lines sampled in
  Alcotest.(check bool) "strictly smaller" true
    (List.length sampled_lines < List.length full_lines);
  Alcotest.(check bool) "non-empty" true (sampled_lines <> []);
  let full_set = Hashtbl.create 4096 in
  List.iter (fun l -> Hashtbl.replace full_set l ()) full_lines;
  List.iter
    (fun l ->
      if not (Hashtbl.mem full_set l) then
        Alcotest.fail ("sampled line not in the full trace: " ^ l))
    sampled_lines;
  (* exact counters do not depend on the rate *)
  let exact sample =
    let eng, _ = traced_world ~sample ~seed:42 in
    Netspan.messages (Engine.netspan eng)
  in
  Alcotest.(check int) "counts rate-independent" (exact 1.0) (exact 0.05)

(* the analyzer is the causality auditor: no duplicate span ids, no orphan
   parents, no drops of unknown spans — at any sample rate, because trees
   are kept or dropped whole *)
let audit_violations out =
  let an = Analyze.create () in
  List.iter (Analyze.feed_line an) (nonblank_lines out);
  match Analyze.net_report an with
  | None -> Alcotest.fail "no net report from a netspan stream"
  | Some nr -> nr.Analyze.n_violations

let test_causal_trees_never_orphaned () =
  List.iter
    (fun sample ->
      let _, out = traced_world ~sample ~seed:42 in
      Alcotest.(check int)
        (Printf.sprintf "0 violations at rate %g" sample)
        0 (audit_violations out))
    [ 1.0; 0.6; 0.25; 0.05 ]

let test_analyzer_counts_match_sink () =
  let eng, out = traced_world ~sample:1.0 ~seed:42 in
  let net = Engine.netspan eng in
  let an = Analyze.create () in
  List.iter (Analyze.feed_line an) (nonblank_lines out);
  match Analyze.net_report an with
  | None -> Alcotest.fail "no net report"
  | Some nr ->
      Alcotest.(check int) "msgs" (Netspan.messages net) nr.Analyze.n_msgs;
      Alcotest.(check int) "drops dead" (Netspan.drops_dead net) nr.Analyze.n_drops_dead;
      Alcotest.(check int) "drops loss" (Netspan.drops_loss net) nr.Analyze.n_drops_loss;
      List.iter
        (fun (ks : Analyze.kind_stat) ->
          match Netspan.kind_of_name ks.Analyze.k_kind with
          | None -> Alcotest.fail ("report names unknown kind " ^ ks.Analyze.k_kind)
          | Some k ->
              Alcotest.(check int) ("kind " ^ ks.Analyze.k_kind) (Netspan.kind_count net k)
                ks.Analyze.k_count)
        nr.Analyze.n_kinds;
      (* byte attribution closes: shares sum to 1 over the classes *)
      let share = List.fold_left (fun a (c : Analyze.class_stat) -> a +. c.Analyze.c_byte_share) 0.0 nr.Analyze.n_classes in
      Alcotest.(check bool) (Printf.sprintf "class shares sum to %g" share) true
        (Float.abs (share -. 1.0) < 1e-9);
      Alcotest.(check bool) "gini in [0,1]" true
        (nr.Analyze.n_gini >= 0.0 && nr.Analyze.n_gini <= 1.0)

(* --- golden ------------------------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let json_valid s =
  match Obs.Jsonu.parse s with Ok _ -> true | Error _ -> false

let golden_path = Filename.concat "golden" "netspan_ts64.jsonl"

let test_golden_netspan () =
  let want = read_file golden_path in
  let got = Obs_test_support.Golden.build_netspan () in
  Alcotest.(check int)
    "line count (regenerate with: dune exec test/support/gen_golden.exe -- --netspan > test/golden/netspan_ts64.jsonl)"
    (List.length (nonblank_lines want))
    (List.length (nonblank_lines got));
  Alcotest.(check string) "byte-identical" want got;
  Alcotest.(check int) "golden audits clean" 0 (audit_violations want)

let test_golden_netspan_is_valid_jsonl () =
  nonblank_lines (read_file golden_path)
  |> List.iteri (fun i line ->
         if not (json_valid line) then
           Alcotest.fail (Printf.sprintf "golden line %d does not parse: %s" (i + 1) line))

let test_netspan_jobs_independent () =
  let spec = Obs_test_support.Golden.netspan_spec in
  let seq = Experiments.Soak.net_trace (Experiments.Soak.run spec) in
  let par =
    Parallel.Pool.with_pool ~jobs:4 (fun pool ->
        Experiments.Soak.net_trace (Experiments.Soak.run ~pool spec))
  in
  Alcotest.(check string) "net trace bytes independent of --jobs" seq par

(* --- per-lookup trace sampling (Trace.jsonl ?sample) -------------------------- *)

let lookup_ids_of lines =
  (* collect the distinct "lookup":N ids appearing in a jsonl trace *)
  let ids = Hashtbl.create 64 in
  List.iter
    (fun l ->
      match Obs.Jsonu.parse l with
      | Ok j -> (
          match Option.bind (Obs.Jsonu.member "lookup" j) Obs.Jsonu.to_float with
          | Some f -> Hashtbl.replace ids (int_of_float f) ()
          | None -> ())
      | Error _ -> Alcotest.fail ("unparseable trace line: " ^ l))
    lines;
  ids

let test_trace_sampling_subset () =
  let route ~sample =
    let buf = Buffer.create 8192 in
    let tr = Obs.Trace.jsonl ~sample (Buffer.add_string buf) in
    let rng = Prng.Rng.create ~seed:7 in
    let lat = Topology.Transit_stub.generate ~hosts:48 rng in
    let net =
      Chord.Network.build ~space:Hashid.Id.sha1_space ~hosts:(Array.init 48 (fun i -> i)) ()
    in
    for _ = 1 to 40 do
      let key = Id.random Hashid.Id.sha1_space rng in
      let origin = Prng.Rng.int rng 48 in
      ignore (Chord.Lookup.route ~trace:tr net lat ~origin ~key)
    done;
    Buffer.contents buf
  in
  let full = nonblank_lines (route ~sample:1.0) in
  let sampled = nonblank_lines (route ~sample:0.5) in
  Alcotest.(check bool) "sampling drops lines" true (List.length sampled < List.length full);
  (* id allocation is sampling-independent, so the sampled stream is a
     line-for-line subset of the full one *)
  let full_set = Hashtbl.create 4096 in
  List.iter (fun l -> Hashtbl.replace full_set l ()) full;
  List.iter
    (fun l ->
      if not (Hashtbl.mem full_set l) then Alcotest.fail ("sampled line not in full trace: " ^ l))
    sampled;
  (* kept lookups are complete: the analyzer sees no violations and no
     open spans, because the keep decision is per lookup id *)
  let an = Analyze.create () in
  List.iter (Analyze.feed_line an) sampled;
  let r = Analyze.report an in
  Alcotest.(check int) "no violations" 0 r.Analyze.violations;
  Alcotest.(check int) "no open spans" 0 r.Analyze.spans_open;
  (* the kept set is exactly the sampler's verdict on the id space *)
  let kept = lookup_ids_of sampled and all = lookup_ids_of full in
  Hashtbl.iter
    (fun id () ->
      Alcotest.(check bool)
        (Printf.sprintf "lookup %d kept iff sampler keeps it" id)
        (Sampler.keep ~rate:0.5 id) (Hashtbl.mem kept id))
    all

let () =
  Alcotest.run "netspan"
    [
      ( "sampler",
        [
          Alcotest.test_case "pure, bounded, clamped" `Quick test_sampler_pure_and_bounded;
          test_sampler_monotone;
          Alcotest.test_case "rate roughly honoured" `Quick test_sampler_rate_roughly_honoured;
        ] );
      ( "sink",
        [
          Alcotest.test_case "disabled sink is inert" `Quick test_disabled_sink;
          Alcotest.test_case "kind taxonomy closed" `Quick test_kind_taxonomy;
        ] );
      ( "engine",
        [
          Alcotest.test_case "exact counters reconcile with the engine" `Quick
            test_accounting_reconciles;
          Alcotest.test_case "tracing never changes the simulation" `Quick
            test_tracing_does_not_change_simulation;
          Alcotest.test_case "sampled stream is a stable subset" `Quick
            test_sampled_stream_is_stable_subset;
        ] );
      ( "causality",
        [
          Alcotest.test_case "no orphans at any rate" `Quick test_causal_trees_never_orphaned;
          Alcotest.test_case "analyzer agrees with the sink" `Quick test_analyzer_counts_match_sink;
        ] );
      ( "golden",
        [
          Alcotest.test_case "fixed-seed soak netspan is byte-identical" `Quick test_golden_netspan;
          Alcotest.test_case "golden file is valid JSONL" `Quick test_golden_netspan_is_valid_jsonl;
          Alcotest.test_case "bytes independent of --jobs" `Quick test_netspan_jobs_independent;
        ] );
      ( "trace-sampling",
        [ Alcotest.test_case "per-lookup jsonl sampling" `Quick test_trace_sampling_subset ] );
    ]
