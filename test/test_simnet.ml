(* Tests for the discrete-event simulator: heap ordering, message timing,
   failures, loss and run control. *)

module Heap = Simnet.Event_heap
module Engine = Simnet.Engine

(* --- Event_heap ------------------------------------------------------------ *)

let test_heap_orders_by_time () =
  let h = Heap.create () in
  let fired = ref [] in
  let ev tag () = fired := tag :: !fired in
  Heap.push h ~time:3.0 (ev "c");
  Heap.push h ~time:1.0 (ev "a");
  Heap.push h ~time:2.0 (ev "b");
  let rec drain () =
    match Heap.pop h with
    | Some (_, f) ->
        f ();
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] (List.rev !fired)

let test_heap_fifo_ties () =
  let h = Heap.create () in
  let fired = ref [] in
  for i = 0 to 9 do
    Heap.push h ~time:5.0 (fun () -> fired := i :: !fired)
  done;
  let rec drain () =
    match Heap.pop h with
    | Some (_, f) ->
        f ();
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "insertion order on ties" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (List.rev !fired)

let test_heap_ties_survive_growth () =
  (* 200 equal-time events exceed the initial 64-slot capacity; the FIFO
     tie-break must survive the array reallocation *)
  let h = Heap.create () in
  let fired = ref [] in
  for i = 0 to 199 do
    Heap.push h ~time:1.0 (fun () -> fired := i :: !fired)
  done;
  let rec drain () =
    match Heap.pop h with
    | Some (_, f) ->
        f ();
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "insertion order across growth"
    (List.init 200 (fun i -> i))
    (List.rev !fired)

let test_heap_ties_among_distinct_times () =
  (* ties at two different times, pushed interleaved: global order is by
     time, and within each time by insertion *)
  let h = Heap.create () in
  let fired = ref [] in
  List.iter
    (fun (t, tag) -> Heap.push h ~time:t (fun () -> fired := tag :: !fired))
    [ (2.0, "b0"); (1.0, "a0"); (2.0, "b1"); (1.0, "a1"); (2.0, "b2"); (1.0, "a2") ];
  let rec drain () =
    match Heap.pop h with
    | Some (_, f) ->
        f ();
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list string)) "per-time FIFO"
    [ "a0"; "a1"; "a2"; "b0"; "b1"; "b2" ]
    (List.rev !fired)

let test_heap_ties_across_interleaved_pops () =
  (* popping must not disturb the FIFO order of remaining equal-time events *)
  let h = Heap.create () in
  let fired = ref [] in
  let push i = Heap.push h ~time:7.0 (fun () -> fired := i :: !fired) in
  let pop () = match Heap.pop h with Some (_, f) -> f () | None -> () in
  push 0;
  push 1;
  push 2;
  pop ();
  push 3;
  push 4;
  pop ();
  pop ();
  push 5;
  pop ();
  pop ();
  pop ();
  Alcotest.(check (list int)) "FIFO despite interleaved pops" [ 0; 1; 2; 3; 4; 5 ]
    (List.rev !fired)

let test_heap_size () =
  let h = Heap.create () in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Heap.push h ~time:1.0 (fun () -> ());
  Heap.push h ~time:2.0 (fun () -> ());
  Alcotest.(check int) "size 2" 2 (Heap.size h);
  ignore (Heap.pop h);
  Alcotest.(check int) "size 1" 1 (Heap.size h)

let test_heap_growth () =
  let h = Heap.create () in
  let n = 1000 in
  let rng = Prng.Rng.create ~seed:1 in
  let times = Array.init n (fun _ -> Prng.Rng.float rng 100.0) in
  Array.iter (fun t -> Heap.push h ~time:t (fun () -> ())) times;
  let popped = ref [] in
  let rec drain () =
    match Heap.pop h with
    | Some (t, _) ->
        popped := t :: !popped;
        drain ()
    | None -> ()
  in
  drain ();
  let sorted = List.sort compare (Array.to_list times) in
  Alcotest.(check bool) "pops in sorted order" true (List.rev !popped = sorted)

(* --- Engine ------------------------------------------------------------------ *)

let const_latency l _ _ = l

let test_send_delivery_time () =
  let eng = Engine.create ~latency:(fun a b -> float_of_int (abs (a - b)) *. 10.0) ~nodes:3 in
  let arrival = ref (-1.0) in
  Engine.send eng ~src:0 ~dst:2 (fun () -> arrival := Engine.now eng);
  Engine.run eng;
  Alcotest.(check (float 1e-9)) "arrives at latency" 20.0 !arrival;
  Alcotest.(check int) "sent" 1 (Engine.sent eng);
  Alcotest.(check int) "delivered" 1 (Engine.delivered eng)

let test_send_from_dead_raises () =
  let eng = Engine.create ~latency:(const_latency 1.0) ~nodes:2 in
  Engine.kill eng 0;
  Alcotest.check_raises "dead source" (Invalid_argument "Engine.send: source node is dead")
    (fun () -> Engine.send eng ~src:0 ~dst:1 (fun () -> ()))

let test_send_after_revive_delivers () =
  let eng = Engine.create ~latency:(const_latency 1.0) ~nodes:2 in
  Engine.kill eng 0;
  Engine.revive eng 0;
  let ran = ref false in
  Engine.send eng ~src:0 ~dst:1 (fun () -> ran := true);
  Engine.run eng;
  Alcotest.(check bool) "revived source can send" true !ran

let test_message_to_dead_dropped () =
  let eng = Engine.create ~latency:(const_latency 5.0) ~nodes:2 in
  let ran = ref false in
  Engine.send eng ~src:0 ~dst:1 (fun () -> ran := true);
  Engine.kill eng 1;
  Engine.run eng;
  Alcotest.(check bool) "not delivered" false !ran;
  Alcotest.(check int) "dropped_dead" 1 (Engine.dropped_dead eng)

let test_kill_midflight () =
  (* a message sent before the kill but arriving after must be dropped;
     revive after arrival does not resurrect it *)
  let eng = Engine.create ~latency:(const_latency 10.0) ~nodes:2 in
  let ran = ref 0 in
  Engine.send eng ~src:0 ~dst:1 (fun () -> incr ran);
  Engine.schedule eng ~delay:5.0 (fun () -> Engine.kill eng 1);
  Engine.schedule eng ~delay:15.0 (fun () -> Engine.revive eng 1);
  Engine.send eng ~src:0 ~dst:1 (fun () -> incr ran);
  Engine.run eng;
  Alcotest.(check int) "both dropped (arrival at t=10, dead 5..15)" 0 !ran

let test_kill_revive_transition_only () =
  (* killing a dead node / reviving a live one are no-ops: no counter
     bumps, no live-count skew — overlapping fault schedules compose *)
  let eng = Engine.create ~latency:(const_latency 1.0) ~nodes:3 in
  Alcotest.(check int) "all alive" 3 (Engine.live_count eng);
  Engine.revive eng 1;
  Alcotest.(check int) "revive of live is no-op" 0 (Engine.revivals eng);
  Engine.kill eng 1;
  Engine.kill eng 1;
  Engine.kill eng 1;
  Alcotest.(check int) "one death despite three kills" 1 (Engine.deaths eng);
  Alcotest.(check int) "live count once" 2 (Engine.live_count eng);
  Engine.revive eng 1;
  Engine.revive eng 1;
  Alcotest.(check int) "one revival despite two revives" 1 (Engine.revivals eng);
  Alcotest.(check int) "live count restored" 3 (Engine.live_count eng);
  Alcotest.(check bool) "alive again" true (Engine.is_alive eng 1);
  (* conservation: deaths - revivals = nodes - live *)
  Engine.kill eng 0;
  Engine.kill eng 2;
  Alcotest.(check int) "conservation"
    (3 - Engine.live_count eng)
    (Engine.deaths eng - Engine.revivals eng);
  (* double-kill must not double-count messages dropped at a dead node *)
  let eng2 = Engine.create ~latency:(const_latency 5.0) ~nodes:2 in
  Engine.send eng2 ~src:0 ~dst:1 (fun () -> ());
  Engine.kill eng2 1;
  Engine.kill eng2 1;
  Engine.run eng2;
  Alcotest.(check int) "dropped once" 1 (Engine.dropped_dead eng2)

let test_timer_on_dead_node () =
  let eng = Engine.create ~latency:(const_latency 1.0) ~nodes:1 in
  let ran = ref false in
  Engine.timer eng ~node:0 ~delay:10.0 (fun () -> ran := true);
  Engine.kill eng 0;
  Engine.run eng;
  Alcotest.(check bool) "timer dropped" false !ran

let test_schedule_unconditional () =
  let eng = Engine.create ~latency:(const_latency 1.0) ~nodes:1 in
  let ran = ref false in
  Engine.kill eng 0;
  Engine.schedule eng ~delay:1.0 (fun () -> ran := true);
  Engine.run eng;
  Alcotest.(check bool) "god-event fires" true !ran

let test_run_until () =
  let eng = Engine.create ~latency:(const_latency 1.0) ~nodes:1 in
  let fired = ref [] in
  List.iter
    (fun d -> Engine.schedule eng ~delay:d (fun () -> fired := d :: !fired))
    [ 1.0; 5.0; 9.0 ];
  Engine.run ~until:6.0 eng;
  Alcotest.(check (list (float 1e-9))) "only events before 6" [ 1.0; 5.0 ] (List.rev !fired);
  Alcotest.(check (float 1e-9)) "clock at boundary" 6.0 (Engine.now eng);
  Engine.run eng;
  Alcotest.(check (list (float 1e-9))) "rest delivered on resume" [ 1.0; 5.0; 9.0 ]
    (List.rev !fired)

let test_clock_monotonic () =
  let eng = Engine.create ~latency:(const_latency 3.0) ~nodes:2 in
  let times = ref [] in
  let record () = times := Engine.now eng :: !times in
  Engine.schedule eng ~delay:1.0 record;
  Engine.schedule eng ~delay:2.0 (fun () ->
      record ();
      Engine.send eng ~src:0 ~dst:1 record);
  Engine.run eng;
  let l = List.rev !times in
  Alcotest.(check (list (float 1e-9))) "1, 2, then 2+3" [ 1.0; 2.0; 5.0 ] l

let test_message_loss () =
  let eng = Engine.create ~latency:(const_latency 1.0) ~nodes:2 in
  Engine.set_loss eng ~rate:0.5 ~rng:(Prng.Rng.create ~seed:5);
  let delivered = ref 0 in
  for _ = 1 to 1000 do
    Engine.send eng ~src:0 ~dst:1 (fun () -> incr delivered)
  done;
  Engine.run eng;
  Alcotest.(check int) "accounting adds up" 1000 (!delivered + Engine.dropped_loss eng);
  Alcotest.(check bool) "roughly half lost" true
    (Engine.dropped_loss eng > 400 && Engine.dropped_loss eng < 600)

let test_loss_validation () =
  let eng = Engine.create ~latency:(const_latency 1.0) ~nodes:1 in
  Alcotest.check_raises "rate 1" (Invalid_argument "Engine.set_loss: rate must be in [0, 1)")
    (fun () -> Engine.set_loss eng ~rate:1.0 ~rng:(Prng.Rng.create ~seed:1))

let test_run_until_quiet_guard () =
  let eng = Engine.create ~latency:(const_latency 1.0) ~nodes:1 in
  (* a self-perpetuating timer chain *)
  let rec tick () = Engine.timer eng ~node:0 ~delay:1.0 tick in
  tick ();
  match Engine.run_until_quiet ~max_events:100 eng with
  | () -> Alcotest.fail "should have detected livelock"
  | exception Failure _ -> ()

let test_cascading_sends () =
  (* a relay chain: 0 -> 1 -> 2 -> 3, accumulating latency *)
  let eng = Engine.create ~latency:(const_latency 2.0) ~nodes:4 in
  let final = ref (-1.0) in
  let rec relay n () = if n < 3 then Engine.send eng ~src:n ~dst:(n + 1) (relay (n + 1)) else final := Engine.now eng in
  Engine.send eng ~src:0 ~dst:1 (relay 1);
  Engine.run eng;
  Alcotest.(check (float 1e-9)) "3 hops x 2ms" 6.0 !final

let () =
  Alcotest.run "simnet"
    [
      ( "event_heap",
        [
          Alcotest.test_case "time order" `Quick test_heap_orders_by_time;
          Alcotest.test_case "FIFO ties" `Quick test_heap_fifo_ties;
          Alcotest.test_case "ties survive growth" `Quick test_heap_ties_survive_growth;
          Alcotest.test_case "ties among distinct times" `Quick test_heap_ties_among_distinct_times;
          Alcotest.test_case "ties across interleaved pops" `Quick
            test_heap_ties_across_interleaved_pops;
          Alcotest.test_case "size" `Quick test_heap_size;
          Alcotest.test_case "growth + global order" `Quick test_heap_growth;
        ] );
      ( "engine",
        [
          Alcotest.test_case "delivery time" `Quick test_send_delivery_time;
          Alcotest.test_case "dead source" `Quick test_send_from_dead_raises;
          Alcotest.test_case "send after revive" `Quick test_send_after_revive_delivers;
          Alcotest.test_case "message to dead" `Quick test_message_to_dead_dropped;
          Alcotest.test_case "kill midflight" `Quick test_kill_midflight;
          Alcotest.test_case "kill/revive transition-only" `Quick
            test_kill_revive_transition_only;
          Alcotest.test_case "timer on dead node" `Quick test_timer_on_dead_node;
          Alcotest.test_case "schedule unconditional" `Quick test_schedule_unconditional;
          Alcotest.test_case "run until" `Quick test_run_until;
          Alcotest.test_case "clock monotonic" `Quick test_clock_monotonic;
          Alcotest.test_case "message loss" `Quick test_message_loss;
          Alcotest.test_case "loss validation" `Quick test_loss_validation;
          Alcotest.test_case "livelock guard" `Quick test_run_until_quiet_guard;
          Alcotest.test_case "cascading sends" `Quick test_cascading_sends;
        ] );
    ]
