The cache subcommand validates its flags up front with exit code 2 (usage
error), before any topology construction starts.

  $ ../bin/hieras_sim.exe cache --pool 2
  hieras-sim: --pool must be >= 4 (got 2)
  [2]

  $ ../bin/hieras_sim.exe cache --objects 0
  hieras-sim: --objects must be >= 1 (got 0)
  [2]

  $ ../bin/hieras_sim.exe cache --replication 0
  hieras-sim: --replication factors must be in 1..8
  [2]

  $ ../bin/hieras_sim.exe cache --pool 4 --replication 6
  hieras-sim: --replication factors must not exceed the pool
  [2]

  $ ../bin/hieras_sim.exe cache --alphas ''
  hieras-sim: --alphas must name at least one zipf skew
  [2]

  $ ../bin/hieras_sim.exe cache --fault wildfire
  hieras-sim: unknown fault "wildfire" (none | crash | spaced)
  [2]

  $ ../bin/hieras_sim.exe cache --fault-frac 0.6
  hieras-sim: --fault-frac must be in [0, 0.5] (got 0.6)
  [2]

  $ ../bin/hieras_sim.exe cache --cache-entries 0
  hieras-sim: --cache-entries must be >= 1 (got 0)
  [2]

  $ ../bin/hieras_sim.exe cache --loss 1
  hieras-sim: --loss must be in [0, 1) (got 1)
  [2]

A tiny healthy run exits 0 and reports one row per (algorithm,
replication, skew) cell:

  $ ../bin/hieras_sim.exe cache --pool 8 --objects 4 --requests 24 \
  >   --replication 2 --alphas 0.8 --seed 7 | grep -c '^\(chord\|hieras\) '
  2

The acceptance scenario: a spaced schedule kills a quarter of the pool,
never two nodes inside one replica window, so every acknowledged object
stays reachable — measured availability 100% (zero absent, zero
unreachable) for both protocols:

  $ ../bin/hieras_sim.exe cache --pool 12 --objects 6 --requests 40 \
  >   --replication 2 --alphas 0.8 --fault spaced --fault-frac 0.25 \
  >   --seed 7 --out f.json > /dev/null
  $ grep -o '"served":40' f.json | wc -l | tr -d ' '
  2
  $ grep -o '"absent":0' f.json | wc -l | tr -d ' '
  2
  $ grep -o '"unreachable":0' f.json | wc -l | tr -d ' '
  2

The JSON artifact is byte-identical for any worker count:

  $ ../bin/hieras_sim.exe cache --pool 8 --objects 4 --requests 24 \
  >   --replication 2 --alphas 0.8 --seed 7 --out a.json --jobs 1 > /dev/null
  $ ../bin/hieras_sim.exe cache --pool 8 --objects 4 --requests 24 \
  >   --replication 2 --alphas 0.8 --seed 7 --out b.json --jobs 4 > /dev/null
  $ cmp a.json b.json

analyze compare understands the cache schema: a file compared against
itself has no regressions (exit 0), and a genuinely different run trips
the availability gate with exit 1:

  $ ../bin/hieras_sim.exe analyze compare a.json b.json | tail -1
  0 regression(s)

  $ ../bin/hieras_sim.exe cache --pool 8 --objects 4 --requests 24 \
  >   --replication 2 --alphas 0.8 --seed 8 --out c.json > /dev/null
  $ ../bin/hieras_sim.exe analyze compare a.json c.json --threshold 0.001 > /dev/null
  [1]
