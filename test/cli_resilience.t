The resilience subcommand validates its flags up front with exit code 2
(usage error), before any topology construction starts.

  $ ../bin/hieras_sim.exe resilience --failures 1.2
  hieras-sim: --failures must be in [0, 0.95] (got 1.2)
  [2]

  $ ../bin/hieras_sim.exe resilience --failures=-0.1
  hieras-sim: --failures must be in [0, 0.95] (got -0.1)
  [2]

  $ ../bin/hieras_sim.exe resilience --schedule meteor
  hieras-sim: unknown schedule "meteor" (crash | outage | restart)
  [2]

  $ ../bin/hieras_sim.exe resilience --depth 9
  hieras-sim: --depth must be between 2 and 4 (got 9)
  [2]

A tiny smoke run exits 0, reports the sweep point and exposes the
retry/fallback counters through --metrics:

  $ ../bin/hieras_sim.exe resilience --nodes 64 --requests 50 --failures 0.25 | head -1
  === resilience: Lookup success and latency stretch under crash failures (64 nodes, 50 lookups) ===

  $ ../bin/hieras_sim.exe resilience --nodes 64 --requests 50 --failures 0.25 --metrics \
  >   | grep -c '^resilience\.\(chord\|hieras\)\.\(retries\|fallbacks\|succeeded\)'
  6

At failure fraction 0 every lookup succeeds for both algorithms:

  $ ../bin/hieras_sim.exe resilience --nodes 64 --requests 50 --failures 0 --metrics \
  >   | grep -E '^resilience\.(chord|hieras)\.succeeded' | awk '{print $2}' | sort -u
  50

Traces written during the sweep audit clean (zero violations, all spans
closed):

  $ ../bin/hieras_sim.exe resilience --nodes 64 --requests 30 --failures 0.3 \
  >   --trace-out t.jsonl > /dev/null
  $ ../bin/hieras_sim.exe analyze t.jsonl | head -1 | grep -o 'open spans: 0  violations: 0'
  open spans: 0  violations: 0
