(* The unified routing core (ISSUE 8): every {!Routing.ROUTABLE}
   implementation — the four flat substrates and their [Hieras.Make]
   layerings — runs the same functorized conformance suite
   (test/support/routing_suite.ml), and the functor applied to Chord is
   pinned differentially against the native [Hieras.Hlookup] path: result
   fields match lookup-for-lookup and the trace replay reproduces
   test/golden/trace_ts64.jsonl byte for byte. *)

module Config = Experiments.Config
module Runner = Experiments.Runner
module Suite = Obs_test_support.Routing_suite
module T = Experiments.Tournament

let cfg = Obs_test_support.Golden.cfg
let space = Hashid.Id.sha1_space
let depth = cfg.Config.depth

(* one 64-node Transit-Stub world shared by all fixtures, built with the
   exact seeds Runner.build_hieras and Tournament.build_contestants use *)
type shared = {
  lat : Topology.Latency.t;
  chord : Chord.Network.t;
  hnet : Hieras.Hnetwork.t;
  hosts : int array;
  landmarks : Binning.Landmark.t;
}

let shared =
  lazy
    (let env = Runner.build_env cfg in
     let lat = Runner.latency_oracle env in
     let chord = Runner.chord_network env in
     let hnet = Runner.build_hieras env cfg in
     let hosts = Array.init (Chord.Network.size chord) (Chord.Network.host chord) in
     let landmarks =
       Binning.Landmark.choose_spread lat ~count:cfg.Config.landmarks
         (Prng.Rng.create ~seed:(cfg.Config.seed + 7919))
     in
     { lat; chord; hnet; hosts; landmarks })

let chord_r =
  lazy
    (let s = Lazy.force shared in
     Chord.Routable.make ~net:s.chord ~lat:s.lat)

let pastry_r =
  lazy
    (let s = Lazy.force shared in
     Pastry.Routable.make
       (Pastry.Network.build ~space ~hosts:s.hosts ~lat:s.lat
          ~rng:(Prng.Rng.create ~seed:(cfg.Config.seed + 7577))
          ()))

let can_r =
  lazy
    (let s = Lazy.force shared in
     Can.Routable.make ~net:(Can.Network.build ~space ~hosts:s.hosts ()) ~lat:s.lat)

let tapestry_r =
  lazy
    (let s = Lazy.force shared in
     Tapestry.Routable.make
       (Tapestry.Network.build ~space ~hosts:s.hosts ~lat:s.lat
          ~rng:(Prng.Rng.create ~seed:(cfg.Config.seed + 7591))
          ()))

let lchord =
  lazy
    (let s = Lazy.force shared in
     T.LChord.build ~base:(Lazy.force chord_r) ~lat:s.lat ~landmarks:s.landmarks ~depth ())

let lpastry =
  lazy
    (let s = Lazy.force shared in
     T.LPastry.build ~base:(Lazy.force pastry_r) ~lat:s.lat ~landmarks:s.landmarks ~depth ())

let lcan =
  lazy
    (let s = Lazy.force shared in
     T.LCan.build ~base:(Lazy.force can_r) ~lat:s.lat ~landmarks:s.landmarks ~depth ())

let ltapestry =
  lazy
    (let s = Lazy.force shared in
     T.LTapestry.build ~base:(Lazy.force tapestry_r) ~lat:s.lat ~landmarks:s.landmarks ~depth ())

(* --- conformance: one suite per implementation -------------------------------- *)

module SChord = Suite.Make (struct
  include Chord.Routable

  let label = "chord"
  let build () = Lazy.force chord_r
end)

module SPastry = Suite.Make (struct
  include Pastry.Routable

  let label = "pastry"
  let build () = Lazy.force pastry_r
end)

module SCan = Suite.Make (struct
  include Can.Routable

  let label = "can"
  let build () = Lazy.force can_r
end)

module STapestry = Suite.Make (struct
  include Tapestry.Routable

  let label = "tapestry"
  let build () = Lazy.force tapestry_r
end)

module SLChord = Suite.Make (struct
  include T.LChord

  let label = "hieras-chord"
  let build () = Lazy.force lchord
end)

module SLPastry = Suite.Make (struct
  include T.LPastry

  let label = "hieras-pastry"
  let build () = Lazy.force lpastry
end)

module SLCan = Suite.Make (struct
  include T.LCan

  let label = "hieras-can"
  let build () = Lazy.force lcan
end)

module SLTapestry = Suite.Make (struct
  include T.LTapestry

  let label = "hieras-tapestry"
  let build () = Lazy.force ltapestry
end)

(* --- differential: functor HIERAS-over-Chord vs native Hlookup ---------------- *)

let requests ~count =
  let rng = Prng.Rng.create ~seed:(cfg.Config.seed + 104729) in
  let spec = Workload.Requests.paper_default ~count in
  Workload.Requests.to_array spec ~nodes:cfg.Config.nodes ~space rng

let test_functor_matches_native () =
  let s = Lazy.force shared in
  let lc = Lazy.force lchord in
  Array.iter
    (fun { Workload.Requests.origin; key } ->
      let n = Hieras.Hlookup.route s.hnet ~origin ~key in
      let f = T.LChord.route lc ~origin ~key in
      Alcotest.(check int) "destination" n.Hieras.Hlookup.destination f.Routing.destination;
      Alcotest.(check int) "hop count" n.Hieras.Hlookup.hop_count f.Routing.hop_count;
      Alcotest.(check (float 1e-9)) "latency" n.Hieras.Hlookup.latency f.Routing.latency;
      Alcotest.(check int) "finished_at_layer" n.Hieras.Hlookup.finished_at_layer
        f.Routing.finished_at_layer;
      Alcotest.(check (array int)) "hops per layer" n.Hieras.Hlookup.hops_per_layer
        f.Routing.hops_per_layer;
      Alcotest.(check (array (float 1e-9))) "latency per layer"
        n.Hieras.Hlookup.latency_per_layer f.Routing.latency_per_layer;
      List.iter2
        (fun (nh : Hieras.Hlookup.hop) (fh : Routing.hop) ->
          Alcotest.(check int) "hop from" nh.from_node fh.from_node;
          Alcotest.(check int) "hop to" nh.to_node fh.to_node;
          Alcotest.(check int) "hop layer" nh.layer fh.layer;
          Alcotest.(check (float 1e-9)) "hop latency" nh.latency fh.latency)
        n.Hieras.Hlookup.hops f.Routing.hops;
      let nhops, _, ndest, _ = Hieras.Hlookup.route_hops_only s.hnet ~origin ~key in
      let fhops, fdest = T.LChord.route_hops_only lc ~origin ~key in
      Alcotest.(check (pair int int)) "route_hops_only" (nhops, ndest) (fhops, fdest))
    (requests ~count:256)

(* the functor replay of the golden-trace scenario must reproduce the
   committed bytes: same lookup ids, same hop sequences, same JSON *)
let test_functor_golden_trace () =
  let lc = Lazy.force lchord in
  let rc = Lazy.force chord_r in
  let buf = Buffer.create 8192 in
  let tr = Obs.Trace.jsonl (Buffer.add_string buf) in
  Array.iter
    (fun { Workload.Requests.origin; key } ->
      ignore (Chord.Routable.route ~trace:tr rc ~origin ~key);
      ignore (T.LChord.route ~trace:tr lc ~origin ~key))
    (requests ~count:cfg.Config.requests);
  let golden_path = Filename.concat "golden" "trace_ts64.jsonl" in
  let ic = open_in_bin golden_path in
  let golden = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Alcotest.(check string)
    "functor trace replay is byte-identical to the golden\n\
     (if routing intentionally changed, regenerate with:\n\
     \  dune exec test/support/gen_golden.exe > test/golden/trace_ts64.jsonl)"
    golden (Buffer.contents buf)

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "routing"
    [
      ("suite-chord", q (SChord.tests ~count:60));
      ("suite-pastry", q (SPastry.tests ~count:60));
      ("suite-can", q (SCan.tests ~count:60));
      ("suite-tapestry", q (STapestry.tests ~count:60));
      ("suite-hieras-chord", q (SLChord.tests ~count:40));
      ("suite-hieras-pastry", q (SLPastry.tests ~count:40));
      ("suite-hieras-can", q (SLCan.tests ~count:40));
      ("suite-hieras-tapestry", q (SLTapestry.tests ~count:40));
      ( "differential",
        [
          Alcotest.test_case "functor route == native Hlookup field-for-field" `Quick
            test_functor_matches_native;
          Alcotest.test_case "functor trace replay == golden bytes" `Quick
            test_functor_golden_trace;
        ] );
    ]
