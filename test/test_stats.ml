(* Tests for the stats library. *)

module Summary = Stats.Summary
module Histogram = Stats.Histogram
module Table = Stats.Text_table

let feq = Alcotest.(check (float 1e-9))

(* --- Summary -------------------------------------------------------------- *)

let test_empty_summary () =
  let s = Summary.create () in
  Alcotest.(check int) "count" 0 (Summary.count s);
  feq "mean" 0.0 (Summary.mean s);
  feq "variance" 0.0 (Summary.variance s);
  Alcotest.(check bool) "min" true (Summary.min_value s = infinity);
  Alcotest.(check bool) "max" true (Summary.max_value s = neg_infinity)

let test_summary_basic () =
  let s = Summary.create () in
  List.iter (Summary.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  Alcotest.(check int) "count" 8 (Summary.count s);
  feq "mean" 5.0 (Summary.mean s);
  feq "variance" 4.0 (Summary.variance s);
  feq "stddev" 2.0 (Summary.stddev s);
  feq "min" 2.0 (Summary.min_value s);
  feq "max" 9.0 (Summary.max_value s);
  feq "total" 40.0 (Summary.total s)

let test_summary_single () =
  let s = Summary.create () in
  Summary.add s 3.5;
  feq "mean" 3.5 (Summary.mean s);
  feq "variance of single" 0.0 (Summary.variance s)

let test_summary_merge () =
  let a = Summary.create () and b = Summary.create () and whole = Summary.create () in
  List.iter
    (fun v ->
      Summary.add whole v;
      if v < 5.0 then Summary.add a v else Summary.add b v)
    [ 1.0; 2.0; 3.0; 6.0; 7.0; 8.0; 9.0 ];
  let m = Summary.merge a b in
  Alcotest.(check int) "count" (Summary.count whole) (Summary.count m);
  feq "mean" (Summary.mean whole) (Summary.mean m);
  Alcotest.(check (float 1e-6)) "variance" (Summary.variance whole) (Summary.variance m);
  feq "min" (Summary.min_value whole) (Summary.min_value m);
  feq "max" (Summary.max_value whole) (Summary.max_value m)

let test_summary_merge_empty () =
  let a = Summary.create () in
  Summary.add a 2.0;
  let e = Summary.create () in
  feq "merge right empty" 2.0 (Summary.mean (Summary.merge a e));
  feq "merge left empty" 2.0 (Summary.mean (Summary.merge e a))

let test_summary_pp () =
  let s = Summary.create () in
  Summary.add s 1.0;
  let str = Format.asprintf "%a" Summary.pp s in
  Alcotest.(check bool) "mentions n=1" true
    (String.length str > 0 && String.sub str 0 3 = "n=1")

(* --- Histogram -------------------------------------------------------------- *)

let test_histogram_bins () =
  let h = Histogram.create ~lo:0.0 ~hi:10.0 ~bins:10 in
  List.iter (Histogram.add h) [ 0.5; 1.5; 1.7; 9.9 ];
  Alcotest.(check int) "count" 4 (Histogram.count h);
  Alcotest.(check int) "bins" 10 (Histogram.bin_count h);
  let pdf = Histogram.pdf h in
  feq "bin 0" 0.25 pdf.(0);
  feq "bin 1" 0.5 pdf.(1);
  feq "bin 9" 0.25 pdf.(9)

let test_histogram_pdf_sums_to_one () =
  let h = Histogram.create ~lo:0.0 ~hi:1.0 ~bins:7 in
  let rng = Prng.Rng.create ~seed:3 in
  for _ = 1 to 1000 do
    Histogram.add h (Prng.Rng.float rng 1.0)
  done;
  let total = Array.fold_left ( +. ) 0.0 (Histogram.pdf h) in
  Alcotest.(check (float 1e-9)) "sums to 1" 1.0 total

let test_histogram_cdf () =
  let h = Histogram.create ~lo:0.0 ~hi:4.0 ~bins:4 in
  List.iter (Histogram.add h) [ 0.5; 1.5; 2.5; 3.5 ];
  let cdf = Histogram.cdf h in
  feq "first" 0.25 cdf.(0);
  feq "last" 1.0 cdf.(3);
  (* monotone *)
  for i = 1 to 3 do
    Alcotest.(check bool) "monotone" true (cdf.(i) >= cdf.(i - 1))
  done

let test_histogram_clamping () =
  let h = Histogram.create ~lo:0.0 ~hi:10.0 ~bins:5 in
  Histogram.add h (-3.0);
  Histogram.add h 100.0;
  Histogram.add h 5.0;
  Alcotest.(check int) "clamped" 2 (Histogram.clamped h);
  Alcotest.(check int) "all counted" 3 (Histogram.count h);
  let pdf = Histogram.pdf h in
  Alcotest.(check bool) "first bin got the low sample" true (pdf.(0) > 0.0);
  Alcotest.(check bool) "last bin got the high sample" true (pdf.(4) > 0.0)

let test_histogram_create_ints () =
  let h = Histogram.create_ints ~max:10 in
  for v = 0 to 10 do
    Histogram.add h (float_of_int v)
  done;
  let pdf = Histogram.pdf h in
  Alcotest.(check int) "11 bins" 11 (Histogram.bin_count h);
  Array.iter (fun p -> Alcotest.(check (float 1e-9)) "uniform" (1.0 /. 11.0) p) pdf

let test_histogram_quantile () =
  let h = Histogram.create ~lo:0.0 ~hi:100.0 ~bins:100 in
  for v = 1 to 100 do
    Histogram.add h (float_of_int v -. 0.5)
  done;
  let q50 = Histogram.quantile h 0.5 in
  Alcotest.(check bool) "median near 50" true (Float.abs (q50 -. 50.0) < 2.0);
  let q90 = Histogram.quantile h 0.9 in
  Alcotest.(check bool) "p90 near 90" true (Float.abs (q90 -. 90.0) < 2.0)

let test_histogram_quantile_empty () =
  let h = Histogram.create ~lo:0.0 ~hi:1.0 ~bins:4 in
  Alcotest.(check bool) "nan when empty" true (Float.is_nan (Histogram.quantile h 0.5))

let test_histogram_empty () =
  let h = Histogram.create ~lo:0.0 ~hi:10.0 ~bins:5 in
  Alcotest.(check int) "count" 0 (Histogram.count h);
  Alcotest.(check int) "clamped" 0 (Histogram.clamped h);
  (* pdf/cdf of an empty histogram are all-zero, not NaN *)
  Array.iter (fun v -> feq "pdf zero" 0.0 v) (Histogram.pdf h);
  Array.iter (fun v -> feq "cdf zero" 0.0 v) (Histogram.cdf h)

let test_histogram_single_sample () =
  let h = Histogram.create ~lo:0.0 ~hi:10.0 ~bins:5 in
  Histogram.add h 3.0;
  Alcotest.(check int) "count" 1 (Histogram.count h);
  feq "pdf mass in one bin" 1.0 (Histogram.pdf h).(1);
  feq "cdf ends at 1" 1.0 (Histogram.cdf h).(4);
  (* q=0 degenerates to the histogram's lower edge; every positive quantile
     of a single sample interpolates within its bin *)
  feq "q0 at lo" 0.0 (Histogram.quantile h 0.0);
  List.iter
    (fun q ->
      let v = Histogram.quantile h q in
      Alcotest.(check bool)
        (Printf.sprintf "q%.2f inside the sample's bin" q)
        true
        (v >= 2.0 && v <= 4.0))
    [ 0.25; 0.5; 0.99; 1.0 ]

let test_histogram_quantile_boundaries () =
  let h = Histogram.create ~lo:0.0 ~hi:100.0 ~bins:100 in
  for v = 1 to 100 do
    Histogram.add h (float_of_int v -. 0.5)
  done;
  (* q=0 is the left edge of the first occupied bin, q=1 the right edge of
     the last; quantiles are monotone in q across the whole range *)
  feq "q0 at left edge" 0.0 (Histogram.quantile h 0.0);
  feq "q1 at right edge" 100.0 (Histogram.quantile h 1.0);
  let prev = ref (Histogram.quantile h 0.0) in
  for i = 1 to 20 do
    let q = float_of_int i /. 20.0 in
    let v = Histogram.quantile h q in
    Alcotest.(check bool) (Printf.sprintf "monotone at q=%g" q) true (v >= !prev);
    prev := v
  done

let test_summary_identical_samples () =
  let s = Summary.create () in
  for _ = 1 to 1000 do
    Summary.add s 7.25
  done;
  feq "mean exact" 7.25 (Summary.mean s);
  feq "variance 0" 0.0 (Summary.variance s);
  feq "min = max" (Summary.min_value s) (Summary.max_value s);
  feq "total" 7250.0 (Summary.total s)

let test_histogram_merge () =
  let a = Histogram.create ~lo:0.0 ~hi:10.0 ~bins:5 in
  let b = Histogram.create ~lo:0.0 ~hi:10.0 ~bins:5 in
  List.iter (Histogram.add a) [ 1.0; 3.0; 3.5; -2.0 ];
  List.iter (Histogram.add b) [ 3.0; 9.0; 100.0 ];
  let m = Histogram.merge a b in
  Alcotest.(check int) "count additive" 7 (Histogram.count m);
  Alcotest.(check int) "clamped additive" 2 (Histogram.clamped m);
  Alcotest.(check (array int)) "bin counts additive"
    (Array.map2 ( + ) (Histogram.counts a) (Histogram.counts b))
    (Histogram.counts m);
  (* inputs untouched *)
  Alcotest.(check int) "a unchanged" 4 (Histogram.count a);
  Alcotest.(check int) "b unchanged" 3 (Histogram.count b)

let test_histogram_merge_incompatible () =
  let a = Histogram.create ~lo:0.0 ~hi:10.0 ~bins:5 in
  let err = Invalid_argument "Histogram.merge: incompatible bin layouts" in
  Alcotest.check_raises "different bins" err (fun () ->
      ignore (Histogram.merge a (Histogram.create ~lo:0.0 ~hi:10.0 ~bins:6)));
  Alcotest.check_raises "different range" err (fun () ->
      ignore (Histogram.merge a (Histogram.create ~lo:0.0 ~hi:20.0 ~bins:5)))

let test_histogram_validation () =
  Alcotest.check_raises "bins" (Invalid_argument "Histogram.create: bins must be positive")
    (fun () -> ignore (Histogram.create ~lo:0.0 ~hi:1.0 ~bins:0));
  Alcotest.check_raises "hi<=lo" (Invalid_argument "Histogram.create: hi must exceed lo")
    (fun () -> ignore (Histogram.create ~lo:1.0 ~hi:1.0 ~bins:4))

(* --- Text_table ---------------------------------------------------------------- *)

let test_table_render () =
  let t = Table.create [ "Name"; "Value" ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "22" ];
  let out = Table.render t in
  let lines = String.split_on_char '\n' out in
  (match lines with
  | header :: rule :: row1 :: row2 :: _ ->
      Alcotest.(check bool) "header has both columns" true
        (String.length header >= 10
        && String.sub header 0 4 = "Name");
      Alcotest.(check bool) "rule is dashes" true (String.for_all (( = ) '-') rule);
      Alcotest.(check bool) "rows in order" true
        (String.sub row1 0 5 = "alpha" && String.sub row2 0 1 = "b")
  | _ -> Alcotest.fail "expected at least 4 lines");
  (* aligned: all data lines equal length *)
  let widths =
    List.filter_map (fun l -> if l = "" then None else Some (String.length l)) lines
  in
  match widths with
  | w :: rest -> List.iter (fun w' -> Alcotest.(check int) "aligned" w w') rest
  | [] -> Alcotest.fail "no lines"

let test_table_pads_short_rows () =
  let t = Table.create [ "A"; "B"; "C" ] in
  Table.add_row t [ "x" ];
  let out = Table.render t in
  Alcotest.(check bool) "renders" true (String.length out > 0)

let test_table_rejects_long_rows () =
  let t = Table.create [ "A" ] in
  Alcotest.check_raises "too many cells"
    (Invalid_argument "Text_table.add_row: more cells than headers") (fun () ->
      Table.add_row t [ "1"; "2" ])

(* --- qcheck ------------------------------------------------------------------ *)

let prop_summary_mean_bounded =
  QCheck.Test.make ~name:"mean within [min,max]" ~count:300
    QCheck.(list_of_size (QCheck.Gen.int_range 1 50) (float_bound_exclusive 1000.0))
    (fun l ->
      let s = Summary.create () in
      List.iter (Summary.add s) l;
      Summary.mean s >= Summary.min_value s -. 1e-9
      && Summary.mean s <= Summary.max_value s +. 1e-9)

let prop_merge_commutes =
  QCheck.Test.make ~name:"merge commutes on count and mean" ~count:300
    QCheck.(pair (list (float_bound_exclusive 100.0)) (list (float_bound_exclusive 100.0)))
    (fun (la, lb) ->
      let a = Summary.create () and b = Summary.create () in
      List.iter (Summary.add a) la;
      List.iter (Summary.add b) lb;
      let m1 = Summary.merge a b and m2 = Summary.merge b a in
      Summary.count m1 = Summary.count m2
      && Float.abs (Summary.mean m1 -. Summary.mean m2) < 1e-9)

(* Split a list into consecutive chunks of [size] — the same shape the
   parallel runner reduces over. *)
let chunked size l =
  let rec go acc cur k = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
        if k = size then go (List.rev cur :: acc) [ x ] 1 rest
        else go acc (x :: cur) (k + 1) rest
  in
  go [] [] 0 l

let prop_summary_chunk_merge_equals_single_pass =
  QCheck.Test.make ~name:"folded Summary.merge over chunks = single pass" ~count:300
    QCheck.(
      pair (int_range 1 17)
        (list_of_size (Gen.int_range 1 200) (float_bound_exclusive 1000.0)))
    (fun (size, l) ->
      let whole = Summary.create () in
      List.iter (Summary.add whole) l;
      let parts =
        List.map
          (fun chunk ->
            let s = Summary.create () in
            List.iter (Summary.add s) chunk;
            s)
          (chunked size l)
      in
      let m = List.fold_left Summary.merge (Summary.create ()) parts in
      Summary.count m = Summary.count whole
      && Summary.min_value m = Summary.min_value whole
      && Summary.max_value m = Summary.max_value whole
      && Float.abs (Summary.mean m -. Summary.mean whole) < 1e-9
      && Float.abs (Summary.variance m -. Summary.variance whole) < 1e-9)

let prop_histogram_merge_additive =
  QCheck.Test.make ~name:"Histogram.merge bin counts exactly additive" ~count:300
    QCheck.(
      pair
        (list_of_size (Gen.int_range 0 100) (float_range (-10.0) 60.0))
        (list_of_size (Gen.int_range 0 100) (float_range (-10.0) 60.0)))
    (fun (la, lb) ->
      let a = Histogram.create ~lo:0.0 ~hi:50.0 ~bins:13 in
      let b = Histogram.create ~lo:0.0 ~hi:50.0 ~bins:13 in
      List.iter (Histogram.add a) la;
      List.iter (Histogram.add b) lb;
      let m = Histogram.merge a b in
      Histogram.count m = Histogram.count a + Histogram.count b
      && Histogram.clamped m = Histogram.clamped a + Histogram.clamped b
      && Histogram.counts m
         = Array.map2 ( + ) (Histogram.counts a) (Histogram.counts b))

let prop_cdf_ends_at_one =
  QCheck.Test.make ~name:"cdf last element is 1" ~count:300
    QCheck.(list_of_size (QCheck.Gen.int_range 1 100) (float_bound_exclusive 50.0))
    (fun l ->
      let h = Histogram.create ~lo:0.0 ~hi:50.0 ~bins:10 in
      List.iter (Histogram.add h) l;
      let cdf = Histogram.cdf h in
      Float.abs (cdf.(9) -. 1.0) < 1e-9)

let () =
  Alcotest.run "stats"
    [
      ( "summary",
        [
          Alcotest.test_case "empty" `Quick test_empty_summary;
          Alcotest.test_case "basic moments" `Quick test_summary_basic;
          Alcotest.test_case "single sample" `Quick test_summary_single;
          Alcotest.test_case "merge" `Quick test_summary_merge;
          Alcotest.test_case "merge empty" `Quick test_summary_merge_empty;
          Alcotest.test_case "identical samples" `Quick test_summary_identical_samples;
          Alcotest.test_case "pp" `Quick test_summary_pp;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "bin assignment" `Quick test_histogram_bins;
          Alcotest.test_case "pdf sums to 1" `Quick test_histogram_pdf_sums_to_one;
          Alcotest.test_case "cdf" `Quick test_histogram_cdf;
          Alcotest.test_case "clamping" `Quick test_histogram_clamping;
          Alcotest.test_case "create_ints" `Quick test_histogram_create_ints;
          Alcotest.test_case "quantile" `Quick test_histogram_quantile;
          Alcotest.test_case "quantile empty" `Quick test_histogram_quantile_empty;
          Alcotest.test_case "empty pdf/cdf" `Quick test_histogram_empty;
          Alcotest.test_case "single sample" `Quick test_histogram_single_sample;
          Alcotest.test_case "quantile boundaries" `Quick test_histogram_quantile_boundaries;
          Alcotest.test_case "merge" `Quick test_histogram_merge;
          Alcotest.test_case "merge incompatible" `Quick test_histogram_merge_incompatible;
          Alcotest.test_case "validation" `Quick test_histogram_validation;
        ] );
      ( "text_table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "pads short rows" `Quick test_table_pads_short_rows;
          Alcotest.test_case "rejects long rows" `Quick test_table_rejects_long_rows;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_summary_mean_bounded;
            prop_merge_commutes;
            prop_summary_chunk_merge_equals_single_pass;
            prop_histogram_merge_additive;
            prop_cdf_ends_at_one;
          ] );
    ]
