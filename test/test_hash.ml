(* Tests for the hashid library: SHA-1 against FIPS vectors and ring-id
   arithmetic on the identifier circle. *)

module Sha1 = Hashid.Sha1
module Id = Hashid.Id

(* --- SHA-1 --------------------------------------------------------------- *)

let vectors =
  [
    ("", "da39a3ee5e6b4b0d3255bfef95601890afd80709");
    ("abc", "a9993e364706816aba3e25717850c26c9cd0d89d");
    ( "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
      "84983e441c3bd26ebaae4aa1f95129e5e54670f1" );
    (* FIPS 180 two-block message (112 bytes) *)
    ( "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno"
      ^ "ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
      "a49b2446a02c645bf419f995b67091253a04a259" );
    ("The quick brown fox jumps over the lazy dog", "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12");
    ("The quick brown fox jumps over the lazy cog", "de9f2c7fd25e1b3afad3e85a0bd17d9b100db4b3");
    ("a", "86f7e437faa5a7fce15d1ddcb9eaeaea377667b8");
  ]

let test_sha1_vectors () =
  List.iter (fun (input, expect) -> Alcotest.(check string) input expect (Sha1.hex input)) vectors

let test_sha1_million_a () =
  Alcotest.(check string) "10^6 x 'a'" "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
    (Sha1.hex (String.make 1_000_000 'a'))

let test_sha1_rfc3174_test4 () =
  (* RFC 3174 TEST4: "01234567..." (64 chars) repeated 10 times *)
  let msg = String.concat "" (List.init 10 (fun _ -> "0123456701234567012345670123456701234567012345670123456701234567")) in
  Alcotest.(check string) "RFC 3174 TEST4" "dea356a2cddd90c7a7ecedc5ebb563934f460452"
    (Sha1.hex msg)

let test_sha1_block_boundaries () =
  (* lengths around the 64-byte block boundary must all hash without error
     and injectively (for these inputs) *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun len ->
      let d = Sha1.digest (String.make len 'x') in
      Alcotest.(check int) "20 bytes" 20 (String.length d);
      Alcotest.(check bool) "distinct" false (Hashtbl.mem seen d);
      Hashtbl.replace seen d ())
    [ 54; 55; 56; 57; 63; 64; 65; 119; 120; 128 ]

let test_digest_int () =
  Alcotest.(check string) "digest_int = digest of decimal" (Sha1.digest "12345")
    (Sha1.digest_int 12345)

(* --- Id: spaces ----------------------------------------------------------- *)

let test_space_bounds () =
  Alcotest.check_raises "0 bits" (Invalid_argument "Id.space: bits must be in [1, 160]")
    (fun () -> ignore (Id.space ~bits:0));
  Alcotest.check_raises "161 bits" (Invalid_argument "Id.space: bits must be in [1, 160]")
    (fun () -> ignore (Id.space ~bits:161));
  Alcotest.(check int) "sha1 space bits" 160 (Id.bits Id.sha1_space);
  Alcotest.(check int) "sha1 space bytes" 20 (Id.bytes Id.sha1_space);
  Alcotest.(check int) "12-bit space bytes" 2 (Id.bytes (Id.space ~bits:12))

let test_of_int_roundtrip () =
  let sp = Id.space ~bits:8 in
  for v = 0 to 255 do
    Alcotest.(check int) "roundtrip" v (Id.to_int sp (Id.of_int sp v))
  done

let test_of_int_reduces () =
  let sp = Id.space ~bits:8 in
  Alcotest.(check int) "mod 256" 1 (Id.to_int sp (Id.of_int sp 257))

let test_of_int_negative () =
  let sp = Id.space ~bits:8 in
  Alcotest.check_raises "negative" (Invalid_argument "Id.of_int: negative") (fun () ->
      ignore (Id.of_int sp (-1)))

let test_to_int_wide_space () =
  Alcotest.check_raises "160-bit to_int" (Failure "Id.to_int: space too wide") (fun () ->
      ignore (Id.to_int Id.sha1_space (Id.zero Id.sha1_space)))

let test_odd_width_masking () =
  (* a 12-bit space must mask the top nibble *)
  let sp = Id.space ~bits:12 in
  Alcotest.(check int) "4096 wraps to 0" 0 (Id.to_int sp (Id.of_int sp 4096));
  Alcotest.(check int) "4097 wraps to 1" 1 (Id.to_int sp (Id.of_int sp 4097))

(* --- Id: arithmetic -------------------------------------------------------- *)

let test_add_pow2 () =
  let sp = Id.space ~bits:8 in
  let x = Id.of_int sp 121 in
  List.iteri
    (fun i expect -> Alcotest.(check int) (Printf.sprintf "121+2^%d" i) expect
        (Id.to_int sp (Id.add_pow2 sp x i)))
    [ 122; 123; 125; 129; 137; 153; 185; 249 ]

let test_add_pow2_wraps () =
  let sp = Id.space ~bits:8 in
  Alcotest.(check int) "250+8 wraps" 2 (Id.to_int sp (Id.add_pow2 sp (Id.of_int sp 250) 3));
  Alcotest.(check int) "128+128 wraps to 0" 0 (Id.to_int sp (Id.add_pow2 sp (Id.of_int sp 128) 7))

let test_add_pow2_range () =
  let sp = Id.space ~bits:8 in
  Alcotest.check_raises "exponent = bits" (Invalid_argument "Id.add_pow2: exponent out of range")
    (fun () -> ignore (Id.add_pow2 sp (Id.zero sp) 8))

let test_succ_pred () =
  let sp = Id.space ~bits:8 in
  Alcotest.(check int) "succ 255 = 0" 0 (Id.to_int sp (Id.succ sp (Id.of_int sp 255)));
  Alcotest.(check int) "pred 0 = 255" 255 (Id.to_int sp (Id.pred sp (Id.zero sp)));
  for v = 0 to 255 do
    let x = Id.of_int sp v in
    Alcotest.(check bool) "pred/succ inverse" true (Id.equal x (Id.pred sp (Id.succ sp x)))
  done

let test_pred_wide_space_carry () =
  (* pred of zero in the 160-bit space must be all-ones *)
  let sp = Id.sha1_space in
  let max_id = Id.pred sp (Id.zero sp) in
  Alcotest.(check string) "all ff" (String.make 40 'f') (Id.to_hex max_id);
  Alcotest.(check bool) "succ of max = 0" true (Id.equal (Id.zero sp) (Id.succ sp max_id))

let test_compare_order () =
  let sp = Id.space ~bits:16 in
  Alcotest.(check bool) "numeric order" true (Id.compare (Id.of_int sp 100) (Id.of_int sp 200) < 0);
  Alcotest.(check bool) "cross-byte order" true
    (Id.compare (Id.of_int sp 255) (Id.of_int sp 256) < 0)

(* --- Id: intervals ---------------------------------------------------------- *)

let test_in_oo () =
  let sp = Id.space ~bits:8 in
  let i = Id.of_int sp in
  Alcotest.(check bool) "5 in (3,8)" true (Id.in_oo (i 5) ~lo:(i 3) ~hi:(i 8));
  Alcotest.(check bool) "3 not in (3,8)" false (Id.in_oo (i 3) ~lo:(i 3) ~hi:(i 8));
  Alcotest.(check bool) "8 not in (3,8)" false (Id.in_oo (i 8) ~lo:(i 3) ~hi:(i 8));
  (* wrapping interval *)
  Alcotest.(check bool) "250 in (200,10)" true (Id.in_oo (i 250) ~lo:(i 200) ~hi:(i 10));
  Alcotest.(check bool) "5 in (200,10)" true (Id.in_oo (i 5) ~lo:(i 200) ~hi:(i 10));
  Alcotest.(check bool) "100 not in (200,10)" false (Id.in_oo (i 100) ~lo:(i 200) ~hi:(i 10));
  (* degenerate: (a,a) is everything but a *)
  Alcotest.(check bool) "(a,a) excludes a" false (Id.in_oo (i 7) ~lo:(i 7) ~hi:(i 7));
  Alcotest.(check bool) "(a,a) includes others" true (Id.in_oo (i 8) ~lo:(i 7) ~hi:(i 7))

let test_in_oc () =
  let sp = Id.space ~bits:8 in
  let i = Id.of_int sp in
  Alcotest.(check bool) "8 in (3,8]" true (Id.in_oc (i 8) ~lo:(i 3) ~hi:(i 8));
  Alcotest.(check bool) "3 not in (3,8]" false (Id.in_oc (i 3) ~lo:(i 3) ~hi:(i 8));
  Alcotest.(check bool) "wrap: 10 in (200,10]" true (Id.in_oc (i 10) ~lo:(i 200) ~hi:(i 10));
  (* degenerate: (a,a] is the whole circle — the single-node Chord ring *)
  Alcotest.(check bool) "(a,a] is everything" true (Id.in_oc (i 7) ~lo:(i 7) ~hi:(i 7));
  Alcotest.(check bool) "(a,a] includes a" true (Id.in_oc (i 99) ~lo:(i 7) ~hi:(i 7))

let test_in_co () =
  let sp = Id.space ~bits:8 in
  let i = Id.of_int sp in
  Alcotest.(check bool) "3 in [3,8)" true (Id.in_co (i 3) ~lo:(i 3) ~hi:(i 8));
  Alcotest.(check bool) "8 not in [3,8)" false (Id.in_co (i 8) ~lo:(i 3) ~hi:(i 8));
  Alcotest.(check bool) "[a,a) is everything" true (Id.in_co (i 12) ~lo:(i 7) ~hi:(i 7))

let test_distance_cw () =
  let sp = Id.space ~bits:8 in
  let i = Id.of_int sp in
  let d = Id.distance_cw sp (i 10) (i 74) in
  Alcotest.(check (float 1e-9)) "64/256 of the circle" 0.25 d;
  let dw = Id.distance_cw sp (i 200) (i 8) in
  Alcotest.(check (float 1e-9)) "wrapping distance" (64.0 /. 256.0) dw

let test_of_hash () =
  let sp = Id.space ~bits:32 in
  let a = Id.of_hash sp "hello" and b = Id.of_hash sp "hello" in
  Alcotest.(check bool) "deterministic" true (Id.equal a b);
  (* truncation takes the big-endian prefix of the digest *)
  let full = Sha1.hex "hello" in
  Alcotest.(check string) "prefix" (String.sub full 0 8) (Id.to_hex a)

let test_random_in_space () =
  let sp = Id.space ~bits:12 in
  let rng = Prng.Rng.create ~seed:31 in
  for _ = 1 to 500 do
    let v = Id.to_int sp (Id.random sp rng) in
    Alcotest.(check bool) "within 2^12" true (v >= 0 && v < 4096)
  done

let test_pp_small_decimal () =
  let sp = Id.space ~bits:8 in
  Alcotest.(check string) "small spaces print decimal" "121"
    (Format.asprintf "%a" Id.pp (Id.of_int sp 121))

(* --- qcheck properties -------------------------------------------------------- *)

let small_id_gen sp = QCheck.map (fun v -> Id.of_int sp (abs v)) QCheck.int

let prop_add_pow2_doubles =
  let sp = Id.space ~bits:16 in
  QCheck.Test.make ~name:"x + 2^i + 2^i = x + 2^(i+1)" ~count:500
    QCheck.(pair (small_id_gen sp) (int_range 0 14))
    (fun (x, i) ->
      Id.equal (Id.add_pow2 sp (Id.add_pow2 sp x i) i) (Id.add_pow2 sp x (i + 1)))

let prop_succ_pred_inverse =
  let sp = Id.space ~bits:16 in
  QCheck.Test.make ~name:"succ . pred = id" ~count:500 (small_id_gen sp) (fun x ->
      Id.equal x (Id.succ sp (Id.pred sp x)))

let prop_interval_complement =
  (* for lo <> hi and x not an endpoint: x in (lo,hi) xor x in (hi,lo) *)
  let sp = Id.space ~bits:12 in
  QCheck.Test.make ~name:"(lo,hi) and (hi,lo) partition the circle" ~count:1000
    QCheck.(triple (small_id_gen sp) (small_id_gen sp) (small_id_gen sp))
    (fun (x, lo, hi) ->
      QCheck.assume (not (Id.equal lo hi));
      QCheck.assume (not (Id.equal x lo));
      QCheck.assume (not (Id.equal x hi));
      Bool.not (Id.in_oo x ~lo ~hi = Id.in_oo x ~lo:hi ~hi:lo))

let prop_oc_equals_oo_or_endpoint =
  let sp = Id.space ~bits:12 in
  QCheck.Test.make ~name:"in_oc = in_oo or x = hi" ~count:1000
    QCheck.(triple (small_id_gen sp) (small_id_gen sp) (small_id_gen sp))
    (fun (x, lo, hi) ->
      QCheck.assume (not (Id.equal lo hi));
      Id.in_oc x ~lo ~hi = (Id.in_oo x ~lo ~hi || Id.equal x hi))

let prop_distance_cw_antisymmetric =
  let sp = Id.space ~bits:16 in
  QCheck.Test.make ~name:"d(a,b) + d(b,a) = 1 for a <> b" ~count:500
    QCheck.(pair (small_id_gen sp) (small_id_gen sp))
    (fun (a, b) ->
      QCheck.assume (not (Id.equal a b));
      Float.abs (Id.distance_cw sp a b +. Id.distance_cw sp b a -. 1.0) < 1e-6)

let () =
  Alcotest.run "hashid"
    [
      ( "sha1",
        [
          Alcotest.test_case "FIPS vectors" `Quick test_sha1_vectors;
          Alcotest.test_case "million a" `Slow test_sha1_million_a;
          Alcotest.test_case "RFC 3174 TEST4" `Quick test_sha1_rfc3174_test4;
          Alcotest.test_case "block boundaries" `Quick test_sha1_block_boundaries;
          Alcotest.test_case "digest_int" `Quick test_digest_int;
        ] );
      ( "id-space",
        [
          Alcotest.test_case "space bounds" `Quick test_space_bounds;
          Alcotest.test_case "of_int roundtrip" `Quick test_of_int_roundtrip;
          Alcotest.test_case "of_int reduces" `Quick test_of_int_reduces;
          Alcotest.test_case "of_int negative" `Quick test_of_int_negative;
          Alcotest.test_case "to_int wide" `Quick test_to_int_wide_space;
          Alcotest.test_case "odd-width mask" `Quick test_odd_width_masking;
        ] );
      ( "id-arith",
        [
          Alcotest.test_case "add_pow2 (paper table 2 starts)" `Quick test_add_pow2;
          Alcotest.test_case "add_pow2 wraps" `Quick test_add_pow2_wraps;
          Alcotest.test_case "add_pow2 range" `Quick test_add_pow2_range;
          Alcotest.test_case "succ/pred" `Quick test_succ_pred;
          Alcotest.test_case "pred carries over 160 bits" `Quick test_pred_wide_space_carry;
          Alcotest.test_case "compare" `Quick test_compare_order;
        ] );
      ( "id-intervals",
        [
          Alcotest.test_case "in_oo" `Quick test_in_oo;
          Alcotest.test_case "in_oc" `Quick test_in_oc;
          Alcotest.test_case "in_co" `Quick test_in_co;
          Alcotest.test_case "distance_cw" `Quick test_distance_cw;
          Alcotest.test_case "of_hash" `Quick test_of_hash;
          Alcotest.test_case "random in space" `Quick test_random_in_space;
          Alcotest.test_case "pp small" `Quick test_pp_small_decimal;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_add_pow2_doubles;
            prop_succ_pred_inverse;
            prop_interval_complement;
            prop_oc_equals_oo_or_endpoint;
            prop_distance_cw_antisymmetric;
          ] );
    ]
