(* Tests for the topology library: graph primitives, shortest paths, the
   three network models and the latency oracle. *)

module Graph = Topology.Graph
module Dijkstra = Topology.Dijkstra
module Latency = Topology.Latency
module TS = Topology.Transit_stub
module Inet = Topology.Inet
module Brite = Topology.Brite
module Model = Topology.Model

(* --- Graph ------------------------------------------------------------- *)

let test_graph_basic () =
  let b = Graph.builder 4 in
  Graph.add_edge b 0 1 1.0;
  Graph.add_edge b 1 2 2.0;
  Graph.add_edge b 2 3 3.0;
  let g = Graph.freeze b in
  Alcotest.(check int) "vertices" 4 (Graph.vertex_count g);
  Alcotest.(check int) "edges" 3 (Graph.edge_count g);
  Alcotest.(check int) "degree of middle" 2 (Graph.degree g 1);
  Alcotest.(check int) "degree of end" 1 (Graph.degree g 0)

let test_graph_duplicate_edges_keep_min () =
  let b = Graph.builder 2 in
  Graph.add_edge b 0 1 5.0;
  Graph.add_edge b 1 0 2.0;
  Graph.add_edge b 0 1 9.0;
  let g = Graph.freeze b in
  Alcotest.(check int) "one edge" 1 (Graph.edge_count g);
  let w = Graph.fold_neighbors g 0 (fun _ _ w -> w) 0.0 in
  Alcotest.(check (float 1e-9)) "min weight kept" 2.0 w

let test_graph_rejects_bad_edges () =
  let b = Graph.builder 3 in
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.add_edge: self-loop") (fun () ->
      Graph.add_edge b 1 1 1.0);
  Alcotest.check_raises "range" (Invalid_argument "Graph.add_edge: vertex out of range")
    (fun () -> Graph.add_edge b 0 3 1.0);
  Alcotest.check_raises "negative" (Invalid_argument "Graph.add_edge: negative delay")
    (fun () -> Graph.add_edge b 0 1 (-1.0))

let test_graph_connectivity () =
  let b = Graph.builder 4 in
  Graph.add_edge b 0 1 1.0;
  Graph.add_edge b 2 3 1.0;
  let g = Graph.freeze b in
  Alcotest.(check bool) "disconnected" false (Graph.is_connected g);
  let comp = Graph.components g in
  Alcotest.(check bool) "0 and 1 together" true (comp.(0) = comp.(1));
  Alcotest.(check bool) "2 and 3 together" true (comp.(2) = comp.(3));
  Alcotest.(check bool) "different components" true (comp.(0) <> comp.(2))

let test_graph_neighbors_symmetric () =
  let b = Graph.builder 3 in
  Graph.add_edge b 0 2 7.0;
  let g = Graph.freeze b in
  let from0 = Graph.fold_neighbors g 0 (fun acc v _ -> v :: acc) [] in
  let from2 = Graph.fold_neighbors g 2 (fun acc v _ -> v :: acc) [] in
  Alcotest.(check (list int)) "0 sees 2" [ 2 ] from0;
  Alcotest.(check (list int)) "2 sees 0" [ 0 ] from2

let neighbor_list g v = List.rev (Graph.fold_neighbors g v (fun acc u w -> (u, w) :: acc) [])

let test_graph_freeze_insertion_order_independent () =
  (* the frozen CSR layout must be a function of the edge set alone: two
     builders fed the same edges in different orders freeze identically *)
  let edges = [ (0, 4, 1.0); (2, 3, 2.5); (0, 1, 3.0); (1, 4, 0.5); (0, 3, 7.0); (3, 4, 1.5) ] in
  let build es =
    let b = Graph.builder 5 in
    List.iter (fun (u, v, w) -> Graph.add_edge b u v w) es;
    Graph.freeze b
  in
  let g1 = build edges in
  let g2 = build (List.rev edges) in
  let g3 = build (List.filteri (fun i _ -> i mod 2 = 0) edges @ List.filteri (fun i _ -> i mod 2 = 1) edges) in
  for v = 0 to 4 do
    let l1 = neighbor_list g1 v in
    Alcotest.(check (list (pair int (float 0.0))))
      (Printf.sprintf "vertex %d adjacency, reversed insertion" v)
      l1 (neighbor_list g2 v);
    Alcotest.(check (list (pair int (float 0.0))))
      (Printf.sprintf "vertex %d adjacency, interleaved insertion" v)
      l1 (neighbor_list g3 v)
  done

let test_graph_freeze_neighbors_sorted () =
  let rng = Prng.Rng.create ~seed:11 in
  let n = 40 in
  let b = Graph.builder n in
  for _ = 1 to 200 do
    let u = Prng.Rng.int rng n and v = Prng.Rng.int rng n in
    if u <> v then Graph.add_edge b u v (1.0 +. Prng.Rng.float rng 5.0)
  done;
  let g = Graph.freeze b in
  for v = 0 to n - 1 do
    let prev = ref (-1) in
    Graph.iter_neighbors g v (fun u _ ->
        if u <= !prev then Alcotest.failf "vertex %d: neighbors not strictly ascending" v;
        prev := u)
  done

(* --- Dijkstra ------------------------------------------------------------ *)

(* a diamond with a shortcut: 0-1 (1), 0-2 (4), 1-2 (2), 1-3 (7), 2-3 (1) *)
let diamond () =
  let b = Graph.builder 4 in
  Graph.add_edge b 0 1 1.0;
  Graph.add_edge b 0 2 4.0;
  Graph.add_edge b 1 2 2.0;
  Graph.add_edge b 1 3 7.0;
  Graph.add_edge b 2 3 1.0;
  Graph.freeze b

let test_dijkstra_distances () =
  let g = diamond () in
  let d = Dijkstra.distances g ~src:0 in
  Alcotest.(check (float 1e-9)) "d(0,0)" 0.0 d.(0);
  Alcotest.(check (float 1e-9)) "d(0,1)" 1.0 d.(1);
  Alcotest.(check (float 1e-9)) "d(0,2)" 3.0 d.(2);
  Alcotest.(check (float 1e-9)) "d(0,3)" 4.0 d.(3)

let test_dijkstra_unreachable () =
  let b = Graph.builder 3 in
  Graph.add_edge b 0 1 1.0;
  let g = Graph.freeze b in
  let d = Dijkstra.distances g ~src:0 in
  Alcotest.(check bool) "isolated vertex" true (d.(2) = infinity)

let test_dijkstra_path () =
  let g = diamond () in
  match Dijkstra.path g ~src:0 ~dst:3 with
  | Some p -> Alcotest.(check (list int)) "shortest path" [ 0; 1; 2; 3 ] p
  | None -> Alcotest.fail "path expected"

let test_dijkstra_path_unreachable () =
  let b = Graph.builder 2 in
  let g = Graph.freeze b in
  Alcotest.(check bool) "no path" true (Dijkstra.path g ~src:0 ~dst:1 = None)

let test_distance_matrix_symmetric () =
  let g = diamond () in
  let m = Dijkstra.distance_matrix g in
  for i = 0 to 3 do
    for j = 0 to 3 do
      Alcotest.(check (float 1e-9)) "symmetric" m.(i).(j) m.(j).(i)
    done
  done

let test_distance_matrix_flat_matches_boxed () =
  let g = diamond () in
  let m = Dijkstra.distance_matrix g in
  let flat = Dijkstra.distance_matrix_flat g in
  Alcotest.(check int) "length" 16 (Array.length flat);
  for i = 0 to 3 do
    for j = 0 to 3 do
      Alcotest.(check (float 0.0)) (Printf.sprintf "(%d,%d)" i j) m.(i).(j) flat.((i * 4) + j)
    done
  done

(* --- Latency oracle -------------------------------------------------------- *)

let test_latency_oracle () =
  let g = diamond () in
  let lat =
    Latency.create ~router_graph:g ~host_router:[| 0; 3; 3 |] ~host_access:[| 1.0; 2.0; 2.0 |] ()
  in
  Alcotest.(check int) "hosts" 3 (Latency.hosts lat);
  Alcotest.(check int) "routers" 4 (Latency.routers lat);
  Alcotest.(check (float 1e-9)) "self latency" 0.0 (Latency.host_latency lat 1 1);
  Alcotest.(check (float 1e-9)) "host 0 to 1: 1 + 4 + 2" 7.0 (Latency.host_latency lat 0 1);
  Alcotest.(check (float 1e-9)) "symmetric" (Latency.host_latency lat 0 1)
    (Latency.host_latency lat 1 0);
  Alcotest.(check (float 1e-9)) "same-router hosts" 4.0 (Latency.host_latency lat 1 2);
  Alcotest.(check (float 1e-9)) "host to router" 5.0 (Latency.host_to_router lat 0 3)

let test_latency_oracle_validation () =
  let g = diamond () in
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Latency.create: host arrays differ in length") (fun () ->
      ignore (Latency.create ~router_graph:g ~host_router:[| 0 |] ~host_access:[||] ()));
  Alcotest.check_raises "router range"
    (Invalid_argument "Latency.create: router index out of range") (fun () ->
      ignore (Latency.create ~router_graph:g ~host_router:[| 9 |] ~host_access:[| 0.0 |] ()));
  let b = Graph.builder 2 in
  let disconnected = Graph.freeze b in
  Alcotest.check_raises "disconnected"
    (Invalid_argument "Latency.create: router graph must be connected") (fun () ->
      ignore
        (Latency.create ~router_graph:disconnected ~host_router:[| 0 |] ~host_access:[| 0.0 |] ()))

let test_latency_backends_bit_identical () =
  let rng () = Prng.Rng.create ~seed:21 in
  let eager = TS.generate ~backend:Topology.Latency.Eager ~hosts:250 (rng ()) in
  let lazy_ = TS.generate ~backend:Topology.Latency.Lazy ~hosts:250 (rng ()) in
  let auto = TS.generate ~backend:Topology.Latency.Auto ~hosts:250 (rng ()) in
  let nr = Latency.routers eager in
  for a = 0 to nr - 1 do
    for b = 0 to nr - 1 do
      let x = Latency.router_latency eager a b in
      if Int64.bits_of_float x <> Int64.bits_of_float (Latency.router_latency lazy_ a b) then
        Alcotest.failf "lazy row (%d,%d) differs from eager" a b;
      if Int64.bits_of_float x <> Int64.bits_of_float (Latency.router_latency auto a b) then
        Alcotest.failf "auto row (%d,%d) differs from eager" a b
    done
  done;
  for h = 0 to 249 do
    let x = Latency.host_latency eager h ((h + 13) mod 250) in
    let y = Latency.host_latency lazy_ h ((h + 13) mod 250) in
    Alcotest.(check int64)
      (Printf.sprintf "host latency %d" h)
      (Int64.bits_of_float x) (Int64.bits_of_float y)
  done

let test_latency_lazy_stats () =
  let rng = Prng.Rng.create ~seed:22 in
  let lat = TS.generate ~backend:Topology.Latency.Lazy ~hosts:300 rng in
  let st0 = Latency.stats lat in
  Alcotest.(check string) "backend" "lazy" st0.Latency.backend;
  Alcotest.(check int) "no rows before first query" 0 st0.Latency.rows_computed;
  Alcotest.(check int) "no hits before first query" 0 st0.Latency.row_hits;
  ignore (Latency.host_latency lat 0 1);
  let st1 = Latency.stats lat in
  Alcotest.(check bool) "first query computes a row" true (st1.Latency.rows_computed >= 1);
  Alcotest.(check int) "one hit" 1 st1.Latency.row_hits;
  Alcotest.(check bool) "memory grows with rows" true
    (st1.Latency.resident_bytes > st0.Latency.resident_bytes);
  ignore (Latency.host_latency lat 0 1);
  let st2 = Latency.stats lat in
  Alcotest.(check int) "warm query computes nothing" st1.Latency.rows_computed
    st2.Latency.rows_computed;
  Alcotest.(check int) "warm query still counted" 2 st2.Latency.row_hits;
  (* hosts live only on stub routers, so a full workload replay leaves the
     transit rows untouched *)
  for a = 0 to 299 do
    for b = 0 to 299 do
      ignore (Latency.host_latency lat a b)
    done
  done;
  let st3 = Latency.stats lat in
  Alcotest.(check bool) "rows computed < router count" true
    (st3.Latency.rows_computed < st3.Latency.routers)

let test_latency_eager_stats () =
  let rng = Prng.Rng.create ~seed:23 in
  let lat = TS.generate ~backend:Topology.Latency.Eager ~hosts:100 rng in
  let st = Latency.stats lat in
  Alcotest.(check string) "backend" "eager" st.Latency.backend;
  Alcotest.(check int) "all rows precomputed" st.Latency.routers st.Latency.rows_computed;
  Alcotest.(check bool) "matrix resident" true
    (st.Latency.resident_bytes >= 8 * st.Latency.routers * st.Latency.routers)

let test_latency_auto_resolution () =
  let g = diamond () in
  (* 4 routers, hosts on 3 of them: coverage 75% >= 50% and few routers -> eager *)
  let covered =
    Latency.create ~backend:Topology.Latency.Auto ~router_graph:g ~host_router:[| 0; 1; 3 |]
      ~host_access:[| 1.0; 1.0; 1.0 |] ()
  in
  Alcotest.(check bool) "well-covered small graph resolves eager" true
    (Latency.effective_backend covered = Topology.Latency.Eager);
  (* hosts on 1 of 4 routers: coverage 25% < 50% -> lazy *)
  let sparse =
    Latency.create ~backend:Topology.Latency.Auto ~router_graph:g ~host_router:[| 2; 2; 2 |]
      ~host_access:[| 1.0; 1.0; 1.0 |] ()
  in
  Alcotest.(check bool) "sparse coverage resolves lazy" true
    (Latency.effective_backend sparse = Topology.Latency.Lazy)

let test_mean_host_latency_estimator () =
  let lat = TS.generate ~hosts:120 (Prng.Rng.create ~seed:24) in
  (* fixed seed -> bit-identical estimate *)
  let e1 = Latency.mean_host_latency lat ~samples:5000 (Prng.Rng.create ~seed:99) in
  let e2 = Latency.mean_host_latency lat ~samples:5000 (Prng.Rng.create ~seed:99) in
  Alcotest.(check int64) "fixed seed, fixed estimate" (Int64.bits_of_float e1)
    (Int64.bits_of_float e2);
  (* unbiased: close to the exact all-pairs mean on a small topology *)
  let n = Latency.hosts lat in
  let acc = ref 0.0 and pairs = ref 0 in
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      if a <> b then begin
        acc := !acc +. Latency.host_latency lat a b;
        incr pairs
      end
    done
  done;
  let exact = !acc /. float_of_int !pairs in
  let est = Latency.mean_host_latency lat ~samples:20_000 (Prng.Rng.create ~seed:7) in
  Alcotest.(check bool)
    (Printf.sprintf "estimate %.2f within 5%% of exact %.2f" est exact)
    true
    (Float.abs (est -. exact) < 0.05 *. exact)

(* --- Transit-Stub ------------------------------------------------------------ *)

let test_ts_connected_and_sized () =
  let rng = Prng.Rng.create ~seed:1 in
  let lat = TS.generate ~hosts:500 rng in
  let p = TS.default_params ~hosts:500 in
  Alcotest.(check int) "router count" (TS.router_count p) (Latency.routers lat);
  Alcotest.(check int) "hosts" 500 (Latency.hosts lat);
  Alcotest.(check bool) "connected" true (Graph.is_connected (Latency.router_graph lat))

let test_ts_three_latency_scales () =
  (* same-stub pairs must be far cheaper than cross-region pairs *)
  let rng = Prng.Rng.create ~seed:2 in
  let lat = TS.generate ~hosts:1000 rng in
  let p = TS.default_params ~hosts:1000 in
  let transit = p.TS.transit_domains * p.TS.transit_per_domain in
  let same_stub = Stats.Summary.create () in
  let cross = Stats.Summary.create () in
  for a = 0 to 300 do
    for b = a + 1 to 301 do
      let ra = Latency.router_of_host lat a and rb = Latency.router_of_host lat b in
      let stub_of r = (r - transit) / p.TS.routers_per_stub in
      let l = Latency.host_latency lat a b in
      if stub_of ra = stub_of rb then Stats.Summary.add same_stub l
      else if l > 0.0 then Stats.Summary.add cross l
    done
  done;
  Alcotest.(check bool) "found same-stub pairs" true (Stats.Summary.count same_stub > 0);
  Alcotest.(check bool) "same-stub far cheaper" true
    (Stats.Summary.mean same_stub < 0.4 *. Stats.Summary.mean cross)

let test_ts_hosts_on_stub_routers () =
  let rng = Prng.Rng.create ~seed:3 in
  let lat = TS.generate ~hosts:200 rng in
  let p = TS.default_params ~hosts:200 in
  let transit = p.TS.transit_domains * p.TS.transit_per_domain in
  for h = 0 to 199 do
    Alcotest.(check bool) "host attaches to a stub router" true
      (Latency.router_of_host lat h >= transit)
  done

let test_ts_determinism () =
  let l1 = TS.generate ~hosts:100 (Prng.Rng.create ~seed:9) in
  let l2 = TS.generate ~hosts:100 (Prng.Rng.create ~seed:9) in
  for a = 0 to 20 do
    Alcotest.(check (float 1e-9)) "same latencies" (Latency.host_latency l1 a (a + 50))
      (Latency.host_latency l2 a (a + 50))
  done

let test_ts_rejects_no_hosts () =
  Alcotest.check_raises "0 hosts" (Invalid_argument "Transit_stub.generate: need at least one host")
    (fun () -> ignore (TS.generate ~hosts:0 (Prng.Rng.create ~seed:1)))

(* --- Inet ---------------------------------------------------------------------- *)

let test_inet_minimum () =
  Alcotest.(check bool) "min hosts is 3000" true (Inet.min_hosts = 3000);
  match ignore (Inet.generate ~hosts:100 (Prng.Rng.create ~seed:1)) with
  | () -> Alcotest.fail "should reject"
  | exception Invalid_argument _ -> ()

let test_inet_structure () =
  let rng = Prng.Rng.create ~seed:4 in
  let lat = Inet.generate ~hosts:3000 rng in
  let g = Latency.router_graph lat in
  Alcotest.(check bool) "connected" true (Graph.is_connected g);
  Alcotest.(check bool) "enough routers" true (Graph.vertex_count g >= 200);
  (* power-law-ish: a hub with degree far above the minimum *)
  let max_deg = ref 0 and sum_deg = ref 0 in
  for v = 0 to Graph.vertex_count g - 1 do
    let d = Graph.degree g v in
    if d > !max_deg then max_deg := d;
    sum_deg := !sum_deg + d
  done;
  let mean_deg = float_of_int !sum_deg /. float_of_int (Graph.vertex_count g) in
  Alcotest.(check bool) "hub exists" true (float_of_int !max_deg > 6.0 *. mean_deg);
  (* degree histogram is heavily skewed towards the minimum degree *)
  let hist = Inet.degree_histogram g in
  let low_mass =
    List.fold_left (fun acc (d, c) -> if d <= 3 then acc + c else acc) 0 hist
  in
  Alcotest.(check bool) "most routers have low degree" true
    (low_mass * 2 > Graph.vertex_count g)

let test_model_facade () =
  Alcotest.(check (list string)) "names" [ "TS"; "Inet"; "BRITE" ]
    (List.map Model.name Model.all);
  Alcotest.(check bool) "parse ts" true (Model.of_name "ts" = Some Model.Transit_stub);
  Alcotest.(check bool) "parse case" true (Model.of_name "BRITE" = Some Model.Brite);
  Alcotest.(check bool) "parse junk" true (Model.of_name "foo" = None);
  Alcotest.(check int) "inet minimum" 3000 (Model.min_hosts Model.Inet);
  Alcotest.(check int) "ts minimum" 1 (Model.min_hosts Model.Transit_stub)

(* --- BRITE ---------------------------------------------------------------------- *)

let test_brite_structure () =
  let rng = Prng.Rng.create ~seed:5 in
  let lat = Brite.generate ~hosts:800 rng in
  let g = Latency.router_graph lat in
  Alcotest.(check bool) "connected" true (Graph.is_connected g);
  (* BA growth with m links per router: edges ~ m * routers *)
  let m = Brite.default_params.Brite.m in
  let v = Graph.vertex_count g and e = Graph.edge_count g in
  Alcotest.(check bool) "edge density ~ m*n" true (e >= v && e <= (m + 1) * v);
  (* geometric delays are bounded by the plane diagonal *)
  let p = Brite.default_params in
  let max_link = (sqrt 2.0 *. p.Brite.plane_size /. p.Brite.plane_speed) +. p.Brite.delay_floor in
  let ok = ref true in
  for r = 0 to v - 1 do
    Graph.iter_neighbors g r (fun _ w -> if w > max_link +. 1e-6 then ok := false)
  done;
  Alcotest.(check bool) "delays bounded by diagonal" true !ok

let test_brite_mean_latency_reasonable () =
  let rng = Prng.Rng.create ~seed:6 in
  let lat = Brite.generate ~hosts:500 rng in
  let mean = Latency.mean_host_latency lat ~samples:2000 rng in
  Alcotest.(check bool) "mean in a plausible band" true (mean > 10.0 && mean < 500.0)

(* --- qcheck -------------------------------------------------------------------- *)

let random_connected_graph seed n =
  let rng = Prng.Rng.create ~seed in
  let b = Graph.builder n in
  for i = 1 to n - 1 do
    Graph.add_edge b i (Prng.Rng.int rng i) (1.0 +. Prng.Rng.float rng 10.0)
  done;
  for _ = 1 to n do
    let u = Prng.Rng.int rng n and v = Prng.Rng.int rng n in
    if u <> v then Graph.add_edge b u v (1.0 +. Prng.Rng.float rng 10.0)
  done;
  Graph.freeze b

let prop_dijkstra_triangle =
  QCheck.Test.make ~name:"shortest paths obey the triangle inequality" ~count:50
    QCheck.(pair small_int (int_range 3 30))
    (fun (seed, n) ->
      let g = random_connected_graph seed n in
      let m = Dijkstra.distance_matrix g in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          for k = 0 to n - 1 do
            if m.(i).(j) > m.(i).(k) +. m.(k).(j) +. 1e-9 then ok := false
          done
        done
      done;
      !ok)

let prop_dijkstra_edge_bound =
  QCheck.Test.make ~name:"d(u,v) <= any direct edge weight" ~count:50
    QCheck.(pair small_int (int_range 3 30))
    (fun (seed, n) ->
      let g = random_connected_graph seed n in
      let m = Dijkstra.distance_matrix g in
      let ok = ref true in
      for u = 0 to n - 1 do
        Graph.iter_neighbors g u (fun v w -> if m.(u).(v) > w +. 1e-9 then ok := false)
      done;
      !ok)

let edge_weight g u v =
  let w = ref infinity in
  Graph.iter_neighbors g u (fun x wx -> if x = v then w := Float.min !w wx);
  !w

let prop_dijkstra_path_valid =
  QCheck.Test.make ~name:"path endpoints + edge-weight sum match distances" ~count:50
    QCheck.(pair small_int (int_range 3 30))
    (fun (seed, n) ->
      let g = random_connected_graph seed n in
      let rng = Prng.Rng.create ~seed:(seed + 31) in
      let src = Prng.Rng.int rng n and dst = Prng.Rng.int rng n in
      let dist = Dijkstra.distances g ~src in
      match Dijkstra.path g ~src ~dst with
      | None -> false (* connected graph: every vertex is reachable *)
      | Some [] -> false
      | Some (first :: _ as p) ->
          let rec sum = function
            | [] | [ _ ] -> 0.0
            | u :: (v :: _ as rest) ->
                (* infinity when u-v is not an edge, which poisons the sum *)
                edge_weight g u v +. sum rest
          in
          let last = List.nth p (List.length p - 1) in
          first = src && last = dst && Float.abs (sum p -. dist.(dst)) < 1e-9)

let () =
  Alcotest.run "topology"
    [
      ( "graph",
        [
          Alcotest.test_case "basic" `Quick test_graph_basic;
          Alcotest.test_case "duplicate edges" `Quick test_graph_duplicate_edges_keep_min;
          Alcotest.test_case "bad edges" `Quick test_graph_rejects_bad_edges;
          Alcotest.test_case "connectivity" `Quick test_graph_connectivity;
          Alcotest.test_case "symmetric adjacency" `Quick test_graph_neighbors_symmetric;
          Alcotest.test_case "freeze insertion-order independent" `Quick
            test_graph_freeze_insertion_order_independent;
          Alcotest.test_case "freeze sorts neighbors" `Quick test_graph_freeze_neighbors_sorted;
        ] );
      ( "dijkstra",
        [
          Alcotest.test_case "distances" `Quick test_dijkstra_distances;
          Alcotest.test_case "unreachable" `Quick test_dijkstra_unreachable;
          Alcotest.test_case "path" `Quick test_dijkstra_path;
          Alcotest.test_case "path unreachable" `Quick test_dijkstra_path_unreachable;
          Alcotest.test_case "matrix symmetric" `Quick test_distance_matrix_symmetric;
          Alcotest.test_case "flat matrix matches boxed" `Quick
            test_distance_matrix_flat_matches_boxed;
        ] );
      ( "latency",
        [
          Alcotest.test_case "oracle" `Quick test_latency_oracle;
          Alcotest.test_case "validation" `Quick test_latency_oracle_validation;
          Alcotest.test_case "backends bit-identical" `Quick test_latency_backends_bit_identical;
          Alcotest.test_case "lazy stats" `Quick test_latency_lazy_stats;
          Alcotest.test_case "eager stats" `Quick test_latency_eager_stats;
          Alcotest.test_case "auto resolution" `Quick test_latency_auto_resolution;
          Alcotest.test_case "mean estimator" `Quick test_mean_host_latency_estimator;
        ] );
      ( "transit-stub",
        [
          Alcotest.test_case "connected + sized" `Quick test_ts_connected_and_sized;
          Alcotest.test_case "three latency scales" `Quick test_ts_three_latency_scales;
          Alcotest.test_case "hosts on stub routers" `Quick test_ts_hosts_on_stub_routers;
          Alcotest.test_case "deterministic" `Quick test_ts_determinism;
          Alcotest.test_case "rejects zero hosts" `Quick test_ts_rejects_no_hosts;
        ] );
      ( "inet",
        [
          Alcotest.test_case "3000-node minimum" `Quick test_inet_minimum;
          Alcotest.test_case "power-law structure" `Slow test_inet_structure;
        ] );
      ( "brite",
        [
          Alcotest.test_case "structure" `Quick test_brite_structure;
          Alcotest.test_case "mean latency" `Quick test_brite_mean_latency_reasonable;
        ] );
      ("model", [ Alcotest.test_case "facade" `Quick test_model_facade ]);
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_dijkstra_triangle; prop_dijkstra_edge_bound; prop_dijkstra_path_valid ] );
    ]
