(* Tests for the fault-injection layer and the failure-aware routers:
   schedule compilation (monotonicity, determinism, planned-population
   replay, engine agreement), the resilient walks of both algorithms
   (never end at a dead node; collapse to the plain walk when nobody is
   dead; traces stay auditable under faults), and the golden resilience
   report regression. *)

module Faults = Workload.Faults
module Lookup = Chord.Lookup
module Hlookup = Hieras.Hlookup
module Engine = Simnet.Engine
module Analyze = Obs.Analyze
module Trace = Obs.Trace

(* --- schedule generators ----------------------------------------------------- *)

(* A seed deterministically expands to a small well-formed spec list; the
   qcheck search space is the seed, keeping shrinking meaningful. *)
let specs_of_seed seed =
  let rng = Prng.Rng.create ~seed in
  let n_specs = 1 + Prng.Rng.int rng 4 in
  List.init n_specs (fun _ ->
      let at = float_of_int (Prng.Rng.int rng 200) in
      match Prng.Rng.int rng 4 with
      | 0 -> Faults.Crash { at; frac = float_of_int (Prng.Rng.int rng 101) /. 100.0 }
      | 1 ->
          Faults.Crash_restart
            {
              at;
              frac = float_of_int (Prng.Rng.int rng 101) /. 100.0;
              down_ms = 1.0 +. float_of_int (Prng.Rng.int rng 500);
            }
      | 2 ->
          Faults.Domain_outage
            {
              at;
              domains = 1 + Prng.Rng.int rng 3;
              down_ms = (if Prng.Rng.int rng 2 = 0 then None else Some (50.0 +. at));
            }
      | _ ->
          Faults.Loss_window
            {
              from_ms = at;
              until_ms = at +. 1.0 +. float_of_int (Prng.Rng.int rng 300);
              rate = float_of_int (Prng.Rng.int rng 99) /. 100.0;
            })

(* --- validation --------------------------------------------------------------- *)

let test_validate_rejects () =
  let bad =
    [
      [ Faults.Crash { at = -1.0; frac = 0.5 } ];
      [ Faults.Crash { at = 0.0; frac = 1.5 } ];
      [ Faults.Crash_restart { at = 0.0; frac = 0.5; down_ms = 0.0 } ];
      [ Faults.Domain_outage { at = 0.0; domains = 0; down_ms = None } ];
      [ Faults.Domain_outage { at = 0.0; domains = 1; down_ms = Some 0.0 } ];
      [ Faults.Loss_window { from_ms = 5.0; until_ms = 5.0; rate = 0.1 } ];
      [ Faults.Loss_window { from_ms = 0.0; until_ms = 1.0; rate = 1.0 } ];
    ]
  in
  List.iter
    (fun specs ->
      (match Faults.validate specs with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "ill-formed spec accepted");
      Alcotest.(check bool) "compile raises" true
        (try
           ignore (Faults.compile ~nodes:8 specs (Prng.Rng.create ~seed:1));
           false
         with Invalid_argument _ -> true))
    bad;
  Alcotest.(check bool) "empty schedule is fine" true (Faults.validate [] = Ok ());
  Alcotest.(check int) "empty schedule compiles to nothing" 0
    (List.length (Faults.compile ~nodes:8 [] (Prng.Rng.create ~seed:1)))

(* --- compilation properties --------------------------------------------------- *)

let compile_prop seed =
  let specs = specs_of_seed seed in
  let nodes = 16 + (abs seed mod 48) in
  let events = Faults.compile ~nodes specs (Prng.Rng.create ~seed) in
  let fail fmt = QCheck.Test.fail_reportf fmt in
  (* monotone in time *)
  ignore
    (List.fold_left
       (fun prev (e : Faults.event) ->
         if e.Faults.at < prev then fail "event at %g after %g" e.Faults.at prev;
         e.Faults.at)
       neg_infinity events);
  (* node indices in range; kills before revives per node *)
  let killed = Array.make nodes 0 and revived = Array.make nodes 0 in
  List.iter
    (fun (e : Faults.event) ->
      match e.Faults.action with
      | Faults.Kill n ->
          if n < 0 || n >= nodes then fail "kill of out-of-range node %d" n;
          killed.(n) <- killed.(n) + 1
      | Faults.Revive n ->
          if n < 0 || n >= nodes then fail "revive of out-of-range node %d" n;
          revived.(n) <- revived.(n) + 1;
          if revived.(n) > killed.(n) then fail "node %d revived before killed" n
      | Faults.Set_loss r -> if r < 0.0 || r >= 1.0 then fail "loss rate %g outside [0,1)" r)
    events;
  (* deterministic: same seed, same stream; also under a split-off rng of
     the same state (compile must not depend on ambient randomness) *)
  let again = Faults.compile ~nodes specs (Prng.Rng.create ~seed) in
  if events <> again then fail "compile is not deterministic for seed %d" seed;
  (* planned population at the end agrees with a replay of the engine *)
  let horizon = 10_000.0 in
  let planned = Faults.population ~nodes ~at:horizon events in
  let eng = Engine.create ~latency:(fun _ _ -> 0.0) ~nodes in
  Faults.apply eng ~rng:(Prng.Rng.create ~seed:(seed + 7)) events;
  Engine.run ~until:horizon eng;
  for n = 0 to nodes - 1 do
    if Engine.is_alive eng n <> planned.(n) then
      fail "node %d: engine %b, planned %b" n (Engine.is_alive eng n) planned.(n)
  done;
  if Engine.live_count eng <> Array.fold_left (fun a b -> if b then a + 1 else a) 0 planned then
    fail "live_count disagrees with planned population";
  (* conservation on the engine counters *)
  if Engine.deaths eng - Engine.revivals eng <> nodes - Engine.live_count eng then
    fail "deaths - revivals <> nodes - live";
  (* loss rate is a planned quantity too *)
  let lr = Faults.loss_rate ~at:horizon events in
  if lr < 0.0 || lr >= 1.0 then fail "planned loss rate %g outside [0,1)" lr;
  true

let test_compile_invariants =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"compiled schedules are monotone, deterministic, engine-consistent"
       ~count:100
       QCheck.(int_range 0 1_000_000)
       compile_prop)

let test_crash_fraction_exact () =
  (* a single crash of fraction f kills round(f*n) distinct nodes *)
  let nodes = 100 in
  List.iter
    (fun frac ->
      let events =
        Faults.compile ~nodes
          [ Faults.Crash { at = 5.0; frac } ]
          (Prng.Rng.create ~seed:42)
      in
      let victims =
        List.filter_map
          (fun (e : Faults.event) ->
            match e.Faults.action with Faults.Kill n -> Some n | _ -> None)
          events
      in
      let expect = int_of_float ((frac *. float_of_int nodes) +. 0.5) in
      Alcotest.(check int) (Printf.sprintf "frac %g kills" frac) expect (List.length victims);
      Alcotest.(check int)
        (Printf.sprintf "frac %g distinct" frac)
        expect
        (List.length (List.sort_uniq compare victims)))
    [ 0.0; 0.1; 0.25; 0.5; 1.0 ]

let test_domain_outage_correlated () =
  (* group_of = n mod 4: an outage kills whole residue classes and nothing else *)
  let nodes = 32 in
  let group_of n = n mod 4 in
  let events =
    Faults.compile ~group_of ~nodes
      [ Faults.Domain_outage { at = 1.0; domains = 2; down_ms = None } ]
      (Prng.Rng.create ~seed:7)
  in
  let victims =
    List.filter_map
      (fun (e : Faults.event) ->
        match e.Faults.action with Faults.Kill n -> Some n | _ -> None)
      events
  in
  let groups = List.sort_uniq compare (List.map group_of victims) in
  Alcotest.(check int) "two domains hit" 2 (List.length groups);
  Alcotest.(check int) "every member of each domain dies" (2 * (nodes / 4))
    (List.length victims);
  List.iter
    (fun n -> if List.mem (group_of n) groups then
        Alcotest.(check bool) (Printf.sprintf "node %d dead" n) true (List.mem n victims))
    (List.init nodes (fun i -> i))

let test_restart_revives () =
  let nodes = 50 in
  let events =
    Faults.compile ~nodes
      [ Faults.Crash_restart { at = 10.0; frac = 0.3; down_ms = 25.0 } ]
      (Prng.Rng.create ~seed:3)
  in
  let dead_mid = Faults.population ~nodes ~at:20.0 events in
  let alive_after = Faults.population ~nodes ~at:50.0 events in
  let count p a = Array.fold_left (fun acc b -> if p b then acc + 1 else acc) 0 a in
  Alcotest.(check int) "15 down during the outage" 15 (count not dead_mid);
  Alcotest.(check int) "all back after down_ms" nodes (count Fun.id alive_after)

let test_loss_window () =
  let events =
    Faults.compile ~nodes:4
      [ Faults.Loss_window { from_ms = 100.0; until_ms = 200.0; rate = 0.25 } ]
      (Prng.Rng.create ~seed:1)
  in
  Alcotest.(check (float 0.0)) "before" 0.0 (Faults.loss_rate ~at:50.0 events);
  Alcotest.(check (float 0.0)) "inside" 0.25 (Faults.loss_rate ~at:150.0 events);
  Alcotest.(check (float 0.0)) "after" 0.0 (Faults.loss_rate ~at:250.0 events)

(* --- resilient routing -------------------------------------------------------- *)

type scenario = {
  net : Chord.Network.t;
  hnet : Hieras.Hnetwork.t;
  lat : Topology.Latency.t;
  nodes : int;
}

let scenario_cache : (int, scenario) Hashtbl.t = Hashtbl.create 8

let scenario_of_seed seed =
  let variant = abs seed mod 4 in
  match Hashtbl.find_opt scenario_cache variant with
  | Some s -> s
  | None ->
      let rng = Prng.Rng.create ~seed:(2000 + variant) in
      let nodes = 48 + (19 * variant) in
      let depth = 2 + (variant mod 2) in
      let lat = Topology.Transit_stub.generate ~hosts:nodes rng in
      let net =
        Chord.Network.build ~space:Hashid.Id.sha1_space ~hosts:(Array.init nodes (fun i -> i)) ()
      in
      let lm = Binning.Landmark.choose_spread lat ~count:4 rng in
      let hnet = Hieras.Hnetwork.build ~chord:net ~lat ~landmarks:lm ~depth () in
      let s = { net; hnet; lat; nodes } in
      Hashtbl.add scenario_cache variant s;
      s

let all_alive _ = true

(* At failure fraction 0 the resilient walks must be the plain walks:
   identical results (polymorphic equality covers hops, latencies and
   per-layer attribution) and zero recovery activity. *)
let fraction0_prop seed =
  let s = scenario_of_seed seed in
  let rng = Prng.Rng.create ~seed in
  let fail fmt = QCheck.Test.fail_reportf fmt in
  for _ = 1 to 5 do
    let key = Hashid.Id.random Hashid.Id.sha1_space rng in
    let origin = Prng.Rng.int rng s.nodes in
    let plain = Lookup.route s.net s.lat ~origin ~key in
    let a = Lookup.route_resilient s.net s.lat ~is_alive:all_alive ~origin ~key in
    (match a.Lookup.outcome with
    | Some r when r = plain -> ()
    | Some r ->
        fail "chord: resilient dest %d lat %g <> plain dest %d lat %g" r.Lookup.destination
          r.Lookup.latency plain.Lookup.destination plain.Lookup.latency
    | None -> fail "chord: resilient walk failed with everyone alive");
    if a.Lookup.retries + a.Lookup.timeouts + a.Lookup.fallbacks <> 0 then
      fail "chord: recovery activity with everyone alive";
    if a.Lookup.penalty_ms <> 0.0 then fail "chord: penalty with everyone alive";
    (match Lookup.live_owner s.net ~is_alive:all_alive ~key with
    | Some o when o = plain.Lookup.destination -> ()
    | Some o -> fail "live_owner %d <> plain destination %d" o plain.Lookup.destination
    | None -> fail "live_owner None with everyone alive");
    let hplain = Hlookup.route s.hnet ~origin ~key in
    let ha = Hlookup.route_resilient s.hnet ~is_alive:all_alive ~origin ~key in
    (match ha.Hlookup.outcome with
    | Some r when r = hplain -> ()
    | Some r ->
        fail "hieras: resilient dest %d lat %g <> plain dest %d lat %g" r.Hlookup.destination
          r.Hlookup.latency hplain.Hlookup.destination hplain.Hlookup.latency
    | None -> fail "hieras: resilient walk failed with everyone alive");
    if
      ha.Hlookup.retries + ha.Hlookup.timeouts + ha.Hlookup.fallbacks + ha.Hlookup.layer_escapes
      <> 0
    then fail "hieras: recovery activity with everyone alive"
  done;
  true

let test_fraction0_equivalence =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"fraction 0: resilient walk = plain walk, both algorithms" ~count:30
       QCheck.(int_range 0 100_000)
       fraction0_prop)

(* Under a random crash pattern the resilient walks must never end a
   successful lookup at a dead node, and Chord successes must land exactly
   on the live owner. *)
let resilient_owner_prop seed =
  let s = scenario_of_seed seed in
  let rng = Prng.Rng.create ~seed in
  let fail fmt = QCheck.Test.fail_reportf fmt in
  let frac = float_of_int (10 + (abs seed mod 41)) /. 100.0 in
  let events =
    Faults.compile ~nodes:s.nodes
      [ Faults.Crash { at = 1.0; frac } ]
      (Prng.Rng.create ~seed:(seed + 13))
  in
  let alive = Faults.population ~nodes:s.nodes ~at:10.0 events in
  let is_alive i = alive.(i) in
  for _ = 1 to 5 do
    let key = Hashid.Id.random Hashid.Id.sha1_space rng in
    let origin =
      let rec pick () =
        let o = Prng.Rng.int rng s.nodes in
        if alive.(o) then o else pick ()
      in
      pick ()
    in
    let owner = Lookup.live_owner s.net ~is_alive ~key in
    (match owner with
    | Some o -> if not alive.(o) then fail "live_owner returned dead node %d" o
    | None -> fail "live_owner None with live nodes present");
    let a = Lookup.route_resilient s.net s.lat ~is_alive ~origin ~key in
    (match a.Lookup.outcome with
    | Some r ->
        if not alive.(r.Lookup.destination) then
          fail "chord: resilient walk ended at dead node %d" r.Lookup.destination;
        if Some r.Lookup.destination <> owner then
          fail "chord: destination %d <> live owner %s" r.Lookup.destination
            (match owner with Some o -> string_of_int o | None -> "none")
    | None -> ());
    let ha = Hlookup.route_resilient s.hnet ~is_alive ~origin ~key in
    match ha.Hlookup.outcome with
    | Some r ->
        if not alive.(r.Hlookup.destination) then
          fail "hieras: resilient walk ended at dead node %d" r.Hlookup.destination
    | None -> ()
  done;
  true

let test_resilient_never_dead =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"resilient walks never end at a dead node; chord hits the live owner"
       ~count:30
       QCheck.(int_range 0 100_000)
       resilient_owner_prop)

(* Traced resilient lookups under faults must still satisfy the stream
   invariants: the analyzer audits hop-chain contiguity through retry and
   fallback events (a Recover event anchored off-chain is a violation),
   spans all close, and End latency = hop latencies + recovery penalties. *)
let resilient_trace_prop seed =
  let s = scenario_of_seed seed in
  let rng = Prng.Rng.create ~seed in
  let fail fmt = QCheck.Test.fail_reportf fmt in
  let events =
    Faults.compile ~nodes:s.nodes
      [ Faults.Crash { at = 1.0; frac = 0.3 } ]
      (Prng.Rng.create ~seed:(seed + 29))
  in
  let alive = Faults.population ~nodes:s.nodes ~at:10.0 events in
  let is_alive i = alive.(i) in
  let buf = Buffer.create 4096 in
  let tr = Trace.jsonl (Buffer.add_string buf) in
  let recover = ref 0 in
  for _ = 1 to 6 do
    let key = Hashid.Id.random Hashid.Id.sha1_space rng in
    let origin =
      let rec pick () =
        let o = Prng.Rng.int rng s.nodes in
        if alive.(o) then o else pick ()
      in
      pick ()
    in
    let a = Lookup.route_resilient ~trace:tr s.net s.lat ~is_alive ~origin ~key in
    recover := !recover + a.Lookup.retries + a.Lookup.fallbacks;
    let ha = Hlookup.route_resilient ~trace:tr s.hnet ~is_alive ~origin ~key in
    recover := !recover + ha.Hlookup.retries + ha.Hlookup.fallbacks + ha.Hlookup.layer_escapes
  done;
  let an = Analyze.create () in
  String.split_on_char '\n' (Buffer.contents buf) |> List.iter (Analyze.feed_line an);
  let r = Analyze.report an in
  if r.Analyze.violations <> 0 then
    fail "%d violations on a faulted resilient trace" r.Analyze.violations;
  if r.Analyze.spans_open <> 0 then fail "%d open spans" r.Analyze.spans_open;
  (* the analyzer's recover accounting sees exactly the emitted events *)
  let counted =
    List.fold_left
      (fun acc (a : Analyze.algo_report) ->
        acc + a.Analyze.recover.Analyze.retries + a.Analyze.recover.Analyze.fallbacks
        + a.Analyze.recover.Analyze.layer_escapes)
      0 r.Analyze.algos
  in
  if counted <> !recover then
    fail "analyzer counted %d recover events, routers reported %d" counted !recover;
  true

let test_resilient_traces_audit =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"faulted resilient traces audit clean, recover counts agree" ~count:20
       QCheck.(int_range 0 100_000)
       resilient_trace_prop)

let test_policy_validation () =
  let s = scenario_of_seed 0 in
  let key = Hashid.Id.random Hashid.Id.sha1_space (Prng.Rng.create ~seed:5) in
  let bad = { Lookup.default_policy with Lookup.rpc_timeout_ms = 0.0 } in
  Alcotest.(check bool) "bad policy raises" true
    (try
       ignore (Lookup.route_resilient ~policy:bad s.net s.lat ~is_alive:all_alive ~origin:0 ~key);
       false
     with Invalid_argument _ -> true);
  let dead_origin i = i <> 0 in
  Alcotest.(check bool) "dead origin raises" true
    (try
       ignore (Lookup.route_resilient s.net s.lat ~is_alive:dead_origin ~origin:0 ~key);
       false
     with Invalid_argument _ -> true);
  (* attempt_delay: first attempt costs the timeout, later ones add capped backoff *)
  let p = Lookup.default_policy in
  Alcotest.(check (float 1e-9)) "attempt 0" p.Lookup.rpc_timeout_ms (Lookup.attempt_delay p 0);
  Alcotest.(check (float 1e-9)) "attempt 1"
    (p.Lookup.backoff_base_ms +. p.Lookup.rpc_timeout_ms)
    (Lookup.attempt_delay p 1);
  Alcotest.(check bool) "backoff capped at timeout" true
    (Lookup.attempt_delay p 40 <= 2.0 *. p.Lookup.rpc_timeout_ms +. 1e-9)

(* --- golden resilience report -------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_golden_resilience () =
  let want = read_file (Filename.concat "golden" "resilience_ts64.json") in
  let got = Obs_test_support.Golden.build_resilience () in
  Alcotest.(check string)
    "byte-identical (regenerate with: dune exec test/support/gen_golden.exe -- --resilience > \
     test/golden/resilience_ts64.json)"
    want got

let () =
  Alcotest.run "faults"
    [
      ( "schedules",
        [
          Alcotest.test_case "validation rejects ill-formed specs" `Quick test_validate_rejects;
          test_compile_invariants;
          Alcotest.test_case "crash kills round(frac*n) distinct nodes" `Quick
            test_crash_fraction_exact;
          Alcotest.test_case "domain outages are correlated" `Quick test_domain_outage_correlated;
          Alcotest.test_case "crash-restart revives after downtime" `Quick test_restart_revives;
          Alcotest.test_case "loss windows open and close" `Quick test_loss_window;
        ] );
      ( "resilient-routing",
        [
          test_fraction0_equivalence;
          test_resilient_never_dead;
          test_resilient_traces_audit;
          Alcotest.test_case "policy and origin validation" `Quick test_policy_validation;
        ] );
      ( "golden",
        [ Alcotest.test_case "resilience report is byte-identical" `Quick test_golden_resilience ] );
    ]
