(* The canonical golden-trace scenario, shared by the regression test
   (test/test_obs.ml) and the regeneration tool (gen_golden.exe):

     dune exec test/support/gen_golden.exe > test/golden/trace_ts64.jsonl
     dune exec test/support/gen_golden.exe -- --report \
       > test/golden/report_ts64.json

   A fixed-seed 64-node Transit-Stub network replays the first 12 requests
   of the standard measurement stream through both Chord and HIERAS with a
   JSONL tracer attached. Any change to routing decisions, latency
   accounting, hop ordering or the trace schema changes these bytes — which
   is the point: such changes must be made (and reviewed) explicitly, by
   regenerating the file. The golden report is the analyzer's JSON rendering
   of the same trace, pinning the analysis schema and arithmetic too. *)

module Config = Experiments.Config
module Runner = Experiments.Runner

let cfg =
  let c = Config.paper_default in
  let c = Config.with_nodes c 64 in
  let c = Config.with_requests c 12 in
  let c = Config.with_landmarks c 4 in
  let c = Config.with_seed c 2003 in
  Config.with_latency_backend c Topology.Latency.Eager

let build_trace () =
  let env = Runner.build_env cfg in
  let hnet = Runner.build_hieras env cfg in
  let chord = Runner.chord_network env in
  let lat = Runner.latency_oracle env in
  let buf = Buffer.create 8192 in
  let tr = Obs.Trace.jsonl (Buffer.add_string buf) in
  (* the exact request stream Runner.measure replays for this config *)
  let rng = Prng.Rng.create ~seed:(cfg.Config.seed + 104729) in
  let spec = Workload.Requests.paper_default ~count:cfg.Config.requests in
  let requests =
    Workload.Requests.to_array spec ~nodes:cfg.Config.nodes ~space:Hashid.Id.sha1_space rng
  in
  Array.iter
    (fun { Workload.Requests.origin; key } ->
      ignore (Chord.Lookup.route ~trace:tr chord lat ~origin ~key);
      ignore (Hieras.Hlookup.route ~trace:tr hnet ~origin ~key))
    requests;
  Buffer.contents buf

(* the analyzer's JSON report over the golden trace, newline-terminated *)
let build_report () =
  let an = Obs.Analyze.create () in
  String.split_on_char '\n' (build_trace ()) |> List.iter (Obs.Analyze.feed_line an);
  Obs.Analyze.report_json (Obs.Analyze.report an) ^ "\n"

(* The golden resilience report: the same 64-node scenario traced through a
   single 30% crash point of the resilience experiment, rendered as the
   analyzer's JSON report. Pins the fault draw, both route_resilient paths
   (retry/fallback/layer-escape decisions and penalty arithmetic) and the
   recover section of the analysis schema in one artifact — and, being a
   trace-report, it is directly comparable with `analyze compare`. *)
let build_resilience () =
  let buf = Buffer.create 8192 in
  let tr = Obs.Trace.jsonl (Buffer.add_string buf) in
  ignore (Experiments.Resilience.run ~trace:tr ~fractions:[ 0.3 ] ~kind:Experiments.Resilience.Crash cfg);
  let an = Obs.Analyze.create () in
  String.split_on_char '\n' (Buffer.contents buf) |> List.iter (Obs.Analyze.feed_line an);
  Obs.Analyze.report_json (Obs.Analyze.report an) ^ "\n"

(* The golden soak results: a short two-factor churn soak over a 24-node
   pool, rendered as the single-line soak JSON. Pins the churn/fault/probe
   draws, both message-level protocols' maintenance behaviour, the
   convergence detector's bookkeeping and the soak result schema — any
   change to protocol message flow or stability accounting moves these
   bytes. *)
let soak_spec =
  {
    Experiments.Soak.default_spec with
    Experiments.Soak.pool = 24;
    initial = 8;
    horizon_ms = 20_000.0;
    factors = [ 0.5; 1.0 ];
  }

let build_soak () =
  Experiments.Soak.results_json (Experiments.Soak.run soak_spec) ^ "\n"

(* The golden netspan trace: a shrunk single-factor soak (10 s horizon)
   with message-level span recording at a 10% root-keyed sample rate. Pins
   the span schema, the RPC kind taxonomy at every send site of both
   protocols, the causal parent threading, and the deterministic sampler —
   any change to protocol message flow, kind labels or the sampling hash
   moves these bytes. Byte-identical for any --jobs (per-cell buffers,
   fixed merge order), which test_netspan.ml separately enforces. *)
let netspan_spec =
  {
    soak_spec with
    Experiments.Soak.horizon_ms = 10_000.0;
    factors = [ 1.0 ];
    net_sample = Some 0.1;
  }

let build_netspan () = Experiments.Soak.net_trace (Experiments.Soak.run netspan_spec)

(* The golden scale results: the million-node scale experiment shrunk to 64
   nodes, every lookup cross-checked against the full simulated route,
   rendered as the deterministic single-line results JSON. Pins the packed
   network builders (finger-arena pack and the id-prefix acceleration), the
   analytic routing walk of both algorithms, the chunk-seeded request
   stream, and the scale result schema — and it is byte-identical for any
   --jobs by construction, which CI separately enforces at 10^5 lookups. *)
let scale_spec =
  {
    Experiments.Scale.default_spec with
    Experiments.Scale.nodes = 64;
    requests = 256;
    landmarks = 4;
    depth = 3;
    cross_check = 256;
  }

let build_scale () =
  Experiments.Scale.results_json (Experiments.Scale.run scale_spec) ^ "\n"

(* The golden cache results: a shrunk storage scenario — 16-node pool, 12
   objects, 120 zipf requests, replication 2 and 3, a spaced fault killing
   a quarter of the pool — rendered as the single-line cache JSON. Pins
   the replicated store's put/replicate/repair flows, the per-node cache
   tier's hit/evict arithmetic, the zipf stream draw, the fault schedule
   and the cache result schema for both message protocols — byte-identical
   for any --jobs, which test_store.ml and the cram suite enforce. *)
let cache_spec =
  {
    Experiments.Cache.default_spec with
    Experiments.Cache.pool = 16;
    objects = 12;
    requests = 120;
    replication = [ 2; 3 ];
    fault = Experiments.Cache.Spaced;
    fault_frac = 0.25;
  }

let build_cache () =
  Experiments.Cache.results_json (Experiments.Cache.run cache_spec) ^ "\n"

(* The golden tournament matrix: every substrate (Chord, Pastry, CAN,
   Tapestry) flat and HIERAS-layered on the canonical 64-node scenario with
   200 requests, rendered as the deterministic single-line tournament JSON.
   Pins all eight routing implementations' hop/latency/stretch arithmetic,
   the shared crash/outage liveness draws and the tournament schema at once
   — byte-identical for any --jobs by construction, which the cram test and
   CI separately enforce. *)
let tournament_cfg = Config.with_requests cfg 200

let build_tournament () =
  Experiments.Tournament.results_json (Experiments.Tournament.run tournament_cfg) ^ "\n"
