(* Functorized conformance suite for {!Routing.ROUTABLE} implementations
   (ISSUE 8 satellite): instantiated once per substrate — flat Chord,
   Pastry, CAN, Tapestry and their [Hieras.Make] layerings — so every
   algorithm carries the same property coverage:

   - [route] terminates at [owner_of_key], the hop chain is contiguous
     (origin -> ... -> destination) and the accounting is exact (hop count,
     latency sum, per-layer splits);
   - [route_hops_only] agrees with [route] hop-for-hop;
   - an attached tracer sees one start / [hop_count] hops / one end whose
     fields mirror the returned result;
   - [route_resilient] with everyone alive reproduces [route] with zero
     recovery accounting, and under seeded kills succeeds only by reaching
     [live_owner]. *)

module Id = Hashid.Id

let space = Id.sha1_space

module type FIXTURE = sig
  include Routing.ROUTABLE

  val label : string
  (** Test-name prefix ("chord", "hieras-can", ...). *)

  val build : unit -> t
  (** Build the overlay under test (called once, lazily). *)
end

module Make (F : FIXTURE) = struct
  let fixture = lazy (F.build ())
  let eps = 1e-6

  let close a b = Float.abs (a -. b) <= eps *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))
  let key_of seed = Id.random space (Prng.Rng.create ~seed:(seed + 77))

  (* origin is a seed too (reduced mod size inside each property) so building
     the generator does not force the fixture at suite-listing time *)
  let request_gen =
    QCheck.make
      ~print:(fun (o, k) -> Printf.sprintf "origin-seed=%d key-seed=%d" o k)
      QCheck.Gen.(map2 (fun o k -> (o, k)) (int_bound 1_000_000) (int_bound 1_000_000))

  let origin_of t oseed = oseed mod F.size t

  let check name ok = if ok then true else QCheck.Test.fail_reportf "%s: %s" F.label name

  let hops_contiguous ~origin (r : Routing.result) =
    let rec go cur = function
      | [] -> cur = r.Routing.destination
      | h :: rest -> h.Routing.from_node = cur && go h.Routing.to_node rest
    in
    go origin r.Routing.hops

  let prop_route (oseed, kseed) =
    let t = Lazy.force fixture in
    let origin = origin_of t oseed in
    let key = key_of kseed in
    let r = F.route t ~origin ~key in
    check "destination is the key's owner" (r.Routing.destination = F.owner_of_key t ~key)
    && check "origin recorded" (r.Routing.origin = origin)
    && check "hop list length = hop_count" (List.length r.Routing.hops = r.Routing.hop_count)
    && check "hop chain contiguous" (hops_contiguous ~origin r)
    && check "zero hops iff origin owns"
         (r.Routing.hop_count = 0 = (origin = r.Routing.destination))
    && check "latency = sum of hop latencies"
         (close r.Routing.latency
            (List.fold_left (fun a (h : Routing.hop) -> a +. h.latency) 0.0 r.Routing.hops))
    && check "per-layer hops sum to hop_count"
         (Array.fold_left ( + ) 0 r.Routing.hops_per_layer = r.Routing.hop_count)
    && check "per-layer latency sums to latency"
         (close r.Routing.latency (Array.fold_left ( +. ) 0.0 r.Routing.latency_per_layer))
    && check "finished_at_layer in range"
         (r.Routing.finished_at_layer >= 1
         && r.Routing.finished_at_layer <= Array.length r.Routing.hops_per_layer)

  let prop_hops_only (oseed, kseed) =
    let t = Lazy.force fixture in
    let origin = origin_of t oseed in
    let key = key_of kseed in
    let r = F.route t ~origin ~key in
    let hops, dest = F.route_hops_only t ~origin ~key in
    check "route_hops_only hop count" (hops = r.Routing.hop_count)
    && check "route_hops_only destination" (dest = r.Routing.destination)

  let prop_trace (oseed, kseed) =
    let t = Lazy.force fixture in
    let origin = origin_of t oseed in
    let key = key_of kseed in
    let buf = Buffer.create 1024 in
    let tr = Obs.Trace.jsonl (Buffer.add_string buf) in
    let r = F.route ~trace:tr t ~origin ~key in
    let events =
      Buffer.contents buf |> String.split_on_char '\n'
      |> List.filter (fun l -> String.trim l <> "")
      |> List.map (fun l ->
             match Obs.Jsonu.parse l with
             | Ok j -> j
             | Error e -> QCheck.Test.fail_reportf "%s: trace line does not parse: %s" F.label e)
    in
    let kind k j =
      match Obs.Jsonu.member "ev" j with Some (Obs.Jsonu.Str s) -> s = k | _ -> false
    in
    let starts = List.filter (kind "start") events in
    let hops = List.filter (kind "hop") events in
    let ends = List.filter (kind "end") events in
    let str k j = Option.bind (Obs.Jsonu.member k j) Obs.Jsonu.to_string in
    let num k j = Option.bind (Obs.Jsonu.member k j) Obs.Jsonu.to_float in
    check "one start event" (List.length starts = 1)
    && check "one end event" (List.length ends = 1)
    && check "hop events = hop_count" (List.length hops = r.Routing.hop_count)
    && check "start algo tag" (str "algo" (List.hd starts) = Some F.name)
    && check "start origin" (num "origin" (List.hd starts) = Some (float_of_int origin))
    && check "end destination"
         (num "dest" (List.hd ends) = Some (float_of_int r.Routing.destination))
    && check "end hop count" (num "hops" (List.hd ends) = Some (float_of_int r.Routing.hop_count))
    && check "hop chain mirrors result"
         (List.for_all2
            (fun j (h : Routing.hop) ->
              num "from" j = Some (float_of_int h.Routing.from_node)
              && num "to" j = Some (float_of_int h.Routing.to_node)
              && num "layer" j = Some (float_of_int h.Routing.layer))
            hops r.Routing.hops)
    &&
    match num "lat_ms" (List.hd ends) with
    | Some l -> check "end latency" (close l r.Routing.latency)
    | None -> check "end latency present" false

  let prop_resilient_all_alive (oseed, kseed) =
    let t = Lazy.force fixture in
    let origin = origin_of t oseed in
    let key = key_of kseed in
    let r = F.route t ~origin ~key in
    let a = F.route_resilient t ~is_alive:(fun _ -> true) ~origin ~key in
    match a.Routing.outcome with
    | None -> QCheck.Test.fail_reportf "%s: all-alive resilient lookup stalled" F.label
    | Some r' ->
        check "all-alive destination" (r'.Routing.destination = r.Routing.destination)
        && check "all-alive hop count" (r'.Routing.hop_count = r.Routing.hop_count)
        && check "all-alive latency" (close r'.Routing.latency r.Routing.latency)
        && check "no retries" (a.Routing.retries = 0)
        && check "no timeouts" (a.Routing.timeouts = 0)
        && check "no fallbacks" (a.Routing.fallbacks = 0)
        && check "no layer escapes" (a.Routing.layer_escapes = 0)
        && check "no penalty" (a.Routing.penalty_ms = 0.0)

  let prop_resilient_kills (oseed, kseed) =
    let t = Lazy.force fixture in
    let n = F.size t in
    let origin = origin_of t oseed in
    let key = key_of kseed in
    (* seeded ~30% kills; the origin always survives *)
    let rng = Prng.Rng.create ~seed:(kseed + 41) in
    let alive = Array.init n (fun _ -> Prng.Rng.float rng 1.0 >= 0.3) in
    alive.(origin) <- true;
    let is_alive i = alive.(i) in
    let a = F.route_resilient t ~is_alive ~origin ~key in
    check "non-negative accounting"
      (a.Routing.retries >= 0 && a.Routing.timeouts >= 0 && a.Routing.fallbacks >= 0
      && a.Routing.layer_escapes >= 0 && a.Routing.penalty_ms >= 0.0)
    &&
    match a.Routing.outcome with
    | None -> true (* a stalled lookup is a legal outcome under failures *)
    | Some r ->
        (match F.live_owner t ~is_alive ~key with
        | Some o -> check "success reaches the live owner" (r.Routing.destination = o)
        | None -> check "outcome without a live owner" false)
        && check "resilient hop chain contiguous" (hops_contiguous ~origin r)
        && check "resilient destination is live" (is_alive r.Routing.destination)

  let tests ~count =
    let t name prop = QCheck.Test.make ~name:(Printf.sprintf "%s: %s" F.label name) ~count request_gen prop in
    [
      t "route terminates at the key's owner (exact accounting)" prop_route;
      t "route_hops_only == route hop-for-hop" prop_hops_only;
      t "trace events mirror the result" prop_trace;
      t "resilient all-alive == route, zero recovery" prop_resilient_all_alive;
      t "resilient under kills succeeds only at live_owner" prop_resilient_kills;
    ]
end
