(* Regenerate the committed golden artifacts:
     dune exec test/support/gen_golden.exe > test/golden/trace_ts64.jsonl
     dune exec test/support/gen_golden.exe -- --report \
       > test/golden/report_ts64.json
     dune exec test/support/gen_golden.exe -- --resilience \
       > test/golden/resilience_ts64.json
     dune exec test/support/gen_golden.exe -- --soak \
       > test/golden/soak_ts64.json
     dune exec test/support/gen_golden.exe -- --netspan \
       > test/golden/netspan_ts64.jsonl
     dune exec test/support/gen_golden.exe -- --scale \
       > test/golden/scale_ts64.json
     dune exec test/support/gen_golden.exe -- --tournament \
       > test/golden/tournament_ts64.json
     dune exec test/support/gen_golden.exe -- --cache \
       > test/golden/cache_ts64.json *)
let () =
  match Array.to_list Sys.argv with
  | [ _ ] -> print_string (Obs_test_support.Golden.build_trace ())
  | [ _; "--report" ] -> print_string (Obs_test_support.Golden.build_report ())
  | [ _; "--resilience" ] -> print_string (Obs_test_support.Golden.build_resilience ())
  | [ _; "--soak" ] -> print_string (Obs_test_support.Golden.build_soak ())
  | [ _; "--netspan" ] -> print_string (Obs_test_support.Golden.build_netspan ())
  | [ _; "--scale" ] -> print_string (Obs_test_support.Golden.build_scale ())
  | [ _; "--tournament" ] -> print_string (Obs_test_support.Golden.build_tournament ())
  | [ _; "--cache" ] -> print_string (Obs_test_support.Golden.build_cache ())
  | _ ->
      prerr_endline
        "usage: gen_golden [--report | --resilience | --soak | --netspan | --scale | \
         --tournament | --cache]";
      exit 2
