(* Regenerate the committed golden trace:
     dune exec test/support/gen_golden.exe > test/golden/trace_ts64.jsonl *)
let () = print_string (Obs_test_support.Golden.build_trace ())
