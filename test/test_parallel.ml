(* Tests for the domain pool and for the determinism contract of the
   parallel experiment pipeline: any --jobs value must produce bit-identical
   results. *)

module Pool = Parallel.Pool
module Runner = Experiments.Runner
module Config = Experiments.Config
module Summary = Stats.Summary
module Histogram = Stats.Histogram

(* bit-exact float comparison — tolerance 0 would still equate -0.0/0.0 *)
let check_bits name a b =
  Alcotest.(check int64) name (Int64.bits_of_float a) (Int64.bits_of_float b)

let check_float_array name a b =
  Alcotest.(check int) (name ^ " length") (Array.length a) (Array.length b);
  Array.iteri (fun i x -> check_bits (Printf.sprintf "%s.(%d)" name i) x b.(i)) a

(* --- chunking -------------------------------------------------------------- *)

let test_chunks_cover_every_index () =
  List.iter
    (fun (n, count) ->
      let cs = Pool.chunks ~n ~count in
      Alcotest.(check int)
        (Printf.sprintf "chunk count n=%d count=%d" n count)
        (min count n) (Array.length cs);
      let seen = Array.make n 0 in
      Array.iter
        (fun (lo, hi) ->
          Alcotest.(check bool) "non-empty chunk" true (lo < hi);
          for i = lo to hi - 1 do
            seen.(i) <- seen.(i) + 1
          done)
        cs;
      Array.iteri
        (fun i c -> Alcotest.(check int) (Printf.sprintf "index %d covered once" i) 1 c)
        seen;
      (* contiguous: each chunk starts where the previous ended *)
      Array.iteri
        (fun k (lo, _) ->
          if k = 0 then Alcotest.(check int) "starts at 0" 0 lo
          else Alcotest.(check int) "contiguous" (snd cs.(k - 1)) lo)
        cs)
    [ (0, 4); (1, 4); (3, 8); (4, 4); (5, 4); (7, 3); (8, 3); (100, 7); (17, 17); (64, 1) ]

let test_chunks_balanced () =
  (* sizes differ by at most one, larger chunks first *)
  let cs = Pool.chunks ~n:10 ~count:4 in
  Alcotest.(check (list (pair int int)))
    "10 over 4" [ (0, 3); (3, 6); (6, 8); (8, 10) ] (Array.to_list cs)

let test_chunks_validation () =
  Alcotest.check_raises "count 0" (Invalid_argument "Pool.chunks: count must be >= 1")
    (fun () -> ignore (Pool.chunks ~n:5 ~count:0));
  Alcotest.check_raises "negative n" (Invalid_argument "Pool.chunks: negative n") (fun () ->
      ignore (Pool.chunks ~n:(-1) ~count:2))

(* --- pool basics ------------------------------------------------------------ *)

let test_create_validation () =
  Alcotest.check_raises "jobs 0" (Invalid_argument "Pool.create: jobs must be >= 1")
    (fun () -> ignore (Pool.create ~jobs:0 ()))

let test_parallel_for_covers_indices () =
  Pool.with_pool ~jobs:4 (fun pool ->
      List.iter
        (fun n ->
          let seen = Array.make (max n 1) 0 in
          Pool.parallel_for pool ~n (fun i -> seen.(i) <- seen.(i) + 1);
          for i = 0 to n - 1 do
            Alcotest.(check int) (Printf.sprintf "n=%d index %d once" n i) 1 seen.(i)
          done;
          if n = 0 then Alcotest.(check int) "n=0 runs nothing" 0 seen.(0))
        [ 0; 1; 2; 3; 4; 5; 100; 1000 ])

let test_parallel_for_fewer_items_than_jobs () =
  Pool.with_pool ~jobs:8 (fun pool ->
      let seen = Array.make 3 0 in
      Pool.parallel_for pool ~n:3 (fun i -> seen.(i) <- seen.(i) + 1);
      Alcotest.(check (list int)) "each once" [ 1; 1; 1 ] (Array.to_list seen))

let test_parallel_for_chunks_disjoint () =
  Pool.with_pool ~jobs:3 (fun pool ->
      let seen = Array.make 100 0 in
      Pool.parallel_for_chunks pool ~n:100 (fun ~lo ~hi ->
          for i = lo to hi - 1 do
            seen.(i) <- seen.(i) + 1
          done);
      Array.iteri (fun i c -> Alcotest.(check int) (string_of_int i) 1 c) seen)

let test_parallel_map_preserves_order () =
  Pool.with_pool ~jobs:5 (fun pool ->
      List.iter
        (fun n ->
          let input = Array.init n (fun i -> i) in
          let expect = Array.map (fun x -> (x * x) + 1) input in
          let got = Pool.parallel_map pool (fun x -> (x * x) + 1) input in
          Alcotest.(check (array int)) (Printf.sprintf "map order n=%d" n) expect got)
        [ 0; 1; 4; 5; 6; 997 ])

let test_map_chunks_order_and_layout () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let slices = Pool.map_chunks pool ~n:10 ~chunk_size:3 (fun ~lo ~hi -> (lo, hi)) in
      Alcotest.(check (list (pair int int)))
        "fixed layout in chunk order"
        [ (0, 3); (3, 6); (6, 9); (9, 10) ]
        slices;
      Alcotest.(check (list (pair int int))) "n=0" [] (Pool.map_chunks pool ~n:0 ~chunk_size:3 (fun ~lo ~hi -> (lo, hi)));
      Alcotest.check_raises "chunk_size 0"
        (Invalid_argument "Pool.map_chunks: chunk_size must be >= 1") (fun () ->
          ignore (Pool.map_chunks pool ~n:5 ~chunk_size:0 (fun ~lo ~hi -> (lo, hi)))))

let test_map_chunks_layout_independent_of_jobs () =
  let layout jobs =
    Pool.with_pool ~jobs (fun pool ->
        Pool.map_chunks pool ~n:2003 ~chunk_size:64 (fun ~lo ~hi -> (lo, hi)))
  in
  Alcotest.(check (list (pair int int))) "jobs 1 = jobs 7" (layout 1) (layout 7)

let test_worker_exception_reraised () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          Alcotest.check_raises
            (Printf.sprintf "exception surfaces with jobs=%d" jobs)
            (Failure "boom") (fun () ->
              Pool.parallel_for pool ~n:100 (fun i -> if i = 37 then failwith "boom"));
          (* the pool survives a failed region *)
          let seen = Array.make 10 0 in
          Pool.parallel_for pool ~n:10 (fun i -> seen.(i) <- 1);
          Alcotest.(check int) "usable after exception" 10 (Array.fold_left ( + ) 0 seen)))
    [ 1; 4 ]

let test_pool_reusable_across_calls () =
  Pool.with_pool ~jobs:4 (fun pool ->
      for round = 1 to 5 do
        let n = 100 * round in
        let got = Pool.parallel_map pool (fun x -> x * 2) (Array.init n (fun i -> i)) in
        Alcotest.(check int) (Printf.sprintf "round %d length" round) n (Array.length got);
        Array.iteri
          (fun i v -> if v <> 2 * i then Alcotest.failf "round %d wrong value at %d" round i)
          got
      done)

let test_sequential_pool_runs_inline () =
  (* the shared width-1 pool must behave exactly like a for-loop *)
  let order = ref [] in
  Pool.parallel_for Pool.sequential ~n:5 (fun i -> order := i :: !order);
  Alcotest.(check (list int)) "in-order inline" [ 0; 1; 2; 3; 4 ] (List.rev !order);
  Alcotest.(check int) "width 1" 1 (Pool.jobs Pool.sequential)

let test_with_pool_returns_value () =
  Alcotest.(check int) "propagates result" 42 (Pool.with_pool ~jobs:2 (fun _ -> 42))

(* --- determinism: latency oracle ------------------------------------------- *)

let test_latency_oracle_deterministic_in_jobs () =
  let build pool =
    let rng = Prng.Rng.create ~seed:42 in
    Topology.Transit_stub.generate ?pool ~hosts:300 rng
  in
  let seq = build None in
  Pool.with_pool ~jobs:4 (fun pool ->
      let par = build (Some pool) in
      Alcotest.(check int) "routers" (Topology.Latency.routers seq) (Topology.Latency.routers par);
      let nr = Topology.Latency.routers seq in
      for a = 0 to nr - 1 do
        for b = 0 to nr - 1 do
          let x = Topology.Latency.router_latency seq a b
          and y = Topology.Latency.router_latency par a b in
          if Int64.bits_of_float x <> Int64.bits_of_float y then
            Alcotest.failf "router distance (%d,%d) differs: %h vs %h" a b x y
        done
      done;
      let n = Topology.Latency.hosts seq in
      for h = 0 to n - 1 do
        check_bits
          (Printf.sprintf "host latency %d" h)
          (Topology.Latency.host_latency seq h ((h + 7) mod n))
          (Topology.Latency.host_latency par h ((h + 7) mod n))
      done)

let test_lazy_backend_deterministic_in_jobs () =
  (* a lazy oracle filled concurrently from 4 domains must agree bit-for-bit
     with the eager sequential matrix — duplicate row computations are benign *)
  let eager =
    Topology.Transit_stub.generate ~backend:Topology.Latency.Eager ~hosts:300
      (Prng.Rng.create ~seed:42)
  in
  Pool.with_pool ~jobs:4 (fun pool ->
      let lz =
        Topology.Transit_stub.generate ~backend:Topology.Latency.Lazy ~pool ~hosts:300
          (Prng.Rng.create ~seed:42)
      in
      let n = Topology.Latency.hosts eager in
      (* race the lazy fill across domains, then compare every pair *)
      Pool.parallel_for pool ~n (fun a ->
          for b = 0 to n - 1 do
            ignore (Topology.Latency.host_latency lz a b)
          done);
      for a = 0 to n - 1 do
        for b = 0 to n - 1 do
          let x = Topology.Latency.host_latency eager a b
          and y = Topology.Latency.host_latency lz a b in
          if Int64.bits_of_float x <> Int64.bits_of_float y then
            Alcotest.failf "host latency (%d,%d) differs: %h vs %h" a b x y
        done
      done)

(* --- determinism: experiment runner ---------------------------------------- *)

let det_cfg =
  (* > chunk_size requests so the parallel path really merges several chunks *)
  Config.paper_default |> fun c ->
  Config.with_nodes c 192 |> fun c ->
  Config.with_requests c 9000 |> fun c ->
  Config.with_landmarks c 4 |> fun c -> Config.with_seed c 77

let check_summary name a b =
  Alcotest.(check int) (name ^ " count") (Summary.count a) (Summary.count b);
  check_bits (name ^ " mean") (Summary.mean a) (Summary.mean b);
  check_bits (name ^ " variance") (Summary.variance a) (Summary.variance b);
  check_bits (name ^ " min") (Summary.min_value a) (Summary.min_value b);
  check_bits (name ^ " max") (Summary.max_value a) (Summary.max_value b);
  check_bits (name ^ " total") (Summary.total a) (Summary.total b)

let check_histogram name a b =
  Alcotest.(check int) (name ^ " count") (Histogram.count a) (Histogram.count b);
  Alcotest.(check int) (name ^ " clamped") (Histogram.clamped a) (Histogram.clamped b);
  Alcotest.(check (array int)) (name ^ " counts") (Histogram.counts a) (Histogram.counts b)

let check_metrics_equal (a : Runner.metrics) (b : Runner.metrics) =
  check_summary "chord_hops" a.Runner.chord_hops b.Runner.chord_hops;
  check_summary "chord_latency" a.Runner.chord_latency b.Runner.chord_latency;
  check_summary "hieras_hops" a.Runner.hieras_hops b.Runner.hieras_hops;
  check_summary "hieras_latency" a.Runner.hieras_latency b.Runner.hieras_latency;
  check_summary "lower_hops" a.Runner.lower_hops b.Runner.lower_hops;
  check_summary "top_hops" a.Runner.top_hops b.Runner.top_hops;
  check_summary "lower_latency" a.Runner.lower_latency b.Runner.lower_latency;
  check_summary "top_latency" a.Runner.top_latency b.Runner.top_latency;
  check_histogram "chord_hop_pdf" a.Runner.chord_hop_pdf b.Runner.chord_hop_pdf;
  check_histogram "hieras_hop_pdf" a.Runner.hieras_hop_pdf b.Runner.hieras_hop_pdf;
  check_histogram "lower_hop_pdf" a.Runner.lower_hop_pdf b.Runner.lower_hop_pdf;
  check_histogram "chord_latency_hist" a.Runner.chord_latency_hist b.Runner.chord_latency_hist;
  check_histogram "hieras_latency_hist" a.Runner.hieras_latency_hist b.Runner.hieras_latency_hist;
  check_float_array "hops_per_layer" a.Runner.hops_per_layer b.Runner.hops_per_layer;
  check_float_array "latency_per_layer" a.Runner.latency_per_layer b.Runner.latency_per_layer

let test_measure_jobs1_equals_jobs4 () =
  let m1 = Pool.with_pool ~jobs:1 (fun pool -> Runner.run ~pool det_cfg) in
  let m4 = Pool.with_pool ~jobs:4 (fun pool -> Runner.run ~pool det_cfg) in
  check_metrics_equal m1 m4

let test_measure_default_equals_pooled () =
  (* the no-pool path must match a pooled run too — same chunked reduction *)
  let m0 = Runner.run det_cfg in
  let m4 = Pool.with_pool ~jobs:4 (fun pool -> Runner.run ~pool det_cfg) in
  check_metrics_equal m0 m4

let test_measure_backend_independent () =
  (* figures must not depend on the oracle backend, for any pool width *)
  let run backend jobs =
    let cfg = Config.with_latency_backend det_cfg backend in
    if jobs = 1 then Runner.run cfg
    else Pool.with_pool ~jobs (fun pool -> Runner.run ~pool cfg)
  in
  let eager1 = run Topology.Latency.Eager 1 in
  check_metrics_equal eager1 (run Topology.Latency.Lazy 1);
  check_metrics_equal eager1 (run Topology.Latency.Lazy 4);
  check_metrics_equal eager1 (run Topology.Latency.Auto 4)

let test_registry_snapshot_jobs_independent () =
  (* the runner.* registry export happens after the deterministic merge, on
     the calling domain — so the rendered snapshot must be byte-identical for
     any pool width, both as text and as JSON *)
  let snapshot jobs =
    let reg = Obs.Metrics.create () in
    (if jobs = 1 then ignore (Runner.run ~registry:reg det_cfg)
     else Pool.with_pool ~jobs (fun pool -> ignore (Runner.run ~pool ~registry:reg det_cfg)));
    Obs.Metrics.snapshot reg
  in
  let s1 = snapshot 1 and s4 = snapshot 4 in
  Alcotest.(check string) "to_text jobs 1 = jobs 4" (Obs.Metrics.to_text s1)
    (Obs.Metrics.to_text s4);
  Alcotest.(check string) "to_json jobs 1 = jobs 4" (Obs.Metrics.to_json s1)
    (Obs.Metrics.to_json s4)

let test_registry_with_observers_jobs_independent () =
  (* the full observability export — runner metrics + fake-clock phase timer
     + churn time series — must also render byte-identically for any pool
     width: the timer only runs on the calling domain and the series are a
     pure function of the seed *)
  let snapshot jobs =
    let reg = Obs.Metrics.create () in
    let timer =
      Obs.Timer.create
        ~clock:
          (let t = ref 0.0 in
           fun () ->
             let v = !t in
             t := v +. 0.25;
             v)
    in
    (if jobs = 1 then ignore (Runner.run ~registry:reg ~timer det_cfg)
     else Pool.with_pool ~jobs (fun pool -> ignore (Runner.run ~pool ~registry:reg ~timer det_cfg)));
    Obs.Timer.export_metrics timer reg;
    let ts = Obs.Timeseries.create ~bucket_ms:500.0 () in
    let spec =
      { Workload.Churn.horizon = 20_000.0; join_rate = 0.4; fail_rate = 0.1; leave_rate = 0.1 }
    in
    ignore
      (Workload.Churn.generate ~ts spec ~initial:16 ~pool:64 (Prng.Rng.create ~seed:5));
    Obs.Timeseries.export_metrics ts reg;
    (Obs.Metrics.snapshot reg, Obs.Timeseries.to_json ts)
  in
  let s1, ts1 = snapshot 1 and s4, ts4 = snapshot 4 in
  Alcotest.(check string) "registry to_json jobs 1 = jobs 4" (Obs.Metrics.to_json s1)
    (Obs.Metrics.to_json s4);
  Alcotest.(check string) "series to_json jobs 1 = jobs 4" ts1 ts4

let test_traced_measure_equals_untraced () =
  (* an enabled tracer forces the replay onto the calling domain, with the
     same chunk layout — figures stay bit-identical to the parallel run *)
  let tr = Obs.Trace.ring ~capacity:4 in
  let traced =
    Pool.with_pool ~jobs:4 (fun pool -> Runner.run ~pool ~trace:tr det_cfg)
  in
  let untraced = Pool.with_pool ~jobs:4 (fun pool -> Runner.run ~pool det_cfg) in
  check_metrics_equal traced untraced

(* --- determinism: fault schedules and the resilience experiment ------------- *)

let test_fault_compile_jobs_independent () =
  (* compilation never touches a pool, but must also be insensitive to being
     run from inside a parallel region — the draw is a pure function of the
     rng state and the specs *)
  let specs =
    [
      Workload.Faults.Crash { at = 10.0; frac = 0.2 };
      Workload.Faults.Crash_restart { at = 40.0; frac = 0.1; down_ms = 500.0 };
      Workload.Faults.Loss_window { from_ms = 5.0; until_ms = 95.0; rate = 0.05 };
    ]
  in
  let compile () = Workload.Faults.compile ~nodes:300 specs (Prng.Rng.create ~seed:99) in
  let base = compile () in
  Pool.with_pool ~jobs:4 (fun pool ->
      let per_worker = Pool.parallel_map pool (fun _ -> compile ()) (Array.make 8 ()) in
      Array.iteri
        (fun i evs ->
          if evs <> base then Alcotest.failf "worker %d compiled a different schedule" i)
        per_worker)

let res_cfg =
  Config.paper_default |> fun c ->
  Config.with_nodes c 128 |> fun c ->
  Config.with_requests c 6000 |> fun c ->
  Config.with_landmarks c 4 |> fun c -> Config.with_seed c 31

let check_point (a : Experiments.Resilience.point) (b : Experiments.Resilience.point) =
  let name = Printf.sprintf "fraction %g" a.Experiments.Resilience.fraction in
  check_bits (name ^ " fraction") a.Experiments.Resilience.fraction
    b.Experiments.Resilience.fraction;
  Alcotest.(check int) (name ^ " failed") a.Experiments.Resilience.failed
    b.Experiments.Resilience.failed;
  Alcotest.(check int) (name ^ " chord ok") a.Experiments.Resilience.chord_succeeded
    b.Experiments.Resilience.chord_succeeded;
  Alcotest.(check int) (name ^ " hieras ok") a.Experiments.Resilience.hieras_succeeded
    b.Experiments.Resilience.hieras_succeeded;
  check_bits (name ^ " chord stretch") a.Experiments.Resilience.chord_stretch
    b.Experiments.Resilience.chord_stretch;
  check_bits (name ^ " hieras stretch") a.Experiments.Resilience.hieras_stretch
    b.Experiments.Resilience.hieras_stretch;
  Alcotest.(check int) (name ^ " chord retries") a.Experiments.Resilience.chord_retries
    b.Experiments.Resilience.chord_retries;
  Alcotest.(check int) (name ^ " hieras retries") a.Experiments.Resilience.hieras_retries
    b.Experiments.Resilience.hieras_retries;
  Alcotest.(check int) (name ^ " escapes") a.Experiments.Resilience.hieras_layer_escapes
    b.Experiments.Resilience.hieras_layer_escapes;
  check_bits (name ^ " chord penalty") a.Experiments.Resilience.chord_penalty_ms
    b.Experiments.Resilience.chord_penalty_ms;
  check_bits (name ^ " hieras penalty") a.Experiments.Resilience.hieras_penalty_ms
    b.Experiments.Resilience.hieras_penalty_ms

let test_resilience_jobs1_equals_jobs4 () =
  let run jobs =
    let reg = Obs.Metrics.create () in
    let r =
      Pool.with_pool ~jobs (fun pool ->
          Experiments.Resilience.run ~pool ~registry:reg
            ~fractions:[ 0.0; 0.25; 0.5 ] res_cfg)
    in
    (r, Obs.Metrics.to_text (Obs.Metrics.snapshot reg))
  in
  let r1, snap1 = run 1 and r4, snap4 = run 4 in
  check_bits "chord baseline" r1.Experiments.Resilience.chord_baseline_ms
    r4.Experiments.Resilience.chord_baseline_ms;
  check_bits "hieras baseline" r1.Experiments.Resilience.hieras_baseline_ms
    r4.Experiments.Resilience.hieras_baseline_ms;
  List.iter2 check_point r1.Experiments.Resilience.points r4.Experiments.Resilience.points;
  Alcotest.(check string) "registry snapshot jobs 1 = jobs 4" snap1 snap4;
  (* the rendered report section is a pure function of the results *)
  Alcotest.(check string) "report section jobs 1 = jobs 4"
    (Experiments.Report.render (Experiments.Resilience.section r1))
    (Experiments.Report.render (Experiments.Resilience.section r4))

let () =
  Alcotest.run "parallel"
    [
      ( "chunking",
        [
          Alcotest.test_case "covers every index once" `Quick test_chunks_cover_every_index;
          Alcotest.test_case "balanced sizes" `Quick test_chunks_balanced;
          Alcotest.test_case "validation" `Quick test_chunks_validation;
        ] );
      ( "pool",
        [
          Alcotest.test_case "create validation" `Quick test_create_validation;
          Alcotest.test_case "parallel_for coverage" `Quick test_parallel_for_covers_indices;
          Alcotest.test_case "n < jobs" `Quick test_parallel_for_fewer_items_than_jobs;
          Alcotest.test_case "chunked for disjoint" `Quick test_parallel_for_chunks_disjoint;
          Alcotest.test_case "map preserves order" `Quick test_parallel_map_preserves_order;
          Alcotest.test_case "map_chunks layout" `Quick test_map_chunks_order_and_layout;
          Alcotest.test_case "map_chunks jobs-independent" `Quick
            test_map_chunks_layout_independent_of_jobs;
          Alcotest.test_case "exception re-raised" `Quick test_worker_exception_reraised;
          Alcotest.test_case "reusable across calls" `Quick test_pool_reusable_across_calls;
          Alcotest.test_case "sequential inline" `Quick test_sequential_pool_runs_inline;
          Alcotest.test_case "with_pool result" `Quick test_with_pool_returns_value;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "latency oracle seq = par" `Quick
            test_latency_oracle_deterministic_in_jobs;
          Alcotest.test_case "lazy backend = eager, raced fill" `Quick
            test_lazy_backend_deterministic_in_jobs;
          Alcotest.test_case "measure jobs 1 = jobs 4" `Slow test_measure_jobs1_equals_jobs4;
          Alcotest.test_case "measure default = pooled" `Slow test_measure_default_equals_pooled;
          Alcotest.test_case "measure backend-independent" `Slow test_measure_backend_independent;
          Alcotest.test_case "registry snapshot jobs-independent" `Slow
            test_registry_snapshot_jobs_independent;
          Alcotest.test_case "timer + time-series exports jobs-independent" `Slow
            test_registry_with_observers_jobs_independent;
          Alcotest.test_case "traced measure = untraced measure" `Slow
            test_traced_measure_equals_untraced;
          Alcotest.test_case "fault compile jobs-independent" `Quick
            test_fault_compile_jobs_independent;
          Alcotest.test_case "resilience jobs 1 = jobs 4" `Slow
            test_resilience_jobs1_equals_jobs4;
        ] );
    ]
