The soak subcommand validates its flags up front with exit code 2 (usage
error), before any topology construction starts.

  $ ../bin/hieras_sim.exe soak --pool 1
  hieras-sim: --pool must be >= 2 (got 1)
  [2]

  $ ../bin/hieras_sim.exe soak --initial 0
  hieras-sim: --initial must be in 1..pool (got 0)
  [2]

  $ ../bin/hieras_sim.exe soak --horizon 0
  hieras-sim: --horizon must be > 0 (got 0)
  [2]

  $ ../bin/hieras_sim.exe soak --factors ''
  hieras-sim: --factors must name at least one churn-rate factor
  [2]

  $ ../bin/hieras_sim.exe soak --loss 1
  hieras-sim: --loss must be in [0, 1) (got 1)
  [2]

  $ ../bin/hieras_sim.exe soak --fault wildfire
  hieras-sim: unknown fault "wildfire" (none | crash | outage | restart)
  [2]

  $ ../bin/hieras_sim.exe soak --fault-frac 0.99
  hieras-sim: --fault-frac must be in [0, 0.95] (got 0.99)
  [2]

A tiny smoke run exits 0 and reports one row per (algorithm, factor) cell:

  $ ../bin/hieras_sim.exe soak --pool 8 --initial 4 --horizon 5 --factors 1 --seed 7 | head -2
  === soak: Churn soak: maintenance bandwidth vs churn rate (8-node pool, 5 s horizon) ===
  algo   | factor | events | msgs/s | maint/s | lookup ok | ring ok | conv ms | stable

  $ ../bin/hieras_sim.exe soak --pool 8 --initial 4 --horizon 5 --factors 0.5,2 --seed 7 \
  >   | grep -c '^\(chord\|hieras\) '
  4

--metrics exposes the per-cell counters and rates, including the
convergence bookkeeping:

  $ ../bin/hieras_sim.exe soak --pool 8 --initial 4 --horizon 5 --factors 1 --seed 7 --metrics \
  >   | grep -c '^soak\.\(chord\|hieras\)\.x1\.\(maint_ops\|convergences\|lookup_success_rate\|ring_ok_rate\) '
  8

The JSON artifact is byte-identical for any worker count:

  $ ../bin/hieras_sim.exe soak --pool 8 --initial 4 --horizon 5 --factors 1 --seed 7 \
  >   --out a.json --jobs 1 > /dev/null
  $ ../bin/hieras_sim.exe soak --pool 8 --initial 4 --horizon 5 --factors 1 --seed 7 \
  >   --out b.json --jobs 4 > /dev/null
  $ cmp a.json b.json

analyze compare understands the soak schema: a file compared against
itself has no regressions (exit 0), and a genuinely different run trips
the gate with exit 1:

  $ ../bin/hieras_sim.exe analyze compare a.json b.json | tail -1
  0 regression(s)

  $ ../bin/hieras_sim.exe soak --pool 8 --initial 4 --horizon 5 --factors 1 --seed 8 \
  >   --out c.json > /dev/null
  $ ../bin/hieras_sim.exe analyze compare a.json c.json --threshold 0.01 > /dev/null
  [1]
