The tournament subcommand validates its flags up front with exit code 2
(usage error), before any topology construction starts.

  $ ../bin/hieras_sim.exe tournament --fault-frac 1.2
  hieras-sim: --fault-frac must be in [0, 0.95] (got 1.2)
  [2]

  $ ../bin/hieras_sim.exe tournament --fault-frac=-0.1
  hieras-sim: --fault-frac must be in [0, 0.95] (got -0.1)
  [2]

  $ ../bin/hieras_sim.exe tournament --depth 9
  hieras-sim: --depth must be between 2 and 4 (got 9)
  [2]

A tiny smoke run exits 0, prints the eight-contestant matrix and exposes
the per-contestant counters through --metrics:

  $ ../bin/hieras_sim.exe tournament --nodes 64 --requests 50 | head -1
  === tournament: Cross-algorithm tournament (64 nodes, 50 lookups, 30% fault fraction) ===

  $ ../bin/hieras_sim.exe tournament --nodes 64 --requests 50 --metrics \
  >   | grep -c '^tournament\.[a-z-]*\.crash\.succeeded'
  8

The --out matrix is byte-identical whatever --jobs says (the determinism
contract CI enforces), and a matrix diffed against itself passes the
`analyze compare` gate:

  $ ../bin/hieras_sim.exe tournament --nodes 64 --requests 50 --out j1.json --jobs 1 | tail -1
  wrote 8 tournament contestants to j1.json

  $ ../bin/hieras_sim.exe tournament --nodes 64 --requests 50 --out j4.json --jobs 4 | tail -1
  wrote 8 tournament contestants to j4.json

  $ cmp j1.json j4.json

  $ ../bin/hieras_sim.exe analyze compare j1.json j4.json --threshold 0.2 > /dev/null

A genuinely degraded candidate (same scenario, twice the fault fraction)
trips the compare gate with exit code 1:

  $ ../bin/hieras_sim.exe tournament --nodes 64 --requests 50 --fault-frac 0.6 \
  >   --out hot.json > /dev/null

  $ ../bin/hieras_sim.exe analyze compare j1.json hot.json --threshold 0.2 > /dev/null
  [1]
