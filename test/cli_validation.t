Out-of-range flags fail fast with exit code 2 (usage error), before any
topology or network construction starts — not deep inside the pipeline.
The raw flags are validated before --scale is applied, so scaling cannot
mask a bad value.

  $ ../bin/hieras_sim.exe figure fig2 --depth 7
  hieras-sim: --depth must be between 2 and 4 (got 7)
  [2]

  $ ../bin/hieras_sim.exe figure fig2 --depth 1
  hieras-sim: --depth must be between 2 and 4 (got 1)
  [2]

  $ ../bin/hieras_sim.exe trace --requests 0
  hieras-sim: --requests must be >= 1 (got 0)
  [2]

  $ ../bin/hieras_sim.exe all --landmarks 0
  hieras-sim: --landmarks must be >= 1 (got 0)
  [2]

  $ ../bin/hieras_sim.exe figure fig4 --nodes 1
  hieras-sim: --nodes must be >= 2 (got 1)
  [2]

  $ ../bin/hieras_sim.exe figure fig4 --scale=-0.5
  hieras-sim: --scale must be > 0 (got -0.5)
  [2]

  $ ../bin/hieras_sim.exe churn --initial 0
  hieras-sim: --initial must be in 1..pool (got 0)
  [2]

  $ ../bin/hieras_sim.exe churn --loss 1.5
  hieras-sim: --loss must be in [0, 1) (got 1.5)
  [2]

  $ ../bin/hieras_sim.exe analyze
  hieras-sim: usage: analyze TRACE|- [--json] [--top K] | analyze compare BASE CAND
  [2]

  $ ../bin/hieras_sim.exe analyze compare only-one
  hieras-sim: analyze compare takes exactly BASE and CAND (got 1 argument(s))
  [2]

  $ ../bin/hieras_sim.exe analyze compare a b --threshold 0
  hieras-sim: --threshold must be > 0 (got 0)
  [2]

A missing input file is a runtime failure (exit 1), not a usage error:

  $ ../bin/hieras_sim.exe analyze no-such-trace.jsonl
  hieras-sim: no-such-trace.jsonl: No such file or directory
  [1]

Valid flags on a tiny run still work (exit 0):

  $ ../bin/hieras_sim.exe cost --nodes 64 --landmarks 2 | head -1
  nodes=64 depth=2
