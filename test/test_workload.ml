(* Tests for the workload library: key generators, request streams and
   churn traces. *)

module Keys = Workload.Keys
module Requests = Workload.Requests
module Churn = Workload.Churn
module Id = Hashid.Id

let space = Id.sha1_space

(* --- Keys ------------------------------------------------------------------ *)

let test_file_key_deterministic () =
  let a = Keys.file_key space "paper.pdf" and b = Keys.file_key space "paper.pdf" in
  Alcotest.(check bool) "same name same key" true (Id.equal a b);
  let c = Keys.file_key space "other.pdf" in
  Alcotest.(check bool) "different names differ" false (Id.equal a c)

let test_uniform_generator () =
  let rng = Prng.Rng.create ~seed:1 in
  let gen = Keys.generator Keys.Uniform space rng in
  let a = gen () and b = gen () in
  Alcotest.(check bool) "fresh keys" false (Id.equal a b)

let test_zipf_generator_catalogue () =
  let rng = Prng.Rng.create ~seed:2 in
  let gen = Keys.generator (Keys.Zipf { catalogue = 20; alpha = 1.0 }) space rng in
  let catalogue =
    List.init 20 (fun i -> Keys.file_key space (Printf.sprintf "doc-%d" i))
  in
  for _ = 1 to 200 do
    let k = gen () in
    Alcotest.(check bool) "drawn from the catalogue" true
      (List.exists (fun c -> Id.equal c k) catalogue)
  done

let test_zipf_generator_skewed () =
  let rng = Prng.Rng.create ~seed:3 in
  let gen = Keys.generator (Keys.Zipf { catalogue = 100; alpha = 1.2 }) space rng in
  let top = Keys.file_key space "doc-0" in
  let hits = ref 0 in
  let n = 2000 in
  for _ = 1 to n do
    if Id.equal (gen ()) top then incr hits
  done;
  Alcotest.(check bool) "top document is hot" true (!hits > n / 50)

let test_zipf_empty_catalogue () =
  let rng = Prng.Rng.create ~seed:4 in
  Alcotest.check_raises "empty" (Invalid_argument "Keys.generator: empty catalogue") (fun () ->
      ignore ((Keys.generator (Keys.Zipf { catalogue = 0; alpha = 1.0 }) space rng) ()))

(* --- Requests ------------------------------------------------------------------ *)

let test_request_count_and_bounds () =
  let rng = Prng.Rng.create ~seed:5 in
  let spec = Requests.paper_default ~count:500 in
  let seen = ref 0 in
  Requests.iter spec ~nodes:37 ~space rng (fun r ->
      incr seen;
      Alcotest.(check bool) "origin in range" true
        (r.Requests.origin >= 0 && r.Requests.origin < 37));
  Alcotest.(check int) "count honoured" 500 !seen

let test_request_to_array () =
  let rng = Prng.Rng.create ~seed:6 in
  let spec = Requests.paper_default ~count:50 in
  let arr = Requests.to_array spec ~nodes:10 ~space rng in
  Alcotest.(check int) "array size" 50 (Array.length arr)

let test_request_determinism () =
  let spec = Requests.paper_default ~count:20 in
  let a = Requests.to_array spec ~nodes:10 ~space (Prng.Rng.create ~seed:7) in
  let b = Requests.to_array spec ~nodes:10 ~space (Prng.Rng.create ~seed:7) in
  Array.iteri
    (fun i r ->
      Alcotest.(check int) "same origins" r.Requests.origin b.(i).Requests.origin;
      Alcotest.(check bool) "same keys" true (Id.equal r.Requests.key b.(i).Requests.key))
    a

let test_request_origin_bias () =
  let rng = Prng.Rng.create ~seed:8 in
  let spec = { Requests.count = 2000; keys = Keys.Uniform; origin_bias = 1.2 } in
  let low = ref 0 in
  Requests.iter spec ~nodes:100 ~space rng (fun r ->
      if r.Requests.origin < 10 then incr low);
  (* with a zipf bias, the first tenth of nodes originate far more than 10% *)
  Alcotest.(check bool) "origins skewed" true (!low > 600)

let test_requests_reject_no_nodes () =
  let rng = Prng.Rng.create ~seed:9 in
  Alcotest.check_raises "no nodes" (Invalid_argument "Requests.iter: no nodes") (fun () ->
      Requests.iter (Requests.paper_default ~count:1) ~nodes:0 ~space rng (fun _ -> ()))

(* --- Churn ------------------------------------------------------------------------ *)

let test_churn_sorted_and_bounded () =
  let rng = Prng.Rng.create ~seed:10 in
  let spec = { Churn.horizon = 60_000.0; join_rate = 0.5; fail_rate = 0.2; leave_rate = 0.1 } in
  let events = Churn.generate spec ~initial:10 ~pool:100 rng in
  Alcotest.(check bool) "non-empty" true (events <> []);
  let rec sorted = function
    | a :: (b :: _ as rest) -> a.Churn.at <= b.Churn.at && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "sorted by time" true (sorted events);
  List.iter
    (fun e ->
      Alcotest.(check bool) "time in horizon" true (e.Churn.at >= 0.0 && e.Churn.at < 60_000.0);
      Alcotest.(check bool) "node in pool" true (e.Churn.node >= 0 && e.Churn.node < 100))
    events

let test_churn_timeseries_agrees_with_events () =
  let spec = { Churn.horizon = 60_000.0; join_rate = 0.5; fail_rate = 0.2; leave_rate = 0.1 } in
  let ts = Obs.Timeseries.create ~bucket_ms:1000.0 () in
  let events = Churn.generate ~ts spec ~initial:10 ~pool:100 (Prng.Rng.create ~seed:10) in
  (* the collector is a pure bystander: the schedule is unchanged *)
  let plain = Churn.generate spec ~initial:10 ~pool:100 (Prng.Rng.create ~seed:10) in
  Alcotest.(check bool) "ts does not perturb the schedule" true (events = plain);
  let count kind = List.length (List.filter (fun e -> e.Churn.kind = kind) events) in
  let sum name =
    List.fold_left (fun acc p -> acc +. p.Obs.Timeseries.v) 0.0 (Obs.Timeseries.points ts name)
  in
  Alcotest.(check (float 0.0)) "churn.joins totals the join events"
    (float_of_int (count Churn.Join)) (sum "churn.joins");
  Alcotest.(check (float 0.0)) "churn.leaves" (float_of_int (count Churn.Leave)) (sum "churn.leaves");
  Alcotest.(check (float 0.0)) "churn.fails" (float_of_int (count Churn.Fail)) (sum "churn.fails");
  (* the live gauge's final value is initial + joins - leaves - fails *)
  let final =
    match List.rev (Obs.Timeseries.points ts "churn.live") with
    | p :: _ -> p.Obs.Timeseries.v
    | [] -> Alcotest.fail "churn.live empty"
  in
  Alcotest.(check (float 0.0)) "final live population"
    (float_of_int (10 + count Churn.Join - count Churn.Leave - count Churn.Fail))
    final;
  (* and it never goes below 1: churn keeps at least one node alive *)
  List.iter
    (fun p -> Alcotest.(check bool) "live >= 1" true (p.Obs.Timeseries.v >= 1.0))
    (Obs.Timeseries.points ts "churn.live")

let test_churn_joins_are_fresh () =
  let rng = Prng.Rng.create ~seed:11 in
  let spec = { Churn.horizon = 120_000.0; join_rate = 0.4; fail_rate = 0.0; leave_rate = 0.0 } in
  let events = Churn.generate spec ~initial:5 ~pool:200 rng in
  let joins = List.filter (fun e -> e.Churn.kind = Churn.Join) events in
  let nodes = List.map (fun e -> e.Churn.node) joins in
  Alcotest.(check int) "joins use distinct fresh nodes" (List.length nodes)
    (List.length (List.sort_uniq compare nodes));
  List.iter
    (fun n -> Alcotest.(check bool) "fresh = beyond initial" true (n >= 5))
    nodes

let test_churn_never_kills_everyone () =
  let rng = Prng.Rng.create ~seed:12 in
  let spec = { Churn.horizon = 600_000.0; join_rate = 0.0; fail_rate = 2.0; leave_rate = 2.0 } in
  let events = Churn.generate spec ~initial:8 ~pool:8 rng in
  let deaths = List.filter (fun e -> e.Churn.kind <> Churn.Join) events in
  Alcotest.(check bool) "at most initial - 1 departures" true (List.length deaths <= 7)

let test_churn_targets_only_live_nodes () =
  let rng = Prng.Rng.create ~seed:13 in
  let spec = { Churn.horizon = 300_000.0; join_rate = 0.3; fail_rate = 0.3; leave_rate = 0.1 } in
  let events = Churn.generate spec ~initial:6 ~pool:60 rng in
  (* replay: every departure must target a currently-live node *)
  let live = Hashtbl.create 16 in
  for i = 0 to 5 do
    Hashtbl.replace live i ()
  done;
  List.iter
    (fun e ->
      match e.Churn.kind with
      | Churn.Join ->
          Alcotest.(check bool) "join of a non-live node" false (Hashtbl.mem live e.Churn.node);
          Hashtbl.replace live e.Churn.node ()
      | Churn.Fail | Churn.Leave ->
          Alcotest.(check bool) "departure of a live node" true (Hashtbl.mem live e.Churn.node);
          Hashtbl.remove live e.Churn.node)
    events;
  Alcotest.(check bool) "someone survives" true (Hashtbl.length live >= 1)

let test_churn_validation () =
  let rng = Prng.Rng.create ~seed:14 in
  let spec = { Churn.horizon = 1000.0; join_rate = 0.1; fail_rate = 0.0; leave_rate = 0.0 } in
  Alcotest.check_raises "bad initial" (Invalid_argument "Churn.generate: bad initial/pool")
    (fun () -> ignore (Churn.generate spec ~initial:0 ~pool:10 rng))

(* --- qcheck ---------------------------------------------------------------------------- *)

let prop_requests_deterministic_per_seed =
  QCheck.Test.make ~name:"request streams are a pure function of the seed" ~count:50
    QCheck.(pair small_nat (int_range 1 200))
    (fun (seed, count) ->
      let spec = Requests.paper_default ~count in
      let a = Requests.to_array spec ~nodes:17 ~space (Prng.Rng.create ~seed) in
      let b = Requests.to_array spec ~nodes:17 ~space (Prng.Rng.create ~seed) in
      Array.for_all2
        (fun x y -> x.Requests.origin = y.Requests.origin && Id.equal x.Requests.key y.Requests.key)
        a b)

let prop_churn_replay_consistent =
  QCheck.Test.make ~name:"churn traces replay without inconsistency" ~count:50
    QCheck.(pair small_nat (int_range 2 20))
    (fun (seed, initial) ->
      let rng = Prng.Rng.create ~seed in
      let spec =
        { Churn.horizon = 100_000.0; join_rate = 0.5; fail_rate = 0.4; leave_rate = 0.2 }
      in
      let events = Churn.generate spec ~initial ~pool:(initial + 50) rng in
      let live = Hashtbl.create 16 in
      for i = 0 to initial - 1 do
        Hashtbl.replace live i ()
      done;
      List.for_all
        (fun e ->
          match e.Churn.kind with
          | Churn.Join ->
              if Hashtbl.mem live e.Churn.node then false
              else begin
                Hashtbl.replace live e.Churn.node ();
                true
              end
          | Churn.Fail | Churn.Leave ->
              if Hashtbl.mem live e.Churn.node && Hashtbl.length live > 1 then begin
                Hashtbl.remove live e.Churn.node;
                true
              end
              else false)
        events)

(* generate's output must already be in compare_event order — sorting again
   is the identity — so drivers replaying a trace at equal timestamps agree
   with the generator on any OCaml (no reliance on sort stability) *)
let prop_churn_order_canonical =
  QCheck.Test.make ~name:"churn traces are already in compare_event order" ~count:50
    QCheck.(pair small_nat (int_range 2 20))
    (fun (seed, initial) ->
      let spec =
        { Churn.horizon = 80_000.0; join_rate = 0.6; fail_rate = 0.3; leave_rate = 0.3 }
      in
      let events = Churn.generate spec ~initial ~pool:(initial + 40) (Prng.Rng.create ~seed) in
      events = List.sort Churn.compare_event events)

let test_churn_tie_break_total () =
  (* equal timestamps: node id decides, then kind (Join < Fail < Leave) *)
  let e at node kind = { Churn.at; node; kind } in
  let shuffled =
    [
      e 5.0 2 Churn.Leave; e 5.0 1 Churn.Fail; e 5.0 2 Churn.Join; e 1.0 9 Churn.Join;
      e 5.0 1 Churn.Join; e 5.0 2 Churn.Fail;
    ]
  in
  let want =
    [
      e 1.0 9 Churn.Join; e 5.0 1 Churn.Join; e 5.0 1 Churn.Fail; e 5.0 2 Churn.Join;
      e 5.0 2 Churn.Fail; e 5.0 2 Churn.Leave;
    ]
  in
  Alcotest.(check bool) "deterministic tie-break" true
    (List.sort Churn.compare_event shuffled = want);
  (* antisymmetric and reflexive on the ties *)
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let ab = Churn.compare_event a b and ba = Churn.compare_event b a in
          Alcotest.(check int) "antisymmetry" (compare ab 0) (compare 0 ba))
        shuffled)
    shuffled

let () =
  Alcotest.run "workload"
    [
      ( "keys",
        [
          Alcotest.test_case "file_key deterministic" `Quick test_file_key_deterministic;
          Alcotest.test_case "uniform" `Quick test_uniform_generator;
          Alcotest.test_case "zipf catalogue" `Quick test_zipf_generator_catalogue;
          Alcotest.test_case "zipf skew" `Quick test_zipf_generator_skewed;
          Alcotest.test_case "zipf empty" `Quick test_zipf_empty_catalogue;
        ] );
      ( "requests",
        [
          Alcotest.test_case "count + bounds" `Quick test_request_count_and_bounds;
          Alcotest.test_case "to_array" `Quick test_request_to_array;
          Alcotest.test_case "determinism" `Quick test_request_determinism;
          Alcotest.test_case "origin bias" `Quick test_request_origin_bias;
          Alcotest.test_case "no nodes" `Quick test_requests_reject_no_nodes;
        ] );
      ( "churn",
        [
          Alcotest.test_case "sorted + bounded" `Quick test_churn_sorted_and_bounded;
          Alcotest.test_case "joins fresh" `Quick test_churn_joins_are_fresh;
          Alcotest.test_case "never kills everyone" `Quick test_churn_never_kills_everyone;
          Alcotest.test_case "targets live nodes" `Quick test_churn_targets_only_live_nodes;
          Alcotest.test_case "validation" `Quick test_churn_validation;
          Alcotest.test_case "time series agree with events" `Quick
            test_churn_timeseries_agrees_with_events;
          Alcotest.test_case "tie-break is total and deterministic" `Quick
            test_churn_tie_break_total;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_requests_deterministic_per_seed;
            prop_churn_replay_consistent;
            prop_churn_order_canonical;
          ] );
    ]
