(* Convergence detection and adaptive maintenance: the Simnet.Stability
   state machine itself, qcheck properties over the protocol-level detectors
   (bounded-time convergence after arbitrary join sequences, converged ring
   implies ideal key ownership, adaptive backoff never starves re-convergence
   after a kill), the adaptive-saves-bandwidth guarantee, and the soak golden
   regression. *)

module Id = Hashid.Id
module Engine = Simnet.Engine
module Stab = Simnet.Stability
module CP = Chord.Protocol
module HP = Hieras.Hprotocol

let space = Id.space ~bits:32
let ids n = Array.init n (fun i -> Id.of_hash space (Printf.sprintf "conv-%d" i))

let oracle n =
  Chord.Network.of_ids ~space ~ids:(ids n) ~hosts:(Array.init n (fun i -> i)) ()

(* --- the state machine ------------------------------------------------------ *)

let test_stability_machine () =
  Alcotest.check_raises "k = 0 rejected" (Invalid_argument "Stability.create: k must be >= 1")
    (fun () -> ignore (Stab.create ~k:0 ()));
  let s = Stab.create ~k:3 () in
  Alcotest.(check bool) "born converging" false (Stab.is_stable s);
  (* first observation only seeds the fingerprint *)
  Stab.observe s ~at:100.0 ~fingerprint:7;
  Alcotest.(check int) "seed starts no streak" 0 (Stab.streak s);
  (* three unchanged observations complete the convergence *)
  Stab.observe s ~at:200.0 ~fingerprint:7;
  Stab.observe s ~at:300.0 ~fingerprint:7;
  Alcotest.(check bool) "not yet" false (Stab.is_stable s);
  Stab.observe s ~at:400.0 ~fingerprint:7;
  Alcotest.(check bool) "stable at k" true (Stab.is_stable s);
  Alcotest.(check (option (float 0.0))) "declared at" (Some 400.0) (Stab.converged_at s);
  Alcotest.(check (float 0.0)) "clock ran from epoch start" 400.0 (Stab.last_convergence_ms s);
  (* a changed fingerprint is a disturbance and restarts the clock *)
  Stab.observe s ~at:500.0 ~fingerprint:8;
  Alcotest.(check bool) "disturbed" false (Stab.is_stable s);
  Alcotest.(check int) "one disturbance" 1 (Stab.disturbances s);
  Alcotest.(check int) "one change" 1 (Stab.changes s);
  Stab.observe s ~at:600.0 ~fingerprint:8;
  Stab.observe s ~at:700.0 ~fingerprint:8;
  Stab.observe s ~at:800.0 ~fingerprint:8;
  Alcotest.(check bool) "re-stable" true (Stab.is_stable s);
  Alcotest.(check (float 0.0)) "second convergence took 300" 300.0 (Stab.last_convergence_ms s);
  Alcotest.(check (float 0.0)) "totals add up" 700.0 (Stab.total_convergence_ms s);
  Alcotest.(check int) "two convergences" 2 (Stab.convergences s);
  (* perturb while stable: disturbance now, even though the fingerprint has
     not moved yet; the streak must rebuild from zero *)
  Stab.perturb s ~at:900.0;
  Alcotest.(check bool) "perturb unsettles" false (Stab.is_stable s);
  Alcotest.(check int) "streak reset" 0 (Stab.streak s);
  Alcotest.(check int) "perturb counted" 2 (Stab.disturbances s);
  (* perturb while already converging keeps the original epoch start *)
  Stab.perturb s ~at:1500.0;
  Stab.observe s ~at:1600.0 ~fingerprint:8;
  Stab.observe s ~at:1700.0 ~fingerprint:8;
  Stab.observe s ~at:1800.0 ~fingerprint:8;
  Alcotest.(check (float 0.0)) "clock from first perturb" 900.0 (Stab.last_convergence_ms s)

let test_fingerprint_mixer () =
  (* order-sensitive, total over native ints, stays positive *)
  let h l = List.fold_left Stab.fp_add Stab.fp_init l in
  Alcotest.(check bool) "order matters" true (h [ 1; 2 ] <> h [ 2; 1 ]);
  Alcotest.(check bool) "negatives distinct" true (h [ -1 ] <> h [ 1 ]);
  Alcotest.(check bool) "positive" true (h [ -1; min_int; max_int; 0 ] >= 0);
  Alcotest.(check int) "deterministic" (h [ 3; 1; 4; 1; 5 ]) (h [ 3; 1; 4; 1; 5 ])

(* --- protocol-level properties --------------------------------------------- *)

let build_chord ?(adaptive = false) ~n ~seed ~spread () =
  let rng = Prng.Rng.create ~seed in
  let lat = Topology.Transit_stub.generate ~hosts:n rng in
  let latency a b = Topology.Latency.host_latency lat a b in
  let eng = Engine.create ~latency ~nodes:n in
  let cfg = { (CP.default_config space) with CP.adaptive } in
  let p = CP.create cfg eng in
  let id = ids n in
  CP.spawn p ~addr:0 ~id:id.(0);
  let jrng = Prng.Rng.create ~seed:(seed + 17) in
  let last = ref 0.0 in
  for i = 1 to n - 1 do
    let at = Prng.Rng.float jrng spread in
    if at > !last then last := at;
    Engine.schedule eng ~delay:at (fun () -> CP.join p ~addr:i ~id:id.(i) ~bootstrap:0)
  done;
  (eng, p, !last)

(* Any join sequence (random arrival times over a 20 s window) must converge,
   and the detector must notice, within a bounded horizon after the last
   join: 120 s covers 240 un-backed-off probe rounds — if the ring needed
   more the maintenance machinery, not the bound, is broken. *)
let converge_prop (seed, n) =
  let eng, p, last_join = build_chord ~n ~seed ~spread:20_000.0 () in
  let horizon = last_join +. 120_000.0 in
  Engine.run ~until:horizon eng;
  let det = CP.stability p in
  CP.converged p
  && Stab.convergences det >= 1
  && (match Stab.converged_at det with Some t -> t <= horizon | None -> false)

let test_convergence_bounded =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"detector fires within bound after any join sequence" ~count:15
       QCheck.(pair small_nat (int_range 4 20))
       converge_prop)

(* Once the detector declares stability, the ring is not merely quiet — it is
   the ideal ring: every key's owner equals the analytic successor. *)
let ownership_prop (seed, n) =
  let eng, p, last_join = build_chord ~n ~seed ~spread:15_000.0 () in
  Engine.run ~until:(last_join +. 120_000.0) eng;
  if not (CP.converged p) then false
  else begin
    let net = oracle n in
    let krng = Prng.Rng.create ~seed:(seed + 71) in
    let ok = ref 0 in
    let total = 10 in
    for _ = 1 to total do
      let key = Id.random space krng in
      let expect = Chord.Network.id net (Chord.Network.successor_of_key net key) in
      CP.lookup p ~origin:(Prng.Rng.int krng n) ~key (fun r ->
          match r with
          | Some o when Id.equal o.CP.owner_id expect -> incr ok
          | _ -> ())
    done;
    Engine.run ~until:(Engine.now eng +. 60_000.0) eng;
    !ok = total
  end

let test_converged_implies_ideal =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"converged ring owns every key ideally" ~count:10
       QCheck.(pair small_nat (int_range 4 16))
       ownership_prop)

(* Adaptive backoff stretches the maintenance cadence while stable — but a
   kill must still be detected and healed. If backoff ever starved the
   probe or froze the intervals, the survivors would not re-converge. *)
let adaptive_heals_prop (seed, n) =
  let eng, p, last_join = build_chord ~adaptive:true ~n ~seed ~spread:10_000.0 () in
  Engine.run ~until:(last_join +. 120_000.0) eng;
  if not (CP.converged p) then false
  else begin
    let backed_off = CP.interval_scale p > 1.0 in
    let victim = 1 + (seed mod (n - 1)) in
    CP.fail_node p victim;
    Engine.run ~until:(Engine.now eng +. 240_000.0) eng;
    let live = List.filter (fun a -> a <> victim) (List.init n (fun i -> i)) in
    let ring = CP.ring_from p (List.hd live) in
    backed_off && CP.converged p
    && List.sort compare ring = live
    && Stab.disturbances (CP.stability p) >= 1
  end

let test_adaptive_still_heals =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"adaptive backoff still re-converges after a kill" ~count:10
       QCheck.(pair small_nat (int_range 5 14))
       adaptive_heals_prop)

(* The HIERAS variant: every layer's detector must fire, and the global ring
   must be ideal once they all have. *)
let hieras_converge_prop (seed, n) =
  let rng = Prng.Rng.create ~seed in
  let lat = Topology.Transit_stub.generate ~hosts:n rng in
  let latency a b = Topology.Latency.host_latency lat a b in
  let eng = Engine.create ~latency ~nodes:n in
  let lm = Binning.Landmark.choose_spread lat ~count:3 (Prng.Rng.create ~seed:(seed + 2)) in
  let p = HP.create (HP.default_config space ~depth:2) eng ~lat ~landmarks:lm in
  let id = ids n in
  HP.spawn p ~addr:0 ~id:id.(0);
  for i = 1 to n - 1 do
    Engine.schedule eng ~delay:(float_of_int i *. 400.0) (fun () ->
        HP.join p ~addr:i ~id:id.(i) ~bootstrap:0)
  done;
  Engine.run ~until:(float_of_int n *. 400.0 +. 160_000.0) eng;
  HP.converged p
  && HP.converged_layer p ~layer:1
  && HP.converged_layer p ~layer:2
  && Stab.convergences (HP.stability p ~layer:1) >= 1
  && Stab.convergences (HP.stability p ~layer:2) >= 1
  &&
  let sorted =
    List.sort (fun a b -> Id.compare (ids n).(a) (ids n).(b)) (List.init n (fun i -> i))
  in
  let ring = HP.ring_from p 0 ~layer:1 in
  List.sort compare ring = List.sort compare sorted

let test_hieras_convergence =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"hieras detectors fire on every layer" ~count:8
       QCheck.(pair small_nat (int_range 6 16))
       hieras_converge_prop)

(* Fixed seed: with the ring quiet, adaptive mode must spend measurably less
   maintenance bandwidth than fixed cadence — and still be converged. *)
let test_adaptive_saves_bandwidth () =
  let run adaptive =
    let eng, p, last_join = build_chord ~adaptive ~n:16 ~seed:42 ~spread:5_000.0 () in
    Engine.run ~until:(last_join +. 300_000.0) eng;
    Alcotest.(check bool)
      (Printf.sprintf "converged (adaptive=%b)" adaptive)
      true (CP.converged p);
    CP.maintenance_ops p
  in
  let fixed = run false and adaptive = run true in
  Alcotest.(check bool)
    (Printf.sprintf "adaptive spends less than fixed (%d < %d)" adaptive fixed)
    true (adaptive * 2 < fixed)

(* --- soak golden ------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_soak_golden () =
  let want = read_file (Filename.concat "golden" "soak_ts64.json") in
  let got = Obs_test_support.Golden.build_soak () in
  Alcotest.(check string)
    "byte-identical (regenerate with: dune exec test/support/gen_golden.exe -- --soak > \
     test/golden/soak_ts64.json)"
    want got

let test_soak_parallel_deterministic () =
  (* the cells of the golden spec computed on a real worker pool must merge
     to the same bytes as the sequential run *)
  let spec = Obs_test_support.Golden.soak_spec in
  let seq = Experiments.Soak.results_json (Experiments.Soak.run spec) in
  let par =
    Parallel.Pool.with_pool ~jobs:3 (fun pool ->
        Experiments.Soak.results_json (Experiments.Soak.run ~pool spec))
  in
  Alcotest.(check string) "pool-independent bytes" seq par

let test_soak_validate () =
  let bad f = match Experiments.Soak.validate f with Ok () -> false | Error _ -> true in
  let d = Experiments.Soak.default_spec in
  Alcotest.(check bool) "default valid" true
    (match Experiments.Soak.validate d with Ok () -> true | Error _ -> false);
  Alcotest.(check bool) "pool" true (bad { d with Experiments.Soak.pool = 1 });
  Alcotest.(check bool) "initial" true (bad { d with Experiments.Soak.initial = 0 });
  Alcotest.(check bool) "horizon" true (bad { d with Experiments.Soak.horizon_ms = 0.0 });
  Alcotest.(check bool) "factors" true (bad { d with Experiments.Soak.factors = [] });
  Alcotest.(check bool) "loss" true (bad { d with Experiments.Soak.loss = 1.0 });
  Alcotest.(check bool) "depth" true (bad { d with Experiments.Soak.depth = 9 })

let () =
  Alcotest.run "convergence"
    [
      ( "stability",
        [
          Alcotest.test_case "state machine" `Quick test_stability_machine;
          Alcotest.test_case "fingerprint mixer" `Quick test_fingerprint_mixer;
        ] );
      ( "protocol-convergence",
        [
          test_convergence_bounded;
          test_converged_implies_ideal;
          test_adaptive_still_heals;
          test_hieras_convergence;
          Alcotest.test_case "adaptive saves bandwidth" `Slow test_adaptive_saves_bandwidth;
        ] );
      ( "soak",
        [
          Alcotest.test_case "golden soak results byte-identical" `Slow test_soak_golden;
          Alcotest.test_case "parallel run deterministic" `Slow test_soak_parallel_deterministic;
          Alcotest.test_case "spec validation" `Quick test_soak_validate;
        ] );
    ]
