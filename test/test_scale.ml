(* Tests for the million-node scale machinery, exercised at small sizes:
   the packed struct-of-arrays network against the record-level
   [Finger_table.build] reference (qcheck observational equality), the
   analytic routing mode against the full simulated walk (identical hop
   sequences, destinations and histograms), and the determinism contract of
   the sharded replay — jobs-independent results and the committed golden
   bytes. *)

module Id = Hashid.Id
module Network = Chord.Network
module FT = Chord.Finger_table
module Hnetwork = Hieras.Hnetwork
module Scale = Experiments.Scale
module Rng = Prng.Rng

let space = Id.sha1_space

(* n distinct random identifiers, sorted ascending — the canonical input of
   [Network.of_ids] *)
let sorted_ids ~n rng =
  let tbl = Hashtbl.create (2 * n) in
  let rec fresh () =
    let id = Id.random space rng in
    if Hashtbl.mem tbl id then fresh ()
    else begin
      Hashtbl.replace tbl id ();
      id
    end
  in
  let ids = Array.init n (fun _ -> fresh ()) in
  Array.sort Id.compare ids;
  ids

(* --- packed network == record-level reference ------------------------------ *)

(* The packed arena is filled by [Finger_table.pack] with the id-prefix
   acceleration and position-space galloping; [Finger_table.build] is the
   plain record-level path without [member_pre]. Observational equality of
   the two over random networks pins the acceleration as exact. *)
let test_packed_equals_reference () =
  QCheck.Test.make ~count:25 ~name:"packed network == Finger_table.build reference"
    QCheck.(pair (int_range 2 80) (int_range 0 10_000))
    (fun (n, seed) ->
      let rng = Rng.create ~seed in
      let ids = sorted_ids ~n rng in
      let t = Network.of_ids ~space ~ids ~hosts:(Array.init n (fun i -> i)) () in
      let member_nodes = Array.init n (fun i -> i) in
      for i = 0 to n - 1 do
        if Network.successor t i <> (i + 1) mod n then
          QCheck.Test.fail_reportf "successor of %d" i;
        if Network.predecessor t i <> (i + n - 1) mod n then
          QCheck.Test.fail_reportf "predecessor of %d" i;
        let view = Network.finger_table t i in
        let ref_t =
          FT.build space ~owner:i ~owner_id:ids.(i) ~member_ids:ids ~member_nodes
        in
        if FT.segments view <> FT.segments ref_t then
          QCheck.Test.fail_reportf "finger segments of node %d differ" i;
        (* every conceptual finger slot resolves identically through both *)
        let bits = Id.bits space in
        for e = 0 to bits - 1 do
          if FT.finger view e <> FT.finger ref_t e then
            QCheck.Test.fail_reportf "finger %d of node %d" e i
        done;
        (* the arena scan agrees with the record-level scan for random keys *)
        for _ = 1 to 8 do
          let key = Id.random space rng in
          let got = Network.closest_preceding_finger t i ~key in
          let want =
            match FT.closest_preceding ref_t ~id_of:(Network.id t) ~self:ids.(i) ~key with
            | Some v -> v
            | None -> -1
          in
          if got <> want then QCheck.Test.fail_reportf "closest_preceding at node %d" i
        done
      done;
      (* owner binary search (prefix column + fallback) vs linear scan *)
      for _ = 1 to 32 do
        let key = Id.random space rng in
        let want =
          let rec scan i = if i = n then 0 else if Id.compare ids.(i) key >= 0 then i else scan (i + 1) in
          scan 0
        in
        if Network.successor_of_key t key <> want then
          QCheck.Test.fail_reportf "successor_of_key"
      done;
      true)

(* Per-layer HIERAS views: ring successor/predecessor off the packed arrays
   and every ring-restricted finger table against the reference built over
   that ring's members. *)
let test_hieras_layers_equal_reference () =
  QCheck.Test.make ~count:8 ~name:"hieras layer packs == per-ring reference"
    QCheck.(triple (int_range 8 64) (int_range 2 4) (int_range 0 10_000))
    (fun (n, depth, seed) ->
      let spec =
        { Scale.default_spec with Scale.nodes = n; requests = 0; depth; seed }
      in
      let chord, hnet = Scale.networks spec in
      let rng = Rng.create ~seed:(seed + 7) in
      for layer = 2 to depth do
        List.iter
          (fun rname ->
            let order = Hieras.Ring_name.order rname in
            let members = Hnetwork.ring_members hnet ~layer ~order in
            let m = Array.length members in
            let member_ids = Array.map (Network.id chord) members in
            Array.iteri
              (fun pos node ->
                if Hnetwork.ring_successor hnet ~layer node <> members.((pos + 1) mod m)
                then QCheck.Test.fail_reportf "ring successor (layer %d)" layer;
                if
                  Hnetwork.ring_predecessor hnet ~layer node
                  <> members.((pos + m - 1) mod m)
                then QCheck.Test.fail_reportf "ring predecessor (layer %d)" layer;
                let view = Hnetwork.finger_table hnet ~layer node in
                let ref_t =
                  FT.build space ~owner:node ~owner_id:(Network.id chord node)
                    ~member_ids ~member_nodes:members
                in
                if FT.segments view <> FT.segments ref_t then
                  QCheck.Test.fail_reportf "layer %d finger segments of node %d" layer node;
                let key = Id.random space rng in
                let got = Hnetwork.closest_preceding_finger hnet ~layer node ~key in
                let want =
                  match
                    FT.closest_preceding ref_t ~id_of:(Network.id chord)
                      ~self:(Network.id chord node) ~key
                  with
                  | Some v -> v
                  | None -> -1
                in
                if got <> want then
                  QCheck.Test.fail_reportf "layer %d closest_preceding" layer)
              members)
          (Hnetwork.ring_names hnet ~layer)
      done;
      true)

(* --- analytic mode == simulated walk --------------------------------------- *)

(* Replays the scale experiment's own request stream through both the
   analytic walk and the full simulated route, comparing hop-for-hop and as
   whole histograms — the cross-validation the ISSUE requires at N <= 2000. *)
let test_analytic_equals_simulated () =
  let spec =
    { Scale.default_spec with Scale.nodes = 512; requests = 512; depth = 3; seed = 4242 }
  in
  let chord, hnet = Scale.networks spec in
  let lat = Hnetwork.latency_oracle hnet in
  let hist_a = Array.make 64 0 and hist_s = Array.make 64 0 in
  let hhist_a = Array.make 64 0 and hhist_s = Array.make 64 0 in
  Scale.iter_requests spec ~f:(fun i ~origin ~key ->
      let c_hops, c_dest = Chord.Lookup.route_hops_only chord ~origin ~key in
      let rc = Chord.Lookup.route chord lat ~origin ~key in
      Alcotest.(check int) (Printf.sprintf "chord hops (req %d)" i) rc.Chord.Lookup.hop_count c_hops;
      Alcotest.(check int) (Printf.sprintf "chord dest (req %d)" i) rc.Chord.Lookup.destination c_dest;
      let h_hops, per_layer, h_dest, fin = Hieras.Hlookup.route_hops_only hnet ~origin ~key in
      let rh = Hieras.Hlookup.route hnet ~origin ~key in
      Alcotest.(check int) (Printf.sprintf "hieras hops (req %d)" i) rh.Hieras.Hlookup.hop_count h_hops;
      Alcotest.(check int) (Printf.sprintf "hieras dest (req %d)" i) rh.Hieras.Hlookup.destination h_dest;
      Alcotest.(check (array int))
        (Printf.sprintf "hieras per-layer (req %d)" i)
        rh.Hieras.Hlookup.hops_per_layer per_layer;
      Alcotest.(check int)
        (Printf.sprintf "hieras finished_at (req %d)" i)
        rh.Hieras.Hlookup.finished_at_layer fin;
      hist_a.(min 63 c_hops) <- hist_a.(min 63 c_hops) + 1;
      hist_s.(min 63 rc.Chord.Lookup.hop_count) <- hist_s.(min 63 rc.Chord.Lookup.hop_count) + 1;
      hhist_a.(min 63 h_hops) <- hhist_a.(min 63 h_hops) + 1;
      hhist_s.(min 63 rh.Hieras.Hlookup.hop_count) <- hhist_s.(min 63 rh.Hieras.Hlookup.hop_count) + 1);
  Alcotest.(check (array int)) "chord hop histogram" hist_s hist_a;
  Alcotest.(check (array int)) "hieras hop histogram" hhist_s hhist_a

(* [Scale.run]'s built-in cross-check covers the same comparison through the
   public entry point — zero mismatches must hold. *)
let test_run_cross_check () =
  let spec =
    { Scale.default_spec with Scale.nodes = 200; requests = 300; depth = 2; cross_check = 300 }
  in
  let r = Scale.run spec in
  Alcotest.(check int) "cross-checked" 300 r.Scale.cross_checked;
  Alcotest.(check int) "cross mismatches" 0 r.Scale.cross_mismatches;
  Alcotest.(check int) "all lookups counted" 300 r.Scale.lookups;
  Alcotest.(check int) "destinations agree" 300 r.Scale.dest_match

(* --- scratch-buffer allocation regression ----------------------------------- *)

(* [Hlookup.route_hops_only ~into:scratch] must not allocate the per-layer
   accumulator per call — the hoisting the scale replay relies on. Minor-word
   counts are deterministic for a fixed walk, so the comparison against the
   allocating path is exact: the scratch variant must save at least the
   [Array.make depth] header+slots on every call. A loose absolute cap
   guards against gross per-hop allocation creeping into the walk itself
   (packed-id reconstruction costs some words per hop; a list- or
   record-building regression would blow far past it). *)
let test_hops_only_scratch_allocation () =
  let spec = { Scale.default_spec with Scale.nodes = 256; requests = 0; depth = 3 } in
  let _chord, hnet = Scale.networks spec in
  let depth = Hnetwork.depth hnet in
  let scratch = Array.make depth 0 in
  let rng = Rng.create ~seed:7 in
  let calls = 1000 in
  let requests = Array.init calls (fun i -> (i mod 256, Id.random space rng)) in
  let replay ~scratch:s () =
    Array.iter
      (fun (origin, key) -> ignore (Hieras.Hlookup.route_hops_only ?into:s hnet ~origin ~key))
      requests
  in
  let measure f =
    f ();
    (* warmed up: measure the steady state *)
    let before = Gc.minor_words () in
    f ();
    (Gc.minor_words () -. before) /. float_of_int calls
  in
  let with_scratch = measure (replay ~scratch:(Some scratch)) in
  let without = measure (replay ~scratch:None) in
  Alcotest.(check bool)
    (Printf.sprintf "scratch saves the per-call accumulator (%.1f vs %.1f words/call)"
       with_scratch without)
    true
    (without -. with_scratch >= float_of_int (depth + 1))
  ;
  Alcotest.(check bool)
    (Printf.sprintf "scratch lookups stay under 256 words/call (%.1f)" with_scratch)
    true (with_scratch < 256.0)

(* --- determinism: jobs-independence and golden bytes ------------------------ *)

let test_jobs_independent () =
  (* crosses two chunk boundaries so the merge order matters *)
  let spec = { Scale.default_spec with Scale.nodes = 128; requests = 20_000 } in
  let seq = Scale.run spec in
  let par =
    Parallel.Pool.with_pool ~jobs:4 (fun pool -> Scale.run ~pool spec)
  in
  Alcotest.(check string) "results_json identical for jobs 1 vs 4"
    (Scale.results_json seq) (Scale.results_json par)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let test_golden_scale () =
  let want = read_file (Filename.concat "golden" "scale_ts64.json") in
  let got = Obs_test_support.Golden.build_scale () in
  Alcotest.(check string)
    "byte-identical (regenerate with: dune exec test/support/gen_golden.exe -- --scale > test/golden/scale_ts64.json)"
    want got

let test_validate () =
  let ok s = Result.is_ok (Scale.validate s) in
  Alcotest.(check bool) "default ok" true (ok Scale.default_spec);
  Alcotest.(check bool) "nodes < 2" false (ok { Scale.default_spec with Scale.nodes = 1 });
  Alcotest.(check bool) "depth 5" false (ok { Scale.default_spec with Scale.depth = 5 });
  Alcotest.(check bool) "negative requests" false
    (ok { Scale.default_spec with Scale.requests = -1 });
  Alcotest.(check bool) "cross_check > requests" false
    (ok { Scale.default_spec with Scale.requests = 10; cross_check = 11 })

let () =
  let qt t = QCheck_alcotest.to_alcotest t in
  Alcotest.run "scale"
    [
      ( "packed",
        [
          qt (test_packed_equals_reference ());
          qt (test_hieras_layers_equal_reference ());
        ] );
      ( "analytic",
        [
          Alcotest.test_case "analytic == simulated (hop-for-hop + histograms)" `Slow
            test_analytic_equals_simulated;
          Alcotest.test_case "Scale.run cross-check is exact" `Quick test_run_cross_check;
          Alcotest.test_case "route_hops_only scratch buffer does not allocate" `Quick
            test_hops_only_scratch_allocation;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "jobs-independent results" `Quick test_jobs_independent;
          Alcotest.test_case "golden scale_ts64.json" `Quick test_golden_scale;
          Alcotest.test_case "spec validation" `Quick test_validate;
        ] );
    ]
