(* Property and conformance tests for the storage layer (DESIGN.md §15):
   the replicated key-value store (Store.Kv) checked against the analytic
   Chord.Network oracle, data availability under spaced correlated
   failures, read-repair convergence to bit-identical replica sets, the
   per-node cache tier (Store.Cache), the zipf web-cache workload, the
   spaced fault schedule, the cache experiment golden with its --jobs
   independence, and the analyzer's wire-bytes audit. *)

module Id = Hashid.Id
module Engine = Simnet.Engine
module CP = Chord.Protocol
module HP = Hieras.Hprotocol
module Kv = Store.Kv
module Ncache = Store.Cache
module Webcache = Workload.Webcache
module Cache_exp = Experiments.Cache
module Analyze = Obs.Analyze
module Netspan = Obs.Netspan

let space = Id.space ~bits:32
let ids n = Array.init n (fun i -> Id.of_hash space (Printf.sprintf "store-%d" i))

let make_engine ~hosts seed =
  let rng = Prng.Rng.create ~seed in
  let lat = Topology.Transit_stub.generate ~hosts rng in
  (lat, Engine.create ~latency:(fun a b -> Topology.Latency.host_latency lat a b) ~nodes:hosts)

(* --- the analytic oracle ------------------------------------------------------
   The fixpoint the store's placement must reach: for every key, the owner
   is the analytic successor of the key over the live membership, and the
   replicas are the owner's first r-1 live successors — the same
   Chord.Network the protocol conformance suite compares against. *)

let oracle_over ~succ_list_len idf members =
  let members = Array.of_list members in
  Chord.Network.of_ids ~space ~ids:(Array.map idf members) ~hosts:members ~succ_list_len ()

let rec take k = function
  | [] -> []
  | x :: tl -> if k <= 0 then [] else x :: take (k - 1) tl

let expected_holders net ~r key =
  let oi = Chord.Network.successor_of_key net key in
  let owner = Chord.Network.host net oi in
  let succs =
    Chord.Network.successor_list net oi
    |> Array.to_list
    |> List.map (Chord.Network.host net)
    |> List.filter (fun a -> a <> owner)
  in
  List.sort_uniq compare (owner :: take (r - 1) succs)

(* --- store worlds ------------------------------------------------------------- *)

(* a converged chord overlay with the store's repair scan running; callers
   advance the returned clock to keep Engine.run monotone *)
let build_chord_store ?(hosts = 12) ?joined ~r seed =
  let joined = Option.value joined ~default:hosts in
  let _, eng = make_engine ~hosts seed in
  let p = CP.create (CP.default_config space) eng in
  let id = ids hosts in
  CP.spawn p ~addr:0 ~id:id.(0);
  for i = 1 to joined - 1 do
    Engine.schedule eng ~delay:(float_of_int i *. 250.0) (fun () ->
        CP.join p ~addr:i ~id:id.(i) ~bootstrap:0)
  done;
  let kv = Kv.create { Kv.default_config with Kv.replication = r } (Kv.chord_substrate p) in
  for a = 0 to joined - 1 do
    Kv.track kv a
  done;
  let clock = ref 45_000.0 in
  Engine.run ~until:!clock eng;
  (eng, p, kv, clock)

let advance eng clock dt =
  clock := !clock +. dt;
  Engine.run ~until:!clock eng

let members_by_id node_id live =
  List.sort (fun a b -> Id.compare (node_id a) (node_id b)) live |> Array.of_list

(* put a batch and require every callback to fire acknowledged *)
let put_all_acked ~what kv eng clock ~origin_of objs =
  let fired = ref 0 and acked = ref 0 in
  List.iter
    (fun (key, value) ->
      Kv.put kv ~origin:(origin_of key) ~key ~value (fun res ->
          incr fired;
          if res <> None then incr acked))
    objs;
  advance eng clock 20_000.0;
  let n = List.length objs in
  if !fired <> n then QCheck.Test.fail_reportf "%s: %d/%d put callbacks fired" what !fired n;
  if !acked <> n then QCheck.Test.fail_reportf "%s: only %d/%d puts acknowledged" what !acked n

(* --- property: replication invariant vs the oracle ---------------------------- *)

(* After puts, churn (kills and joins through the ordinary protocol paths)
   and re-convergence, every key must sit on exactly min r live nodes —
   the analytic owner plus its first r-1 live successors, bit-identical
   entries on each. *)
let replication_invariant_prop seed =
  let hosts = 14 and joined = 10 and r = 3 in
  let eng, p, kv, clock = build_chord_store ~hosts ~joined ~r seed in
  let rng = Prng.Rng.create ~seed:(seed + 1) in
  let nobj = 6 in
  let objs =
    List.init nobj (fun i ->
        ( Id.of_hash space (Printf.sprintf "inv-%d-%d" seed i),
          Printf.sprintf "value-%d-%d" seed i ))
  in
  put_all_acked ~what:(Printf.sprintf "seed %d" seed) kv eng clock
    ~origin_of:(fun _ -> Prng.Rng.int rng joined)
    objs;
  (* churn: kill r-1 nodes (never the bootstrap) and join the spares *)
  let v1 = 1 + Prng.Rng.int rng (joined - 1) in
  let v2 =
    let rec pick () =
      let v = 1 + Prng.Rng.int rng (joined - 1) in
      if v = v1 then pick () else v
    in
    pick ()
  in
  List.iter (CP.fail_node p) [ v1; v2 ];
  let id = ids hosts in
  for i = joined to hosts - 1 do
    Engine.schedule eng
      ~delay:(float_of_int (i - joined) *. 300.0)
      (fun () -> CP.join p ~addr:i ~id:id.(i) ~bootstrap:0);
    Kv.track kv i
  done;
  advance eng clock 90_000.0;
  let live =
    List.filter (fun a -> not (List.mem a [ v1; v2 ])) (List.init joined Fun.id)
    @ List.init (hosts - joined) (fun i -> joined + i)
  in
  let net = oracle_over ~succ_list_len:(CP.config p).CP.succ_list_len (CP.node_id p) live in
  (* repair is periodic: poll the invariant instead of guessing one horizon *)
  let invariant_holds () =
    List.for_all (fun (key, _) -> Kv.holders kv key = expected_holders net ~r key) objs
  in
  let rec settle n = if invariant_holds () || n = 0 then () else (advance eng clock 20_000.0; settle (n - 1)) in
  settle 6;
  List.iter
    (fun (key, value) ->
      let expect = expected_holders net ~r key in
      let got = Kv.holders kv key in
      if got <> expect then
        QCheck.Test.fail_reportf "seed %d: holders %s, oracle says %s" seed
          (String.concat "," (List.map string_of_int got))
          (String.concat "," (List.map string_of_int expect));
      if List.length got <> r then
        QCheck.Test.fail_reportf "seed %d: %d holders, want exactly %d" seed (List.length got) r;
      (* entries on every holder are bit-identical and carry the put value *)
      let entries = List.map (fun a -> Kv.entry_on kv a key) got in
      match entries with
      | Some e :: rest ->
          if e.Kv.value <> value then
            QCheck.Test.fail_reportf "seed %d: stored %S, put %S" seed e.Kv.value value;
          List.iter
            (function
              | Some e' when e' = e -> ()
              | Some _ -> QCheck.Test.fail_reportf "seed %d: divergent replica entries" seed
              | None -> QCheck.Test.fail_reportf "seed %d: holder without an entry" seed)
            rest
      | _ -> QCheck.Test.fail_reportf "seed %d: first holder has no entry" seed)
    objs;
  if Kv.items_live kv <> nobj * r then
    QCheck.Test.fail_reportf "seed %d: %d live items, want %d (no strays, no losses)" seed
      (Kv.items_live kv) (nobj * r);
  true

let test_replication_invariant =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"exactly min r live replicas on the oracle's successor set"
       ~count:30
       QCheck.(int_range 0 1_000_000)
       replication_invariant_prop)

(* --- property: availability under < r correlated failures --------------------- *)

(* The acceptance gate: every acknowledged put survives a spaced crash
   schedule that never kills r copies of one key — after healing, every
   get finds the exact value. *)
let availability_prop seed =
  let hosts = 10 and r = 3 in
  let eng, p, kv, clock = build_chord_store ~hosts ~r seed in
  let rng = Prng.Rng.create ~seed:(seed + 1) in
  let nobj = 5 in
  let objs =
    List.init nobj (fun i ->
        ( Id.of_hash space (Printf.sprintf "avail-%d-%d" seed i),
          Printf.sprintf "value-%d-%d" seed i ))
  in
  put_all_acked ~what:(Printf.sprintf "seed %d" seed) kv eng clock
    ~origin_of:(fun _ -> Prng.Rng.int rng hosts)
    objs;
  let victims =
    Cache_exp.spaced_victims
      ~members_by_id:(members_by_id (CP.node_id p) (List.init hosts Fun.id))
      ~frac:0.3 ~r
  in
  if victims = [] then QCheck.Test.fail_reportf "seed %d: schedule produced no victims" seed;
  List.iter (CP.fail_node p) victims;
  let live = List.filter (fun a -> not (List.mem a victims)) (List.init hosts Fun.id) in
  advance eng clock 15_000.0;
  let fired = ref 0 and outcomes = ref [] in
  List.iter
    (fun (key, value) ->
      let origin = List.nth live (Prng.Rng.int rng (List.length live)) in
      Kv.get kv ~origin ~key (fun o ->
          incr fired;
          outcomes := (value, o) :: !outcomes))
    objs;
  advance eng clock 40_000.0;
  if !fired <> nobj then QCheck.Test.fail_reportf "seed %d: %d/%d get callbacks fired" seed !fired nobj;
  List.iter
    (fun (value, o) ->
      match o with
      | Kv.Found g when g.Kv.g_value = value -> ()
      | Kv.Found g -> QCheck.Test.fail_reportf "seed %d: got %S, want %S" seed g.Kv.g_value value
      | Kv.Absent -> QCheck.Test.fail_reportf "seed %d: acknowledged object absent" seed
      | Kv.Unreachable -> QCheck.Test.fail_reportf "seed %d: acknowledged object unreachable" seed)
    !outcomes;
  true

let test_availability =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"every acked put survives < r correlated failures" ~count:200
       QCheck.(int_range 0 1_000_000)
       availability_prop)

(* --- property: read-repair converges to bit-identical replicas ---------------- *)

let read_repair_prop seed =
  let hosts = 12 and r = 3 in
  let eng, p, kv, clock = build_chord_store ~hosts ~r seed in
  let rng = Prng.Rng.create ~seed:(seed + 1) in
  let key = Id.of_hash space (Printf.sprintf "repair-%d" seed) in
  let value = Printf.sprintf "fresh-%d" seed in
  put_all_acked ~what:(Printf.sprintf "seed %d" seed) kv eng clock
    ~origin_of:(fun _ -> Prng.Rng.int rng hosts)
    [ (key, value) ];
  let net =
    oracle_over ~succ_list_len:(CP.config p).CP.succ_list_len (CP.node_id p)
      (List.init hosts Fun.id)
  in
  let holders = expected_holders net ~r key in
  let owner = Chord.Network.host net (Chord.Network.successor_of_key net key) in
  (match List.filter (fun a -> a <> owner) holders with
  | b :: c :: _ ->
      (* one replica loses its copy, another is stale-corrupted *)
      Kv.forget kv b key;
      Kv.tamper kv c key
        { Kv.value = "stale"; bytes = 5; version = { Kv.vseq = 0; vorigin = 0 } }
  | _ -> QCheck.Test.fail_reportf "seed %d: fewer than two replicas" seed);
  let got = ref None in
  Kv.get kv ~origin:(Prng.Rng.int rng hosts) ~key (fun o -> got := Some o);
  advance eng clock 15_000.0;
  (match !got with
  | Some (Kv.Found g) when g.Kv.g_value = value -> ()
  | Some (Kv.Found g) -> QCheck.Test.fail_reportf "seed %d: served %S, want %S" seed g.Kv.g_value value
  | Some _ -> QCheck.Test.fail_reportf "seed %d: fresh object not served" seed
  | None -> QCheck.Test.fail_reportf "seed %d: get callback never fired" seed);
  (* the repaired replica set is bit-identical to a freshly replicated one *)
  let entries = List.map (fun a -> Kv.entry_on kv a key) holders in
  (match entries with
  | Some e :: rest ->
      if e.Kv.value <> value then
        QCheck.Test.fail_reportf "seed %d: repaired to %S, want %S" seed e.Kv.value value;
      List.iter
        (function
          | Some e' when e' = e -> ()
          | _ -> QCheck.Test.fail_reportf "seed %d: replica set not bit-identical after repair" seed)
        rest
  | _ -> QCheck.Test.fail_reportf "seed %d: holder lost its entry" seed);
  true

let test_read_repair =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"read-repair restores a bit-identical replica set" ~count:25
       QCheck.(int_range 0 1_000_000)
       read_repair_prop)

(* a probe revealing a strictly newer version than the owner's must win:
   the owner adopts it and re-pushes, never the other way around *)
let test_newer_version_wins () =
  let hosts = 12 and r = 3 in
  let eng, p, kv, clock = build_chord_store ~hosts ~r 91 in
  let key = Id.of_hash space "newer-wins" in
  let acked = ref None in
  Kv.put kv ~origin:3 ~key ~value:"old" (fun res -> acked := res);
  advance eng clock 15_000.0;
  let put_version =
    match !acked with
    | Some pr -> pr.Kv.p_version
    | None -> Alcotest.fail "put not acknowledged"
  in
  let net =
    oracle_over ~succ_list_len:(CP.config p).CP.succ_list_len (CP.node_id p)
      (List.init hosts Fun.id)
  in
  let holders = expected_holders net ~r key in
  let owner = Chord.Network.host net (Chord.Network.successor_of_key net key) in
  let replica = List.find (fun a -> a <> owner) holders in
  let newer =
    {
      Kv.value = "newer";
      bytes = 5;
      version = { Kv.vseq = put_version.Kv.vseq + 5; vorigin = replica };
    }
  in
  Kv.tamper kv replica key newer;
  ignore (Kv.get kv ~origin:5 ~key (fun _ -> ()));
  advance eng clock 15_000.0;
  List.iter
    (fun a ->
      match Kv.entry_on kv a key with
      | Some e ->
          Alcotest.(check string) (Printf.sprintf "node %d adopted the newer value" a) "newer"
            e.Kv.value;
          Alcotest.(check int) "newer seq" (put_version.Kv.vseq + 5) e.Kv.version.Kv.vseq
      | None -> Alcotest.fail (Printf.sprintf "node %d lost the entry" a))
    holders

let test_version_order () =
  let v ~seq ~origin = { Kv.vseq = seq; vorigin = origin } in
  Alcotest.(check bool) "higher seq wins" true (Kv.version_newer (v ~seq:2 ~origin:0) (v ~seq:1 ~origin:9));
  Alcotest.(check bool) "lower seq loses" false (Kv.version_newer (v ~seq:1 ~origin:9) (v ~seq:2 ~origin:0));
  Alcotest.(check bool) "tie breaks to higher origin" true
    (Kv.version_newer (v ~seq:1 ~origin:5) (v ~seq:1 ~origin:3));
  Alcotest.(check bool) "tie loses to higher origin" false
    (Kv.version_newer (v ~seq:1 ~origin:3) (v ~seq:1 ~origin:5));
  Alcotest.(check bool) "equal versions are not newer" false
    (Kv.version_newer (v ~seq:1 ~origin:3) (v ~seq:1 ~origin:3))

let test_delete_roundtrip () =
  let hosts = 12 and r = 3 in
  let eng, _, kv, clock = build_chord_store ~hosts ~r 92 in
  let key = Id.of_hash space "delete-me" in
  let acked = ref false in
  Kv.put kv ~origin:2 ~key ~value:"doomed" (fun res -> acked := res <> None);
  advance eng clock 15_000.0;
  Alcotest.(check bool) "put acked" true !acked;
  let existed = ref None in
  Kv.delete kv ~origin:7 ~key (fun r -> existed := r);
  advance eng clock 15_000.0;
  Alcotest.(check (option bool)) "delete found it" (Some true) !existed;
  let outcome = ref None in
  Kv.get kv ~origin:4 ~key (fun o -> outcome := Some o);
  advance eng clock 15_000.0;
  (match !outcome with
  | Some Kv.Absent -> ()
  | Some (Kv.Found _) -> Alcotest.fail "deleted object still served"
  | Some Kv.Unreachable -> Alcotest.fail "get unreachable on a healthy network"
  | None -> Alcotest.fail "get callback never fired");
  Alcotest.(check (list int)) "no holders remain" [] (Kv.holders kv key);
  let again = ref None in
  Kv.delete kv ~origin:1 ~key (fun r -> again := r);
  advance eng clock 15_000.0;
  Alcotest.(check (option bool)) "second delete finds nothing" (Some false) !again

(* --- conformance: the same store scenario over both protocols ----------------- *)

type world = {
  w_eng : Engine.t;
  w_kv : Kv.t;
  w_node_id : int -> Id.t;
  w_fail : int -> unit;
  w_succ_list_len : int;
  w_live : unit -> int list;
  w_clock : float ref;
}

let chord_world ~hosts ~r seed =
  let eng, p, kv, clock = build_chord_store ~hosts ~r seed in
  {
    w_eng = eng;
    w_kv = kv;
    w_node_id = CP.node_id p;
    w_fail = CP.fail_node p;
    w_succ_list_len = (CP.config p).CP.succ_list_len;
    w_live = (fun () -> (Kv.substrate kv).Kv.live_members ());
    w_clock = clock;
  }

let hieras_world ~hosts ~r seed =
  let lat, eng = make_engine ~hosts seed in
  let lm = Binning.Landmark.choose_spread lat ~count:3 (Prng.Rng.create ~seed:(seed + 2)) in
  let p = HP.create (HP.default_config space ~depth:2) eng ~lat ~landmarks:lm in
  let id = ids hosts in
  HP.spawn p ~addr:0 ~id:id.(0);
  for i = 1 to hosts - 1 do
    Engine.schedule eng ~delay:(float_of_int i *. 400.0) (fun () ->
        HP.join p ~addr:i ~id:id.(i) ~bootstrap:0)
  done;
  let kv = Kv.create { Kv.default_config with Kv.replication = r } (Kv.hieras_substrate p) in
  for a = 0 to hosts - 1 do
    Kv.track kv a
  done;
  let clock = ref 200_000.0 in
  Engine.run ~until:!clock eng;
  {
    w_eng = eng;
    w_kv = kv;
    w_node_id = HP.node_id p;
    w_fail = HP.fail_node p;
    w_succ_list_len = (HP.config p).HP.succ_list_len;
    w_live = (fun () -> (Kv.substrate kv).Kv.live_members ());
    w_clock = clock;
  }

(* One scenario, two substrates: full-replication puts, placement equal to
   the oracle, spaced kills, availability, delete, and the invariant again
   over the survivors. The store must behave identically over the flat and
   the layered overlay — ownership is a global-ring notion. *)
let store_conformance ~r (w : world) =
  let adv = advance w.w_eng w.w_clock in
  let rng = Prng.Rng.create ~seed:77 in
  let live0 = w.w_live () in
  let nobj = 8 in
  let objs =
    List.init nobj (fun i ->
        (Id.of_hash space (Printf.sprintf "conf-%d" i), Printf.sprintf "payload-%d" i))
  in
  let fired = ref 0 and full = ref 0 in
  List.iter
    (fun (key, value) ->
      let origin = List.nth live0 (Prng.Rng.int rng (List.length live0)) in
      Kv.put w.w_kv ~origin ~key ~value (fun res ->
          incr fired;
          match res with Some pr when pr.Kv.p_replicas = r -> incr full | _ -> ()))
    objs;
  adv 25_000.0;
  Alcotest.(check int) "all put callbacks fired" nobj !fired;
  Alcotest.(check int) "every ack reports full replication" nobj !full;
  let check_invariant ~what live =
    let net = oracle_over ~succ_list_len:w.w_succ_list_len w.w_node_id live in
    let ok () =
      List.for_all (fun (key, _) -> Kv.holders w.w_kv key = expected_holders net ~r key) objs
    in
    let rec settle n = if ok () || n = 0 then () else (adv 20_000.0; settle (n - 1)) in
    settle 6;
    List.iter
      (fun (key, _) ->
        Alcotest.(check (list int))
          (Printf.sprintf "%s: holders equal the oracle's replica set" what)
          (expected_holders net ~r key) (Kv.holders w.w_kv key))
      objs
  in
  check_invariant ~what:"healthy" live0;
  (* spaced kills: fewer than r copies of any key lost *)
  let victims =
    Cache_exp.spaced_victims ~members_by_id:(members_by_id w.w_node_id live0) ~frac:0.25 ~r
  in
  Alcotest.(check bool) "schedule produced victims" true (victims <> []);
  List.iter w.w_fail victims;
  let live = List.filter (fun a -> not (List.mem a victims)) live0 in
  adv 25_000.0;
  let got = ref [] in
  List.iter
    (fun (key, value) ->
      let origin = List.nth live (Prng.Rng.int rng (List.length live)) in
      Kv.get w.w_kv ~origin ~key (fun o -> got := (value, o) :: !got))
    objs;
  adv 50_000.0;
  Alcotest.(check int) "all get callbacks fired" nobj (List.length !got);
  List.iter
    (fun (value, o) ->
      match o with
      | Kv.Found g -> Alcotest.(check string) "served the put value" value g.Kv.g_value
      | Kv.Absent -> Alcotest.fail "acknowledged object absent after spaced failures"
      | Kv.Unreachable -> Alcotest.fail "acknowledged object unreachable after spaced failures")
    !got;
  (* delete propagates *)
  let dkey, _ = List.hd objs in
  let deleted = ref None in
  Kv.delete w.w_kv ~origin:(List.hd live) ~key:dkey (fun res -> deleted := res);
  adv 20_000.0;
  Alcotest.(check (option bool)) "delete acknowledged" (Some true) !deleted;
  Alcotest.(check (list int)) "no holders after delete" [] (Kv.holders w.w_kv dkey);
  (* and the survivors re-reach the oracle's placement *)
  let objs_left = List.tl objs in
  let net = oracle_over ~succ_list_len:w.w_succ_list_len w.w_node_id live in
  let ok () =
    List.for_all
      (fun (key, _) -> Kv.holders w.w_kv key = expected_holders net ~r key)
      objs_left
  in
  let rec settle n = if ok () || n = 0 then () else (adv 20_000.0; settle (n - 1)) in
  settle 6;
  List.iter
    (fun (key, _) ->
      Alcotest.(check (list int)) "healed holders equal the survivor oracle"
        (expected_holders net ~r key) (Kv.holders w.w_kv key))
    objs_left

let test_chord_conformance () = store_conformance ~r:3 (chord_world ~hosts:16 ~r:3 55)
let test_hieras_conformance () = store_conformance ~r:3 (hieras_world ~hosts:16 ~r:3 56)

(* --- the spaced fault schedule ------------------------------------------------- *)

let test_spaced_victims_shape () =
  let members = Array.init 16 Fun.id in
  Alcotest.(check (list int)) "16 nodes, frac 0.25, r 3" [ 0; 4; 8; 12 ]
    (Cache_exp.spaced_victims ~members_by_id:members ~frac:0.25 ~r:3);
  Alcotest.(check (list int)) "empty when the pool is no bigger than r" []
    (Cache_exp.spaced_victims ~members_by_id:(Array.init 3 Fun.id) ~frac:0.5 ~r:3);
  Alcotest.(check (list int)) "empty at frac 0" []
    (Cache_exp.spaced_victims ~members_by_id:members ~frac:0.0 ~r:3)

let spaced_victims_prop (n, r, frac) =
  let members = Array.init n (fun i -> 1000 + i) in
  let victims = Cache_exp.spaced_victims ~members_by_id:members ~frac ~r in
  let pos = List.map (fun v -> v - 1000) victims in
  let k = int_of_float (frac *. float_of_int n) in
  if List.length victims > k then
    QCheck.Test.fail_reportf "n=%d r=%d frac=%g: %d victims > budget %d" n r frac
      (List.length victims) k;
  List.iter
    (fun p ->
      if p < 0 || p >= n then QCheck.Test.fail_reportf "victim outside the membership" )
    pos;
  (* consecutive victims at least r apart in identifier order, and the last
     at least r before the wrap: no window of r consecutive nodes — no
     key's owner-plus-replicas set — ever loses more than one copy *)
  let rec gaps = function
    | a :: (b :: _ as tl) ->
        if b - a < r then
          QCheck.Test.fail_reportf "n=%d r=%d frac=%g: victims %d and %d inside one window" n r
            frac a b;
        gaps tl
    | _ -> ()
  in
  gaps pos;
  (match List.rev pos with
  | last :: _ ->
      if last > n - r then
        QCheck.Test.fail_reportf "n=%d r=%d frac=%g: last victim %d inside the wrap window" n r
          frac last
  | [] -> ());
  true

let test_spaced_victims_windows =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"victims never share a replica window" ~count:300
       QCheck.(triple (int_range 4 48) (int_range 1 4) (float_range 0.0 0.5))
       spaced_victims_prop)

(* --- the per-node cache tier ---------------------------------------------------- *)

let ncfg =
  {
    Ncache.capacity_entries = 3;
    capacity_bytes = 1_000_000;
    ttl_ms = 0.0;
    hot_threshold = 0.0;
    decay_half_life_ms = 5_000.0;
  }

let k name = Id.of_hash space name

let test_cache_lru_order () =
  let c = Ncache.create ncfg in
  Ncache.insert c ~now:0.0 (k "a") ~value:"A" ~bytes:10;
  Ncache.insert c ~now:1.0 (k "b") ~value:"B" ~bytes:10;
  Ncache.insert c ~now:2.0 (k "c") ~value:"C" ~bytes:10;
  (* touch a so b becomes the least recently used *)
  Alcotest.(check (option (pair string int))) "hit a" (Some ("A", 10)) (Ncache.find c ~now:3.0 (k "a"));
  Ncache.insert c ~now:4.0 (k "d") ~value:"D" ~bytes:10;
  Alcotest.(check (option (pair string int))) "b evicted" None (Ncache.find c ~now:5.0 (k "b"));
  Alcotest.(check (option (pair string int))) "a survives" (Some ("A", 10)) (Ncache.find c ~now:5.0 (k "a"));
  Alcotest.(check (option (pair string int))) "c survives" (Some ("C", 10)) (Ncache.find c ~now:5.0 (k "c"));
  Alcotest.(check (option (pair string int))) "d cached" (Some ("D", 10)) (Ncache.find c ~now:5.0 (k "d"));
  Alcotest.(check int) "one eviction" 1 (Ncache.evictions c);
  Alcotest.(check int) "three entries" 3 (Ncache.entries c)

let test_cache_byte_budget () =
  let c = Ncache.create { ncfg with Ncache.capacity_entries = 10; capacity_bytes = 100 } in
  Ncache.insert c ~now:0.0 (k "a") ~value:"A" ~bytes:60;
  Ncache.insert c ~now:1.0 (k "b") ~value:"B" ~bytes:30;
  Alcotest.(check int) "bytes add up" 90 (Ncache.bytes_used c);
  Ncache.insert c ~now:2.0 (k "c") ~value:"C" ~bytes:50;
  Alcotest.(check (option (pair string int))) "LRU evicted for bytes" None
    (Ncache.find c ~now:3.0 (k "a"));
  Alcotest.(check int) "budget holds" 80 (Ncache.bytes_used c);
  (* an object larger than the whole budget is not cached at all *)
  Ncache.insert c ~now:4.0 (k "huge") ~value:"H" ~bytes:200;
  Alcotest.(check (option (pair string int))) "oversized not cached" None
    (Ncache.find c ~now:5.0 (k "huge"));
  Alcotest.(check int) "others untouched" 80 (Ncache.bytes_used c)

let test_cache_ttl () =
  let c = Ncache.create { ncfg with Ncache.ttl_ms = 100.0 } in
  Ncache.insert c ~now:0.0 (k "a") ~value:"A" ~bytes:10;
  Alcotest.(check (option (pair string int))) "fresh hit" (Some ("A", 10))
    (Ncache.find c ~now:50.0 (k "a"));
  Alcotest.(check (option (pair string int))) "expired on touch" None
    (Ncache.find c ~now:201.0 (k "a"));
  Alcotest.(check int) "counted as expiration" 1 (Ncache.expirations c);
  (* re-insert refreshes value and TTL *)
  Ncache.insert c ~now:300.0 (k "a") ~value:"A2" ~bytes:10;
  Ncache.insert c ~now:310.0 (k "a") ~value:"A3" ~bytes:10;
  Alcotest.(check int) "re-insert keeps one entry" 1 (Ncache.entries c);
  Alcotest.(check (option (pair string int))) "refreshed value served" (Some ("A3", 10))
    (Ncache.find c ~now:395.0 (k "a"))

let test_cache_invalidate () =
  let c = Ncache.create ncfg in
  Ncache.insert c ~now:0.0 (k "a") ~value:"A" ~bytes:10;
  Ncache.invalidate c (k "a");
  Alcotest.(check (option (pair string int))) "gone" None (Ncache.find c ~now:1.0 (k "a"));
  Alcotest.(check int) "no entries" 0 (Ncache.entries c)

let test_cache_hotspots () =
  let c =
    Ncache.create { ncfg with Ncache.hot_threshold = 4.0; decay_half_life_ms = 1_000.0 }
  in
  Ncache.insert c ~now:0.0 (k "hot") ~value:"H" ~bytes:10;
  Ncache.insert c ~now:0.0 (k "cold") ~value:"C" ~bytes:10;
  for i = 1 to 8 do
    ignore (Ncache.find c ~now:(float_of_int i) (k "hot"))
  done;
  ignore (Ncache.find c ~now:9.0 (k "cold"));
  Alcotest.(check int) "one hot object" 1 (Ncache.hot_now c ~now:10.0);
  Alcotest.(check int) "recorded" 1 (Ncache.hot_ever c);
  (* a burst fades: twenty half-lives later the rate is cold again *)
  Alcotest.(check int) "decayed" 0 (Ncache.hot_now c ~now:20_010.0);
  Alcotest.(check int) "but history remains" 1 (Ncache.hot_ever c)

(* --- the zipf web-cache workload ------------------------------------------------ *)

let wspec = { Webcache.default_spec with Webcache.count = 400; objects = 32; alpha = 1.2 }

let stream spec seed =
  Webcache.to_array spec ~nodes:20 (Prng.Rng.create ~seed) |> Array.to_list

let test_stream_deterministic () =
  Alcotest.(check bool) "same seed, same stream" true (stream wspec 5 = stream wspec 5);
  Alcotest.(check bool) "different seed, different stream" true (stream wspec 5 <> stream wspec 6);
  (* iter and to_array agree *)
  let collected = ref [] in
  Webcache.iter wspec ~nodes:20 (Prng.Rng.create ~seed:5) (fun r -> collected := r :: !collected);
  Alcotest.(check bool) "iter replays the same stream" true (List.rev !collected = stream wspec 5);
  List.iter
    (fun { Webcache.origin; obj } ->
      Alcotest.(check bool) "origin in range" true (origin >= 0 && origin < 20);
      Alcotest.(check bool) "object in catalogue" true (obj >= 0 && obj < wspec.Webcache.objects))
    (stream wspec 5)

let test_catalogue_pure () =
  let cat = Webcache.catalogue wspec space in
  let cat' = Webcache.catalogue { wspec with Webcache.count = 7; alpha = 0.0 } space in
  Alcotest.(check int) "size" wspec.Webcache.objects (Array.length cat);
  Alcotest.(check bool) "independent of count and alpha" true (cat = cat');
  Array.iter
    (fun o ->
      Alcotest.(check bool) "sizes within bounds" true
        (o.Webcache.bytes >= wspec.Webcache.min_bytes && o.Webcache.bytes <= wspec.Webcache.max_bytes))
    cat;
  let keys = Array.to_list cat |> List.map (fun o -> o.Webcache.key) in
  Alcotest.(check int) "keys distinct" (Array.length cat)
    (List.length (List.sort_uniq Id.compare keys))

let test_zipf_skew () =
  let max_freq alpha =
    let counts = Array.make wspec.Webcache.objects 0 in
    List.iter
      (fun { Webcache.obj; _ } -> counts.(obj) <- counts.(obj) + 1)
      (stream { wspec with Webcache.alpha } 9);
    Array.fold_left max 0 counts
  in
  let skewed = max_freq 1.2 and flat = max_freq 0.0 in
  let mean = wspec.Webcache.count / wspec.Webcache.objects in
  Alcotest.(check bool)
    (Printf.sprintf "zipf concentrates load (max %d) over uniform (max %d)" skewed flat)
    true (skewed > 2 * flat);
  Alcotest.(check bool) "uniform stays roughly flat" true (flat < 3 * mean)

(* --- golden: the cache experiment ----------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let json_valid s = match Obs.Jsonu.parse s with Ok _ -> true | Error _ -> false
let golden_path = Filename.concat "golden" "cache_ts64.json"

let test_golden_cache () =
  let want = read_file golden_path in
  let res = Cache_exp.run Obs_test_support.Golden.cache_spec in
  let got = Cache_exp.results_json res ^ "\n" in
  Alcotest.(check string)
    "byte-identical (regenerate with: dune exec test/support/gen_golden.exe -- --cache > test/golden/cache_ts64.json)"
    want got;
  Alcotest.(check bool) "valid JSON" true (json_valid (String.trim want));
  (* the golden run is itself the acceptance scenario: a spaced schedule
     killing a quarter of the pool, measured availability 100% *)
  List.iter
    (fun (c : Cache_exp.cell) ->
      let what = Printf.sprintf "%s r=%d" c.Cache_exp.algo c.Cache_exp.replication in
      Alcotest.(check int) (what ^ ": every put acknowledged") c.Cache_exp.puts c.Cache_exp.puts_acked;
      Alcotest.(check int) (what ^ ": availability 100%") c.Cache_exp.requests c.Cache_exp.served;
      Alcotest.(check int) (what ^ ": nothing absent") 0 c.Cache_exp.absent;
      Alcotest.(check int) (what ^ ": nothing unreachable") 0 c.Cache_exp.unreachable;
      Alcotest.(check bool) (what ^ ": cache tier produced hits") true (c.Cache_exp.hits > 0))
    res.Cache_exp.cells

let test_cache_jobs_independent () =
  let want = read_file golden_path in
  let par =
    Parallel.Pool.with_pool ~jobs:4 (fun pool ->
        Cache_exp.results_json (Cache_exp.run ~pool Obs_test_support.Golden.cache_spec) ^ "\n")
  in
  Alcotest.(check string) "bytes independent of --jobs" want par

(* --- the wire-bytes audit -------------------------------------------------------- *)

let violations lines =
  let an = Analyze.create () in
  List.iter (Analyze.feed_line an) lines;
  match Analyze.net_report an with
  | Some nr -> nr.Analyze.n_violations
  | None -> Alcotest.fail "no net report from a netspan stream"

let msg ?parent ~span ~kind ?bytes () =
  Printf.sprintf {|{"ev":"msg","ctx":"audit","span":%d%s,"kind":"%s"%s,"src":0,"dst":1,"at":0,"lat":1}|}
    span
    (match parent with Some p -> Printf.sprintf ",\"parent\":%d" p | None -> "")
    kind
    (match bytes with Some b -> Printf.sprintf ",\"bytes\":%d" b | None -> "")

let test_audit_consistent_bytes_pass () =
  Alcotest.(check int) "consistent positive bytes are clean" 0
    (violations
       [
         msg ~span:0 ~kind:"store_put" ~bytes:128 ();
         msg ~span:1 ~parent:0 ~kind:"store_replicate" ~bytes:140 ();
         msg ~span:2 ~parent:0 ~kind:"store_reply" ~bytes:96 ();
         msg ~span:3 ~kind:"store_put" ~bytes:128 ();
       ])

let test_audit_flags_nonpositive () =
  Alcotest.(check bool) "zero bytes flagged" true
    (violations [ msg ~span:0 ~kind:"store_get" ~bytes:0 () ] > 0);
  Alcotest.(check bool) "negative bytes flagged" true
    (violations [ msg ~span:0 ~kind:"store_get" ~bytes:(-7) () ] > 0)

let test_audit_flags_inconsistent_kind () =
  Alcotest.(check bool) "two sizes for one kind flagged" true
    (violations
       [
         msg ~span:0 ~kind:"store_repair" ~bytes:64 ();
         msg ~span:1 ~kind:"store_repair" ~bytes:65 ();
       ]
    > 0)

let test_audit_tolerates_missing_bytes () =
  (* pre-bytes-field traces fall back to the cost model, unaudited *)
  Alcotest.(check int) "no bytes field, no violation" 0
    (violations [ msg ~span:0 ~kind:"lookup" (); msg ~span:1 ~parent:0 ~kind:"reply" () ])

let test_store_kinds_classified () =
  (* every store RPC kind exists, round-trips, and attributes to the
     "store" class of the bandwidth split *)
  let kinds = [ "store_put"; "store_get"; "store_delete"; "store_replicate"; "store_repair"; "store_reply" ] in
  List.iter
    (fun name ->
      match Netspan.kind_of_name name with
      | Some kind -> Alcotest.(check string) "round-trips" name (Netspan.kind_name kind)
      | None -> Alcotest.fail ("unknown store kind " ^ name))
    kinds;
  let an = Analyze.create () in
  List.iteri (fun i name -> Analyze.feed_line an (msg ~span:i ~kind:name ~bytes:(100 + i) ())) kinds;
  match Analyze.net_report an with
  | None -> Alcotest.fail "no net report"
  | Some nr -> (
      Alcotest.(check int) "clean" 0 nr.Analyze.n_violations;
      match List.find_opt (fun c -> c.Analyze.c_class = "store") nr.Analyze.n_classes with
      | Some c ->
          Alcotest.(check int) "all six messages in the store class" (List.length kinds)
            c.Analyze.c_msgs;
          Alcotest.(check bool) "store bytes attributed" true (c.Analyze.c_bytes > 0)
      | None -> Alcotest.fail "no store class in the report")

(* the experiment's own recorded trace audits clean end to end *)
let test_cache_net_trace_audits_clean () =
  let spec =
    {
      Cache_exp.default_spec with
      Cache_exp.pool = 10;
      objects = 6;
      requests = 40;
      replication = [ 2 ];
      fault = Cache_exp.No_fault;
      net_sample = Some 0.5;
      seed = 11;
    }
  in
  let r = Cache_exp.run spec in
  List.iter
    (fun (c : Cache_exp.cell) ->
      Alcotest.(check int) (c.Cache_exp.algo ^ ": healthy run serves everything")
        c.Cache_exp.requests c.Cache_exp.served)
    r.Cache_exp.cells;
  let lines =
    String.split_on_char '\n' (Cache_exp.net_trace r) |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check bool) "trace non-empty" true (lines <> []);
  let an = Analyze.create () in
  List.iter (Analyze.feed_line an) lines;
  match Analyze.net_report an with
  | None -> Alcotest.fail "no net report"
  | Some nr -> (
      Alcotest.(check int) "zero violations" 0 nr.Analyze.n_violations;
      match List.find_opt (fun c -> c.Analyze.c_class = "store") nr.Analyze.n_classes with
      | Some c -> Alcotest.(check bool) "store traffic recorded" true (c.Analyze.c_msgs > 0)
      | None -> Alcotest.fail "no store class in the report")

let () =
  Alcotest.run "store"
    [
      ( "versioning",
        [
          Alcotest.test_case "total order with deterministic tie-break" `Quick test_version_order;
          Alcotest.test_case "newer probed version wins" `Slow test_newer_version_wins;
        ] );
      ( "replication",
        [
          test_replication_invariant;
          Alcotest.test_case "delete round-trip" `Slow test_delete_roundtrip;
        ] );
      ("availability", [ test_availability ]);
      ("read-repair", [ test_read_repair ]);
      ( "conformance",
        [
          Alcotest.test_case "store over chord" `Slow test_chord_conformance;
          Alcotest.test_case "store over hieras" `Slow test_hieras_conformance;
        ] );
      ( "fault-schedule",
        [
          Alcotest.test_case "spaced victims, concrete shape" `Quick test_spaced_victims_shape;
          test_spaced_victims_windows;
        ] );
      ( "cache-tier",
        [
          Alcotest.test_case "LRU eviction order" `Quick test_cache_lru_order;
          Alcotest.test_case "byte budget" `Quick test_cache_byte_budget;
          Alcotest.test_case "TTL expiry and refresh" `Quick test_cache_ttl;
          Alcotest.test_case "invalidate" `Quick test_cache_invalidate;
          Alcotest.test_case "hotspot detection decays" `Quick test_cache_hotspots;
        ] );
      ( "workload",
        [
          Alcotest.test_case "stream deterministic" `Quick test_stream_deterministic;
          Alcotest.test_case "catalogue pure" `Quick test_catalogue_pure;
          Alcotest.test_case "zipf skew concentrates load" `Quick test_zipf_skew;
        ] );
      ( "golden",
        [
          Alcotest.test_case "fixed-seed cache results byte-identical" `Slow test_golden_cache;
          Alcotest.test_case "bytes independent of --jobs" `Slow test_cache_jobs_independent;
        ] );
      ( "audit",
        [
          Alcotest.test_case "consistent bytes pass" `Quick test_audit_consistent_bytes_pass;
          Alcotest.test_case "non-positive bytes flagged" `Quick test_audit_flags_nonpositive;
          Alcotest.test_case "inconsistent kind bytes flagged" `Quick
            test_audit_flags_inconsistent_kind;
          Alcotest.test_case "missing bytes tolerated" `Quick test_audit_tolerates_missing_bytes;
          Alcotest.test_case "store kinds classified" `Quick test_store_kinds_classified;
          Alcotest.test_case "experiment trace audits clean" `Slow test_cache_net_trace_audits_clean;
        ] );
    ]
