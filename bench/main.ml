(* The benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 4), printing measured values side by side with the
   paper's reported numbers, then runs bechamel micro-benchmarks of the core
   operations.

     dune exec bench/main.exe                 full paper scale (~4 min)
     dune exec bench/main.exe -- --scale 0.05 quick smoke run
     dune exec bench/main.exe -- --only fig4  one experiment
     dune exec bench/main.exe -- --no-micro   skip the bechamel section
     dune exec bench/main.exe -- --no-ext     skip the extensions section
     dune exec bench/main.exe -- --jobs 8     run on 8 domains (0 = all cores;
                                              results are identical for any
                                              --jobs value) *)

let scale = ref 1.0
let only = ref None
let micro = ref true
let ext = ref true
let csv_dir = ref None
let seed = ref 2003
let jobs = ref 1

let () =
  let rec parse = function
    | [] -> ()
    | "--scale" :: v :: rest ->
        scale := float_of_string v;
        parse rest
    | "--only" :: v :: rest ->
        only := Some v;
        parse rest
    | "--no-micro" :: rest ->
        micro := false;
        parse rest
    | "--no-ext" :: rest ->
        ext := false;
        parse rest
    | "--seed" :: v :: rest ->
        seed := int_of_string v;
        parse rest
    | "--jobs" :: v :: rest ->
        jobs := int_of_string v;
        parse rest
    | "--csv" :: dir :: rest ->
        csv_dir := Some dir;
        parse rest
    | arg :: _ ->
        prerr_endline ("bench: unknown argument " ^ arg);
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv))

(* ------------------------------------------------------------------ *)
(* Part 1: every table and figure                                      *)
(* ------------------------------------------------------------------ *)

let run_figures pool =
  let cfg =
    let c = Experiments.Config.paper_default in
    let c = Experiments.Config.with_seed c !seed in
    if !scale = 1.0 then c else Experiments.Config.scaled c !scale
  in
  Printf.printf "HIERAS reproduction — paper experiment harness\n";
  Printf.printf "configuration: %s (scale %.3f, %d worker domain%s)\n\n"
    (Format.asprintf "%a" Experiments.Config.pp cfg)
    !scale (Parallel.Pool.jobs pool)
    (if Parallel.Pool.jobs pool = 1 then "" else "s");
  let emit sections =
    Experiments.Report.print_all sections;
    match !csv_dir with
    | None -> ()
    | Some dir ->
        List.iter
          (fun s -> ignore (Experiments.Report.write_csv s ~dir))
          sections
  in
  match !only with
  | Some id -> (
      match Experiments.Figures.by_id id with
      | Some f -> emit (f ~pool cfg)
      | None ->
          prerr_endline
            ("bench: unknown experiment id " ^ id ^ "; known: "
            ^ String.concat " " Experiments.Figures.ids);
          exit 2)
  | None ->
      (* the paired generators emit both figures of each pair *)
      List.iter
        (fun id ->
          match Experiments.Figures.by_id id with
          | Some f -> emit (f ~pool cfg)
          | None -> ())
        [ "table1"; "table2"; "fig2"; "fig4"; "fig6"; "fig8" ]

let run_extensions pool =
  let cfg =
    let c = Experiments.Config.paper_default in
    let c = Experiments.Config.with_seed c !seed in
    (* the algorithm comparison builds six networks: run it at a quarter of
       the headline size so the whole bench stays a few minutes *)
    let c = Experiments.Config.scaled c (0.25 *. !scale) in
    c
  in
  print_newline ();
  print_endline "=== extensions: beyond the paper's figures ===";
  Printf.printf "configuration: %s\n\n" (Format.asprintf "%a" Experiments.Config.pp cfg);
  Experiments.Report.print_all (Experiments.Extensions.all ~pool cfg)

(* ------------------------------------------------------------------ *)
(* Part 2: bechamel micro-benchmarks of the core operations            *)
(* ------------------------------------------------------------------ *)

open Bechamel
open Toolkit

let micro_state pool =
  (* one medium network shared by the routing benchmarks *)
  let rng = Prng.Rng.create ~seed:11 in
  let n = 2000 in
  let lat = Topology.Transit_stub.generate ~pool ~hosts:n rng in
  let space = Hashid.Id.sha1_space in
  let chord = Chord.Network.build ~space ~hosts:(Array.init n (fun i -> i)) () in
  let lm = Binning.Landmark.choose_spread lat ~count:6 rng in
  let hnet = Hieras.Hnetwork.build ~chord ~lat ~landmarks:lm ~depth:2 () in
  let keys = Array.init 4096 (fun _ -> Hashid.Id.random space rng) in
  let origins = Array.init 4096 (fun _ -> Prng.Rng.int rng n) in
  (lat, chord, hnet, keys, origins)

let micro_tests pool =
  let lat, chord, hnet, keys, origins = micro_state pool in
  let counter = ref 0 in
  let next () =
    counter := (!counter + 1) land 4095;
    !counter
  in
  let space = Hashid.Id.sha1_space in
  let payload = String.make 512 'x' in
  [
    Test.make ~name:"sha1-512B" (Staged.stage (fun () -> ignore (Hashid.Sha1.digest payload)));
    Test.make ~name:"id-add-pow2"
      (Staged.stage (fun () ->
           let i = next () in
           ignore (Hashid.Id.add_pow2 space keys.(i) (i land 127))));
    Test.make ~name:"chord-lookup-2000"
      (Staged.stage (fun () ->
           let i = next () in
           ignore (Chord.Lookup.route_hops_only chord ~origin:origins.(i) ~key:keys.(i))));
    Test.make ~name:"chord-lookup-latency-2000"
      (Staged.stage (fun () ->
           let i = next () in
           ignore (Chord.Lookup.route chord lat ~origin:origins.(i) ~key:keys.(i))));
    Test.make ~name:"hieras-lookup-2000"
      (Staged.stage (fun () ->
           let i = next () in
           ignore (Hieras.Hlookup.route hnet ~origin:origins.(i) ~key:keys.(i))));
    Test.make ~name:"host-latency-query"
      (Staged.stage (fun () ->
           let i = next () in
           ignore (Topology.Latency.host_latency lat origins.(i) origins.((i + 1) land 4095))));
  ]

let run_micro pool =
  print_newline ();
  print_endline "=== micro-benchmarks (bechamel) ===";
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyzed = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Printf.printf "  %-28s %12.1f ns/op\n" name est
          | _ -> Printf.printf "  %-28s (no estimate)\n" name)
        analyzed)
    (micro_tests pool)

let () =
  let jobs = if !jobs <= 0 then Parallel.Pool.default_jobs () else !jobs in
  Parallel.Pool.with_pool ~jobs (fun pool ->
      run_figures pool;
      if !ext && !only = None then run_extensions pool;
      if !micro && !only = None then run_micro pool)
