(* The benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 4), printing measured values side by side with the
   paper's reported numbers, then probes the latency oracle and runs bechamel
   micro-benchmarks of the core operations.

     dune exec bench/main.exe                 full paper scale (~4 min)
     dune exec bench/main.exe -- --scale 0.05 quick smoke run
     dune exec bench/main.exe -- --only fig4  one experiment
     dune exec bench/main.exe -- --no-micro   skip the bechamel section
     dune exec bench/main.exe -- --large      add the 10^6-node packed-network
                                              micro entries [chord|hieras]-lookup-1e6
                                              (µs/op + peak RSS; ~40 s extra)
     dune exec bench/main.exe -- --no-ext     skip the extensions section
     dune exec bench/main.exe -- --jobs 8     run on 8 domains (0 = all cores;
                                              results are identical for any
                                              --jobs value)
     dune exec bench/main.exe -- --latency-backend lazy
                                              oracle storage: eager|lazy|auto
                                              (bit-identical tables either way)
     dune exec bench/main.exe -- --json       also write BENCH_<label>.json
                                              (figure wall-times, oracle stats,
                                              metrics snapshot, micro ns/op)
                                              for the perf trajectory
     dune exec bench/main.exe -- --metrics    print the metrics-registry
                                              snapshot (runner, oracle, pool)
     dune exec bench/main.exe -- --trace-out t.jsonl
                                              write a structured JSONL trace
                                              of a 200-lookup batch on a
                                              512-node network
     dune exec bench/main.exe -- --timings    print the hierarchical phase
                                              profile (per figure: topology,
                                              binning, builds, lookup replay)
     dune exec bench/main.exe -- --folded f.txt
                                              write flamegraph-ready folded
                                              stacks of the phase profile *)

let scale = ref 1.0
let only = ref None
let micro = ref true
let large = ref false
let ext = ref true
let csv_dir = ref None
let seed = ref 2003
let jobs = ref 1
let backend = ref Topology.Latency.Auto
let json = ref false
let label = ref None
let metrics_flag = ref false
let trace_out = ref None
let timings_flag = ref false
let folded_out = ref None

(* one registry for the whole bench run: the runner, oracle and pool exports
   land here, --metrics prints it and --json embeds it *)
let registry = Obs.Metrics.create ()

(* one phase profiler for the whole run (real only under --timings/--folded,
   so the default bench keeps the disabled-timer cost) *)
let timer = ref Obs.Timer.disabled

let () =
  let rec parse = function
    | [] -> ()
    | "--scale" :: v :: rest ->
        scale := float_of_string v;
        parse rest
    | "--only" :: v :: rest ->
        only := Some v;
        parse rest
    | "--no-micro" :: rest ->
        micro := false;
        parse rest
    | "--large" :: rest ->
        large := true;
        parse rest
    | "--no-ext" :: rest ->
        ext := false;
        parse rest
    | "--seed" :: v :: rest ->
        seed := int_of_string v;
        parse rest
    | "--jobs" :: v :: rest ->
        jobs := int_of_string v;
        parse rest
    | "--latency-backend" :: v :: rest ->
        (match Topology.Latency.backend_of_name v with
        | Some b -> backend := b
        | None ->
            prerr_endline ("bench: unknown latency backend " ^ v ^ " (eager | lazy | auto)");
            exit 2);
        parse rest
    | "--json" :: rest ->
        json := true;
        parse rest
    | "--label" :: v :: rest ->
        label := Some v;
        parse rest
    | "--metrics" :: rest ->
        metrics_flag := true;
        parse rest
    | "--trace-out" :: v :: rest ->
        trace_out := Some v;
        parse rest
    | "--timings" :: rest ->
        timings_flag := true;
        parse rest
    | "--folded" :: v :: rest ->
        folded_out := Some v;
        parse rest
    | "--csv" :: dir :: rest ->
        csv_dir := Some dir;
        parse rest
    | arg :: _ ->
        prerr_endline ("bench: unknown argument " ^ arg);
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv))

let bench_cfg () =
  let c = Experiments.Config.paper_default in
  let c = Experiments.Config.with_seed c !seed in
  let c = Experiments.Config.with_latency_backend c !backend in
  if !scale = 1.0 then c else Experiments.Config.scaled c !scale

(* ------------------------------------------------------------------ *)
(* Part 1: every table and figure                                      *)
(* ------------------------------------------------------------------ *)

(* per-figure wall time plus GC allocation deltas (minor/major words promoted
   while the figure ran); top_heap_words is the process high-water mark when
   the figure finished — a running max, deterministic for a fixed figure
   order *)
type fig_timing = {
  fig_id : string;
  seconds : float;
  minor_words : float;
  major_words : float;
  top_heap_words : int;
}

let run_figures pool =
  let cfg = bench_cfg () in
  Printf.printf "HIERAS reproduction — paper experiment harness\n";
  Printf.printf "configuration: %s (scale %.3f, %d worker domain%s)\n\n"
    (Format.asprintf "%a" Experiments.Config.pp cfg)
    !scale (Parallel.Pool.jobs pool)
    (if Parallel.Pool.jobs pool = 1 then "" else "s");
  let emit sections =
    Experiments.Report.print_all sections;
    match !csv_dir with
    | None -> ()
    | Some dir ->
        List.iter
          (fun s -> ignore (Experiments.Report.write_csv s ~dir))
          sections
  in
  let timings = ref [] in
  let timed id f =
    let g0 = Gc.quick_stat () in
    let t0 = Unix.gettimeofday () in
    Obs.Timer.span !timer id (fun () -> emit (f ()));
    let dt = Unix.gettimeofday () -. t0 in
    let g1 = Gc.quick_stat () in
    timings :=
      {
        fig_id = id;
        seconds = dt;
        minor_words = g1.Gc.minor_words -. g0.Gc.minor_words;
        major_words = g1.Gc.major_words -. g0.Gc.major_words;
        top_heap_words = g1.Gc.top_heap_words;
      }
      :: !timings
  in
  (match !only with
  | Some id -> (
      match Experiments.Figures.by_id id with
      | Some f -> timed id (fun () -> f ~pool ~timer:!timer cfg)
      | None ->
          prerr_endline
            ("bench: unknown experiment id " ^ id ^ "; known: "
            ^ String.concat " " Experiments.Figures.ids);
          exit 2)
  | None ->
      (* the paired generators emit both figures of each pair *)
      List.iter
        (fun id ->
          match Experiments.Figures.by_id id with
          | Some f -> timed id (fun () -> f ~pool ~timer:!timer cfg)
          | None -> ())
        [ "table1"; "table2"; "fig2"; "fig4"; "fig6"; "fig8" ]);
  List.rev !timings

let run_extensions pool =
  let cfg =
    let c = bench_cfg () in
    (* the algorithm comparison builds six networks: run it at a quarter of
       the headline size so the whole bench stays a few minutes *)
    Experiments.Config.scaled c 0.25
  in
  print_newline ();
  print_endline "=== extensions: beyond the paper's figures ===";
  Printf.printf "configuration: %s\n\n" (Format.asprintf "%a" Experiments.Config.pp cfg);
  let g0 = Gc.quick_stat () in
  let t0 = Unix.gettimeofday () in
  Obs.Timer.span !timer "extensions" (fun () ->
      Experiments.Report.print_all (Experiments.Extensions.all ~pool cfg));
  let dt = Unix.gettimeofday () -. t0 in
  let g1 = Gc.quick_stat () in
  {
    fig_id = "extensions";
    seconds = dt;
    minor_words = g1.Gc.minor_words -. g0.Gc.minor_words;
    major_words = g1.Gc.major_words -. g0.Gc.major_words;
    top_heap_words = g1.Gc.top_heap_words;
  }

(* ------------------------------------------------------------------ *)
(* Part 2: latency-oracle instrumentation                              *)
(* ------------------------------------------------------------------ *)

(* Replays a bounded request stream against a fresh env so the oracle stats
   reflect exactly which rows a real workload touches, then hand-times a
   cold-row fill (one single-source Dijkstra per first touch) against a warm
   memoized query on a fresh lazy oracle over the same topology. *)
let oracle_probe pool =
  let cfg = bench_cfg () in
  let cfg =
    Experiments.Config.with_requests cfg (min cfg.Experiments.Config.requests 10_000)
  in
  let env, hnet =
    Obs.Timer.span !timer "oracle-probe" (fun () ->
        let env = Experiments.Runner.build_env ~pool ~timer:!timer cfg in
        let hnet = Experiments.Runner.build_hieras ~timer:!timer env cfg in
        ignore (Experiments.Runner.measure ~pool ~registry ~timer:!timer env hnet cfg);
        (env, hnet))
  in
  (* packed-network footprint at the probe's scale: the figures' networks are
     freed figure-by-figure, so this pair is the one that can land in the
     report and registry *)
  let chord_bytes = Chord.Network.bytes_resident (Hieras.Hnetwork.chord hnet) in
  let hieras_bytes = Hieras.Hnetwork.bytes_resident hnet in
  Obs.Metrics.set (Obs.Metrics.gauge registry "bench.chord.bytes_resident")
    (float_of_int chord_bytes);
  Obs.Metrics.set (Obs.Metrics.gauge registry "bench.hieras.bytes_resident")
    (float_of_int hieras_bytes);
  let lat = Experiments.Runner.latency_oracle env in
  Topology.Latency.export_metrics lat registry;
  let st = Topology.Latency.stats lat in
  let n = Topology.Latency.hosts lat in
  let fresh =
    Topology.Latency.create ~backend:Topology.Latency.Lazy
      ~router_graph:(Topology.Latency.router_graph lat)
      ~host_router:(Array.init n (Topology.Latency.router_of_host lat))
      ~host_access:(Array.init n (Topology.Latency.access_delay lat))
      ()
  in
  let nr = Topology.Latency.routers fresh in
  let t0 = Unix.gettimeofday () in
  for r = 0 to nr - 1 do
    ignore (Topology.Latency.router_latency fresh r 0)
  done;
  let cold = (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int nr in
  let reps = 2_000_000 in
  let acc = ref 0.0 in
  let t0 = Unix.gettimeofday () in
  for i = 0 to reps - 1 do
    acc := !acc +. Topology.Latency.router_latency fresh (i mod nr) ((i * 7) mod nr)
  done;
  let warm = (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int reps in
  ignore !acc;
  print_newline ();
  print_endline "=== latency oracle ===";
  Printf.printf "  backend          %s\n" st.Topology.Latency.backend;
  Printf.printf "  routers          %d\n" st.Topology.Latency.routers;
  Printf.printf "  rows computed    %d\n" st.Topology.Latency.rows_computed;
  Printf.printf "  row hits         %d\n" st.Topology.Latency.row_hits;
  Printf.printf "  resident         %d bytes\n" st.Topology.Latency.resident_bytes;
  Printf.printf "  cold row fill    %.1f ns/row (lazy first touch, single-source Dijkstra)\n"
    cold;
  Printf.printf "  warm row query   %.1f ns/op\n" warm;
  Printf.printf "  chord resident   %d bytes (packed, %d nodes)\n" chord_bytes
    (Chord.Network.size (Hieras.Hnetwork.chord hnet));
  Printf.printf "  hieras resident  %d bytes (packed, depth %d)\n" hieras_bytes
    (Hieras.Hnetwork.depth hnet);
  ( st,
    [ ("oracle-lazy-cold-row", cold); ("oracle-lazy-warm-row", warm) ],
    (chord_bytes, hieras_bytes) )

(* ------------------------------------------------------------------ *)
(* Part 2b: structured lookup tracing (--trace-out)                    *)
(* ------------------------------------------------------------------ *)

(* A bounded traced batch on a dedicated mid-size network, so the JSONL
   artifact stays small whatever the bench scale. Lookup latencies also feed
   registry histograms — the only place the bench exercises that series
   kind. *)
let traced_batch pool path =
  Obs.Timer.span !timer "traced-batch" @@ fun () ->
  let rng = Prng.Rng.create ~seed:(!seed + 13) in
  let n = 512 in
  let lat = Topology.Transit_stub.generate ~backend:!backend ~pool ~hosts:n rng in
  let space = Hashid.Id.sha1_space in
  let chord = Chord.Network.build ~space ~hosts:(Array.init n (fun i -> i)) () in
  let lm = Binning.Landmark.choose_spread lat ~count:4 rng in
  let hnet = Hieras.Hnetwork.build ~chord ~lat ~landmarks:lm ~depth:2 () in
  let chord_hist = Obs.Metrics.histogram registry "bench.trace.chord.latency_ms" in
  let hieras_hist = Obs.Metrics.histogram registry "bench.trace.hieras.latency_ms" in
  let lookups = Obs.Metrics.counter registry "bench.trace.lookups" in
  let oc = open_out path in
  let events = ref 0 in
  let tr =
    Obs.Trace.jsonl (fun line ->
        incr events;
        output_string oc line)
  in
  for _ = 1 to 200 do
    let key = Hashid.Id.random space rng in
    let origin = Prng.Rng.int rng n in
    let rc = Chord.Lookup.route ~trace:tr chord lat ~origin ~key in
    let rh = Hieras.Hlookup.route ~trace:tr hnet ~origin ~key in
    Obs.Metrics.incr lookups;
    Obs.Metrics.observe chord_hist rc.Chord.Lookup.latency;
    Obs.Metrics.observe hieras_hist rh.Hieras.Hlookup.latency
  done;
  close_out oc;
  Printf.printf "\nwrote %s (%d trace events, 200 paired lookups on %d nodes)\n" path !events n

(* ------------------------------------------------------------------ *)
(* Part 3: bechamel micro-benchmarks of the core operations            *)
(* ------------------------------------------------------------------ *)

open Bechamel
open Toolkit

let micro_state pool =
  (* one medium network shared by the routing benchmarks *)
  let rng = Prng.Rng.create ~seed:11 in
  let n = 2000 in
  let lat = Topology.Transit_stub.generate ~backend:!backend ~pool ~hosts:n rng in
  let space = Hashid.Id.sha1_space in
  let chord = Chord.Network.build ~space ~hosts:(Array.init n (fun i -> i)) () in
  let lm = Binning.Landmark.choose_spread lat ~count:6 rng in
  let hnet = Hieras.Hnetwork.build ~chord ~lat ~landmarks:lm ~depth:2 () in
  let keys = Array.init 4096 (fun _ -> Hashid.Id.random space rng) in
  let origins = Array.init 4096 (fun _ -> Prng.Rng.int rng n) in
  (lat, chord, hnet, keys, origins)

let micro_tests pool =
  let lat, chord, hnet, keys, origins = micro_state pool in
  let counter = ref 0 in
  let next () =
    counter := (!counter + 1) land 4095;
    !counter
  in
  let space = Hashid.Id.sha1_space in
  let payload = String.make 512 'x' in
  [
    Test.make ~name:"sha1-512B" (Staged.stage (fun () -> ignore (Hashid.Sha1.digest payload)));
    Test.make ~name:"id-add-pow2"
      (Staged.stage (fun () ->
           let i = next () in
           ignore (Hashid.Id.add_pow2 space keys.(i) (i land 127))));
    Test.make ~name:"chord-lookup-2000"
      (Staged.stage (fun () ->
           let i = next () in
           ignore (Chord.Lookup.route_hops_only chord ~origin:origins.(i) ~key:keys.(i))));
    Test.make ~name:"chord-lookup-latency-2000"
      (Staged.stage (fun () ->
           let i = next () in
           ignore (Chord.Lookup.route chord lat ~origin:origins.(i) ~key:keys.(i))));
    Test.make ~name:"hieras-lookup-2000"
      (Staged.stage (fun () ->
           let i = next () in
           ignore (Hieras.Hlookup.route hnet ~origin:origins.(i) ~key:keys.(i))));
    Test.make ~name:"host-latency-query"
      (Staged.stage (fun () ->
           let i = next () in
           ignore (Topology.Latency.host_latency lat origins.(i) origins.((i + 1) land 4095))));
  ]

(* shared bechamel OLS loop; [print] renders one estimate (always collected
   as ns/op in the results) *)
let ols_run ~print tests =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  let results = ref [] in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg instances test in
      let analyzed = Analyze.all ols Instance.monotonic_clock raw in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] ->
              print name est;
              results := (name, est) :: !results
          | _ -> Printf.printf "  %-28s (no estimate)\n" name)
        analyzed)
    tests;
  List.rev !results

let run_micro pool =
  Obs.Timer.span !timer "micro" @@ fun () ->
  print_newline ();
  print_endline "=== micro-benchmarks (bechamel) ===";
  ols_run
    ~print:(fun name est -> Printf.printf "  %-28s %12.1f ns/op\n" name est)
    (micro_tests pool)

(* The 10^6-node packed-network entries (--large): analytic lookups against
   Scale-built networks. At this scale an op costs tens of µs, so the
   estimates print as µs/op; peak RSS after both builds rides along — the
   acceptance numbers of DESIGN.md §12. *)
let run_large_micro () =
  Obs.Timer.span !timer "micro-1e6" @@ fun () ->
  print_newline ();
  print_endline "=== micro-benchmarks: 10^6-node packed networks (--large) ===";
  let spec = Experiments.Scale.{ default_spec with requests = 0; seed = !seed } in
  let chord, hnet = Experiments.Scale.networks spec in
  let n = Chord.Network.size chord in
  let space = Chord.Network.space chord in
  let rng = Prng.Rng.create ~seed:(!seed + 29) in
  let keys = Array.init 4096 (fun _ -> Hashid.Id.random space rng) in
  let origins = Array.init 4096 (fun _ -> Prng.Rng.int rng n) in
  let counter = ref 0 in
  let next () =
    counter := (!counter + 1) land 4095;
    !counter
  in
  let tests =
    [
      Test.make ~name:"chord-lookup-1e6"
        (Staged.stage (fun () ->
             let i = next () in
             ignore (Chord.Lookup.route_hops_only chord ~origin:origins.(i) ~key:keys.(i))));
      Test.make ~name:"hieras-lookup-1e6"
        (Staged.stage (fun () ->
             let i = next () in
             ignore (Hieras.Hlookup.route_hops_only hnet ~origin:origins.(i) ~key:keys.(i))));
    ]
  in
  let results =
    ols_run
      ~print:(fun name est -> Printf.printf "  %-28s %12.2f us/op\n" name (est /. 1e3))
      tests
  in
  Printf.printf "  %-28s %12d KiB\n" "peak-rss" (Experiments.Scale.peak_rss_kb ());
  results

(* ------------------------------------------------------------------ *)
(* JSON trajectory output                                              *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 32 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_json ~jobs ~figures ~oracle ~memory ~micro_results =
  let cfg = bench_cfg () in
  let backend_name = Topology.Latency.backend_name !backend in
  let label =
    match !label with
    | Some l -> l
    | None -> Printf.sprintf "%s_s%g_j%d" backend_name !scale jobs
  in
  let path = Printf.sprintf "BENCH_%s.json" label in
  let buf = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n";
  add "  \"label\": \"%s\",\n" (json_escape label);
  add "  \"timestamp\": %.0f,\n" (Unix.time ());
  add "  \"config\": {\n";
  add "    \"scale\": %g,\n" !scale;
  add "    \"jobs\": %d,\n" jobs;
  add "    \"seed\": %d,\n" !seed;
  add "    \"latency_backend\": \"%s\",\n" backend_name;
  add "    \"nodes\": %d,\n" cfg.Experiments.Config.nodes;
  add "    \"requests\": %d\n" cfg.Experiments.Config.requests;
  add "  },\n";
  add "  \"figures\": [\n";
  List.iteri
    (fun i ft ->
      add
        "    {\"id\": \"%s\", \"seconds\": %.3f, \"minor_words\": %.0f, \"major_words\": %.0f, \
         \"top_heap_words\": %d}%s\n"
        (json_escape ft.fig_id) ft.seconds ft.minor_words ft.major_words ft.top_heap_words
        (if i = List.length figures - 1 then "" else ","))
    figures;
  add "  ],\n";
  let st = (oracle : Topology.Latency.stats) in
  add "  \"oracle\": {\n";
  add "    \"backend\": \"%s\",\n" (json_escape st.Topology.Latency.backend);
  add "    \"routers\": %d,\n" st.Topology.Latency.routers;
  add "    \"rows_computed\": %d,\n" st.Topology.Latency.rows_computed;
  add "    \"row_hits\": %d,\n" st.Topology.Latency.row_hits;
  add "    \"resident_bytes\": %d\n" st.Topology.Latency.resident_bytes;
  add "  },\n";
  (* packed-network footprint + whole-run allocation totals; peak_rss_kb is
     machine-dependent and deliberately NOT a compared metric (Analyze skips
     it), the rest gate regressions lower-is-better *)
  let chord_bytes, hieras_bytes = memory in
  let g = Gc.quick_stat () in
  add "  \"memory\": {\n";
  add "    \"chord_bytes_resident\": %d,\n" chord_bytes;
  add "    \"hieras_bytes_resident\": %d,\n" hieras_bytes;
  add "    \"gc_minor_words\": %.0f,\n" g.Gc.minor_words;
  add "    \"gc_major_words\": %.0f,\n" g.Gc.major_words;
  add "    \"gc_top_heap_words\": %d,\n" g.Gc.top_heap_words;
  add "    \"peak_rss_kb\": %d\n" (Experiments.Scale.peak_rss_kb ());
  add "  },\n";
  add "  \"micro\": [\n";
  List.iteri
    (fun i (name, ns) ->
      add "    {\"name\": \"%s\", \"ns_per_op\": %.2f}%s\n" (json_escape name) ns
        (if i = List.length micro_results - 1 then "" else ","))
    micro_results;
  add "  ],\n";
  add "  \"metrics\": %s\n" (Obs.Metrics.to_json (Obs.Metrics.snapshot registry));
  add "}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "\nwrote %s\n" path

let () =
  if !timings_flag || !folded_out <> None then
    timer := Obs.Timer.create ~clock:Unix.gettimeofday;
  let jobs = if !jobs <= 0 then Parallel.Pool.default_jobs () else !jobs in
  Parallel.Pool.with_pool ~jobs (fun pool ->
      let fig_times = run_figures pool in
      let fig_times =
        if !ext && !only = None then fig_times @ [ run_extensions pool ] else fig_times
      in
      let oracle_stats, oracle_micro, memory = oracle_probe pool in
      (match !trace_out with Some path -> traced_batch pool path | None -> ());
      let micro_results =
        (if !micro && !only = None then run_micro pool else [])
        @ (if !large then run_large_micro () else [])
        @ oracle_micro
      in
      Parallel.Pool.export_metrics pool registry;
      if Obs.Timer.enabled !timer then Obs.Timer.export_metrics !timer registry;
      if !timings_flag then begin
        print_newline ();
        print_endline "=== phase profile ===";
        print_string (Obs.Timer.to_text !timer)
      end;
      (match !folded_out with
      | None -> ()
      | Some path ->
          Out_channel.with_open_text path (fun oc -> output_string oc (Obs.Timer.folded !timer));
          Printf.printf "\nwrote folded stacks to %s\n" path);
      if !metrics_flag then begin
        print_newline ();
        print_endline "=== metrics ===";
        print_string (Obs.Metrics.to_text (Obs.Metrics.snapshot registry))
      end;
      if !json then
        write_json ~jobs ~figures:fig_times ~oracle:oracle_stats ~memory ~micro_results)
