lib/pastry/route.mli: Hashid Network
