lib/pastry/route.ml: Array Float Hashid List Network
