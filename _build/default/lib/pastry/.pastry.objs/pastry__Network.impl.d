lib/pastry/network.ml: Array Buffer Char Hashid Hashtbl List Printf Prng String Topology
