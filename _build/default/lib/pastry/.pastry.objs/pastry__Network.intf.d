lib/pastry/network.mli: Hashid Prng Topology
