(** Oracle-built Pastry networks (Rowstron & Druschel, Middleware'01), with
    proximity neighbor selection.

    Pastry is the paper's locality-aware point of comparison: instead of
    adding a hierarchy, it fills each routing-table cell — "a node whose
    identifier shares my first [r] digits and has digit [c] next" — with the
    {e topologically closest} such candidate, so the early (short-prefix)
    hops of a route tend to be short links. The paper's stated future work is
    a comparison against Pastry; the extensions bench provides it on our
    simulated topologies.

    Identifiers are interpreted as base-16 digit strings (the classic
    [b = 4]); each node keeps a leaf set (the [2 * leaf_radius] numerically
    adjacent nodes) and a routing table of [rows x 16] cells populated by
    sampling candidates per cell and keeping the nearest by latency. *)

type t

val build :
  space:Hashid.Id.space ->
  hosts:int array ->
  lat:Topology.Latency.t ->
  rng:Prng.Rng.t ->
  ?leaf_radius:int ->
  ?candidates_per_cell:int ->
  ?salt:string ->
  unit ->
  t
(** [space] must have a width divisible by 4. [leaf_radius] defaults to 8
    (leaf set of 16, Pastry's |L| default); [candidates_per_cell] (default
    16) bounds the proximity sampling per routing-table cell. *)

val space : t -> Hashid.Id.space
val size : t -> int
val id : t -> int -> Hashid.Id.t
val host : t -> int -> int

val leaf_set : t -> int -> int array
(** Numerically adjacent nodes (up to [2 * leaf_radius], fewer in tiny
    networks), unordered. *)

val table_entry : t -> int -> row:int -> col:int -> int option
(** The routing-table cell: a node sharing the first [row] digits with the
    owner and having digit [col] at position [row]; [None] when no such node
    exists (or the cell is beyond the populated rows). *)

val rows : t -> int
(** Populated routing-table rows. *)

val shared_prefix_len : t -> Hashid.Id.t -> Hashid.Id.t -> int
(** Length of the common base-16 digit prefix. *)

val root_of_key : t -> Hashid.Id.t -> int
(** The key's root: the node with the numerically closest identifier (either
    direction on the circle) — where every Pastry route must end. *)

val link_latency : t -> int -> int -> float
(** Latency between two nodes' hosts (from the embedded oracle). *)

val mean_table_link_latency : t -> samples:int -> Prng.Rng.t -> float
(** Mean latency of a random populated routing-table link — shows proximity
    neighbor selection at work (diagnostics and tests). *)
