module Id = Hashid.Id

type t = {
  space : Id.space;
  ids : Id.t array; (* sorted ascending; node i has ids.(i) *)
  hosts : int array;
  lat : Topology.Latency.t;
  leaf_radius : int;
  rows : int;
  (* tables.(node).((row * 16) + col) = node index, or -1 for empty *)
  tables : int array array;
}

let space t = t.space
let size t = Array.length t.ids
let id t i = t.ids.(i)
let host t i = t.hosts.(i)
let rows t = t.rows

let shared_prefix_len t a b =
  let n = Id.digit_count4 t.space in
  let rec go i = if i < n && Id.digit4 t.space a i = Id.digit4 t.space b i then go (i + 1) else i in
  go 0

let leaf_set t i =
  let n = Array.length t.ids in
  let r = min t.leaf_radius ((n - 1) / 2) in
  let acc = ref [] in
  for k = 1 to r do
    acc := ((i + k) mod n) :: ((i + n - k) mod n) :: !acc
  done;
  (* odd small networks: make sure every other node appears at most once *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun v -> if v <> i && not (Hashtbl.mem seen v) then Hashtbl.replace seen v ())
    !acc;
  Array.of_seq (Hashtbl.to_seq_keys seen)

let table_entry t i ~row ~col =
  if row < 0 || row >= t.rows || col < 0 || col > 15 then None
  else
    let v = t.tables.(i).((row * 16) + col) in
    if v < 0 then None else Some v

(* sort peers by identifier, keeping host alignment (same as Chord) *)
let sort_peers ids hosts =
  let n = Array.length ids in
  let order = Array.init n (fun i -> i) in
  Array.sort (fun a b -> Id.compare ids.(a) ids.(b)) order;
  let sorted_ids = Array.map (fun i -> ids.(i)) order in
  let sorted_hosts = Array.map (fun i -> hosts.(i)) order in
  for i = 1 to n - 1 do
    if Id.equal sorted_ids.(i) sorted_ids.(i - 1) then
      invalid_arg "Pastry.Network: duplicate identifiers"
  done;
  (sorted_ids, sorted_hosts)

let build ~space ~hosts ~lat ~rng ?(leaf_radius = 8) ?(candidates_per_cell = 16)
    ?(salt = "pastry-peer") () =
  if Id.bits space mod 4 <> 0 then
    invalid_arg "Pastry.Network.build: identifier width must be a multiple of 4";
  let n = Array.length hosts in
  if n = 0 then invalid_arg "Pastry.Network.build: empty network";
  let seen = Hashtbl.create (2 * n) in
  let raw_ids =
    Array.init n (fun i ->
        let rec fresh attempt =
          let id = Id.of_hash space (Printf.sprintf "%s:%d:%d" salt i attempt) in
          if Hashtbl.mem seen id then fresh (attempt + 1)
          else begin
            Hashtbl.replace seen id ();
            id
          end
        in
        fresh 0)
  in
  let ids, hosts = sort_peers raw_ids hosts in
  (* group nodes by digit prefix, level by level; stop when every group is a
     singleton (deeper rows can never be populated) *)
  let digit node i = Id.digit4 space ids.(node) i in
  let max_rows = Id.digit_count4 space in
  let levels : (string, int list ref) Hashtbl.t list ref = ref [] in
  let current = Hashtbl.create 64 in
  Hashtbl.replace current "" (ref (List.init n (fun i -> i)));
  let continue = ref true in
  let depth = ref 0 in
  while !continue && !depth < max_rows do
    let next = Hashtbl.create 64 in
    let any_split = ref false in
    Hashtbl.iter
      (fun prefix group ->
        if List.length !group > 1 then begin
          any_split := true;
          List.iter
            (fun node ->
              let key = prefix ^ String.make 1 (Char.chr (digit node !depth)) in
              match Hashtbl.find_opt next key with
              | Some l -> l := node :: !l
              | None -> Hashtbl.replace next key (ref [ node ]))
            !group
        end)
      current;
    if !any_split then begin
      levels := next :: !levels;
      Hashtbl.reset current;
      Hashtbl.iter (fun k v -> Hashtbl.replace current k v) next;
      incr depth
    end
    else continue := false
  done;
  let levels = Array.of_list (List.rev !levels) in
  let rows = Array.length levels in
  (* proximity neighbor selection: the nearest of a bounded random sample of
     each cell's candidates *)
  let tables =
    Array.init n (fun node ->
        let table = Array.make (rows * 16) (-1) in
        let prefix = Buffer.create rows in
        (try
           for row = 0 to rows - 1 do
             let own_digit = digit node row in
             for col = 0 to 15 do
               if col <> own_digit then begin
                 let key = Buffer.contents prefix ^ String.make 1 (Char.chr col) in
                 match Hashtbl.find_opt levels.(row) key with
                 | None -> ()
                 | Some group ->
                     let candidates = Array.of_list !group in
                     let m = Array.length candidates in
                     let best = ref (-1) and best_d = ref infinity in
                     let tries = min m candidates_per_cell in
                     for k = 0 to tries - 1 do
                       let cand =
                         if m <= candidates_per_cell then candidates.(k)
                         else candidates.(Prng.Rng.int rng m)
                       in
                       let d = Topology.Latency.host_latency lat hosts.(node) hosts.(cand) in
                       if d < !best_d then begin
                         best := cand;
                         best_d := d
                       end
                     done;
                     table.((row * 16) + col) <- !best
               end
             done;
             Buffer.add_char prefix (Char.chr own_digit);
             (* below the node's own singleton depth nothing can match *)
             if not (Hashtbl.mem levels.(row) (Buffer.contents prefix)) then raise Exit
           done
         with Exit -> ());
        table)
  in
  { space; ids; hosts; lat; leaf_radius; rows; tables }

let link_latency t a b = Topology.Latency.host_latency t.lat t.hosts.(a) t.hosts.(b)

let root_of_key t key =
  let n = Array.length t.ids in
  (* successor position (first id >= key, circular) *)
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if Id.compare t.ids.(mid) key < 0 then search (mid + 1) hi else search lo mid
  in
  let pos = search 0 n in
  let succ = if pos = n then 0 else pos in
  let pred = (succ + n - 1) mod n in
  (* numerically closest of the two enclosing nodes; the float circle
     fraction is precise enough for random keys (ties ~ 2^-53) *)
  let d_up = Id.distance_cw t.space key t.ids.(succ) in
  let d_down = Id.distance_cw t.space t.ids.(pred) key in
  if d_up <= d_down then succ else pred

let mean_table_link_latency t ~samples rng =
  let n = Array.length t.ids in
  let acc = ref 0.0 and cnt = ref 0 in
  let attempts = ref 0 in
  while !cnt < samples && !attempts < 60 * samples do
    incr attempts;
    let node = Prng.Rng.int rng n in
    if t.rows > 0 then begin
      let cell = Prng.Rng.int rng (t.rows * 16) in
      let target = t.tables.(node).(cell) in
      if target >= 0 && target <> node then begin
        acc := !acc +. Topology.Latency.host_latency t.lat t.hosts.(node) t.hosts.(target);
        incr cnt
      end
    end
  done;
  if !cnt = 0 then 0.0 else !acc /. float_of_int !cnt
