type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* splitmix64: used only to expand the seed into the xoshiro state, as
   recommended by Vigna (seeding xoshiro with correlated words is unsafe). *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create ~seed =
  let st = ref (Int64.of_int seed) in
  let s0 = splitmix64 st in
  let s1 = splitmix64 st in
  let s2 = splitmix64 st in
  let s3 = splitmix64 st in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let st = ref (bits64 t) in
  let s0 = splitmix64 st in
  let s1 = splitmix64 st in
  let s2 = splitmix64 st in
  let s3 = splitmix64 st in
  { s0; s1; s2; s3 }

(* Non-negative 62-bit int from the top bits (top bits of xoshiro256** have
   the best statistical quality). *)
let bits t = Int64.to_int (Int64.shift_right_logical (bits64 t) 2)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* rejection sampling to avoid modulo bias *)
  let mask = 0x3FFFFFFFFFFFFFFF in
  let bound = mask - (mask mod n) in
  let rec draw () =
    let v = bits t in
    if v >= bound then draw () else v mod n
  in
  draw ()

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t x =
  (* 53 uniform bits in the mantissa *)
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  x *. (v *. 0x1.0p-53)

let bool t = Int64.logand (bits64 t) 1L = 1L
let byte t = int t 256
