(** Random distributions and sampling helpers built on {!Rng}. *)

val exponential : Rng.t -> mean:float -> float
(** Exponentially distributed value with the given mean. *)

val pareto : Rng.t -> shape:float -> scale:float -> float
(** Pareto (heavy-tailed) value: minimum [scale], tail exponent [shape]. *)

val uniform_float : Rng.t -> lo:float -> hi:float -> float
(** Uniform in [\[lo, hi)]. *)

val normal : Rng.t -> mean:float -> stddev:float -> float
(** Gaussian via Box–Muller. *)

val zipf : Rng.t -> n:int -> alpha:float -> int
(** Zipf-distributed rank in [\[0, n)]: rank [k] has weight
    [(k+1)^-alpha]. O(n) setup is avoided by rejection-inversion would be
    overkill here; we precompute nothing and use inverse-CDF on a cached
    table via {!zipf_table}. This direct form is O(n) per draw — prefer
    {!zipf_table} for bulk sampling. *)

type zipf_table
(** Precomputed inverse-CDF table for bulk Zipf sampling. *)

val make_zipf_table : n:int -> alpha:float -> zipf_table
val zipf_draw : Rng.t -> zipf_table -> int

val shuffle : Rng.t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample_without_replacement : Rng.t -> int -> int -> int array
(** [sample_without_replacement rng k n] picks [k] distinct ints from
    [\[0, n)], in random order. Raises [Invalid_argument] if [k > n]. *)

val weighted_index : Rng.t -> float array -> int
(** Index drawn proportionally to the (non-negative) weights. Raises
    [Invalid_argument] on an empty or all-zero array. *)
