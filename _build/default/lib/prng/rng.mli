(** Deterministic pseudo-random number generation.

    Every stochastic component of the simulator takes an explicit generator so
    that whole experiments are reproducible from a single seed. The
    implementation is xoshiro256** seeded through splitmix64, following
    Blackman & Vigna. Generators are cheap, mutable records; use {!split} to
    derive statistically independent streams for parallel subsystems. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] builds a generator from a 63-bit seed. Equal seeds yield
    identical streams. *)

val copy : t -> t
(** Independent copy sharing no state with the original. *)

val split : t -> t
(** [split rng] draws from [rng] to seed a fresh, statistically independent
    generator. Used to give each subsystem (topology, workload, binning...)
    its own stream so adding draws to one does not perturb the others. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int rng n] is uniform in [\[0, n)]. Raises [Invalid_argument] if
    [n <= 0]. Unbiased (rejection sampling). *)

val int_in : t -> int -> int -> int
(** [int_in rng lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float rng x] is uniform in [\[0, x)]. *)

val bool : t -> bool

val byte : t -> int
(** Uniform in [\[0, 255\]]. *)
