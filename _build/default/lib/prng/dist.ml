let uniform_float rng ~lo ~hi = lo +. Rng.float rng (hi -. lo)

let exponential rng ~mean =
  let u = 1.0 -. Rng.float rng 1.0 in
  -. mean *. log u

let pareto rng ~shape ~scale =
  let u = 1.0 -. Rng.float rng 1.0 in
  scale /. (u ** (1.0 /. shape))

let normal rng ~mean ~stddev =
  let u1 = 1.0 -. Rng.float rng 1.0 in
  let u2 = Rng.float rng 1.0 in
  mean +. (stddev *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

type zipf_table = { cdf : float array }

let make_zipf_table ~n ~alpha =
  if n <= 0 then invalid_arg "Dist.make_zipf_table: n must be positive";
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  for k = 0 to n - 1 do
    acc := !acc +. (1.0 /. (float_of_int (k + 1) ** alpha));
    cdf.(k) <- !acc
  done;
  let total = !acc in
  for k = 0 to n - 1 do
    cdf.(k) <- cdf.(k) /. total
  done;
  { cdf }

let zipf_draw rng { cdf } =
  let u = Rng.float rng 1.0 in
  (* binary search for the first index with cdf >= u *)
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if cdf.(mid) >= u then search lo mid else search (mid + 1) hi
  in
  search 0 (Array.length cdf - 1)

let zipf rng ~n ~alpha = zipf_draw rng (make_zipf_table ~n ~alpha)

let shuffle rng a =
  for i = Array.length a - 1 downto 1 do
    let j = Rng.int rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample_without_replacement rng k n =
  if k > n || k < 0 then invalid_arg "Dist.sample_without_replacement";
  (* partial Fisher–Yates over an index array; O(n) space, O(n + k) time *)
  let idx = Array.init n (fun i -> i) in
  for i = 0 to k - 1 do
    let j = Rng.int_in rng i (n - 1) in
    let tmp = idx.(i) in
    idx.(i) <- idx.(j);
    idx.(j) <- tmp
  done;
  Array.sub idx 0 k

let weighted_index rng w =
  let n = Array.length w in
  if n = 0 then invalid_arg "Dist.weighted_index: empty";
  let total = Array.fold_left ( +. ) 0.0 w in
  if total <= 0.0 then invalid_arg "Dist.weighted_index: zero total weight";
  let u = Rng.float rng total in
  let rec go i acc =
    if i = n - 1 then i
    else
      let acc = acc +. w.(i) in
      if u < acc then i else go (i + 1) acc
  in
  go 0 0.0
