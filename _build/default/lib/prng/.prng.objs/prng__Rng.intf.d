lib/prng/rng.mli:
