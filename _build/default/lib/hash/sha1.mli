(** SHA-1 (FIPS 180-1), implemented from scratch.

    HIERAS, like Chord/Pastry/Tapestry/CAN, derives node and ring identifiers
    from a collision-free hash; the paper names SHA-1. This is a
    straightforward, allocation-light implementation sufficient for
    simulation-scale hashing (millions of digests per second). *)

val digest : string -> string
(** [digest s] is the 20-byte binary SHA-1 digest of [s]. *)

val hex : string -> string
(** [hex s] is the 40-character lowercase hexadecimal digest of [s]. *)

val digest_int : int -> string
(** Digest of the decimal representation of an int — convenient for
    generating node identifiers from dense indices. *)
