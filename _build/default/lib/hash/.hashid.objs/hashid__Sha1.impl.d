lib/hash/sha1.ml: Array Buffer Bytes Char Printf String
