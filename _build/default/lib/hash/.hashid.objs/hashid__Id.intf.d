lib/hash/id.mli: Format Prng
