lib/hash/id.ml: Buffer Bytes Char Format Printf Prng Sha1 String
