(* SHA-1 over 32-bit words. OCaml's native int is 63-bit here, so we keep
   words in ints masked to 32 bits; this avoids Int32 boxing entirely. *)

let mask32 = 0xFFFFFFFF

let rotl32 x n = ((x lsl n) lor (x lsr (32 - n))) land mask32

let digest s =
  let len = String.length s in
  (* message + 0x80 + zero padding + 64-bit big-endian bit length,
     total a multiple of 64 bytes *)
  let padded_len =
    let base = len + 1 + 8 in
    (base + 63) / 64 * 64
  in
  let msg = Bytes.make padded_len '\000' in
  Bytes.blit_string s 0 msg 0 len;
  Bytes.set msg len '\x80';
  let bitlen = len * 8 in
  for i = 0 to 7 do
    Bytes.set msg (padded_len - 1 - i) (Char.chr ((bitlen lsr (8 * i)) land 0xFF))
  done;
  let h0 = ref 0x67452301
  and h1 = ref 0xEFCDAB89
  and h2 = ref 0x98BADCFE
  and h3 = ref 0x10325476
  and h4 = ref 0xC3D2E1F0 in
  let w = Array.make 80 0 in
  let nblocks = padded_len / 64 in
  for b = 0 to nblocks - 1 do
    let base = b * 64 in
    for t = 0 to 15 do
      let o = base + (t * 4) in
      w.(t) <-
        (Char.code (Bytes.get msg o) lsl 24)
        lor (Char.code (Bytes.get msg (o + 1)) lsl 16)
        lor (Char.code (Bytes.get msg (o + 2)) lsl 8)
        lor Char.code (Bytes.get msg (o + 3))
    done;
    for t = 16 to 79 do
      w.(t) <- rotl32 (w.(t - 3) lxor w.(t - 8) lxor w.(t - 14) lxor w.(t - 16)) 1
    done;
    let a = ref !h0 and b' = ref !h1 and c = ref !h2 and d = ref !h3 and e = ref !h4 in
    for t = 0 to 79 do
      let f, k =
        if t < 20 then (!b' land !c) lor (lnot !b' land !d land mask32), 0x5A827999
        else if t < 40 then !b' lxor !c lxor !d, 0x6ED9EBA1
        else if t < 60 then (!b' land !c) lor (!b' land !d) lor (!c land !d), 0x8F1BBCDC
        else !b' lxor !c lxor !d, 0xCA62C1D6
      in
      let tmp = (rotl32 !a 5 + (f land mask32) + !e + k + w.(t)) land mask32 in
      e := !d;
      d := !c;
      c := rotl32 !b' 30;
      b' := !a;
      a := tmp
    done;
    h0 := (!h0 + !a) land mask32;
    h1 := (!h1 + !b') land mask32;
    h2 := (!h2 + !c) land mask32;
    h3 := (!h3 + !d) land mask32;
    h4 := (!h4 + !e) land mask32
  done;
  let out = Bytes.create 20 in
  let put i v =
    Bytes.set out i (Char.chr ((v lsr 24) land 0xFF));
    Bytes.set out (i + 1) (Char.chr ((v lsr 16) land 0xFF));
    Bytes.set out (i + 2) (Char.chr ((v lsr 8) land 0xFF));
    Bytes.set out (i + 3) (Char.chr (v land 0xFF))
  in
  put 0 !h0;
  put 4 !h1;
  put 8 !h2;
  put 12 !h3;
  put 16 !h4;
  Bytes.unsafe_to_string out

let hex s =
  let d = digest s in
  let buf = Buffer.create 40 in
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) d;
  Buffer.contents buf

let digest_int n = digest (string_of_int n)
