type thresholds = float array

let paper_thresholds = [| 20.0; 100.0 |]

let validate t =
  let n = Array.length t in
  if n + 1 > 36 then invalid_arg "Scheme.validate: too many levels (max 36)";
  for i = 0 to n - 1 do
    if t.(i) < 0.0 then invalid_arg "Scheme.validate: negative boundary";
    if i > 0 && t.(i) <= t.(i - 1) then invalid_arg "Scheme.validate: boundaries must ascend"
  done

let level t d =
  if d < 0.0 then invalid_arg "Scheme.level: negative measurement";
  let n = Array.length t in
  (* number of boundaries <= d; n is small (<= 11), linear scan is fine *)
  let rec go i = if i < n && t.(i) <= d then go (i + 1) else i in
  go 0

let digit_of_level l =
  if l < 10 then Char.chr (Char.code '0' + l)
  else if l < 36 then Char.chr (Char.code 'a' + l - 10)
  else invalid_arg "Scheme.order: level too large"

let order t dists = String.init (Array.length dists) (fun i -> digit_of_level (level t dists.(i)))

let layer3_thresholds = [| 10.0; 20.0; 40.0; 100.0; 200.0 |]
let layer4_thresholds = [| 5.0; 10.0; 15.0; 20.0; 30.0; 40.0; 60.0; 100.0; 150.0; 200.0; 300.0 |]

let refinement_chain ~depth =
  match depth with
  | 2 -> [| paper_thresholds |]
  | 3 -> [| paper_thresholds; layer3_thresholds |]
  | 4 -> [| paper_thresholds; layer3_thresholds; layer4_thresholds |]
  | _ -> invalid_arg "Scheme.refinement_chain: depth must be in [2, 4]"

let is_refinement ~coarse ~fine =
  Array.for_all (fun b -> Array.exists (fun b' -> b' = b) fine) coarse

let project_order ~full ~dropped =
  let n = String.length full in
  if dropped < 0 || dropped >= n then invalid_arg "Scheme.project_order: index out of range";
  String.init (n - 1) (fun i -> full.[if i < dropped then i else i + 1])

let ring_names t ~landmarks =
  let levels = Array.length t + 1 in
  let rec go k =
    if k = 0 then [ "" ]
    else
      let rest = go (k - 1) in
      List.concat_map
        (fun suffix -> List.init levels (fun l -> String.make 1 (digit_of_level l) ^ suffix))
        rest
  in
  go landmarks
