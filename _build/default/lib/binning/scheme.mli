(** The distributed binning scheme: quantising landmark latency vectors into
    ring names.

    Each node measures its delay to every landmark and maps each measurement
    to a {e level} using a set of ascending latency boundaries; the
    concatenated level digits form the node's {e landmark order} — the name
    of the lower-layer P2P ring it joins. The paper's Table 1 uses the
    boundaries [\[20; 100\]] (levels 0/1/2): node A with delays
    (25, 5, 30, 100) gets order "1012".

    {2 Deeper hierarchies: nested refinement}

    For hierarchy depths beyond 2 the paper does not spell out how layer-3/4
    rings derive from the same landmark vector. We use {e threshold
    refinement}: layer [k+1] quantises the {e same} measurement vector with a
    strictly finer boundary set that is a superset of layer [k]'s. Supersets
    guarantee {e nesting} — nodes sharing a fine order necessarily share every
    coarser order — so each deep ring is wholly contained in its parent ring,
    which is what makes HIERAS's bottom-up multi-loop routing well defined
    (DESIGN.md §2). *)

type thresholds = float array
(** Strictly ascending latency boundaries (ms). [k] boundaries induce [k+1]
    levels: level of [d] = number of boundaries [<= d]. *)

val paper_thresholds : thresholds
(** [\[|20.; 100.|\]] — the paper's three levels. *)

val level : thresholds -> float -> int
(** Raises [Invalid_argument] on a negative measurement. *)

val order : thresholds -> float array -> string
(** Level digit per landmark, concatenated. Levels 0-9 use '0'..'9', further
    levels 'a'..'z' (a threshold set inducing more than 36 levels is
    rejected by {!validate}). *)

val validate : thresholds -> unit
(** Raises [Invalid_argument] unless strictly ascending, non-negative, and
    inducing at most 36 levels. *)

val refinement_chain : depth:int -> thresholds array
(** Boundary sets for layers [2 .. depth] (element 0 = layer 2 =
    {!paper_thresholds}), each a strict superset of the previous. Supports
    [2 <= depth <= 4], the range evaluated in the paper. *)

val is_refinement : coarse:thresholds -> fine:thresholds -> bool
(** True when every coarse boundary appears in the fine set. *)

val project_order : full:string -> dropped:int -> string
(** Order string after landmark [dropped] failed (Section 2.3: survivors keep
    their digits). *)

val ring_names : thresholds -> landmarks:int -> string list
(** All syntactically possible ring names (levels^landmarks) — only for
    small diagnostics/tests. *)
