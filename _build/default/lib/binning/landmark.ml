type t = { routers : int array }

let of_routers routers =
  if Array.length routers = 0 then invalid_arg "Landmark.of_routers: empty";
  { routers = Array.copy routers }

let choose_random lat ~count rng =
  let nr = Topology.Latency.routers lat in
  if count < 1 || count > nr then invalid_arg "Landmark.choose_random: bad count";
  { routers = Prng.Dist.sample_without_replacement rng count nr }

let choose_spread lat ~count rng =
  let nr = Topology.Latency.routers lat in
  if count < 1 || count > nr then invalid_arg "Landmark.choose_spread: bad count";
  (* Candidates are well-connected routers (degree above the 60th
     percentile): "well-known machines" are universities and exchanges, not
     peripheral leaves. On heavy-tailed topologies an unfiltered
     farthest-point pick lands on pathological outliers whose latency to
     everyone is huge, which destroys the binning's discriminative power. *)
  let g = Topology.Latency.router_graph lat in
  let degrees = Array.init nr (fun r -> Topology.Graph.degree g r) in
  let sorted = Array.copy degrees in
  Array.sort Stdlib.compare sorted;
  let threshold = sorted.(6 * (nr - 1) / 10) in
  let candidates =
    let l = ref [] in
    for r = nr - 1 downto 0 do
      if degrees.(r) >= threshold then l := r :: !l
    done;
    Array.of_list !l
  in
  let candidates = if Array.length candidates >= count then candidates else Array.init nr Fun.id in
  let nc = Array.length candidates in
  let chosen = Array.make count 0 in
  chosen.(0) <- candidates.(Prng.Rng.int rng nc);
  (* min distance from every candidate to the chosen set, updated incrementally *)
  let min_dist =
    Array.map (fun r -> Topology.Latency.router_latency lat chosen.(0) r) candidates
  in
  for k = 1 to count - 1 do
    let best = ref 0 and best_d = ref neg_infinity in
    for i = 0 to nc - 1 do
      if min_dist.(i) > !best_d && not (Array.exists (( = ) candidates.(i)) (Array.sub chosen 0 k))
      then begin
        best := i;
        best_d := min_dist.(i)
      end
    done;
    chosen.(k) <- candidates.(!best);
    for i = 0 to nc - 1 do
      let d = Topology.Latency.router_latency lat chosen.(k) candidates.(i) in
      if d < min_dist.(i) then min_dist.(i) <- d
    done
  done;
  { routers = chosen }

let count t = Array.length t.routers
let routers t = Array.copy t.routers

let drop t i =
  let n = Array.length t.routers in
  if i < 0 || i >= n then invalid_arg "Landmark.drop: index out of range";
  if n = 1 then invalid_arg "Landmark.drop: cannot drop the last landmark";
  { routers = Array.init (n - 1) (fun j -> if j < i then t.routers.(j) else t.routers.(j + 1)) }

let measure lat t ~host =
  Array.map (fun r -> Topology.Latency.host_to_router lat host r) t.routers

let measure_jittered lat t ~host ~rng ~spread =
  if spread < 0.0 || spread >= 1.0 then invalid_arg "Landmark.measure_jittered: bad spread";
  Array.map
    (fun r ->
      let d = Topology.Latency.host_to_router lat host r in
      d *. Prng.Dist.uniform_float rng ~lo:(1.0 -. spread) ~hi:(1.0 +. spread))
    t.routers
