(** Landmark nodes for the distributed binning scheme.

    The paper (following Ratnasamy & Shenker, INFOCOM'02) assumes "a
    well-known set of machines spread across the Internet". We model
    landmarks as routers of the underlying topology. Two selection
    strategies are provided:

    - {!choose_spread} (default in experiments): farthest-point greedy —
      after a random first pick, each next landmark maximises the minimum
      distance to those already chosen. This is what "spread across the
      Internet" means operationally and is what makes the order digits
      informative.
    - {!choose_random}: uniform random routers, for sensitivity tests.

    A landmark failure (Section 2.3 of the paper) is modelled by
    {!drop}: surviving landmarks keep their positions, and nodes binned
    earlier simply project their order strings (see
    [Scheme.project_order]). *)

type t

val choose_spread : Topology.Latency.t -> count:int -> Prng.Rng.t -> t
val choose_random : Topology.Latency.t -> count:int -> Prng.Rng.t -> t
val of_routers : int array -> t
(** Explicit router indices (tests, worked examples). *)

val count : t -> int
val routers : t -> int array
(** Copy of the landmark router indices, in selection order. *)

val drop : t -> int -> t
(** [drop t i] removes the [i]-th landmark (failure injection). Raises
    [Invalid_argument] if out of range or if it would leave no landmarks. *)

val measure : Topology.Latency.t -> t -> host:int -> float array
(** Exact one-way delays from the host to each landmark — an idealised
    [ping]. *)

val measure_jittered :
  Topology.Latency.t -> t -> host:int -> rng:Prng.Rng.t -> spread:float -> float array
(** Delays perturbed by a multiplicative factor uniform in
    [\[1-spread, 1+spread\]] — the paper notes ping is "not very accurate";
    binning must tolerate this. *)
