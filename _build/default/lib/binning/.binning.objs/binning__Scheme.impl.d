lib/binning/scheme.ml: Array Char List String
