lib/binning/landmark.mli: Prng Topology
