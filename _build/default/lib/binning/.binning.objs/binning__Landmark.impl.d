lib/binning/landmark.ml: Array Fun Prng Stdlib Topology
