lib/binning/scheme.mli:
