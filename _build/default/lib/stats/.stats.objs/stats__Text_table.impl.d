lib/stats/text_table.ml: Array Buffer List String
