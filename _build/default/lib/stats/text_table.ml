type t = { headers : string list; mutable rows : string list list }

let create headers = { headers; rows = [] }

let add_row t row =
  if List.length row > List.length t.headers then
    invalid_arg "Text_table.add_row: more cells than headers";
  let missing = List.length t.headers - List.length row in
  let row = row @ List.init missing (fun _ -> "") in
  t.rows <- row :: t.rows

let headers t = t.headers
let rows t = List.rev t.rows

let render t =
  let rows = List.rev t.rows in
  let all = t.headers :: rows in
  let ncols = List.length t.headers in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
    all;
  let buf = Buffer.create 256 in
  let emit row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf " | ";
        Buffer.add_string buf cell;
        Buffer.add_string buf (String.make (widths.(i) - String.length cell) ' '))
      row;
    Buffer.add_char buf '\n'
  in
  emit t.headers;
  let rule_len = Array.fold_left ( + ) 0 widths + (3 * (ncols - 1)) in
  Buffer.add_string buf (String.make rule_len '-');
  Buffer.add_char buf '\n';
  List.iter emit rows;
  Buffer.contents buf

let print t = print_string (render t)
