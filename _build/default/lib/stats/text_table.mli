(** Minimal aligned ASCII tables for experiment reports. *)

type t

val create : string list -> t
(** [create headers] starts a table with the given column headers. *)

val add_row : t -> string list -> unit
(** Rows shorter than the header are padded; longer rows raise
    [Invalid_argument]. *)

val headers : t -> string list
val rows : t -> string list list
(** Rows in insertion order, padded to the header width. *)

val render : t -> string
(** Render with space-padded, pipe-separated columns and a rule under the
    header. *)

val print : t -> unit
(** [render] to stdout followed by a newline. *)
