(** Streaming summary statistics (Welford's online algorithm).

    Used by the experiment harness to accumulate per-request hop counts and
    latencies without retaining the raw 100 000-sample arrays. *)

type t
(** Mutable accumulator. *)

val create : unit -> t
val add : t -> float -> unit
val merge : t -> t -> t
(** Combine two accumulators (Chan's parallel update). *)

val count : t -> int
val mean : t -> float
(** 0 for an empty accumulator. *)

val variance : t -> float
(** Population variance; 0 when fewer than two samples. *)

val stddev : t -> float
val min_value : t -> float
(** [infinity] when empty. *)

val max_value : t -> float
(** [neg_infinity] when empty. *)

val total : t -> float
(** Sum of samples. *)

val pp : Format.formatter -> t -> unit
