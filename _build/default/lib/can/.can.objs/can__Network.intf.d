lib/can/network.mli: Hashid Zone
