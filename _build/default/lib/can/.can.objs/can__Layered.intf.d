lib/can/layered.mli: Binning Hashid Network Topology
