lib/can/route.ml: List Network Topology Zone
