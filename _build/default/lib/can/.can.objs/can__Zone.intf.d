lib/can/zone.mli: Format
