lib/can/zone.ml: Array Float Format
