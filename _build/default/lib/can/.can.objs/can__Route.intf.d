lib/can/route.mli: Hashid Network Topology
