lib/can/layered.ml: Array Binning Fun Hashtbl List Network Topology Zone
