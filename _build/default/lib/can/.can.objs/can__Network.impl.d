lib/can/network.ml: Array Char Float Hashid List Printf String Zone
