module Id = Hashid.Id

type t = {
  d : int;
  hosts : int array;
  points : float array array;
  zones : Zone.t array;
  neighbors : int list array;
}

let dims t = t.d
let size t = Array.length t.hosts
let host t i = t.hosts.(i)
let point t i = t.points.(i)
let zone t i = t.zones.(i)
let neighbors t i = t.neighbors.(i)

(* greedy descent to the zone containing [p], used both by the builder (to
   find the zone a joining point lands in) and by owner queries *)
let locate ~zones ~neighbors ~alive start p =
  let current = ref start in
  let steps = ref 0 in
  let guard = 4 * (Array.length zones + 4) in
  while not (Zone.contains zones.(!current) p) do
    incr steps;
    if !steps > guard then failwith "Can.Network.locate: lost in space";
    let cur = !current in
    let best = ref cur and best_d = ref (Zone.torus_distance zones.(cur) p) in
    List.iter
      (fun v ->
        let d = Zone.torus_distance zones.(v) p in
        if d < !best_d then begin
          best := v;
          best_d := d
        end)
      neighbors.(cur);
    if !best = cur then failwith "Can.Network.locate: greedy dead end";
    current := !best
  done;
  ignore alive;
  !current

let of_points ~hosts ~points =
  let n = Array.length hosts in
  if n = 0 then invalid_arg "Can.Network: empty network";
  if Array.length points <> n then invalid_arg "Can.Network: points/hosts misaligned";
  let d = Array.length points.(0) in
  Array.iter
    (fun p ->
      if Array.length p <> d then invalid_arg "Can.Network: inconsistent dimensions";
      Array.iter (fun x -> if x < 0.0 || x >= 1.0 then invalid_arg "Can.Network: point outside [0,1)") p)
    points;
  let zones = Array.make n (Zone.unit d) in
  let neighbors = Array.make n [] in
  (* sequential joins: node i splits the zone containing its point *)
  for i = 1 to n - 1 do
    let owner = locate ~zones ~neighbors ~alive:i 0 points.(i) in
    let lower, upper = Zone.split zones.(owner) in
    (* the newcomer takes the half containing its own point, the previous
       owner the other half (real CAN: the zone, not the point, is a node's
       identity — an owner's point can drift outside after splits) *)
    let owner_zone, new_zone =
      if Zone.contains lower points.(i) then (upper, lower) else (lower, upper)
    in
    zones.(owner) <- owner_zone;
    zones.(i) <- new_zone;
    (* the new node's neighbors are a subset of the owner's old neighbors,
       plus the owner; the owner's set shrinks to those still adjacent *)
    let old_neighbors = neighbors.(owner) in
    let keep_owner = ref [] and take_new = ref [] in
    List.iter
      (fun w ->
        if Zone.adjacent zones.(w) owner_zone then keep_owner := w :: !keep_owner;
        if Zone.adjacent zones.(w) new_zone then take_new := w :: !take_new)
      old_neighbors;
    neighbors.(owner) <- i :: !keep_owner;
    neighbors.(i) <- owner :: !take_new;
    (* old neighbors update their own views *)
    List.iter
      (fun w ->
        let without = List.filter (fun v -> v <> owner) neighbors.(w) in
        let with_owner =
          if Zone.adjacent zones.(w) owner_zone then owner :: without else without
        in
        neighbors.(w) <-
          (if Zone.adjacent zones.(w) new_zone then i :: with_owner else with_owner))
      old_neighbors
  done;
  { d; hosts = Array.copy hosts; points; zones; neighbors }

(* a point inside its own zone must exist: derive coordinates by hashing the
   peer's name per dimension *)
let coord_of_hash name k =
  let h = Hashid.Sha1.digest (Printf.sprintf "%s/dim%d" name k) in
  (* 6 bytes -> uniform in [0,1) *)
  let v = ref 0.0 and scale = ref 1.0 in
  for i = 0 to 5 do
    scale := !scale /. 256.0;
    v := !v +. (float_of_int (Char.code h.[i]) *. !scale)
  done;
  !v

let build ~space ~hosts ?(dims = 2) ?(salt = "can-peer") () =
  ignore space;
  if dims < 1 then invalid_arg "Can.Network.build: dims must be >= 1";
  let n = Array.length hosts in
  let points =
    Array.init n (fun i ->
        Array.init dims (fun k -> coord_of_hash (Printf.sprintf "%s:%d" salt i) k))
  in
  of_points ~hosts ~points

let owner_of_point t p =
  if Array.length p <> t.d then invalid_arg "Can.Network.owner_of_point: bad dimension";
  locate ~zones:t.zones ~neighbors:t.neighbors ~alive:0 0 p

let key_point t key =
  Array.init t.d (fun k -> coord_of_hash ("key:" ^ Id.to_hex key) k)

let owner_of_key t key = owner_of_point t (key_point t key)

let mean_neighbors t =
  let total = Array.fold_left (fun acc l -> acc + List.length l) 0 t.neighbors in
  float_of_int total /. float_of_int (max 1 (size t))

let zones_partition_space t =
  let vol = Array.fold_left (fun acc z -> acc +. Zone.volume z) 0.0 t.zones in
  if Float.abs (vol -. 1.0) >= 1e-9 then false
  else begin
    (* probabilistic disjointness/coverage: hash-derived probe points must
       each fall in exactly one zone *)
    let ok = ref true in
    for probe = 0 to 99 do
      let p = Array.init t.d (fun k -> coord_of_hash (Printf.sprintf "probe-%d" probe) k) in
      let containing = Array.fold_left (fun acc z -> if Zone.contains z p then acc + 1 else acc) 0 t.zones in
      if containing <> 1 then ok := false
    done;
    !ok
  end
