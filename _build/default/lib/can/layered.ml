type ring = {
  members : int array; (* global node indices, local index = position *)
  pos_of : (int, int) Hashtbl.t;
  net : Network.t; (* ring CAN: node i here is members.(i) globally *)
}

type t = {
  global : Network.t;
  lat : Topology.Latency.t;
  depth : int;
  orders : string array array; (* orders.(k).(node), k = layer - 2 *)
  ring_of : ring array array; (* ring_of.(k).(node) *)
  rings : (string, ring) Hashtbl.t array;
}

let build ~global ~lat ~landmarks ~depth ?measure () =
  if depth < 2 then invalid_arg "Can.Layered.build: depth must be >= 2";
  let n = Network.size global in
  let measure =
    match measure with
    | Some f -> f
    | None -> fun ~host -> Binning.Landmark.measure lat landmarks ~host
  in
  let chain = Binning.Scheme.refinement_chain ~depth in
  let vectors = Array.init n (fun i -> measure ~host:(Network.host global i)) in
  let orders =
    Array.init (depth - 1) (fun k ->
        Array.init n (fun i -> Binning.Scheme.order chain.(k) vectors.(i)))
  in
  let rings = Array.init (depth - 1) (fun _ -> Hashtbl.create 64) in
  for k = 0 to depth - 2 do
    let groups : (string, int list ref) Hashtbl.t = Hashtbl.create 64 in
    for i = n - 1 downto 0 do
      let o = orders.(k).(i) in
      match Hashtbl.find_opt groups o with
      | Some l -> l := i :: !l
      | None -> Hashtbl.replace groups o (ref [ i ])
    done;
    Hashtbl.iter
      (fun o l ->
        let members = Array.of_list !l in
        let pos_of = Hashtbl.create (2 * Array.length members) in
        Array.iteri (fun pos node -> Hashtbl.replace pos_of node pos) members;
        (* the ring CAN reuses the members' global join points, so a node
           owns nested zones: the deeper the layer, the fewer members, the
           larger its zone *)
        let net =
          Network.of_points
            ~hosts:(Array.map (Network.host global) members)
            ~points:(Array.map (Network.point global) members)
        in
        Hashtbl.replace rings.(k) o { members; pos_of; net })
      groups
  done;
  let ring_of =
    Array.init (depth - 1) (fun k ->
        Array.init n (fun node -> Hashtbl.find rings.(k) orders.(k).(node)))
  in
  { global; lat; depth; orders; ring_of; rings }

let global_can t = t.global
let depth t = t.depth

let check_layer t layer =
  if layer < 2 || layer > t.depth then invalid_arg "Can.Layered: layer out of range"

let order_of_node t ~layer node =
  check_layer t layer;
  t.orders.(layer - 2).(node)

let ring_count t ~layer =
  check_layer t layer;
  Hashtbl.length t.rings.(layer - 2)

let ring_size_of_node t ~layer node =
  check_layer t layer;
  Array.length t.ring_of.(layer - 2).(node).members

type hop = { from_node : int; to_node : int; latency : float; layer : int }

type result = {
  origin : int;
  destination : int;
  hops : hop list;
  hop_count : int;
  latency : float;
  hops_per_layer : int array;
  latency_per_layer : float array;
}

let route t ~origin ~key =
  let point = Network.key_point t.global key in
  let hops = ref [] in
  let count = ref 0 in
  let total = ref 0.0 in
  let per_hops = Array.make t.depth 0 in
  let per_lat = Array.make t.depth 0.0 in
  let record ~layer from_node to_node =
    let l =
      Topology.Latency.host_latency t.lat (Network.host t.global from_node)
        (Network.host t.global to_node)
    in
    hops := { from_node; to_node; latency = l; layer } :: !hops;
    incr count;
    total := !total +. l;
    per_hops.(layer - 1) <- per_hops.(layer - 1) + 1;
    per_lat.(layer - 1) <- per_lat.(layer - 1) +. l
  in
  (* greedy walk inside one CAN; [to_global] maps local node indices out *)
  let walk ~layer net ~to_global ~start_local =
    let current = ref start_local in
    let steps = ref 0 in
    let guard = 4 * (Network.size net + 4) in
    while not (Zone.contains (Network.zone net !current) point) do
      incr steps;
      if !steps > guard then failwith "Can.Layered: routing did not terminate";
      let cur = !current in
      let best = ref cur and best_d = ref (Zone.torus_distance (Network.zone net cur) point) in
      List.iter
        (fun v ->
          let d = Zone.torus_distance (Network.zone net v) point in
          if d < !best_d then begin
            best := v;
            best_d := d
          end)
        (Network.neighbors net cur);
      if !best = cur then failwith "Can.Layered: greedy dead end";
      record ~layer (to_global cur) (to_global !best);
      current := !best
    done;
    !current
  in
  let current = ref origin in
  let finished = ref false in
  (try
     for layer = t.depth downto 2 do
       let ring = t.ring_of.(layer - 2).(!current) in
       let local = Hashtbl.find ring.pos_of !current in
       let local' = walk ~layer ring.net ~to_global:(fun i -> ring.members.(i)) ~start_local:local in
       current := ring.members.(local');
       (* the layer-k owner's global zone may already contain the point *)
       if Zone.contains (Network.zone t.global !current) point then begin
         finished := true;
         raise Exit
       end
     done
   with Exit -> ());
  if not !finished then current := walk ~layer:1 t.global ~to_global:Fun.id ~start_local:!current;
  {
    origin;
    destination = !current;
    hops = List.rev !hops;
    hop_count = !count;
    latency = !total;
    hops_per_layer = per_hops;
    latency_per_layer = per_lat;
  }
