(** Zones of the CAN coordinate space: axis-aligned boxes partitioning the
    [d]-dimensional unit torus [\[0,1)^d].

    Zones never wrap individually (they arise from recursive halving of the
    unit box), but adjacency and distance are toroidal, as in the CAN paper:
    the faces at 0 and 1 of each dimension touch. *)

type t

val dims : t -> int
val unit : int -> t
(** The whole space (the first node's zone). *)

val lo : t -> int -> float
val hi : t -> int -> float
val volume : t -> float

val contains : t -> float array -> bool
(** Membership with half-open bounds [\[lo, hi)]. *)

val widest_dim : t -> int
(** Dimension of maximal extent (lowest index on ties) — the CAN split
    rule. *)

val split : t -> t * t
(** Halve along {!widest_dim}; returns (lower, upper). *)

val adjacent : t -> t -> bool
(** Toroidal CAN adjacency: abutting along exactly one dimension (possibly
    across the 0/1 seam) and overlapping in all others. *)

val torus_distance : t -> float array -> float
(** Euclidean distance on the torus from the box to a point (0 if the point
    is inside) — the greedy routing metric. *)

val center : t -> float array
val pp : Format.formatter -> t -> unit
