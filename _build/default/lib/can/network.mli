(** Oracle-built CAN networks (Ratnasamy et al., SIGCOMM'01).

    CAN partitions a [d]-dimensional unit torus into one zone per node; keys
    hash to points and are owned by the zone containing them; routing is
    greedy through zone neighbors (zones sharing a (d-1)-dimensional face).

    The builder replays CAN's actual join procedure: each node hashes to a
    point, the zone containing the point splits in half along its widest
    dimension, and neighbor sets are updated incrementally — so the final
    partition and neighbor structure are exactly what a sequence of joins
    produces. The paper sketches HIERAS over CAN in §3.2; {!Layered}
    implements that sketch. *)

type t

val build :
  space:Hashid.Id.space ->
  hosts:int array ->
  ?dims:int ->
  ?salt:string ->
  unit ->
  t
(** One peer per host; peer points derive from hashed identifiers (two
    independent hash coordinates per dimension). [dims] defaults to 2, the
    CAN paper's running example. *)

val of_points : hosts:int array -> points:float array array -> t
(** Explicit points (tests). Points must be distinct. *)

val dims : t -> int
val size : t -> int
val host : t -> int -> int
val point : t -> int -> float array
(** The node's hashed join coordinate. The newcomer's zone always contains
    it at join time, but later splits may hand that region to another node —
    as in real CAN, the zone (not the point) is a node's identity. *)

val zone : t -> int -> Zone.t
val neighbors : t -> int -> int list
(** Zone-adjacent nodes. *)

val owner_of_point : t -> float array -> int
(** The node whose zone contains the point. *)

val key_point : t -> Hashid.Id.t -> float array
(** Where a key lives in the coordinate space (uniform per-dimension
    hashes). *)

val owner_of_key : t -> Hashid.Id.t -> int

val mean_neighbors : t -> float
(** Average neighbor-set size (theory: 2d for large networks). *)

val zones_partition_space : t -> bool
(** Total zone volume is 1 and probe points each fall in exactly one zone —
    the structural invariant (tests). *)
