type t = { lo : float array; hi : float array }

let dims t = Array.length t.lo
let unit d =
  if d < 1 then invalid_arg "Zone.unit: need at least one dimension";
  { lo = Array.make d 0.0; hi = Array.make d 1.0 }

let lo t k = t.lo.(k)
let hi t k = t.hi.(k)

let volume t =
  let v = ref 1.0 in
  for k = 0 to dims t - 1 do
    v := !v *. (t.hi.(k) -. t.lo.(k))
  done;
  !v

let contains t p =
  let ok = ref true in
  for k = 0 to dims t - 1 do
    if not (t.lo.(k) <= p.(k) && p.(k) < t.hi.(k)) then ok := false
  done;
  !ok

let widest_dim t =
  let best = ref 0 and best_w = ref (t.hi.(0) -. t.lo.(0)) in
  for k = 1 to dims t - 1 do
    let w = t.hi.(k) -. t.lo.(k) in
    if w > !best_w +. 1e-12 then begin
      best := k;
      best_w := w
    end
  done;
  !best

let split t =
  let k = widest_dim t in
  let mid = 0.5 *. (t.lo.(k) +. t.hi.(k)) in
  let lower = { lo = Array.copy t.lo; hi = Array.copy t.hi } in
  let upper = { lo = Array.copy t.lo; hi = Array.copy t.hi } in
  lower.hi.(k) <- mid;
  upper.lo.(k) <- mid;
  (lower, upper)

(* intervals [a_lo, a_hi) and [b_lo, b_hi) overlap in more than a point *)
let overlaps a_lo a_hi b_lo b_hi = Float.max a_lo b_lo < Float.min a_hi b_hi -. 1e-12

(* abutting along dimension k, directly or across the torus seam *)
let abuts a b k =
  let touch x y = Float.abs (x -. y) < 1e-12 in
  touch a.hi.(k) b.lo.(k)
  || touch b.hi.(k) a.lo.(k)
  || (touch a.hi.(k) 1.0 && touch b.lo.(k) 0.0)
  || (touch b.hi.(k) 1.0 && touch a.lo.(k) 0.0)

let adjacent a b =
  let d = dims a in
  if d <> dims b then invalid_arg "Zone.adjacent: dimension mismatch";
  let abutting = ref 0 and overlapping = ref 0 in
  for k = 0 to d - 1 do
    (* an overlapping dimension is never "abutting", even when an interval
       spans the whole [0,1) circle and also touches the seam *)
    if overlaps a.lo.(k) a.hi.(k) b.lo.(k) b.hi.(k) then incr overlapping
    else if abuts a b k then incr abutting
  done;
  (* exactly one abutting dimension (two would be corner contact); all
     others must properly overlap *)
  !abutting = 1 && !overlapping = d - 1

let torus_distance t p =
  let acc = ref 0.0 in
  for k = 0 to dims t - 1 do
    let x = p.(k) in
    let d =
      if t.lo.(k) <= x && x < t.hi.(k) then 0.0
      else begin
        let circ a b =
          let v = Float.abs (a -. b) in
          Float.min v (1.0 -. v)
        in
        Float.min (circ x t.lo.(k)) (circ x t.hi.(k))
      end
    in
    acc := !acc +. (d *. d)
  done;
  sqrt !acc

let center t = Array.init (dims t) (fun k -> 0.5 *. (t.lo.(k) +. t.hi.(k)))

let pp fmt t =
  Format.fprintf fmt "[";
  for k = 0 to dims t - 1 do
    if k > 0 then Format.fprintf fmt " x ";
    Format.fprintf fmt "%.3f,%.3f" t.lo.(k) t.hi.(k)
  done;
  Format.fprintf fmt "]"
