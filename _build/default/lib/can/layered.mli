(** HIERAS over CAN — the transplant the paper sketches in §3.2.

    "If we use CAN as the underlying algorithm, the whole coordinate space
    can be divided multiple times in different layers, we can create
    multilayer neighbor sets accordingly and use these neighbor sets in
    different loops during a routing procedure."

    Concretely: the members of each lower-layer ring (same distributed
    binning as the Chord-based HIERAS) tile the {e same} unit torus with
    their own, coarser CAN; every node therefore owns one zone per layer. A
    lookup greedily routes inside the originator's most local CAN until that
    CAN's owner of the key point is reached, then climbs — the owner at layer
    [k] sits geometrically close to the key, so the layer above starts almost
    on target, exactly like the Chord variant's ring-predecessor handoff. *)

type t

val build :
  global:Network.t ->
  lat:Topology.Latency.t ->
  landmarks:Binning.Landmark.t ->
  depth:int ->
  ?measure:(host:int -> float array) ->
  unit ->
  t
(** [depth >= 2]. Ring membership comes from the same
    {!Binning.Scheme.refinement_chain} nesting as the Chord-based build. *)

val global_can : t -> Network.t
val depth : t -> int
val order_of_node : t -> layer:int -> int -> string
val ring_count : t -> layer:int -> int
val ring_size_of_node : t -> layer:int -> int -> int

type hop = { from_node : int; to_node : int; latency : float; layer : int }

type result = {
  origin : int;
  destination : int;
  hops : hop list;
  hop_count : int;
  latency : float;
  hops_per_layer : int array;  (** index 0 = global *)
  latency_per_layer : float array;
}

val route : t -> origin:int -> key:Hashid.Id.t -> result
(** Ends at the global CAN owner of the key's point. *)
