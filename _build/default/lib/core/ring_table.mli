(** Ring tables (paper §3.1, Table 3).

    A ring table is the rendezvous record for one lower-layer ring: it names
    four member nodes — the two largest and two smallest identifiers in the
    ring — and is stored on the node whose identifier is closest to the
    ring's hashed name in the {e top-layer} DHT. A joining node retrieves it
    (by an ordinary top-layer Chord lookup on the ring id) to learn a member
    of the ring it must join; it updates it when its own identifier displaces
    one of the four extremes.

    Keeping extremes rather than arbitrary members makes the update rule
    purely local: a newcomer can decide from the table alone whether it must
    write back ("larger than the second largest or smaller than the second
    smallest", §3.3). *)

type entry = { node : int; id : Hashid.Id.t }

type t

val name : t -> Ring_name.t
val ring_id : t -> Hashid.Id.t

val create : Hashid.Id.space -> Ring_name.t -> t
(** Empty table (a ring about to gain its first member). *)

val of_members : Hashid.Id.space -> Ring_name.t -> entry list -> t
(** Table summarising an existing member set. *)

val copy : t -> t
(** Independent copy (replication snapshots). *)

val entries : t -> entry list
(** At most 4 distinct entries: largest, second largest, smallest, second
    smallest (deduplicated for rings with < 4 members), unspecified order. *)

val is_empty : t -> bool
val any_member : t -> entry option

val should_register : t -> Hashid.Id.t -> bool
(** Would inserting this identifier change the table? True exactly when the
    paper's modification message must be sent (also true on an empty or
    underfull table). *)

val register : t -> entry -> bool
(** Insert a member; returns whether the table changed. *)

val remove : t -> int -> bool
(** Remove a (failed) node from the slots; true if it was present. The
    manager then refills the table via lookups (protocol layer). *)

val slots : t -> entry option * entry option * entry option * entry option
(** (largest, second-largest, smallest, second-smallest) — the paper's
    Table 3 columns; for tests and pretty-printing. *)

val pp : Format.formatter -> t -> unit
