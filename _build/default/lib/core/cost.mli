(** Cost model for HIERAS's extra state and maintenance (paper §3.4, and the
    "quantitative analysis of overheads" named as future work).

    Quantifies what a node pays for the hierarchy:
    - extra finger-table entries (one table per layer, but lower tables are
      smaller — distinct-successor segments shrink with ring size);
    - extra successor lists (one per layer);
    - ring tables stored on behalf of the system;
    - maintenance traffic cost, weighted by the latency of the links the
      periodic stabilize/ping messages travel (the paper's argument is that
      lower-layer maintenance is cheap {e because} those peers are close). *)

type node_cost = {
  finger_segments : int array;  (** distinct finger entries per layer, index 0 = global *)
  successor_lists : int;  (** number of successor lists = depth *)
  ring_tables_stored : int;  (** ring tables this node manages *)
  state_bytes : int;  (** estimated routing-state footprint *)
}

type totals = {
  nodes : int;
  depth : int;
  mean_finger_segments_per_layer : float array;
  mean_state_bytes : float;
  chord_mean_state_bytes : float;  (** same network, plain Chord *)
  state_overhead_ratio : float;  (** HIERAS / Chord *)
  ring_tables : int;
  mean_stabilize_link_latency_per_layer : float array;
      (** mean delay of the node -> ring-successor link per layer: the cost
          of one stabilization round trip is proportional to this *)
}

val entry_bytes : Hashid.Id.space -> int
(** Bytes per routing entry: identifier plus an IPv4 address and port. *)

val per_node : Hnetwork.t -> succ_list_len:int -> int -> node_cost
val totals : Hnetwork.t -> succ_list_len:int -> totals

val pp_totals : Format.formatter -> totals -> unit
