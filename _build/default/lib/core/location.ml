type t = {
  hnet : Hnetwork.t;
  records : (string, int list ref) Hashtbl.t; (* name -> advertisers, newest first *)
  load : (int, int) Hashtbl.t; (* owner node -> record count *)
}

let create hnet = { hnet; records = Hashtbl.create 64; load = Hashtbl.create 64 }
let network t = t.hnet

let key_of t name =
  Hashid.Id.of_hash (Chord.Network.space (Hnetwork.chord t.hnet)) ("file:" ^ name)

let response_latency t ~owner ~origin =
  let net = Hnetwork.chord t.hnet in
  Topology.Latency.host_latency
    (Hnetwork.latency_oracle t.hnet)
    (Chord.Network.host net owner) (Chord.Network.host net origin)

type publish_result = { route : Hlookup.result; owner : int; total_latency : float }

let publish t ~from ~name =
  let route = Hlookup.route t.hnet ~origin:from ~key:(key_of t name) in
  let owner = route.Hlookup.destination in
  (match Hashtbl.find_opt t.records name with
  | Some l -> if not (List.mem from !l) then l := from :: !l
  | None ->
      Hashtbl.replace t.records name (ref [ from ]);
      Hashtbl.replace t.load owner (1 + Option.value ~default:0 (Hashtbl.find_opt t.load owner)));
  {
    route;
    owner;
    total_latency = route.Hlookup.latency +. response_latency t ~owner ~origin:from;
  }

type query_result = {
  route : Hlookup.result;
  owner : int;
  locations : int list;
  response_latency : float;
  total_latency : float;
}

let lookup t ~from ~name =
  let route = Hlookup.route t.hnet ~origin:from ~key:(key_of t name) in
  let owner = route.Hlookup.destination in
  let locations =
    match Hashtbl.find_opt t.records name with Some l -> !l | None -> []
  in
  let response_latency = response_latency t ~owner ~origin:from in
  {
    route;
    owner;
    locations;
    response_latency;
    total_latency = route.Hlookup.latency +. response_latency;
  }

let unpublish t ~from ~name =
  match Hashtbl.find_opt t.records name with
  | None -> false
  | Some l ->
      if List.mem from !l then begin
        l := List.filter (fun n -> n <> from) !l;
        if !l = [] then begin
          Hashtbl.remove t.records name;
          let owner =
            Chord.Network.successor_of_key (Hnetwork.chord t.hnet) (key_of t name)
          in
          match Hashtbl.find_opt t.load owner with
          | Some c -> Hashtbl.replace t.load owner (max 0 (c - 1))
          | None -> ()
        end;
        true
      end
      else false

let stored_on t node = Option.value ~default:0 (Hashtbl.find_opt t.load node)
