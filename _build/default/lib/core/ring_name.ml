type t = { layer : int; order : string }

let make ~layer ~order =
  if layer < 2 then invalid_arg "Ring_name.make: lower-layer rings start at layer 2";
  if order = "" then invalid_arg "Ring_name.make: empty order";
  { layer; order }

let layer t = t.layer
let order t = t.order
let equal a b = a.layer = b.layer && String.equal a.order b.order

let compare a b =
  match Stdlib.compare a.layer b.layer with 0 -> String.compare a.order b.order | c -> c

let ring_id space t = Hashid.Id.of_hash space (Printf.sprintf "ring:%d:%s" t.layer t.order)
let to_string t = Printf.sprintf "L%d/%s" t.layer t.order
let pp fmt t = Format.pp_print_string fmt (to_string t)
