lib/core/ring_table.ml: Format Hashid List Ring_name
