lib/core/hprotocol.mli: Binning Hashid Ring_name Ring_table Simnet Topology
