lib/core/ring_name.ml: Format Hashid Printf Stdlib String
