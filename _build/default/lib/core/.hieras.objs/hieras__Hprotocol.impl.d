lib/core/hprotocol.ml: Array Binning Float Hashid Hashtbl List Option Ring_name Ring_table Simnet Stdlib Topology
