lib/core/ring_table.mli: Format Hashid Ring_name
