lib/core/hnetwork.ml: Array Binning Chord Hashid Hashtbl List Option Prng Ring_name Ring_table Topology
