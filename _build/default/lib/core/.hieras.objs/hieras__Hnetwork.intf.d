lib/core/hnetwork.mli: Binning Chord Prng Ring_name Ring_table Topology
