lib/core/location.ml: Chord Hashid Hashtbl Hlookup Hnetwork List Option Topology
