lib/core/cost.mli: Format Hashid Hnetwork
