lib/core/hlookup.ml: Array Chord Hashid Hnetwork List Topology
