lib/core/cost.ml: Array Chord Format Hashid Hnetwork List Topology
