lib/core/ring_name.mli: Format Hashid
