lib/core/location.mli: Hlookup Hnetwork
