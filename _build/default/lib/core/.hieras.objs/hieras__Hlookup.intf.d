lib/core/hlookup.mli: Hashid Hnetwork
