module Id = Hashid.Id

type ring = {
  rname : Ring_name.t;
  members : int array; (* node indices, ascending by identifier *)
  pos_of : (int, int) Hashtbl.t; (* node -> position in members *)
  fingers : Chord.Finger_table.t array; (* aligned with members *)
  table : Ring_table.t;
}

type t = {
  chord : Chord.Network.t;
  lat : Topology.Latency.t;
  landmarks : Binning.Landmark.t;
  depth : int;
  orders : string array array; (* orders.(k).(node), k = layer - 2 *)
  rings : (string, ring) Hashtbl.t array; (* rings.(k) : order -> ring *)
  ring_of : ring array array; (* ring_of.(k).(node) *)
}

let build ~chord ~lat ~landmarks ~depth ?measure () =
  if depth < 2 then invalid_arg "Hnetwork.build: depth must be >= 2";
  let n = Chord.Network.size chord in
  let space = Chord.Network.space chord in
  let measure =
    match measure with
    | Some f -> f
    | None -> fun ~host -> Binning.Landmark.measure lat landmarks ~host
  in
  let chain = Binning.Scheme.refinement_chain ~depth in
  (* one measurement vector per node, quantised once per layer *)
  let orders =
    let vectors = Array.init n (fun i -> measure ~host:(Chord.Network.host chord i)) in
    Array.init (depth - 1) (fun k ->
        Array.init n (fun i -> Binning.Scheme.order chain.(k) vectors.(i)))
  in
  let rings = Array.init (depth - 1) (fun _ -> Hashtbl.create 64) in
  for k = 0 to depth - 2 do
    (* group nodes by order; iterating 0..n-1 keeps members id-sorted because
       chord node indices are id-ordered *)
    let groups : (string, int list ref) Hashtbl.t = Hashtbl.create 64 in
    for i = n - 1 downto 0 do
      let o = orders.(k).(i) in
      match Hashtbl.find_opt groups o with
      | Some l -> l := i :: !l
      | None -> Hashtbl.replace groups o (ref [ i ])
    done;
    Hashtbl.iter
      (fun o l ->
        let members = Array.of_list !l in
        let rname = Ring_name.make ~layer:(k + 2) ~order:o in
        let member_ids = Array.map (Chord.Network.id chord) members in
        let fingers =
          Array.mapi
            (fun pos node ->
              Chord.Finger_table.build space ~owner:node
                ~owner_id:member_ids.(pos) ~member_ids ~member_nodes:members)
            members
        in
        let pos_of = Hashtbl.create (2 * Array.length members) in
        Array.iteri (fun pos node -> Hashtbl.replace pos_of node pos) members;
        let table =
          Ring_table.of_members space rname
            (Array.to_list
               (Array.mapi
                  (fun pos node -> { Ring_table.node; id = member_ids.(pos) })
                  members))
        in
        let ring = { rname; members; pos_of; fingers; table } in
        Hashtbl.replace rings.(k) o ring)
      groups
  done;
  (* every node belongs to exactly one ring per lower layer *)
  let ring_of =
    Array.init (depth - 1) (fun k ->
        Array.init n (fun node -> Hashtbl.find rings.(k) orders.(k).(node)))
  in
  { chord; lat; landmarks; depth; orders; rings; ring_of }

let chord t = t.chord
let latency_oracle t = t.lat
let depth t = t.depth
let landmarks t = t.landmarks
let size t = Chord.Network.size t.chord

let check_layer t layer =
  if layer < 2 || layer > t.depth then invalid_arg "Hnetwork: layer out of range"

let order_of_node t ~layer node =
  check_layer t layer;
  t.orders.(layer - 2).(node)

let ring_name_of_node t ~layer node =
  Ring_name.make ~layer ~order:(order_of_node t ~layer node)

let ring_count t ~layer =
  check_layer t layer;
  Hashtbl.length t.rings.(layer - 2)

let ring_names t ~layer =
  check_layer t layer;
  Hashtbl.fold (fun _ r acc -> r.rname :: acc) t.rings.(layer - 2) []
  |> List.sort Ring_name.compare

let ring_members t ~layer ~order =
  check_layer t layer;
  match Hashtbl.find_opt t.rings.(layer - 2) order with
  | None -> [||]
  | Some r -> Array.copy r.members

let ring_of_node t ~layer node =
  check_layer t layer;
  t.ring_of.(layer - 2).(node)

let ring_size_of_node t ~layer node = Array.length (ring_of_node t ~layer node).members

let ring_successor t ~layer node =
  let r = ring_of_node t ~layer node in
  let pos = Hashtbl.find r.pos_of node in
  r.members.((pos + 1) mod Array.length r.members)

let ring_predecessor t ~layer node =
  let r = ring_of_node t ~layer node in
  let pos = Hashtbl.find r.pos_of node in
  let m = Array.length r.members in
  r.members.((pos + m - 1) mod m)

let finger_table t ~layer node =
  if layer = 1 then Chord.Network.finger_table t.chord node
  else begin
    let r = ring_of_node t ~layer node in
    r.fingers.(Hashtbl.find r.pos_of node)
  end

let ring_table t ~layer ~order =
  check_layer t layer;
  Option.map (fun r -> r.table) (Hashtbl.find_opt t.rings.(layer - 2) order)

let ring_table_manager t rname =
  let rid = Ring_name.ring_id (Chord.Network.space t.chord) rname in
  Chord.Network.successor_of_key t.chord rid

let nesting_ok t =
  let n = size t in
  let ok = ref true in
  (* two nodes sharing a deep ring must share every shallower ring; checking
     per node that its deep ring members all carry its shallow order *)
  for k = 1 to t.depth - 2 do
    for node = 0 to n - 1 do
      let deep = t.ring_of.(k).(node) in
      let shallow_order = t.orders.(k - 1).(node) in
      Array.iter
        (fun m -> if t.orders.(k - 1).(m) <> shallow_order then ok := false)
        deep.members
    done
  done;
  !ok

let mean_ring_link_latency t ~layer ~samples rng =
  check_layer t layer;
  let n = size t in
  let acc = ref 0.0 and cnt = ref 0 in
  let attempts = ref 0 in
  while !cnt < samples && !attempts < 50 * samples do
    incr attempts;
    let node = Prng.Rng.int rng n in
    let r = ring_of_node t ~layer node in
    let m = Array.length r.members in
    if m >= 2 then begin
      let a = r.members.(Prng.Rng.int rng m) and b = r.members.(Prng.Rng.int rng m) in
      if a <> b then begin
        acc :=
          !acc
          +. Topology.Latency.host_latency t.lat (Chord.Network.host t.chord a)
               (Chord.Network.host t.chord b);
        incr cnt
      end
    end
  done;
  if !cnt = 0 then 0.0 else !acc /. float_of_int !cnt
