type node_cost = {
  finger_segments : int array;
  successor_lists : int;
  ring_tables_stored : int;
  state_bytes : int;
}

type totals = {
  nodes : int;
  depth : int;
  mean_finger_segments_per_layer : float array;
  mean_state_bytes : float;
  chord_mean_state_bytes : float;
  state_overhead_ratio : float;
  ring_tables : int;
  mean_stabilize_link_latency_per_layer : float array;
}

let entry_bytes space = Hashid.Id.bytes space + 6 (* id + IPv4 addr + port *)

let per_node hnet ~succ_list_len node =
  let depth = Hnetwork.depth hnet in
  let net = Hnetwork.chord hnet in
  let eb = entry_bytes (Chord.Network.space net) in
  let finger_segments =
    Array.init depth (fun k ->
        Chord.Finger_table.distinct_count (Hnetwork.finger_table hnet ~layer:(k + 1) node))
  in
  let ring_tables_stored =
    let stored = ref 0 in
    for layer = 2 to depth do
      List.iter
        (fun rname -> if Hnetwork.ring_table_manager hnet rname = node then incr stored)
        (Hnetwork.ring_names hnet ~layer)
    done;
    !stored
  in
  let fingers_total = Array.fold_left ( + ) 0 finger_segments in
  let state_bytes =
    eb
    * (fingers_total + (depth * succ_list_len) + 1 (* predecessor *)
      + (4 * ring_tables_stored))
  in
  { finger_segments; successor_lists = depth; ring_tables_stored; state_bytes }

let totals hnet ~succ_list_len =
  let n = Hnetwork.size hnet in
  let depth = Hnetwork.depth hnet in
  let net = Hnetwork.chord hnet in
  let lat = Hnetwork.latency_oracle hnet in
  let eb = entry_bytes (Chord.Network.space net) in
  let seg_sum = Array.make depth 0 in
  let state_sum = ref 0 in
  let rt_total = ref 0 in
  for node = 0 to n - 1 do
    let c = per_node hnet ~succ_list_len node in
    Array.iteri (fun k s -> seg_sum.(k) <- seg_sum.(k) + s) c.finger_segments;
    state_sum := !state_sum + c.state_bytes;
    rt_total := !rt_total + c.ring_tables_stored
  done;
  let chord_mean =
    float_of_int (eb * (Chord.Network.total_finger_segments net + (n * (succ_list_len + 1))))
    /. float_of_int n
  in
  let mean_state = float_of_int !state_sum /. float_of_int n in
  (* stabilize cost: the node -> ring-successor link latency per layer *)
  let stab = Array.make depth 0.0 in
  for node = 0 to n - 1 do
    for k = 0 to depth - 1 do
      let layer = k + 1 in
      let succ =
        if layer = 1 then Chord.Network.successor net node
        else Hnetwork.ring_successor hnet ~layer node
      in
      stab.(k) <-
        stab.(k)
        +. Topology.Latency.host_latency lat (Chord.Network.host net node)
             (Chord.Network.host net succ)
    done
  done;
  {
    nodes = n;
    depth;
    mean_finger_segments_per_layer =
      Array.map (fun s -> float_of_int s /. float_of_int n) seg_sum;
    mean_state_bytes = mean_state;
    chord_mean_state_bytes = chord_mean;
    state_overhead_ratio = mean_state /. chord_mean;
    ring_tables = !rt_total;
    mean_stabilize_link_latency_per_layer =
      Array.map (fun s -> s /. float_of_int n) stab;
  }

let pp_totals fmt t =
  Format.fprintf fmt "@[<v>nodes=%d depth=%d@," t.nodes t.depth;
  Array.iteri
    (fun k s ->
      Format.fprintf fmt "layer %d: mean finger segments %.2f, stabilize link %.2f ms@," (k + 1)
        s t.mean_stabilize_link_latency_per_layer.(k))
    t.mean_finger_segments_per_layer;
  Format.fprintf fmt "state: %.0f B/node (chord %.0f B/node, x%.2f), %d ring tables@]"
    t.mean_state_bytes t.chord_mean_state_bytes t.state_overhead_ratio t.ring_tables
