(** The file-location service HIERAS routes for (paper §3.2: "After the
    message arrives the destination node, the node returns the location
    information of the requested file to the originator").

    Location records — (file name, nodes advertising a copy) — are stored on
    the key's global successor, found with hierarchical routing. A query's
    user-visible latency is the forward routing latency plus the direct
    response hop from the owner back to the originator. *)

type t

val create : Hnetwork.t -> t
(** An empty location index over the given network. *)

val network : t -> Hnetwork.t

type publish_result = {
  route : Hlookup.result;  (** path of the publish message *)
  owner : int;  (** node now holding the record *)
  total_latency : float;  (** forward route + response acknowledgement *)
}

val publish : t -> from:int -> name:string -> publish_result
(** Advertise that node [from] holds a copy of [name]. Idempotent per
    (name, node) pair. *)

type query_result = {
  route : Hlookup.result;
  owner : int;
  locations : int list;  (** advertisers, most recent first; [] = not found *)
  response_latency : float;  (** owner -> originator, direct *)
  total_latency : float;
}

val lookup : t -> from:int -> name:string -> query_result

val unpublish : t -> from:int -> name:string -> bool
(** Withdraw an advertisement locally (no routing modelled); true if it
    existed. *)

val stored_on : t -> int -> int
(** Number of records a node currently stores (load diagnostics). *)
