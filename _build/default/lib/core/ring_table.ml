module Id = Hashid.Id

type entry = { node : int; id : Id.t }

type t = {
  name : Ring_name.t;
  rid : Id.t;
  mutable members : entry list; (* sorted ascending by id, at most 4: 2 smallest + 2 largest *)
}

let name t = t.name
let ring_id t = t.rid

let create space nm = { name = nm; rid = Ring_name.ring_id space nm; members = [] }

(* Keep only the extremes: first two and last two of the sorted distinct list. *)
let squeeze sorted =
  let n = List.length sorted in
  if n <= 4 then sorted
  else
    List.filteri (fun i _ -> i < 2 || i >= n - 2) sorted

let insert_sorted e l =
  let rec go = function
    | [] -> [ e ]
    | x :: rest as all ->
        let c = Id.compare e.id x.id in
        if c < 0 then e :: all
        else if c = 0 then all (* same identifier: already represented *)
        else x :: go rest
  in
  go l

let of_members space nm entries =
  let t = create space nm in
  let sorted = List.fold_left (fun acc e -> insert_sorted e acc) [] entries in
  t.members <- squeeze sorted;
  t

let copy t = { t with members = t.members }
let entries t = t.members
let is_empty t = t.members = []
let any_member t = match t.members with [] -> None | e :: _ -> Some e

let should_register t id =
  let n = List.length t.members in
  if n < 4 then not (List.exists (fun e -> Id.equal e.id id) t.members)
  else
    match t.members with
    | [ _; second_smallest; second_largest; _ ] ->
        Id.compare id second_smallest.id < 0 || Id.compare id second_largest.id > 0
    | _ -> true

let register t e =
  let before = t.members in
  let after = squeeze (insert_sorted e before) in
  if after = before then false
  else begin
    t.members <- after;
    true
  end

let remove t node =
  let before = t.members in
  let after = List.filter (fun e -> e.node <> node) before in
  if List.length after = List.length before then false
  else begin
    t.members <- after;
    true
  end

let slots t =
  match List.rev t.members with
  | [] -> (None, None, None, None)
  | [ only ] -> (Some only, None, Some only, None)
  | largest :: second_largest :: _ -> (
      match t.members with
      | smallest :: second_smallest :: _ ->
          (Some largest, Some second_largest, Some smallest, Some second_smallest)
      | _ -> (Some largest, Some second_largest, None, None))

let pp fmt t =
  let l, l2, s, s2 = slots t in
  let pe fmt = function
    | None -> Format.pp_print_string fmt "-"
    | Some e -> Format.fprintf fmt "%a(n%d)" Id.pp e.id e.node
  in
  Format.fprintf fmt "ring %a [largest=%a 2nd-largest=%a smallest=%a 2nd-smallest=%a]"
    Ring_name.pp t.name pe l pe l2 pe s pe s2
