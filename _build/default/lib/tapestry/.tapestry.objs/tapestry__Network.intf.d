lib/tapestry/network.mli: Hashid Prng Topology
