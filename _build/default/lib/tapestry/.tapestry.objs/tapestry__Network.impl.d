lib/tapestry/network.ml: Array Char Hashid Hashtbl List Printf Prng String Topology
