lib/topology/inet.mli: Graph Latency Prng
