lib/topology/graph.ml: Array Hashtbl Queue
