lib/topology/transit_stub.mli: Latency Prng
