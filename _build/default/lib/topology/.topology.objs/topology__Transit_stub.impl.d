lib/topology/transit_stub.ml: Array Graph Latency Prng
