lib/topology/brite.mli: Latency Prng
