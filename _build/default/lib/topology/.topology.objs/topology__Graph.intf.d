lib/topology/graph.mli:
