lib/topology/model.mli: Latency Prng
