lib/topology/latency.ml: Array Dijkstra Graph Prng
