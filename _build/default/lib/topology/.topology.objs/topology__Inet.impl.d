lib/topology/inet.ml: Array Float Graph Hashtbl Latency List Option Printf Prng Stdlib
