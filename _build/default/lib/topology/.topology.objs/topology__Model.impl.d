lib/topology/model.ml: Brite Inet String Transit_stub
