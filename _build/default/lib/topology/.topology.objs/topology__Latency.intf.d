lib/topology/latency.mli: Graph Prng
