lib/topology/brite.ml: Array Graph Latency Prng
