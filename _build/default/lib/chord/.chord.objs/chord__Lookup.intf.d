lib/chord/lookup.mli: Hashid Network Topology
