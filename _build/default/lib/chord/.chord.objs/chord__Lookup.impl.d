lib/chord/lookup.ml: Finger_table Hashid List Network Topology
