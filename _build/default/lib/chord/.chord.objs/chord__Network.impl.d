lib/chord/network.ml: Array Finger_table Hashid Hashtbl Printf
