lib/chord/finger_table.mli: Hashid
