lib/chord/network.mli: Finger_table Hashid
