lib/chord/finger_table.ml: Array Hashid List
