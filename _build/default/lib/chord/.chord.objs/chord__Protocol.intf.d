lib/chord/protocol.mli: Hashid Simnet
