lib/chord/protocol.ml: Array Hashid Hashtbl List Option Simnet Stdlib
