module Id = Hashid.Id

type t = {
  space : Id.space;
  ids : Id.t array; (* sorted ascending; node i has ids.(i) *)
  hosts : int array;
  fingers : Finger_table.t array;
  succ_lists : int array array;
  by_id : (Id.t, int) Hashtbl.t;
}

let mk ~space ~ids ~hosts ~succ_list_len =
  let n = Array.length ids in
  if n = 0 then invalid_arg "Chord.Network: empty network";
  if Array.length hosts <> n then invalid_arg "Chord.Network: ids/hosts misaligned";
  (* sort peers by identifier, keeping host alignment *)
  let order = Array.init n (fun i -> i) in
  Array.sort (fun a b -> Id.compare ids.(a) ids.(b)) order;
  let sorted_ids = Array.map (fun i -> ids.(i)) order in
  let sorted_hosts = Array.map (fun i -> hosts.(i)) order in
  for i = 1 to n - 1 do
    if Id.equal sorted_ids.(i) sorted_ids.(i - 1) then
      invalid_arg "Chord.Network: duplicate identifiers"
  done;
  let member_nodes = Array.init n (fun i -> i) in
  let fingers =
    Array.init n (fun i ->
        Finger_table.build space ~owner:i ~owner_id:sorted_ids.(i) ~member_ids:sorted_ids
          ~member_nodes)
  in
  let r = min succ_list_len (n - 1) in
  let succ_lists = Array.init n (fun i -> Array.init r (fun k -> (i + k + 1) mod n)) in
  let by_id = Hashtbl.create (2 * n) in
  Array.iteri (fun i id -> Hashtbl.replace by_id id i) sorted_ids;
  { space; ids = sorted_ids; hosts = sorted_hosts; fingers; succ_lists; by_id }

let of_ids ~space ~ids ~hosts ?(succ_list_len = 8) () = mk ~space ~ids ~hosts ~succ_list_len

let build ~space ~hosts ?(succ_list_len = 8) ?(salt = "chord-peer") () =
  let n = Array.length hosts in
  let seen = Hashtbl.create (2 * n) in
  let ids =
    Array.init n (fun i ->
        (* regenerate on collision: only reachable in tiny test spaces *)
        let rec fresh attempt =
          let id = Id.of_hash space (Printf.sprintf "%s:%d:%d" salt i attempt) in
          if Hashtbl.mem seen id then fresh (attempt + 1)
          else begin
            Hashtbl.replace seen id ();
            id
          end
        in
        fresh 0)
  in
  mk ~space ~ids ~hosts ~succ_list_len

let space t = t.space
let size t = Array.length t.ids
let id t i = t.ids.(i)
let host t i = t.hosts.(i)
let successor t i = (i + 1) mod Array.length t.ids
let predecessor t i = (i + Array.length t.ids - 1) mod Array.length t.ids
let successor_list t i = Array.copy t.succ_lists.(i)
let finger_table t i = t.fingers.(i)
let find_node t key = Hashtbl.find_opt t.by_id key

let successor_of_key t key =
  let n = Array.length t.ids in
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if Id.compare t.ids.(mid) key < 0 then search (mid + 1) hi else search lo mid
  in
  let pos = search 0 n in
  if pos = n then 0 else pos

let total_finger_segments t =
  Array.fold_left (fun acc ft -> acc + Finger_table.distinct_count ft) 0 t.fingers
