(** Oracle-built Chord networks.

    [build] computes, directly from the sorted identifier array, exactly the
    state a correct, fully-stabilized Chord deployment converges to: sorted
    successor relationships, finger tables and successor lists. The
    message-level protocol in {!Protocol} is tested to converge to this same
    fixpoint; large-scale routing experiments start from it (building a
    10 000-node network through simulated joins would dominate runtime
    without changing any measured quantity — see DESIGN.md §5).

    Nodes are dense indices [0 .. size-1] ordered by identifier; node
    [(i+1) mod size] is node [i]'s ring successor. Each node carries the
    index of the topology end-host it runs on. *)

type t

val build :
  space:Hashid.Id.space ->
  hosts:int array ->
  ?succ_list_len:int ->
  ?salt:string ->
  unit ->
  t
(** One peer per element of [hosts] (the topology host each peer runs on).
    Peer identifiers are [Id.of_hash space (salt ^ index)], regenerated with
    a different suffix on the (tiny-space) event of a collision.
    [succ_list_len] defaults to 8 (Chord's [r] parameter). *)

val of_ids :
  space:Hashid.Id.space ->
  ids:Hashid.Id.t array ->
  hosts:int array ->
  ?succ_list_len:int ->
  unit ->
  t
(** Explicit identifiers (worked examples, tests). Raises [Invalid_argument]
    on duplicates or misaligned arrays. *)

val space : t -> Hashid.Id.space
val size : t -> int
val id : t -> int -> Hashid.Id.t
val host : t -> int -> int
val successor : t -> int -> int
val predecessor : t -> int -> int
val successor_list : t -> int -> int array
val finger_table : t -> int -> Finger_table.t

val find_node : t -> Hashid.Id.t -> int option
(** Node with exactly this identifier. *)

val successor_of_key : t -> Hashid.Id.t -> int
(** The node that owns a key: first node clockwise from it (inclusive). *)

val total_finger_segments : t -> int
(** Sum of distinct finger-table entries over all nodes (cost model). *)
