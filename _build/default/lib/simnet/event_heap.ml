type t = {
  mutable time : float array;
  mutable seq : int array;
  mutable thunk : (unit -> unit) array;
  mutable size : int;
  mutable next_seq : int;
}

let nop () = ()

let create () =
  { time = Array.make 64 0.0; seq = Array.make 64 0; thunk = Array.make 64 nop; size = 0; next_seq = 0 }

let grow h =
  let cap = Array.length h.time in
  let time = Array.make (2 * cap) 0.0
  and seq = Array.make (2 * cap) 0
  and thunk = Array.make (2 * cap) nop in
  Array.blit h.time 0 time 0 h.size;
  Array.blit h.seq 0 seq 0 h.size;
  Array.blit h.thunk 0 thunk 0 h.size;
  h.time <- time;
  h.seq <- seq;
  h.thunk <- thunk

(* event i precedes j: earlier time, or same time and earlier sequence *)
let before h i j = h.time.(i) < h.time.(j) || (h.time.(i) = h.time.(j) && h.seq.(i) < h.seq.(j))

let swap h i j =
  let t = h.time.(i) and s = h.seq.(i) and f = h.thunk.(i) in
  h.time.(i) <- h.time.(j);
  h.seq.(i) <- h.seq.(j);
  h.thunk.(i) <- h.thunk.(j);
  h.time.(j) <- t;
  h.seq.(j) <- s;
  h.thunk.(j) <- f

let push h ~time f =
  if h.size = Array.length h.time then grow h;
  h.time.(h.size) <- time;
  h.seq.(h.size) <- h.next_seq;
  h.thunk.(h.size) <- f;
  h.next_seq <- h.next_seq + 1;
  let i = ref h.size in
  h.size <- h.size + 1;
  while !i > 0 && before h !i ((!i - 1) / 2) do
    swap h !i ((!i - 1) / 2);
    i := (!i - 1) / 2
  done

let pop h =
  if h.size = 0 then None
  else begin
    let t = h.time.(0) and f = h.thunk.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.time.(0) <- h.time.(h.size);
      h.seq.(0) <- h.seq.(h.size);
      h.thunk.(0) <- h.thunk.(h.size);
      h.thunk.(h.size) <- nop;
      let i = ref 0 and continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let best = ref !i in
        if l < h.size && before h l !best then best := l;
        if r < h.size && before h r !best then best := r;
        if !best <> !i then begin
          swap h !i !best;
          i := !best
        end
        else continue := false
      done
    end
    else h.thunk.(0) <- nop;
    Some (t, f)
  end

let size h = h.size
let is_empty h = h.size = 0
