(** Priority queue of timestamped thunks — the simulator's event list.

    Events with equal timestamps fire in insertion order (a monotonically
    increasing sequence number breaks ties), which keeps protocol simulations
    deterministic. *)

type t

val create : unit -> t
val push : t -> time:float -> (unit -> unit) -> unit
val pop : t -> (float * (unit -> unit)) option
(** Earliest event, or [None] when empty. *)

val size : t -> int
val is_empty : t -> bool
