lib/simnet/engine.mli: Prng
