lib/simnet/engine.ml: Array Event_heap Float Prng
