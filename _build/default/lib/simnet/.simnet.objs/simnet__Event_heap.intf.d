lib/simnet/event_heap.mli:
