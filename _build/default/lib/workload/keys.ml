type t = Uniform | Zipf of { catalogue : int; alpha : float }

let file_key space name = Hashid.Id.of_hash space ("file:" ^ name)

let generator t space rng =
  match t with
  | Uniform -> fun () -> Hashid.Id.random space rng
  | Zipf { catalogue; alpha } ->
      if catalogue <= 0 then invalid_arg "Keys.generator: empty catalogue";
      let table = Prng.Dist.make_zipf_table ~n:catalogue ~alpha in
      let keys = Array.init catalogue (fun i -> file_key space (Printf.sprintf "doc-%d" i)) in
      fun () -> keys.(Prng.Dist.zipf_draw rng table)
