(** Routing-request streams: (originating node, key) pairs.

    The paper's standard workload is "100 000 randomly generated routing
    requests": uniform origin, uniform key. *)

type request = { origin : int; key : Hashid.Id.t }

type spec = {
  count : int;
  keys : Keys.t;
  origin_bias : float;
      (** 0 = uniform origins; > 0 skews origins Zipf-like towards
          low-numbered nodes (hot-spot senders) with this exponent *)
}

val paper_default : count:int -> spec
(** Uniform keys and origins, [count] requests. *)

val iter :
  spec -> nodes:int -> space:Hashid.Id.space -> Prng.Rng.t -> (request -> unit) -> unit
(** Stream the requests without materialising them. *)

val to_array : spec -> nodes:int -> space:Hashid.Id.space -> Prng.Rng.t -> request array
