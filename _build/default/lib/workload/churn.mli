(** Churn traces: timed join/leave/fail events for protocol-level
    simulations.

    Generates a Poisson-ish schedule of node arrivals and departures over a
    window, used by the churn example and the protocol robustness tests. *)

type event = { at : float;  (** ms *) node : int; kind : kind }
and kind = Join | Leave | Fail

type spec = {
  horizon : float;  (** trace length, ms *)
  join_rate : float;  (** expected joins per second *)
  fail_rate : float;  (** expected silent failures per second *)
  leave_rate : float;  (** expected graceful leaves per second *)
}

val generate :
  spec -> initial:int -> pool:int -> Prng.Rng.t -> event list
(** Nodes [0 .. initial-1] are assumed present at time 0; events use fresh
    node numbers from [initial .. pool-1] for joins and pick random live
    nodes for leaves/failures. Events are sorted by time. At least one node
    always stays alive. *)
