(** Key (file identifier) generators.

    The paper's experiments use uniformly random keys; Zipf popularity is
    provided for the file-sharing example workloads (P2P file popularity is
    famously heavy-tailed). *)

type t =
  | Uniform  (** independent uniform identifiers *)
  | Zipf of { catalogue : int; alpha : float }
      (** keys drawn from a fixed catalogue of hashed file names with
          Zipf-distributed popularity *)

val generator : t -> Hashid.Id.space -> Prng.Rng.t -> unit -> Hashid.Id.t
(** Freeze a generator (precomputes the Zipf table and catalogue once). *)

val file_key : Hashid.Id.space -> string -> Hashid.Id.t
(** The key a named file is stored under — SHA-1 of the name, as in the
    paper. *)
