lib/workload/keys.ml: Array Hashid Printf Prng
