lib/workload/keys.mli: Hashid Prng
