lib/workload/churn.ml: Float Hashtbl List Prng
