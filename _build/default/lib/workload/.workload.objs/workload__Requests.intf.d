lib/workload/requests.mli: Hashid Keys Prng
