lib/workload/requests.ml: Array Hashid Keys List Prng
