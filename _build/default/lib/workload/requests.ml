type request = { origin : int; key : Hashid.Id.t }
type spec = { count : int; keys : Keys.t; origin_bias : float }

let paper_default ~count = { count; keys = Keys.Uniform; origin_bias = 0.0 }

let iter spec ~nodes ~space rng f =
  if nodes <= 0 then invalid_arg "Requests.iter: no nodes";
  let next_key = Keys.generator spec.keys space rng in
  let next_origin =
    if spec.origin_bias <= 0.0 then fun () -> Prng.Rng.int rng nodes
    else begin
      let table = Prng.Dist.make_zipf_table ~n:nodes ~alpha:spec.origin_bias in
      fun () -> Prng.Dist.zipf_draw rng table
    end
  in
  for _ = 1 to spec.count do
    f { origin = next_origin (); key = next_key () }
  done

let to_array spec ~nodes ~space rng =
  let acc = ref [] in
  iter spec ~nodes ~space rng (fun r -> acc := r :: !acc);
  Array.of_list (List.rev !acc)
