let fig2_hop_overhead_range = (0.0078, 0.034)
let fig2_hop_growth_1000_to_10000 = 0.32

let fig3_latency_ratio = function
  | Topology.Model.Transit_stub -> 0.518
  | Topology.Model.Inet -> 0.5341
  | Topology.Model.Brite -> 0.6247

let fig4_chord_mean_hops = 6.4933
let fig4_hieras_mean_hops = 6.5937
let fig4_hop_overhead = 0.0155
let fig4_top_layer_hops = 1.887
let fig4_lower_hop_share = 0.7138

let fig5_chord_mean_latency = 511.47
let fig5_hieras_mean_latency = 276.53
let fig5_latency_ratio = 0.5407
let fig5_top_link_latency = 79.0
let fig5_lower_link_latency = 27.758
let fig5_lower_latency_share = 0.4724

let fig7_two_landmark_gain = 0.0712
let fig7_best_landmarks = 8
let fig7_best_latency_ratio = 0.4331

let fig8_depth_hop_overhead_range = (0.0029, 0.0165)
let fig9_depth3_gain_range = (0.0964, 0.1615)
let fig9_depth4_gain_range = (0.0212, 0.0542)

let pct r = Printf.sprintf "%.2f%%" (100.0 *. r)
