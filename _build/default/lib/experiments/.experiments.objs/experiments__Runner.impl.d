lib/experiments/runner.ml: Array Binning Chord Config Hashid Hieras Printf Prng Stats Topology Workload
