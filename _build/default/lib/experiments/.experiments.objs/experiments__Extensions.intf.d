lib/experiments/extensions.mli: Config Report
