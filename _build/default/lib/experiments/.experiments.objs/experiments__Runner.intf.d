lib/experiments/runner.mli: Chord Config Hieras Stats Topology
