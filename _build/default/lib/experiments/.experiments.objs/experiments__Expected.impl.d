lib/experiments/expected.ml: Printf Topology
