lib/experiments/expected.mli: Topology
