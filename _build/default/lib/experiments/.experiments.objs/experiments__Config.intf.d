lib/experiments/config.mli: Format Topology
