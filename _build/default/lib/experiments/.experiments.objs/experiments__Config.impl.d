lib/experiments/config.ml: Format List Topology
