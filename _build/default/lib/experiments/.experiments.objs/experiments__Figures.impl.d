lib/experiments/figures.ml: Array Binning Char Chord Config Expected Float Hashid Hieras List Printf Prng Report Runner Stats Topology
