lib/experiments/extensions.ml: Array Binning Can Chord Config Expected Hashid Hieras List Pastry Printf Prng Report Runner Stats String Tapestry
