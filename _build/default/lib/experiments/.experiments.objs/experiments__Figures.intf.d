lib/experiments/figures.mli: Config Report
