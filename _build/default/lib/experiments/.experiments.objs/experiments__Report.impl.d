lib/experiments/report.ml: Buffer Filename List Printf Stats String Sys
