(** The paper's reported numbers, for side-by-side comparison in reports.

    Values transcribed from Sections 4.2–4.5 of the paper; [None] where the
    paper gives only a curve without a number. *)

val fig2_hop_overhead_range : float * float
(** HIERAS takes 0.78%..3.40% more hops than Chord (TS model, all sizes). *)

val fig2_hop_growth_1000_to_10000 : float
(** Average hops grow ~32% from 1000 to 10000 nodes. *)

val fig3_latency_ratio : Topology.Model.kind -> float
(** HIERAS latency as a fraction of Chord: TS 0.518, Inet 0.5341,
    BRITE 0.6247. *)

val fig4_chord_mean_hops : float (* 6.4933 *)
val fig4_hieras_mean_hops : float (* 6.5937 *)
val fig4_hop_overhead : float (* 0.0155 *)
val fig4_top_layer_hops : float (* 1.887 *)
val fig4_lower_hop_share : float (* 0.7138 *)

val fig5_chord_mean_latency : float (* 511.47 ms *)
val fig5_hieras_mean_latency : float (* 276.53 ms *)
val fig5_latency_ratio : float (* 0.5407 *)
val fig5_top_link_latency : float (* 79 ms *)
val fig5_lower_link_latency : float (* 27.758 ms *)
val fig5_lower_latency_share : float (* 0.4724 *)

val fig7_two_landmark_gain : float
(** With 2 landmarks HIERAS is only 7.12% below Chord. *)

val fig7_best_landmarks : int (* 8 *)
val fig7_best_latency_ratio : float (* 0.4331 *)

val fig8_depth_hop_overhead_range : float * float
(** 4-layer vs 2-layer hops: +0.29%..+1.65%. *)

val fig9_depth3_gain_range : float * float
(** Latency reduction 2->3 layers: 9.64%..16.15%. *)

val fig9_depth4_gain_range : float * float
(** Latency reduction 3->4 layers: 2.12%..5.42% (can be negative). *)

val pct : float -> string
(** Format a ratio as a percentage with 2 decimals. *)
