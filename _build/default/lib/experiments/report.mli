(** Report sections: one per table/figure of the paper. *)

type section = {
  id : string;  (** "fig2", "table1", ... *)
  title : string;
  table : Stats.Text_table.t;  (** the rows/series the paper plots *)
  notes : string list;  (** paper-vs-measured commentary *)
}

val render : section -> string
val print : section -> unit

val print_all : section list -> unit
(** Render every section separated by blank lines. *)

val to_csv : section -> string
(** The section's table as CSV (RFC-4180 quoting); notes become trailing
    comment lines prefixed with [#]. *)

val write_csv : section -> dir:string -> string
(** Write [<dir>/<id>.csv] (creating [dir] if needed); returns the path. *)
