type section = {
  id : string;
  title : string;
  table : Stats.Text_table.t;
  notes : string list;
}

let render s =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "=== %s: %s ===\n" s.id s.title);
  Buffer.add_string buf (Stats.Text_table.render s.table);
  List.iter (fun n -> Buffer.add_string buf ("  * " ^ n ^ "\n")) s.notes;
  Buffer.contents buf

let print s = print_string (render s)

let csv_cell c =
  if String.exists (fun ch -> ch = ',' || ch = '"' || ch = '\n') c then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' c) ^ "\""
  else c

let to_csv s =
  let buf = Buffer.create 256 in
  let emit cells =
    Buffer.add_string buf (String.concat "," (List.map csv_cell cells));
    Buffer.add_char buf '\n'
  in
  emit (Stats.Text_table.headers s.table);
  List.iter emit (Stats.Text_table.rows s.table);
  List.iter (fun n -> Buffer.add_string buf ("# " ^ n ^ "\n")) s.notes;
  Buffer.contents buf

let write_csv s ~dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir (s.id ^ ".csv") in
  let oc = open_out path in
  output_string oc (to_csv s);
  close_out oc;
  path

let print_all sections =
  List.iter
    (fun s ->
      print s;
      print_newline ())
    sections
