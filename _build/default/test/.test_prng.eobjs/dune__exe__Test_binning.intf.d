test/test_binning.mli:
