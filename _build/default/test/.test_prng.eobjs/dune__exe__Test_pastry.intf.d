test/test_pastry.mli:
