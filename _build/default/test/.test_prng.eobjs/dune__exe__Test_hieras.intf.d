test/test_hieras.mli:
