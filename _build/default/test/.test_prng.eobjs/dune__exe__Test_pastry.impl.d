test/test_pastry.ml: Alcotest Array Hashid List Pastry Printf Prng QCheck QCheck_alcotest Topology
