test/test_can.ml: Alcotest Array Binning Can Hashid Hashtbl List Printf Prng QCheck QCheck_alcotest Stats Topology
