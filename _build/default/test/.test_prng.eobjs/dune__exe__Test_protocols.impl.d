test/test_protocols.ml: Alcotest Array Binning Chord Hashid Hashtbl Hieras List Printf Prng Simnet Topology
