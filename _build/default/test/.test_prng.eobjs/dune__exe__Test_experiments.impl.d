test/test_experiments.ml: Alcotest Array Experiments Float Hieras Lazy List Stats String Topology
