test/test_hash.ml: Alcotest Bool Float Format Hashid Hashtbl List Printf Prng QCheck QCheck_alcotest String
