test/test_simnet.ml: Alcotest Array List Prng Simnet
