test/test_prng.ml: Alcotest Array Float Fun List Prng QCheck QCheck_alcotest
