test/test_tapestry.ml: Alcotest Array Hashid List Printf Prng QCheck QCheck_alcotest Tapestry Topology
