test/test_chord.ml: Alcotest Array Chord Hashid Hashtbl List Option Printf Prng QCheck QCheck_alcotest Topology
