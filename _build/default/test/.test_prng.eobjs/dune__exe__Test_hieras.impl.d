test/test_hieras.ml: Alcotest Array Binning Chord Hashid Hieras List Printf Prng QCheck QCheck_alcotest Stats Topology
