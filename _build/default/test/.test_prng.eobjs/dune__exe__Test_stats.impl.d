test/test_stats.ml: Alcotest Array Float Format List Prng QCheck QCheck_alcotest Stats String
