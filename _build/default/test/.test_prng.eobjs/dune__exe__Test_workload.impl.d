test/test_workload.ml: Alcotest Array Hashid Hashtbl List Printf Prng QCheck QCheck_alcotest Workload
