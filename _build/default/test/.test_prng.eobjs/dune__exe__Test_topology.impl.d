test/test_topology.ml: Alcotest Array List Prng QCheck QCheck_alcotest Stats Topology
