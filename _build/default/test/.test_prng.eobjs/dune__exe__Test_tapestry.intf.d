test/test_tapestry.mli:
