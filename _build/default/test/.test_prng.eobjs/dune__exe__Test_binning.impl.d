test/test_binning.ml: Alcotest Array Binning Float List Prng QCheck QCheck_alcotest String Topology
