(* Tests for the HIERAS core library: ring naming, ring tables, the layered
   oracle network, hierarchical routing and the cost model. *)

module Id = Hashid.Id
module RN = Hieras.Ring_name
module RT = Hieras.Ring_table
module HN = Hieras.Hnetwork
module HL = Hieras.Hlookup
module Cost = Hieras.Cost

let space8 = Id.space ~bits:8

(* --- Ring_name ------------------------------------------------------------- *)

let test_ring_name_basics () =
  let r = RN.make ~layer:2 ~order:"012" in
  Alcotest.(check int) "layer" 2 (RN.layer r);
  Alcotest.(check string) "order" "012" (RN.order r);
  Alcotest.(check string) "to_string" "L2/012" (RN.to_string r);
  Alcotest.(check bool) "equal" true (RN.equal r (RN.make ~layer:2 ~order:"012"));
  Alcotest.(check bool) "layer distinguishes" false (RN.equal r (RN.make ~layer:3 ~order:"012"))

let test_ring_name_validation () =
  Alcotest.check_raises "layer 1" (Invalid_argument "Ring_name.make: lower-layer rings start at layer 2")
    (fun () -> ignore (RN.make ~layer:1 ~order:"0"));
  Alcotest.check_raises "empty order" (Invalid_argument "Ring_name.make: empty order") (fun () ->
      ignore (RN.make ~layer:2 ~order:""))

let test_ring_id_deterministic () =
  let a = RN.ring_id space8 (RN.make ~layer:2 ~order:"012") in
  let b = RN.ring_id space8 (RN.make ~layer:2 ~order:"012") in
  let c = RN.ring_id space8 (RN.make ~layer:3 ~order:"012") in
  Alcotest.(check bool) "same name same id" true (Id.equal a b);
  Alcotest.(check bool) "layer changes id" false (Id.equal a c)

let test_ring_name_compare_total () =
  let l = [ RN.make ~layer:3 ~order:"0"; RN.make ~layer:2 ~order:"1"; RN.make ~layer:2 ~order:"0" ] in
  let sorted = List.sort RN.compare l in
  Alcotest.(check (list string)) "layer then order" [ "L2/0"; "L2/1"; "L3/0" ]
    (List.map RN.to_string sorted)

(* --- Ring_table --------------------------------------------------------------- *)

let entry node v = { RT.node; id = Id.of_int space8 v }
let rname = RN.make ~layer:2 ~order:"01"

let test_ring_table_extremes () =
  let rt = RT.of_members space8 rname [ entry 0 50; entry 1 10; entry 2 200; entry 3 90; entry 4 150 ] in
  let ids = List.map (fun e -> Id.to_int space8 e.RT.id) (RT.entries rt) in
  Alcotest.(check (list int)) "two smallest + two largest" [ 10; 50; 150; 200 ]
    (List.sort compare ids);
  let l, l2, s, s2 = RT.slots rt in
  let v = function Some e -> Id.to_int space8 e.RT.id | None -> -1 in
  Alcotest.(check int) "largest" 200 (v l);
  Alcotest.(check int) "second largest" 150 (v l2);
  Alcotest.(check int) "smallest" 10 (v s);
  Alcotest.(check int) "second smallest" 50 (v s2)

let test_ring_table_small () =
  let rt = RT.of_members space8 rname [ entry 0 42 ] in
  Alcotest.(check int) "single entry" 1 (List.length (RT.entries rt));
  Alcotest.(check bool) "not empty" false (RT.is_empty rt);
  let rt0 = RT.create space8 rname in
  Alcotest.(check bool) "fresh table empty" true (RT.is_empty rt0);
  Alcotest.(check bool) "any_member none" true (RT.any_member rt0 = None)

let test_should_register () =
  let rt = RT.of_members space8 rname [ entry 0 50; entry 1 10; entry 2 200; entry 3 90 ] in
  (* slots: 10,50 (small) 90,200 (large) *)
  Alcotest.(check bool) "smaller than 2nd smallest" true (RT.should_register rt (Id.of_int space8 5));
  Alcotest.(check bool) "larger than 2nd largest" true (RT.should_register rt (Id.of_int space8 95));
  Alcotest.(check bool) "middle value" false (RT.should_register rt (Id.of_int space8 60));
  (* underfull tables always accept new identifiers *)
  let rt2 = RT.of_members space8 rname [ entry 0 50 ] in
  Alcotest.(check bool) "underfull accepts" true (RT.should_register rt2 (Id.of_int space8 60));
  Alcotest.(check bool) "duplicate id refused" false (RT.should_register rt2 (Id.of_int space8 50))

let test_register_and_remove () =
  let rt = RT.of_members space8 rname [ entry 0 50; entry 1 10 ] in
  Alcotest.(check bool) "register changes" true (RT.register rt (entry 2 200));
  Alcotest.(check bool) "re-register same id no-ops" false (RT.register rt (entry 2 200));
  Alcotest.(check bool) "remove present" true (RT.remove rt 2);
  Alcotest.(check bool) "remove absent" false (RT.remove rt 2);
  Alcotest.(check int) "back to 2" 2 (List.length (RT.entries rt))

let test_register_keeps_extremes () =
  let rt = RT.of_members space8 rname [ entry 0 10; entry 1 20; entry 2 30; entry 3 40 ] in
  ignore (RT.register rt (entry 4 5));
  let ids = List.sort compare (List.map (fun e -> Id.to_int space8 e.RT.id) (RT.entries rt)) in
  Alcotest.(check (list int)) "5 displaced 20 or 30" [ 5; 10; 30; 40 ] ids

(* --- Hnetwork -------------------------------------------------------------------- *)

let build_small ?(nodes = 200) ?(depth = 2) ?(landmarks = 4) seed =
  let rng = Prng.Rng.create ~seed in
  let lat = Topology.Transit_stub.generate ~hosts:nodes rng in
  let chord =
    Chord.Network.build ~space:Id.sha1_space ~hosts:(Array.init nodes (fun i -> i)) ()
  in
  let lm = Binning.Landmark.choose_spread lat ~count:landmarks rng in
  (lat, chord, HN.build ~chord ~lat ~landmarks:lm ~depth ())

let test_hnetwork_validation () =
  let rng = Prng.Rng.create ~seed:1 in
  let lat = Topology.Transit_stub.generate ~hosts:16 rng in
  let chord = Chord.Network.build ~space:Id.sha1_space ~hosts:(Array.init 16 (fun i -> i)) () in
  let lm = Binning.Landmark.choose_spread lat ~count:2 rng in
  Alcotest.check_raises "depth 1" (Invalid_argument "Hnetwork.build: depth must be >= 2")
    (fun () -> ignore (HN.build ~chord ~lat ~landmarks:lm ~depth:1 ()))

let test_rings_partition_nodes () =
  let _, chord, hnet = build_small 2 in
  let n = Chord.Network.size chord in
  let names = HN.ring_names hnet ~layer:2 in
  let total =
    List.fold_left
      (fun acc rn -> acc + Array.length (HN.ring_members hnet ~layer:2 ~order:(RN.order rn)))
      0 names
  in
  Alcotest.(check int) "members cover all nodes exactly once" n total;
  Alcotest.(check int) "ring_count agrees" (List.length names) (HN.ring_count hnet ~layer:2);
  (* each node's recorded order matches its ring *)
  for node = 0 to n - 1 do
    let order = HN.order_of_node hnet ~layer:2 node in
    let members = HN.ring_members hnet ~layer:2 ~order in
    Alcotest.(check bool) "node in its ring" true (Array.exists (( = ) node) members)
  done

let test_ring_members_sorted () =
  let _, chord, hnet = build_small 3 in
  List.iter
    (fun rn ->
      let ms = HN.ring_members hnet ~layer:2 ~order:(RN.order rn) in
      for i = 1 to Array.length ms - 1 do
        Alcotest.(check bool) "ascending ids" true
          (Id.compare (Chord.Network.id chord ms.(i - 1)) (Chord.Network.id chord ms.(i)) < 0)
      done)
    (HN.ring_names hnet ~layer:2)

let test_ring_successor_cycles () =
  let _, _, hnet = build_small 4 in
  let n = HN.size hnet in
  for node = 0 to n - 1 do
    let succ = HN.ring_successor hnet ~layer:2 node in
    Alcotest.(check int) "pred . succ = id" node (HN.ring_predecessor hnet ~layer:2 succ);
    Alcotest.(check string) "successor in same ring" (HN.order_of_node hnet ~layer:2 node)
      (HN.order_of_node hnet ~layer:2 succ)
  done

let test_nesting_invariant () =
  let _, _, hnet = build_small ~depth:4 5 in
  Alcotest.(check bool) "nested rings" true (HN.nesting_ok hnet)

let test_fingers_restricted_to_ring () =
  let _, _, hnet = build_small 6 in
  let n = HN.size hnet in
  for node = 0 to n - 1 do
    let order = HN.order_of_node hnet ~layer:2 node in
    let ft = HN.finger_table hnet ~layer:2 node in
    Array.iter
      (fun (_, target) ->
        Alcotest.(check string) "finger stays in ring" order
          (HN.order_of_node hnet ~layer:2 target))
      (Chord.Finger_table.segments ft)
  done

let test_ring_tables () =
  let _, chord, hnet = build_small 7 in
  List.iter
    (fun rn ->
      match HN.ring_table hnet ~layer:2 ~order:(RN.order rn) with
      | None -> Alcotest.fail "every ring has a table"
      | Some rt ->
          let members = HN.ring_members hnet ~layer:2 ~order:(RN.order rn) in
          Alcotest.(check bool) "table entries are ring members" true
            (List.for_all
               (fun e -> Array.exists (( = ) e.RT.node) members)
               (RT.entries rt));
          (* the extremes really are the extremes *)
          let ids = Array.map (Chord.Network.id chord) members in
          let sorted = Array.copy ids in
          Array.sort Id.compare sorted;
          let l, _, s, _ = RT.slots rt in
          (match (l, s) with
          | Some l, Some s ->
              Alcotest.(check bool) "largest" true (Id.equal l.RT.id sorted.(Array.length sorted - 1));
              Alcotest.(check bool) "smallest" true (Id.equal s.RT.id sorted.(0))
          | _ -> Alcotest.fail "slots populated"))
    (HN.ring_names hnet ~layer:2)

let test_ring_table_manager_is_successor () =
  let _, chord, hnet = build_small 8 in
  List.iter
    (fun rn ->
      let rid = RN.ring_id (Chord.Network.space chord) rn in
      Alcotest.(check int) "manager = successor of ring id"
        (Chord.Network.successor_of_key chord rid)
        (HN.ring_table_manager hnet rn))
    (HN.ring_names hnet ~layer:2)

let test_layer_bounds_checked () =
  let _, _, hnet = build_small 9 in
  Alcotest.check_raises "layer 3 on depth-2" (Invalid_argument "Hnetwork: layer out of range")
    (fun () -> ignore (HN.ring_count hnet ~layer:3));
  Alcotest.check_raises "layer 1 ring order" (Invalid_argument "Hnetwork: layer out of range")
    (fun () -> ignore (HN.order_of_node hnet ~layer:1 0))

(* --- Hlookup ------------------------------------------------------------------------ *)

let test_route_correctness_exhaustive () =
  let _, chord, hnet = build_small ~nodes:64 10 in
  let rng = Prng.Rng.create ~seed:11 in
  for _ = 1 to 500 do
    let key = Id.random Id.sha1_space rng in
    let origin = Prng.Rng.int rng 64 in
    let r = HL.route_checked hnet ~origin ~key in
    Alcotest.(check int) "destination owns key" (Chord.Network.successor_of_key chord key)
      r.HL.destination
  done

let test_route_accounting_consistent () =
  let _, _, hnet = build_small ~nodes:100 ~depth:3 12 in
  let rng = Prng.Rng.create ~seed:13 in
  for _ = 1 to 300 do
    let key = Id.random Id.sha1_space rng in
    let origin = Prng.Rng.int rng 100 in
    let r = HL.route hnet ~origin ~key in
    Alcotest.(check int) "per-layer hops sum" r.HL.hop_count
      (Array.fold_left ( + ) 0 r.HL.hops_per_layer);
    Alcotest.(check (float 1e-6)) "per-layer latency sums" r.HL.latency
      (Array.fold_left ( +. ) 0.0 r.HL.latency_per_layer);
    Alcotest.(check int) "hops list length" r.HL.hop_count (List.length r.HL.hops);
    Alcotest.(check (float 1e-6)) "hop latencies sum" r.HL.latency
      (List.fold_left (fun acc (h : HL.hop) -> acc +. h.HL.latency) 0.0 r.HL.hops);
    Alcotest.(check bool) "finished_at in range" true
      (r.HL.finished_at_layer >= 1 && r.HL.finished_at_layer <= 3)
  done

let test_route_owner_origin () =
  let _, chord, hnet = build_small ~nodes:32 14 in
  (* pick a key owned by its origin *)
  let origin = 5 in
  let key = Chord.Network.id chord origin in
  let r = HL.route hnet ~origin ~key in
  Alcotest.(check int) "zero hops" 0 r.HL.hop_count;
  Alcotest.(check int) "stays home" origin r.HL.destination

let test_route_lower_layer_stays_in_ring () =
  let _, _, hnet = build_small ~nodes:150 15 in
  let rng = Prng.Rng.create ~seed:16 in
  for _ = 1 to 200 do
    let key = Id.random Id.sha1_space rng in
    let origin = Prng.Rng.int rng 150 in
    let r = HL.route hnet ~origin ~key in
    let origin_order = HN.order_of_node hnet ~layer:2 origin in
    List.iter
      (fun h ->
        if h.HL.layer = 2 then begin
          Alcotest.(check string) "layer-2 hop stays in origin's ring" origin_order
            (HN.order_of_node hnet ~layer:2 h.HL.from_node);
          Alcotest.(check string) "target too" origin_order
            (HN.order_of_node hnet ~layer:2 h.HL.to_node)
        end)
      r.HL.hops
  done

let test_hieras_vs_chord_on_workload () =
  (* the headline claim at small scale: comparable hops, lower latency *)
  let lat, chord, hnet = build_small ~nodes:400 ~landmarks:6 17 in
  let rng = Prng.Rng.create ~seed:18 in
  let ch = Stats.Summary.create () and hh = Stats.Summary.create () in
  let cl = Stats.Summary.create () and hl = Stats.Summary.create () in
  for _ = 1 to 3000 do
    let key = Id.random Id.sha1_space rng in
    let origin = Prng.Rng.int rng 400 in
    let rc = Chord.Lookup.route chord lat ~origin ~key in
    let rh = HL.route hnet ~origin ~key in
    Stats.Summary.add ch (float_of_int rc.Chord.Lookup.hop_count);
    Stats.Summary.add hh (float_of_int rh.HL.hop_count);
    Stats.Summary.add cl rc.Chord.Lookup.latency;
    Stats.Summary.add hl rh.HL.latency
  done;
  let hop_overhead = (Stats.Summary.mean hh /. Stats.Summary.mean ch) -. 1.0 in
  let latency_ratio = Stats.Summary.mean hl /. Stats.Summary.mean cl in
  Alcotest.(check bool) "hop overhead below 15%" true (hop_overhead < 0.15);
  Alcotest.(check bool) "latency materially lower" true (latency_ratio < 0.85)

(* --- Location service ------------------------------------------------------------ *)

let test_location_publish_lookup () =
  let _, chord, hnet = build_small ~nodes:100 30 in
  let svc = Hieras.Location.create hnet in
  let pub = Hieras.Location.publish svc ~from:7 ~name:"report.pdf" in
  Alcotest.(check int) "record on the key's owner"
    (Chord.Network.successor_of_key chord
       (Id.of_hash Id.sha1_space "file:report.pdf"))
    pub.Hieras.Location.owner;
  let q = Hieras.Location.lookup svc ~from:42 ~name:"report.pdf" in
  Alcotest.(check (list int)) "advertiser found" [ 7 ] q.Hieras.Location.locations;
  Alcotest.(check int) "same owner" pub.Hieras.Location.owner q.Hieras.Location.owner;
  Alcotest.(check (float 1e-6)) "total = route + response"
    (q.Hieras.Location.route.HL.latency +. q.Hieras.Location.response_latency)
    q.Hieras.Location.total_latency

let test_location_missing_file () =
  let _, _, hnet = build_small ~nodes:64 31 in
  let svc = Hieras.Location.create hnet in
  let q = Hieras.Location.lookup svc ~from:3 ~name:"nowhere.txt" in
  Alcotest.(check (list int)) "not found" [] q.Hieras.Location.locations

let test_location_multiple_publishers () =
  let _, _, hnet = build_small ~nodes:64 32 in
  let svc = Hieras.Location.create hnet in
  ignore (Hieras.Location.publish svc ~from:1 ~name:"x");
  ignore (Hieras.Location.publish svc ~from:2 ~name:"x");
  ignore (Hieras.Location.publish svc ~from:1 ~name:"x");
  (* idempotent *)
  let q = Hieras.Location.lookup svc ~from:9 ~name:"x" in
  Alcotest.(check (list int)) "both advertisers, newest first" [ 2; 1 ]
    q.Hieras.Location.locations

let test_location_unpublish () =
  let _, _, hnet = build_small ~nodes:64 33 in
  let svc = Hieras.Location.create hnet in
  ignore (Hieras.Location.publish svc ~from:5 ~name:"y");
  Alcotest.(check bool) "withdrawn" true (Hieras.Location.unpublish svc ~from:5 ~name:"y");
  Alcotest.(check bool) "second withdrawal is a no-op" false
    (Hieras.Location.unpublish svc ~from:5 ~name:"y");
  let q = Hieras.Location.lookup svc ~from:9 ~name:"y" in
  Alcotest.(check (list int)) "gone" [] q.Hieras.Location.locations

let test_location_load_accounting () =
  let _, _, hnet = build_small ~nodes:64 34 in
  let svc = Hieras.Location.create hnet in
  for i = 0 to 19 do
    ignore (Hieras.Location.publish svc ~from:(i mod 7) ~name:(Printf.sprintf "f%d" i))
  done;
  let total = ref 0 in
  for node = 0 to 63 do
    total := !total + Hieras.Location.stored_on svc node
  done;
  Alcotest.(check int) "every record counted once" 20 !total

(* --- Cost ---------------------------------------------------------------------------- *)

let test_cost_entry_bytes () =
  Alcotest.(check int) "sha1 entry" 26 (Cost.entry_bytes Id.sha1_space);
  Alcotest.(check int) "8-bit entry" 7 (Cost.entry_bytes space8)

let test_cost_per_node_and_totals () =
  let _, _, hnet = build_small ~nodes:120 ~depth:3 19 in
  let totals = Cost.totals hnet ~succ_list_len:8 in
  Alcotest.(check int) "nodes" 120 totals.Cost.nodes;
  Alcotest.(check int) "depth" 3 totals.Cost.depth;
  Alcotest.(check bool) "hieras costs more state than chord" true
    (totals.Cost.state_overhead_ratio > 1.0);
  Alcotest.(check bool) "but only modestly (< 4x)" true (totals.Cost.state_overhead_ratio < 4.0);
  (* lower layers have no more distinct fingers than the global layer *)
  let segs = totals.Cost.mean_finger_segments_per_layer in
  Alcotest.(check int) "one entry per layer" 3 (Array.length segs);
  Alcotest.(check bool) "lower layers smaller tables" true (segs.(1) <= segs.(0));
  (* ring tables exist and are counted *)
  Alcotest.(check bool) "ring tables counted" true
    (totals.Cost.ring_tables
     = HN.ring_count hnet ~layer:2 + HN.ring_count hnet ~layer:3);
  (* stabilize links: lower layers are cheaper on TS topologies *)
  let stab = totals.Cost.mean_stabilize_link_latency_per_layer in
  Alcotest.(check bool) "lower-layer stabilize cheaper" true (stab.(1) < stab.(0))

let test_cost_state_is_kilobytes () =
  (* the paper's §3.4 claim: multi-layer finger tables occupy only hundreds
     or thousands of bytes *)
  let _, _, hnet = build_small ~nodes:200 ~depth:2 20 in
  let totals = Cost.totals hnet ~succ_list_len:8 in
  Alcotest.(check bool) "mean state below 8 KiB" true (totals.Cost.mean_state_bytes < 8192.0)

(* --- qcheck ---------------------------------------------------------------------------- *)

let prop_route_matches_chord_owner =
  QCheck.Test.make ~name:"hieras destination = chord owner (random nets)" ~count:20
    QCheck.(pair small_nat (int_range 16 80))
    (fun (seed, n) ->
      let rng = Prng.Rng.create ~seed:(seed + 100) in
      let lat = Topology.Transit_stub.generate ~hosts:n rng in
      let chord = Chord.Network.build ~space:Id.sha1_space ~hosts:(Array.init n (fun i -> i)) () in
      let lm = Binning.Landmark.choose_spread lat ~count:3 rng in
      let hnet = HN.build ~chord ~lat ~landmarks:lm ~depth:2 () in
      let ok = ref true in
      for _ = 1 to 30 do
        let key = Id.random Id.sha1_space rng in
        let origin = Prng.Rng.int rng n in
        let r = HL.route hnet ~origin ~key in
        if r.HL.destination <> Chord.Network.successor_of_key chord key then ok := false
      done;
      !ok)

let prop_hops_monotone_toward_key =
  (* every hop before the final one lands strictly before the key (clockwise):
     the predecessor-stopping rule means the route never overshoots, which is
     what keeps upper layers from re-routing around the circle *)
  QCheck.Test.make ~name:"hieras hops never overshoot the key" ~count:15
    QCheck.(pair small_nat (int_range 24 100))
    (fun (seed, n) ->
      let rng = Prng.Rng.create ~seed:(seed + 900) in
      let lat = Topology.Transit_stub.generate ~hosts:n rng in
      let chord = Chord.Network.build ~space:Id.sha1_space ~hosts:(Array.init n (fun i -> i)) () in
      let lm = Binning.Landmark.choose_spread lat ~count:4 rng in
      let hnet = HN.build ~chord ~lat ~landmarks:lm ~depth:3 () in
      let ok = ref true in
      for _ = 1 to 25 do
        let key = Id.random Id.sha1_space rng in
        let origin = Prng.Rng.int rng n in
        let r = HL.route hnet ~origin ~key in
        let rec check = function
          | [] | [ _ ] -> ()
          | (h : HL.hop) :: rest ->
              (* intermediate hop targets lie strictly inside (origin, key) *)
              if not (Id.in_oo (Chord.Network.id chord h.HL.to_node)
                        ~lo:(Chord.Network.id chord r.HL.origin) ~hi:key)
              then ok := false;
              check rest
        in
        check r.HL.hops
      done;
      !ok)

let prop_nesting_all_depths =
  QCheck.Test.make ~name:"hnetwork nesting holds for random builds" ~count:10
    QCheck.(pair small_nat (int_range 2 4))
    (fun (seed, depth) ->
      let rng = Prng.Rng.create ~seed:(seed + 500) in
      let n = 80 in
      let lat = Topology.Transit_stub.generate ~hosts:n rng in
      let chord = Chord.Network.build ~space:Id.sha1_space ~hosts:(Array.init n (fun i -> i)) () in
      let lm = Binning.Landmark.choose_spread lat ~count:4 rng in
      let hnet = HN.build ~chord ~lat ~landmarks:lm ~depth () in
      HN.nesting_ok hnet)

let () =
  Alcotest.run "hieras"
    [
      ( "ring_name",
        [
          Alcotest.test_case "basics" `Quick test_ring_name_basics;
          Alcotest.test_case "validation" `Quick test_ring_name_validation;
          Alcotest.test_case "ring id" `Quick test_ring_id_deterministic;
          Alcotest.test_case "compare" `Quick test_ring_name_compare_total;
        ] );
      ( "ring_table",
        [
          Alcotest.test_case "extremes" `Quick test_ring_table_extremes;
          Alcotest.test_case "small tables" `Quick test_ring_table_small;
          Alcotest.test_case "should_register" `Quick test_should_register;
          Alcotest.test_case "register/remove" `Quick test_register_and_remove;
          Alcotest.test_case "register keeps extremes" `Quick test_register_keeps_extremes;
        ] );
      ( "hnetwork",
        [
          Alcotest.test_case "validation" `Quick test_hnetwork_validation;
          Alcotest.test_case "rings partition" `Quick test_rings_partition_nodes;
          Alcotest.test_case "members sorted" `Quick test_ring_members_sorted;
          Alcotest.test_case "ring cycles" `Quick test_ring_successor_cycles;
          Alcotest.test_case "nesting" `Quick test_nesting_invariant;
          Alcotest.test_case "fingers in ring" `Quick test_fingers_restricted_to_ring;
          Alcotest.test_case "ring tables" `Quick test_ring_tables;
          Alcotest.test_case "manager = successor" `Quick test_ring_table_manager_is_successor;
          Alcotest.test_case "layer bounds" `Quick test_layer_bounds_checked;
        ] );
      ( "hlookup",
        [
          Alcotest.test_case "correctness" `Quick test_route_correctness_exhaustive;
          Alcotest.test_case "accounting" `Quick test_route_accounting_consistent;
          Alcotest.test_case "owner origin" `Quick test_route_owner_origin;
          Alcotest.test_case "layer-2 hops stay in ring" `Quick test_route_lower_layer_stays_in_ring;
          Alcotest.test_case "beats chord on latency" `Slow test_hieras_vs_chord_on_workload;
        ] );
      ( "location",
        [
          Alcotest.test_case "publish + lookup" `Quick test_location_publish_lookup;
          Alcotest.test_case "missing file" `Quick test_location_missing_file;
          Alcotest.test_case "multiple publishers" `Quick test_location_multiple_publishers;
          Alcotest.test_case "unpublish" `Quick test_location_unpublish;
          Alcotest.test_case "load accounting" `Quick test_location_load_accounting;
        ] );
      ( "cost",
        [
          Alcotest.test_case "entry bytes" `Quick test_cost_entry_bytes;
          Alcotest.test_case "totals" `Quick test_cost_per_node_and_totals;
          Alcotest.test_case "state is kilobytes" `Quick test_cost_state_is_kilobytes;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_route_matches_chord_owner;
            prop_hops_monotone_toward_key;
            prop_nesting_all_depths;
          ] );
    ]
