(* Tests for the prng library: generator determinism and distribution
   sanity. *)

module Rng = Prng.Rng
module Dist = Prng.Dist

let check_float = Alcotest.(check (float 1e-9))

(* --- Rng ---------------------------------------------------------------- *)

let test_determinism () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:1 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  Alcotest.(check bool) "different seeds diverge" true (!same < 4)

let test_copy_independent () =
  let a = Rng.create ~seed:3 in
  let b = Rng.copy a in
  let va = Rng.bits64 a in
  let vb = Rng.bits64 b in
  Alcotest.(check int64) "copy replays" va vb;
  ignore (Rng.bits64 a);
  let vb2 = Rng.bits64 b in
  ignore vb2

let test_split_independent () =
  let a = Rng.create ~seed:4 in
  let b = Rng.split a in
  (* drawing from a must not change b's stream *)
  let b' = Rng.copy b in
  for _ = 1 to 10 do
    ignore (Rng.bits64 a)
  done;
  for _ = 1 to 10 do
    Alcotest.(check int64) "split stream unaffected" (Rng.bits64 b') (Rng.bits64 b)
  done

let test_int_bounds () =
  let rng = Rng.create ~seed:5 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 7 in
    Alcotest.(check bool) "in [0,7)" true (v >= 0 && v < 7)
  done

let test_int_rejects_nonpositive () =
  let rng = Rng.create ~seed:6 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_int_covers_all_values () =
  let rng = Rng.create ~seed:7 in
  let seen = Array.make 5 false in
  for _ = 1 to 1000 do
    seen.(Rng.int rng 5) <- true
  done;
  Alcotest.(check bool) "all residues seen" true (Array.for_all Fun.id seen)

let test_int_in () =
  let rng = Rng.create ~seed:8 in
  for _ = 1 to 1000 do
    let v = Rng.int_in rng (-3) 3 in
    Alcotest.(check bool) "in [-3,3]" true (v >= -3 && v <= 3)
  done;
  Alcotest.(check int) "degenerate range" 5 (Rng.int_in rng 5 5)

let test_float_range () =
  let rng = Rng.create ~seed:9 in
  for _ = 1 to 1000 do
    let v = Rng.float rng 2.5 in
    Alcotest.(check bool) "in [0,2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_float_mean () =
  let rng = Rng.create ~seed:10 in
  let n = 100_000 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. Rng.float rng 1.0
  done;
  let mean = !acc /. float_of_int n in
  Alcotest.(check bool) "mean near 0.5" true (Float.abs (mean -. 0.5) < 0.01)

let test_bool_balanced () =
  let rng = Rng.create ~seed:11 in
  let t = ref 0 in
  let n = 10_000 in
  for _ = 1 to n do
    if Rng.bool rng then incr t
  done;
  Alcotest.(check bool) "roughly half true" true (abs (!t - (n / 2)) < 300)

let test_byte_range () =
  let rng = Rng.create ~seed:12 in
  for _ = 1 to 1000 do
    let v = Rng.byte rng in
    Alcotest.(check bool) "byte" true (v >= 0 && v < 256)
  done

(* --- Dist --------------------------------------------------------------- *)

let test_exponential_mean () =
  let rng = Rng.create ~seed:13 in
  let n = 50_000 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. Dist.exponential rng ~mean:40.0
  done;
  let mean = !acc /. float_of_int n in
  Alcotest.(check bool) "mean near 40" true (Float.abs (mean -. 40.0) < 1.5)

let test_exponential_positive () =
  let rng = Rng.create ~seed:14 in
  for _ = 1 to 1000 do
    Alcotest.(check bool) "positive" true (Dist.exponential rng ~mean:1.0 > 0.0)
  done

let test_pareto_scale () =
  let rng = Rng.create ~seed:15 in
  for _ = 1 to 1000 do
    Alcotest.(check bool) "at least scale" true (Dist.pareto rng ~shape:1.5 ~scale:8.0 >= 8.0)
  done

let test_uniform_float () =
  let rng = Rng.create ~seed:16 in
  for _ = 1 to 1000 do
    let v = Dist.uniform_float rng ~lo:3.0 ~hi:5.0 in
    Alcotest.(check bool) "in [3,5)" true (v >= 3.0 && v < 5.0)
  done

let test_normal_moments () =
  let rng = Rng.create ~seed:17 in
  let n = 50_000 in
  let acc = ref 0.0 and acc2 = ref 0.0 in
  for _ = 1 to n do
    let v = Dist.normal rng ~mean:10.0 ~stddev:2.0 in
    acc := !acc +. v;
    acc2 := !acc2 +. (v *. v)
  done;
  let mean = !acc /. float_of_int n in
  let var = (!acc2 /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check bool) "mean near 10" true (Float.abs (mean -. 10.0) < 0.1);
  Alcotest.(check bool) "var near 4" true (Float.abs (var -. 4.0) < 0.2)

let test_zipf_range_and_skew () =
  let rng = Rng.create ~seed:18 in
  let table = Dist.make_zipf_table ~n:100 ~alpha:1.0 in
  let counts = Array.make 100 0 in
  for _ = 1 to 20_000 do
    let v = Dist.zipf_draw rng table in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 100);
    counts.(v) <- counts.(v) + 1
  done;
  Alcotest.(check bool) "rank 0 most popular" true (counts.(0) > counts.(10));
  Alcotest.(check bool) "heavy head" true (counts.(0) > 20_000 / 20)

let test_zipf_rejects_empty () =
  Alcotest.check_raises "n=0" (Invalid_argument "Dist.make_zipf_table: n must be positive")
    (fun () -> ignore (Dist.make_zipf_table ~n:0 ~alpha:1.0))

let test_shuffle_permutation () =
  let rng = Rng.create ~seed:19 in
  let a = Array.init 50 (fun i -> i) in
  let b = Array.copy a in
  Dist.shuffle rng b;
  Alcotest.(check bool) "same multiset" true
    (List.sort compare (Array.to_list b) = Array.to_list a)

let test_shuffle_moves_elements () =
  let rng = Rng.create ~seed:20 in
  let a = Array.init 100 (fun i -> i) in
  Dist.shuffle rng a;
  let fixed = ref 0 in
  Array.iteri (fun i v -> if i = v then incr fixed) a;
  Alcotest.(check bool) "not identity" true (!fixed < 20)

let test_sample_without_replacement () =
  let rng = Rng.create ~seed:21 in
  let s = Dist.sample_without_replacement rng 10 30 in
  Alcotest.(check int) "k elements" 10 (Array.length s);
  let sorted = List.sort_uniq compare (Array.to_list s) in
  Alcotest.(check int) "distinct" 10 (List.length sorted);
  List.iter (fun v -> Alcotest.(check bool) "in range" true (v >= 0 && v < 30)) sorted

let test_sample_full () =
  let rng = Rng.create ~seed:22 in
  let s = Dist.sample_without_replacement rng 5 5 in
  Alcotest.(check bool) "permutation of all" true
    (List.sort compare (Array.to_list s) = [ 0; 1; 2; 3; 4 ])

let test_sample_rejects_too_many () =
  let rng = Rng.create ~seed:23 in
  Alcotest.check_raises "k>n" (Invalid_argument "Dist.sample_without_replacement") (fun () ->
      ignore (Dist.sample_without_replacement rng 6 5))

let test_weighted_index () =
  let rng = Rng.create ~seed:24 in
  let w = [| 0.0; 10.0; 0.0 |] in
  for _ = 1 to 100 do
    Alcotest.(check int) "always middle" 1 (Dist.weighted_index rng w)
  done

let test_weighted_index_proportional () =
  let rng = Rng.create ~seed:25 in
  let w = [| 1.0; 3.0 |] in
  let c = Array.make 2 0 in
  for _ = 1 to 10_000 do
    let i = Dist.weighted_index rng w in
    c.(i) <- c.(i) + 1
  done;
  Alcotest.(check bool) "3x more weight" true (c.(1) > 2 * c.(0))

let test_weighted_index_errors () =
  let rng = Rng.create ~seed:26 in
  Alcotest.check_raises "empty" (Invalid_argument "Dist.weighted_index: empty") (fun () ->
      ignore (Dist.weighted_index rng [||]));
  Alcotest.check_raises "zero" (Invalid_argument "Dist.weighted_index: zero total weight")
    (fun () -> ignore (Dist.weighted_index rng [| 0.0; 0.0 |]))

(* --- qcheck properties --------------------------------------------------- *)

let prop_int_bounds =
  QCheck.Test.make ~name:"Rng.int always within bounds" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, n) ->
      let rng = Rng.create ~seed in
      let v = Rng.int rng n in
      v >= 0 && v < n)

let prop_shuffle_multiset =
  QCheck.Test.make ~name:"shuffle preserves the multiset" ~count:200
    QCheck.(pair small_int (list small_int))
    (fun (seed, l) ->
      let rng = Rng.create ~seed in
      let a = Array.of_list l in
      Dist.shuffle rng a;
      List.sort compare (Array.to_list a) = List.sort compare l)

let prop_zipf_table_range =
  QCheck.Test.make ~name:"zipf draws stay in range" ~count:200
    QCheck.(pair small_int (int_range 1 50))
    (fun (seed, n) ->
      let rng = Rng.create ~seed in
      let t = Dist.make_zipf_table ~n ~alpha:1.2 in
      let v = Dist.zipf_draw rng t in
      v >= 0 && v < n)

let () =
  ignore check_float;
  Alcotest.run "prng"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_copy_independent;
          Alcotest.test_case "split independence" `Quick test_split_independent;
          Alcotest.test_case "int bounds" `Quick test_int_bounds;
          Alcotest.test_case "int rejects <= 0" `Quick test_int_rejects_nonpositive;
          Alcotest.test_case "int covers values" `Quick test_int_covers_all_values;
          Alcotest.test_case "int_in" `Quick test_int_in;
          Alcotest.test_case "float range" `Quick test_float_range;
          Alcotest.test_case "float mean" `Slow test_float_mean;
          Alcotest.test_case "bool balanced" `Quick test_bool_balanced;
          Alcotest.test_case "byte range" `Quick test_byte_range;
        ] );
      ( "dist",
        [
          Alcotest.test_case "exponential mean" `Slow test_exponential_mean;
          Alcotest.test_case "exponential positive" `Quick test_exponential_positive;
          Alcotest.test_case "pareto scale" `Quick test_pareto_scale;
          Alcotest.test_case "uniform_float" `Quick test_uniform_float;
          Alcotest.test_case "normal moments" `Slow test_normal_moments;
          Alcotest.test_case "zipf skew" `Quick test_zipf_range_and_skew;
          Alcotest.test_case "zipf empty" `Quick test_zipf_rejects_empty;
          Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
          Alcotest.test_case "shuffle moves" `Quick test_shuffle_moves_elements;
          Alcotest.test_case "sample distinct" `Quick test_sample_without_replacement;
          Alcotest.test_case "sample full" `Quick test_sample_full;
          Alcotest.test_case "sample too many" `Quick test_sample_rejects_too_many;
          Alcotest.test_case "weighted index" `Quick test_weighted_index;
          Alcotest.test_case "weighted proportional" `Quick test_weighted_index_proportional;
          Alcotest.test_case "weighted errors" `Quick test_weighted_index_errors;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_int_bounds; prop_shuffle_multiset; prop_zipf_table_range ] );
    ]
