(* Tests for the Chord library: finger tables, the oracle network builder
   and greedy routing. The message-level protocol is tested in
   test_protocols.ml. *)

module Id = Hashid.Id
module FT = Chord.Finger_table
module Net = Chord.Network
module Lookup = Chord.Lookup

let space8 = Id.space ~bits:8

(* A hand-built ring in the 8-bit space, inspired by the paper's Table 2
   (node 121 with peers spread around a 2^8 circle). *)
let paper_ids = [ 1; 25; 60; 121; 124; 131; 139; 143; 158; 192; 212; 253 ]

let paper_net () =
  let ids = Array.of_list (List.map (Id.of_int space8) paper_ids) in
  Net.of_ids ~space:space8 ~ids ~hosts:(Array.make (Array.length ids) 0) ()

(* --- Finger_table -------------------------------------------------------- *)

let test_finger_starts () =
  let net = paper_net () in
  let node =
    match Net.find_node net (Id.of_int space8 121) with Some n -> n | None -> Alcotest.fail "121"
  in
  let ft = Net.finger_table net node in
  (* successors of 121 + 2^i for the paper's starts 122,123,125,129,137,153,185,249 *)
  let expect = [ 124; 124; 131; 131; 139; 158; 192; 253 ] in
  List.iteri
    (fun i e ->
      let f = FT.finger ft i in
      Alcotest.(check int) (Printf.sprintf "finger %d" i) e (Id.to_int space8 (Net.id net f)))
    expect

let test_finger_dedup () =
  let net = paper_net () in
  let node = Option.get (Net.find_node net (Id.of_int space8 121)) in
  let ft = Net.finger_table net node in
  (* 8 conceptual fingers but only 6 distinct successors *)
  Alcotest.(check int) "distinct segments" 6 (FT.distinct_count ft);
  let segs = FT.segments ft in
  Alcotest.(check int) "first segment exponent 0" 0 (fst segs.(0));
  (* exponents strictly ascending *)
  for k = 1 to Array.length segs - 1 do
    Alcotest.(check bool) "ascending" true (fst segs.(k) > fst segs.(k - 1))
  done

let test_finger_out_of_range () =
  let net = paper_net () in
  let ft = Net.finger_table net 0 in
  Alcotest.check_raises "finger 8" (Invalid_argument "Finger_table.finger: index out of range")
    (fun () -> ignore (FT.finger ft 8))

let test_finger_single_member () =
  (* a ring restricted to one node: every finger points at the owner *)
  let ids = [| Id.of_int space8 42 |] in
  let ft =
    FT.build space8 ~owner:7 ~owner_id:ids.(0) ~member_ids:ids ~member_nodes:[| 7 |]
  in
  Alcotest.(check int) "one segment" 1 (FT.distinct_count ft);
  Alcotest.(check int) "points at owner" 7 (FT.finger ft 3)

let test_closest_preceding_none () =
  let ids = [| Id.of_int space8 42 |] in
  let ft = FT.build space8 ~owner:0 ~owner_id:ids.(0) ~member_ids:ids ~member_nodes:[| 0 |] in
  Alcotest.(check bool) "no progress possible" true
    (FT.closest_preceding ft ~id_of:(fun _ -> ids.(0)) ~self:ids.(0)
       ~key:(Id.of_int space8 100)
    = None)

(* brute-force reference for closest_preceding *)
let brute_closest net cur key =
  let n = Net.size net in
  let best = ref None in
  for cand = 0 to n - 1 do
    if cand <> cur && Id.in_oo (Net.id net cand) ~lo:(Net.id net cur) ~hi:key then
      match !best with
      | None -> best := Some cand
      | Some b -> if Id.in_oo (Net.id net cand) ~lo:(Net.id net b) ~hi:key then best := Some cand
  done;
  !best

(* --- Network ---------------------------------------------------------------- *)

let test_network_sorted_and_cyclic () =
  let net = paper_net () in
  Alcotest.(check int) "size" (List.length paper_ids) (Net.size net);
  for i = 0 to Net.size net - 1 do
    Alcotest.(check int) "ids ascending" (List.nth paper_ids i) (Id.to_int space8 (Net.id net i))
  done;
  Alcotest.(check int) "successor wraps" 0 (Net.successor net (Net.size net - 1));
  Alcotest.(check int) "predecessor wraps" (Net.size net - 1) (Net.predecessor net 0);
  for i = 0 to Net.size net - 1 do
    Alcotest.(check int) "pred . succ = id" i (Net.predecessor net (Net.successor net i))
  done

let test_network_rejects_duplicates () =
  let ids = Array.map (Id.of_int space8) [| 1; 1 |] in
  Alcotest.check_raises "duplicate ids" (Invalid_argument "Chord.Network: duplicate identifiers")
    (fun () -> ignore (Net.of_ids ~space:space8 ~ids ~hosts:[| 0; 0 |] ()))

let test_network_rejects_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Chord.Network: empty network") (fun () ->
      ignore (Net.of_ids ~space:space8 ~ids:[||] ~hosts:[||] ()))

let test_successor_of_key () =
  let net = paper_net () in
  let check key expect =
    Alcotest.(check int) (Printf.sprintf "owner of %d" key) expect
      (Id.to_int space8 (Net.id net (Net.successor_of_key net (Id.of_int space8 key))))
  in
  check 121 121;
  (* exact id is owned by that node *)
  check 122 124;
  check 254 1;
  (* wraps past the top *)
  check 0 1;
  check 1 1;
  check 200 212

let test_build_distinct_ids () =
  let net = Net.build ~space:(Id.space ~bits:16) ~hosts:(Array.init 200 (fun i -> i)) () in
  Alcotest.(check int) "all nodes present" 200 (Net.size net);
  for i = 1 to 199 do
    Alcotest.(check bool) "strictly ascending" true (Id.compare (Net.id net (i - 1)) (Net.id net i) < 0)
  done

let test_build_hosts_aligned () =
  (* hosts must follow their ids through the sort *)
  let hosts = [| 30; 10; 20 |] in
  let ids = Array.map (Id.of_int space8) [| 200; 50; 100 |] in
  let net = Net.of_ids ~space:space8 ~ids ~hosts () in
  (* sorted order: 50 (host 10), 100 (host 20), 200 (host 30) *)
  Alcotest.(check int) "host of smallest" 10 (Net.host net 0);
  Alcotest.(check int) "host of middle" 20 (Net.host net 1);
  Alcotest.(check int) "host of largest" 30 (Net.host net 2)

let test_successor_list () =
  let net = paper_net () in
  let sl = Net.successor_list net 0 in
  Alcotest.(check int) "length r" 8 (Array.length sl);
  Alcotest.(check int) "first is successor" (Net.successor net 0) sl.(0);
  (* small net: r capped at n-1 *)
  let tiny =
    Net.of_ids ~space:space8
      ~ids:(Array.map (Id.of_int space8) [| 5; 9; 200 |])
      ~hosts:[| 0; 0; 0 |] ()
  in
  Alcotest.(check int) "capped" 2 (Array.length (Net.successor_list tiny 0))

(* --- Lookup -------------------------------------------------------------------- *)

let test_route_reaches_owner () =
  let net = paper_net () in
  for key = 0 to 255 do
    let k = Id.of_int space8 key in
    for origin = 0 to Net.size net - 1 do
      let hops, dest = Lookup.route_hops_only net ~origin ~key:k in
      Alcotest.(check int) "destination owns key" (Net.successor_of_key net k) dest;
      Alcotest.(check bool) "bounded hops" true (hops <= Net.size net)
    done
  done

let test_route_zero_hops_when_owner () =
  let net = paper_net () in
  (* key 121 is owned by node 121 itself *)
  let origin = Option.get (Net.find_node net (Id.of_int space8 121)) in
  let hops, dest = Lookup.route_hops_only net ~origin ~key:(Id.of_int space8 121) in
  Alcotest.(check int) "no hops" 0 hops;
  Alcotest.(check int) "stays" origin dest;
  (* also when the key merely falls in (pred, origin] *)
  let hops2, _ = Lookup.route_hops_only net ~origin ~key:(Id.of_int space8 120) in
  Alcotest.(check int) "owner detects ownership" 0 hops2

let test_route_latency_sums_hops () =
  let rng = Prng.Rng.create ~seed:13 in
  let lat = Topology.Transit_stub.generate ~hosts:64 rng in
  let net = Net.build ~space:(Id.space ~bits:16) ~hosts:(Array.init 64 (fun i -> i)) () in
  for _ = 1 to 200 do
    let key = Id.random (Net.space net) rng in
    let origin = Prng.Rng.int rng 64 in
    let r = Lookup.route net lat ~origin ~key in
    let total = List.fold_left (fun acc (h : Lookup.hop) -> acc +. h.Lookup.latency) 0.0 r.Lookup.hops in
    Alcotest.(check (float 1e-6)) "latency = sum of hops" total r.Lookup.latency;
    Alcotest.(check int) "hop_count = |hops|" (List.length r.Lookup.hops) r.Lookup.hop_count;
    (* the recorded path is connected and starts at the origin *)
    (match r.Lookup.hops with
    | [] -> Alcotest.(check int) "empty path only when origin owns" r.Lookup.origin r.Lookup.destination
    | first :: _ -> Alcotest.(check int) "starts at origin" r.Lookup.origin first.Lookup.from_node);
    let rec connected = function
      | a :: (b :: _ as rest) ->
          Alcotest.(check int) "chained" a.Lookup.to_node b.Lookup.from_node;
          connected rest
      | [ last ] -> Alcotest.(check int) "ends at destination" r.Lookup.destination last.Lookup.to_node
      | [] -> ()
    in
    connected r.Lookup.hops
  done

let test_single_node_network () =
  let net =
    Net.of_ids ~space:space8 ~ids:[| Id.of_int space8 77 |] ~hosts:[| 0 |] ()
  in
  let hops, dest = Lookup.route_hops_only net ~origin:0 ~key:(Id.of_int space8 3) in
  Alcotest.(check int) "owns everything" 0 dest;
  Alcotest.(check int) "zero hops" 0 hops

let test_two_node_network () =
  let net =
    Net.of_ids ~space:space8
      ~ids:(Array.map (Id.of_int space8) [| 10; 200 |])
      ~hosts:[| 0; 0 |] ()
  in
  for key = 0 to 255 do
    let k = Id.of_int space8 key in
    let _, d0 = Lookup.route_hops_only net ~origin:0 ~key:k in
    let _, d1 = Lookup.route_hops_only net ~origin:1 ~key:k in
    Alcotest.(check int) "both agree" d0 d1;
    Alcotest.(check int) "owner" (Net.successor_of_key net k) d0
  done

let test_hop_count_scales_logarithmically () =
  let rng = Prng.Rng.create ~seed:17 in
  let mean_hops n =
    let net = Net.build ~space:Id.sha1_space ~hosts:(Array.init n (fun i -> i)) () in
    let acc = ref 0 in
    let trials = 500 in
    for _ = 1 to trials do
      let key = Id.random Id.sha1_space rng in
      let origin = Prng.Rng.int rng n in
      let h, _ = Lookup.route_hops_only net ~origin ~key in
      acc := !acc + h
    done;
    float_of_int !acc /. float_of_int trials
  in
  let h128 = mean_hops 128 and h1024 = mean_hops 1024 in
  (* 0.5 * log2 n within a generous band *)
  Alcotest.(check bool) "128 near 3.5" true (h128 > 2.0 && h128 < 5.5);
  Alcotest.(check bool) "1024 near 5" true (h1024 > 3.5 && h1024 < 7.5);
  Alcotest.(check bool) "grows with n" true (h1024 > h128)

(* --- qcheck -------------------------------------------------------------------- *)

let random_net_gen =
  QCheck.make
    QCheck.Gen.(
      map2
        (fun seed n -> (seed, 2 + n))
        small_nat (int_range 1 60))

let prop_route_correct =
  QCheck.Test.make ~name:"route always ends at the key's successor" ~count:100 random_net_gen
    (fun (seed, n) ->
      let rng = Prng.Rng.create ~seed in
      let sp = Id.space ~bits:12 in
      let seen = Hashtbl.create 16 in
      let ids =
        Array.init n (fun _ ->
            let rec fresh () =
              let id = Id.random sp rng in
              if Hashtbl.mem seen id then fresh ()
              else begin
                Hashtbl.replace seen id ();
                id
              end
            in
            fresh ())
      in
      let net = Net.of_ids ~space:sp ~ids ~hosts:(Array.make n 0) () in
      let ok = ref true in
      for _ = 1 to 20 do
        let key = Id.random sp rng in
        let origin = Prng.Rng.int rng n in
        let _, dest = Lookup.route_hops_only net ~origin ~key in
        if dest <> Net.successor_of_key net key then ok := false
      done;
      !ok)

let prop_closest_preceding_matches_brute_force =
  QCheck.Test.make ~name:"finger closest_preceding never overshoots brute force" ~count:100
    random_net_gen (fun (seed, n) ->
      let rng = Prng.Rng.create ~seed in
      let sp = Id.space ~bits:12 in
      let seen = Hashtbl.create 16 in
      let ids =
        Array.init n (fun _ ->
            let rec fresh () =
              let id = Id.random sp rng in
              if Hashtbl.mem seen id then fresh () else (Hashtbl.replace seen id (); id)
            in
            fresh ())
      in
      let net = Net.of_ids ~space:sp ~ids ~hosts:(Array.make n 0) () in
      let ok = ref true in
      for _ = 1 to 20 do
        let key = Id.random sp rng in
        let cur = Prng.Rng.int rng n in
        let fingered =
          FT.closest_preceding (Net.finger_table net cur)
            ~id_of:(fun i -> Net.id net i)
            ~self:(Net.id net cur) ~key
        in
        match (fingered, brute_closest net cur key) with
        | None, None -> ()
        | Some f, Some _ ->
            (* the finger answer must at least lie inside (cur, key) *)
            if not (Id.in_oo (Net.id net f) ~lo:(Net.id net cur) ~hi:key) then ok := false
        | Some _, None -> ok := false
        | None, Some b ->
            (* fingers may miss a candidate only if it is the successor *)
            if b <> Net.successor net cur then ok := false
      done;
      !ok)

let prop_fingers_match_brute_force =
  QCheck.Test.make ~name:"every finger is the successor of n + 2^i" ~count:60
    random_net_gen (fun (seed, n) ->
      let rng = Prng.Rng.create ~seed:(seed + 7) in
      let sp = Id.space ~bits:10 in
      let seen = Hashtbl.create 16 in
      let ids =
        Array.init n (fun _ ->
            let rec fresh () =
              let id = Id.random sp rng in
              if Hashtbl.mem seen id then fresh () else (Hashtbl.replace seen id (); id)
            in
            fresh ())
      in
      let net = Net.of_ids ~space:sp ~ids ~hosts:(Array.make n 0) () in
      let ok = ref true in
      for node = 0 to Net.size net - 1 do
        let ft = Net.finger_table net node in
        for i = 0 to Id.bits sp - 1 do
          let start = Id.add_pow2 sp (Net.id net node) i in
          (* brute-force successor of start: the member at the smallest
             clockwise distance from start (0 when ids coincide) *)
          let cw cand =
            if Id.equal (Net.id net cand) start then 0.0
            else Id.distance_cw sp start (Net.id net cand)
          in
          let best = ref None in
          for cand = 0 to Net.size net - 1 do
            match !best with
            | None -> best := Some cand
            | Some b -> if cw cand < cw b then best := Some cand
          done;
          match !best with
          | Some b -> if FT.finger ft i <> b then ok := false
          | None -> ok := false
        done
      done;
      !ok)

let prop_hops_bounded =
  QCheck.Test.make ~name:"hops bounded by network size" ~count:100 random_net_gen
    (fun (seed, n) ->
      let rng = Prng.Rng.create ~seed in
      let net =
        Net.build ~space:Id.sha1_space ~hosts:(Array.init n (fun i -> i))
          ~salt:(string_of_int seed) ()
      in
      let ok = ref true in
      for _ = 1 to 10 do
        let key = Id.random Id.sha1_space rng in
        let origin = Prng.Rng.int rng n in
        let h, _ = Lookup.route_hops_only net ~origin ~key in
        if h > n then ok := false
      done;
      !ok)

let () =
  Alcotest.run "chord"
    [
      ( "finger_table",
        [
          Alcotest.test_case "paper table 2 fingers" `Quick test_finger_starts;
          Alcotest.test_case "dedup" `Quick test_finger_dedup;
          Alcotest.test_case "out of range" `Quick test_finger_out_of_range;
          Alcotest.test_case "single member" `Quick test_finger_single_member;
          Alcotest.test_case "closest_preceding none" `Quick test_closest_preceding_none;
        ] );
      ( "network",
        [
          Alcotest.test_case "sorted + cyclic" `Quick test_network_sorted_and_cyclic;
          Alcotest.test_case "duplicates rejected" `Quick test_network_rejects_duplicates;
          Alcotest.test_case "empty rejected" `Quick test_network_rejects_empty;
          Alcotest.test_case "successor_of_key" `Quick test_successor_of_key;
          Alcotest.test_case "build distinct" `Quick test_build_distinct_ids;
          Alcotest.test_case "hosts follow sort" `Quick test_build_hosts_aligned;
          Alcotest.test_case "successor list" `Quick test_successor_list;
        ] );
      ( "lookup",
        [
          Alcotest.test_case "exhaustive small ring" `Quick test_route_reaches_owner;
          Alcotest.test_case "ownership = 0 hops" `Quick test_route_zero_hops_when_owner;
          Alcotest.test_case "latency accounting" `Quick test_route_latency_sums_hops;
          Alcotest.test_case "single node" `Quick test_single_node_network;
          Alcotest.test_case "two nodes" `Quick test_two_node_network;
          Alcotest.test_case "log scaling" `Slow test_hop_count_scales_logarithmically;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_route_correct;
            prop_closest_preceding_matches_brute_force;
            prop_fingers_match_brute_force;
            prop_hops_bounded;
          ]
      );
    ]
