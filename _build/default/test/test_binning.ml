(* Tests for the distributed binning scheme and landmark selection. *)

module Landmark = Binning.Landmark
module Scheme = Binning.Scheme
module Latency = Topology.Latency

let make_topology ?(hosts = 300) seed =
  Topology.Transit_stub.generate ~hosts (Prng.Rng.create ~seed)

(* --- Scheme: levels and orders ----------------------------------------------- *)

let test_paper_levels () =
  let t = Scheme.paper_thresholds in
  Alcotest.(check int) "5ms -> 0" 0 (Scheme.level t 5.0);
  Alcotest.(check int) "19.99 -> 0" 0 (Scheme.level t 19.99);
  Alcotest.(check int) "20 -> 1" 1 (Scheme.level t 20.0);
  Alcotest.(check int) "99 -> 1" 1 (Scheme.level t 99.0);
  Alcotest.(check int) "100 -> 2" 2 (Scheme.level t 100.0);
  Alcotest.(check int) "400 -> 2" 2 (Scheme.level t 400.0)

let test_level_rejects_negative () =
  Alcotest.check_raises "negative" (Invalid_argument "Scheme.level: negative measurement")
    (fun () -> ignore (Scheme.level Scheme.paper_thresholds (-1.0)))

let test_paper_table1_orders () =
  (* The example rows of the paper's Table 1. The paper is inconsistent at
     boundary values (node D's 20 ms maps to level 0 but node A's 100 ms maps
     to level 2); we use the uniform rule level = #{boundaries <= d}, so D is
     "2201" (paper: "2200") and F is "1211" (paper: "0211"); all interior
     values agree. *)
  let t = Scheme.paper_thresholds in
  let check name dists expect = Alcotest.(check string) name expect (Scheme.order t dists) in
  check "node A" [| 25.0; 5.0; 30.0; 100.0 |] "1012";
  check "node B" [| 40.0; 18.0; 12.0; 200.0 |] "1002";
  check "node C" [| 100.0; 180.0; 5.0; 10.0 |] "2200";
  check "node D" [| 160.0; 220.0; 8.0; 20.0 |] "2201";
  check "node E" [| 45.0; 10.0; 100.0; 5.0 |] "1020";
  check "node F" [| 20.0; 140.0; 50.0; 40.0 |] "1211"

let test_order_empty () =
  Alcotest.(check string) "empty vector" "" (Scheme.order Scheme.paper_thresholds [||])

let test_validate () =
  Scheme.validate Scheme.paper_thresholds;
  Alcotest.check_raises "descending" (Invalid_argument "Scheme.validate: boundaries must ascend")
    (fun () -> Scheme.validate [| 100.0; 20.0 |]);
  Alcotest.check_raises "negative" (Invalid_argument "Scheme.validate: negative boundary")
    (fun () -> Scheme.validate [| -5.0; 20.0 |]);
  Alcotest.check_raises "too many levels"
    (Invalid_argument "Scheme.validate: too many levels (max 36)") (fun () ->
      Scheme.validate (Array.init 40 (fun i -> float_of_int i)))

let test_refinement_chain () =
  List.iter
    (fun depth ->
      let chain = Scheme.refinement_chain ~depth in
      Alcotest.(check int) "one set per lower layer" (depth - 1) (Array.length chain);
      Array.iter Scheme.validate chain;
      Alcotest.(check bool) "layer 2 = paper thresholds" true
        (chain.(0) = Scheme.paper_thresholds);
      for k = 1 to Array.length chain - 1 do
        Alcotest.(check bool) "each layer refines the previous" true
          (Scheme.is_refinement ~coarse:chain.(k - 1) ~fine:chain.(k));
        Alcotest.(check bool) "strictly finer" true
          (Array.length chain.(k) > Array.length chain.(k - 1))
      done)
    [ 2; 3; 4 ];
  Alcotest.check_raises "depth 5" (Invalid_argument "Scheme.refinement_chain: depth must be in [2, 4]")
    (fun () -> ignore (Scheme.refinement_chain ~depth:5))

let test_is_refinement () =
  Alcotest.(check bool) "subset" true
    (Scheme.is_refinement ~coarse:[| 20.0; 100.0 |] ~fine:[| 10.0; 20.0; 100.0 |]);
  Alcotest.(check bool) "not subset" false
    (Scheme.is_refinement ~coarse:[| 25.0 |] ~fine:[| 10.0; 20.0; 100.0 |])

let test_project_order () =
  Alcotest.(check string) "drop middle" "112" (Scheme.project_order ~full:"1012" ~dropped:1);
  Alcotest.(check string) "drop first" "012" (Scheme.project_order ~full:"1012" ~dropped:0);
  Alcotest.(check string) "drop last" "101" (Scheme.project_order ~full:"1012" ~dropped:3);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Scheme.project_order: index out of range") (fun () ->
      ignore (Scheme.project_order ~full:"10" ~dropped:2))

let test_ring_names () =
  let names = Scheme.ring_names Scheme.paper_thresholds ~landmarks:2 in
  Alcotest.(check int) "3^2 names" 9 (List.length names);
  Alcotest.(check bool) "contains 12" true (List.mem "12" names);
  Alcotest.(check int) "distinct" 9 (List.length (List.sort_uniq compare names))

(* --- Landmark selection --------------------------------------------------------- *)

let test_choose_counts () =
  let lat = make_topology 1 in
  let rng = Prng.Rng.create ~seed:2 in
  List.iter
    (fun k ->
      let lm = Landmark.choose_spread lat ~count:k rng in
      Alcotest.(check int) "count" k (Landmark.count lm);
      let rs = Array.to_list (Landmark.routers lm) in
      Alcotest.(check int) "distinct routers" k (List.length (List.sort_uniq compare rs)))
    [ 1; 2; 4; 8; 12 ]

let test_choose_random_distinct () =
  let lat = make_topology 3 in
  let rng = Prng.Rng.create ~seed:4 in
  let lm = Landmark.choose_random lat ~count:10 rng in
  let rs = Array.to_list (Landmark.routers lm) in
  Alcotest.(check int) "distinct" 10 (List.length (List.sort_uniq compare rs))

let test_choose_spread_is_spread () =
  (* farthest-point landmarks must be pairwise farther apart on average than
     random ones *)
  let lat = make_topology 5 in
  let pairwise lm =
    let rs = Landmark.routers lm in
    let acc = ref 0.0 and n = ref 0 in
    Array.iteri
      (fun i a ->
        Array.iteri
          (fun j b ->
            if i < j then begin
              acc := !acc +. Latency.router_latency lat a b;
              incr n
            end)
          rs)
      rs;
    !acc /. float_of_int !n
  in
  let spread = pairwise (Landmark.choose_spread lat ~count:6 (Prng.Rng.create ~seed:6)) in
  (* average over several random draws *)
  let rand =
    let acc = ref 0.0 in
    for s = 0 to 9 do
      acc := !acc +. pairwise (Landmark.choose_random lat ~count:6 (Prng.Rng.create ~seed:s))
    done;
    !acc /. 10.0
  in
  Alcotest.(check bool) "spread beats random" true (spread > rand)

let test_choose_validation () =
  let lat = make_topology 7 in
  let rng = Prng.Rng.create ~seed:8 in
  Alcotest.check_raises "zero" (Invalid_argument "Landmark.choose_spread: bad count") (fun () ->
      ignore (Landmark.choose_spread lat ~count:0 rng))

let test_of_routers_and_drop () =
  let lm = Landmark.of_routers [| 3; 7; 11 |] in
  Alcotest.(check int) "count" 3 (Landmark.count lm);
  let lm' = Landmark.drop lm 1 in
  Alcotest.(check bool) "dropped middle" true (Landmark.routers lm' = [| 3; 11 |]);
  Alcotest.check_raises "last landmark"
    (Invalid_argument "Landmark.drop: cannot drop the last landmark") (fun () ->
      ignore (Landmark.drop (Landmark.of_routers [| 1 |]) 0));
  Alcotest.check_raises "empty" (Invalid_argument "Landmark.of_routers: empty") (fun () ->
      ignore (Landmark.of_routers [||]))

let test_measure_matches_oracle () =
  let lat = make_topology 9 in
  let lm = Landmark.of_routers [| 0; 5 |] in
  let d = Landmark.measure lat lm ~host:3 in
  Alcotest.(check (float 1e-9)) "first" (Latency.host_to_router lat 3 0) d.(0);
  Alcotest.(check (float 1e-9)) "second" (Latency.host_to_router lat 3 5) d.(1)

let test_measure_jittered_bounds () =
  let lat = make_topology 10 in
  let lm = Landmark.of_routers [| 0; 5; 9 |] in
  let rng = Prng.Rng.create ~seed:11 in
  for _ = 1 to 100 do
    let exact = Landmark.measure lat lm ~host:4 in
    let noisy = Landmark.measure_jittered lat lm ~host:4 ~rng ~spread:0.2 in
    Array.iteri
      (fun i v ->
        Alcotest.(check bool) "within 20%" true
          (v >= 0.8 *. exact.(i) -. 1e-9 && v <= 1.2 *. exact.(i) +. 1e-9))
      noisy
  done

(* --- qcheck: the nesting property the hierarchy depends on ----------------------- *)

let dist_vector_gen =
  QCheck.(list_of_size (QCheck.Gen.int_range 1 8) (float_bound_exclusive 400.0))

let prop_nesting =
  QCheck.Test.make ~name:"equal fine orders imply equal coarse orders" ~count:1000
    QCheck.(pair dist_vector_gen dist_vector_gen)
    (fun (va, vb) ->
      QCheck.assume (List.length va = List.length vb);
      let chain = Scheme.refinement_chain ~depth:4 in
      let a = Array.of_list va and b = Array.of_list vb in
      let fine_equal = Scheme.order chain.(2) a = Scheme.order chain.(2) b in
      QCheck.assume fine_equal;
      Scheme.order chain.(0) a = Scheme.order chain.(0) b
      && Scheme.order chain.(1) a = Scheme.order chain.(1) b)

let prop_order_length =
  QCheck.Test.make ~name:"order length = landmark count" ~count:500 dist_vector_gen (fun v ->
      String.length (Scheme.order Scheme.paper_thresholds (Array.of_list v)) = List.length v)

let prop_level_monotone =
  QCheck.Test.make ~name:"level is monotone in distance" ~count:500
    QCheck.(pair (float_bound_exclusive 400.0) (float_bound_exclusive 400.0))
    (fun (a, b) ->
      let lo = Float.min a b and hi = Float.max a b in
      Scheme.level Scheme.paper_thresholds lo <= Scheme.level Scheme.paper_thresholds hi)

let () =
  Alcotest.run "binning"
    [
      ( "scheme",
        [
          Alcotest.test_case "paper levels" `Quick test_paper_levels;
          Alcotest.test_case "negative measurement" `Quick test_level_rejects_negative;
          Alcotest.test_case "paper table 1 orders" `Quick test_paper_table1_orders;
          Alcotest.test_case "empty order" `Quick test_order_empty;
          Alcotest.test_case "validate" `Quick test_validate;
          Alcotest.test_case "refinement chain" `Quick test_refinement_chain;
          Alcotest.test_case "is_refinement" `Quick test_is_refinement;
          Alcotest.test_case "project order" `Quick test_project_order;
          Alcotest.test_case "ring names" `Quick test_ring_names;
        ] );
      ( "landmark",
        [
          Alcotest.test_case "choose counts" `Quick test_choose_counts;
          Alcotest.test_case "choose_random distinct" `Quick test_choose_random_distinct;
          Alcotest.test_case "spread beats random" `Quick test_choose_spread_is_spread;
          Alcotest.test_case "validation" `Quick test_choose_validation;
          Alcotest.test_case "of_routers + drop" `Quick test_of_routers_and_drop;
          Alcotest.test_case "measure = oracle" `Quick test_measure_matches_oracle;
          Alcotest.test_case "jitter bounds" `Quick test_measure_jittered_bounds;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_nesting; prop_order_length; prop_level_monotone ] );
    ]
