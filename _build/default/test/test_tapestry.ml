(* Tests for the Tapestry substrate: surrogate root resolution and prefix
   routing with proximity selection. *)

module Id = Hashid.Id
module Net = Tapestry.Network

let make ?(hosts = 150) ?(space = Id.sha1_space) seed =
  let rng = Prng.Rng.create ~seed in
  let lat = Topology.Transit_stub.generate ~hosts rng in
  let net =
    Net.build ~space ~hosts:(Array.init hosts (fun i -> i)) ~lat ~rng
      ~salt:(Printf.sprintf "tap%d" seed) ()
  in
  (lat, net)

let test_build_validation () =
  let rng = Prng.Rng.create ~seed:1 in
  let lat = Topology.Transit_stub.generate ~hosts:4 rng in
  Alcotest.check_raises "width not multiple of 4"
    (Invalid_argument "Tapestry.Network.build: identifier width must be a multiple of 4")
    (fun () -> ignore (Net.build ~space:(Id.space ~bits:10) ~hosts:[| 0 |] ~lat ~rng ()));
  Alcotest.check_raises "empty" (Invalid_argument "Tapestry.Network.build: empty network")
    (fun () -> ignore (Net.build ~space:Id.sha1_space ~hosts:[||] ~lat ~rng ()))

let test_root_deterministic () =
  let _, net = make 2 in
  let rng = Prng.Rng.create ~seed:3 in
  for _ = 1 to 100 do
    let key = Id.random Id.sha1_space rng in
    Alcotest.(check int) "stable root" (Net.root_of_key net key) (Net.root_of_key net key)
  done

let test_root_of_own_id () =
  let _, net = make 4 in
  (* a node's own identifier roots at that node: surrogate routing always
     finds the exact digits *)
  for node = 0 to Net.size net - 1 do
    Alcotest.(check int) "own id" node (Net.root_of_key net (Net.id net node))
  done

let test_root_path_matches_root () =
  let _, net = make 5 in
  let rng = Prng.Rng.create ~seed:6 in
  let sp = Net.space net in
  for _ = 1 to 100 do
    let key = Id.random Id.sha1_space rng in
    let path = Net.root_path net key in
    let root = Net.root_of_key net key in
    (* the root's digits follow the resolved path *)
    List.iteri
      (fun r d -> Alcotest.(check int) "root follows path" d (Id.digit4 sp (Net.id net root) r))
      path
  done

let test_route_reaches_root_from_everywhere () =
  let _, net = make ~hosts:80 7 in
  let rng = Prng.Rng.create ~seed:8 in
  for _ = 1 to 30 do
    let key = Id.random Id.sha1_space rng in
    let root = Net.root_of_key net key in
    for origin = 0 to Net.size net - 1 do
      let r = Net.route net ~origin ~key in
      Alcotest.(check int) "path-independent destination" root r.Net.destination
    done
  done

let test_route_accounting () =
  let _, net = make 9 in
  let rng = Prng.Rng.create ~seed:10 in
  for _ = 1 to 200 do
    let key = Id.random Id.sha1_space rng in
    let origin = Prng.Rng.int rng (Net.size net) in
    let r = Net.route net ~origin ~key in
    Alcotest.(check int) "hop count" r.Net.hop_count (List.length r.Net.hops);
    let total = List.fold_left (fun acc (h : Net.hop) -> acc +. h.Net.latency) 0.0 r.Net.hops in
    Alcotest.(check (float 1e-6)) "latency sums" total r.Net.latency;
    Alcotest.(check bool) "hops bounded by path length" true
      (r.Net.hop_count <= List.length (Net.root_path net key) + 1)
  done

let test_route_zero_hops_at_root () =
  let _, net = make 11 in
  let key = Net.id net 5 in
  let r = Net.route net ~origin:5 ~key in
  Alcotest.(check int) "no hops" 0 r.Net.hop_count;
  Alcotest.(check int) "stays" 5 r.Net.destination

let test_logarithmic_hops () =
  let _, net = make ~hosts:1024 12 in
  let rng = Prng.Rng.create ~seed:13 in
  let acc = ref 0 in
  let trials = 300 in
  for _ = 1 to trials do
    let key = Id.random Id.sha1_space rng in
    let origin = Prng.Rng.int rng 1024 in
    acc := !acc + (Net.route net ~origin ~key).Net.hop_count
  done;
  let mean = float_of_int !acc /. float_of_int trials in
  Alcotest.(check bool) "hops ~ log16 n" true (mean > 1.2 && mean < 4.5)

let test_single_node () =
  let rng = Prng.Rng.create ~seed:14 in
  let lat = Topology.Transit_stub.generate ~hosts:1 rng in
  let net = Net.build ~space:Id.sha1_space ~hosts:[| 0 |] ~lat ~rng () in
  let key = Id.of_hash Id.sha1_space "anything" in
  Alcotest.(check int) "root" 0 (Net.root_of_key net key);
  Alcotest.(check int) "route" 0 (Net.route net ~origin:0 ~key).Net.destination

let prop_route_ends_at_root =
  QCheck.Test.make ~name:"tapestry routes end at the surrogate root" ~count:20
    QCheck.(pair small_nat (int_range 4 90))
    (fun (seed, n) ->
      let rng = Prng.Rng.create ~seed:(seed + 70) in
      let lat = Topology.Transit_stub.generate ~hosts:n rng in
      let net =
        Net.build ~space:Id.sha1_space ~hosts:(Array.init n (fun i -> i)) ~lat ~rng
          ~salt:(string_of_int seed) ()
      in
      let ok = ref true in
      for _ = 1 to 20 do
        let key = Id.random Id.sha1_space rng in
        let origin = Prng.Rng.int rng n in
        if (Net.route net ~origin ~key).Net.destination <> Net.root_of_key net key then
          ok := false
      done;
      !ok)

let () =
  Alcotest.run "tapestry"
    [
      ( "roots",
        [
          Alcotest.test_case "validation" `Quick test_build_validation;
          Alcotest.test_case "deterministic" `Quick test_root_deterministic;
          Alcotest.test_case "own id" `Quick test_root_of_own_id;
          Alcotest.test_case "path matches root" `Quick test_root_path_matches_root;
        ] );
      ( "routing",
        [
          Alcotest.test_case "path-independent" `Slow test_route_reaches_root_from_everywhere;
          Alcotest.test_case "accounting" `Quick test_route_accounting;
          Alcotest.test_case "zero hops at root" `Quick test_route_zero_hops_at_root;
          Alcotest.test_case "logarithmic hops" `Slow test_logarithmic_hops;
          Alcotest.test_case "single node" `Quick test_single_node;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_route_ends_at_root ]);
    ]
