(* Tests for the CAN substrate: zones, the join-built partition, greedy
   routing and the layered (HIERAS-over-CAN) variant of paper §3.2. *)

module Zone = Can.Zone
module Net = Can.Network
module Route = Can.Route
module Layered = Can.Layered
module Id = Hashid.Id

(* --- Zone ------------------------------------------------------------------ *)

let test_zone_unit_and_split () =
  let z = Zone.unit 2 in
  Alcotest.(check int) "dims" 2 (Zone.dims z);
  Alcotest.(check (float 1e-12)) "volume" 1.0 (Zone.volume z);
  Alcotest.(check bool) "contains center" true (Zone.contains z [| 0.5; 0.5 |]);
  let lower, upper = Zone.split z in
  Alcotest.(check (float 1e-12)) "half volumes" 0.5 (Zone.volume lower);
  Alcotest.(check (float 1e-12)) "half volumes" 0.5 (Zone.volume upper);
  Alcotest.(check bool) "halves adjacent" true (Zone.adjacent lower upper);
  Alcotest.(check bool) "left point in lower" true (Zone.contains lower [| 0.1; 0.5 |]);
  Alcotest.(check bool) "right point in upper" true (Zone.contains upper [| 0.9; 0.5 |])

let test_zone_split_alternates_dims () =
  let z = Zone.unit 2 in
  let l, _ = Zone.split z in
  (* after splitting x, the widest dimension of the half is y *)
  Alcotest.(check int) "next split on y" 1 (Zone.widest_dim l);
  let ll, lu = Zone.split l in
  Alcotest.(check bool) "y-halves adjacent" true (Zone.adjacent ll lu)

let test_zone_torus_adjacency () =
  (* zones at opposite x-edges of the torus are adjacent across the seam *)
  let z = Zone.unit 1 in
  let l, u = Zone.split z in
  (* [0, 0.5) and [0.5, 1) touch at 0.5 AND across the 0/1 seam *)
  Alcotest.(check bool) "adjacent" true (Zone.adjacent l u);
  let ll, lr = Zone.split l in
  let ul, ur = Zone.split u in
  (* [0, 0.25) and [0.75, 1) only touch across the seam *)
  Alcotest.(check bool) "seam adjacency" true (Zone.adjacent ll ur);
  Alcotest.(check bool) "inner halves" true (Zone.adjacent lr ul);
  Alcotest.(check bool) "non-adjacent" false (Zone.adjacent ll ul)

let test_zone_corner_contact_not_adjacent () =
  (* quadrants touching only at the corner are not CAN neighbors *)
  let z = Zone.unit 2 in
  let l, u = Zone.split z in
  let ll, lu = Zone.split l in
  let ul, uu = Zone.split u in
  (* ll = [0,.5)x[0,.5), uu = [.5,1)x[.5,1): corner contact only *)
  Alcotest.(check bool) "corner quadrants" false (Zone.adjacent ll uu);
  Alcotest.(check bool) "corner quadrants" false (Zone.adjacent lu ul);
  Alcotest.(check bool) "side quadrants" true (Zone.adjacent ll ul);
  Alcotest.(check bool) "side quadrants" true (Zone.adjacent ll lu)

let test_zone_torus_distance () =
  let z = Zone.unit 2 in
  let l, _ = Zone.split z in
  (* l = [0,0.5) x [0,1) *)
  Alcotest.(check (float 1e-9)) "inside" 0.0 (Zone.torus_distance l [| 0.2; 0.3 |]);
  Alcotest.(check (float 1e-9)) "direct gap" 0.2 (Zone.torus_distance l [| 0.7; 0.3 |]);
  (* wrapping: x = 0.95 is 0.05 from lo = 0 across the seam *)
  Alcotest.(check (float 1e-9)) "seam gap" 0.05 (Zone.torus_distance l [| 0.95; 0.3 |])

(* --- Network ------------------------------------------------------------------ *)

let make ?(hosts = 150) seed =
  let rng = Prng.Rng.create ~seed in
  let lat = Topology.Transit_stub.generate ~hosts rng in
  let net =
    Net.build ~space:Id.sha1_space ~hosts:(Array.init hosts (fun i -> i))
      ~salt:(Printf.sprintf "c%d" seed) ()
  in
  (lat, net)

let test_partition_invariant () =
  let _, net = make 1 in
  Alcotest.(check bool) "zones partition the torus" true (Net.zones_partition_space net)

let test_neighbors_symmetric_and_adjacent () =
  let _, net = make 2 in
  for i = 0 to Net.size net - 1 do
    List.iter
      (fun j ->
        Alcotest.(check bool) "neighbor zones adjacent" true
          (Zone.adjacent (Net.zone net i) (Net.zone net j));
        Alcotest.(check bool) "symmetric" true (List.mem i (Net.neighbors net j)))
      (Net.neighbors net i)
  done

let test_neighbor_lists_complete () =
  (* brute force: every adjacent pair must be in each other's lists *)
  let _, net = make ~hosts:60 3 in
  for i = 0 to Net.size net - 1 do
    for j = 0 to Net.size net - 1 do
      if i <> j && Zone.adjacent (Net.zone net i) (Net.zone net j) then
        Alcotest.(check bool)
          (Printf.sprintf "pair %d-%d tracked" i j)
          true
          (List.mem j (Net.neighbors net i))
    done
  done

let test_mean_neighbors_near_2d () =
  let _, net = make ~hosts:500 4 in
  let m = Net.mean_neighbors net in
  (* theory: 2d = 4 for d=2; uneven splits push it a bit above *)
  Alcotest.(check bool) "near 2d" true (m > 3.0 && m < 8.0)

let test_owner_of_point () =
  let _, net = make 5 in
  for i = 0 to Net.size net - 1 do
    let c = Zone.center (Net.zone net i) in
    Alcotest.(check int) "zone center owned by zone holder" i (Net.owner_of_point net c)
  done

let test_key_point_deterministic () =
  let _, net = make 6 in
  let key = Id.of_hash Id.sha1_space "some-file" in
  let p1 = Net.key_point net key and p2 = Net.key_point net key in
  Alcotest.(check bool) "deterministic" true (p1 = p2);
  Array.iter (fun x -> Alcotest.(check bool) "in unit box" true (x >= 0.0 && x < 1.0)) p1

let test_of_points_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Can.Network: empty network") (fun () ->
      ignore (Net.of_points ~hosts:[||] ~points:[||]));
  Alcotest.check_raises "out of range" (Invalid_argument "Can.Network: point outside [0,1)")
    (fun () -> ignore (Net.of_points ~hosts:[| 0 |] ~points:[| [| 1.5 |] |]))

let test_dims_parameter () =
  let net3 =
    Net.build ~space:Id.sha1_space ~hosts:(Array.init 50 (fun i -> i)) ~dims:3 ()
  in
  Alcotest.(check int) "3 dimensions" 3 (Net.dims net3);
  Alcotest.(check bool) "partition holds in 3d" true (Net.zones_partition_space net3)

(* --- Route --------------------------------------------------------------------- *)

let test_route_reaches_owner () =
  let lat, net = make ~hosts:200 7 in
  let rng = Prng.Rng.create ~seed:8 in
  for _ = 1 to 300 do
    let key = Id.random Id.sha1_space rng in
    let origin = Prng.Rng.int rng 200 in
    let r = Route.route_key net lat ~origin ~key in
    Alcotest.(check int) "destination owns the key point" (Net.owner_of_key net key)
      r.Route.destination;
    Alcotest.(check bool) "destination zone contains point" true
      (Zone.contains (Net.zone net r.Route.destination) r.Route.point)
  done

let test_route_hop_scaling () =
  (* O(sqrt n) for d=2: hops must grow clearly slower than n *)
  let lat128, net128 = make ~hosts:128 9 in
  let lat512, net512 = make ~hosts:512 10 in
  let mean net lat n =
    let rng = Prng.Rng.create ~seed:11 in
    let acc = ref 0 in
    for _ = 1 to 200 do
      let key = Id.random Id.sha1_space rng in
      let origin = Prng.Rng.int rng n in
      acc := !acc + (Route.route_key net lat ~origin ~key).Route.hop_count
    done;
    float_of_int !acc /. 200.0
  in
  let h128 = mean net128 lat128 128 and h512 = mean net512 lat512 512 in
  Alcotest.(check bool) "grows" true (h512 > h128);
  (* sqrt scaling: x4 nodes -> about x2 hops, certainly below x3 *)
  Alcotest.(check bool) "sublinear" true (h512 < 3.0 *. h128)

(* --- Layered (HIERAS over CAN) ---------------------------------------------------- *)

let make_layered ?(hosts = 200) ?(depth = 2) seed =
  let rng = Prng.Rng.create ~seed in
  let lat = Topology.Transit_stub.generate ~hosts rng in
  let net =
    Net.build ~space:Id.sha1_space ~hosts:(Array.init hosts (fun i -> i))
      ~salt:(Printf.sprintf "lc%d" seed) ()
  in
  let lm = Binning.Landmark.choose_spread lat ~count:4 rng in
  (lat, net, Layered.build ~global:net ~lat ~landmarks:lm ~depth ())

let test_layered_structure () =
  let _, net, lcan = make_layered 12 in
  Alcotest.(check int) "depth" 2 (Layered.depth lcan);
  Alcotest.(check bool) "several rings" true (Layered.ring_count lcan ~layer:2 > 1);
  let total = ref 0 in
  let seen = Hashtbl.create 16 in
  for node = 0 to Net.size net - 1 do
    let o = Layered.order_of_node lcan ~layer:2 node in
    if not (Hashtbl.mem seen o) then begin
      Hashtbl.replace seen o ();
      total := !total + Layered.ring_size_of_node lcan ~layer:2 node
    end
  done;
  Alcotest.(check int) "rings partition the nodes" (Net.size net) !total

let test_layered_validation () =
  let rng = Prng.Rng.create ~seed:13 in
  let lat = Topology.Transit_stub.generate ~hosts:16 rng in
  let net = Net.build ~space:Id.sha1_space ~hosts:(Array.init 16 (fun i -> i)) () in
  let lm = Binning.Landmark.choose_spread lat ~count:2 rng in
  Alcotest.check_raises "depth 1" (Invalid_argument "Can.Layered.build: depth must be >= 2")
    (fun () -> ignore (Layered.build ~global:net ~lat ~landmarks:lm ~depth:1 ()))

let test_layered_route_correct () =
  let _, net, lcan = make_layered 14 in
  let rng = Prng.Rng.create ~seed:15 in
  for _ = 1 to 300 do
    let key = Id.random Id.sha1_space rng in
    let origin = Prng.Rng.int rng (Net.size net) in
    let r = Layered.route lcan ~origin ~key in
    Alcotest.(check int) "same owner as flat CAN" (Net.owner_of_key net key)
      r.Layered.destination;
    Alcotest.(check int) "per-layer hops sum" r.Layered.hop_count
      (Array.fold_left ( + ) 0 r.Layered.hops_per_layer);
    Alcotest.(check (float 1e-6)) "per-layer latency sums" r.Layered.latency
      (Array.fold_left ( +. ) 0.0 r.Layered.latency_per_layer)
  done

let test_layered_depth3 () =
  let _, net, lcan = make_layered ~depth:3 16 in
  let rng = Prng.Rng.create ~seed:17 in
  for _ = 1 to 150 do
    let key = Id.random Id.sha1_space rng in
    let origin = Prng.Rng.int rng (Net.size net) in
    let r = Layered.route lcan ~origin ~key in
    Alcotest.(check int) "depth-3 correct" (Net.owner_of_key net key) r.Layered.destination
  done

let test_layered_beats_flat_on_latency () =
  let lat, net, lcan = make_layered ~hosts:600 18 in
  let rng = Prng.Rng.create ~seed:19 in
  let flat = Stats.Summary.create () and layered = Stats.Summary.create () in
  for _ = 1 to 1500 do
    let key = Id.random Id.sha1_space rng in
    let origin = Prng.Rng.int rng 600 in
    Stats.Summary.add flat (Route.route_key net lat ~origin ~key).Route.latency;
    Stats.Summary.add layered (Layered.route lcan ~origin ~key).Layered.latency
  done;
  Alcotest.(check bool) "hierarchy helps CAN" true
    (Stats.Summary.mean layered < 0.7 *. Stats.Summary.mean flat)

(* --- qcheck ---------------------------------------------------------------------- *)

let prop_route_owner =
  QCheck.Test.make ~name:"CAN greedy always reaches the owner" ~count:25
    QCheck.(pair small_nat (int_range 4 80))
    (fun (seed, n) ->
      let rng = Prng.Rng.create ~seed:(seed + 90) in
      let lat = Topology.Transit_stub.generate ~hosts:n rng in
      let net =
        Net.build ~space:Id.sha1_space ~hosts:(Array.init n (fun i -> i))
          ~salt:(string_of_int seed) ()
      in
      let ok = ref true in
      for _ = 1 to 20 do
        let key = Id.random Id.sha1_space rng in
        let origin = Prng.Rng.int rng n in
        let r = Route.route_key net lat ~origin ~key in
        if r.Route.destination <> Net.owner_of_key net key then ok := false
      done;
      !ok)

let prop_partition_any_size =
  QCheck.Test.make ~name:"zones always partition the torus" ~count:25
    QCheck.(pair small_nat (int_range 1 120))
    (fun (seed, n) ->
      let net =
        Net.build ~space:Id.sha1_space ~hosts:(Array.init n (fun i -> i))
          ~salt:(string_of_int (seed + 1000)) ()
      in
      Net.zones_partition_space net)

let () =
  Alcotest.run "can"
    [
      ( "zone",
        [
          Alcotest.test_case "unit + split" `Quick test_zone_unit_and_split;
          Alcotest.test_case "split alternates" `Quick test_zone_split_alternates_dims;
          Alcotest.test_case "torus adjacency" `Quick test_zone_torus_adjacency;
          Alcotest.test_case "corner contact" `Quick test_zone_corner_contact_not_adjacent;
          Alcotest.test_case "torus distance" `Quick test_zone_torus_distance;
        ] );
      ( "network",
        [
          Alcotest.test_case "partition invariant" `Quick test_partition_invariant;
          Alcotest.test_case "neighbors symmetric" `Quick test_neighbors_symmetric_and_adjacent;
          Alcotest.test_case "neighbors complete" `Quick test_neighbor_lists_complete;
          Alcotest.test_case "mean neighbors ~2d" `Quick test_mean_neighbors_near_2d;
          Alcotest.test_case "owner of point" `Quick test_owner_of_point;
          Alcotest.test_case "key point" `Quick test_key_point_deterministic;
          Alcotest.test_case "validation" `Quick test_of_points_validation;
          Alcotest.test_case "3 dimensions" `Quick test_dims_parameter;
        ] );
      ( "route",
        [
          Alcotest.test_case "reaches owner" `Quick test_route_reaches_owner;
          Alcotest.test_case "hop scaling" `Slow test_route_hop_scaling;
        ] );
      ( "layered",
        [
          Alcotest.test_case "structure" `Quick test_layered_structure;
          Alcotest.test_case "validation" `Quick test_layered_validation;
          Alcotest.test_case "route correct" `Quick test_layered_route_correct;
          Alcotest.test_case "depth 3" `Quick test_layered_depth3;
          Alcotest.test_case "beats flat CAN" `Slow test_layered_beats_flat_on_latency;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_route_owner; prop_partition_any_size ] );
    ]
