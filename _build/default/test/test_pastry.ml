(* Tests for the Pastry substrate: digit machinery, routing tables with
   proximity neighbor selection, leaf sets and prefix routing. *)

module Id = Hashid.Id
module Net = Pastry.Network
module Route = Pastry.Route

let space16 = Id.space ~bits:16

let make ?(hosts = 120) ?(space = space16) seed =
  let rng = Prng.Rng.create ~seed in
  let lat = Topology.Transit_stub.generate ~hosts rng in
  let net =
    Net.build ~space ~hosts:(Array.init hosts (fun i -> i)) ~lat ~rng
      ~salt:(Printf.sprintf "t%d" seed) ()
  in
  (lat, net)

(* --- digits --------------------------------------------------------------- *)

let test_digit4 () =
  let sp = Id.space ~bits:16 in
  let x = Id.of_int sp 0xA3F7 in
  Alcotest.(check int) "digit 0" 0xA (Id.digit4 sp x 0);
  Alcotest.(check int) "digit 1" 0x3 (Id.digit4 sp x 1);
  Alcotest.(check int) "digit 2" 0xF (Id.digit4 sp x 2);
  Alcotest.(check int) "digit 3" 0x7 (Id.digit4 sp x 3);
  Alcotest.(check int) "count" 4 (Id.digit_count4 sp);
  Alcotest.check_raises "out of range" (Invalid_argument "Id.digit4: index out of range")
    (fun () -> ignore (Id.digit4 sp x 4))

let test_digit4_odd_nibbles () =
  (* 12-bit space: 3 digits, stored in 2 bytes with the top nibble masked *)
  let sp = Id.space ~bits:12 in
  let x = Id.of_int sp 0xABC in
  Alcotest.(check int) "count" 3 (Id.digit_count4 sp);
  Alcotest.(check int) "digit 0" 0xA (Id.digit4 sp x 0);
  Alcotest.(check int) "digit 1" 0xB (Id.digit4 sp x 1);
  Alcotest.(check int) "digit 2" 0xC (Id.digit4 sp x 2)

let test_shared_prefix () =
  let _, net = make 1 in
  let sp = Net.space net in
  let a = Id.of_int sp 0xAB10 and b = Id.of_int sp 0xAB73 in
  Alcotest.(check int) "two shared digits" 2 (Net.shared_prefix_len net a b);
  Alcotest.(check int) "identical ids" 4 (Net.shared_prefix_len net a a);
  let c = Id.of_int sp 0x1B10 in
  Alcotest.(check int) "nothing shared" 0 (Net.shared_prefix_len net a c)

(* --- structure -------------------------------------------------------------- *)

let test_build_validation () =
  let rng = Prng.Rng.create ~seed:2 in
  let lat = Topology.Transit_stub.generate ~hosts:4 rng in
  Alcotest.check_raises "width not multiple of 4"
    (Invalid_argument "Pastry.Network.build: identifier width must be a multiple of 4")
    (fun () ->
      ignore (Net.build ~space:(Id.space ~bits:10) ~hosts:[| 0; 1 |] ~lat ~rng ()));
  Alcotest.check_raises "empty" (Invalid_argument "Pastry.Network.build: empty network")
    (fun () -> ignore (Net.build ~space:space16 ~hosts:[||] ~lat ~rng ()))

let test_table_entries_share_prefix () =
  let _, net = make 3 in
  let sp = Net.space net in
  for node = 0 to Net.size net - 1 do
    for row = 0 to Net.rows net - 1 do
      for col = 0 to 15 do
        match Net.table_entry net node ~row ~col with
        | None -> ()
        | Some entry ->
            let nid = Net.id net node and eid = Net.id net entry in
            Alcotest.(check bool) "shares first `row` digits" true
              (Net.shared_prefix_len net nid eid >= row);
            Alcotest.(check int) "next digit is the column" col (Id.digit4 sp eid row)
      done
    done
  done

let test_leaf_set_is_numeric_neighbourhood () =
  let _, net = make 4 in
  let n = Net.size net in
  for node = 0 to n - 1 do
    let leaves = Net.leaf_set net node in
    Alcotest.(check bool) "non-empty" true (Array.length leaves > 0);
    Alcotest.(check bool) "bounded" true (Array.length leaves <= 16);
    Alcotest.(check bool) "self not a leaf" true (not (Array.exists (( = ) node) leaves));
    (* contains both ring neighbours *)
    Alcotest.(check bool) "successor present" true
      (Array.exists (( = ) ((node + 1) mod n)) leaves);
    Alcotest.(check bool) "predecessor present" true
      (Array.exists (( = ) ((node + n - 1) mod n)) leaves)
  done

let test_pns_prefers_close_nodes () =
  (* the mean routing-table link must be materially below the mean host
     distance: that is what proximity neighbor selection buys *)
  let lat, net = make ~hosts:400 ~space:Id.sha1_space 5 in
  let rng = Prng.Rng.create ~seed:6 in
  let table_link = Net.mean_table_link_latency net ~samples:2000 rng in
  let global = Topology.Latency.mean_host_latency lat rng in
  Alcotest.(check bool) "PNS links cheaper than average" true (table_link < 0.75 *. global)

let test_root_of_key () =
  let _, net = make 7 in
  let sp = Net.space net in
  (* the root is the numerically closest node: for a node's own id it is the
     node itself *)
  for node = 0 to Net.size net - 1 do
    Alcotest.(check int) "own id roots at self" node (Net.root_of_key net (Net.id net node))
  done;
  (* a key just above a node's id roots at that node or its successor *)
  let node = 10 in
  let key = Id.succ sp (Net.id net node) in
  let root = Net.root_of_key net key in
  Alcotest.(check bool) "adjacent root" true (root = node || root = (node + 1) mod Net.size net)

(* --- routing ------------------------------------------------------------------- *)

let test_route_reaches_root () =
  let _, net = make ~hosts:200 ~space:Id.sha1_space 8 in
  let rng = Prng.Rng.create ~seed:9 in
  for _ = 1 to 500 do
    let key = Id.random Id.sha1_space rng in
    let origin = Prng.Rng.int rng 200 in
    let r = Route.route net ~origin ~key in
    Alcotest.(check int) "ends at the root" (Net.root_of_key net key) r.Route.destination;
    Alcotest.(check int) "hop bookkeeping" r.Route.hop_count (List.length r.Route.hops)
  done

let test_route_zero_hops_at_root () =
  let _, net = make 10 in
  let node = 3 in
  let r = Route.route net ~origin:node ~key:(Net.id net node) in
  Alcotest.(check int) "stays" node r.Route.destination;
  Alcotest.(check int) "no hops" 0 r.Route.hop_count

let test_route_logarithmic_hops () =
  let _, net = make ~hosts:1024 ~space:Id.sha1_space 11 in
  let rng = Prng.Rng.create ~seed:12 in
  let acc = ref 0 in
  let trials = 400 in
  for _ = 1 to trials do
    let key = Id.random Id.sha1_space rng in
    let origin = Prng.Rng.int rng 1024 in
    acc := !acc + (Route.route net ~origin ~key).Route.hop_count
  done;
  let mean = float_of_int !acc /. float_of_int trials in
  (* log16(1024) = 2.5; generous band *)
  Alcotest.(check bool) "hops ~ log16 n" true (mean > 1.2 && mean < 4.5)

let test_route_latency_consistent () =
  let _, net = make ~hosts:150 ~space:Id.sha1_space 13 in
  let rng = Prng.Rng.create ~seed:14 in
  for _ = 1 to 200 do
    let key = Id.random Id.sha1_space rng in
    let origin = Prng.Rng.int rng 150 in
    let r = Route.route net ~origin ~key in
    let total = List.fold_left (fun acc (h : Route.hop) -> acc +. h.Route.latency) 0.0 r.Route.hops in
    Alcotest.(check (float 1e-6)) "latency = sum of hops" total r.Route.latency
  done

(* --- qcheck --------------------------------------------------------------------- *)

let prop_route_correct =
  QCheck.Test.make ~name:"pastry routes end at the numerically closest node" ~count:25
    QCheck.(pair small_nat (int_range 8 100))
    (fun (seed, n) ->
      let rng = Prng.Rng.create ~seed:(seed + 50) in
      let lat = Topology.Transit_stub.generate ~hosts:n rng in
      let net =
        Net.build ~space:Id.sha1_space ~hosts:(Array.init n (fun i -> i)) ~lat ~rng
          ~salt:(string_of_int seed) ()
      in
      let ok = ref true in
      for _ = 1 to 25 do
        let key = Id.random Id.sha1_space rng in
        let origin = Prng.Rng.int rng n in
        let r = Route.route net ~origin ~key in
        if r.Route.destination <> Net.root_of_key net key then ok := false
      done;
      !ok)

let () =
  Alcotest.run "pastry"
    [
      ( "digits",
        [
          Alcotest.test_case "digit4" `Quick test_digit4;
          Alcotest.test_case "odd nibbles" `Quick test_digit4_odd_nibbles;
          Alcotest.test_case "shared prefix" `Quick test_shared_prefix;
        ] );
      ( "structure",
        [
          Alcotest.test_case "validation" `Quick test_build_validation;
          Alcotest.test_case "table entries share prefix" `Quick test_table_entries_share_prefix;
          Alcotest.test_case "leaf sets" `Quick test_leaf_set_is_numeric_neighbourhood;
          Alcotest.test_case "PNS locality" `Quick test_pns_prefers_close_nodes;
          Alcotest.test_case "root of key" `Quick test_root_of_key;
        ] );
      ( "routing",
        [
          Alcotest.test_case "reaches the root" `Quick test_route_reaches_root;
          Alcotest.test_case "zero hops at root" `Quick test_route_zero_hops_at_root;
          Alcotest.test_case "logarithmic hops" `Slow test_route_logarithmic_hops;
          Alcotest.test_case "latency accounting" `Quick test_route_latency_consistent;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_route_correct ]);
    ]
