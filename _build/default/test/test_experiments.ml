(* Tests for the experiment harness: configuration, the paired-measurement
   runner and the figure generators (run shrunk). *)

module Config = Experiments.Config
module Runner = Experiments.Runner
module Figures = Experiments.Figures
module Report = Experiments.Report
module Expected = Experiments.Expected
module Summary = Stats.Summary

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let tiny =
  (* a configuration small enough to run dozens of times in the suite *)
  Config.paper_default |> fun c ->
  Config.with_nodes c 256 |> fun c ->
  Config.with_requests c 1500 |> fun c -> Config.with_landmarks c 4

(* --- Config -------------------------------------------------------------------- *)

let test_paper_default () =
  let c = Config.paper_default in
  Alcotest.(check int) "nodes" 10_000 c.Config.nodes;
  Alcotest.(check int) "requests" 100_000 c.Config.requests;
  Alcotest.(check int) "landmarks" 4 c.Config.landmarks;
  Alcotest.(check int) "depth" 2 c.Config.depth;
  Alcotest.(check bool) "model TS" true (c.Config.model = Topology.Model.Transit_stub)

let test_scaled () =
  let c = Config.scaled Config.paper_default 0.01 in
  Alcotest.(check int) "nodes scaled" 100 c.Config.nodes;
  Alcotest.(check int) "requests scaled" 1000 c.Config.requests;
  let floor = Config.scaled Config.paper_default 0.000001 in
  Alcotest.(check int) "node floor" 64 floor.Config.nodes;
  Alcotest.(check int) "request floor" 100 floor.Config.requests;
  Alcotest.check_raises "non-positive" (Invalid_argument "Config.scaled: factor must be positive")
    (fun () -> ignore (Config.scaled Config.paper_default 0.0))

let test_network_sizes () =
  let c = Config.paper_default in
  Alcotest.(check (list int)) "1000..10000"
    [ 1000; 2000; 3000; 4000; 5000; 6000; 7000; 8000; 9000; 10000 ]
    (Config.network_sizes c);
  let inet = Config.with_model c Topology.Model.Inet in
  Alcotest.(check (list int)) "inet starts at 3000"
    [ 3000; 4000; 5000; 6000; 7000; 8000; 9000; 10000 ]
    (Config.network_sizes inet);
  let small = Config.with_nodes c 1000 in
  Alcotest.(check int) "scaled sweep length" 10 (List.length (Config.network_sizes small));
  Alcotest.(check (list int)) "scaled values" [ 100; 200; 300 ]
    (List.filteri (fun i _ -> i < 3) (Config.network_sizes small))

let test_with_accessors () =
  let c = Config.with_seed (Config.with_depth tiny 3) 99 in
  Alcotest.(check int) "depth" 3 c.Config.depth;
  Alcotest.(check int) "seed" 99 c.Config.seed

(* --- Runner --------------------------------------------------------------------- *)

let metrics = lazy (Runner.run tiny)

let test_runner_counts () =
  let m = Lazy.force metrics in
  Alcotest.(check int) "chord samples" tiny.Config.requests (Summary.count m.Runner.chord_hops);
  Alcotest.(check int) "hieras samples" tiny.Config.requests (Summary.count m.Runner.hieras_hops);
  Alcotest.(check int) "pdf populated" tiny.Config.requests
    (Stats.Histogram.count m.Runner.chord_hop_pdf)

let test_runner_headline_shape () =
  let m = Lazy.force metrics in
  (* HIERAS wins on latency, roughly ties on hops — the paper's claim *)
  Alcotest.(check bool) "latency ratio < 0.9" true (Runner.latency_ratio m < 0.9);
  Alcotest.(check bool) "hop overhead within 15%" true
    (Float.abs (Runner.hop_overhead m) < 0.15);
  Alcotest.(check bool) "lower layers dominate hops" true (Runner.lower_hop_share m > 0.3);
  Alcotest.(check bool) "lower links cheaper than top links" true
    (Runner.mean_link_latency_lower m < Runner.mean_link_latency_top m)

let test_runner_layer_decomposition () =
  let m = Lazy.force metrics in
  (* per-layer means sum to the totals *)
  let hop_sum = Array.fold_left ( +. ) 0.0 m.Runner.hops_per_layer in
  Alcotest.(check bool) "layer hops sum to mean" true
    (Float.abs (hop_sum -. Summary.mean m.Runner.hieras_hops) < 1e-6);
  let lat_sum = Array.fold_left ( +. ) 0.0 m.Runner.latency_per_layer in
  Alcotest.(check bool) "layer latency sums to mean" true
    (Float.abs (lat_sum -. Summary.mean m.Runner.hieras_latency) < 1e-3);
  Alcotest.(check bool) "shares in [0,1]" true
    (Runner.lower_hop_share m >= 0.0 && Runner.lower_hop_share m <= 1.0
    && Runner.lower_latency_share m >= 0.0
    && Runner.lower_latency_share m <= 1.0)

let test_runner_deterministic () =
  let a = Runner.run (Config.with_requests tiny 300) in
  let b = Runner.run (Config.with_requests tiny 300) in
  Alcotest.(check (float 1e-9)) "same mean hops" (Summary.mean a.Runner.hieras_hops)
    (Summary.mean b.Runner.hieras_hops);
  Alcotest.(check (float 1e-9)) "same mean latency" (Summary.mean a.Runner.hieras_latency)
    (Summary.mean b.Runner.hieras_latency)

let test_runner_reuses_env_across_variants () =
  let env = Runner.build_env tiny in
  let h4 = Runner.build_hieras env (Config.with_landmarks tiny 4) in
  let h6 = Runner.build_hieras env (Config.with_landmarks tiny 6) in
  Alcotest.(check bool) "more landmarks, at least as many rings" true
    (Hieras.Hnetwork.ring_count h6 ~layer:2 >= Hieras.Hnetwork.ring_count h4 ~layer:2);
  let m = Runner.measure env h4 (Config.with_requests tiny 200) in
  Alcotest.(check int) "measure honours request count" 200 (Summary.count m.Runner.chord_hops)

(* --- Figures -------------------------------------------------------------------- *)

let small_fig_cfg =
  Config.paper_default |> fun c ->
  Config.scaled c 0.012 |> fun c -> Config.with_seed c 7

let test_table1_section () =
  let s = Figures.table1 small_fig_cfg in
  Alcotest.(check string) "id" "table1" s.Report.id;
  let rendered = Report.render s in
  Alcotest.(check bool) "has order column" true
    (String.length rendered > 0 && contains ~sub:"Order" rendered)

let test_table2_section () =
  let s = Figures.table2 small_fig_cfg in
  Alcotest.(check string) "id" "table2" s.Report.id;
  let r = Report.render s in
  (* 8-bit space: 8 finger rows plus header material *)
  let lines = String.split_on_char '\n' r in
  Alcotest.(check bool) "at least 10 lines" true (List.length lines >= 10)

let test_fig4_fig5_sections () =
  let f4, f5 = Figures.fig4_and_fig5 small_fig_cfg in
  Alcotest.(check string) "fig4 id" "fig4" f4.Report.id;
  Alcotest.(check string) "fig5 id" "fig5" f5.Report.id;
  Alcotest.(check bool) "fig4 has notes" true (f4.Report.notes <> []);
  Alcotest.(check bool) "fig5 has notes" true (f5.Report.notes <> [])

let test_by_id () =
  Alcotest.(check bool) "known ids resolve" true
    (List.for_all (fun id -> Figures.by_id id <> None) Figures.ids);
  Alcotest.(check bool) "unknown id" true (Figures.by_id "fig99" = None)

let test_expected_constants () =
  Alcotest.(check (float 1e-9)) "fig5 ratio" 0.5407 Expected.fig5_latency_ratio;
  Alcotest.(check bool) "fig3 ratios ordered" true
    (Expected.fig3_latency_ratio Topology.Model.Transit_stub
    < Expected.fig3_latency_ratio Topology.Model.Brite);
  Alcotest.(check string) "pct format" "54.07%" (Expected.pct 0.5407)

let test_extensions_sections () =
  let cfg =
    Config.paper_default |> fun c ->
    Config.with_nodes c 200 |> fun c ->
    Config.with_requests c 600 |> fun c -> Config.with_seed c 5
  in
  let sections = Experiments.Extensions.all cfg in
  Alcotest.(check int) "three sections" 3 (List.length sections);
  List.iter
    (fun s ->
      let r = Report.render s in
      Alcotest.(check bool) "renders" true (String.length r > 40))
    sections;
  (* the algorithm table must mention every contender *)
  let r = Report.render (List.hd sections) in
  List.iter
    (fun name -> Alcotest.(check bool) name true (contains ~sub:name r))
    [ "Chord"; "HIERAS"; "Pastry"; "CAN" ]

let test_report_render () =
  let table = Stats.Text_table.create [ "a" ] in
  Stats.Text_table.add_row table [ "1" ];
  let s = { Report.id = "x"; title = "t"; table; notes = [ "note" ] } in
  let r = Report.render s in
  Alcotest.(check bool) "titled" true (String.sub r 0 8 = "=== x: t");
  Alcotest.(check bool) "notes rendered" true (contains ~sub:"* note" r)

let () =
  Alcotest.run "experiments"
    [
      ( "config",
        [
          Alcotest.test_case "paper default" `Quick test_paper_default;
          Alcotest.test_case "scaled" `Quick test_scaled;
          Alcotest.test_case "network sizes" `Quick test_network_sizes;
          Alcotest.test_case "accessors" `Quick test_with_accessors;
        ] );
      ( "runner",
        [
          Alcotest.test_case "counts" `Slow test_runner_counts;
          Alcotest.test_case "headline shape" `Slow test_runner_headline_shape;
          Alcotest.test_case "layer decomposition" `Slow test_runner_layer_decomposition;
          Alcotest.test_case "deterministic" `Slow test_runner_deterministic;
          Alcotest.test_case "env reuse" `Slow test_runner_reuses_env_across_variants;
        ] );
      ( "figures",
        [
          Alcotest.test_case "table1" `Slow test_table1_section;
          Alcotest.test_case "table2" `Quick test_table2_section;
          Alcotest.test_case "fig4+fig5" `Slow test_fig4_fig5_sections;
          Alcotest.test_case "by_id" `Quick test_by_id;
          Alcotest.test_case "extensions" `Slow test_extensions_sections;
          Alcotest.test_case "expected constants" `Quick test_expected_constants;
          Alcotest.test_case "report render" `Quick test_report_render;
        ] );
    ]
