(* The end-to-end application the paper routes for: a file-location service.

   Peers publish which files they hold; any peer can then resolve a file
   name to the set of peers advertising it. The user-visible cost of a query
   is the hierarchical routing latency plus the direct response from the
   record's owner — this example measures both under HIERAS and under plain
   Chord for the same catalogue.

   Run with: dune exec examples/file_location.exe *)

let () =
  let n = 1500 in
  let files = 2000 in
  let queries = 10_000 in
  let rng = Prng.Rng.create ~seed:404 in
  let lat = Topology.Transit_stub.generate ~hosts:n rng in
  let space = Hashid.Id.sha1_space in
  let chord = Chord.Network.build ~space ~hosts:(Array.init n (fun i -> i)) () in
  let landmarks = Binning.Landmark.choose_spread lat ~count:6 (Prng.Rng.split rng) in
  let hnet = Hieras.Hnetwork.build ~chord ~lat ~landmarks ~depth:2 () in
  let svc = Hieras.Location.create hnet in

  (* every file is published by 1-3 random peers *)
  let name i = Printf.sprintf "track-%04d.ogg" i in
  let publish_latency = Stats.Summary.create () in
  for i = 0 to files - 1 do
    let copies = 1 + Prng.Rng.int rng 3 in
    for _ = 1 to copies do
      let r = Hieras.Location.publish svc ~from:(Prng.Rng.int rng n) ~name:(name i) in
      Stats.Summary.add publish_latency r.Hieras.Location.total_latency
    done
  done;
  Printf.printf "published %d files (mean publish round trip %.0f ms)\n" files
    (Stats.Summary.mean publish_latency);

  (* queries with Zipf popularity; same queries costed under plain Chord *)
  let table = Prng.Dist.make_zipf_table ~n:files ~alpha:0.9 in
  let h_total = Stats.Summary.create () and c_total = Stats.Summary.create () in
  let found = ref 0 in
  for _ = 1 to queries do
    let f = Prng.Dist.zipf_draw rng table in
    let from = Prng.Rng.int rng n in
    let q = Hieras.Location.lookup svc ~from ~name:(name f) in
    if q.Hieras.Location.locations <> [] then incr found;
    Stats.Summary.add h_total q.Hieras.Location.total_latency;
    (* chord cost of the same query: forward route + direct response *)
    let rc = Chord.Lookup.route chord lat ~origin:from ~key:(Hashid.Id.of_hash space ("file:" ^ name f)) in
    let resp =
      Topology.Latency.host_latency lat
        (Chord.Network.host chord rc.Chord.Lookup.destination)
        (Chord.Network.host chord from)
    in
    Stats.Summary.add c_total (rc.Chord.Lookup.latency +. resp)
  done;
  Printf.printf "resolved %d/%d queries\n" !found queries;
  Printf.printf "mean query round trip: hieras %.0f ms, chord %.0f ms (%.1f%%)\n"
    (Stats.Summary.mean h_total) (Stats.Summary.mean c_total)
    (100.0 *. Stats.Summary.mean h_total /. Stats.Summary.mean c_total);

  (* record load distribution across owners *)
  let owners = ref 0 and max_load = ref 0 in
  for node = 0 to n - 1 do
    let l = Hieras.Location.stored_on svc node in
    if l > 0 then incr owners;
    if l > !max_load then max_load := l
  done;
  Printf.printf "records spread over %d owner nodes (max %d per node)\n" !owners !max_load
