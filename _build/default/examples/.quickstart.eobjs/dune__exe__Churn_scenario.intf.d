examples/churn_scenario.mli:
