examples/churn_scenario.ml: Array Binning Hashid Hieras List Printf Prng Simnet Topology Workload
