examples/file_location.mli:
