examples/latency_comparison.ml: Array Binning Chord Hashid Hieras Printf Prng Stats Topology Workload
