examples/quickstart.mli:
