examples/binning_demo.mli:
