examples/binning_demo.ml: Binning Experiments Printf Prng Topology
