examples/finger_tables_demo.ml: Array Binning Chord Experiments Format Hashid Hieras List Prng Topology
