examples/finger_tables_demo.mli:
