examples/quickstart.ml: Array Binning Chord Hashid Hieras List Printf Prng String Topology Workload
