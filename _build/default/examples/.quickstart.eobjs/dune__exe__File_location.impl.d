examples/file_location.ml: Array Binning Chord Hashid Hieras Printf Prng Stats Topology
