examples/latency_comparison.mli:
