(* The distributed binning scheme in action — the paper's Table 1.

   Six sample nodes measure their latency to four landmark nodes; the
   quantised levels (0 for <20 ms, 1 for <100 ms, 2 beyond) concatenate
   into the landmark order that names their layer-2 ring. The demo also
   shows what happens to the orders when a landmark fails (paper §2.3)
   and that jittered "ping" measurements rarely change them.

   Run with: dune exec examples/binning_demo.exe *)

let () =
  let cfg =
    Experiments.Config.paper_default
    |> (fun c -> Experiments.Config.with_nodes c 1000)
    |> fun c -> Experiments.Config.with_requests c 0
  in
  Experiments.Report.print (Experiments.Figures.table1 cfg);

  (* landmark failure: survivors keep their digits *)
  let rng = Prng.Rng.create ~seed:11 in
  let lat = Topology.Transit_stub.generate ~hosts:200 rng in
  let lm = Binning.Landmark.choose_spread lat ~count:4 rng in
  let host = 17 in
  let order l = Binning.Scheme.order Binning.Scheme.paper_thresholds (Binning.Landmark.measure lat l ~host) in
  let full = order lm in
  Printf.printf "\nnode %d order with 4 landmarks : %s\n" host full;
  Printf.printf "after landmark 2 fails         : %s (projected: %s)\n"
    (order (Binning.Landmark.drop lm 1))
    (Binning.Scheme.project_order ~full ~dropped:1);

  (* measurement jitter tolerance *)
  let stable = ref 0 in
  let trials = 1000 in
  for _ = 1 to trials do
    let noisy =
      Binning.Landmark.measure_jittered lat lm ~host ~rng ~spread:0.15
    in
    if Binning.Scheme.order Binning.Scheme.paper_thresholds noisy = full then incr stable
  done;
  Printf.printf "\norder stable under 15%% ping jitter: %d/%d trials\n" !stable trials
