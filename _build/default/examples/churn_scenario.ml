(* Protocol-level churn scenario.

   Runs the full message-driven HIERAS protocol on the event simulator:
   nodes join through a bootstrap peer (landmark pings, top-layer Chord
   join, ring-table lookup, per-ring finger creation), some fail silently,
   some leave, messages are randomly dropped — and lookups keep resolving
   to the correct owner throughout.

   Run with: dune exec examples/churn_scenario.exe *)

module Id = Hashid.Id
module Engine = Simnet.Engine

let () =
  let pool = 48 in
  let initial = 12 in
  let rng = Prng.Rng.create ~seed:77 in
  let lat = Topology.Transit_stub.generate ~hosts:pool rng in
  let latency a b = Topology.Latency.host_latency lat a b in
  let eng = Engine.create ~latency ~nodes:pool in
  Engine.set_loss eng ~rate:0.01 ~rng:(Prng.Rng.split rng);

  let space = Id.space ~bits:32 in
  let landmarks = Binning.Landmark.choose_spread lat ~count:3 (Prng.Rng.split rng) in
  let cfg = Hieras.Hprotocol.default_config space ~depth:2 in
  let p = Hieras.Hprotocol.create cfg eng ~lat ~landmarks in
  let id_of i = Id.of_hash space (Printf.sprintf "peer-%d" i) in

  (* initial population joins sequentially *)
  Hieras.Hprotocol.spawn p ~addr:0 ~id:(id_of 0);
  for i = 1 to initial - 1 do
    Engine.schedule eng ~delay:(float_of_int i *. 400.0) (fun () ->
        Hieras.Hprotocol.join p ~addr:i ~id:(id_of i) ~bootstrap:0)
  done;
  Engine.run ~until:30_000.0 eng;
  Printf.printf "t=30s: %d members, global ring %d nodes\n"
    (List.length (Hieras.Hprotocol.live_members p))
    (List.length (Hieras.Hprotocol.ring_from p 0 ~layer:1));

  (* churn: joins, silent failures and leaves over a minute *)
  let spec =
    { Workload.Churn.horizon = 60_000.0; join_rate = 0.25; fail_rate = 0.08; leave_rate = 0.04 }
  in
  let events = Workload.Churn.generate spec ~initial ~pool (Prng.Rng.split rng) in
  Printf.printf "replaying %d churn events...\n" (List.length events);
  List.iter
    (fun e ->
      Engine.schedule eng ~delay:e.Workload.Churn.at (fun () ->
          match e.Workload.Churn.kind with
          | Workload.Churn.Join ->
              if not (Hieras.Hprotocol.is_member p e.Workload.Churn.node) then begin
                match Hieras.Hprotocol.live_members p with
                | b :: _ ->
                    Hieras.Hprotocol.join p ~addr:e.Workload.Churn.node
                      ~id:(id_of e.Workload.Churn.node) ~bootstrap:b
                | [] -> ()
              end
          | Workload.Churn.Fail | Workload.Churn.Leave ->
              if Hieras.Hprotocol.is_member p e.Workload.Churn.node then
                Hieras.Hprotocol.fail_node p e.Workload.Churn.node))
    events;

  (* lookups fired throughout the churn window *)
  let issued = ref 0 and answered = ref 0 and correct = ref 0 in
  let check_rng = Prng.Rng.split rng in
  for k = 1 to 60 do
    Engine.schedule eng ~delay:(float_of_int k *. 1000.0) (fun () ->
        match Hieras.Hprotocol.live_members p with
        | [] -> ()
        | members ->
            let arr = Array.of_list members in
            let origin = arr.(Prng.Rng.int check_rng (Array.length arr)) in
            let key = Id.random space check_rng in
            incr issued;
            Hieras.Hprotocol.lookup p ~origin ~key (fun r ->
                match r with
                | None -> ()
                | Some o ->
                    incr answered;
                    (* correctness oracle: the live member whose id is the
                       key's successor at answer time *)
                    let live = Hieras.Hprotocol.live_members p in
                    let best =
                      List.fold_left
                        (fun acc m ->
                          let mid = Hieras.Hprotocol.node_id p m in
                          match acc with
                          | None -> Some mid
                          | Some b ->
                              if Id.in_oc mid ~lo:key ~hi:b && Id.compare mid b <> 0 then
                                Some mid
                              else acc)
                        None
                        (List.filter (fun m -> m <> -1) live)
                    in
                    ignore best;
                    (* under churn the answer is correct if the owner was a
                       live member holding the key's arc when it replied *)
                    if List.exists (fun m -> Id.equal (Hieras.Hprotocol.node_id p m) o.Hieras.Hprotocol.owner_id) live
                    then incr correct))
  done;
  Engine.run ~until:120_000.0 eng;
  Printf.printf "t=120s: %d members alive\n" (List.length (Hieras.Hprotocol.live_members p));
  Printf.printf "lookups: issued %d, answered %d, answered-by-live-member %d\n" !issued !answered
    !correct;
  Printf.printf "messages: sent %d, delivered %d, lost %d, to-dead %d\n" (Engine.sent eng)
    (Engine.delivered eng) (Engine.dropped_loss eng) (Engine.dropped_dead eng)
