(* Quickstart: build a two-layer HIERAS network over a simulated
   transit-stub Internet, store a file name in the DHT, and look it up —
   comparing the route against plain Chord.

   Run with: dune exec examples/quickstart.exe *)

let () =
  let rng = Prng.Rng.create ~seed:42 in

  (* 1. a simulated Internet: 1000 end-hosts on a GT-ITM transit-stub
     topology (the paper's primary model; link delays 100/20/5 ms) *)
  let lat = Topology.Transit_stub.generate ~hosts:1000 rng in
  Printf.printf "topology: %d hosts, %d routers, mean host-host latency %.1f ms\n"
    (Topology.Latency.hosts lat) (Topology.Latency.routers lat)
    (Topology.Latency.mean_host_latency lat rng);

  (* 2. a Chord network: one peer per host, 160-bit SHA-1 identifiers *)
  let space = Hashid.Id.sha1_space in
  let hosts = Array.init 1000 (fun i -> i) in
  let chord = Chord.Network.build ~space ~hosts () in

  (* 3. the HIERAS overlay: 4 landmark nodes spread over the topology,
     distributed binning, two layers *)
  let landmarks = Binning.Landmark.choose_spread lat ~count:4 rng in
  let hieras = Hieras.Hnetwork.build ~chord ~lat ~landmarks ~depth:2 () in
  Printf.printf "hieras: %d layer-2 rings\n" (Hieras.Hnetwork.ring_count hieras ~layer:2);

  (* 4. a file is stored at the successor of its hashed name *)
  let key = Workload.Keys.file_key space "icpp-2003-camera-ready.pdf" in
  let owner = Chord.Network.successor_of_key chord key in
  Printf.printf "file key %s...\nstored on node %d\n"
    (String.sub (Hashid.Id.to_hex key) 0 16)
    owner;

  (* 5. route to it from a random peer, with both algorithms *)
  let origin = Prng.Rng.int rng 1000 in
  let rh = Hieras.Hlookup.route_checked hieras ~origin ~key in
  let rc = Chord.Lookup.route chord lat ~origin ~key in
  Printf.printf "\nlookup from node %d:\n" origin;
  Printf.printf "  chord : %d hops, %7.1f ms\n" rc.Chord.Lookup.hop_count rc.Chord.Lookup.latency;
  Printf.printf "  hieras: %d hops, %7.1f ms (%d on the local ring)\n"
    rh.Hieras.Hlookup.hop_count rh.Hieras.Hlookup.latency
    (Array.fold_left ( + ) 0 rh.Hieras.Hlookup.hops_per_layer
    - rh.Hieras.Hlookup.hops_per_layer.(0));
  List.iter
    (fun h ->
      Printf.printf "    layer %d: node %4d -> node %4d  %7.1f ms\n" h.Hieras.Hlookup.layer
        h.Hieras.Hlookup.from_node h.Hieras.Hlookup.to_node h.Hieras.Hlookup.latency)
    rh.Hieras.Hlookup.hops
