(* A P2P file-sharing workload: Chord vs HIERAS.

   The paper motivates HIERAS with wide-area P2P applications (Napster,
   Gnutella, KaZaA...). This example models one: 2000 peers on a
   transit-stub Internet share a catalogue of 5000 documents whose
   popularity is Zipf-distributed (as measured for real P2P file sharing),
   and every peer resolves documents through the DHT. We compare the user-
   visible lookup latency under Chord and under two- and three-layer
   HIERAS, including tail percentiles — the metric a downstream user of the
   library would actually care about.

   Run with: dune exec examples/latency_comparison.exe *)

let () =
  let nodes = 2000 in
  let lookups = 20_000 in
  let rng = Prng.Rng.create ~seed:1914 in
  let lat = Topology.Transit_stub.generate ~hosts:nodes rng in
  let space = Hashid.Id.sha1_space in
  let chord = Chord.Network.build ~space ~hosts:(Array.init nodes (fun i -> i)) () in
  let landmarks = Binning.Landmark.choose_spread lat ~count:6 (Prng.Rng.split rng) in
  let h2 = Hieras.Hnetwork.build ~chord ~lat ~landmarks ~depth:2 () in
  let h3 = Hieras.Hnetwork.build ~chord ~lat ~landmarks ~depth:3 () in

  let spec =
    {
      Workload.Requests.count = lookups;
      keys = Workload.Keys.Zipf { catalogue = 5000; alpha = 0.95 };
      origin_bias = 0.0;
    }
  in
  let lat_chord = Stats.Histogram.create ~lo:0.0 ~hi:2500.0 ~bins:250 in
  let lat_h2 = Stats.Histogram.create ~lo:0.0 ~hi:2500.0 ~bins:250 in
  let lat_h3 = Stats.Histogram.create ~lo:0.0 ~hi:2500.0 ~bins:250 in
  let sum_c = Stats.Summary.create () in
  let sum_2 = Stats.Summary.create () in
  let sum_3 = Stats.Summary.create () in
  Workload.Requests.iter spec ~nodes ~space (Prng.Rng.split rng) (fun r ->
      let rc = Chord.Lookup.route chord lat ~origin:r.Workload.Requests.origin ~key:r.Workload.Requests.key in
      let r2 = Hieras.Hlookup.route h2 ~origin:r.Workload.Requests.origin ~key:r.Workload.Requests.key in
      let r3 = Hieras.Hlookup.route h3 ~origin:r.Workload.Requests.origin ~key:r.Workload.Requests.key in
      Stats.Histogram.add lat_chord rc.Chord.Lookup.latency;
      Stats.Histogram.add lat_h2 r2.Hieras.Hlookup.latency;
      Stats.Histogram.add lat_h3 r3.Hieras.Hlookup.latency;
      Stats.Summary.add sum_c rc.Chord.Lookup.latency;
      Stats.Summary.add sum_2 r2.Hieras.Hlookup.latency;
      Stats.Summary.add sum_3 r3.Hieras.Hlookup.latency);

  let table = Stats.Text_table.create [ "Algorithm"; "mean ms"; "p50"; "p90"; "p99"; "vs Chord" ] in
  let row name s h =
    Stats.Text_table.add_row table
      [
        name;
        Printf.sprintf "%.1f" (Stats.Summary.mean s);
        Printf.sprintf "%.0f" (Stats.Histogram.quantile h 0.50);
        Printf.sprintf "%.0f" (Stats.Histogram.quantile h 0.90);
        Printf.sprintf "%.0f" (Stats.Histogram.quantile h 0.99);
        Printf.sprintf "%.1f%%" (100.0 *. Stats.Summary.mean s /. Stats.Summary.mean sum_c);
      ]
  in
  row "Chord" sum_c lat_chord;
  row "HIERAS (2-layer)" sum_2 lat_h2;
  row "HIERAS (3-layer)" sum_3 lat_h3;
  Printf.printf "%d Zipf lookups over a %d-peer file-sharing network:\n\n" lookups nodes;
  Stats.Text_table.print table;

  (* the price of the hierarchy: extra routing state *)
  let t2 = Hieras.Cost.totals h2 ~succ_list_len:8 in
  let t3 = Hieras.Cost.totals h3 ~succ_list_len:8 in
  Printf.printf "\nrouting state: chord %.0f B/node, 2-layer %.0f B/node (x%.2f), 3-layer %.0f B/node (x%.2f)\n"
    t2.Hieras.Cost.chord_mean_state_bytes t2.Hieras.Cost.mean_state_bytes
    t2.Hieras.Cost.state_overhead_ratio t3.Hieras.Cost.mean_state_bytes
    t3.Hieras.Cost.state_overhead_ratio
