(* Layered finger tables — the paper's Table 2.

   A tiny two-layer HIERAS system on an 8-bit identifier space with three
   landmark nodes. For one node we print all 8 conceptual fingers with
   their layer-1 (global) and layer-2 (ring-restricted) successors, each
   annotated with its layer-2 ring name — the exact format of Table 2.

   Run with: dune exec examples/finger_tables_demo.exe *)

let () =
  let cfg = Experiments.Config.paper_default in
  Experiments.Report.print (Experiments.Figures.table2 cfg);

  (* show the ring table of the node's own ring too (paper Table 3) *)
  let space = Hashid.Id.space ~bits:8 in
  let rng = Prng.Rng.create ~seed:(cfg.Experiments.Config.seed + 31) in
  let lat = Topology.Transit_stub.generate ~hosts:24 rng in
  let chord = Chord.Network.build ~space ~hosts:(Array.init 24 (fun i -> i)) ~salt:"table2" () in
  let landmarks = Binning.Landmark.choose_spread lat ~count:3 rng in
  let hnet = Hieras.Hnetwork.build ~chord ~lat ~landmarks ~depth:2 () in
  print_newline ();
  List.iter
    (fun rname ->
      match Hieras.Hnetwork.ring_table hnet ~layer:2 ~order:(Hieras.Ring_name.order rname) with
      | Some rt ->
          Format.printf "%a@." Hieras.Ring_table.pp rt;
          Format.printf "  stored on node %d (top-layer successor of the hashed ring name)@."
            (Hieras.Hnetwork.ring_table_manager hnet rname)
      | None -> ())
    (Hieras.Hnetwork.ring_names hnet ~layer:2)
