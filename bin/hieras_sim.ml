(* hieras-sim: command-line driver for the HIERAS reproduction.

   Subcommands:
     figure   reproduce one table/figure of the paper
     all      reproduce every table and figure
     topology generate a topology and print its statistics
     cost     print the HIERAS state/maintenance cost model
     lookup   trace a single HIERAS lookup hop by hop
     trace    replay a request stream with structured JSONL tracing *)

open Cmdliner

let exit_err msg =
  prerr_endline ("hieras-sim: " ^ msg);
  exit 1

(* ---- shared options --------------------------------------------------- *)

let seed_t =
  Arg.(value & opt int 2003 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let nodes_t default =
  Arg.(value & opt int default & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Number of DHT nodes.")

let model_t =
  let parse s =
    match Topology.Model.of_name s with
    | Some m -> Ok m
    | None -> Error (`Msg (Printf.sprintf "unknown model %S (ts | inet | brite)" s))
  in
  let print fmt m = Format.pp_print_string fmt (Topology.Model.name m) in
  Arg.(
    value
    & opt (conv (parse, print)) Topology.Model.Transit_stub
    & info [ "m"; "model" ] ~docv:"MODEL" ~doc:"Topology model: ts, inet or brite.")

let scale_t =
  Arg.(
    value
    & opt float 1.0
    & info [ "scale" ] ~docv:"F"
        ~doc:"Scale factor on node and request counts (0.05 for a quick run).")

let landmarks_t = Arg.(value & opt int 4 & info [ "landmarks" ] ~docv:"L" ~doc:"Landmark count.")

let backend_t =
  let parse s =
    match Topology.Latency.backend_of_name s with
    | Some b -> Ok b
    | None -> Error (`Msg (Printf.sprintf "unknown latency backend %S (eager | lazy | auto)" s))
  in
  let print fmt b = Format.pp_print_string fmt (Topology.Latency.backend_name b) in
  Arg.(
    value
    & opt (conv (parse, print)) Topology.Latency.Auto
    & info [ "latency-backend" ] ~docv:"B"
        ~doc:
          "Latency oracle backend: eager (full distance matrix up front), \
           lazy (rows computed on first touch) or auto. Results are \
           bit-identical for every backend.")

let jobs_t =
  Arg.(
    value
    & opt int 1
    & info [ "j"; "jobs" ] ~docv:"J"
        ~doc:
          "Worker domains for the parallel pipeline (0 = all cores). Results \
           are bit-identical for any value.")

(* experiments are deterministic in the pool width, so --jobs only changes
   wall-clock time *)
let with_jobs jobs f =
  let jobs = if jobs <= 0 then Parallel.Pool.default_jobs () else jobs in
  Parallel.Pool.with_pool ~jobs f
let depth_t = Arg.(value & opt int 2 & info [ "depth" ] ~docv:"D" ~doc:"Hierarchy depth (2-4).")

let requests_t =
  Arg.(value & opt int 100_000 & info [ "requests" ] ~docv:"R" ~doc:"Routing requests per run.")

let trace_out_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Write structured per-lookup trace events (start/hop/end, one JSON \
           object per line) to $(docv). See DESIGN.md \\S8 for the schema.")

let metrics_t =
  Arg.(
    value
    & flag
    & info [ "metrics" ]
        ~doc:"Print a metrics-registry snapshot (one line per series) after the run.")

(* Build a tracer over FILE (or the disabled tracer), run [f], and report how
   many events were written. *)
let with_trace_out path f =
  match path with
  | None -> f Obs.Trace.disabled
  | Some file ->
      let oc = open_out file in
      let events = ref 0 in
      let tr =
        Obs.Trace.jsonl (fun line ->
            incr events;
            output_string oc line)
      in
      let r = Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f tr) in
      Printf.printf "wrote %d trace events to %s\n" !events file;
      r

let print_metrics reg = print_string (Obs.Metrics.to_text (Obs.Metrics.snapshot reg))

let config_of ~model ~nodes ~landmarks ~depth ~requests ~seed ~scale ~backend =
  let cfg =
    {
      Experiments.Config.model;
      nodes;
      landmarks;
      depth;
      requests;
      seed;
      succ_list_len = 8;
      latency_backend = backend;
    }
  in
  if scale = 1.0 then cfg else Experiments.Config.scaled cfg scale

(* ---- figure ----------------------------------------------------------- *)

let figure_cmd =
  let id_t =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ID" ~doc:"Experiment id: table1 table2 fig2..fig9.")
  in
  let run id model nodes landmarks depth requests seed scale jobs backend =
    match Experiments.Figures.by_id id with
    | None ->
        exit_err
          (Printf.sprintf "unknown experiment %S; known: %s" id
             (String.concat " " Experiments.Figures.ids))
    | Some f ->
        let cfg = config_of ~model ~nodes ~landmarks ~depth ~requests ~seed ~scale ~backend in
        with_jobs jobs (fun pool -> Experiments.Report.print_all (f ~pool cfg))
  in
  let term =
    Term.(
      const run $ id_t $ model_t $ nodes_t 10_000 $ landmarks_t $ depth_t $ requests_t
      $ seed_t $ scale_t $ jobs_t $ backend_t)
  in
  Cmd.v (Cmd.info "figure" ~doc:"Reproduce one table or figure of the paper") term

(* ---- all -------------------------------------------------------------- *)

let all_cmd =
  let run model nodes landmarks depth requests seed scale jobs backend =
    let cfg = config_of ~model ~nodes ~landmarks ~depth ~requests ~seed ~scale ~backend in
    with_jobs jobs (fun pool ->
        Experiments.Report.print_all (Experiments.Figures.all ~pool cfg))
  in
  let term =
    Term.(
      const run $ model_t $ nodes_t 10_000 $ landmarks_t $ depth_t $ requests_t $ seed_t
      $ scale_t $ jobs_t $ backend_t)
  in
  Cmd.v (Cmd.info "all" ~doc:"Reproduce every table and figure") term

(* ---- topology --------------------------------------------------------- *)

let topology_cmd =
  let run model nodes seed jobs backend metrics =
    with_jobs jobs @@ fun pool ->
    let rng = Prng.Rng.create ~seed in
    let lat =
      try Topology.Model.build ~backend ~pool model ~hosts:nodes rng
      with Invalid_argument m -> exit_err m
    in
    let g = Topology.Latency.router_graph lat in
    Printf.printf "model            %s\n" (Topology.Model.name model);
    Printf.printf "hosts            %d\n" (Topology.Latency.hosts lat);
    Printf.printf "routers          %d\n" (Topology.Latency.routers lat);
    Printf.printf "router links     %d\n" (Topology.Graph.edge_count g);
    Printf.printf "mean host-host   %.1f ms\n" (Topology.Latency.mean_host_latency lat rng);
    let st = Topology.Latency.stats lat in
    Printf.printf "oracle           %s: %d/%d rows computed, %d row hits, ~%d KiB resident\n"
      st.Topology.Latency.backend st.Topology.Latency.rows_computed st.Topology.Latency.routers
      st.Topology.Latency.row_hits
      (st.Topology.Latency.resident_bytes / 1024);
    let lm = Binning.Landmark.choose_spread lat ~count:4 rng in
    let counts = Hashtbl.create 16 in
    for h = 0 to Topology.Latency.hosts lat - 1 do
      let o =
        Binning.Scheme.order Binning.Scheme.paper_thresholds
          (Binning.Landmark.measure lat lm ~host:h)
      in
      Hashtbl.replace counts o (1 + Option.value ~default:0 (Hashtbl.find_opt counts o))
    done;
    Printf.printf "layer-2 rings with 4 spread landmarks: %d\n" (Hashtbl.length counts);
    Hashtbl.fold (fun o c acc -> (o, c) :: acc) counts []
    |> List.sort (fun (_, a) (_, b) -> compare b a)
    |> List.iter (fun (o, c) -> Printf.printf "  ring %-6s %6d nodes\n" o c);
    if metrics then begin
      let reg = Obs.Metrics.create () in
      Topology.Latency.export_metrics lat reg;
      Parallel.Pool.export_metrics pool reg;
      print_newline ();
      print_metrics reg
    end
  in
  let term = Term.(const run $ model_t $ nodes_t 2000 $ seed_t $ jobs_t $ backend_t $ metrics_t) in
  Cmd.v (Cmd.info "topology" ~doc:"Generate a topology and print statistics") term

(* ---- cost ------------------------------------------------------------- *)

let cost_cmd =
  let run model nodes landmarks depth seed jobs backend =
    let cfg = config_of ~model ~nodes ~landmarks ~depth ~requests:0 ~seed ~scale:1.0 ~backend in
    with_jobs jobs @@ fun pool ->
    let env = Experiments.Runner.build_env ~pool cfg in
    let hnet = Experiments.Runner.build_hieras env cfg in
    let totals = Hieras.Cost.totals hnet ~succ_list_len:cfg.Experiments.Config.succ_list_len in
    Format.printf "%a@." Hieras.Cost.pp_totals totals
  in
  let term =
    Term.(const run $ model_t $ nodes_t 2000 $ landmarks_t $ depth_t $ seed_t $ jobs_t $ backend_t)
  in
  Cmd.v (Cmd.info "cost" ~doc:"Print the HIERAS state and maintenance cost model") term

(* ---- lookup ----------------------------------------------------------- *)

let lookup_cmd =
  let run model nodes landmarks depth seed jobs backend trace_out metrics =
    let cfg = config_of ~model ~nodes ~landmarks ~depth ~requests:0 ~seed ~scale:1.0 ~backend in
    with_jobs jobs @@ fun pool ->
    let env = Experiments.Runner.build_env ~pool cfg in
    let hnet = Experiments.Runner.build_hieras env cfg in
    let net = Experiments.Runner.chord_network env in
    let rng = Prng.Rng.create ~seed:(seed + 1) in
    let key = Hashid.Id.random Hashid.Id.sha1_space rng in
    let origin = Prng.Rng.int rng nodes in
    let r, rc =
      with_trace_out trace_out (fun tr ->
          let r = Hieras.Hlookup.route_checked ~trace:tr hnet ~origin ~key in
          let rc =
            Chord.Lookup.route ~trace:tr net (Experiments.Runner.latency_oracle env) ~origin ~key
          in
          (r, rc))
    in
    Printf.printf "key    %s\n" (Hashid.Id.to_hex key);
    Printf.printf "origin node %d (id %s)\n" origin (Hashid.Id.to_hex (Chord.Network.id net origin));
    List.iter
      (fun h ->
        Printf.printf "  L%d  node %-6d -> node %-6d  %7.1f ms\n" h.Hieras.Hlookup.layer
          h.Hieras.Hlookup.from_node h.Hieras.Hlookup.to_node h.Hieras.Hlookup.latency)
      r.Hieras.Hlookup.hops;
    Printf.printf "destination node %d after %d hops, %.1f ms total\n"
      r.Hieras.Hlookup.destination r.Hieras.Hlookup.hop_count r.Hieras.Hlookup.latency;
    Printf.printf "chord baseline: %d hops, %.1f ms\n" rc.Chord.Lookup.hop_count
      rc.Chord.Lookup.latency;
    if metrics then begin
      let reg = Obs.Metrics.create () in
      let c name v = Obs.Metrics.set_counter (Obs.Metrics.counter reg name) v in
      let g name v = Obs.Metrics.set (Obs.Metrics.gauge reg name) v in
      c "lookup.hieras.hops" r.Hieras.Hlookup.hop_count;
      g "lookup.hieras.latency_ms" r.Hieras.Hlookup.latency;
      c "lookup.hieras.finished_at_layer" r.Hieras.Hlookup.finished_at_layer;
      c "lookup.chord.hops" rc.Chord.Lookup.hop_count;
      g "lookup.chord.latency_ms" rc.Chord.Lookup.latency;
      Topology.Latency.export_metrics (Experiments.Runner.latency_oracle env) reg;
      Parallel.Pool.export_metrics pool reg;
      print_newline ();
      print_metrics reg
    end
  in
  let term =
    Term.(
      const run $ model_t $ nodes_t 2000 $ landmarks_t $ depth_t $ seed_t $ jobs_t $ backend_t
      $ trace_out_t $ metrics_t)
  in
  Cmd.v (Cmd.info "lookup" ~doc:"Trace one HIERAS lookup hop by hop") term

(* ---- trace ------------------------------------------------------------ *)

let trace_cmd =
  let run model nodes landmarks depth requests seed jobs backend trace_out metrics =
    let cfg = config_of ~model ~nodes ~landmarks ~depth ~requests ~seed ~scale:1.0 ~backend in
    with_jobs jobs @@ fun pool ->
    let env = Experiments.Runner.build_env ~pool cfg in
    let hnet = Experiments.Runner.build_hieras env cfg in
    let net = Experiments.Runner.chord_network env in
    let lat = Experiments.Runner.latency_oracle env in
    let reg = Obs.Metrics.create () in
    let lookups = Obs.Metrics.counter reg "trace.lookups" in
    let chord_hops = Obs.Metrics.counter reg "trace.chord.hops" in
    let hieras_hops = Obs.Metrics.counter reg "trace.hieras.hops" in
    let chord_lat = Obs.Metrics.histogram reg "trace.chord.latency_ms" in
    let hieras_lat = Obs.Metrics.histogram reg "trace.hieras.latency_ms" in
    with_trace_out trace_out (fun tr ->
        (* same deterministic request stream as Runner.measure *)
        let rng = Prng.Rng.create ~seed:(cfg.Experiments.Config.seed + 104729) in
        let spec = Workload.Requests.paper_default ~count:cfg.Experiments.Config.requests in
        Workload.Requests.iter spec ~nodes:cfg.Experiments.Config.nodes
          ~space:Hashid.Id.sha1_space rng (fun { Workload.Requests.origin; key } ->
            let rc = Chord.Lookup.route ~trace:tr net lat ~origin ~key in
            let rh = Hieras.Hlookup.route ~trace:tr hnet ~origin ~key in
            Obs.Metrics.incr lookups;
            Obs.Metrics.add chord_hops rc.Chord.Lookup.hop_count;
            Obs.Metrics.add hieras_hops rh.Hieras.Hlookup.hop_count;
            Obs.Metrics.observe chord_lat rc.Chord.Lookup.latency;
            Obs.Metrics.observe hieras_lat rh.Hieras.Hlookup.latency));
    Printf.printf "replayed %d paired lookups on %d nodes (%s, depth %d)\n"
      cfg.Experiments.Config.requests cfg.Experiments.Config.nodes
      (Topology.Model.name cfg.Experiments.Config.model)
      cfg.Experiments.Config.depth;
    if metrics then begin
      Topology.Latency.export_metrics lat reg;
      Parallel.Pool.export_metrics pool reg;
      print_newline ();
      print_metrics reg
    end
  in
  let term =
    Term.(
      const run $ model_t $ nodes_t 2000 $ landmarks_t $ depth_t
      $ Arg.(
          value
          & opt int 100
          & info [ "requests" ] ~docv:"R" ~doc:"Routing requests to replay and trace.")
      $ seed_t $ jobs_t $ backend_t $ trace_out_t $ metrics_t)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Replay a request stream through Chord and HIERAS with structured \
          JSONL tracing and a metrics registry")
    term

(* ---- extensions -------------------------------------------------------- *)

let extensions_cmd =
  let run model nodes landmarks depth requests seed scale jobs backend =
    let cfg = config_of ~model ~nodes ~landmarks ~depth ~requests ~seed ~scale ~backend in
    with_jobs jobs (fun pool ->
        Experiments.Report.print_all (Experiments.Extensions.all ~pool cfg))
  in
  let term =
    Term.(
      const run $ model_t $ nodes_t 2500 $ landmarks_t $ depth_t
      $ Arg.(value & opt int 25_000 & info [ "requests" ] ~docv:"R" ~doc:"Routing requests per run.")
      $ seed_t $ scale_t $ jobs_t $ backend_t)
  in
  Cmd.v
    (Cmd.info "extensions"
       ~doc:"Run the beyond-the-paper comparisons: Pastry, CAN, ablations")
    term

let main =
  let doc = "HIERAS: DHT-based hierarchical P2P routing — paper reproduction" in
  Cmd.group (Cmd.info "hieras-sim" ~doc)
    [ figure_cmd; all_cmd; topology_cmd; cost_cmd; lookup_cmd; trace_cmd; extensions_cmd ]

let () = exit (Cmd.eval main)
