(* hieras-sim: command-line driver for the HIERAS reproduction.

   Subcommands:
     figure   reproduce one table/figure of the paper
     all      reproduce every table and figure
     topology generate a topology and print its statistics
     cost     print the HIERAS state/maintenance cost model
     lookup   trace a single HIERAS lookup hop by hop
     trace    replay a request stream with structured JSONL tracing
     analyze  analyze a JSONL trace / compare two reports
     churn    protocol-level churn run with time-series telemetry
     soak     long-horizon churn soak: maintenance bandwidth vs churn rate
     cache    replicated key-value store + web-cache scenario over the overlay
     scale    million-node packed-network run with analytic hop counts
     resilience  lookup success/stretch vs failed-node fraction
     tournament  every algorithm x flat/layered on one seeded matrix

   Exit codes: 0 success, 1 runtime failure (also: regressions found by
   `analyze compare`), 2 invalid command line. *)

open Cmdliner

let exit_err msg =
  prerr_endline ("hieras-sim: " ^ msg);
  exit 1

let exit_usage msg =
  prerr_endline ("hieras-sim: " ^ msg);
  exit 2

(* ---- shared options --------------------------------------------------- *)

let seed_t =
  Arg.(value & opt int 2003 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let nodes_t default =
  Arg.(value & opt int default & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Number of DHT nodes.")

let model_t =
  let parse s =
    match Topology.Model.of_name s with
    | Some m -> Ok m
    | None -> Error (`Msg (Printf.sprintf "unknown model %S (ts | inet | brite)" s))
  in
  let print fmt m = Format.pp_print_string fmt (Topology.Model.name m) in
  Arg.(
    value
    & opt (conv (parse, print)) Topology.Model.Transit_stub
    & info [ "m"; "model" ] ~docv:"MODEL" ~doc:"Topology model: ts, inet or brite.")

let scale_t =
  Arg.(
    value
    & opt float 1.0
    & info [ "scale" ] ~docv:"F"
        ~doc:"Scale factor on node and request counts (0.05 for a quick run).")

let landmarks_t = Arg.(value & opt int 4 & info [ "landmarks" ] ~docv:"L" ~doc:"Landmark count.")

let backend_t =
  let parse s =
    match Topology.Latency.backend_of_name s with
    | Some b -> Ok b
    | None -> Error (`Msg (Printf.sprintf "unknown latency backend %S (eager | lazy | auto)" s))
  in
  let print fmt b = Format.pp_print_string fmt (Topology.Latency.backend_name b) in
  Arg.(
    value
    & opt (conv (parse, print)) Topology.Latency.Auto
    & info [ "latency-backend" ] ~docv:"B"
        ~doc:
          "Latency oracle backend: eager (full distance matrix up front), \
           lazy (rows computed on first touch) or auto. Results are \
           bit-identical for every backend.")

let jobs_t =
  Arg.(
    value
    & opt int 1
    & info [ "j"; "jobs" ] ~docv:"J"
        ~doc:
          "Worker domains for the parallel pipeline (0 = all cores). Results \
           are bit-identical for any value.")

(* experiments are deterministic in the pool width, so --jobs only changes
   wall-clock time *)
let with_jobs jobs f =
  let jobs = if jobs <= 0 then Parallel.Pool.default_jobs () else jobs in
  Parallel.Pool.with_pool ~jobs f
let depth_t = Arg.(value & opt int 2 & info [ "depth" ] ~docv:"D" ~doc:"Hierarchy depth (2-4).")

let requests_t =
  Arg.(value & opt int 100_000 & info [ "requests" ] ~docv:"R" ~doc:"Routing requests per run.")

let trace_out_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Write structured per-lookup trace events (start/hop/end, one JSON \
           object per line) to $(docv). See DESIGN.md \\S8 for the schema.")

let metrics_t =
  Arg.(
    value
    & flag
    & info [ "metrics" ]
        ~doc:"Print a metrics-registry snapshot (one line per series) after the run.")

(* Build a tracer over FILE (or the disabled tracer), run [f], and report how
   many events were written. *)
let with_trace_out ?(sample = 1.0) path f =
  match path with
  | None -> f Obs.Trace.disabled
  | Some file ->
      let oc = open_out file in
      let events = ref 0 in
      let tr =
        Obs.Trace.jsonl ~sample (fun line ->
            incr events;
            output_string oc line)
      in
      let r = Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f tr) in
      Printf.printf "wrote %d trace events to %s\n" !events file;
      r

let trace_sample_t =
  Arg.(
    value
    & opt float 1.0
    & info [ "trace-sample" ] ~docv:"R"
        ~doc:
          "With $(b,--trace-out): keep the events of a deterministic fraction \
           $(docv) of lookups (keyed on the lookup id, so the sampled stream \
           is a stable subset of the full trace — identical for any \
           $(b,--jobs)).")

let check_trace_sample r =
  if r < 0.0 || r > 1.0 then
    exit_usage (Printf.sprintf "--trace-sample must be in [0, 1] (got %g)" r)

(* ---- message-level (net) tracing --------------------------------------- *)

let net_trace_out_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "net-trace-out" ] ~docv:"FILE"
        ~doc:
          "Write message-level span events (one JSON object per line: every \
           engine send with its RPC kind, src/dst, timing and causal parent, \
           plus drop records; DESIGN.md \\S14) to $(docv). Analyze with \
           `hieras-sim analyze $(docv)`.")

let net_sample_t =
  Arg.(
    value
    & opt (some float) None
    & info [ "net-sample" ] ~docv:"R"
        ~doc:
          "Sample rate for $(b,--net-trace-out): keep whole causal trees of a \
           deterministic fraction $(docv) of roots (default 1 — everything). \
           Sampling never orphans a parent, and the output is byte-identical \
           for any $(b,--jobs).")

(* --net-sample without --net-trace-out is a flag with no effect: reject it
   rather than silently ignore it. *)
let net_sample_rate ~net_out net_sample =
  match (net_out, net_sample) with
  | None, Some _ -> exit_usage "--net-sample requires --net-trace-out"
  | _, Some r when r < 0.0 || r > 1.0 ->
      exit_usage (Printf.sprintf "--net-sample must be in [0, 1] (got %g)" r)
  | _, r -> Option.value ~default:1.0 r

(* Build a net tracer over FILE (or the disabled tracer), run [f], and report
   how many span events were written. *)
let with_net_trace_out ?(sample = 1.0) path f =
  match path with
  | None -> f Obs.Netspan.disabled
  | Some file ->
      let oc = open_out file in
      let events = ref 0 in
      let ns =
        Obs.Netspan.jsonl ~sample (fun line ->
            incr events;
            output_string oc line)
      in
      let r = Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f ns) in
      Printf.printf "wrote %d net span events to %s\n" !events file;
      r

let print_metrics reg = print_string (Obs.Metrics.to_text (Obs.Metrics.snapshot reg))

let timings_t =
  Arg.(
    value
    & flag
    & info [ "timings" ]
        ~doc:"Print a hierarchical wall-clock phase profile after the run.")

let folded_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "folded" ] ~docv:"FILE"
        ~doc:
          "Write flamegraph-ready folded-stack lines (phase;subphase self-µs) \
           to $(docv). Implies the phase profiler is on.")

(* Run [f] under a wall-clock phase profiler when asked for; print the phase
   table / write the folded stacks afterwards. *)
let with_timer ~timings ~folded f =
  if (not timings) && folded = None then f Obs.Timer.disabled
  else begin
    let tm = Obs.Timer.create ~clock:Unix.gettimeofday in
    let r = f tm in
    if timings then begin
      print_newline ();
      print_string (Obs.Timer.to_text tm)
    end;
    (match folded with
    | None -> ()
    | Some file ->
        Out_channel.with_open_text file (fun oc -> output_string oc (Obs.Timer.folded tm));
        Printf.printf "wrote folded stacks to %s\n" file);
    r
  end

let config_of ~model ~nodes ~landmarks ~depth ~requests ~seed ~scale ~backend =
  let cfg =
    {
      Experiments.Config.model;
      nodes;
      landmarks;
      depth;
      requests;
      seed;
      succ_list_len = 8;
      latency_backend = backend;
    }
  in
  if scale <= 0.0 then exit_usage (Printf.sprintf "--scale must be > 0 (got %g)" scale);
  (* reject out-of-range parameters here, with exit code 2, instead of
     failing deep inside the pipeline; validate the raw flags (scaling
     clamps nodes/requests up to a working minimum and would mask them) *)
  match Experiments.Config.validate cfg with
  | Error msg -> exit_usage msg
  | Ok () -> if scale = 1.0 then cfg else Experiments.Config.scaled cfg scale

(* ---- figure ----------------------------------------------------------- *)

let figure_cmd =
  let id_t =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ID" ~doc:"Experiment id: table1 table2 fig2..fig9.")
  in
  let run id model nodes landmarks depth requests seed scale jobs backend trace_out metrics
      timings folded =
    match Experiments.Figures.by_id id with
    | None ->
        exit_err
          (Printf.sprintf "unknown experiment %S; known: %s" id
             (String.concat " " Experiments.Figures.ids))
    | Some f ->
        let cfg = config_of ~model ~nodes ~landmarks ~depth ~requests ~seed ~scale ~backend in
        with_jobs jobs (fun pool ->
            let registry = if metrics then Some (Obs.Metrics.create ()) else None in
            with_timer ~timings ~folded (fun timer ->
                with_trace_out trace_out (fun trace ->
                    Experiments.Report.print_all (f ~pool ?registry ~trace ~timer cfg));
                Option.iter (fun reg -> Obs.Timer.export_metrics timer reg) registry);
            match registry with
            | None -> ()
            | Some reg ->
                Parallel.Pool.export_metrics pool reg;
                print_newline ();
                print_metrics reg)
  in
  let term =
    Term.(
      const run $ id_t $ model_t $ nodes_t 10_000 $ landmarks_t $ depth_t $ requests_t
      $ seed_t $ scale_t $ jobs_t $ backend_t $ trace_out_t $ metrics_t $ timings_t $ folded_t)
  in
  Cmd.v (Cmd.info "figure" ~doc:"Reproduce one table or figure of the paper") term

(* ---- all -------------------------------------------------------------- *)

let all_cmd =
  let run model nodes landmarks depth requests seed scale jobs backend trace_out metrics timings
      folded =
    let cfg = config_of ~model ~nodes ~landmarks ~depth ~requests ~seed ~scale ~backend in
    with_jobs jobs (fun pool ->
        let registry = if metrics then Some (Obs.Metrics.create ()) else None in
        with_timer ~timings ~folded (fun timer ->
            with_trace_out trace_out (fun trace ->
                Experiments.Report.print_all
                  (Experiments.Figures.all ~pool ?registry ~trace ~timer cfg));
            Option.iter (fun reg -> Obs.Timer.export_metrics timer reg) registry);
        match registry with
        | None -> ()
        | Some reg ->
            Parallel.Pool.export_metrics pool reg;
            print_newline ();
            print_metrics reg)
  in
  let term =
    Term.(
      const run $ model_t $ nodes_t 10_000 $ landmarks_t $ depth_t $ requests_t $ seed_t
      $ scale_t $ jobs_t $ backend_t $ trace_out_t $ metrics_t $ timings_t $ folded_t)
  in
  Cmd.v (Cmd.info "all" ~doc:"Reproduce every table and figure") term

(* ---- topology --------------------------------------------------------- *)

let topology_cmd =
  let run model nodes seed jobs backend metrics =
    with_jobs jobs @@ fun pool ->
    let rng = Prng.Rng.create ~seed in
    let lat =
      try Topology.Model.build ~backend ~pool model ~hosts:nodes rng
      with Invalid_argument m -> exit_err m
    in
    let g = Topology.Latency.router_graph lat in
    Printf.printf "model            %s\n" (Topology.Model.name model);
    Printf.printf "hosts            %d\n" (Topology.Latency.hosts lat);
    Printf.printf "routers          %d\n" (Topology.Latency.routers lat);
    Printf.printf "router links     %d\n" (Topology.Graph.edge_count g);
    Printf.printf "mean host-host   %.1f ms\n" (Topology.Latency.mean_host_latency lat rng);
    let st = Topology.Latency.stats lat in
    Printf.printf "oracle           %s: %d/%d rows computed, %d row hits, ~%d KiB resident\n"
      st.Topology.Latency.backend st.Topology.Latency.rows_computed st.Topology.Latency.routers
      st.Topology.Latency.row_hits
      (st.Topology.Latency.resident_bytes / 1024);
    let lm = Binning.Landmark.choose_spread lat ~count:4 rng in
    let counts = Hashtbl.create 16 in
    for h = 0 to Topology.Latency.hosts lat - 1 do
      let o =
        Binning.Scheme.order Binning.Scheme.paper_thresholds
          (Binning.Landmark.measure lat lm ~host:h)
      in
      Hashtbl.replace counts o (1 + Option.value ~default:0 (Hashtbl.find_opt counts o))
    done;
    Printf.printf "layer-2 rings with 4 spread landmarks: %d\n" (Hashtbl.length counts);
    Hashtbl.fold (fun o c acc -> (o, c) :: acc) counts []
    |> List.sort (fun (_, a) (_, b) -> compare b a)
    |> List.iter (fun (o, c) -> Printf.printf "  ring %-6s %6d nodes\n" o c);
    if metrics then begin
      let reg = Obs.Metrics.create () in
      Topology.Latency.export_metrics lat reg;
      Parallel.Pool.export_metrics pool reg;
      print_newline ();
      print_metrics reg
    end
  in
  let term = Term.(const run $ model_t $ nodes_t 2000 $ seed_t $ jobs_t $ backend_t $ metrics_t) in
  Cmd.v (Cmd.info "topology" ~doc:"Generate a topology and print statistics") term

(* ---- cost ------------------------------------------------------------- *)

let cost_cmd =
  let run model nodes landmarks depth seed jobs backend =
    let cfg = config_of ~model ~nodes ~landmarks ~depth ~requests:1 ~seed ~scale:1.0 ~backend in
    with_jobs jobs @@ fun pool ->
    let env = Experiments.Runner.build_env ~pool cfg in
    let hnet = Experiments.Runner.build_hieras env cfg in
    let totals = Hieras.Cost.totals hnet ~succ_list_len:cfg.Experiments.Config.succ_list_len in
    Format.printf "%a@." Hieras.Cost.pp_totals totals
  in
  let term =
    Term.(const run $ model_t $ nodes_t 2000 $ landmarks_t $ depth_t $ seed_t $ jobs_t $ backend_t)
  in
  Cmd.v (Cmd.info "cost" ~doc:"Print the HIERAS state and maintenance cost model") term

(* ---- lookup ----------------------------------------------------------- *)

let lookup_cmd =
  let run model nodes landmarks depth seed jobs backend trace_out trace_sample metrics =
    check_trace_sample trace_sample;
    let cfg = config_of ~model ~nodes ~landmarks ~depth ~requests:1 ~seed ~scale:1.0 ~backend in
    with_jobs jobs @@ fun pool ->
    let env = Experiments.Runner.build_env ~pool cfg in
    let hnet = Experiments.Runner.build_hieras env cfg in
    let net = Experiments.Runner.chord_network env in
    let rng = Prng.Rng.create ~seed:(seed + 1) in
    let key = Hashid.Id.random Hashid.Id.sha1_space rng in
    let origin = Prng.Rng.int rng nodes in
    let r, rc =
      with_trace_out ~sample:trace_sample trace_out (fun tr ->
          let r = Hieras.Hlookup.route_checked ~trace:tr hnet ~origin ~key in
          let rc =
            Chord.Lookup.route ~trace:tr net (Experiments.Runner.latency_oracle env) ~origin ~key
          in
          (r, rc))
    in
    Printf.printf "key    %s\n" (Hashid.Id.to_hex key);
    Printf.printf "origin node %d (id %s)\n" origin (Hashid.Id.to_hex (Chord.Network.id net origin));
    List.iter
      (fun h ->
        Printf.printf "  L%d  node %-6d -> node %-6d  %7.1f ms\n" h.Hieras.Hlookup.layer
          h.Hieras.Hlookup.from_node h.Hieras.Hlookup.to_node h.Hieras.Hlookup.latency)
      r.Hieras.Hlookup.hops;
    Printf.printf "destination node %d after %d hops, %.1f ms total\n"
      r.Hieras.Hlookup.destination r.Hieras.Hlookup.hop_count r.Hieras.Hlookup.latency;
    Printf.printf "chord baseline: %d hops, %.1f ms\n" rc.Chord.Lookup.hop_count
      rc.Chord.Lookup.latency;
    if metrics then begin
      let reg = Obs.Metrics.create () in
      let c name v = Obs.Metrics.set_counter (Obs.Metrics.counter reg name) v in
      let g name v = Obs.Metrics.set (Obs.Metrics.gauge reg name) v in
      c "lookup.hieras.hops" r.Hieras.Hlookup.hop_count;
      g "lookup.hieras.latency_ms" r.Hieras.Hlookup.latency;
      c "lookup.hieras.finished_at_layer" r.Hieras.Hlookup.finished_at_layer;
      c "lookup.chord.hops" rc.Chord.Lookup.hop_count;
      g "lookup.chord.latency_ms" rc.Chord.Lookup.latency;
      Topology.Latency.export_metrics (Experiments.Runner.latency_oracle env) reg;
      Parallel.Pool.export_metrics pool reg;
      print_newline ();
      print_metrics reg
    end
  in
  let term =
    Term.(
      const run $ model_t $ nodes_t 2000 $ landmarks_t $ depth_t $ seed_t $ jobs_t $ backend_t
      $ trace_out_t $ trace_sample_t $ metrics_t)
  in
  Cmd.v (Cmd.info "lookup" ~doc:"Trace one HIERAS lookup hop by hop") term

(* ---- trace ------------------------------------------------------------ *)

let trace_cmd =
  let run model nodes landmarks depth requests seed jobs backend trace_out trace_sample metrics =
    check_trace_sample trace_sample;
    let cfg = config_of ~model ~nodes ~landmarks ~depth ~requests ~seed ~scale:1.0 ~backend in
    with_jobs jobs @@ fun pool ->
    let env = Experiments.Runner.build_env ~pool cfg in
    let hnet = Experiments.Runner.build_hieras env cfg in
    let net = Experiments.Runner.chord_network env in
    let lat = Experiments.Runner.latency_oracle env in
    let reg = Obs.Metrics.create () in
    let lookups = Obs.Metrics.counter reg "trace.lookups" in
    let chord_hops = Obs.Metrics.counter reg "trace.chord.hops" in
    let hieras_hops = Obs.Metrics.counter reg "trace.hieras.hops" in
    let chord_lat = Obs.Metrics.histogram reg "trace.chord.latency_ms" in
    let hieras_lat = Obs.Metrics.histogram reg "trace.hieras.latency_ms" in
    with_trace_out ~sample:trace_sample trace_out (fun tr ->
        (* same deterministic request stream as Runner.measure *)
        let rng = Prng.Rng.create ~seed:(cfg.Experiments.Config.seed + 104729) in
        let spec = Workload.Requests.paper_default ~count:cfg.Experiments.Config.requests in
        Workload.Requests.iter spec ~nodes:cfg.Experiments.Config.nodes
          ~space:Hashid.Id.sha1_space rng (fun { Workload.Requests.origin; key } ->
            let rc = Chord.Lookup.route ~trace:tr net lat ~origin ~key in
            let rh = Hieras.Hlookup.route ~trace:tr hnet ~origin ~key in
            Obs.Metrics.incr lookups;
            Obs.Metrics.add chord_hops rc.Chord.Lookup.hop_count;
            Obs.Metrics.add hieras_hops rh.Hieras.Hlookup.hop_count;
            Obs.Metrics.observe chord_lat rc.Chord.Lookup.latency;
            Obs.Metrics.observe hieras_lat rh.Hieras.Hlookup.latency));
    Printf.printf "replayed %d paired lookups on %d nodes (%s, depth %d)\n"
      cfg.Experiments.Config.requests cfg.Experiments.Config.nodes
      (Topology.Model.name cfg.Experiments.Config.model)
      cfg.Experiments.Config.depth;
    if metrics then begin
      Topology.Latency.export_metrics lat reg;
      Parallel.Pool.export_metrics pool reg;
      print_newline ();
      print_metrics reg
    end
  in
  let term =
    Term.(
      const run $ model_t $ nodes_t 2000 $ landmarks_t $ depth_t
      $ Arg.(
          value
          & opt int 100
          & info [ "requests" ] ~docv:"R" ~doc:"Routing requests to replay and trace.")
      $ seed_t $ jobs_t $ backend_t $ trace_out_t $ trace_sample_t $ metrics_t)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Replay a request stream through Chord and HIERAS with structured \
          JSONL tracing and a metrics registry")
    term

(* ---- analyze ----------------------------------------------------------- *)

let analyze_cmd =
  let args_t =
    Arg.(
      value
      & pos_all string []
      & info [] ~docv:"ARGS"
          ~doc:
            "Either a JSONL trace file (as written by $(b,--trace-out) or \
             $(b,--net-trace-out); schemas in DESIGN.md \\S8 and \\S14; \
             $(b,-) reads from stdin), or $(b,compare) $(i,BASE) $(i,CAND) to \
             diff two `analyze --json` reports / two BENCH_*.json snapshots.")
  in
  let json_t =
    Arg.(
      value
      & flag
      & info [ "json" ]
          ~doc:
            "Emit the report as deterministic single-line JSON (DESIGN.md \\S9) \
             instead of text tables.")
  in
  let top_t =
    Arg.(
      value & opt int 10 & info [ "top" ] ~docv:"K" ~doc:"Forwarding hotspots to list per algorithm.")
  in
  let threshold_t =
    Arg.(
      value
      & opt float 0.2
      & info [ "threshold" ] ~docv:"F"
          ~doc:
            "(compare mode) Relative regression threshold: flag metrics where \
             (cand - base) / base exceeds $(docv) (0.2 = 20%).")
  in
  let analyze_file file json top_k =
    if top_k < 0 then exit_usage (Printf.sprintf "--top must be >= 0 (got %d)" top_k);
    let of_stdin () =
      let t = Obs.Analyze.create ~top_k () in
      (try
         while true do
           Obs.Analyze.feed_line t (input_line stdin)
         done
       with End_of_file -> ());
      t
    in
    let t =
      try if file = "-" then of_stdin () else Obs.Analyze.of_file ~top_k file with
      | Sys_error msg -> exit_err msg
      | Failure msg -> exit_err msg
    in
    (* the stream's own event family picks the report: msg/drop lines make
       a net (message-span) report, start/hop/end lines a lookup report *)
    match Obs.Analyze.net_report t with
    | Some nr ->
        if json then print_endline (Obs.Analyze.net_report_json nr)
        else print_string (Obs.Analyze.net_report_text nr)
    | None ->
        let r = Obs.Analyze.report t in
        if json then print_endline (Obs.Analyze.report_json r)
        else print_string (Obs.Analyze.report_text r)
  in
  let compare_reports base cand threshold =
    if threshold <= 0.0 then
      exit_usage (Printf.sprintf "--threshold must be > 0 (got %g)" threshold);
    match Obs.Analyze.compare_files ~base ~cand ~threshold with
    | Error msg -> exit_err msg
    | Ok c ->
        print_string (Obs.Analyze.comparison_text c);
        if c.Obs.Analyze.regressions <> [] then exit 1
  in
  let run args json top_k threshold =
    match args with
    | [ file ] -> analyze_file file json top_k
    | [ "compare"; base; cand ] -> compare_reports base cand threshold
    | "compare" :: rest ->
        exit_usage
          (Printf.sprintf "analyze compare takes exactly BASE and CAND (got %d argument(s))"
             (List.length rest))
    | _ -> exit_usage "usage: analyze TRACE|- [--json] [--top K] | analyze compare BASE CAND"
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Analyze a JSONL lookup trace (per-layer attribution, distributions, \
          hotspots) or message-span trace (per-kind traffic, bandwidth \
          attribution, causal audit) — `-` reads stdin — or `analyze compare \
          BASE CAND` to diff two reports; exit 1 when any metric regresses \
          beyond the threshold")
    Term.(const run $ args_t $ json_t $ top_t $ threshold_t)

(* ---- churn ------------------------------------------------------------- *)

let churn_cmd =
  let pool_t =
    Arg.(value & opt int 48 & info [ "pool" ] ~docv:"N" ~doc:"Total node address pool.")
  in
  let initial_t =
    Arg.(value & opt int 12 & info [ "initial" ] ~docv:"N" ~doc:"Nodes alive before churn starts.")
  in
  let horizon_t =
    Arg.(value & opt float 60.0 & info [ "horizon" ] ~docv:"S" ~doc:"Churn window length, seconds.")
  in
  let join_rate_t =
    Arg.(value & opt float 0.25 & info [ "join-rate" ] ~docv:"R" ~doc:"Expected joins per second.")
  in
  let fail_rate_t =
    Arg.(
      value
      & opt float 0.08
      & info [ "fail-rate" ] ~docv:"R" ~doc:"Expected silent failures per second.")
  in
  let leave_rate_t =
    Arg.(
      value
      & opt float 0.04
      & info [ "leave-rate" ] ~docv:"R" ~doc:"Expected graceful leaves per second.")
  in
  let loss_t =
    Arg.(value & opt float 0.01 & info [ "loss" ] ~docv:"P" ~doc:"Message loss probability.")
  in
  let bucket_t =
    Arg.(
      value
      & opt float 1000.0
      & info [ "bucket-ms" ] ~docv:"MS" ~doc:"Time-series bucket width, simulated ms.")
  in
  let lookups_t =
    Arg.(
      value
      & opt int 60
      & info [ "lookups" ] ~docv:"N" ~doc:"Probe lookups fired at 1 s intervals during churn.")
  in
  let run pool initial horizon join_rate fail_rate leave_rate loss bucket_ms lookups landmarks
      depth seed trace_out net_trace_out net_sample metrics =
    let net_rate = net_sample_rate ~net_out:net_trace_out net_sample in
    if pool < 2 then exit_usage (Printf.sprintf "--pool must be >= 2 (got %d)" pool);
    if initial < 1 || initial > pool then
      exit_usage (Printf.sprintf "--initial must be in 1..pool (got %d)" initial);
    if depth < 2 || depth > 4 then
      exit_usage (Printf.sprintf "--depth must be between 2 and 4 (got %d)" depth);
    if landmarks < 1 then exit_usage (Printf.sprintf "--landmarks must be >= 1 (got %d)" landmarks);
    if horizon <= 0.0 then exit_usage (Printf.sprintf "--horizon must be > 0 (got %g)" horizon);
    if loss < 0.0 || loss >= 1.0 then
      exit_usage (Printf.sprintf "--loss must be in [0, 1) (got %g)" loss);
    if bucket_ms <= 0.0 then
      exit_usage (Printf.sprintf "--bucket-ms must be > 0 (got %g)" bucket_ms);
    let module Id = Hashid.Id in
    let module Engine = Simnet.Engine in
    let rng = Prng.Rng.create ~seed in
    let lat = Topology.Transit_stub.generate ~hosts:pool rng in
    let eng = Engine.create ~latency:(fun a b -> Topology.Latency.host_latency lat a b) ~nodes:pool in
    if loss > 0.0 then Engine.set_loss eng ~rate:loss ~rng:(Prng.Rng.split rng);
    let ts = Obs.Timeseries.create ~bucket_ms () in
    Engine.attach_timeseries eng ts;
    let net_oc = Option.map open_out net_trace_out in
    let net_events = ref 0 in
    Option.iter
      (fun oc ->
        Engine.attach_netspan eng
          (Obs.Netspan.jsonl ~sample:net_rate (fun line ->
               incr net_events;
               output_string oc line)))
      net_oc;
    let space = Id.space ~bits:32 in
    let lms = Binning.Landmark.choose_spread lat ~count:landmarks (Prng.Rng.split rng) in
    let cfg = Hieras.Hprotocol.default_config space ~depth in
    let p = Hieras.Hprotocol.create ~ts cfg eng ~lat ~landmarks:lms in
    let id_of i = Id.of_hash space (Printf.sprintf "peer-%d" i) in
    (* initial population joins sequentially, then settles *)
    Hieras.Hprotocol.spawn p ~addr:0 ~id:(id_of 0);
    for i = 1 to initial - 1 do
      Engine.schedule eng ~delay:(float_of_int i *. 400.0) (fun () ->
          Hieras.Hprotocol.join p ~addr:i ~id:(id_of i) ~bootstrap:0)
    done;
    let settle = (float_of_int initial *. 400.0) +. 15_000.0 in
    Engine.run ~until:settle eng;
    Printf.printf "t=%.0fs: %d members settled, global ring %d nodes\n" (settle /. 1000.0)
      (List.length (Hieras.Hprotocol.live_members p))
      (List.length (Hieras.Hprotocol.ring_from p 0 ~layer:1));
    (* churn schedule (planned series) replayed against the protocol *)
    let spec =
      {
        Workload.Churn.horizon = horizon *. 1000.0;
        join_rate;
        fail_rate;
        leave_rate;
      }
    in
    let events = Workload.Churn.generate ~ts spec ~initial ~pool (Prng.Rng.split rng) in
    Printf.printf "replaying %d churn events over %gs...\n" (List.length events) horizon;
    List.iter
      (fun e ->
        Engine.schedule eng ~delay:e.Workload.Churn.at (fun () ->
            match e.Workload.Churn.kind with
            | Workload.Churn.Join ->
                if not (Hieras.Hprotocol.is_member p e.Workload.Churn.node) then begin
                  match Hieras.Hprotocol.live_members p with
                  | b :: _ ->
                      Hieras.Hprotocol.join p ~addr:e.Workload.Churn.node
                        ~id:(id_of e.Workload.Churn.node) ~bootstrap:b
                  | [] -> ()
                end
            | Workload.Churn.Fail | Workload.Churn.Leave ->
                if Hieras.Hprotocol.is_member p e.Workload.Churn.node then
                  Hieras.Hprotocol.fail_node p e.Workload.Churn.node))
      events;
    (* probe lookups throughout the churn window *)
    let issued = ref 0 and answered = ref 0 and correct = ref 0 in
    let check_rng = Prng.Rng.split rng in
    for k = 1 to lookups do
      Engine.schedule eng ~delay:(float_of_int k *. 1000.0) (fun () ->
          match Hieras.Hprotocol.live_members p with
          | [] -> ()
          | members ->
              let arr = Array.of_list members in
              let origin = arr.(Prng.Rng.int check_rng (Array.length arr)) in
              let key = Id.random space check_rng in
              incr issued;
              Hieras.Hprotocol.lookup p ~origin ~key (fun r ->
                  match r with
                  | None -> ()
                  | Some o ->
                      incr answered;
                      let live = Hieras.Hprotocol.live_members p in
                      if
                        List.exists
                          (fun m -> Id.equal (Hieras.Hprotocol.node_id p m) o.Hieras.Hprotocol.owner_id)
                          live
                      then incr correct))
    done;
    Engine.run ~until:(settle +. (horizon *. 1000.0) +. 30_000.0) eng;
    Printf.printf "t=%.0fs: %d members alive\n" (Engine.now eng /. 1000.0)
      (List.length (Hieras.Hprotocol.live_members p));
    Printf.printf "lookups: issued %d, answered %d, answered-by-live-member %d\n" !issued !answered
      !correct;
    Printf.printf "messages: sent %d, delivered %d, lost %d, to-dead %d\n" (Engine.sent eng)
      (Engine.delivered eng) (Engine.dropped_loss eng) (Engine.dropped_dead eng);
    (match trace_out with
    | None -> ()
    | Some file ->
        Out_channel.with_open_text file (fun oc ->
            output_string oc (Obs.Timeseries.to_json ts);
            output_char oc '\n');
        Printf.printf "wrote %d time series to %s\n"
          (List.length (Obs.Timeseries.names ts))
          file);
    (match (net_oc, net_trace_out) with
    | Some oc, Some file ->
        close_out oc;
        Printf.printf "wrote %d net span events to %s\n" !net_events file
    | _ -> ());
    if metrics then begin
      let reg = Obs.Metrics.create () in
      Engine.export_metrics eng reg;
      Obs.Timeseries.export_metrics ts reg;
      print_newline ();
      print_metrics reg
    end
  in
  let term =
    Term.(
      const run $ pool_t $ initial_t $ horizon_t $ join_rate_t $ fail_rate_t $ leave_rate_t
      $ loss_t $ bucket_t $ lookups_t $ landmarks_t $ depth_t $ seed_t
      $ Arg.(
          value
          & opt (some string) None
          & info [ "trace-out" ] ~docv:"FILE"
              ~doc:
                "Write the bucketed time series (membership, per-layer ring \
                 counts, joins/leaves/fails, network traffic) as one JSON \
                 object to $(docv).")
      $ net_trace_out_t $ net_sample_t $ metrics_t)
  in
  Cmd.v
    (Cmd.info "churn"
       ~doc:
         "Run the message-level HIERAS protocol under churn with time-series \
          telemetry (membership, ring counts, maintenance traffic)")
    term

(* ---- soak --------------------------------------------------------------- *)

let soak_cmd =
  let module Soak = Experiments.Soak in
  let pool_t =
    Arg.(value & opt int 48 & info [ "pool" ] ~docv:"N" ~doc:"Total node address pool.")
  in
  let initial_t =
    Arg.(value & opt int 12 & info [ "initial" ] ~docv:"N" ~doc:"Nodes alive before churn starts.")
  in
  let horizon_t =
    Arg.(value & opt float 60.0 & info [ "horizon" ] ~docv:"S" ~doc:"Churn window length, seconds.")
  in
  let join_rate_t =
    Arg.(
      value
      & opt float 0.25
      & info [ "join-rate" ] ~docv:"R" ~doc:"Expected joins per second at factor 1.")
  in
  let fail_rate_t =
    Arg.(
      value
      & opt float 0.08
      & info [ "fail-rate" ] ~docv:"R" ~doc:"Expected silent failures per second at factor 1.")
  in
  let leave_rate_t =
    Arg.(
      value
      & opt float 0.04
      & info [ "leave-rate" ] ~docv:"R" ~doc:"Expected graceful leaves per second at factor 1.")
  in
  let factors_t =
    Arg.(
      value
      & opt (list float) [ 0.5; 1.0; 2.0 ]
      & info [ "factors" ] ~docv:"F,..."
          ~doc:"Churn-rate multipliers — the x axis of the bandwidth-vs-churn curves.")
  in
  let loss_t =
    Arg.(value & opt float 0.01 & info [ "loss" ] ~docv:"P" ~doc:"Message loss probability.")
  in
  let bucket_t =
    Arg.(
      value
      & opt float 1000.0
      & info [ "bucket-ms" ] ~docv:"MS" ~doc:"Time-series bucket width, simulated ms.")
  in
  let probe_t =
    Arg.(
      value
      & opt float 1000.0
      & info [ "probe-every" ] ~docv:"MS"
          ~doc:"Ring-audit and probe-lookup cadence, simulated ms.")
  in
  let adaptive_t =
    Arg.(
      value
      & flag
      & info [ "adaptive" ]
          ~doc:
            "Adaptive maintenance: back off stabilize/fix-fingers intervals \
             while the rings are converged, snap back on detected change.")
  in
  let fault_t =
    Arg.(
      value
      & opt string "none"
      & info [ "fault" ] ~docv:"KIND"
          ~doc:
            "Engine-level fault schedule injected at mid-horizon: none, \
             crash, outage or restart.")
  in
  let fault_frac_t =
    Arg.(
      value
      & opt float 0.2
      & info [ "fault-frac" ] ~docv:"F" ~doc:"Fraction for crash/restart faults.")
  in
  let out_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:
            "Write the soak results (schema hieras-soak, per-cell summaries \
             and embedded time series) as one JSON object to $(docv) — \
             comparable with `analyze compare`.")
  in
  let run pool_n initial horizon join_rate fail_rate leave_rate factors loss bucket_ms
      probe_every adaptive fault fault_frac landmarks depth seed jobs out net_trace_out
      net_sample metrics =
    let net_rate = net_sample_rate ~net_out:net_trace_out net_sample in
    let fault =
      match fault with
      | "none" -> None
      | s -> (
          match Experiments.Resilience.schedule_of_name s with
          | Some k -> Some k
          | None ->
              exit_usage
                (Printf.sprintf "unknown fault %S (none | crash | outage | restart)" s))
    in
    let spec =
      {
        Soak.pool = pool_n;
        initial;
        horizon_ms = horizon *. 1000.0;
        join_rate;
        fail_rate;
        leave_rate;
        factors;
        loss;
        bucket_ms;
        probe_every_ms = probe_every;
        depth;
        landmarks;
        adaptive;
        fault;
        fault_frac;
        net_sample = Option.map (fun _ -> net_rate) net_trace_out;
        seed;
      }
    in
    (match Soak.validate spec with Ok () -> () | Error e -> exit_usage e);
    with_jobs jobs (fun pool ->
        let registry = if metrics then Some (Obs.Metrics.create ()) else None in
        let r = Soak.run ~pool ?registry spec in
        Experiments.Report.print (Soak.section r);
        (match out with
        | None -> ()
        | Some file ->
            Out_channel.with_open_text file (fun oc ->
                output_string oc (Soak.results_json r);
                output_char oc '\n');
            Printf.printf "wrote %d soak cells to %s\n" (List.length r.Soak.cells) file);
        (match net_trace_out with
        | None -> ()
        | Some file ->
            let tr = Soak.net_trace r in
            Out_channel.with_open_text file (fun oc -> output_string oc tr);
            let lines = String.fold_left (fun n c -> if c = '\n' then n + 1 else n) 0 tr in
            Printf.printf "wrote %d net span events to %s\n" lines file);
        match registry with
        | None -> ()
        | Some reg ->
            Parallel.Pool.export_metrics pool reg;
            print_newline ();
            print_metrics reg)
  in
  let term =
    Term.(
      const run $ pool_t $ initial_t $ horizon_t $ join_rate_t $ fail_rate_t $ leave_rate_t
      $ factors_t $ loss_t $ bucket_t $ probe_t $ adaptive_t $ fault_t $ fault_frac_t
      $ landmarks_t $ depth_t $ seed_t $ jobs_t $ out_t $ net_trace_out_t $ net_sample_t
      $ metrics_t)
  in
  Cmd.v
    (Cmd.info "soak"
       ~doc:
         "Long-horizon churn soak of the message-level protocols: \
          bandwidth-cost-vs-churn-rate curves for Chord and HIERAS with \
          convergence detection, ring-correctness audits and lookup probes \
          (bit-identical for any --jobs)")
    term

(* ---- cache -------------------------------------------------------------- *)

let cache_cmd =
  let module Cache = Experiments.Cache in
  let d = Cache.default_spec in
  let pool_t =
    Arg.(
      value
      & opt int d.Cache.pool
      & info [ "pool" ] ~docv:"N" ~doc:"Nodes in the ring (all join before the store populates).")
  in
  let objects_t =
    Arg.(
      value
      & opt int d.Cache.objects
      & info [ "objects" ] ~docv:"N" ~doc:"Catalogue size — one put each.")
  in
  let requests_t =
    Arg.(
      value
      & opt int d.Cache.requests
      & info [ "requests" ] ~docv:"R" ~doc:"Zipf read-stream length.")
  in
  let replication_t =
    Arg.(
      value
      & opt (list int) d.Cache.replication
      & info [ "replication" ] ~docv:"R,..."
          ~doc:"Store replication factors to sweep (owner + R-1 successor replicas).")
  in
  let alphas_t =
    Arg.(
      value
      & opt (list float) d.Cache.alphas
      & info [ "alphas" ] ~docv:"A,..." ~doc:"Zipf skews to sweep (0 = uniform popularity).")
  in
  let fault_t =
    Arg.(
      value
      & opt string "none"
      & info [ "fault" ] ~docv:"KIND"
          ~doc:
            "Fault schedule landing between populate and read: none, crash \
             (uniform random kills) or spaced (victims spread through \
             identifier order so every key loses fewer than R replicas).")
  in
  let fault_frac_t =
    Arg.(
      value
      & opt float d.Cache.fault_frac
      & info [ "fault-frac" ] ~docv:"F" ~doc:"Fraction of the pool killed by the fault schedule.")
  in
  let cache_entries_t =
    Arg.(
      value
      & opt int d.Cache.cache_entries
      & info [ "cache-entries" ] ~docv:"N" ~doc:"Per-node cache entry budget.")
  in
  let cache_bytes_t =
    Arg.(
      value
      & opt int d.Cache.cache_bytes
      & info [ "cache-bytes" ] ~docv:"B" ~doc:"Per-node cache byte budget.")
  in
  let ttl_t =
    Arg.(
      value
      & opt float d.Cache.ttl_ms
      & info [ "ttl" ] ~docv:"MS" ~doc:"Cache TTL in simulated ms (<= 0 disables expiry).")
  in
  let loss_t =
    Arg.(
      value
      & opt float d.Cache.loss
      & info [ "loss" ] ~docv:"P" ~doc:"Message loss probability.")
  in
  let out_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:
            "Write the cache results (schema hieras-cache, one summary per \
             algo x replication x skew cell) as one JSON object to $(docv) — \
             comparable with `analyze compare`.")
  in
  let run pool_n objects requests replication alphas fault fault_frac cache_entries
      cache_bytes ttl loss landmarks depth seed jobs out net_trace_out net_sample metrics =
    let net_rate = net_sample_rate ~net_out:net_trace_out net_sample in
    let fault =
      match Cache.fault_of_name fault with
      | Some f -> f
      | None -> exit_usage (Printf.sprintf "unknown fault %S (none | crash | spaced)" fault)
    in
    let spec =
      {
        Cache.pool = pool_n;
        objects;
        requests;
        replication;
        alphas;
        fault;
        fault_frac;
        cache_entries;
        cache_bytes;
        ttl_ms = ttl;
        loss;
        depth;
        landmarks;
        net_sample = Option.map (fun _ -> net_rate) net_trace_out;
        seed;
      }
    in
    (match Cache.validate spec with Ok () -> () | Error e -> exit_usage e);
    with_jobs jobs (fun pool ->
        let registry = if metrics then Some (Obs.Metrics.create ()) else None in
        let r = Cache.run ~pool ?registry spec in
        Experiments.Report.print (Cache.section r);
        (match out with
        | None -> ()
        | Some file ->
            Out_channel.with_open_text file (fun oc ->
                output_string oc (Cache.results_json r);
                output_char oc '\n');
            Printf.printf "wrote %d cache cells to %s\n" (List.length r.Cache.cells) file);
        (match net_trace_out with
        | None -> ()
        | Some file ->
            let tr = Cache.net_trace r in
            Out_channel.with_open_text file (fun oc -> output_string oc tr);
            let lines = String.fold_left (fun n c -> if c = '\n' then n + 1 else n) 0 tr in
            Printf.printf "wrote %d net span events to %s\n" lines file);
        match registry with
        | None -> ()
        | Some reg ->
            Parallel.Pool.export_metrics pool reg;
            print_newline ();
            print_metrics reg)
  in
  let term =
    Term.(
      const run $ pool_t $ objects_t $ requests_t $ replication_t $ alphas_t $ fault_t
      $ fault_frac_t $ cache_entries_t $ cache_bytes_t $ ttl_t $ loss_t $ landmarks_t
      $ depth_t $ seed_t $ jobs_t $ out_t $ net_trace_out_t $ net_sample_t $ metrics_t)
  in
  Cmd.v
    (Cmd.info "cache"
       ~doc:
         "Replicated key-value store under a zipf web-cache workload: \
          availability, cache hit rate and fetch latency per replication \
          factor x skew x algorithm cell, with optional fault schedules \
          landing between populate and read (bit-identical for any --jobs)")
    term

(* ---- scale -------------------------------------------------------------- *)

let scale_cmd =
  let module Scale = Experiments.Scale in
  let nodes_t =
    Arg.(
      value
      & opt int Scale.default_spec.Scale.nodes
      & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Network size (>= 2).")
  in
  let requests_t =
    Arg.(
      value
      & opt int Scale.default_spec.Scale.requests
      & info [ "requests" ] ~docv:"R" ~doc:"Analytic lookups to replay.")
  in
  let succ_t =
    Arg.(
      value
      & opt int Scale.default_spec.Scale.succ_list_len
      & info [ "succ-list-len" ] ~docv:"R" ~doc:"Chord successor-list length (r).")
  in
  let cross_t =
    Arg.(
      value
      & opt int 0
      & info [ "cross-check" ] ~docv:"K"
          ~doc:
            "Replay the first $(docv) requests through the full simulated \
             routes as well and compare hop-for-hop with the analytic walk \
             (0 = off).")
  in
  let out_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:
            "Write the deterministic results (schema hieras-scale: structure \
             and hop distributions, byte-identical for any --jobs) to $(docv).")
  in
  let bench_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "bench-json" ] ~docv:"FILE"
          ~doc:
            "Write the perf snapshot (schema hieras-scale-bench: wall times, \
             \xc2\xb5s/lookup, GC words, peak RSS, results embedded) to $(docv) — \
             the BENCH_scale.json artifact.")
  in
  let label_t =
    Arg.(value & opt string "scale" & info [ "label" ] ~docv:"S" ~doc:"Bench snapshot label.")
  in
  let run nodes requests landmarks depth succ_list_len seed cross_check jobs out bench label
      metrics =
    let spec =
      { Scale.nodes; requests; landmarks; depth; succ_list_len; seed; cross_check }
    in
    (match Scale.validate spec with Ok () -> () | Error e -> exit_usage e);
    with_jobs jobs (fun pool ->
        let registry = if metrics then Some (Obs.Metrics.create ()) else None in
        let r = Scale.run ~pool ?registry ~now:Unix.gettimeofday spec in
        Experiments.Report.print (Scale.section r);
        if r.Scale.cross_mismatches > 0 then
          exit_err
            (Printf.sprintf "analytic walk disagrees with simulated routes on %d/%d lookups"
               r.Scale.cross_mismatches r.Scale.cross_checked);
        (match out with
        | None -> ()
        | Some file ->
            Out_channel.with_open_text file (fun oc ->
                output_string oc (Scale.results_json r);
                output_char oc '\n');
            Printf.printf "wrote scale results to %s\n" file);
        (match bench with
        | None -> ()
        | Some file ->
            Out_channel.with_open_text file (fun oc ->
                output_string oc (Scale.bench_json ~label r);
                output_char oc '\n');
            Printf.printf "wrote scale bench snapshot to %s\n" file);
        match registry with
        | None -> ()
        | Some reg ->
            Parallel.Pool.export_metrics pool reg;
            print_newline ();
            print_metrics reg)
  in
  let term =
    Term.(
      const run $ nodes_t $ requests_t $ landmarks_t $ depth_t $ succ_t $ seed_t $ cross_t
      $ jobs_t $ out_t $ bench_t $ label_t $ metrics_t)
  in
  Cmd.v
    (Cmd.info "scale"
       ~doc:
         "Million-node scale run: build packed Chord and HIERAS networks over \
          a synthetic topology and replay a seeded lookup stream in the \
          analytic hop-count mode, sharded over --jobs (results \
          bit-identical for any width)")
    term

(* ---- resilience --------------------------------------------------------- *)

let resilience_cmd =
  let failures_t =
    Arg.(
      value
      & opt (some float) None
      & info [ "failures" ] ~docv:"F"
          ~doc:
            "Single failure fraction in [0, 0.95] instead of the default \
             0\\%..50\\% sweep.")
  in
  let schedule_t =
    Arg.(
      value
      & opt string "crash"
      & info [ "schedule" ] ~docv:"KIND"
          ~doc:
            "Fault schedule: crash (permanent uniform crashes), outage \
             (whole stub domains down) or restart (crash-restart, victims \
             still down at the sample instant).")
  in
  let run model nodes landmarks depth requests seed scale jobs backend failures schedule
      trace_out net_trace_out net_sample metrics timings folded =
    let net_rate = net_sample_rate ~net_out:net_trace_out net_sample in
    let kind =
      match Experiments.Resilience.schedule_of_name schedule with
      | Some k -> k
      | None ->
          exit_usage
            (Printf.sprintf "unknown schedule %S (crash | outage | restart)" schedule)
    in
    let fractions =
      match failures with
      | None -> Experiments.Resilience.default_fractions
      | Some f ->
          if f < 0.0 || f > 0.95 then
            exit_usage (Printf.sprintf "--failures must be in [0, 0.95] (got %g)" f);
          [ f ]
    in
    let cfg = config_of ~model ~nodes ~landmarks ~depth ~requests ~seed ~scale ~backend in
    with_jobs jobs (fun pool ->
        let registry = if metrics then Some (Obs.Metrics.create ()) else None in
        with_timer ~timings ~folded (fun timer ->
            with_trace_out trace_out (fun trace ->
                with_net_trace_out ~sample:net_rate net_trace_out (fun net ->
                    let r =
                      Experiments.Resilience.run ~pool ?registry ~trace ~net ~timer ~fractions
                        ~kind cfg
                    in
                    Experiments.Report.print (Experiments.Resilience.section r)));
            Option.iter (fun reg -> Obs.Timer.export_metrics timer reg) registry);
        match registry with
        | None -> ()
        | Some reg ->
            Parallel.Pool.export_metrics pool reg;
            print_newline ();
            print_metrics reg)
  in
  let term =
    Term.(
      const run $ model_t $ nodes_t 2000 $ landmarks_t $ depth_t
      $ Arg.(
          value
          & opt int 10_000
          & info [ "requests" ] ~docv:"R" ~doc:"Routing requests per sweep point.")
      $ seed_t $ scale_t $ jobs_t $ backend_t $ failures_t $ schedule_t $ trace_out_t
      $ net_trace_out_t $ net_sample_t $ metrics_t $ timings_t $ folded_t)
  in
  Cmd.v
    (Cmd.info "resilience"
       ~doc:
         "Lookup success rate and latency stretch versus failed-node \
          fraction, Chord against HIERAS, under a deterministic fault \
          schedule")
    term

(* ---- tournament --------------------------------------------------------- *)

let tournament_cmd =
  let module Tournament = Experiments.Tournament in
  let fault_frac_t =
    Arg.(
      value
      & opt float 0.3
      & info [ "fault-frac" ] ~docv:"F"
          ~doc:"Fault fraction in [0, 0.95] sizing both the crash and outage schedules.")
  in
  let out_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:
            "Write the comparison matrix (schema hieras-tournament, one JSON \
             object, byte-identical for any --jobs) to $(docv) — comparable \
             with `analyze compare`.")
  in
  let run model nodes landmarks depth requests seed scale jobs backend fault_frac out metrics
      timings folded =
    if fault_frac < 0.0 || fault_frac > 0.95 then
      exit_usage (Printf.sprintf "--fault-frac must be in [0, 0.95] (got %g)" fault_frac);
    let cfg = config_of ~model ~nodes ~landmarks ~depth ~requests ~seed ~scale ~backend in
    with_jobs jobs (fun pool ->
        let registry = if metrics then Some (Obs.Metrics.create ()) else None in
        with_timer ~timings ~folded (fun timer ->
            let r = Tournament.run ~pool ?registry ~timer ~fault_fraction:fault_frac cfg in
            Experiments.Report.print (Tournament.section r);
            (match out with
            | None -> ()
            | Some file ->
                Out_channel.with_open_text file (fun oc ->
                    output_string oc (Tournament.results_json r);
                    output_char oc '\n');
                Printf.printf "wrote %d tournament contestants to %s\n"
                  (List.length r.Tournament.entries) file);
            Option.iter (fun reg -> Obs.Timer.export_metrics timer reg) registry);
        match registry with
        | None -> ()
        | Some reg ->
            Parallel.Pool.export_metrics pool reg;
            print_newline ();
            print_metrics reg)
  in
  let term =
    Term.(
      const run $ model_t $ nodes_t 2000 $ landmarks_t $ depth_t
      $ Arg.(
          value
          & opt int 10_000
          & info [ "requests" ] ~docv:"R" ~doc:"Routing requests replayed per contestant.")
      $ seed_t $ scale_t $ jobs_t $ backend_t $ fault_frac_t $ out_t $ metrics_t $ timings_t
      $ folded_t)
  in
  Cmd.v
    (Cmd.info "tournament"
       ~doc:
         "Cross-algorithm tournament: Chord, Pastry, CAN and Tapestry, flat \
          and HIERAS-layered, on one identical seeded request stream and \
          topology — hops, latency, stretch and resilience under crash and \
          outage faults, in one deterministic matrix")
    term

(* ---- extensions -------------------------------------------------------- *)

let extensions_cmd =
  let run model nodes landmarks depth requests seed scale jobs backend =
    let cfg = config_of ~model ~nodes ~landmarks ~depth ~requests ~seed ~scale ~backend in
    with_jobs jobs (fun pool ->
        Experiments.Report.print_all (Experiments.Extensions.all ~pool cfg))
  in
  let term =
    Term.(
      const run $ model_t $ nodes_t 2500 $ landmarks_t $ depth_t
      $ Arg.(value & opt int 25_000 & info [ "requests" ] ~docv:"R" ~doc:"Routing requests per run.")
      $ seed_t $ scale_t $ jobs_t $ backend_t)
  in
  Cmd.v
    (Cmd.info "extensions"
       ~doc:"Run the beyond-the-paper comparisons: Pastry, CAN, ablations")
    term

let main =
  let doc = "HIERAS: DHT-based hierarchical P2P routing — paper reproduction" in
  Cmd.group (Cmd.info "hieras-sim" ~doc)
    [
      figure_cmd;
      all_cmd;
      topology_cmd;
      cost_cmd;
      lookup_cmd;
      trace_cmd;
      analyze_cmd;
      churn_cmd;
      soak_cmd;
      cache_cmd;
      scale_cmd;
      resilience_cmd;
      tournament_cmd;
      extensions_cmd;
    ]

let () = exit (Cmd.eval main)
