(* Long-horizon churn soak: the message-level protocols (Chord.Protocol,
   Hieras.Hprotocol) run for the whole horizon under a sustained
   Workload.Churn schedule, optional Workload.Faults injection and message
   loss, while a probe loop samples ring correctness and lookup success and
   the convergence subsystem meters maintenance bandwidth. One cell =
   one (churn-rate factor, algorithm) pair, fully self-contained — its own
   topology, engine, rngs and time-series collector, all derived from the
   spec seed and the factor index — so cells can run on any pool width and
   merge in fixed order: results are bit-identical for any --jobs. *)

module Pool = Parallel.Pool
module Engine = Simnet.Engine
module Id = Hashid.Id
module Churn = Workload.Churn
module Faults = Workload.Faults

type algo = Chord_ring | Hieras_rings

let algo_name = function Chord_ring -> "chord" | Hieras_rings -> "hieras"

type spec = {
  pool : int;
  initial : int;
  horizon_ms : float;
  join_rate : float;
  fail_rate : float;
  leave_rate : float;
  factors : float list;
  loss : float;
  bucket_ms : float;
  probe_every_ms : float;
  depth : int;
  landmarks : int;
  adaptive : bool;
  fault : Resilience.schedule option;
  fault_frac : float;
  net_sample : float option;
  seed : int;
}

let default_spec =
  {
    pool = 48;
    initial = 12;
    horizon_ms = 60_000.0;
    join_rate = 0.25;
    fail_rate = 0.08;
    leave_rate = 0.04;
    factors = [ 0.5; 1.0; 2.0 ];
    loss = 0.01;
    bucket_ms = 1000.0;
    probe_every_ms = 1000.0;
    depth = 2;
    landmarks = 4;
    adaptive = false;
    fault = None;
    fault_frac = 0.2;
    net_sample = None;
    seed = 2003;
  }

(* CLI-friendly messages: both drivers print the error and exit 2 *)
let validate spec =
  if spec.pool < 2 then Error (Printf.sprintf "--pool must be >= 2 (got %d)" spec.pool)
  else if spec.initial < 1 || spec.initial > spec.pool then
    Error (Printf.sprintf "--initial must be in 1..pool (got %d)" spec.initial)
  else if spec.horizon_ms <= 0.0 then
    Error (Printf.sprintf "--horizon must be > 0 (got %g)" (spec.horizon_ms /. 1000.0))
  else if spec.join_rate < 0.0 || spec.fail_rate < 0.0 || spec.leave_rate < 0.0 then
    Error "churn rates must be >= 0"
  else if spec.factors = [] then Error "--factors must name at least one churn-rate factor"
  else if List.exists (fun f -> f < 0.0) spec.factors then
    Error "--factors must all be >= 0"
  else if spec.loss < 0.0 || spec.loss >= 1.0 then
    Error (Printf.sprintf "--loss must be in [0, 1) (got %g)" spec.loss)
  else if spec.bucket_ms <= 0.0 then
    Error (Printf.sprintf "--bucket-ms must be > 0 (got %g)" spec.bucket_ms)
  else if spec.probe_every_ms <= 0.0 then
    Error (Printf.sprintf "--probe-every must be > 0 (got %g)" spec.probe_every_ms)
  else if spec.depth < 2 || spec.depth > 4 then
    Error (Printf.sprintf "--depth must be between 2 and 4 (got %d)" spec.depth)
  else if spec.landmarks < 1 then
    Error (Printf.sprintf "--landmarks must be >= 1 (got %d)" spec.landmarks)
  else if spec.fault_frac < 0.0 || spec.fault_frac > 0.95 then
    Error (Printf.sprintf "--fault-frac must be in [0, 0.95] (got %g)" spec.fault_frac)
  else
    match spec.net_sample with
    | Some r when r < 0.0 || r > 1.0 ->
        Error (Printf.sprintf "--net-sample must be in [0, 1] (got %g)" r)
    | _ -> Ok ()

type cell = {
  algo : string;
  factor : float;
  churn_events : int;
  sim_ms : float;
  messages : int;
  messages_per_s : float;
  maint_ops : int;
  maint_ops_per_s : float;
  lookups_issued : int;
  lookups_ok : int;
  ring_checks : int;
  ring_ok : int;
  convergences : int;
  disturbances : int;
  mean_convergence_ms : float;
  converged_at_end : bool;
  final_members : int;
  series_json : string;
  net_trace : string;
}

type results = { spec : spec; cells : cell list }

let settle_ms spec = (float_of_int spec.initial *. 400.0) +. 15_000.0
let cooldown_ms = 30_000.0

(* Uniform view of the two protocols: only what the soak driver touches. *)
type proto = {
  join : addr:int -> id:Id.t -> bootstrap:int -> unit;
  fail : int -> unit;
  is_member : int -> bool;
  live : unit -> int list;
  node_id : int -> Id.t;
  global_succ : int -> int option;
  lookup : origin:int -> key:Id.t -> (Id.t option -> unit) -> unit;
  maintenance_ops : unit -> int;
  convergence_stats : unit -> int * int * float;
      (* convergences, disturbances, total converging ms *)
  converged : unit -> bool;
}

(* The global ring is correct when every live node's successor pointer is
   the next live node in identifier order — the ideal ring over the
   population alive at the audit instant. *)
let ring_correct p =
  match p.live () with
  | [] | [ _ ] -> true
  | members ->
      let sorted =
        List.sort (fun a b -> Id.compare (p.node_id a) (p.node_id b)) members
      in
      let arr = Array.of_list sorted in
      let n = Array.length arr in
      let ok = ref true in
      for i = 0 to n - 1 do
        if p.global_succ arr.(i) <> Some arr.((i + 1) mod n) then ok := false
      done;
      !ok

let fault_specs spec ~at =
  match spec.fault with
  | None -> []
  | Some Resilience.Crash -> [ Faults.Crash { at; frac = spec.fault_frac } ]
  | Some Resilience.Restart ->
      [ Faults.Crash_restart { at; frac = spec.fault_frac; down_ms = 20_000.0 } ]
  | Some Resilience.Outage ->
      [ Faults.Domain_outage { at; domains = 1; down_ms = Some 20_000.0 } ]

(* One soak cell. [fi] is the factor index: every rng in the cell is seeded
   from (spec.seed, fi) only, so the chord and hieras cells of one factor
   see the identical topology, churn trace, probe stream and fault draw. *)
let run_cell spec ~fi ~factor ~algo =
  let space = Id.space ~bits:32 in
  let id_of i = Id.of_hash space (Printf.sprintf "peer-%d" i) in
  let lat = Topology.Transit_stub.generate ~hosts:spec.pool (Prng.Rng.create ~seed:spec.seed) in
  let eng =
    Engine.create
      ~latency:(fun a b -> Topology.Latency.host_latency lat a b)
      ~nodes:spec.pool
  in
  if spec.loss > 0.0 then
    Engine.set_loss eng ~rate:spec.loss ~rng:(Prng.Rng.create ~seed:(spec.seed + 13 + fi));
  let ts = Obs.Timeseries.create ~bucket_ms:spec.bucket_ms () in
  Engine.attach_timeseries eng ts;
  (* Net tracing buffers into the cell (one writer per engine — workers
     never share a sink); the ctx tag is the cell's registry prefix sans
     "soak.", so lines stay attributable after the driver concatenates the
     cells in fixed order. *)
  let net_buf = Buffer.create (match spec.net_sample with Some _ -> 4096 | None -> 0) in
  (match spec.net_sample with
  | None -> ()
  | Some r ->
      let ctx = Printf.sprintf "%s.x%s" (algo_name algo) (Obs.Jsonu.float_repr factor) in
      Engine.attach_netspan eng (Obs.Netspan.jsonl ~ctx ~sample:r (Buffer.add_string net_buf)));
  let p =
    match algo with
    | Chord_ring ->
        let cfg =
          { (Chord.Protocol.default_config space) with adaptive = spec.adaptive }
        in
        let c = Chord.Protocol.create ~ts cfg eng in
        Chord.Protocol.spawn c ~addr:0 ~id:(id_of 0);
        {
          join = (fun ~addr ~id ~bootstrap -> Chord.Protocol.join c ~addr ~id ~bootstrap);
          fail = (fun a -> Chord.Protocol.fail_node c a);
          is_member = (fun a -> Chord.Protocol.is_member c a);
          live = (fun () -> Chord.Protocol.live_members c);
          node_id = (fun a -> Chord.Protocol.node_id c a);
          global_succ = (fun a -> Chord.Protocol.successor_addr c a);
          lookup =
            (fun ~origin ~key k ->
              Chord.Protocol.lookup c ~origin ~key (fun r ->
                  k (Option.map (fun o -> o.Chord.Protocol.owner_id) r)));
          maintenance_ops = (fun () -> Chord.Protocol.maintenance_ops c);
          convergence_stats =
            (fun () ->
              let s = Chord.Protocol.stability c in
              ( Simnet.Stability.convergences s,
                Simnet.Stability.disturbances s,
                Simnet.Stability.total_convergence_ms s ));
          converged = (fun () -> Chord.Protocol.converged c);
        }
    | Hieras_rings ->
        let lms =
          Binning.Landmark.choose_spread lat ~count:spec.landmarks
            (Prng.Rng.create ~seed:(spec.seed + 5))
        in
        let cfg =
          {
            (Hieras.Hprotocol.default_config space ~depth:spec.depth) with
            adaptive = spec.adaptive;
          }
        in
        let h = Hieras.Hprotocol.create ~ts cfg eng ~lat ~landmarks:lms in
        Hieras.Hprotocol.spawn h ~addr:0 ~id:(id_of 0);
        {
          join = (fun ~addr ~id ~bootstrap -> Hieras.Hprotocol.join h ~addr ~id ~bootstrap);
          fail = (fun a -> Hieras.Hprotocol.fail_node h a);
          is_member = (fun a -> Hieras.Hprotocol.is_member h a);
          live = (fun () -> Hieras.Hprotocol.live_members h);
          node_id = (fun a -> Hieras.Hprotocol.node_id h a);
          global_succ = (fun a -> Hieras.Hprotocol.successor_addr h a ~layer:1);
          lookup =
            (fun ~origin ~key k ->
              Hieras.Hprotocol.lookup h ~origin ~key (fun r ->
                  k (Option.map (fun o -> o.Hieras.Hprotocol.owner_id) r)));
          maintenance_ops = (fun () -> Hieras.Hprotocol.maintenance_ops h);
          convergence_stats =
            (fun () ->
              let c = ref 0 and d = ref 0 and total = ref 0.0 in
              for layer = 1 to spec.depth do
                let s = Hieras.Hprotocol.stability h ~layer in
                c := !c + Simnet.Stability.convergences s;
                d := !d + Simnet.Stability.disturbances s;
                total := !total +. Simnet.Stability.total_convergence_ms s
              done;
              (!c, !d, !total));
          converged = (fun () -> Hieras.Hprotocol.converged h);
        }
  in
  (* initial population joins sequentially, then settles *)
  for i = 1 to spec.initial - 1 do
    Engine.schedule eng ~delay:(float_of_int i *. 400.0) (fun () ->
        p.join ~addr:i ~id:(id_of i) ~bootstrap:0)
  done;
  let settle = settle_ms spec in
  Engine.run ~until:settle eng;
  (* churn schedule scaled by the factor, shared by both algos of [fi] *)
  let churn_spec =
    {
      Churn.horizon = spec.horizon_ms;
      join_rate = spec.join_rate *. factor;
      fail_rate = spec.fail_rate *. factor;
      leave_rate = spec.leave_rate *. factor;
    }
  in
  let events =
    Churn.generate ~ts churn_spec ~initial:spec.initial ~pool:spec.pool
      (Prng.Rng.create ~seed:(spec.seed + 40009 + fi))
  in
  List.iter
    (fun e ->
      Engine.schedule eng ~delay:e.Churn.at (fun () ->
          match e.Churn.kind with
          | Churn.Join ->
              if not (p.is_member e.Churn.node) then begin
                match p.live () with
                | b :: _ -> p.join ~addr:e.Churn.node ~id:(id_of e.Churn.node) ~bootstrap:b
                | [] -> ()
              end
          | Churn.Fail | Churn.Leave ->
              if p.is_member e.Churn.node then p.fail e.Churn.node))
    events;
  (* optional engine-level fault schedule, landing mid-horizon: the
     protocol is not told — the convergence probe must detect the damage *)
  (match fault_specs spec ~at:(settle +. (spec.horizon_ms /. 2.0)) with
  | [] -> ()
  | specs ->
      let group_of node = Topology.Latency.router_of_host lat node in
      let frng = Prng.Rng.create ~seed:(spec.seed + 90001 + fi) in
      let fevents = Faults.compile ~group_of ~nodes:spec.pool specs frng in
      Faults.apply eng ~rng:(Prng.Rng.split frng) fevents);
  (* probe loop: ring-correctness audit + one lookup per probe instant *)
  let ts_issued = Obs.Timeseries.counter ts "soak.lookups" in
  let ts_ok = Obs.Timeseries.counter ts "soak.lookups_ok" in
  let ts_ring = Obs.Timeseries.gauge ts "soak.ring_ok" in
  let issued = ref 0 and ok = ref 0 and ring_checks = ref 0 and ring_ok = ref 0 in
  let prng = Prng.Rng.create ~seed:(spec.seed + 70001 + fi) in
  let probes = int_of_float (spec.horizon_ms /. spec.probe_every_ms) in
  for k = 1 to probes do
    Engine.schedule eng ~delay:(float_of_int k *. spec.probe_every_ms) (fun () ->
        let at = Engine.now eng in
        incr ring_checks;
        let correct = ring_correct p in
        if correct then incr ring_ok;
        Obs.Timeseries.set ts_ring ~at (if correct then 1.0 else 0.0);
        match p.live () with
        | [] -> ()
        | members ->
            let arr = Array.of_list members in
            let origin = arr.(Prng.Rng.int prng (Array.length arr)) in
            let key = Id.random space prng in
            incr issued;
            Obs.Timeseries.add ts_issued ~at 1.0;
            p.lookup ~origin ~key (fun r ->
                match r with
                | None -> ()
                | Some owner_id ->
                    if
                      List.exists (fun m -> Id.equal (p.node_id m) owner_id) (p.live ())
                    then begin
                      incr ok;
                      Obs.Timeseries.add ts_ok ~at:(Engine.now eng) 1.0
                    end))
  done;
  let sim_ms = settle +. spec.horizon_ms +. cooldown_ms in
  Engine.run ~until:sim_ms eng;
  let messages = Engine.sent eng in
  let maint_ops = p.maintenance_ops () in
  let convergences, disturbances, total_conv = p.convergence_stats () in
  let per_s v = float_of_int v /. (sim_ms /. 1000.0) in
  {
    algo = algo_name algo;
    factor;
    churn_events = List.length events;
    sim_ms;
    messages;
    messages_per_s = per_s messages;
    maint_ops;
    maint_ops_per_s = per_s maint_ops;
    lookups_issued = !issued;
    lookups_ok = !ok;
    ring_checks = !ring_checks;
    ring_ok = !ring_ok;
    convergences;
    disturbances;
    mean_convergence_ms =
      (if convergences = 0 then 0.0 else total_conv /. float_of_int convergences);
    converged_at_end = p.converged ();
    final_members = List.length (p.live ());
    series_json = Obs.Timeseries.to_json ts;
    net_trace = Buffer.contents net_buf;
  }

let export_registry reg r =
  let open Obs.Metrics in
  List.iter
    (fun cl ->
      let prefix = Printf.sprintf "soak.%s.x%s" cl.algo (Obs.Jsonu.float_repr cl.factor) in
      let c name v = set_counter (counter reg (prefix ^ "." ^ name)) v in
      let g name v = set (gauge reg (prefix ^ "." ^ name)) v in
      c "churn_events" cl.churn_events;
      c "messages" cl.messages;
      c "maint_ops" cl.maint_ops;
      c "lookups_issued" cl.lookups_issued;
      c "lookups_ok" cl.lookups_ok;
      c "ring_checks" cl.ring_checks;
      c "ring_ok" cl.ring_ok;
      c "convergences" cl.convergences;
      c "disturbances" cl.disturbances;
      g "messages_per_s" cl.messages_per_s;
      g "maint_ops_per_s" cl.maint_ops_per_s;
      g "mean_convergence_ms" cl.mean_convergence_ms;
      g "lookup_success_rate"
        (if cl.lookups_issued = 0 then 0.0
         else float_of_int cl.lookups_ok /. float_of_int cl.lookups_issued);
      g "ring_ok_rate"
        (if cl.ring_checks = 0 then 0.0
         else float_of_int cl.ring_ok /. float_of_int cl.ring_checks);
      g "converged_at_end" (if cl.converged_at_end then 1.0 else 0.0);
      g "final_members" (float_of_int cl.final_members))
    r.cells

let run ?(pool = Pool.sequential) ?registry spec =
  (match validate spec with Ok () -> () | Error e -> invalid_arg ("Soak.run: " ^ e));
  let inputs =
    List.concat_map (fun f -> [ (f, Chord_ring); (f, Hieras_rings) ]) spec.factors
    |> Array.of_list
  in
  let parts =
    Pool.map_chunks pool ~n:(Array.length inputs) ~chunk_size:1 (fun ~lo ~hi ->
        let out = ref [] in
        for i = lo to hi - 1 do
          let factor, algo = inputs.(i) in
          out := run_cell spec ~fi:(i / 2) ~factor ~algo :: !out
        done;
        List.rev !out)
  in
  let r = { spec; cells = List.concat parts } in
  (match registry with Some reg -> export_registry reg r | None -> ());
  r

(* ---- rendering --------------------------------------------------------- *)

let cell_json c =
  let n = Obs.Jsonu.number in
  Printf.sprintf
    {|{"algo":"%s","factor":%s,"churn_events":%d,"sim_ms":%s,"messages":%d,"messages_per_s":%s,"maint_ops":%d,"maint_ops_per_s":%s,"lookups_issued":%d,"lookups_ok":%d,"ring_checks":%d,"ring_ok":%d,"convergences":%d,"disturbances":%d,"mean_convergence_ms":%s,"converged_at_end":%b,"final_members":%d,"series":%s}|}
    (Obs.Jsonu.escape c.algo) (n c.factor) c.churn_events (n c.sim_ms) c.messages
    (n c.messages_per_s) c.maint_ops (n c.maint_ops_per_s) c.lookups_issued c.lookups_ok
    c.ring_checks c.ring_ok c.convergences c.disturbances (n c.mean_convergence_ms)
    c.converged_at_end c.final_members c.series_json

let results_json r =
  let s = r.spec in
  let n = Obs.Jsonu.number in
  Printf.sprintf
    {|{"schema":"hieras-soak","pool":%d,"initial":%d,"horizon_ms":%s,"bucket_ms":%s,"probe_every_ms":%s,"loss":%s,"depth":%d,"landmarks":%d,"adaptive":%b,"fault":%s,"fault_frac":%s,"seed":%d,"cells":[%s]}|}
    s.pool s.initial (n s.horizon_ms) (n s.bucket_ms) (n s.probe_every_ms) (n s.loss) s.depth
    s.landmarks s.adaptive
    (match s.fault with
    | None -> "null"
    | Some k -> Printf.sprintf {|"%s"|} (Resilience.schedule_name k))
    (n s.fault_frac) s.seed
    (String.concat "," (List.map cell_json r.cells))

(* Cells are already in fixed (factor-major) order, so the merged trace is
   byte-identical for any --jobs; cell_json deliberately omits net_trace so
   results_json bytes are unchanged whether or not tracing ran. *)
let net_trace r = String.concat "" (List.map (fun c -> c.net_trace) r.cells)

let rate ok total = if total = 0 then 0.0 else float_of_int ok /. float_of_int total

let section r =
  let tbl =
    Stats.Text_table.create
      [
        "algo";
        "factor";
        "events";
        "msgs/s";
        "maint/s";
        "lookup ok";
        "ring ok";
        "conv ms";
        "stable";
      ]
  in
  List.iter
    (fun c ->
      Stats.Text_table.add_row tbl
        [
          c.algo;
          Printf.sprintf "%g" c.factor;
          string_of_int c.churn_events;
          Printf.sprintf "%.1f" c.messages_per_s;
          Printf.sprintf "%.1f" c.maint_ops_per_s;
          Printf.sprintf "%.1f%%" (100.0 *. rate c.lookups_ok c.lookups_issued);
          Printf.sprintf "%.1f%%" (100.0 *. rate c.ring_ok c.ring_checks);
          Printf.sprintf "%.0f" c.mean_convergence_ms;
          (if c.converged_at_end then "yes" else "no");
        ])
    r.cells;
  {
    Report.id = "soak";
    title =
      Printf.sprintf
        "Churn soak: maintenance bandwidth vs churn rate (%d-node pool, %.0f s horizon%s)"
        r.spec.pool (r.spec.horizon_ms /. 1000.0)
        (match r.spec.fault with
        | None -> ""
        | Some k -> Printf.sprintf ", %s faults" (Resilience.schedule_name k));
    table = tbl;
    notes =
      [
        "msgs/s and maint/s are per simulated second over the whole run (settle + churn \
         window + cooldown)";
        "ring ok = audits where every live node's global successor matches the ideal ring \
         over the live population; lookup ok = probe lookups answered by a live member";
        "conv ms = mean completed converging-phase duration as seen by the stability \
         detector (per layer for HIERAS)";
      ];
  }
