(** The measurement engine behind every figure.

    An {!env} bundles one generated topology with a Chord network built on
    it; HIERAS overlays (which depend on landmark count and depth) are built
    per variant on top, so parameter sweeps (Figures 6–9) reuse the expensive
    substrate. {!measure} replays one request stream through {e both}
    algorithms — paired sampling, so per-request differences are never masked
    by workload noise. *)

type env

val build_env : ?pool:Parallel.Pool.t -> ?timer:Obs.Timer.t -> Config.t -> env
(** Generates the topology (model, size and seed from the config) and the
    Chord network. The latency oracle uses the config's backend (eager /
    lazy / auto); the pool parallelizes an eager oracle's per-source
    Dijkstra runs. The generated network is identical for any backend and
    any pool width. [timer] records the [topology] and [chord-build]
    phases. *)

val latency_oracle : env -> Topology.Latency.t
val chord_network : env -> Chord.Network.t

val build_hieras : ?timer:Obs.Timer.t -> env -> Config.t -> Hieras.Hnetwork.t
(** HIERAS overlay with the config's landmark count and depth (landmarks are
    chosen with the spread heuristic from the config seed). [timer] records
    the [binning] and [hieras-build] phases. *)

(** Everything the paper's figures read off a run. *)
type metrics = {
  config : Config.t;
  chord_hops : Stats.Summary.t;
  chord_latency : Stats.Summary.t;
  hieras_hops : Stats.Summary.t;
  hieras_latency : Stats.Summary.t;
  lower_hops : Stats.Summary.t;  (** per request: hops on layers >= 2 *)
  top_hops : Stats.Summary.t;  (** per request: hops on the global ring *)
  lower_latency : Stats.Summary.t;
  top_latency : Stats.Summary.t;
  chord_hop_pdf : Stats.Histogram.t;
  hieras_hop_pdf : Stats.Histogram.t;
  lower_hop_pdf : Stats.Histogram.t;
  chord_latency_hist : Stats.Histogram.t;
  hieras_latency_hist : Stats.Histogram.t;
  hops_per_layer : float array;  (** mean hops by layer, index 0 = global *)
  latency_per_layer : float array;
}

val measure :
  ?pool:Parallel.Pool.t ->
  ?registry:Obs.Metrics.t ->
  ?trace:Obs.Trace.t ->
  ?timer:Obs.Timer.t ->
  env ->
  Hieras.Hnetwork.t ->
  Config.t ->
  metrics
(** Runs [config.requests] paired lookups. Raises [Failure] if any HIERAS
    lookup reaches a node other than the Chord owner (routing correctness is
    asserted on every request).

    Deterministic parallelism: requests are pre-generated sequentially from
    the config seed, workers fill per-chunk accumulators over a chunk layout
    fixed by request count alone, and chunks are reduced in order — so every
    metrics field is bit-identical whatever the pool width.

    [registry] receives a [runner.*] export of the merged result (request
    count, hop/latency means and maxima for both algorithms, per-layer
    means, lower-layer shares). The export runs on the calling domain after
    the deterministic merge — never from workers — so the registry snapshot
    is bit-identical for any pool width too.

    [trace] receives every lookup of both algorithms. Tracers are
    single-domain objects, so an enabled tracer forces the replay onto the
    calling domain (the pool is ignored); the chunk layout is unchanged and
    the returned metrics stay bit-identical to an untraced run.

    [timer] records the [gen-requests] and [lookup-replay] phases (on the
    calling domain only — workers are never instrumented). *)

val run :
  ?pool:Parallel.Pool.t ->
  ?registry:Obs.Metrics.t ->
  ?trace:Obs.Trace.t ->
  ?timer:Obs.Timer.t ->
  Config.t ->
  metrics
(** [build_env] + [build_hieras] + [measure] in one step. *)

(** {2 Derived quantities} *)

val latency_ratio : metrics -> float
(** HIERAS mean latency / Chord mean latency. *)

val hop_overhead : metrics -> float
(** HIERAS mean hops / Chord mean hops - 1. *)

val lower_hop_share : metrics -> float
(** Fraction of HIERAS hops taken on lower layers. *)

val lower_latency_share : metrics -> float
val mean_link_latency_chord : metrics -> float
val mean_link_latency_lower : metrics -> float
val mean_link_latency_top : metrics -> float
