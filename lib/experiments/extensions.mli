(** Beyond the paper's figures: the comparisons and ablations its
    conclusions and future-work section call for.

    - {!algorithms}: Chord vs Pastry (with proximity neighbor selection) vs
      HIERAS (2/3 layers) vs flat CAN vs HIERAS-over-CAN — the paper's
      future work names the Pastry comparison, and §3.2 sketches the CAN
      transplant.
    - {!landmark_ablation}: how much of HIERAS's gain comes from {e where}
      landmarks sit (farthest-point spread vs uniform random) and how robust
      binning is to ping jitter (§2.2 says ping is "not very accurate").
    - {!cost_ablation}: the quantitative overhead analysis (state bytes,
      ring tables, per-layer stabilize link cost) the paper defers to future
      work, across hierarchy depths. *)

val algorithms : ?pool:Parallel.Pool.t -> Config.t -> Report.section
val landmark_ablation : ?pool:Parallel.Pool.t -> Config.t -> Report.section
val cost_ablation : ?pool:Parallel.Pool.t -> Config.t -> Report.section

val all : ?pool:Parallel.Pool.t -> Config.t -> Report.section list
