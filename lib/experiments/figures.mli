(** One reproduction function per table and figure of the paper's evaluation
    (Section 4). Each returns a {!Report.section} whose table carries the
    same rows/series the paper plots, with paper-reported numbers quoted in
    the notes.

    Figures that share a build (2/3, 4/5, 6/7, 8/9 in the paper share runs)
    are produced in pairs so the expensive substrate is reused. All functions
    honour the config's scale (nodes/requests), so tests run them shrunk. *)

type generator =
  ?pool:Parallel.Pool.t ->
  ?registry:Obs.Metrics.t ->
  ?trace:Obs.Trace.t ->
  ?timer:Obs.Timer.t ->
  Config.t ->
  Report.section list
(** Every generator takes an optional domain pool; results are bit-identical
    for any pool width (see {!Runner.measure}).

    The observability hooks forward to the underlying {!Runner} calls:
    [registry] receives the [runner.*] export of each measurement run (a
    multi-run generator overwrites it per run — the last run wins), [trace]
    receives every lookup of every run (and forces measurement onto the
    calling domain), [timer] records the build/replay phases. *)

val table1 :
  ?pool:Parallel.Pool.t ->
  ?registry:Obs.Metrics.t ->
  ?trace:Obs.Trace.t ->
  ?timer:Obs.Timer.t ->
  Config.t ->
  Report.section
(** Landmark order examples: a sample of nodes with their measured distances
    to each landmark and the resulting order strings (paper Table 1). *)

val table2 :
  ?pool:Parallel.Pool.t ->
  ?registry:Obs.Metrics.t ->
  ?trace:Obs.Trace.t ->
  ?timer:Obs.Timer.t ->
  Config.t ->
  Report.section
(** Two-layer finger tables of one node in a small (8-bit) HIERAS system
    (paper Table 2): start, interval, layer-1 and layer-2 successors with
    their layer-2 ring names. *)

val fig2_and_fig3 :
  ?pool:Parallel.Pool.t ->
  ?registry:Obs.Metrics.t ->
  ?trace:Obs.Trace.t ->
  ?timer:Obs.Timer.t ->
  Config.t ->
  Report.section * Report.section
(** Size sweep per model: average hops (Fig 2) and average latency with the
    HIERAS/Chord ratio (Fig 3). *)

val fig4_and_fig5 :
  ?pool:Parallel.Pool.t ->
  ?registry:Obs.Metrics.t ->
  ?trace:Obs.Trace.t ->
  ?timer:Obs.Timer.t ->
  Config.t ->
  Report.section * Report.section
(** Hop-count PDF (Fig 4) and latency CDF (Fig 5) at the default
    configuration. *)

val fig6_and_fig7 :
  ?pool:Parallel.Pool.t ->
  ?registry:Obs.Metrics.t ->
  ?trace:Obs.Trace.t ->
  ?timer:Obs.Timer.t ->
  Config.t ->
  Report.section * Report.section
(** Landmark-count sweep 2..12: hops (Fig 6) and latency (Fig 7). *)

val fig8_and_fig9 :
  ?pool:Parallel.Pool.t ->
  ?registry:Obs.Metrics.t ->
  ?trace:Obs.Trace.t ->
  ?timer:Obs.Timer.t ->
  Config.t ->
  Report.section * Report.section
(** Hierarchy-depth sweep 2..4 over sizes 5000..10000 with 6 landmarks:
    hops (Fig 8) and latency (Fig 9). *)

val all : generator
(** Every table and figure, in paper order. A [timer] additionally wraps each
    table/figure in a span named by its id. *)

val by_id : string -> generator option
(** Lookup by experiment id ("table1", "fig2", ... — paired figures return
    both sections). *)

val ids : string list
