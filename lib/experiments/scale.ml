(* The million-node scale experiment (ROADMAP "Million-node scale").

   Instead of generating a 10^6-host router topology (whose build cost and
   memory would dwarf the thing being measured), the experiment runs over a
   synthetic star environment: one router, per-host access delays and
   per-host landmark vectors drawn from per-index seeded generators — every
   quantity is a pure function of (spec.seed, host), so the build is
   deterministic regardless of construction order. Routing behaviour (hop
   sequences, ring structure) never depends on the latency oracle, so the
   analytic hop distributions measured here are exactly those a full
   topology would produce for the same identifier ring and binning orders.

   Lookups run in the analytic mode: [Chord.Lookup.route_hops_only] and
   [Hieras.Hlookup.route_hops_only] walk the packed structures without the
   latency oracle, traces or per-hop allocation. The request stream is
   sharded over the pool in fixed-size chunks, each chunk re-seeded from its
   global start offset — the stream, the chunk layout and the merge order
   are all independent of the pool width, so results are bit-identical for
   any --jobs (the same contract as Runner.measure). *)

module Summary = Stats.Summary
module Histogram = Stats.Histogram
module Pool = Parallel.Pool
module Id = Hashid.Id

type spec = {
  nodes : int;
  requests : int;
  landmarks : int;
  depth : int;
  succ_list_len : int;
  seed : int;
  cross_check : int;
      (* leading requests replayed through the full simulated routes and
         compared hop-for-hop against the analytic walk; 0 = off *)
}

let default_spec =
  {
    nodes = 1_000_000;
    requests = 1_000_000;
    landmarks = 4;
    depth = 2;
    succ_list_len = 8;
    seed = 2003;
    cross_check = 0;
  }

let validate s =
  if s.nodes < 2 then Error (Printf.sprintf "--nodes must be >= 2 (got %d)" s.nodes)
  else if s.requests < 0 then Error (Printf.sprintf "--requests must be >= 0 (got %d)" s.requests)
  else if s.landmarks < 1 then
    Error (Printf.sprintf "--landmarks must be >= 1 (got %d)" s.landmarks)
  else if s.depth < 2 || s.depth > 4 then
    Error (Printf.sprintf "--depth must be between 2 and 4 (got %d)" s.depth)
  else if s.succ_list_len < 1 then
    Error (Printf.sprintf "--succ-list-len must be >= 1 (got %d)" s.succ_list_len)
  else if s.cross_check < 0 || s.cross_check > s.requests then
    Error
      (Printf.sprintf "--cross-check must be in 0..requests (got %d)" s.cross_check)
  else Ok ()

let space = Hashid.Id.sha1_space

(* per-host access delay and landmark vector: pure functions of (seed, host) *)
let host_rng s ~salt host = Prng.Rng.create ~seed:(s.seed + salt + (host * 2654435761))

let access_delay s host = 0.1 +. Prng.Rng.float (host_rng s ~salt:17 host) 5.0

let landmark_vector s host =
  let rng = host_rng s ~salt:71 host in
  let v = Array.make s.landmarks 0.0 in
  for l = 0 to s.landmarks - 1 do
    v.(l) <- Prng.Rng.float rng 200.0
  done;
  v

let build_env ?(now = fun () -> 0.0) s =
  let n = s.nodes in
  let star = Topology.Graph.freeze (Topology.Graph.builder 1) in
  let lat =
    Topology.Latency.create ~backend:Topology.Latency.Eager ~router_graph:star
      ~host_router:(Array.make n 0)
      ~host_access:(Array.init n (fun h -> access_delay s h))
      ()
  in
  let t0 = now () in
  let chord =
    Chord.Network.build ~space
      ~hosts:(Array.init n (fun i -> i))
      ~succ_list_len:s.succ_list_len
      ~salt:(Printf.sprintf "scale-%d" s.seed)
      ()
  in
  let t1 = now () in
  let landmarks = Binning.Landmark.of_routers (Array.make s.landmarks 0) in
  let hnet =
    Hieras.Hnetwork.build ~chord ~lat ~landmarks ~depth:s.depth
      ~measure:(fun ~host -> landmark_vector s host)
      ()
  in
  let t2 = now () in
  (chord, hnet, t1 -. t0, t2 -. t1)

let networks s =
  (match validate s with Ok () -> () | Error e -> invalid_arg ("Scale.networks: " ^ e));
  let chord, hnet, _, _ = build_env s in
  (chord, hnet)

(* ---- the sharded analytic replay ---------------------------------------- *)

(* Fixed chunk layout (like Runner.chunk_size): boundaries depend only on the
   request count. Each chunk re-seeds its own generator from the global start
   offset, so any worker can produce its slice of the stream independently —
   the streamed, never-materialized equivalent of the runner's pre-generated
   request array. *)
let chunk_size = 8192

let chunk_rng s lo = Prng.Rng.create ~seed:(s.seed + 104729 + lo)

let iter_requests s ~f =
  let nodes = s.nodes in
  let i = ref 0 in
  while !i < s.requests do
    let lo = !i in
    let hi = min s.requests (lo + chunk_size) in
    let rng = chunk_rng s lo in
    for idx = lo to hi - 1 do
      let origin = Prng.Rng.int rng nodes in
      let key = Id.random space rng in
      f idx ~origin ~key
    done;
    i := hi
  done

let hist_max = 63

type acc = {
  chord_hops : Summary.t;
  hieras_hops : Summary.t;
  chord_pdf : Histogram.t;
  hieras_pdf : Histogram.t;
  layer_pdf : Histogram.t array; (* index 0 = layer 1 *)
  layer_hops : float array;
  finished_at : int array; (* index 0 = layer 1 *)
  mutable dest_match : int;
}

let fresh_acc depth =
  {
    chord_hops = Summary.create ();
    hieras_hops = Summary.create ();
    chord_pdf = Histogram.create_ints ~max:hist_max;
    hieras_pdf = Histogram.create_ints ~max:hist_max;
    layer_pdf = Array.init depth (fun _ -> Histogram.create_ints ~max:hist_max);
    layer_hops = Array.make depth 0.0;
    finished_at = Array.make depth 0;
    dest_match = 0;
  }

let merge_acc a b =
  {
    chord_hops = Summary.merge a.chord_hops b.chord_hops;
    hieras_hops = Summary.merge a.hieras_hops b.hieras_hops;
    chord_pdf = Histogram.merge a.chord_pdf b.chord_pdf;
    hieras_pdf = Histogram.merge a.hieras_pdf b.hieras_pdf;
    layer_pdf = Array.mapi (fun k h -> Histogram.merge h b.layer_pdf.(k)) a.layer_pdf;
    layer_hops = Array.mapi (fun k v -> v +. b.layer_hops.(k)) a.layer_hops;
    finished_at = Array.mapi (fun k v -> v + b.finished_at.(k)) a.finished_at;
    dest_match = a.dest_match + b.dest_match;
  }

let measure_one ?scratch chord hnet acc ~origin ~key =
  let c_hops, c_dest = Chord.Lookup.route_hops_only chord ~origin ~key in
  let h_hops, per_layer, h_dest, fin =
    Hieras.Hlookup.route_hops_only ?into:scratch hnet ~origin ~key
  in
  Summary.add acc.chord_hops (float_of_int c_hops);
  Summary.add acc.hieras_hops (float_of_int h_hops);
  Histogram.add acc.chord_pdf (float_of_int c_hops);
  Histogram.add acc.hieras_pdf (float_of_int h_hops);
  Array.iteri
    (fun k h ->
      Histogram.add acc.layer_pdf.(k) (float_of_int h);
      acc.layer_hops.(k) <- acc.layer_hops.(k) +. float_of_int h)
    per_layer;
  acc.finished_at.(fin - 1) <- acc.finished_at.(fin - 1) + 1;
  if c_dest = h_dest then acc.dest_match <- acc.dest_match + 1

type result = {
  spec : spec;
  ring_counts : int array; (* per layer 2 .. depth *)
  chord_segments : int;
  hieras_segments : int array; (* per layer 2 .. depth *)
  chord_bytes : int;
  hieras_bytes : int;
  lookups : int;
  chord_hops_mean : float;
  chord_hops_max : float;
  hieras_hops_mean : float;
  hieras_hops_max : float;
  chord_pdf : int array;
  hieras_pdf : int array;
  layer_pdf : int array array; (* index 0 = layer 1 *)
  layer_hops_mean : float array;
  finished_at : int array;
  dest_match : int;
  cross_checked : int;
  cross_mismatches : int;
  (* wall-clock + process stats: excluded from the deterministic
     [results_json]; recorded by [bench_json] *)
  build_chord_s : float;
  build_hieras_s : float;
  replay_s : float;
  cross_s : float;
  gc_minor_words : float;
  gc_major_words : float;
  gc_top_heap_words : int;
  peak_rss_kb : int;
}

(* VmHWM from /proc/self/status — peak resident set, Linux only; 0 where the
   file or the field is missing. *)
let peak_rss_kb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> 0
  | ic ->
      let rec scan () =
        match input_line ic with
        | exception End_of_file -> 0
        | line ->
            if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
              let rest = String.trim (String.sub line 6 (String.length line - 6)) in
              let rest =
                match String.index_opt rest ' ' with
                | Some i -> String.sub rest 0 i
                | None -> rest
              in
              int_of_string_opt rest |> Option.value ~default:0
            else scan ()
      in
      Fun.protect ~finally:(fun () -> close_in ic) scan

(* replay the first [k] requests through the full simulated routes and
   compare hop-for-hop with the analytic walk *)
let cross_check_run s chord hnet k =
  let mismatches = ref 0 in
  let lat = Hieras.Hnetwork.latency_oracle hnet in
  iter_requests { s with requests = k } ~f:(fun _ ~origin ~key ->
      let c_hops, c_dest = Chord.Lookup.route_hops_only chord ~origin ~key in
      let rc = Chord.Lookup.route chord lat ~origin ~key in
      if rc.Chord.Lookup.hop_count <> c_hops || rc.Chord.Lookup.destination <> c_dest then
        incr mismatches;
      let h_hops, per_layer, h_dest, fin = Hieras.Hlookup.route_hops_only hnet ~origin ~key in
      let rh = Hieras.Hlookup.route hnet ~origin ~key in
      if
        rh.Hieras.Hlookup.hop_count <> h_hops
        || rh.Hieras.Hlookup.destination <> h_dest
        || rh.Hieras.Hlookup.finished_at_layer <> fin
        || rh.Hieras.Hlookup.hops_per_layer <> per_layer
      then incr mismatches);
  !mismatches

(* trim trailing zero bins so the JSON stays compact and size-independent *)
let trim_counts h =
  let c = Histogram.counts h in
  let last = ref (-1) in
  Array.iteri (fun i v -> if v > 0 then last := i) c;
  Array.sub c 0 (!last + 1)

let run ?(pool = Pool.sequential) ?registry ?(now = fun () -> 0.0) s =
  (match validate s with Ok () -> () | Error e -> invalid_arg ("Scale.run: " ^ e));
  let gc0 = Gc.quick_stat () in
  let chord, hnet, build_chord_s, build_hieras_s = build_env ~now s in
  let depth = s.depth in
  let t0 = now () in
  let parts =
    Pool.map_chunks pool ~n:s.requests ~chunk_size (fun ~lo ~hi ->
        let acc = fresh_acc depth in
        let rng = chunk_rng s lo in
        (* per-chunk scratch: the per-layer accumulator is consumed inside
           [measure_one] before the next lookup reuses it *)
        let scratch = Array.make depth 0 in
        for _ = lo to hi - 1 do
          let origin = Prng.Rng.int rng s.nodes in
          let key = Id.random space rng in
          measure_one ~scratch chord hnet acc ~origin ~key
        done;
        acc)
  in
  let acc =
    match parts with [] -> fresh_acc depth | first :: rest -> List.fold_left merge_acc first rest
  in
  let replay_s = now () -. t0 in
  let t1 = now () in
  let cross_mismatches =
    if s.cross_check = 0 then 0 else cross_check_run s chord hnet s.cross_check
  in
  let cross_s = now () -. t1 in
  let gc1 = Gc.quick_stat () in
  let r =
    {
      spec = s;
      ring_counts =
        Array.init (depth - 1) (fun k -> Hieras.Hnetwork.ring_count hnet ~layer:(k + 2));
      chord_segments = Chord.Network.total_finger_segments chord;
      hieras_segments =
        Array.init (depth - 1) (fun k ->
            Hieras.Hnetwork.total_finger_segments hnet ~layer:(k + 2));
      chord_bytes = Chord.Network.bytes_resident chord;
      hieras_bytes = Hieras.Hnetwork.bytes_resident hnet;
      lookups = Summary.count acc.chord_hops;
      chord_hops_mean = Summary.mean acc.chord_hops;
      chord_hops_max =
        (if Summary.count acc.chord_hops = 0 then 0.0 else Summary.max_value acc.chord_hops);
      hieras_hops_mean = Summary.mean acc.hieras_hops;
      hieras_hops_max =
        (if Summary.count acc.hieras_hops = 0 then 0.0
         else Summary.max_value acc.hieras_hops);
      chord_pdf = trim_counts acc.chord_pdf;
      hieras_pdf = trim_counts acc.hieras_pdf;
      layer_pdf = Array.map trim_counts acc.layer_pdf;
      layer_hops_mean =
        Array.map
          (fun v -> if s.requests = 0 then 0.0 else v /. float_of_int s.requests)
          acc.layer_hops;
      finished_at = acc.finished_at;
      dest_match = acc.dest_match;
      cross_checked = s.cross_check;
      cross_mismatches;
      build_chord_s;
      build_hieras_s;
      replay_s;
      cross_s;
      gc_minor_words = gc1.Gc.minor_words -. gc0.Gc.minor_words;
      gc_major_words = gc1.Gc.major_words -. gc0.Gc.major_words;
      gc_top_heap_words = gc1.Gc.top_heap_words;
      peak_rss_kb = peak_rss_kb ();
    }
  in
  Option.iter
    (fun reg ->
      let open Obs.Metrics in
      let c name v = set_counter (counter reg name) v in
      let g name v = set (gauge reg name) v in
      c "scale.nodes" s.nodes;
      c "scale.lookups" r.lookups;
      c "scale.dest_match" r.dest_match;
      c "scale.cross.checked" r.cross_checked;
      c "scale.cross.mismatches" r.cross_mismatches;
      g "scale.chord.hops_mean" r.chord_hops_mean;
      g "scale.chord.hops_max" r.chord_hops_max;
      g "scale.hieras.hops_mean" r.hieras_hops_mean;
      g "scale.hieras.hops_max" r.hieras_hops_max;
      c "scale.chord.segments" r.chord_segments;
      c "scale.chord.bytes_resident" r.chord_bytes;
      c "scale.hieras.bytes_resident" r.hieras_bytes;
      Array.iteri
        (fun k v -> g (Printf.sprintf "scale.hieras.layer%d.hops_mean" (k + 1)) v)
        r.layer_hops_mean)
    registry;
  r

(* ---- renderings ---------------------------------------------------------- *)

let ints_json a = "[" ^ String.concat "," (Array.to_list (Array.map string_of_int a)) ^ "]"

let floats_json a =
  "[" ^ String.concat "," (Array.to_list (Array.map Obs.Jsonu.number a)) ^ "]"

(* Deterministic results: structure + analytic distributions only — no wall
   times, no process stats — byte-identical for any --jobs and any machine.
   Golden: test/golden/scale_ts64.json. *)
let results_json r =
  let s = r.spec in
  let n = Obs.Jsonu.number in
  Printf.sprintf
    {|{"schema":"hieras-scale","nodes":%d,"requests":%d,"landmarks":%d,"depth":%d,"succ_list_len":%d,"seed":%d,"ring_counts":%s,"chord":{"segments":%d,"bytes_resident":%d,"hops_mean":%s,"hops_max":%s,"hop_pdf":%s},"hieras":{"segments_per_layer":%s,"bytes_resident":%d,"hops_mean":%s,"hops_max":%s,"hop_pdf":%s,"layer_hop_pdf":[%s],"layer_hops_mean":%s,"finished_at":%s},"lookups":%d,"dest_match":%d,"cross":{"checked":%d,"mismatches":%d}}|}
    s.nodes s.requests s.landmarks s.depth s.succ_list_len s.seed (ints_json r.ring_counts)
    r.chord_segments r.chord_bytes (n r.chord_hops_mean) (n r.chord_hops_max)
    (ints_json r.chord_pdf)
    (ints_json r.hieras_segments)
    r.hieras_bytes (n r.hieras_hops_mean) (n r.hieras_hops_max)
    (ints_json r.hieras_pdf)
    (String.concat "," (Array.to_list (Array.map ints_json r.layer_pdf)))
    (floats_json r.layer_hops_mean)
    (ints_json r.finished_at)
    r.lookups r.dest_match r.cross_checked r.cross_mismatches

(* Perf snapshot: the deterministic core plus wall-clock, Gc and peak-RSS
   numbers — the BENCH_scale.json artifact. *)
let bench_json ?(label = "scale") r =
  let n = Obs.Jsonu.number in
  let us_per_op t =
    if r.lookups = 0 then 0.0 else t *. 1e6 /. float_of_int r.lookups
  in
  Printf.sprintf
    {|{"schema":"hieras-scale-bench","label":%s,"build_chord_s":%s,"build_hieras_s":%s,"replay_s":%s,"cross_s":%s,"us_per_op":%s,"gc":{"minor_words":%s,"major_words":%s,"top_heap_words":%d},"peak_rss_kb":%d,"results":%s}|}
    (Printf.sprintf "%S" label) (n r.build_chord_s) (n r.build_hieras_s) (n r.replay_s)
    (n r.cross_s)
    (n (us_per_op r.replay_s))
    (n r.gc_minor_words) (n r.gc_major_words) r.gc_top_heap_words r.peak_rss_kb
    (results_json r)

let section r =
  let tbl =
    Stats.Text_table.create
      [ "algo"; "lookups"; "hops mean"; "hops max"; "segments"; "resident MiB" ]
  in
  let mib b = Printf.sprintf "%.1f" (float_of_int b /. 1048576.0) in
  Stats.Text_table.add_row tbl
    [
      "chord";
      string_of_int r.lookups;
      Printf.sprintf "%.3f" r.chord_hops_mean;
      Printf.sprintf "%.0f" r.chord_hops_max;
      string_of_int r.chord_segments;
      mib r.chord_bytes;
    ];
  Stats.Text_table.add_row tbl
    [
      "hieras";
      string_of_int r.lookups;
      Printf.sprintf "%.3f" r.hieras_hops_mean;
      Printf.sprintf "%.0f" r.hieras_hops_max;
      string_of_int (Array.fold_left ( + ) r.chord_segments r.hieras_segments);
      mib r.hieras_bytes;
    ];
  let notes =
    [
      Printf.sprintf "nodes %d, requests %d, depth %d, landmarks %d, seed %d" r.spec.nodes
        r.spec.requests r.spec.depth r.spec.landmarks r.spec.seed;
      Printf.sprintf "rings per layer (2..depth): %s"
        (String.concat ", " (Array.to_list (Array.map string_of_int r.ring_counts)));
      Printf.sprintf "hieras mean hops per layer: %s"
        (String.concat ", "
           (Array.to_list (Array.map (Printf.sprintf "%.3f") r.layer_hops_mean)));
      Printf.sprintf "finished at layer (1..depth): %s"
        (String.concat ", " (Array.to_list (Array.map string_of_int r.finished_at)));
      Printf.sprintf "destinations agree on %d/%d lookups" r.dest_match r.lookups;
    ]
    @ (if r.cross_checked = 0 then []
       else
         [
           Printf.sprintf "cross-check vs simulated routes: %d/%d mismatches"
             r.cross_mismatches r.cross_checked;
         ])
    @
    if r.replay_s = 0.0 then []
    else
      [
        Printf.sprintf
          "build %.1fs + %.1fs, analytic replay %.1fs (%.2f µs/lookup), peak RSS %d MiB"
          r.build_chord_s r.build_hieras_s r.replay_s
          (r.replay_s *. 1e6 /. float_of_int (max r.lookups 1))
          (r.peak_rss_kb / 1024);
      ]
  in
  {
    Report.id = "scale";
    title = "Analytic hop distributions at scale (packed representation)";
    table = tbl;
    notes;
  }
