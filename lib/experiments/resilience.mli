(** Resilience experiment: lookup success rate and latency stretch versus
    the fraction of failed nodes, Chord against HIERAS.

    Each sweep point compiles a {!Workload.Faults} schedule with a
    point-specific seed, applies it to a {!Simnet.Engine}, runs the engine
    to the sample instant and replays the standard paired request stream
    through both [route_resilient] paths against the surviving population.
    A lookup succeeds when it reaches the key's {e live owner} — the first
    live node clockwise from the key ({!Chord.Lookup.live_owner}); dead
    origins are deterministically remapped to their next live node so every
    point scores the identical stream. Results are bit-identical for any
    pool width (fault draws and merges happen on the calling domain; the
    replay uses the fixed chunk layout of {!Runner.measure}). *)

type schedule =
  | Crash  (** permanent uniform crashes *)
  | Outage  (** whole stub domains down (correlated by router) *)
  | Restart  (** crash-restart: victims revive after the sample instant *)

val schedule_name : schedule -> string
val schedule_of_name : string -> schedule option

val default_fractions : float list
(** [0, 0.1, ..., 0.5] — the 0–50% sweep of the issue brief. *)

type point = {
  fraction : float;  (** requested failure fraction *)
  failed : int;  (** nodes actually dead at the sample instant *)
  chord_issued : int;
  chord_succeeded : int;
  chord_stretch : float;
      (** mean successful-lookup latency (penalties included) over the
          all-alive plain-route baseline; 0 when nothing succeeded *)
  chord_retries : int;
  chord_timeouts : int;
  chord_fallbacks : int;
  chord_penalty_ms : float;
  hieras_issued : int;
  hieras_succeeded : int;
  hieras_stretch : float;
  hieras_retries : int;
  hieras_timeouts : int;
  hieras_fallbacks : int;
  hieras_layer_escapes : int;
  hieras_penalty_ms : float;
}

type results = {
  config : Config.t;
  kind : schedule;
  chord_baseline_ms : float;  (** all-alive mean plain-route latency *)
  hieras_baseline_ms : float;
  points : point list;  (** in sweep order *)
}

val run :
  ?pool:Parallel.Pool.t ->
  ?registry:Obs.Metrics.t ->
  ?trace:Obs.Trace.t ->
  ?net:Obs.Netspan.t ->
  ?timer:Obs.Timer.t ->
  ?fractions:float list ->
  ?kind:schedule ->
  Config.t ->
  results
(** Raises [Invalid_argument] when a fraction lies outside [0, 0.95].
    [registry] receives summed [resilience.{chord,hieras}.*] counters
    (issued, succeeded, retries, timeouts, fallbacks, layer_escapes) and
    per-fraction [..fNNN.success_rate] / [..fNNN.stretch] gauges. [trace]
    receives every resilient lookup of every point (baseline lookups are
    not traced) and forces the replay onto the calling domain. [net]
    attaches to each point's fault-schedule engine; the lookups here are
    analytic replays, not engine sends, so it records only the fault
    traffic (the points run sequentially, so one sink is safe and the
    stream is deterministic for any [--jobs]). *)

val export_registry : Obs.Metrics.t -> results -> unit

val success_rate : int -> int -> float
(** [success_rate succeeded issued]; 0 when nothing was issued. *)

val section : results -> Report.section
(** Render as the report section [resilience] (one row per fraction). *)
