(** The million-node scale experiment: packed networks, analytic lookups.

    Builds a Chord and a HIERAS network over a synthetic single-router
    topology (per-host access delays and landmark vectors are pure functions
    of [(seed, host)], so the build is order-independent) and replays a
    seeded lookup stream through the {e analytic} routing mode
    ({!Chord.Lookup.route_hops_only}, {!Hieras.Hlookup.route_hops_only}) —
    exact hop sequences off the packed representation with no event engine,
    latency oracle or per-hop allocation.

    The stream is sharded over a {!Parallel.Pool} in fixed 8192-request
    chunks, each chunk re-seeded from its global start offset; chunk layout
    and merge order never depend on the pool width, so {!results_json} is
    byte-identical for any [--jobs]. All wall-clock / GC / RSS numbers are
    confined to {!bench_json} (the [BENCH_scale.json] artifact); the
    deterministic results carry structure and distributions only. *)

type spec = {
  nodes : int;  (** >= 2 *)
  requests : int;  (** analytic lookups to replay (>= 0) *)
  landmarks : int;  (** >= 1 *)
  depth : int;  (** HIERAS layers, 2..4 *)
  succ_list_len : int;  (** Chord's r parameter, >= 1 *)
  seed : int;
  cross_check : int;
      (** leading requests additionally replayed through the full simulated
          {!Chord.Lookup.route} / {!Hieras.Hlookup.route} and compared
          hop-for-hop against the analytic walk; [0] disables *)
}

val default_spec : spec
(** 10^6 nodes, 10^6 requests, 4 landmarks, depth 2, r = 8, seed 2003, no
    cross-check. *)

val validate : spec -> (unit, string) result

val chunk_size : int
(** The fixed shard width (8192) — part of the determinism contract. *)

val iter_requests : spec -> f:(int -> origin:int -> key:Hashid.Id.t -> unit) -> unit
(** Stream the request sequence [0 .. requests-1] (chunk-seeded exactly as
    the sharded replay generates it) — for tests and external consumers;
    nothing is materialized. *)

val networks : spec -> Chord.Network.t * Hieras.Hnetwork.t
(** Just the two packed networks over the synthetic topology (no replay) —
    what the bench's [*-lookup-1e6] micro entries route against. Raises
    [Invalid_argument] on an invalid spec. *)

type result = {
  spec : spec;
  ring_counts : int array;  (** rings per layer, index 0 = layer 2 *)
  chord_segments : int;
  hieras_segments : int array;  (** finger-arena length per layer, index 0 = layer 2 *)
  chord_bytes : int;
  hieras_bytes : int;  (** includes the wrapped Chord network *)
  lookups : int;
  chord_hops_mean : float;
  chord_hops_max : float;
  hieras_hops_mean : float;
  hieras_hops_max : float;
  chord_pdf : int array;  (** hop-count histogram, trailing zero bins trimmed *)
  hieras_pdf : int array;
  layer_pdf : int array array;  (** per-layer hop histograms, index 0 = layer 1 *)
  layer_hops_mean : float array;
  finished_at : int array;  (** lookups finishing at each layer, index 0 = layer 1 *)
  dest_match : int;  (** lookups where Chord and HIERAS agree on the owner *)
  cross_checked : int;
  cross_mismatches : int;
  build_chord_s : float;  (** wall-clock (0 unless [?now] given) — bench only *)
  build_hieras_s : float;
  replay_s : float;
  cross_s : float;
  gc_minor_words : float;
  gc_major_words : float;
  gc_top_heap_words : int;
  peak_rss_kb : int;  (** VmHWM from /proc/self/status; 0 when unavailable *)
}

val run :
  ?pool:Parallel.Pool.t ->
  ?registry:Obs.Metrics.t ->
  ?now:(unit -> float) ->
  spec ->
  result
(** Build both networks, replay the analytic stream sharded over [pool]
    (default sequential), run the cross-check if requested. [now] injects a
    monotonic clock (e.g. [Unix.gettimeofday]) for the wall-clock fields —
    the experiments library itself depends on no clock; default leaves them
    0. [registry] receives [scale.*] counters/gauges. Raises
    [Invalid_argument] on an invalid spec. *)

val results_json : result -> string
(** One line, schema ["hieras-scale"]: structure + analytic distributions
    only — no wall times, no GC, no RSS — byte-identical for any pool width
    and machine. Golden: [test/golden/scale_ts64.json]. *)

val bench_json : ?label:string -> result -> string
(** Schema ["hieras-scale-bench"]: build/replay wall times, µs per lookup,
    GC words, peak RSS, with {!results_json} embedded under ["results"] —
    the [BENCH_scale.json] artifact. *)

val section : result -> Report.section
(** Human-readable summary table for [hieras_sim scale]. *)

val peak_rss_kb : unit -> int
(** Current process peak resident set in KiB (Linux [VmHWM]; 0 elsewhere). *)
