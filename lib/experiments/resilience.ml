(* Lookup success and latency stretch under injected failures. One fraction
   point = one fault schedule compiled and applied to a Simnet engine, run
   to the sample instant, then the standard paired request stream replayed
   through both resilient routers against the engine's liveness. The fault
   draw, the engine replay and the per-fraction accumulation all happen on
   the calling domain; only the lookup replay is chunked across the pool,
   with the fixed chunk layout Runner.measure uses — results are
   bit-identical for any --jobs. *)

module Summary = Stats.Summary
module Pool = Parallel.Pool
module Faults = Workload.Faults

type schedule = Crash | Outage | Restart

let schedule_name = function Crash -> "crash" | Outage -> "outage" | Restart -> "restart"

let schedule_of_name = function
  | "crash" -> Some Crash
  | "outage" -> Some Outage
  | "restart" -> Some Restart
  | _ -> None

let default_fractions = [ 0.0; 0.1; 0.2; 0.3; 0.4; 0.5 ]

(* schedule timeline: faults land at 10 ms, lookups sample the network at
   100 ms; a Restart downtime of 60 s keeps victims down at the sample
   instant (the restart schedule differs from crash in the event stream —
   revivals exist — not in the sampled liveness) *)
let fault_at = 10.0
let sample_at = 100.0
let restart_down_ms = 60_000.0

type point = {
  fraction : float;
  failed : int;
  chord_issued : int;
  chord_succeeded : int;
  chord_stretch : float;
  chord_retries : int;
  chord_timeouts : int;
  chord_fallbacks : int;
  chord_penalty_ms : float;
  hieras_issued : int;
  hieras_succeeded : int;
  hieras_stretch : float;
  hieras_retries : int;
  hieras_timeouts : int;
  hieras_fallbacks : int;
  hieras_layer_escapes : int;
  hieras_penalty_ms : float;
}

type results = {
  config : Config.t;
  kind : schedule;
  chord_baseline_ms : float;
  hieras_baseline_ms : float;
  points : point list;
}

(* per-chunk accumulator; merged left-to-right in chunk order *)
type acc = {
  mutable c_ok : int;
  c_lat : Summary.t;
  mutable c_retries : int;
  mutable c_timeouts : int;
  mutable c_fallbacks : int;
  mutable c_penalty : float;
  mutable h_ok : int;
  h_lat : Summary.t;
  mutable h_retries : int;
  mutable h_timeouts : int;
  mutable h_fallbacks : int;
  mutable h_escapes : int;
  mutable h_penalty : float;
}

let fresh_acc () =
  {
    c_ok = 0;
    c_lat = Summary.create ();
    c_retries = 0;
    c_timeouts = 0;
    c_fallbacks = 0;
    c_penalty = 0.0;
    h_ok = 0;
    h_lat = Summary.create ();
    h_retries = 0;
    h_timeouts = 0;
    h_fallbacks = 0;
    h_escapes = 0;
    h_penalty = 0.0;
  }

let merge_acc a b =
  a.c_ok <- a.c_ok + b.c_ok;
  a.c_retries <- a.c_retries + b.c_retries;
  a.c_timeouts <- a.c_timeouts + b.c_timeouts;
  a.c_fallbacks <- a.c_fallbacks + b.c_fallbacks;
  a.c_penalty <- a.c_penalty +. b.c_penalty;
  a.h_ok <- a.h_ok + b.h_ok;
  a.h_retries <- a.h_retries + b.h_retries;
  a.h_timeouts <- a.h_timeouts + b.h_timeouts;
  a.h_fallbacks <- a.h_fallbacks + b.h_fallbacks;
  a.h_escapes <- a.h_escapes + b.h_escapes;
  a.h_penalty <- a.h_penalty +. b.h_penalty;
  {
    a with
    c_lat = Summary.merge a.c_lat b.c_lat;
    h_lat = Summary.merge a.h_lat b.h_lat;
  }

let specs_of kind fraction =
  if fraction <= 0.0 then []
  else
    match kind with
    | Crash -> [ Faults.Crash { at = fault_at; frac = fraction } ]
    | Restart -> [ Faults.Crash_restart { at = fault_at; frac = fraction; down_ms = restart_down_ms } ]
    | Outage -> [ Faults.Domain_outage { at = fault_at; domains = 1; down_ms = None } ]

(* An outage point needs a domain count proportional to the target
   fraction: pick enough whole stub domains to cover ~fraction of nodes. *)
let outage_domains env fraction =
  let chord = Runner.chord_network env in
  let lat = Runner.latency_oracle env in
  let n = Chord.Network.size chord in
  let module Iset = Set.Make (Int) in
  let groups =
    Array.init n (fun i -> Topology.Latency.router_of_host lat (Chord.Network.host chord i))
    |> Array.fold_left (fun s g -> Iset.add g s) Iset.empty
    |> Iset.cardinal
  in
  max 1 (int_of_float ((fraction *. float_of_int groups) +. 0.5))

let export_registry reg r =
  let open Obs.Metrics in
  let c name v = set_counter (counter reg name) v in
  let g name v = set (gauge reg name) v in
  let sum f = List.fold_left (fun acc p -> acc + f p) 0 r.points in
  let sumf f = List.fold_left (fun acc p -> acc +. f p) 0.0 r.points in
  c "resilience.chord.issued" (sum (fun p -> p.chord_issued));
  c "resilience.chord.succeeded" (sum (fun p -> p.chord_succeeded));
  c "resilience.chord.retries" (sum (fun p -> p.chord_retries));
  c "resilience.chord.timeouts" (sum (fun p -> p.chord_timeouts));
  c "resilience.chord.fallbacks" (sum (fun p -> p.chord_fallbacks));
  g "resilience.chord.penalty_ms" (sumf (fun p -> p.chord_penalty_ms));
  c "resilience.hieras.issued" (sum (fun p -> p.hieras_issued));
  c "resilience.hieras.succeeded" (sum (fun p -> p.hieras_succeeded));
  c "resilience.hieras.retries" (sum (fun p -> p.hieras_retries));
  c "resilience.hieras.timeouts" (sum (fun p -> p.hieras_timeouts));
  c "resilience.hieras.fallbacks" (sum (fun p -> p.hieras_fallbacks));
  c "resilience.hieras.layer_escapes" (sum (fun p -> p.hieras_layer_escapes));
  g "resilience.hieras.penalty_ms" (sumf (fun p -> p.hieras_penalty_ms));
  g "resilience.chord.baseline_ms" r.chord_baseline_ms;
  g "resilience.hieras.baseline_ms" r.hieras_baseline_ms;
  List.iter
    (fun p ->
      let pct = int_of_float ((p.fraction *. 100.0) +. 0.5) in
      let rate ok issued = if issued = 0 then 0.0 else float_of_int ok /. float_of_int issued in
      g (Printf.sprintf "resilience.chord.f%03d.success_rate" pct)
        (rate p.chord_succeeded p.chord_issued);
      g (Printf.sprintf "resilience.chord.f%03d.stretch" pct) p.chord_stretch;
      g (Printf.sprintf "resilience.hieras.f%03d.success_rate" pct)
        (rate p.hieras_succeeded p.hieras_issued);
      g (Printf.sprintf "resilience.hieras.f%03d.stretch" pct) p.hieras_stretch)
    r.points

let run ?pool ?registry ?(trace = Obs.Trace.disabled) ?(net = Obs.Netspan.disabled)
    ?(timer = Obs.Timer.disabled) ?(fractions = default_fractions) ?(kind = Crash) cfg =
  List.iter
    (fun f ->
      if f < 0.0 || f > 0.95 then
        invalid_arg "Resilience.run: failure fraction must be in [0, 0.95]")
    fractions;
  let pool =
    if Obs.Trace.enabled trace then Pool.sequential else Option.value pool ~default:Pool.sequential
  in
  let env = Runner.build_env ~pool ~timer cfg in
  let hnet = Runner.build_hieras ~timer env cfg in
  let chord = Runner.chord_network env in
  let lat = Runner.latency_oracle env in
  let n = Chord.Network.size chord in
  let rng = Prng.Rng.create ~seed:(cfg.Config.seed + 104729) in
  let spec = Workload.Requests.paper_default ~count:cfg.Config.requests in
  let requests =
    Obs.Timer.span timer "gen-requests" (fun () ->
        Workload.Requests.to_array spec ~nodes:n ~space:Hashid.Id.sha1_space rng)
  in
  let issued = Array.length requests in
  let chunk_size = 4096 in
  (* all-alive baseline: plain-route mean latency, the stretch denominator *)
  let chord_baseline, hieras_baseline =
    Obs.Timer.span timer "baseline" (fun () ->
        let parts =
          Pool.map_chunks pool ~n:issued ~chunk_size (fun ~lo ~hi ->
              let c = Summary.create () and h = Summary.create () in
              for i = lo to hi - 1 do
                let { Workload.Requests.origin; key } = requests.(i) in
                Summary.add c (Chord.Lookup.route chord lat ~origin ~key).Chord.Lookup.latency;
                Summary.add h (Hieras.Hlookup.route hnet ~origin ~key).Hieras.Hlookup.latency
              done;
              (c, h))
        in
        List.fold_left
          (fun (c, h) (c', h') -> (Summary.merge c c', Summary.merge h h'))
          (Summary.create (), Summary.create ())
          parts)
  in
  let chord_baseline_ms = Summary.mean chord_baseline in
  let hieras_baseline_ms = Summary.mean hieras_baseline in
  let trace = if Obs.Trace.enabled trace then Some trace else None in
  let point_of idx fraction =
    Obs.Timer.span timer (Printf.sprintf "fraction-%02.0f%%" (fraction *. 100.0)) (fun () ->
        (* compile and apply the fault schedule on a real engine, then read
           the surviving population off it at the sample instant *)
        let specs =
          match specs_of kind fraction with
          | [ Faults.Domain_outage o ] ->
              [ Faults.Domain_outage { o with domains = outage_domains env fraction } ]
          | s -> s
        in
        let srng = Prng.Rng.create ~seed:(cfg.Config.seed + 40009 + idx) in
        let group_of node = Topology.Latency.router_of_host lat (Chord.Network.host chord node) in
        let events = Faults.compile ~group_of ~nodes:n specs srng in
        let eng = Simnet.Engine.create ~latency:(fun _ _ -> 0.0) ~nodes:n in
        (* Points run sequentially on the calling domain, so they can share
           one net-trace sink; the resilience engines carry only god-event
           fault schedules (lookups here are analytic replays), so the
           recorded span stream is exactly the fault traffic — usually
           empty. *)
        if Obs.Netspan.enabled net then Simnet.Engine.attach_netspan eng net;
        Faults.apply eng ~rng:(Prng.Rng.split srng) events;
        Simnet.Engine.run ~until:sample_at eng;
        let alive = Array.init n (Simnet.Engine.is_alive eng) in
        let failed = n - Simnet.Engine.live_count eng in
        let is_alive i = alive.(i) in
        (* a dead origin cannot issue a lookup: deterministically remap to
           its first live successor-by-index so every point replays the
           same request stream *)
        let live_origin o =
          let rec go o steps =
            if steps > n then failwith "Resilience.run: no live node to originate from"
            else if alive.(o) then o
            else go ((o + 1) mod n) (steps + 1)
          in
          go o 0
        in
        let parts =
          Pool.map_chunks pool ~n:issued ~chunk_size (fun ~lo ~hi ->
              let a = fresh_acc () in
              for i = lo to hi - 1 do
                let { Workload.Requests.origin; key } = requests.(i) in
                let origin = live_origin origin in
                let owner = Chord.Lookup.live_owner chord ~is_alive ~key in
                let ca = Chord.Lookup.route_resilient ?trace chord lat ~is_alive ~origin ~key in
                a.c_retries <- a.c_retries + ca.Chord.Lookup.retries;
                a.c_timeouts <- a.c_timeouts + ca.Chord.Lookup.timeouts;
                a.c_fallbacks <- a.c_fallbacks + ca.Chord.Lookup.fallbacks;
                a.c_penalty <- a.c_penalty +. ca.Chord.Lookup.penalty_ms;
                (match (ca.Chord.Lookup.outcome, owner) with
                | Some r, Some o when r.Chord.Lookup.destination = o ->
                    a.c_ok <- a.c_ok + 1;
                    Summary.add a.c_lat r.Chord.Lookup.latency
                | _ -> ());
                let ha = Hieras.Hlookup.route_resilient ?trace hnet ~is_alive ~origin ~key in
                a.h_retries <- a.h_retries + ha.Hieras.Hlookup.retries;
                a.h_timeouts <- a.h_timeouts + ha.Hieras.Hlookup.timeouts;
                a.h_fallbacks <- a.h_fallbacks + ha.Hieras.Hlookup.fallbacks;
                a.h_escapes <- a.h_escapes + ha.Hieras.Hlookup.layer_escapes;
                a.h_penalty <- a.h_penalty +. ha.Hieras.Hlookup.penalty_ms;
                match (ha.Hieras.Hlookup.outcome, owner) with
                | Some r, Some o when r.Hieras.Hlookup.destination = o ->
                    a.h_ok <- a.h_ok + 1;
                    Summary.add a.h_lat r.Hieras.Hlookup.latency
                | _ -> ()
              done;
              a)
        in
        let a =
          match parts with [] -> fresh_acc () | first :: rest -> List.fold_left merge_acc first rest
        in
        let stretch lat base =
          if Summary.count lat = 0 || base <= 0.0 then 0.0 else Summary.mean lat /. base
        in
        {
          fraction;
          failed;
          chord_issued = issued;
          chord_succeeded = a.c_ok;
          chord_stretch = stretch a.c_lat chord_baseline_ms;
          chord_retries = a.c_retries;
          chord_timeouts = a.c_timeouts;
          chord_fallbacks = a.c_fallbacks;
          chord_penalty_ms = a.c_penalty;
          hieras_issued = issued;
          hieras_succeeded = a.h_ok;
          hieras_stretch = stretch a.h_lat hieras_baseline_ms;
          hieras_retries = a.h_retries;
          hieras_timeouts = a.h_timeouts;
          hieras_fallbacks = a.h_fallbacks;
          hieras_layer_escapes = a.h_escapes;
          hieras_penalty_ms = a.h_penalty;
        })
  in
  let points = List.mapi point_of fractions in
  let r = { config = cfg; kind; chord_baseline_ms; hieras_baseline_ms; points } in
  Option.iter (fun reg -> export_registry reg r) registry;
  r

let success_rate ok issued = if issued = 0 then 0.0 else float_of_int ok /. float_of_int issued

let section r =
  let tbl =
    Stats.Text_table.create
      [
        "failed frac";
        "failed nodes";
        "chord success";
        "chord stretch";
        "hieras success";
        "hieras stretch";
        "retries c/h";
        "fallbacks c/h";
        "escapes";
      ]
  in
  List.iter
    (fun p ->
      Stats.Text_table.add_row tbl
        [
          Printf.sprintf "%.0f%%" (p.fraction *. 100.0);
          string_of_int p.failed;
          Printf.sprintf "%.1f%%" (100.0 *. success_rate p.chord_succeeded p.chord_issued);
          Printf.sprintf "%.2f" p.chord_stretch;
          Printf.sprintf "%.1f%%" (100.0 *. success_rate p.hieras_succeeded p.hieras_issued);
          Printf.sprintf "%.2f" p.hieras_stretch;
          Printf.sprintf "%d/%d" p.chord_retries p.hieras_retries;
          Printf.sprintf "%d/%d" p.chord_fallbacks p.hieras_fallbacks;
          string_of_int p.hieras_layer_escapes;
        ])
    r.points;
  {
    Report.id = "resilience";
    title =
      Printf.sprintf "Lookup success and latency stretch under %s failures (%d nodes, %d lookups)"
        (schedule_name r.kind) r.config.Config.nodes r.config.Config.requests;
    table = tbl;
    notes =
      [
        Printf.sprintf
          "faults injected at %.0f ms, network sampled at %.0f ms; success = reaching the \
           first live node clockwise from the key"
          fault_at sample_at;
        Printf.sprintf
          "stretch = mean successful-lookup latency (timeout and backoff penalties included) \
           over the all-alive baseline (chord %.1f ms, hieras %.1f ms)"
          r.chord_baseline_ms r.hieras_baseline_ms;
        "a HIERAS lower ring escapes to the next layer when locally partitioned, so only \
         global-ring partitions can fail a lookup";
      ];
  }
