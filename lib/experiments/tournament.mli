(** The cross-algorithm tournament (ISSUE 8): Chord, Pastry, CAN and
    Tapestry — each flat and each HIERAS-layered through {!Hieras.Make} —
    replay one identical seeded request stream over one identical topology
    into a single comparison matrix: hops, latency, stretch, and lookup
    success under the PR 5 crash and stub-domain-outage fault schedules.

    Everything is deterministic: the request stream, landmark choice and
    fault draws derive from the config seed on the calling domain; the
    replay uses the fixed chunk layout of the other experiments, so
    {!results_json} is byte-identical for any [--jobs]. Golden:
    [test/golden/tournament_ts64.json]. *)

(** The four layered overlays, exposed so tests can drive them directly. *)
module LChord : module type of Hieras.Make (Chord.Routable)

module LPastry : module type of Hieras.Make (Pastry.Routable)
module LCan : module type of Hieras.Make (Can.Routable)
module LTapestry : module type of Hieras.Make (Tapestry.Routable)

type contestant = C : (module Routing.ROUTABLE with type t = 'a) * 'a -> contestant

val build_contestants : Runner.env -> Config.t -> contestant list
(** The eight contestants in matrix order (chord, hieras, pastry,
    hieras-pastry, can, hieras-can, tapestry, hieras-tapestry), all built
    over the env's topology and host set. *)

type fault_point = {
  succeeded : int;
  retries : int;
  timeouts : int;
  fallbacks : int;
  layer_escapes : int;
  penalty_ms : float;
  ok_latency_ms : float;  (** mean latency of successful lookups *)
}

type entry = {
  algo : string;
  hops_mean : float;
  hops_max : float;
  latency_mean : float;
  latency_max : float;
  stretch : float;  (** mean route latency / direct host latency *)
  owner_ok : int;  (** routes ending at the overlay's owner — must equal lookups *)
  crash : fault_point;
  outage : fault_point;
}

type results = {
  config : Config.t;
  lookups : int;
  fault_fraction : float;
  crash_failed : int;
  outage_failed : int;
  entries : entry list;  (** matrix order, as {!build_contestants} *)
}

val run :
  ?pool:Parallel.Pool.t ->
  ?registry:Obs.Metrics.t ->
  ?timer:Obs.Timer.t ->
  ?fault_fraction:float ->
  Config.t ->
  results
(** Build the eight contestants, replay the request stream three times per
    contestant (baseline, crash liveness, outage liveness — the fault
    samples are drawn once and shared), and collect the matrix.
    [fault_fraction] (default 0.3, range [0, 0.95]) sizes both schedules.
    [registry] receives a [tournament.*] export on the calling domain. *)

val results_json : results -> string
(** Deterministic single-line object, [{"schema":"hieras-tournament",...}],
    fixed member and contestant order — the golden-gated artifact. *)

val section : results -> Report.section
(** Text-report rendering of the matrix. *)
