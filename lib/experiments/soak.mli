(** Long-horizon churn soak for the message-level protocols.

    Each {e cell} runs one algorithm ([chord] or [hieras]) under one
    churn-rate factor for the whole horizon: sustained {!Workload.Churn}
    events, optional message loss and an optional {!Workload.Faults}
    schedule landing mid-horizon, while a fixed-cadence probe audits
    global-ring correctness against the ideal ring and fires one lookup
    per instant. The convergence subsystem ({!Simnet.Stability} inside
    both protocols) meters convergence times and maintenance bandwidth —
    the sweep over factors yields the bandwidth-cost-vs-churn-rate curves
    the maintenance-vs-performance tradeoff is scored on.

    Determinism: a cell is fully self-contained (its own topology, engine,
    rngs and time-series collector, all seeded from [spec.seed] and the
    factor index), cells are dispatched with {!Parallel.Pool.map_chunks}
    at chunk size 1 and merged in fixed order — results and
    {!results_json} bytes are identical for any [--jobs]. The chord and
    hieras cells of one factor share the same topology, churn trace,
    probe stream and fault draw, so their curves are directly
    comparable. *)

type spec = {
  pool : int;  (** total node address pool, >= 2 *)
  initial : int;  (** nodes alive before churn starts, in 1..pool *)
  horizon_ms : float;  (** churn window length, > 0 *)
  join_rate : float;  (** expected joins per second at factor 1 *)
  fail_rate : float;
  leave_rate : float;
  factors : float list;  (** churn-rate multipliers — the curve's x axis *)
  loss : float;  (** message loss probability, [0, 1) *)
  bucket_ms : float;  (** time-series bucket width *)
  probe_every_ms : float;  (** audit + lookup probe cadence *)
  depth : int;  (** HIERAS layers, 2..4 *)
  landmarks : int;
  adaptive : bool;  (** adaptive maintenance backoff in both protocols *)
  fault : Resilience.schedule option;
      (** optional engine-level fault schedule injected at mid-horizon;
          the protocols are not told — the convergence probes must detect
          the damage *)
  fault_frac : float;  (** fraction for crash/restart faults, [0, 0.95] *)
  net_sample : float option;
      (** when [Some r], every cell records its engine's message-level
          spans ({!Obs.Netspan}) at root-keyed sample rate [r] into the
          cell's [net_trace]; [None] (the default) leaves the engines
          untraced and every [net_trace] empty *)
  seed : int;
}

val default_spec : spec
(** 48-node pool, 12 initial, 60 s horizon, paper-ish churn rates, factors
    [0.5; 1; 2], 1% loss, 1 s buckets and probes, depth 2, 4 landmarks,
    fixed cadence (non-adaptive), no faults, seed 2003. *)

val validate : spec -> (unit, string) result
(** Range checks with CLI-friendly messages naming the offending flag;
    both drivers print the error and exit 2 before building anything. *)

type cell = {
  algo : string;  (** ["chord"] or ["hieras"] *)
  factor : float;
  churn_events : int;  (** churn events replayed *)
  sim_ms : float;  (** total simulated time (settle + horizon + cooldown) *)
  messages : int;  (** engine-level messages sent *)
  messages_per_s : float;  (** per simulated second *)
  maint_ops : int;  (** maintenance RPCs initiated by the protocol *)
  maint_ops_per_s : float;
  lookups_issued : int;
  lookups_ok : int;  (** answered by a live member *)
  ring_checks : int;
  ring_ok : int;  (** audits where the global ring matched the ideal ring *)
  convergences : int;  (** summed over layers for hieras *)
  disturbances : int;
  mean_convergence_ms : float;  (** 0 when nothing converged *)
  converged_at_end : bool;
  final_members : int;
  series_json : string;  (** the cell's {!Obs.Timeseries.to_json} *)
  net_trace : string;
      (** the cell's message-span JSONL, every line ctx-tagged
          [<algo>.x<factor>]; [""] unless [spec.net_sample] was set *)
}

type results = { spec : spec; cells : cell list (** factor-major, chord then hieras *) }

val settle_ms : spec -> float
(** Settle instant: the churn window opens here ([initial * 400 ms] of
    staggered joins plus 15 s of quiet stabilization). *)

val run : ?pool:Parallel.Pool.t -> ?registry:Obs.Metrics.t -> spec -> results
(** Raises [Invalid_argument] when {!validate} rejects the spec.
    [registry] receives {!export_registry}. *)

val export_registry : Obs.Metrics.t -> results -> unit
(** Per-cell counters and gauges under [soak.<algo>.x<factor>.*]
    (messages, maint_ops, lookup/ring rates, convergence stats). *)

val results_json : results -> string
(** Deterministic single-line object, [{"schema":"hieras-soak",...}] with
    one member per spec field and a ["cells"] array embedding each cell's
    time series — the artifact `analyze compare` diffs and the soak golden
    pins. The per-cell [net_trace] is deliberately {e not} embedded, so
    the bytes do not depend on whether tracing ran. *)

val net_trace : results -> string
(** The cells' message-span JSONL concatenated in cell order (factor-major,
    chord then hieras) — byte-identical for any [--jobs]; [""] when
    [spec.net_sample] is [None]. *)

val section : results -> Report.section
(** Render as the report section [soak] (one row per cell). *)
