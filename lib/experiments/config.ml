type t = {
  model : Topology.Model.kind;
  nodes : int;
  landmarks : int;
  depth : int;
  requests : int;
  seed : int;
  succ_list_len : int;
  latency_backend : Topology.Latency.backend;
}

let paper_default =
  {
    model = Topology.Model.Transit_stub;
    nodes = 10_000;
    landmarks = 4;
    depth = 2;
    requests = 100_000;
    seed = 2003;
    succ_list_len = 8;
    latency_backend = Topology.Latency.Auto;
  }

let with_model t model = { t with model }
let with_nodes t nodes = { t with nodes }
let with_landmarks t landmarks = { t with landmarks }
let with_depth t depth = { t with depth }
let with_requests t requests = { t with requests }
let with_seed t seed = { t with seed }
let with_latency_backend t latency_backend = { t with latency_backend }

let scaled t f =
  if f <= 0.0 then invalid_arg "Config.scaled: factor must be positive";
  {
    t with
    nodes = max 64 (int_of_float (float_of_int t.nodes *. f));
    requests = max 100 (int_of_float (float_of_int t.requests *. f));
  }

let validate t =
  if t.nodes < 2 then Error (Printf.sprintf "--nodes must be >= 2 (got %d)" t.nodes)
  else if t.landmarks < 1 then Error (Printf.sprintf "--landmarks must be >= 1 (got %d)" t.landmarks)
  else if t.depth < 2 || t.depth > 4 then
    Error (Printf.sprintf "--depth must be between 2 and 4 (got %d)" t.depth)
  else if t.requests < 1 then Error (Printf.sprintf "--requests must be >= 1 (got %d)" t.requests)
  else if t.succ_list_len < 1 then
    Error (Printf.sprintf "succ_list_len must be >= 1 (got %d)" t.succ_list_len)
  else Ok ()

let network_sizes t =
  let min_n = Topology.Model.min_hosts t.model in
  let scale = float_of_int t.nodes /. 10_000.0 in
  List.init 10 (fun i -> (i + 1) * 1000)
  |> List.filter (fun n -> n >= min_n)
  |> List.map (fun n -> max 64 (int_of_float (float_of_int n *. scale)))

let pp fmt t =
  Format.fprintf fmt "%s n=%d lm=%d depth=%d req=%d seed=%d oracle=%s"
    (Topology.Model.name t.model) t.nodes t.landmarks t.depth t.requests t.seed
    (Topology.Latency.backend_name t.latency_backend)
