(** Experiment configuration.

    Defaults reproduce the paper's setup: GT-ITM Transit-Stub topology,
    two-layer HIERAS with 4 landmarks, 100 000 uniform random routing
    requests, network sizes 1000..10000 (Inet starting at 3000). A [scale]
    factor shrinks sizes and request counts proportionally for quick runs
    (tests and smoke benches). *)

type t = {
  model : Topology.Model.kind;
  nodes : int;
  landmarks : int;
  depth : int;
  requests : int;
  seed : int;
  succ_list_len : int;
  latency_backend : Topology.Latency.backend;
      (** storage strategy of the latency oracle; never affects results,
          only build time and memory *)
}

val paper_default : t
(** TS, 10000 nodes, 4 landmarks, depth 2, 100 000 requests, seed 2003,
    auto latency backend. *)

val with_model : t -> Topology.Model.kind -> t
val with_nodes : t -> int -> t
val with_landmarks : t -> int -> t
val with_depth : t -> int -> t
val with_requests : t -> int -> t
val with_seed : t -> int -> t
val with_latency_backend : t -> Topology.Latency.backend -> t

val validate : t -> (unit, string) result
(** Checks the parameter ranges the system supports: [nodes >= 2],
    [landmarks >= 1], [depth] in 2..4 (a depth-1 HIERAS {e is} Chord;
    binning refinement chains are defined to depth 4), [requests >= 1],
    [succ_list_len >= 1]. The error message names the offending CLI flag —
    both CLIs print it and exit 2 before building anything. *)

val scaled : t -> float -> t
(** [scaled cfg f] multiplies node and request counts by [f] (minimum 64
    nodes / 100 requests) — used for fast test configurations. *)

val network_sizes : t -> int list
(** The paper's sweep 1000..10000 (step 1000), clipped to the model's
    minimum (3000 for Inet), scaled like [scaled]. *)

val pp : Format.formatter -> t -> unit
