(** The web-cache storage scenario (ROADMAP "Storage, replication, and a
    DHT web-cache scenario"; DESIGN.md §15).

    The replicated store ({!Store.Kv}) and per-node cache tier
    ({!Store.Cache}) under a zipf object workload
    ({!Workload.Webcache}), swept over replication factor × zipf skew
    for both message protocols, with an optional fault schedule landing
    between populate and read. Reports object availability, cache hit
    rate and overlay fetch latency per cell.

    One cell = one (replication, alpha, algorithm) triple, fully
    self-contained and seeded from [(spec.seed, pair index)] alone, so
    the chord and hieras cells of one pair see identical topology,
    catalogue, request stream and fault draw — and {!results_json} is
    byte-identical for any [--jobs] ([Pool.map_chunks] with chunk size
    1, fixed merge order), which [test/test_store.ml] and the cram suite
    enforce.

    The ["spaced"] schedule kills [fault_frac] of the pool at positions
    spread through identifier order with at least [r] nodes between
    victims, so no key's owner-plus-replicas window loses more than one
    copy: with fewer than [r] correlated failures per replica set, every
    acknowledged object must remain reachable — measured availability
    100%, the acceptance gate this experiment exists to demonstrate. *)

type algo = Chord_ring | Hieras_rings

val algo_name : algo -> string

type fault = No_fault | Crash | Spaced

val fault_name : fault -> string
(** ["none"], ["crash"] (uniform random kills), ["spaced"]. *)

val fault_of_name : string -> fault option

type spec = {
  pool : int;  (** nodes; all join before the store populates *)
  objects : int;  (** catalogue size — one put each *)
  requests : int;  (** zipf read stream length *)
  replication : int list;  (** store replication factors to sweep *)
  alphas : float list;  (** zipf skews to sweep *)
  fault : fault;
  fault_frac : float;  (** fraction killed (schedules other than none) *)
  cache_entries : int;  (** per-node cache entry budget *)
  cache_bytes : int;  (** per-node cache byte budget *)
  ttl_ms : float;  (** cache TTL; <= 0 disables *)
  loss : float;  (** message loss rate *)
  depth : int;  (** HIERAS layers *)
  landmarks : int;
  net_sample : float option;  (** message-span recording, root-keyed rate *)
  seed : int;
}

val default_spec : spec
(** 32-node pool, 48 objects, 600 requests, r ∈ {2, 3}, alpha 0.8, no
    faults, 16-entry / 128 KiB / 30 s caches, seed 2003. *)

val validate : spec -> (unit, string) result
(** CLI-friendly diagnostics; both drivers print the message and exit 2. *)

val spaced_victims : members_by_id:int array -> frac:float -> r:int -> int list
(** The deterministic victim set of the spaced schedule (exposed for the
    property suite): positions [0, step, 2·step, ...] of the
    id-sorted live population, [step = max r (n / k)], last victim at
    least [r] before the wrap. *)

type cell = {
  algo : string;
  replication : int;
  alpha : float;
  sim_ms : float;
  messages : int;
  puts : int;
  puts_acked : int;
  requests : int;  (** issued against acknowledged objects *)
  skipped_unbacked : int;  (** stream entries naming never-acknowledged objects *)
  served : int;  (** cache hits + routed gets that found the object *)
  hits : int;  (** cache hits alone *)
  absent : int;  (** routed gets answered "no such key" — lost objects *)
  unreachable : int;  (** routed gets that failed outright *)
  latency_mean_ms : float;  (** over routed gets that found the object *)
  latency_max_ms : float;
  replicate_msgs : int;
  read_repairs : int;
  handoffs : int;
  promotions : int;
  pruned : int;
  items_live : int;
  evictions : int;
  expirations : int;
  hot_objects : int;
  killed : int;
  final_members : int;
  net_trace : string;
}

type results = { spec : spec; cells : cell list }

val run : ?pool:Parallel.Pool.t -> ?registry:Obs.Metrics.t -> spec -> results
(** Raises [Invalid_argument] on an invalid spec (drivers validate
    first). Cells are dispatched one per chunk and merged in fixed
    order. *)

val export_registry : Obs.Metrics.t -> results -> unit
(** Per-cell counters and gauges under
    [cache.<algo>.r<r>.a<alpha>.*]. *)

val results_json : results -> string
(** Deterministic single-line JSON, ["schema":"hieras-cache"] —
    recognised by [Obs.Analyze.compare_files] and gated lower-is-better
    on unavailability, miss rate and fetch latency. *)

val net_trace : results -> string
(** Concatenated per-cell message-span JSONL (empty unless
    [net_sample]); cells in fixed order, byte-identical for any
    [--jobs]. *)

val section : results -> Report.section
