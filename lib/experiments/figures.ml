module Summary = Stats.Summary
module Histogram = Stats.Histogram
module Table = Stats.Text_table

type generator =
  ?pool:Parallel.Pool.t ->
  ?registry:Obs.Metrics.t ->
  ?trace:Obs.Trace.t ->
  ?timer:Obs.Timer.t ->
  Config.t ->
  Report.section list

let f3 x = Printf.sprintf "%.3f" x
let f4 x = Printf.sprintf "%.4f" x
let ms x = Printf.sprintf "%.1f" x

(* ----------------------------------------------------------------- *)
(* Table 1: landmark orders of sample nodes                           *)
(* ----------------------------------------------------------------- *)

let table1 ?pool ?registry:_ ?trace:_ ?timer cfg =
  let cfg = { cfg with Config.nodes = min cfg.Config.nodes 1000 } in
  let env = Runner.build_env ?pool ?timer cfg in
  let lat = Runner.latency_oracle env in
  let rng = Prng.Rng.create ~seed:(cfg.Config.seed + 7919) in
  let landmarks = Binning.Landmark.choose_spread lat ~count:cfg.Config.landmarks rng in
  let lm_count = Binning.Landmark.count landmarks in
  let headers =
    "Node" :: List.init lm_count (fun i -> Printf.sprintf "Dist-L%d" (i + 1)) @ [ "Order" ]
  in
  let table = Table.create headers in
  let sample = Prng.Dist.sample_without_replacement rng 6 cfg.Config.nodes in
  Array.iteri
    (fun row host ->
      let dists = Binning.Landmark.measure lat landmarks ~host in
      let order = Binning.Scheme.order Binning.Scheme.paper_thresholds dists in
      let cells =
        Printf.sprintf "%c" (Char.chr (Char.code 'A' + row))
        :: (Array.to_list dists |> List.map (fun d -> Printf.sprintf "%.0fms" d))
        @ [ order ]
      in
      Table.add_row table cells)
    sample;
  {
    Report.id = "table1";
    title =
      Printf.sprintf "Sample nodes in a two-layer HIERAS system with %d landmark nodes" lm_count;
    table;
    notes =
      [
        "Levels as in the paper: 0 for [0,20)ms, 1 for [20,100)ms, 2 for >=100ms.";
        "Nodes sharing an order string join the same layer-2 ring.";
      ];
  }

(* ----------------------------------------------------------------- *)
(* Table 2: two-layer finger tables of one node, 8-bit space          *)
(* ----------------------------------------------------------------- *)

let table2 ?pool ?registry:_ ?trace:_ ?timer:_ cfg =
  let space = Hashid.Id.space ~bits:8 in
  let nodes = 24 in
  let rng = Prng.Rng.create ~seed:(cfg.Config.seed + 31) in
  let lat = Topology.Transit_stub.generate ?pool ~hosts:nodes rng in
  let hosts = Array.init nodes (fun i -> i) in
  let chord = Chord.Network.build ~space ~hosts ~salt:"table2" () in
  let landmarks = Binning.Landmark.choose_spread lat ~count:3 rng in
  let hnet = Hieras.Hnetwork.build ~chord ~lat ~landmarks ~depth:2 () in
  (* show the node with the most interesting (largest) layer-2 ring *)
  let node =
    let best = ref 0 and best_size = ref 0 in
    for i = 0 to nodes - 1 do
      let s = Hieras.Hnetwork.ring_size_of_node hnet ~layer:2 i in
      if s > !best_size then begin
        best := i;
        best_size := s
      end
    done;
    !best
  in
  let id_int i = Hashid.Id.to_int space (Chord.Network.id chord i) in
  let ring_of i = Hieras.Hnetwork.order_of_node hnet ~layer:2 i in
  let table = Table.create [ "Start"; "Interval"; "Layer-1 successor"; "Layer-2 successor" ] in
  let l1 = Hieras.Hnetwork.finger_table hnet ~layer:1 node in
  let l2 = Hieras.Hnetwork.finger_table hnet ~layer:2 node in
  let nid = Chord.Network.id chord node in
  for i = 0 to Hashid.Id.bits space - 1 do
    let start = Hashid.Id.to_int space (Hashid.Id.add_pow2 space nid i) in
    let next =
      if i = Hashid.Id.bits space - 1 then Hashid.Id.to_int space nid
      else Hashid.Id.to_int space (Hashid.Id.add_pow2 space nid (i + 1))
    in
    let s1 = Chord.Finger_table.finger l1 i and s2 = Chord.Finger_table.finger l2 i in
    Table.add_row table
      [
        string_of_int start;
        Printf.sprintf "[%d,%d)" start next;
        Printf.sprintf "%d (\"%s\")" (id_int s1) (ring_of s1);
        Printf.sprintf "%d (\"%s\")" (id_int s2) (ring_of s2);
      ]
  done;
  {
    Report.id = "table2";
    title =
      Printf.sprintf "Node %d (\"%s\")'s finger tables in a two-layer HIERAS system (8-bit space)"
        (id_int node) (ring_of node);
    table;
    notes =
      [
        "Layer-1 successors may be any peer; layer-2 successors are restricted to the node's ring.";
        "As in the paper's Table 2, consecutive fingers often repeat: the implementation stores them run-length deduplicated.";
      ];
  }

(* ----------------------------------------------------------------- *)
(* Figures 2 and 3: size sweep per model                              *)
(* ----------------------------------------------------------------- *)

let fig2_and_fig3 ?pool ?registry ?trace ?timer cfg =
  let hops_table = Table.create [ "Model"; "Nodes"; "Chord hops"; "HIERAS hops"; "Overhead" ] in
  let lat_table =
    Table.create [ "Model"; "Nodes"; "Chord ms"; "HIERAS ms"; "HIERAS/Chord" ]
  in
  let first_last : (Topology.Model.kind * float * float) list ref = ref [] in
  let overheads = ref [] in
  let ratios = ref [] in
  List.iter
    (fun model ->
      let cfg = Config.with_model cfg model in
      let sizes =
        (* scaled-down runs can fall below a model's hard minimum (Inet
           refuses fewer than 3000 hosts, as the original tool does) *)
        List.filter (fun n -> n >= Topology.Model.min_hosts model) (Config.network_sizes cfg)
      in
      let per_model = ref [] in
      List.iter
        (fun n ->
          let cfg = Config.with_nodes cfg n in
          let m = Runner.run ?pool ?registry ?trace ?timer cfg in
          let ch = Summary.mean m.Runner.chord_hops and hh = Summary.mean m.Runner.hieras_hops in
          let cl = Summary.mean m.Runner.chord_latency
          and hl = Summary.mean m.Runner.hieras_latency in
          Table.add_row hops_table
            [
              Topology.Model.name model;
              string_of_int n;
              f3 ch;
              f3 hh;
              Expected.pct (Runner.hop_overhead m);
            ];
          Table.add_row lat_table
            [
              Topology.Model.name model;
              string_of_int n;
              ms cl;
              ms hl;
              Expected.pct (Runner.latency_ratio m);
            ];
          overheads := Runner.hop_overhead m :: !overheads;
          ratios := (model, Runner.latency_ratio m) :: !ratios;
          per_model := (n, ch) :: !per_model)
        sizes;
      match (List.rev !per_model, !per_model) with
      | (_, first) :: _, (_, last) :: _ -> first_last := (model, first, last) :: !first_last
      | _ -> ())
    Topology.Model.all;
  let lo, hi = Expected.fig2_hop_overhead_range in
  let measured_lo = List.fold_left Float.min infinity !overheads in
  let measured_hi = List.fold_left Float.max neg_infinity !overheads in
  let growth_notes =
    List.rev_map
      (fun (model, first, last) ->
        Printf.sprintf "%s: hops grow %s from smallest to largest network (paper: ~%s)."
          (Topology.Model.name model)
          (Expected.pct ((last /. first) -. 1.0))
          (Expected.pct Expected.fig2_hop_growth_1000_to_10000))
      !first_last
  in
  let fig2 =
    {
      Report.id = "fig2";
      title = "HIERAS and Chord routing performance comparison (routing hops)";
      table = hops_table;
      notes =
        Printf.sprintf "Measured hop overhead across runs: %s .. %s (paper: %s .. %s)."
          (Expected.pct measured_lo) (Expected.pct measured_hi) (Expected.pct lo)
          (Expected.pct hi)
        :: growth_notes;
    }
  in
  let ratio_note model =
    let rs = List.filter_map (fun (m, r) -> if m = model then Some r else None) !ratios in
    if rs = [] then None
    else
      let mean = List.fold_left ( +. ) 0.0 rs /. float_of_int (List.length rs) in
      Some
        (Printf.sprintf "%s: mean HIERAS/Chord latency ratio %s (paper: %s)."
           (Topology.Model.name model) (Expected.pct mean)
           (Expected.pct (Expected.fig3_latency_ratio model)))
  in
  let fig3 =
    {
      Report.id = "fig3";
      title = "HIERAS and Chord routing performance comparison (average latency)";
      table = lat_table;
      notes = List.filter_map ratio_note Topology.Model.all;
    }
  in
  (fig2, fig3)

(* ----------------------------------------------------------------- *)
(* Figures 4 and 5: hop PDF and latency CDF                           *)
(* ----------------------------------------------------------------- *)

let fig4_and_fig5 ?pool ?registry ?trace ?timer cfg =
  let m = Runner.run ?pool ?registry ?trace ?timer cfg in
  let pdf_c = Histogram.pdf m.Runner.chord_hop_pdf in
  let pdf_h = Histogram.pdf m.Runner.hieras_hop_pdf in
  let pdf_l = Histogram.pdf m.Runner.lower_hop_pdf in
  let pdf_table = Table.create [ "Hops"; "Chord PDF"; "HIERAS PDF"; "HIERAS lower-layer PDF" ] in
  let max_bin =
    let last = ref 0 in
    Array.iteri (fun i v -> if v > 0.0001 || pdf_h.(i) > 0.0001 then last := i) pdf_c;
    !last
  in
  for i = 0 to max_bin do
    Table.add_row pdf_table [ string_of_int i; f4 pdf_c.(i); f4 pdf_h.(i); f4 pdf_l.(i) ]
  done;
  let fig4 =
    {
      Report.id = "fig4";
      title = "PDF distribution of the number of routing hops";
      table = pdf_table;
      notes =
        [
          Printf.sprintf "Mean hops: Chord %s (paper %.4f), HIERAS %s (paper %.4f), overhead %s (paper %s)."
            (f4 (Summary.mean m.Runner.chord_hops))
            Expected.fig4_chord_mean_hops
            (f4 (Summary.mean m.Runner.hieras_hops))
            Expected.fig4_hieras_mean_hops
            (Expected.pct (Runner.hop_overhead m))
            (Expected.pct Expected.fig4_hop_overhead);
          Printf.sprintf "Top-layer hops per request: %s (paper %.3f); lower-layer hop share %s (paper %s)."
            (f3 (Summary.mean m.Runner.top_hops))
            Expected.fig4_top_layer_hops
            (Expected.pct (Runner.lower_hop_share m))
            (Expected.pct Expected.fig4_lower_hop_share);
        ];
    }
  in
  let cdf_c = Histogram.cdf m.Runner.chord_latency_hist in
  let cdf_h = Histogram.cdf m.Runner.hieras_latency_hist in
  let cdf_table = Table.create [ "Latency (ms)"; "Chord CDF"; "HIERAS CDF" ] in
  let bins = Histogram.bin_count m.Runner.chord_latency_hist in
  let step = max 1 (bins / 25) in
  let i = ref 0 in
  while !i < bins do
    let lo = Histogram.bin_lo m.Runner.chord_latency_hist !i in
    Table.add_row cdf_table [ ms lo; f4 cdf_c.(!i); f4 cdf_h.(!i) ];
    i := !i + step
  done;
  let fig5 =
    {
      Report.id = "fig5";
      title = "CDF distribution of the routing latency";
      table = cdf_table;
      notes =
        [
          Printf.sprintf
            "Mean latency: Chord %s ms (paper %.2f), HIERAS %s ms (paper %.2f), ratio %s (paper %s)."
            (ms (Summary.mean m.Runner.chord_latency))
            Expected.fig5_chord_mean_latency
            (ms (Summary.mean m.Runner.hieras_latency))
            Expected.fig5_hieras_mean_latency
            (Expected.pct (Runner.latency_ratio m))
            (Expected.pct Expected.fig5_latency_ratio);
          Printf.sprintf
            "Mean link delay: top layer %s ms (paper %.0f), lower layers %s ms (paper %.3f), lower/top %s (paper 35.23%%)."
            (ms (Runner.mean_link_latency_top m))
            Expected.fig5_top_link_latency
            (ms (Runner.mean_link_latency_lower m))
            Expected.fig5_lower_link_latency
            (Expected.pct (Runner.mean_link_latency_lower m /. Runner.mean_link_latency_top m));
          Printf.sprintf "Lower-layer latency share: %s (paper %s)."
            (Expected.pct (Runner.lower_latency_share m))
            (Expected.pct Expected.fig5_lower_latency_share);
        ];
    }
  in
  (fig4, fig5)

(* ----------------------------------------------------------------- *)
(* Figures 6 and 7: landmark sweep                                    *)
(* ----------------------------------------------------------------- *)

let fig6_and_fig7 ?pool ?registry ?trace ?timer cfg =
  let env = Runner.build_env ?pool ?timer cfg in
  let hops_table =
    Table.create [ "Landmarks"; "Chord hops"; "HIERAS hops"; "Lower-layer hops"; "Overhead" ]
  in
  let lat_table =
    Table.create [ "Landmarks"; "Chord ms"; "HIERAS ms"; "HIERAS/Chord" ]
  in
  let best = ref (0, infinity) in
  let two_lm = ref None in
  List.iter
    (fun lm ->
      let cfg = Config.with_landmarks cfg lm in
      let hnet = Runner.build_hieras ?timer env cfg in
      let m = Runner.measure ?pool ?registry ?trace ?timer env hnet cfg in
      Table.add_row hops_table
        [
          string_of_int lm;
          f3 (Summary.mean m.Runner.chord_hops);
          f3 (Summary.mean m.Runner.hieras_hops);
          f3 (Summary.mean m.Runner.lower_hops);
          Expected.pct (Runner.hop_overhead m);
        ];
      let ratio = Runner.latency_ratio m in
      Table.add_row lat_table
        [
          string_of_int lm;
          ms (Summary.mean m.Runner.chord_latency);
          ms (Summary.mean m.Runner.hieras_latency);
          Expected.pct ratio;
        ];
      if ratio < snd !best then best := (lm, ratio);
      if lm = 2 then two_lm := Some ratio)
    [ 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12 ];
  let fig6 =
    {
      Report.id = "fig6";
      title = "Average number of routing hops vs. number of landmark nodes (TS model)";
      table = hops_table;
      notes =
        [
          "Paper: hop count changes little with landmark count; lower-layer hops shrink as rings multiply.";
        ];
    }
  in
  let fig7 =
    {
      Report.id = "fig7";
      title = "Average routing latency vs. number of landmark nodes (TS model)";
      table = lat_table;
      notes =
        [
          (match !two_lm with
          | Some r ->
              Printf.sprintf "2 landmarks: HIERAS %s below Chord (paper: only %s below)."
                (Expected.pct (1.0 -. r))
                (Expected.pct Expected.fig7_two_landmark_gain)
          | None -> "2-landmark configuration not measured.");
          Printf.sprintf "Best configuration: %d landmarks at ratio %s (paper: %d landmarks, %s)."
            (fst !best) (Expected.pct (snd !best)) Expected.fig7_best_landmarks
            (Expected.pct Expected.fig7_best_latency_ratio);
        ];
    }
  in
  (fig6, fig7)

(* ----------------------------------------------------------------- *)
(* Figures 8 and 9: hierarchy depth sweep                             *)
(* ----------------------------------------------------------------- *)

let fig8_and_fig9 ?pool ?registry ?trace ?timer cfg =
  let cfg = Config.with_landmarks cfg 6 in
  let scale = float_of_int cfg.Config.nodes /. 10_000.0 in
  let sizes =
    List.init 6 (fun i -> (i + 5) * 1000)
    |> List.map (fun n -> max 64 (int_of_float (float_of_int n *. scale)))
  in
  let hops_table = Table.create [ "Nodes"; "depth 2"; "depth 3"; "depth 4"; "4 vs 2" ] in
  let lat_table =
    Table.create [ "Nodes"; "depth 2 ms"; "depth 3 ms"; "depth 4 ms"; "3 vs 2"; "4 vs 3" ]
  in
  List.iter
    (fun n ->
      let cfg = Config.with_nodes cfg n in
      let env = Runner.build_env ?pool ?timer cfg in
      let results =
        List.map
          (fun depth ->
            let cfg = Config.with_depth cfg depth in
            let hnet = Runner.build_hieras ?timer env cfg in
            Runner.measure ?pool ?registry ?trace ?timer env hnet cfg)
          [ 2; 3; 4 ]
      in
      match results with
      | [ d2; d3; d4 ] ->
          let h2 = Summary.mean d2.Runner.hieras_hops
          and h3 = Summary.mean d3.Runner.hieras_hops
          and h4 = Summary.mean d4.Runner.hieras_hops in
          let l2 = Summary.mean d2.Runner.hieras_latency
          and l3 = Summary.mean d3.Runner.hieras_latency
          and l4 = Summary.mean d4.Runner.hieras_latency in
          Table.add_row hops_table
            [
              string_of_int n;
              f3 h2;
              f3 h3;
              f3 h4;
              Expected.pct ((h4 /. h2) -. 1.0);
            ];
          Table.add_row lat_table
            [
              string_of_int n;
              ms l2;
              ms l3;
              ms l4;
              Expected.pct (1.0 -. (l3 /. l2));
              Expected.pct (1.0 -. (l4 /. l3));
            ]
      | _ -> assert false)
    sizes;
  let lo8, hi8 = Expected.fig8_depth_hop_overhead_range in
  let lo9, hi9 = Expected.fig9_depth3_gain_range in
  let lo9', hi9' = Expected.fig9_depth4_gain_range in
  let fig8 =
    {
      Report.id = "fig8";
      title = "HIERAS performance with different hierarchy depth (average hops, TS model)";
      table = hops_table;
      notes =
        [
          Printf.sprintf "Paper: 4-layer hops exceed 2-layer by %s .. %s." (Expected.pct lo8)
            (Expected.pct hi8);
        ];
    }
  in
  let fig9 =
    {
      Report.id = "fig9";
      title = "HIERAS performance with different hierarchy depth (average latency, TS model)";
      table = lat_table;
      notes =
        [
          Printf.sprintf "Paper: 2->3 layers cuts latency by %s .. %s; 3->4 by %s .. %s."
            (Expected.pct lo9) (Expected.pct hi9) (Expected.pct lo9') (Expected.pct hi9');
          "Our nested-refinement binning yields smaller depth gains than the paper's \
           (unspecified) deep-ring construction; the qualitative conclusion — depth 2-3 \
           suffices, deeper layers add little — is unchanged (see EXPERIMENTS.md).";
        ];
    }
  in
  (fig8, fig9)

(* ----------------------------------------------------------------- *)

(* Each table/figure runs under a span named by its id, so a profiled `all`
   shows where the suite's time goes before descending into Runner phases. *)
let all ?pool ?registry ?trace ?timer cfg =
  let sp id f = Obs.Timer.span (Option.value timer ~default:Obs.Timer.disabled) id f in
  let t1 = sp "table1" (fun () -> table1 ?pool ?registry ?trace ?timer cfg) in
  let t2 = sp "table2" (fun () -> table2 ?pool ?registry ?trace ?timer cfg) in
  let f2, f3 = sp "fig2+3" (fun () -> fig2_and_fig3 ?pool ?registry ?trace ?timer cfg) in
  let f4, f5 = sp "fig4+5" (fun () -> fig4_and_fig5 ?pool ?registry ?trace ?timer cfg) in
  let f6, f7 = sp "fig6+7" (fun () -> fig6_and_fig7 ?pool ?registry ?trace ?timer cfg) in
  let f8, f9 = sp "fig8+9" (fun () -> fig8_and_fig9 ?pool ?registry ?trace ?timer cfg) in
  [ t1; t2; f2; f3; f4; f5; f6; f7; f8; f9 ]

let ids =
  [ "table1"; "table2"; "fig2"; "fig3"; "fig4"; "fig5"; "fig6"; "fig7"; "fig8"; "fig9" ]

let by_id = function
  | "table1" -> Some (fun ?pool ?registry ?trace ?timer cfg -> [ table1 ?pool ?registry ?trace ?timer cfg ])
  | "table2" -> Some (fun ?pool ?registry ?trace ?timer cfg -> [ table2 ?pool ?registry ?trace ?timer cfg ])
  | "fig2" | "fig3" ->
      Some
        (fun ?pool ?registry ?trace ?timer cfg ->
          let a, b = fig2_and_fig3 ?pool ?registry ?trace ?timer cfg in
          [ a; b ])
  | "fig4" | "fig5" ->
      Some
        (fun ?pool ?registry ?trace ?timer cfg ->
          let a, b = fig4_and_fig5 ?pool ?registry ?trace ?timer cfg in
          [ a; b ])
  | "fig6" | "fig7" ->
      Some
        (fun ?pool ?registry ?trace ?timer cfg ->
          let a, b = fig6_and_fig7 ?pool ?registry ?trace ?timer cfg in
          [ a; b ])
  | "fig8" | "fig9" ->
      Some
        (fun ?pool ?registry ?trace ?timer cfg ->
          let a, b = fig8_and_fig9 ?pool ?registry ?trace ?timer cfg in
          [ a; b ])
  | _ -> None
