module Summary = Stats.Summary
module Histogram = Stats.Histogram
module Pool = Parallel.Pool

type env = {
  cfg : Config.t;
  lat : Topology.Latency.t;
  chord : Chord.Network.t;
}

let space = Hashid.Id.sha1_space

let build_env ?pool ?(timer = Obs.Timer.disabled) cfg =
  let rng = Prng.Rng.create ~seed:cfg.Config.seed in
  let topo_rng = Prng.Rng.split rng in
  let lat =
    Obs.Timer.span timer "topology" (fun () ->
        Topology.Model.build ~backend:cfg.Config.latency_backend ?pool cfg.Config.model
          ~hosts:cfg.Config.nodes topo_rng)
  in
  let hosts = Array.init cfg.Config.nodes (fun i -> i) in
  let chord =
    Obs.Timer.span timer "chord-build" (fun () ->
        Chord.Network.build ~space ~hosts ~succ_list_len:cfg.Config.succ_list_len
          ~salt:(Printf.sprintf "peer-%d" cfg.Config.seed)
          ())
  in
  { cfg; lat; chord }

let latency_oracle env = env.lat
let chord_network env = env.chord

let build_hieras ?(timer = Obs.Timer.disabled) env cfg =
  let rng = Prng.Rng.create ~seed:(cfg.Config.seed + 7919) in
  let landmarks =
    Obs.Timer.span timer "binning" (fun () ->
        Binning.Landmark.choose_spread env.lat ~count:cfg.Config.landmarks rng)
  in
  Obs.Timer.span timer "hieras-build" (fun () ->
      Hieras.Hnetwork.build ~chord:env.chord ~lat:env.lat ~landmarks ~depth:cfg.Config.depth ())

type metrics = {
  config : Config.t;
  chord_hops : Summary.t;
  chord_latency : Summary.t;
  hieras_hops : Summary.t;
  hieras_latency : Summary.t;
  lower_hops : Summary.t;
  top_hops : Summary.t;
  lower_latency : Summary.t;
  top_latency : Summary.t;
  chord_hop_pdf : Histogram.t;
  hieras_hop_pdf : Histogram.t;
  lower_hop_pdf : Histogram.t;
  chord_latency_hist : Histogram.t;
  hieras_latency_hist : Histogram.t;
  hops_per_layer : float array;
  latency_per_layer : float array;
}

(* Requests per accumulation chunk. Fixed — never derived from the pool
   width — so the chunk layout, and therefore every floating-point reduction
   order, is identical for any --jobs value. *)
let chunk_size = 4096

let fresh_metrics cfg ~depth =
  {
    config = cfg;
    chord_hops = Summary.create ();
    chord_latency = Summary.create ();
    hieras_hops = Summary.create ();
    hieras_latency = Summary.create ();
    lower_hops = Summary.create ();
    top_hops = Summary.create ();
    lower_latency = Summary.create ();
    top_latency = Summary.create ();
    chord_hop_pdf = Histogram.create_ints ~max:31;
    hieras_hop_pdf = Histogram.create_ints ~max:31;
    lower_hop_pdf = Histogram.create_ints ~max:31;
    chord_latency_hist = Histogram.create ~lo:0.0 ~hi:2000.0 ~bins:200;
    hieras_latency_hist = Histogram.create ~lo:0.0 ~hi:2000.0 ~bins:200;
    hops_per_layer = Array.make depth 0.0;
    latency_per_layer = Array.make depth 0.0;
  }

let merge_metrics a b =
  {
    config = a.config;
    chord_hops = Summary.merge a.chord_hops b.chord_hops;
    chord_latency = Summary.merge a.chord_latency b.chord_latency;
    hieras_hops = Summary.merge a.hieras_hops b.hieras_hops;
    hieras_latency = Summary.merge a.hieras_latency b.hieras_latency;
    lower_hops = Summary.merge a.lower_hops b.lower_hops;
    top_hops = Summary.merge a.top_hops b.top_hops;
    lower_latency = Summary.merge a.lower_latency b.lower_latency;
    top_latency = Summary.merge a.top_latency b.top_latency;
    chord_hop_pdf = Histogram.merge a.chord_hop_pdf b.chord_hop_pdf;
    hieras_hop_pdf = Histogram.merge a.hieras_hop_pdf b.hieras_hop_pdf;
    lower_hop_pdf = Histogram.merge a.lower_hop_pdf b.lower_hop_pdf;
    chord_latency_hist = Histogram.merge a.chord_latency_hist b.chord_latency_hist;
    hieras_latency_hist = Histogram.merge a.hieras_latency_hist b.hieras_latency_hist;
    hops_per_layer = Array.mapi (fun k v -> v +. b.hops_per_layer.(k)) a.hops_per_layer;
    latency_per_layer =
      Array.mapi (fun k v -> v +. b.latency_per_layer.(k)) a.latency_per_layer;
  }

let measure_one ?trace env hnet m { Workload.Requests.origin; key } =
  let rc = Chord.Lookup.route ?trace env.chord env.lat ~origin ~key in
  let rh = Hieras.Hlookup.route ?trace hnet ~origin ~key in
  if rc.Chord.Lookup.destination <> rh.Hieras.Hlookup.destination then
    failwith "Runner.measure: HIERAS and Chord disagree on a key's owner";
  Summary.add m.chord_hops (float_of_int rc.Chord.Lookup.hop_count);
  Summary.add m.chord_latency rc.Chord.Lookup.latency;
  Summary.add m.hieras_hops (float_of_int rh.Hieras.Hlookup.hop_count);
  Summary.add m.hieras_latency rh.Hieras.Hlookup.latency;
  let low_h = ref 0 and low_l = ref 0.0 in
  Array.iteri
    (fun k h ->
      m.hops_per_layer.(k) <- m.hops_per_layer.(k) +. float_of_int h;
      m.latency_per_layer.(k) <- m.latency_per_layer.(k) +. rh.Hieras.Hlookup.latency_per_layer.(k);
      if k > 0 then begin
        low_h := !low_h + h;
        low_l := !low_l +. rh.Hieras.Hlookup.latency_per_layer.(k)
      end)
    rh.Hieras.Hlookup.hops_per_layer;
  Summary.add m.lower_hops (float_of_int !low_h);
  Summary.add m.lower_latency !low_l;
  Summary.add m.top_hops (float_of_int rh.Hieras.Hlookup.hops_per_layer.(0));
  Summary.add m.top_latency rh.Hieras.Hlookup.latency_per_layer.(0);
  Histogram.add m.chord_hop_pdf (float_of_int rc.Chord.Lookup.hop_count);
  Histogram.add m.hieras_hop_pdf (float_of_int rh.Hieras.Hlookup.hop_count);
  Histogram.add m.lower_hop_pdf (float_of_int !low_h);
  Histogram.add m.chord_latency_hist rc.Chord.Lookup.latency;
  Histogram.add m.hieras_latency_hist rh.Hieras.Hlookup.latency

(* Registry export happens on the calling domain from the already-merged
   accumulators, never from workers — the snapshot is therefore bit-identical
   for any pool width, which test_parallel.ml pins down. *)
let export_registry reg m =
  let open Obs.Metrics in
  let c name v = set_counter (counter reg name) v in
  let g name v = set (gauge reg name) v in
  c "runner.requests" (Summary.count m.chord_hops);
  g "runner.chord.hops_mean" (Summary.mean m.chord_hops);
  g "runner.chord.hops_max" (Summary.max_value m.chord_hops);
  g "runner.chord.latency_mean_ms" (Summary.mean m.chord_latency);
  g "runner.chord.latency_max_ms" (Summary.max_value m.chord_latency);
  g "runner.hieras.hops_mean" (Summary.mean m.hieras_hops);
  g "runner.hieras.hops_max" (Summary.max_value m.hieras_hops);
  g "runner.hieras.latency_mean_ms" (Summary.mean m.hieras_latency);
  g "runner.hieras.latency_max_ms" (Summary.max_value m.hieras_latency);
  g "runner.hieras.lower_hop_share" (Summary.mean m.lower_hops /. Summary.mean m.hieras_hops);
  g "runner.hieras.lower_latency_share"
    (Summary.mean m.lower_latency /. Summary.mean m.hieras_latency);
  Array.iteri
    (fun k v -> g (Printf.sprintf "runner.hieras.layer%d.hops_mean" (k + 1)) v)
    m.hops_per_layer;
  Array.iteri
    (fun k v -> g (Printf.sprintf "runner.hieras.layer%d.latency_mean_ms" (k + 1)) v)
    m.latency_per_layer

let measure ?pool ?registry ?(trace = Obs.Trace.disabled) ?(timer = Obs.Timer.disabled) env hnet
    cfg =
  (* Tracers (and timers) are single-domain objects: when tracing is on, the
     replay runs on the calling domain. The chunk layout is unchanged, so
     the metrics stay bit-identical to an untraced parallel run. *)
  let pool =
    if Obs.Trace.enabled trace then Pool.sequential
    else Option.value pool ~default:Pool.sequential
  in
  let n = Chord.Network.size env.chord in
  let depth = Hieras.Hnetwork.depth hnet in
  (* requests are generated sequentially from the config seed, so the
     stream is the same whatever the pool width *)
  let rng = Prng.Rng.create ~seed:(cfg.Config.seed + 104729) in
  let spec =
    (* phase recorded on both paths so timer exports stay jobs-independent;
       on the streaming path generation itself overlaps the replay *)
    Obs.Timer.span timer "gen-requests" (fun () ->
        Workload.Requests.paper_default ~count:cfg.Config.requests)
  in
  let trace = if Obs.Trace.enabled trace then Some trace else None in
  let parts =
    if Pool.jobs pool = 1 then
      (* fold-only consumer: stream the requests instead of materialising
         the array, closing an accumulator at every [chunk_size] boundary so
         the merge order — and every floating-point reduction — matches the
         parallel chunk layout exactly *)
      Obs.Timer.span timer "lookup-replay" (fun () ->
          let parts = ref [] in
          let cur = ref (fresh_metrics cfg ~depth) in
          let filled = ref 0 in
          Workload.Requests.iter spec ~nodes:n ~space rng (fun r ->
              if !filled = chunk_size then begin
                parts := !cur :: !parts;
                cur := fresh_metrics cfg ~depth;
                filled := 0
              end;
              measure_one ?trace env hnet !cur r;
              incr filled);
          if !filled > 0 then parts := !cur :: !parts;
          List.rev !parts)
    else begin
      (* parallel workers need random chunk access: materialise once *)
      let requests = Workload.Requests.to_array spec ~nodes:n ~space rng in
      Obs.Timer.span timer "lookup-replay" (fun () ->
          Pool.map_chunks pool ~n:(Array.length requests) ~chunk_size (fun ~lo ~hi ->
              let p = fresh_metrics cfg ~depth in
              for i = lo to hi - 1 do
                measure_one ?trace env hnet p requests.(i)
              done;
              p))
    end
  in
  let m =
    match parts with
    | [] -> fresh_metrics cfg ~depth
    | first :: rest -> List.fold_left merge_metrics first rest
  in
  let req = float_of_int (max cfg.Config.requests 1) in
  Array.iteri (fun k v -> m.hops_per_layer.(k) <- v /. req) (Array.copy m.hops_per_layer);
  Array.iteri (fun k v -> m.latency_per_layer.(k) <- v /. req) (Array.copy m.latency_per_layer);
  Option.iter
    (fun reg ->
      export_registry reg m;
      (* packed-network footprint rides along with every measured run so
         memory regressions surface in the same registry as hop counts *)
      let g name v = Obs.Metrics.set (Obs.Metrics.gauge reg name) v in
      g "runner.chord.bytes_resident" (float_of_int (Chord.Network.bytes_resident env.chord));
      g "runner.hieras.bytes_resident" (float_of_int (Hieras.Hnetwork.bytes_resident hnet)))
    registry;
  m

let run ?pool ?registry ?trace ?timer cfg =
  let env = build_env ?pool ?timer cfg in
  let hnet = build_hieras ?timer env cfg in
  measure ?pool ?registry ?trace ?timer env hnet cfg

let latency_ratio m = Summary.mean m.hieras_latency /. Summary.mean m.chord_latency
let hop_overhead m = (Summary.mean m.hieras_hops /. Summary.mean m.chord_hops) -. 1.0
let lower_hop_share m = Summary.mean m.lower_hops /. Summary.mean m.hieras_hops
let lower_latency_share m = Summary.mean m.lower_latency /. Summary.mean m.hieras_latency
let mean_link_latency_chord m = Summary.mean m.chord_latency /. Summary.mean m.chord_hops

let mean_link_latency_lower m =
  let h = Summary.mean m.lower_hops in
  if h = 0.0 then 0.0 else Summary.mean m.lower_latency /. h

let mean_link_latency_top m =
  let h = Summary.mean m.top_hops in
  if h = 0.0 then 0.0 else Summary.mean m.top_latency /. h
