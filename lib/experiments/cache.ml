(* The web-cache storage scenario: the replicated store (Store.Kv) plus a
   per-node cache tier (Store.Cache) under a zipf object workload
   (Workload.Webcache), swept over replication factor × zipf skew × fault
   schedule for both message protocols. One cell = one (replication,
   alpha, algorithm) triple, fully self-contained — its own topology,
   engine, store, caches and rngs, all derived from the spec seed and the
   cell's (r, alpha) index — so cells run on any pool width and merge in
   fixed order: results are bit-identical for any --jobs.

   Each cell's timeline: the full pool joins and settles, the catalogue is
   put through the store (every object from a random live origin), the
   fault schedule lands, the overlay and the repair scan heal, and then
   the zipf request stream replays through the per-node caches — a miss
   routes a get across the overlay. Availability is served / requests
   over acknowledged objects only: an acknowledged put that a later get
   cannot reach is precisely the regression the storage layer exists to
   prevent, so the "spaced" schedule (victims spread in identifier order,
   never two within a replica window) must measure 100%. *)

module Pool = Parallel.Pool
module Engine = Simnet.Engine
module Id = Hashid.Id
module Kv = Store.Kv
module Ncache = Store.Cache
module Webcache = Workload.Webcache

type algo = Chord_ring | Hieras_rings

let algo_name = function Chord_ring -> "chord" | Hieras_rings -> "hieras"

type fault = No_fault | Crash | Spaced

let fault_name = function No_fault -> "none" | Crash -> "crash" | Spaced -> "spaced"
let fault_of_name = function
  | "none" -> Some No_fault
  | "crash" -> Some Crash
  | "spaced" -> Some Spaced
  | _ -> None

type spec = {
  pool : int;
  objects : int;
  requests : int;
  replication : int list;
  alphas : float list;
  fault : fault;
  fault_frac : float;
  cache_entries : int;
  cache_bytes : int;
  ttl_ms : float;
  loss : float;
  depth : int;
  landmarks : int;
  net_sample : float option;
  seed : int;
}

let default_spec =
  {
    pool = 32;
    objects = 48;
    requests = 600;
    replication = [ 2; 3 ];
    alphas = [ 0.8 ];
    fault = No_fault;
    fault_frac = 0.2;
    cache_entries = 16;
    cache_bytes = 128 * 1024;
    ttl_ms = 30_000.0;
    loss = 0.0;
    depth = 2;
    landmarks = 4;
    net_sample = None;
    seed = 2003;
  }

let max_replication = 8

(* CLI-friendly messages: the driver prints the error and exits 2 *)
let validate spec =
  if spec.pool < 4 then Error (Printf.sprintf "--pool must be >= 4 (got %d)" spec.pool)
  else if spec.objects < 1 then
    Error (Printf.sprintf "--objects must be >= 1 (got %d)" spec.objects)
  else if spec.requests < 0 then
    Error (Printf.sprintf "--requests must be >= 0 (got %d)" spec.requests)
  else if spec.replication = [] then Error "--replication must name at least one factor"
  else if List.exists (fun r -> r < 1 || r > max_replication) spec.replication then
    Error (Printf.sprintf "--replication factors must be in 1..%d" max_replication)
  else if List.exists (fun r -> r > spec.pool) spec.replication then
    Error "--replication factors must not exceed the pool"
  else if spec.alphas = [] then Error "--alphas must name at least one zipf skew"
  else if List.exists (fun a -> a < 0.0) spec.alphas then Error "--alphas must all be >= 0"
  else if spec.fault_frac < 0.0 || spec.fault_frac > 0.5 then
    Error (Printf.sprintf "--fault-frac must be in [0, 0.5] (got %g)" spec.fault_frac)
  else if spec.cache_entries < 1 then
    Error (Printf.sprintf "--cache-entries must be >= 1 (got %d)" spec.cache_entries)
  else if spec.cache_bytes < 1 then
    Error (Printf.sprintf "--cache-bytes must be >= 1 (got %d)" spec.cache_bytes)
  else if spec.loss < 0.0 || spec.loss >= 1.0 then
    Error (Printf.sprintf "--loss must be in [0, 1) (got %g)" spec.loss)
  else if spec.depth < 2 || spec.depth > 4 then
    Error (Printf.sprintf "--depth must be between 2 and 4 (got %d)" spec.depth)
  else if spec.landmarks < 1 then
    Error (Printf.sprintf "--landmarks must be >= 1 (got %d)" spec.landmarks)
  else
    match spec.net_sample with
    | Some r when r < 0.0 || r > 1.0 ->
        Error (Printf.sprintf "--net-sample must be in [0, 1] (got %g)" r)
    | _ -> Ok ()

type cell = {
  algo : string;
  replication : int;
  alpha : float;
  sim_ms : float;
  messages : int;
  puts : int;
  puts_acked : int;
  requests : int;  (** issued against acknowledged objects *)
  skipped_unbacked : int;  (** stream entries naming never-acknowledged objects *)
  served : int;  (** cache hits + routed gets that found the object *)
  hits : int;  (** cache hits alone *)
  absent : int;  (** routed gets answered "no such key" — lost objects *)
  unreachable : int;  (** routed gets that failed outright *)
  latency_mean_ms : float;  (** over routed gets that found the object *)
  latency_max_ms : float;
  replicate_msgs : int;
  read_repairs : int;
  handoffs : int;
  promotions : int;
  pruned : int;
  items_live : int;
  evictions : int;
  expirations : int;
  hot_objects : int;  (** distinct cache entries that ever ran hot, all nodes *)
  killed : int;
  final_members : int;
  net_trace : string;
}

type results = { spec : spec; cells : cell list }

let settle_ms spec = (float_of_int spec.pool *. 400.0) +. 15_000.0
let put_every_ms = 150.0
let read_every_ms = 40.0
let heal_ms = 12_000.0

(* Must cover the worst-case in-flight get chain at the stream's tail:
   up to 3 store attempts, each a full lookup retry ladder plus the
   store RPC timeout (~12 s each for HIERAS) — otherwise late reads are
   cut off mid-retry and count as lost. *)
let cooldown_ms = 40_000.0

(* Victims for the "spaced" schedule: live members sorted by identifier,
   killed at positions 0, step, 2*step, ... with step >= r and the last
   victim at least r before the wrap — so any r consecutive nodes in
   identifier order (any key's owner + replica window) contain at most one
   victim, and every acknowledged object keeps a copy. Deterministic: no
   randomness at all. *)
let spaced_victims ~members_by_id ~frac ~r =
  let n = Array.length members_by_id in
  let k = int_of_float (frac *. float_of_int n) in
  if k = 0 || n <= r then []
  else begin
    let step = max r (n / k) in
    let rec pick pos count acc =
      if count = 0 || pos > n - r then List.rev acc
      else pick (pos + step) (count - 1) (members_by_id.(pos) :: acc)
    in
    pick 0 k []
  end

(* Uniform view of the two protocols: what the cache driver itself needs
   beyond the store's substrate. *)
type proto = {
  join : addr:int -> id:Id.t -> bootstrap:int -> unit;
  fail : int -> unit;
  sub : Kv.substrate;
}

(* One cell. [fi] is the (replication, alpha) pair index: every rng is
   seeded from (spec.seed, fi) only, so the chord and hieras cells of one
   pair see the identical topology, catalogue, origins and fault draw. *)
let run_cell spec ~fi ~r ~alpha ~algo =
  let space = Id.space ~bits:32 in
  let id_of i = Id.of_hash space (Printf.sprintf "peer-%d" i) in
  let lat = Topology.Transit_stub.generate ~hosts:spec.pool (Prng.Rng.create ~seed:spec.seed) in
  let eng =
    Engine.create ~latency:(fun a b -> Topology.Latency.host_latency lat a b) ~nodes:spec.pool
  in
  if spec.loss > 0.0 then
    Engine.set_loss eng ~rate:spec.loss ~rng:(Prng.Rng.create ~seed:(spec.seed + 13 + fi));
  let net_buf = Buffer.create (match spec.net_sample with Some _ -> 4096 | None -> 0) in
  (match spec.net_sample with
  | None -> ()
  | Some rate ->
      let ctx =
        Printf.sprintf "%s.r%d.a%s" (algo_name algo) r (Obs.Jsonu.float_repr alpha)
      in
      Engine.attach_netspan eng (Obs.Netspan.jsonl ~ctx ~sample:rate (Buffer.add_string net_buf)));
  let p =
    match algo with
    | Chord_ring ->
        let cfg =
          { (Chord.Protocol.default_config space) with succ_list_len = max 4 r }
        in
        let c = Chord.Protocol.create cfg eng in
        Chord.Protocol.spawn c ~addr:0 ~id:(id_of 0);
        {
          join = (fun ~addr ~id ~bootstrap -> Chord.Protocol.join c ~addr ~id ~bootstrap);
          fail = (fun a -> Chord.Protocol.fail_node c a);
          sub = Kv.chord_substrate c;
        }
    | Hieras_rings ->
        let lms =
          Binning.Landmark.choose_spread lat ~count:spec.landmarks
            (Prng.Rng.create ~seed:(spec.seed + 5))
        in
        let cfg =
          { (Hieras.Hprotocol.default_config space ~depth:spec.depth) with succ_list_len = max 4 r }
        in
        let h = Hieras.Hprotocol.create cfg eng ~lat ~landmarks:lms in
        Hieras.Hprotocol.spawn h ~addr:0 ~id:(id_of 0);
        {
          join = (fun ~addr ~id ~bootstrap -> Hieras.Hprotocol.join h ~addr ~id ~bootstrap);
          fail = (fun a -> Hieras.Hprotocol.fail_node h a);
          sub = Kv.hieras_substrate h;
        }
  in
  for i = 1 to spec.pool - 1 do
    Engine.schedule eng ~delay:(float_of_int i *. 400.0) (fun () ->
        p.join ~addr:i ~id:(id_of i) ~bootstrap:0)
  done;
  let kv = Kv.create { Kv.default_config with replication = r } p.sub in
  for i = 0 to spec.pool - 1 do
    Kv.track kv i
  done;
  let caches = Array.init spec.pool (fun _ ->
      Ncache.create
        {
          Ncache.default_config with
          capacity_entries = spec.cache_entries;
          capacity_bytes = spec.cache_bytes;
          ttl_ms = spec.ttl_ms;
        })
  in
  let wspec =
    { Webcache.default_spec with count = spec.requests; objects = spec.objects; alpha }
  in
  let cat = Webcache.catalogue wspec space in
  let settle = settle_ms spec in
  (* populate: every object put once, from a random live origin *)
  let acked = Array.make spec.objects false in
  let puts_acked = ref 0 in
  let put_rng = Prng.Rng.create ~seed:(spec.seed + 50021 + fi) in
  for i = 0 to spec.objects - 1 do
    Engine.schedule eng ~delay:(settle +. (float_of_int i *. put_every_ms)) (fun () ->
        match p.sub.Kv.live_members () with
        | [] -> ()
        | members ->
            let arr = Array.of_list members in
            let origin = arr.(Prng.Rng.int put_rng (Array.length arr)) in
            let o = cat.(i) in
            Kv.put kv ~origin ~key:o.Webcache.key ~value:o.Webcache.name
              ~bytes:o.Webcache.bytes (function
              | Some _ ->
                  acked.(i) <- true;
                  incr puts_acked
              | None -> ()))
  done;
  let t_fault = settle +. (float_of_int spec.objects *. put_every_ms) +. 4_000.0 in
  (* fault schedule: protocol-silent kills the maintenance loops and the
     repair scan must detect and absorb *)
  let killed = ref 0 in
  (match spec.fault with
  | No_fault -> ()
  | Crash ->
      let frng = Prng.Rng.create ~seed:(spec.seed + 90001 + fi) in
      Engine.schedule eng ~delay:t_fault (fun () ->
          let members = Array.of_list (p.sub.Kv.live_members ()) in
          let n = Array.length members in
          let k = int_of_float (spec.fault_frac *. float_of_int n) in
          let victims = Prng.Dist.sample_without_replacement frng k n in
          Array.iter
            (fun vi ->
              p.fail members.(vi);
              incr killed)
            victims)
  | Spaced ->
      Engine.schedule eng ~delay:t_fault (fun () ->
          let members_by_id =
            p.sub.Kv.live_members ()
            |> List.sort (fun a b -> Id.compare (p.sub.Kv.node_id a) (p.sub.Kv.node_id b))
            |> Array.of_list
          in
          List.iter
            (fun v ->
              p.fail v;
              incr killed)
            (spaced_victims ~members_by_id ~frac:spec.fault_frac ~r)));
  (* read phase, after the overlay and the repair scan have healed *)
  let t_read = t_fault +. heal_ms in
  let stream =
    Webcache.to_array wspec ~nodes:spec.pool (Prng.Rng.create ~seed:(spec.seed + 70001 + fi))
  in
  let issued = ref 0
  and skipped = ref 0
  and served = ref 0
  and hits = ref 0
  and absent = ref 0
  and unreachable = ref 0 in
  let lat_sum = Stats.Summary.create () in
  Array.iteri
    (fun i req ->
      Engine.schedule eng ~delay:(t_read +. (float_of_int i *. read_every_ms)) (fun () ->
          if not acked.(req.Webcache.obj) then incr skipped
          else begin
            (* a dead origin hands its request to the next live address —
               deterministic, so the stream replays identically *)
            let rec live_origin a tries =
              if tries = 0 then None
              else if p.sub.Kv.is_member a then Some a
              else live_origin ((a + 1) mod spec.pool) (tries - 1)
            in
            match live_origin req.Webcache.origin spec.pool with
            | None -> incr skipped
            | Some origin ->
                incr issued;
                let o = cat.(req.Webcache.obj) in
                let nowms = Engine.now eng in
                let cache = caches.(origin) in
                (match Ncache.find cache ~now:nowms o.Webcache.key with
                | Some _ ->
                    incr hits;
                    incr served
                | None ->
                    let t0 = nowms in
                    Kv.get kv ~origin ~key:o.Webcache.key (function
                      | Kv.Found g ->
                          incr served;
                          Stats.Summary.add lat_sum (Engine.now eng -. t0);
                          Ncache.insert cache ~now:(Engine.now eng) o.Webcache.key
                            ~value:g.Kv.g_value ~bytes:g.Kv.g_bytes
                      | Kv.Absent -> incr absent
                      | Kv.Unreachable -> incr unreachable))
          end))
    stream;
  let sim_ms = t_read +. (float_of_int spec.requests *. read_every_ms) +. cooldown_ms in
  Engine.run ~until:sim_ms eng;
  let hot = Array.fold_left (fun acc c -> acc + Ncache.hot_ever c) 0 caches in
  let evictions = Array.fold_left (fun acc c -> acc + Ncache.evictions c) 0 caches in
  let expirations = Array.fold_left (fun acc c -> acc + Ncache.expirations c) 0 caches in
  {
    algo = algo_name algo;
    replication = r;
    alpha;
    sim_ms;
    messages = Engine.sent eng;
    puts = spec.objects;
    puts_acked = !puts_acked;
    requests = !issued;
    skipped_unbacked = !skipped;
    served = !served;
    hits = !hits;
    absent = !absent;
    unreachable = !unreachable;
    latency_mean_ms = (if Stats.Summary.count lat_sum = 0 then 0.0 else Stats.Summary.mean lat_sum);
    latency_max_ms = (if Stats.Summary.count lat_sum = 0 then 0.0 else Stats.Summary.max_value lat_sum);
    replicate_msgs = Kv.replicate_msgs kv;
    read_repairs = Kv.read_repairs kv;
    handoffs = Kv.handoffs kv;
    promotions = Kv.promotions kv;
    pruned = Kv.pruned kv;
    items_live = Kv.items_live kv;
    evictions;
    expirations;
    hot_objects = hot;
    killed = !killed;
    final_members = List.length (p.sub.Kv.live_members ());
    net_trace = Buffer.contents net_buf;
  }

let cell_prefix cl =
  Printf.sprintf "cache.%s.r%d.a%s" cl.algo cl.replication (Obs.Jsonu.float_repr cl.alpha)

let rate ok total = if total = 0 then 0.0 else float_of_int ok /. float_of_int total

let export_registry reg r =
  let open Obs.Metrics in
  List.iter
    (fun cl ->
      let prefix = cell_prefix cl in
      let c name v = set_counter (counter reg (prefix ^ "." ^ name)) v in
      let g name v = set (gauge reg (prefix ^ "." ^ name)) v in
      c "messages" cl.messages;
      c "puts" cl.puts;
      c "puts_acked" cl.puts_acked;
      c "requests" cl.requests;
      c "skipped_unbacked" cl.skipped_unbacked;
      c "served" cl.served;
      c "hits" cl.hits;
      c "absent" cl.absent;
      c "unreachable" cl.unreachable;
      c "replicate_msgs" cl.replicate_msgs;
      c "read_repairs" cl.read_repairs;
      c "handoffs" cl.handoffs;
      c "promotions" cl.promotions;
      c "pruned" cl.pruned;
      c "items_live" cl.items_live;
      c "evictions" cl.evictions;
      c "expirations" cl.expirations;
      c "hot_objects" cl.hot_objects;
      c "killed" cl.killed;
      c "final_members" cl.final_members;
      g "availability" (rate cl.served cl.requests);
      g "hit_rate" (rate cl.hits cl.requests);
      g "latency_mean_ms" cl.latency_mean_ms;
      g "latency_max_ms" cl.latency_max_ms)
    r.cells

let run ?(pool = Pool.sequential) ?registry spec =
  (match validate spec with Ok () -> () | Error e -> invalid_arg ("Cache.run: " ^ e));
  let inputs =
    List.concat_map
      (fun r ->
        List.concat_map (fun a -> [ (r, a, Chord_ring); (r, a, Hieras_rings) ]) spec.alphas)
      spec.replication
    |> Array.of_list
  in
  let parts =
    Pool.map_chunks pool ~n:(Array.length inputs) ~chunk_size:1 (fun ~lo ~hi ->
        let out = ref [] in
        for i = lo to hi - 1 do
          let r, alpha, algo = inputs.(i) in
          out := run_cell spec ~fi:(i / 2) ~r ~alpha ~algo :: !out
        done;
        List.rev !out)
  in
  let r = { spec; cells = List.concat parts } in
  (match registry with Some reg -> export_registry reg r | None -> ());
  r

(* ---- rendering --------------------------------------------------------- *)

let cell_json c =
  let n = Obs.Jsonu.number in
  Printf.sprintf
    {|{"algo":"%s","replication":%d,"alpha":%s,"sim_ms":%s,"messages":%d,"puts":%d,"puts_acked":%d,"requests":%d,"skipped_unbacked":%d,"served":%d,"hits":%d,"absent":%d,"unreachable":%d,"latency_mean_ms":%s,"latency_max_ms":%s,"replicate_msgs":%d,"read_repairs":%d,"handoffs":%d,"promotions":%d,"pruned":%d,"items_live":%d,"evictions":%d,"expirations":%d,"hot_objects":%d,"killed":%d,"final_members":%d}|}
    (Obs.Jsonu.escape c.algo) c.replication (n c.alpha) (n c.sim_ms) c.messages c.puts
    c.puts_acked c.requests c.skipped_unbacked c.served c.hits c.absent c.unreachable
    (n c.latency_mean_ms) (n c.latency_max_ms) c.replicate_msgs c.read_repairs c.handoffs
    c.promotions c.pruned c.items_live c.evictions c.expirations c.hot_objects c.killed
    c.final_members

let results_json r =
  let s = r.spec in
  let n = Obs.Jsonu.number in
  Printf.sprintf
    {|{"schema":"hieras-cache","pool":%d,"objects":%d,"request_stream":%d,"replication":[%s],"alphas":[%s],"fault":"%s","fault_frac":%s,"cache_entries":%d,"cache_bytes":%d,"ttl_ms":%s,"loss":%s,"depth":%d,"landmarks":%d,"seed":%d,"cells":[%s]}|}
    s.pool s.objects s.requests
    (String.concat "," (List.map string_of_int s.replication))
    (String.concat "," (List.map n s.alphas))
    (fault_name s.fault) (n s.fault_frac) s.cache_entries s.cache_bytes (n s.ttl_ms) (n s.loss)
    s.depth s.landmarks s.seed
    (String.concat "," (List.map cell_json r.cells))

(* Cells are already in fixed (replication-major, then alpha, then algo)
   order, so the merged trace is byte-identical for any --jobs; cell_json
   omits net_trace so results bytes are unchanged whether tracing ran. *)
let net_trace r = String.concat "" (List.map (fun c -> c.net_trace) r.cells)

let section r =
  let tbl =
    Stats.Text_table.create
      [ "algo"; "r"; "alpha"; "acked"; "avail"; "hit rate"; "lat ms"; "repairs"; "hot"; "alive" ]
  in
  List.iter
    (fun c ->
      Stats.Text_table.add_row tbl
        [
          c.algo;
          string_of_int c.replication;
          Printf.sprintf "%g" c.alpha;
          Printf.sprintf "%d/%d" c.puts_acked c.puts;
          Printf.sprintf "%.1f%%" (100.0 *. rate c.served c.requests);
          Printf.sprintf "%.1f%%" (100.0 *. rate c.hits c.requests);
          Printf.sprintf "%.1f" c.latency_mean_ms;
          string_of_int c.read_repairs;
          string_of_int c.hot_objects;
          string_of_int c.final_members;
        ])
    r.cells;
  {
    Report.id = "cache";
    title =
      Printf.sprintf
        "Web cache: availability and hit rate vs replication and skew (%d-node pool, %d objects, %s faults)"
        r.spec.pool r.spec.objects (fault_name r.spec.fault);
    table = tbl;
    notes =
      [
        "avail = requests served (cache hit or routed get found) over requests issued \
         against acknowledged objects; absent + unreachable are the complement";
        "lat ms = mean overlay fetch latency of cache misses that found the object \
         (cache hits are local and free)";
        "the spaced schedule kills fault-frac of the pool spread in identifier order, \
         never two inside one replica window — acknowledged objects must all survive";
      ];
  }
