module Summary = Stats.Summary
module Table = Stats.Text_table

let space = Hashid.Id.sha1_space
let f2 x = Printf.sprintf "%.2f" x
let ms x = Printf.sprintf "%.1f" x

(* ------------------------------------------------------------------ *)
(* Routing algorithms side by side                                     *)
(* ------------------------------------------------------------------ *)

let algorithms ?pool cfg =
  let env = Runner.build_env ?pool cfg in
  let lat = Runner.latency_oracle env in
  let chord = Runner.chord_network env in
  let n = Chord.Network.size chord in
  let hosts = Array.init n (fun i -> i) in
  let rng = Prng.Rng.create ~seed:(cfg.Config.seed + 7919) in
  let landmarks = Binning.Landmark.choose_spread lat ~count:cfg.Config.landmarks rng in
  let h2 = Hieras.Hnetwork.build ~chord ~lat ~landmarks ~depth:2 () in
  let h3 = Hieras.Hnetwork.build ~chord ~lat ~landmarks ~depth:3 () in
  let pastry = Pastry.Network.build ~space ~hosts ~lat ~rng () in
  let tapestry = Tapestry.Network.build ~space ~hosts ~lat ~rng () in
  let flat_can = Can.Network.build ~space ~hosts () in
  let lcan = Can.Layered.build ~global:flat_can ~lat ~landmarks ~depth:2 () in
  let mk () = (Summary.create (), Summary.create ()) in
  let s_chord = mk () and s_pastry = mk () and s_tapestry = mk () in
  let s_h2 = mk () and s_h3 = mk () in
  let s_can = mk () and s_lcan = mk () in
  let add (sh, sl) hops latency =
    Summary.add sh (float_of_int hops);
    Summary.add sl latency
  in
  let rng2 = Prng.Rng.create ~seed:(cfg.Config.seed + 104729) in
  let requests = max 100 (cfg.Config.requests / 4) in
  for _ = 1 to requests do
    let key = Hashid.Id.random space rng2 in
    let origin = Prng.Rng.int rng2 n in
    let rc = Chord.Lookup.route chord lat ~origin ~key in
    add s_chord rc.Chord.Lookup.hop_count rc.Chord.Lookup.latency;
    let rp = Pastry.Route.route pastry ~origin ~key in
    add s_pastry rp.Pastry.Route.hop_count rp.Pastry.Route.latency;
    let rt = Tapestry.Network.route tapestry ~origin ~key in
    add s_tapestry rt.Tapestry.Network.hop_count rt.Tapestry.Network.latency;
    let r2 = Hieras.Hlookup.route h2 ~origin ~key in
    add s_h2 r2.Hieras.Hlookup.hop_count r2.Hieras.Hlookup.latency;
    let r3 = Hieras.Hlookup.route h3 ~origin ~key in
    add s_h3 r3.Hieras.Hlookup.hop_count r3.Hieras.Hlookup.latency;
    let rcan = Can.Route.route_key flat_can lat ~origin ~key in
    add s_can rcan.Can.Route.hop_count rcan.Can.Route.latency;
    let rl = Can.Layered.route lcan ~origin ~key in
    add s_lcan rl.Can.Layered.hop_count rl.Can.Layered.latency
  done;
  let table = Table.create [ "Algorithm"; "Mean hops"; "Mean ms"; "vs Chord" ] in
  let chord_lat = Summary.mean (snd s_chord) in
  let row name (sh, sl) =
    Table.add_row table
      [
        name;
        f2 (Summary.mean sh);
        ms (Summary.mean sl);
        Expected.pct (Summary.mean sl /. chord_lat);
      ]
  in
  row "Chord" s_chord;
  row "HIERAS (2-layer, Chord)" s_h2;
  row "HIERAS (3-layer, Chord)" s_h3;
  row "Pastry (PNS)" s_pastry;
  row "Tapestry (PNS, surrogate roots)" s_tapestry;
  row "CAN (flat, d=2)" s_can;
  row "HIERAS over CAN (2-layer)" s_lcan;
  {
    Report.id = "ext-algorithms";
    title = "Routing algorithms compared (TS model)";
    table;
    notes =
      [
        "Pastry and Tapestry here use oracle-quality proximity neighbor selection \
         (nearest of 16 sampled candidates per hop) — an upper bound on what their \
         heuristics achieve; the paper's future work names both comparisons.";
        "CAN ratios are computed against Chord's latency; flat CAN takes O(n^(1/2)) hops, \
         so the hierarchy helps it even more than it helps Chord (paper §3.2's sketch).";
      ];
  }

(* ------------------------------------------------------------------ *)
(* Landmark strategy / measurement-noise ablation                      *)
(* ------------------------------------------------------------------ *)

let landmark_ablation ?pool cfg =
  let env = Runner.build_env ?pool cfg in
  let lat = Runner.latency_oracle env in
  let chord = Runner.chord_network env in
  let n = Chord.Network.size chord in
  let table = Table.create [ "Landmark selection"; "Measurement"; "Rings"; "HIERAS/Chord" ] in
  let run name landmarks measure =
    let hnet = Hieras.Hnetwork.build ~chord ~lat ~landmarks ~depth:2 ?measure () in
    let sl = Summary.create () and cl = Summary.create () in
    let rng2 = Prng.Rng.create ~seed:(cfg.Config.seed + 104729) in
    let requests = max 100 (cfg.Config.requests / 5) in
    for _ = 1 to requests do
      let key = Hashid.Id.random space rng2 in
      let origin = Prng.Rng.int rng2 n in
      let rc = Chord.Lookup.route chord lat ~origin ~key in
      let rh = Hieras.Hlookup.route hnet ~origin ~key in
      Summary.add cl rc.Chord.Lookup.latency;
      Summary.add sl rh.Hieras.Hlookup.latency
    done;
    Table.add_row table
      [
        fst name;
        snd name;
        string_of_int (Hieras.Hnetwork.ring_count hnet ~layer:2);
        Expected.pct (Summary.mean sl /. Summary.mean cl);
      ]
  in
  let rng = Prng.Rng.create ~seed:(cfg.Config.seed + 7919) in
  let spread = Binning.Landmark.choose_spread lat ~count:cfg.Config.landmarks rng in
  let random = Binning.Landmark.choose_random lat ~count:cfg.Config.landmarks rng in
  run ("spread (farthest-point)", "exact") spread None;
  run ("uniform random", "exact") random None;
  let jitter_rng = Prng.Rng.create ~seed:(cfg.Config.seed + 31) in
  run
    ("spread (farthest-point)", "ping with 20% jitter")
    spread
    (Some
       (fun ~host ->
         Binning.Landmark.measure_jittered lat spread ~host ~rng:jitter_rng ~spread:0.2));
  {
    Report.id = "ext-landmarks";
    title = "Ablation: landmark placement and measurement noise";
    table;
    notes =
      [
        "The paper assumes 'well-known machines spread across the Internet' and notes ping \
         inaccuracy is tolerable (§2.2); this quantifies both claims on our substrate.";
      ];
  }

(* ------------------------------------------------------------------ *)
(* Cost-model ablation across hierarchy depths                         *)
(* ------------------------------------------------------------------ *)

let cost_ablation ?pool cfg =
  let env = Runner.build_env ?pool cfg in
  let lat = Runner.latency_oracle env in
  let chord = Runner.chord_network env in
  let rng = Prng.Rng.create ~seed:(cfg.Config.seed + 7919) in
  let landmarks = Binning.Landmark.choose_spread lat ~count:cfg.Config.landmarks rng in
  let table =
    Table.create
      [
        "Depth";
        "State B/node";
        "vs Chord";
        "Ring tables";
        "Stabilize link ms by layer";
      ]
  in
  List.iter
    (fun depth ->
      let hnet = Hieras.Hnetwork.build ~chord ~lat ~landmarks ~depth () in
      let totals = Hieras.Cost.totals hnet ~succ_list_len:cfg.Config.succ_list_len in
      Table.add_row table
        [
          string_of_int depth;
          Printf.sprintf "%.0f" totals.Hieras.Cost.mean_state_bytes;
          Printf.sprintf "x%.2f" totals.Hieras.Cost.state_overhead_ratio;
          string_of_int totals.Hieras.Cost.ring_tables;
          String.concat " / "
            (Array.to_list
               (Array.map (Printf.sprintf "%.0f")
                  totals.Hieras.Cost.mean_stabilize_link_latency_per_layer));
        ])
    [ 2; 3; 4 ];
  {
    Report.id = "ext-cost";
    title = "Ablation: HIERAS state and maintenance overhead by hierarchy depth";
    table;
    notes =
      [
        "The paper's §3.4 claims multi-layer tables cost 'hundreds or thousands of bytes' \
         and that lower-layer maintenance is cheap because those peers are close; both \
         claims are quantified here (stabilize link = mean node-to-ring-successor delay).";
      ];
  }

let all ?pool cfg =
  [ algorithms ?pool cfg; landmark_ablation ?pool cfg; cost_ablation ?pool cfg ]
