(* Cross-algorithm tournament: every substrate (Chord, Pastry, CAN,
   Tapestry), flat and HIERAS-layered through [Hieras.Make], replays one
   identical request stream over one identical topology — baseline plus the
   PR 5 fault schedules — into a single deterministic comparison matrix.

   Determinism under --jobs follows the Resilience discipline: requests are
   pre-generated sequentially from the config seed, fault schedules are
   drawn once on the calling domain (shared by every contestant), and the
   lookup replay is chunked over a layout fixed by request count alone with
   per-chunk accumulators merged in chunk order. *)

module Summary = Stats.Summary
module Pool = Parallel.Pool
module Faults = Workload.Faults

module LChord = Hieras.Make (Chord.Routable)
module LPastry = Hieras.Make (Pastry.Routable)
module LCan = Hieras.Make (Can.Routable)
module LTapestry = Hieras.Make (Tapestry.Routable)

type contestant = C : (module Routing.ROUTABLE with type t = 'a) * 'a -> contestant

let space = Hashid.Id.sha1_space
let chunk_size = 4096

(* the Resilience timeline: faults land, then lookups sample the network *)
let fault_at = 10.0
let sample_at = 100.0

type fault_point = {
  succeeded : int;
  retries : int;
  timeouts : int;
  fallbacks : int;
  layer_escapes : int;
  penalty_ms : float;
  ok_latency_ms : float;  (* mean latency of successful lookups *)
}

type entry = {
  algo : string;
  hops_mean : float;
  hops_max : float;
  latency_mean : float;
  latency_max : float;
  stretch : float;  (* mean route latency / direct host latency *)
  owner_ok : int;  (* routes ending at the overlay's owner — must = lookups *)
  crash : fault_point;
  outage : fault_point;
}

type results = {
  config : Config.t;
  lookups : int;
  fault_fraction : float;
  crash_failed : int;
  outage_failed : int;
  entries : entry list;
}

let build_contestants env cfg =
  let lat = Runner.latency_oracle env in
  let chord = Runner.chord_network env in
  let n = Chord.Network.size chord in
  let hosts = Array.init n (Chord.Network.host chord) in
  let lrng = Prng.Rng.create ~seed:(cfg.Config.seed + 7919) in
  let landmarks = Binning.Landmark.choose_spread lat ~count:cfg.Config.landmarks lrng in
  let depth = cfg.Config.depth in
  let rc = Chord.Routable.make ~net:chord ~lat in
  let pastry =
    Pastry.Routable.make
      (Pastry.Network.build ~space ~hosts ~lat
         ~rng:(Prng.Rng.create ~seed:(cfg.Config.seed + 7577))
         ())
  in
  let can = Can.Routable.make ~net:(Can.Network.build ~space ~hosts ()) ~lat in
  let tapestry =
    Tapestry.Routable.make
      (Tapestry.Network.build ~space ~hosts ~lat
         ~rng:(Prng.Rng.create ~seed:(cfg.Config.seed + 7591))
         ())
  in
  [
    C ((module Chord.Routable), rc);
    C ((module LChord), LChord.build ~base:rc ~lat ~landmarks ~depth ());
    C ((module Pastry.Routable), pastry);
    C ((module LPastry), LPastry.build ~base:pastry ~lat ~landmarks ~depth ());
    C ((module Can.Routable), can);
    C ((module LCan), LCan.build ~base:can ~lat ~landmarks ~depth ());
    C ((module Tapestry.Routable), tapestry);
    C ((module LTapestry), LTapestry.build ~base:tapestry ~lat ~landmarks ~depth ());
  ]

(* whole stub domains covering ~fraction of the population, as in
   Resilience.outage_domains *)
let outage_domains lat hosts fraction =
  let module Iset = Set.Make (Int) in
  let groups =
    Array.fold_left
      (fun s h -> Iset.add (Topology.Latency.router_of_host lat h) s)
      Iset.empty hosts
    |> Iset.cardinal
  in
  max 1 (int_of_float ((fraction *. float_of_int groups) +. 0.5))

(* one compiled-and-applied fault schedule, sampled at [sample_at]: the
   liveness every contestant shares (indexed by host slot = chord node) *)
let sample_liveness cfg lat hosts specs ~idx =
  let n = Array.length hosts in
  let srng = Prng.Rng.create ~seed:(cfg.Config.seed + 40009 + idx) in
  let group_of slot = Topology.Latency.router_of_host lat hosts.(slot) in
  let events = Faults.compile ~group_of ~nodes:n specs srng in
  let eng = Simnet.Engine.create ~latency:(fun _ _ -> 0.0) ~nodes:n in
  Faults.apply eng ~rng:(Prng.Rng.split srng) events;
  Simnet.Engine.run ~until:sample_at eng;
  (Array.init n (Simnet.Engine.is_alive eng), n - Simnet.Engine.live_count eng)

let export_registry reg r =
  let open Obs.Metrics in
  let c name v = set_counter (counter reg name) v in
  let g name v = set (gauge reg name) v in
  c "tournament.lookups" r.lookups;
  c "tournament.crash.failed" r.crash_failed;
  c "tournament.outage.failed" r.outage_failed;
  List.iter
    (fun e ->
      let p suffix = Printf.sprintf "tournament.%s.%s" e.algo suffix in
      g (p "hops_mean") e.hops_mean;
      g (p "latency_mean") e.latency_mean;
      g (p "stretch") e.stretch;
      c (p "owner_ok") e.owner_ok;
      c (p "crash.succeeded") e.crash.succeeded;
      c (p "crash.layer_escapes") e.crash.layer_escapes;
      g (p "crash.penalty_ms") e.crash.penalty_ms;
      c (p "outage.succeeded") e.outage.succeeded;
      c (p "outage.layer_escapes") e.outage.layer_escapes;
      g (p "outage.penalty_ms") e.outage.penalty_ms)
    r.entries

let run ?(pool = Pool.sequential) ?registry ?(timer = Obs.Timer.disabled)
    ?(fault_fraction = 0.3) cfg =
  (match Config.validate cfg with
  | Ok () -> ()
  | Error e -> invalid_arg ("Tournament.run: " ^ e));
  if fault_fraction < 0.0 || fault_fraction > 0.95 then
    invalid_arg "Tournament.run: fault fraction must be in [0, 0.95]";
  let env = Runner.build_env ~pool ~timer cfg in
  let lat = Runner.latency_oracle env in
  let chord = Runner.chord_network env in
  let n = Chord.Network.size chord in
  let hosts = Array.init n (Chord.Network.host chord) in
  let contestants =
    Obs.Timer.span timer "build-contestants" (fun () -> build_contestants env cfg)
  in
  let rng = Prng.Rng.create ~seed:(cfg.Config.seed + 104729) in
  let spec = Workload.Requests.paper_default ~count:cfg.Config.requests in
  let requests =
    Obs.Timer.span timer "gen-requests" (fun () ->
        Workload.Requests.to_array spec ~nodes:n ~space rng)
  in
  let issued = Array.length requests in
  (* one liveness sample per schedule, shared by all contestants; host slots
     are chord node indices, translated per contestant through [X.host] *)
  let slot_of_host = Hashtbl.create n in
  Array.iteri (fun i h -> Hashtbl.replace slot_of_host h i) hosts;
  let crash_alive, crash_failed =
    sample_liveness cfg lat hosts [ Faults.Crash { at = fault_at; frac = fault_fraction } ] ~idx:0
  in
  let outage_alive, outage_failed =
    sample_liveness cfg lat hosts
      [
        Faults.Domain_outage
          { at = fault_at; domains = outage_domains lat hosts fault_fraction; down_ms = None };
      ]
      ~idx:1
  in
  let entry_of (C ((module X), t)) =
    let baseline =
      Obs.Timer.span timer (Printf.sprintf "baseline-%s" X.name) (fun () ->
          let parts =
            Pool.map_chunks pool ~n:issued ~chunk_size (fun ~lo ~hi ->
                let hops = Summary.create () and latm = Summary.create () in
                let stretch_sum = ref 0.0 and stretch_n = ref 0 and owner_ok = ref 0 in
                for i = lo to hi - 1 do
                  let { Workload.Requests.origin; key } = requests.(i) in
                  let r = X.route t ~origin ~key in
                  Summary.add hops (float_of_int r.Routing.hop_count);
                  Summary.add latm r.Routing.latency;
                  if r.Routing.destination = X.owner_of_key t ~key then incr owner_ok;
                  let direct =
                    Topology.Latency.host_latency lat (X.host t origin)
                      (X.host t r.Routing.destination)
                  in
                  if direct > 0.0 then begin
                    stretch_sum := !stretch_sum +. (r.Routing.latency /. direct);
                    incr stretch_n
                  end
                done;
                (hops, latm, !stretch_sum, !stretch_n, !owner_ok))
          in
          List.fold_left
            (fun (h, l, ss, sn, ok) (h', l', ss', sn', ok') ->
              (Summary.merge h h', Summary.merge l l', ss +. ss', sn + sn', ok + ok'))
            (Summary.create (), Summary.create (), 0.0, 0, 0)
            parts)
    in
    let fault_point label (alive, _failed) =
      Obs.Timer.span timer (Printf.sprintf "%s-%s" label X.name) (fun () ->
          let is_alive node = alive.(Hashtbl.find slot_of_host (X.host t node)) in
          (* a dead origin cannot issue a lookup: deterministically remap to
             the first live node by index so every contestant replays the
             same stream *)
          let live_origin o =
            let rec go o steps =
              if steps > n then failwith "Tournament.run: no live node to originate from"
              else if is_alive o then o
              else go ((o + 1) mod n) (steps + 1)
            in
            go o 0
          in
          let parts =
            Pool.map_chunks pool ~n:issued ~chunk_size (fun ~lo ~hi ->
                let ok = ref 0
                and retries = ref 0
                and timeouts = ref 0
                and fallbacks = ref 0
                and escapes = ref 0
                and penalty = ref 0.0
                and ok_lat = Summary.create () in
                for i = lo to hi - 1 do
                  let { Workload.Requests.origin; key } = requests.(i) in
                  let origin = live_origin origin in
                  let a = X.route_resilient t ~is_alive ~origin ~key in
                  retries := !retries + a.Routing.retries;
                  timeouts := !timeouts + a.Routing.timeouts;
                  fallbacks := !fallbacks + a.Routing.fallbacks;
                  escapes := !escapes + a.Routing.layer_escapes;
                  penalty := !penalty +. a.Routing.penalty_ms;
                  match (a.Routing.outcome, X.live_owner t ~is_alive ~key) with
                  | Some r, Some o when r.Routing.destination = o ->
                      incr ok;
                      Summary.add ok_lat r.Routing.latency
                  | _ -> ()
                done;
                (!ok, !retries, !timeouts, !fallbacks, !escapes, !penalty, ok_lat))
          in
          let ok, retries, timeouts, fallbacks, escapes, penalty, ok_lat =
            List.fold_left
              (fun (a, b, c, d, e, f, s) (a', b', c', d', e', f', s') ->
                (a + a', b + b', c + c', d + d', e + e', f +. f', Summary.merge s s'))
              (0, 0, 0, 0, 0, 0.0, Summary.create ())
              parts
          in
          {
            succeeded = ok;
            retries;
            timeouts;
            fallbacks;
            layer_escapes = escapes;
            penalty_ms = penalty;
            ok_latency_ms = (if Summary.count ok_lat = 0 then 0.0 else Summary.mean ok_lat);
          })
    in
    let hops, latm, stretch_sum, stretch_n, owner_ok = baseline in
    {
      algo = X.name;
      hops_mean = Summary.mean hops;
      hops_max = (if Summary.count hops = 0 then 0.0 else Summary.max_value hops);
      latency_mean = Summary.mean latm;
      latency_max = (if Summary.count latm = 0 then 0.0 else Summary.max_value latm);
      stretch = (if stretch_n = 0 then 0.0 else stretch_sum /. float_of_int stretch_n);
      owner_ok;
      crash = fault_point "crash" (crash_alive, crash_failed);
      outage = fault_point "outage" (outage_alive, outage_failed);
    }
  in
  let r =
    {
      config = cfg;
      lookups = issued;
      fault_fraction;
      crash_failed;
      outage_failed;
      entries = List.map entry_of contestants;
    }
  in
  Option.iter (fun reg -> export_registry reg r) registry;
  r

(* Deterministic single-line JSON; fixed member and contestant order.
   Golden: test/golden/tournament_ts64.json. *)
let results_json r =
  let n = Obs.Jsonu.number in
  let fault_json f =
    Printf.sprintf
      {|{"succeeded":%d,"retries":%d,"timeouts":%d,"fallbacks":%d,"layer_escapes":%d,"penalty_ms":%s,"ok_latency_ms":%s}|}
      f.succeeded f.retries f.timeouts f.fallbacks f.layer_escapes (n f.penalty_ms)
      (n f.ok_latency_ms)
  in
  let entry_json e =
    Printf.sprintf
      {|{"algo":"%s","hops_mean":%s,"hops_max":%s,"latency_mean":%s,"latency_max":%s,"stretch":%s,"owner_ok":%d,"crash":%s,"outage":%s}|}
      (Obs.Jsonu.escape e.algo) (n e.hops_mean) (n e.hops_max) (n e.latency_mean)
      (n e.latency_max) (n e.stretch) e.owner_ok (fault_json e.crash) (fault_json e.outage)
  in
  let cfg = r.config in
  Printf.sprintf
    {|{"schema":"hieras-tournament","nodes":%d,"requests":%d,"landmarks":%d,"depth":%d,"seed":%d,"fault_fraction":%s,"crash_failed":%d,"outage_failed":%d,"contestants":[%s]}|}
    cfg.Config.nodes r.lookups cfg.Config.landmarks cfg.Config.depth cfg.Config.seed
    (n r.fault_fraction) r.crash_failed r.outage_failed
    (String.concat "," (List.map entry_json r.entries))

let pct ok total = if total = 0 then 0.0 else 100.0 *. float_of_int ok /. float_of_int total

let section r =
  let tbl =
    Stats.Text_table.create
      [ "algo"; "hops"; "latency ms"; "stretch"; "crash ok"; "outage ok"; "escapes" ]
  in
  List.iter
    (fun e ->
      Stats.Text_table.add_row tbl
        [
          e.algo;
          Printf.sprintf "%.2f" e.hops_mean;
          Printf.sprintf "%.1f" e.latency_mean;
          Printf.sprintf "%.2f" e.stretch;
          Printf.sprintf "%.1f%%" (pct e.crash.succeeded r.lookups);
          Printf.sprintf "%.1f%%" (pct e.outage.succeeded r.lookups);
          string_of_int (e.crash.layer_escapes + e.outage.layer_escapes);
        ])
    r.entries;
  {
    Report.id = "tournament";
    title =
      Printf.sprintf
        "Cross-algorithm tournament (%d nodes, %d lookups, %.0f%% fault fraction)"
        r.config.Config.nodes r.lookups (100.0 *. r.fault_fraction);
    table = tbl;
    notes =
      [
        "every contestant replays the identical request stream over the identical \
         topology; layered rows are the flat substrate under Hieras.Make";
        Printf.sprintf
          "crash kills %d nodes uniformly, outage takes whole stub domains (%d nodes); \
           success = reaching the overlay's live owner"
          r.crash_failed r.outage_failed;
        "stretch = mean route latency over the direct host-to-host latency \
         (identical-host pairs excluded)";
      ];
  }
