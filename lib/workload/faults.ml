(* Deterministic fault schedules. A spec list compiles — through a caller
   supplied Rng — to a flat, time-sorted list of kill/revive/set-loss
   events; the draw of victims depends only on the rng state and the specs,
   never on execution order, so schedules are reproducible and identical
   under any --jobs. *)

type spec =
  | Crash of { at : float; frac : float }
  | Crash_restart of { at : float; frac : float; down_ms : float }
  | Domain_outage of { at : float; domains : int; down_ms : float option }
  | Loss_window of { from_ms : float; until_ms : float; rate : float }

type action = Kill of int | Revive of int | Set_loss of float
type event = { at : float; action : action }

let start_of = function
  | Crash { at; _ } | Crash_restart { at; _ } | Domain_outage { at; _ } -> at
  | Loss_window { from_ms; _ } -> from_ms

let validate specs =
  let check = function
    | Crash { at; frac } ->
        if at < 0.0 then Error "crash time must be >= 0"
        else if frac < 0.0 || frac > 1.0 then Error "crash fraction must be in [0, 1]"
        else Ok ()
    | Crash_restart { at; frac; down_ms } ->
        if at < 0.0 then Error "crash-restart time must be >= 0"
        else if frac < 0.0 || frac > 1.0 then Error "crash-restart fraction must be in [0, 1]"
        else if down_ms <= 0.0 then Error "crash-restart downtime must be > 0"
        else Ok ()
    | Domain_outage { at; domains; down_ms } ->
        if at < 0.0 then Error "outage time must be >= 0"
        else if domains < 1 then Error "outage must cover at least one domain"
        else if match down_ms with Some d -> d <= 0.0 | None -> false then
          Error "outage downtime must be > 0"
        else Ok ()
    | Loss_window { from_ms; until_ms; rate } ->
        if from_ms < 0.0 then Error "loss window start must be >= 0"
        else if until_ms <= from_ms then Error "loss window must end after it starts"
        else if rate < 0.0 || rate >= 1.0 then Error "loss rate must be in [0, 1)"
        else Ok ()
  in
  List.fold_left (fun acc s -> match acc with Error _ -> acc | Ok () -> check s) (Ok ()) specs

module Iset = Set.Make (Int)

let compile ?(group_of = fun n -> n) ~nodes specs rng =
  (match validate specs with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Faults.compile: " ^ msg));
  if nodes < 1 then invalid_arg "Faults.compile: nodes must be >= 1";
  (* dead_until.(n): None = planned alive; Some t = planned dead until t
     (infinity for a permanent crash). Victims of later specs are only ever
     drawn from the nodes planned alive at that spec's start time. *)
  let dead_until = Array.make nodes None in
  let planned_alive at =
    let l = ref [] in
    for n = nodes - 1 downto 0 do
      match dead_until.(n) with
      | None -> l := n :: !l
      | Some t -> if t <= at then l := n :: !l
    done;
    Array.of_list !l
  in
  let events = ref [] in
  let emit at action = events := { at; action } :: !events in
  let kill_one at v down =
    emit at (Kill v);
    match down with
    | None -> dead_until.(v) <- Some Float.infinity
    | Some d ->
        emit (at +. d) (Revive v);
        dead_until.(v) <- Some (at +. d)
  in
  let draw_victims at frac =
    let alive = planned_alive at in
    let k = min (int_of_float ((frac *. float_of_int nodes) +. 0.5)) (Array.length alive) in
    let idx = Prng.Dist.sample_without_replacement rng k (Array.length alive) in
    Array.map (fun i -> alive.(i)) idx
  in
  let ordered = List.stable_sort (fun a b -> Float.compare (start_of a) (start_of b)) specs in
  List.iter
    (fun spec ->
      match spec with
      | Crash { at; frac } -> Array.iter (fun v -> kill_one at v None) (draw_victims at frac)
      | Crash_restart { at; frac; down_ms } ->
          Array.iter (fun v -> kill_one at v (Some down_ms)) (draw_victims at frac)
      | Domain_outage { at; domains; down_ms } ->
          let alive = planned_alive at in
          (* candidate domains in sorted order so the draw is a pure
             function of the rng state, not of iteration order *)
          let groups =
            Array.fold_left (fun s v -> Iset.add (group_of v) s) Iset.empty alive
            |> Iset.elements |> Array.of_list
          in
          let k = min domains (Array.length groups) in
          let chosen =
            Prng.Dist.sample_without_replacement rng k (Array.length groups)
            |> Array.fold_left (fun s i -> Iset.add groups.(i) s) Iset.empty
          in
          Array.iter (fun v -> if Iset.mem (group_of v) chosen then kill_one at v down_ms) alive
      | Loss_window { from_ms; until_ms; rate } ->
          emit from_ms (Set_loss rate);
          emit until_ms (Set_loss 0.0))
    ordered;
  List.stable_sort (fun a b -> Float.compare a.at b.at) (List.rev !events)

let apply eng ~rng events =
  List.iter
    (fun { at; action } ->
      let delay = Float.max 0.0 (at -. Simnet.Engine.now eng) in
      match action with
      | Kill n -> Simnet.Engine.schedule eng ~delay (fun () -> Simnet.Engine.kill eng n)
      | Revive n -> Simnet.Engine.schedule eng ~delay (fun () -> Simnet.Engine.revive eng n)
      | Set_loss rate ->
          Simnet.Engine.schedule eng ~delay (fun () -> Simnet.Engine.set_loss eng ~rate ~rng))
    events

let population ~nodes ~at events =
  let alive = Array.make nodes true in
  List.iter
    (fun ev ->
      if ev.at <= at then
        match ev.action with
        | Kill n -> alive.(n) <- false
        | Revive n -> alive.(n) <- true
        | Set_loss _ -> ())
    events;
  alive

let loss_rate ~at events =
  List.fold_left
    (fun rate ev ->
      match ev.action with Set_loss r when ev.at <= at -> r | _ -> rate)
    0.0 events
