type t = Uniform | Zipf of { catalogue : int; alpha : float }

let file_key space name = Hashid.Id.of_hash space ("file:" ^ name)

let generator t space rng =
  match t with
  | Uniform -> fun () -> Hashid.Id.random space rng
  | Zipf { catalogue; alpha } ->
      if catalogue <= 0 then invalid_arg "Keys.generator: empty catalogue";
      let table = Prng.Dist.make_zipf_table ~n:catalogue ~alpha in
      (* each key is a pure function of its index: hash catalogue entries on
         first draw instead of materialising all of them up front, so a
         streaming consumer that only touches the head of the Zipf
         distribution never pays for the tail *)
      let keys = Array.make catalogue None in
      fun () ->
        let i = Prng.Dist.zipf_draw rng table in
        match keys.(i) with
        | Some k -> k
        | None ->
            let k = file_key space (Printf.sprintf "doc-%d" i) in
            keys.(i) <- Some k;
            k
