module Id = Hashid.Id

type obj = { name : string; key : Id.t; bytes : int }
type request = { origin : int; obj : int }

type spec = {
  count : int;
  objects : int;
  alpha : float;
  min_bytes : int;
  max_bytes : int;
}

let default_spec = { count = 1_000; objects = 128; alpha = 0.8; min_bytes = 512; max_bytes = 65_536 }

let validate s =
  if s.count < 0 then Error "request count must be >= 0"
  else if s.objects < 1 then Error "catalogue must hold at least one object"
  else if s.alpha < 0.0 then Error "zipf alpha must be >= 0"
  else if s.min_bytes < 1 then Error "minimum object size must be >= 1"
  else if s.max_bytes < s.min_bytes then Error "maximum object size must be >= the minimum"
  else Ok ()

(* The catalogue is a pure function of the spec's shape (never of the
   request stream's rng): object i is the file "obj-<i>", stored under the
   paper's SHA-1 file key, with a Pareto-ish size drawn from a fixed-seed
   rng so two streams over one catalogue agree on every byte count. *)
let catalogue spec space =
  let rng = Prng.Rng.create ~seed:((spec.objects * 2654435761) lxor 0x5ca1ab1e) in
  Array.init spec.objects (fun i ->
      let name = Printf.sprintf "obj-%d" i in
      let span = spec.max_bytes - spec.min_bytes in
      let bytes =
        if span = 0 then spec.min_bytes
        else
          (* heavy-tailed sizes clipped into [min, max]: most objects are
             small, a few approach the cap — the web's size distribution *)
          let raw = Prng.Dist.pareto rng ~shape:1.2 ~scale:(float_of_int spec.min_bytes) in
          min spec.max_bytes (max spec.min_bytes (int_of_float raw))
      in
      { name; key = Keys.file_key space name; bytes })

let iter spec ~nodes rng f =
  if nodes < 1 then invalid_arg "Webcache.iter: nodes must be >= 1";
  (match validate spec with Ok () -> () | Error msg -> invalid_arg ("Webcache.iter: " ^ msg));
  let table = Prng.Dist.make_zipf_table ~n:spec.objects ~alpha:spec.alpha in
  for _ = 1 to spec.count do
    let obj = Prng.Dist.zipf_draw rng table in
    let origin = Prng.Rng.int rng nodes in
    f { origin; obj }
  done

let to_array spec ~nodes rng =
  let out = Array.make (max spec.count 1) { origin = 0; obj = 0 } in
  let i = ref 0 in
  iter spec ~nodes rng (fun r ->
      out.(!i) <- r;
      incr i);
  Array.sub out 0 spec.count
