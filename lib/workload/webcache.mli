(** Zipf web-cache request streams for the storage scenario.

    The ROADMAP's web-cache target needs a workload shaped like the web:
    a fixed catalogue of named objects with heavy-tailed sizes, and a
    request stream whose popularity follows a Zipf law with tunable skew
    — the classic web-request finding. The catalogue is a pure function
    of the spec's shape ({!catalogue} never touches the stream rng), so
    two streams with different seeds or skews are over byte-identical
    objects, and a stream is a pure function of [(spec, rng seed)] —
    deterministic across runs and [--jobs], which the property suite
    pins. *)

type obj = { name : string; key : Hashid.Id.t; bytes : int }
(** A catalogue entry: stored under {!Keys.file_key} of its name. *)

type request = { origin : int; obj : int  (** catalogue index *) }

type spec = {
  count : int;  (** requests in the stream *)
  objects : int;  (** catalogue size (>= 1) *)
  alpha : float;  (** Zipf skew; 0 = uniform popularity *)
  min_bytes : int;  (** smallest object *)
  max_bytes : int;  (** size cap (Pareto tail clipped here) *)
}

val default_spec : spec
(** 1000 requests over 128 objects, alpha 0.8, sizes 512 B .. 64 KiB. *)

val validate : spec -> (unit, string) result

val catalogue : spec -> Hashid.Id.space -> obj array
(** The [objects] catalogue entries, index order — independent of
    [count], [alpha] and the stream rng. *)

val iter : spec -> nodes:int -> Prng.Rng.t -> (request -> unit) -> unit
(** Stream [count] requests: Zipf-popular object, uniform origin in
    [0 .. nodes-1]. Raises [Invalid_argument] on an invalid spec. *)

val to_array : spec -> nodes:int -> Prng.Rng.t -> request array
