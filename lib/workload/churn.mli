(** Churn traces: timed join/leave/fail events for protocol-level
    simulations.

    Generates a Poisson-ish schedule of node arrivals and departures over a
    window, used by the churn example and the protocol robustness tests. *)

type event = { at : float;  (** ms *) node : int; kind : kind }
and kind = Join | Leave | Fail

type spec = {
  horizon : float;  (** trace length, ms *)
  join_rate : float;  (** expected joins per second *)
  fail_rate : float;  (** expected silent failures per second *)
  leave_rate : float;  (** expected graceful leaves per second *)
}

val compare_event : event -> event -> int
(** Total order: time, then node id, then kind (Join < Fail < Leave). The
    tie-breaks are explicit so trace replays never depend on sort stability
    (which the language spec does not guarantee) — drivers replaying a
    trace at equal timestamps agree with {!generate} by sorting with this. *)

val generate :
  ?ts:Obs.Timeseries.t -> spec -> initial:int -> pool:int -> Prng.Rng.t -> event list
(** Nodes [0 .. initial-1] are assumed present at time 0; events use fresh
    node numbers from [initial .. pool-1] for joins and pick random live
    nodes for leaves/failures. Events are sorted with {!compare_event}. At
    least one node always stays alive.

    [ts] (default disabled) receives the {e planned} schedule as series:
    gauge [churn.live] (intended live population, seeded at t=0 with
    [initial]) and counters [churn.joins], [churn.leaves], [churn.fails].
    The realised membership under the protocol's own dynamics is what
    [Chord.Protocol]/[Hieras.Hprotocol] emit ([chord.members] /
    [hieras.members]); diffing the two series shows how far the system lags
    its churn schedule. *)
