type kind = Join | Leave | Fail
type event = { at : float; node : int; kind : kind }

(* Total, version-independent event order. [List.sort] stability is not
   guaranteed by the language spec, so every ordering here is made explicit:
   equal timestamps tie-break on node id, then kind. *)
let kind_rank = function Join -> 0 | Fail -> 1 | Leave -> 2

let compare_event a b =
  match Float.compare a.at b.at with
  | 0 -> ( match compare a.node b.node with 0 -> compare (kind_rank a.kind) (kind_rank b.kind) | c -> c)
  | c -> c

type spec = {
  horizon : float;
  join_rate : float;
  fail_rate : float;
  leave_rate : float;
}

(* Poisson arrival times for one event kind. *)
let arrival_times spec rng rate kind =
  if rate <= 0.0 then []
  else begin
    let acc = ref [] in
    let t = ref (Prng.Dist.exponential rng ~mean:(1000.0 /. rate)) in
    while !t < spec.horizon do
      acc := (!t, kind) :: !acc;
      t := !t +. Prng.Dist.exponential rng ~mean:(1000.0 /. rate)
    done;
    List.rev !acc
  end

let generate ?(ts = Obs.Timeseries.disabled) spec ~initial ~pool rng =
  if initial < 1 || initial > pool then invalid_arg "Churn.generate: bad initial/pool";
  let ts_live = Obs.Timeseries.gauge ts "churn.live" in
  let ts_joins = Obs.Timeseries.counter ts "churn.joins" in
  let ts_leaves = Obs.Timeseries.counter ts "churn.leaves" in
  let ts_fails = Obs.Timeseries.counter ts "churn.fails" in
  Obs.Timeseries.set ts_live ~at:0.0 (float_of_int initial);
  let live = Hashtbl.create 64 in
  for i = 0 to initial - 1 do
    Hashtbl.replace live i ()
  done;
  let next_fresh = ref initial in
  let pick_live () =
    (* keep at least one node alive *)
    let n = Hashtbl.length live in
    if n <= 1 then None
    else begin
      let target = Prng.Rng.int rng n in
      let i = ref 0 and found = ref None in
      Hashtbl.iter
        (fun node () ->
          if !i = target then found := Some node;
          incr i)
        live;
      !found
    end
  in
  (* merge the three Poisson processes and replay them in time order, so
     leaves/failures only ever target nodes alive at that instant; equal
     timestamps across streams replay in kind order (Join, Fail, Leave) —
     an explicit tie-break, since sort stability is not guaranteed *)
  let schedule =
    List.concat
      [
        arrival_times spec rng spec.join_rate Join;
        arrival_times spec rng spec.fail_rate Fail;
        arrival_times spec rng spec.leave_rate Leave;
      ]
    |> List.sort (fun (a, ka) (b, kb) ->
           match Float.compare a b with
           | 0 -> compare (kind_rank ka) (kind_rank kb)
           | c -> c)
  in
  let events = ref [] in
  List.iter
    (fun (at, kind) ->
      match kind with
      | Join ->
          if !next_fresh < pool then begin
            events := { at; node = !next_fresh; kind = Join } :: !events;
            Hashtbl.replace live !next_fresh ();
            incr next_fresh;
            Obs.Timeseries.add ts_joins ~at 1.0;
            Obs.Timeseries.set ts_live ~at (float_of_int (Hashtbl.length live))
          end
      | Leave | Fail -> (
          match pick_live () with
          | Some node ->
              events := { at; node; kind } :: !events;
              Hashtbl.remove live node;
              Obs.Timeseries.add (if kind = Fail then ts_fails else ts_leaves) ~at 1.0;
              Obs.Timeseries.set ts_live ~at (float_of_int (Hashtbl.length live))
          | None -> ()))
    schedule;
  List.sort compare_event (List.rev !events)
