(** Deterministic fault-injection schedules.

    A schedule is declared as a list of {!spec}s (crash a fraction, crash
    and restart, take out whole stub domains, open a message-loss window)
    and {!compile}d — through a caller-supplied {!Prng.Rng.t} — into a
    time-sorted stream of primitive {!action}s on {!Simnet.Engine}: [kill],
    [revive], [set_loss]. Compilation is a pure function of the specs, the
    node count and the rng state: the same seed always yields the same
    victims, independent of [--jobs] or evaluation order — fault schedules
    are part of an experiment's reproducible identity.

    The compiled stream can be {!apply}ed to an engine (timed god-events)
    or replayed analytically with {!population} — the planned liveness the
    resilience experiment scores lookups against. *)

type spec =
  | Crash of { at : float; frac : float }
      (** At [at] ms, permanently kill [frac] (of the total population,
          rounded) nodes drawn uniformly from those planned alive. *)
  | Crash_restart of { at : float; frac : float; down_ms : float }
      (** Like [Crash], but each victim revives after [down_ms]. *)
  | Domain_outage of { at : float; domains : int; down_ms : float option }
      (** Correlated failure: pick [domains] distinct groups (see
          [group_of] in {!compile}) uniformly among those with planned-alive
          members and kill every planned-alive member; [Some d] revives
          them all after [d] ms, [None] is permanent. *)
  | Loss_window of { from_ms : float; until_ms : float; rate : float }
      (** Message loss at [rate] between the two instants (then back
          to 0). *)

type action = Kill of int | Revive of int | Set_loss of float
type event = { at : float; action : action }

val validate : spec list -> (unit, string) result
(** First ill-formed spec, as a CLI-friendly message: fractions must lie in
    [0, 1], times be non-negative, downtimes positive, loss rates in
    [0, 1), outages cover at least one domain. *)

val compile : ?group_of:(int -> int) -> nodes:int -> spec list -> Prng.Rng.t -> event list
(** Compile to a monotone (time-sorted, ties in generation order) event
    stream over nodes [0 .. nodes-1]. [group_of] maps a node to its stub
    domain for {!spec.Domain_outage} (default: every node its own domain —
    pass e.g. the node's router for topology-correlated outages). Specs are
    processed in start-time order regardless of list order. Raises
    [Invalid_argument] when {!validate} rejects the specs or [nodes < 1]. *)

val apply : Simnet.Engine.t -> rng:Prng.Rng.t -> event list -> unit
(** Schedule every event as an engine god-event at its absolute time
    (relative to the engine's current clock; past times fire immediately).
    [rng] drives the loss coin-flips of [Set_loss] actions. Kill/revive on
    the engine are transition-only, so overlapping schedules compose
    without skewing counters. *)

val population : nodes:int -> at:float -> event list -> bool array
(** Planned liveness at time [at]: replay every kill/revive with event time
    [<= at] over an all-alive population. *)

val loss_rate : at:float -> event list -> float
(** Planned loss rate at time [at] (0 outside every window). *)
