(** A fixed-size domain pool for embarrassingly parallel loops.

    The experiment pipeline replays up to 100 000 independent lookups over
    independently generated topologies; both the per-source Dijkstra runs of
    the latency oracle and the per-request measurement loop are data-parallel
    with no shared mutable state. This pool spreads such loops over OCaml 5
    domains using only the stdlib ([Domain], [Mutex], [Condition]).

    {2 Determinism contract}

    Parallelism must never change results. Every combinator here follows the
    same discipline:

    - work is split into {e chunks} whose boundaries depend only on the
      problem size (and, for {!parallel_for}/{!parallel_map}, the pool
      width), never on scheduling;
    - workers write only into disjoint, pre-allocated slots;
    - results are combined in fixed chunk order on the calling domain.

    {!map_chunks} goes further: its chunk layout is derived from an explicit
    [chunk_size], so the result is {e bit-identical} for every pool width —
    this is what the experiment runner uses so that [--jobs 1] and
    [--jobs N] print identical tables.

    A pool is reusable across calls but not reentrant: run one parallel
    region at a time, from one domain. *)

type t

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the hardware parallelism. *)

val create : ?jobs:int -> unit -> t
(** A pool of [jobs] workers (default {!default_jobs}); [jobs - 1] domains
    are spawned, the calling domain acts as the remaining worker. [jobs = 1]
    spawns nothing and every combinator degrades to a plain sequential loop.
    Raises [Invalid_argument] if [jobs < 1]. *)

val jobs : t -> int

val sequential : t
(** A shared width-1 pool (no domains). The default everywhere a [?pool] is
    accepted, so callers that never ask for parallelism pay nothing. *)

val shutdown : t -> unit
(** Joins the worker domains. Idempotent; the pool is unusable afterwards.
    {!sequential} needs no shutdown. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [create], run, and always [shutdown]. *)

val chunks : n:int -> count:int -> (int * int) array
(** Split [0..n-1] into at most [count] contiguous [(lo, hi)] half-open
    chunks, sizes differing by at most one, earlier chunks larger. Returns
    [min count n] chunks (no empty chunks; [[||]] when [n = 0]). Raises
    [Invalid_argument] if [count < 1] or [n < 0]. *)

val regions_run : t -> int
(** Parallel regions ({!run_chunks} calls, directly or via the combinators)
    executed over the pool's lifetime. *)

val chunks_run : t -> int
(** Total chunks dispatched over the pool's lifetime. Chunk counts of
    {!parallel_for}/{!parallel_map} depend on the pool width; only
    {!map_chunks} layouts are width-independent. *)

val export_metrics : ?prefix:string -> t -> Obs.Metrics.t -> unit
(** Mirror the pool's instrumentation into a metrics registry: gauge
    [<prefix>.jobs], counters [<prefix>.regions] and [<prefix>.chunks]
    (default prefix ["pool"]). Idempotent: re-exporting overwrites. *)

val run_chunks : t -> count:int -> (int -> unit) -> unit
(** Run [f 0 .. f (count - 1)], spread over the pool. The first exception
    raised by any chunk is re-raised on the calling domain (other chunks may
    still run). This is the primitive the combinators below build on. *)

val parallel_for : t -> n:int -> (int -> unit) -> unit
(** Run [f 0 .. f (n - 1)], chunked [jobs] ways. *)

val parallel_for_chunks : t -> n:int -> (lo:int -> hi:int -> unit) -> unit
(** Like {!parallel_for} but hands each worker its whole [(lo, hi)] slice —
    for loops that keep per-chunk state. *)

val parallel_map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [Array.map], chunked [jobs] ways; element order is preserved. *)

val map_chunks : t -> n:int -> chunk_size:int -> (lo:int -> hi:int -> 'a) -> 'a list
(** Split [0..n-1] into ceil(n / chunk_size) fixed-size chunks — a layout
    independent of the pool width — apply [f] to each slice in parallel and
    return the per-chunk results {e in chunk order}. Reducing this list
    left-to-right is deterministic for any [jobs]. Raises [Invalid_argument]
    if [chunk_size < 1]. *)
