(* A fixed-size domain pool. Workers park on a condition variable; each
   parallel region bumps [generation], publishes a chunk body and a chunk
   counter, and wakes everyone. Workers (and the caller, which participates)
   claim chunk indices from the shared counter under the mutex and run them
   unlocked; the last finished chunk wakes the caller. Regions are strictly
   sequential — a new one starts only after every chunk of the previous one
   completed — so a worker that wakes late simply sees a newer generation. *)

type t = {
  jobs : int;
  mutable domains : unit Domain.t list;
  m : Mutex.t;
  cv : Condition.t;
  mutable generation : int;
  mutable body : (int -> unit) option;
  mutable chunk_total : int;
  mutable next_chunk : int;
  mutable completed : int;
  mutable failure : exn option;
  mutable closed : bool;
  (* lifetime instrumentation, written only by the calling domain (regions
     are not reentrant, so this is race-free) *)
  mutable regions_run : int;
  mutable chunks_run : int;
}

let default_jobs () = Domain.recommended_domain_count ()

(* Claim and run chunks of generation [gen] until none are left (or a newer
   generation appears). Lock held on entry and exit. *)
let execute_chunks t gen =
  while t.generation = gen && t.next_chunk < t.chunk_total do
    let i = t.next_chunk in
    t.next_chunk <- i + 1;
    let body = match t.body with Some f -> f | None -> ignore in
    Mutex.unlock t.m;
    let fail = (try body i; None with e -> Some e) in
    Mutex.lock t.m;
    (match fail with
    | Some e when t.failure = None && t.generation = gen -> t.failure <- Some e
    | _ -> ());
    t.completed <- t.completed + 1;
    if t.completed = t.chunk_total then Condition.broadcast t.cv
  done

let rec worker_loop t last_gen =
  Mutex.lock t.m;
  while (not t.closed) && t.generation = last_gen do
    Condition.wait t.cv t.m
  done;
  if t.closed then Mutex.unlock t.m
  else begin
    let gen = t.generation in
    execute_chunks t gen;
    Mutex.unlock t.m;
    worker_loop t gen
  end

let create ?jobs () =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let t =
    {
      jobs;
      domains = [];
      m = Mutex.create ();
      cv = Condition.create ();
      generation = 0;
      body = None;
      chunk_total = 0;
      next_chunk = 0;
      completed = 0;
      failure = None;
      closed = false;
      regions_run = 0;
      chunks_run = 0;
    }
  in
  if jobs > 1 then
    t.domains <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t 0));
  t

let jobs t = t.jobs
let sequential = create ~jobs:1 ()

let shutdown t =
  if not t.closed then begin
    Mutex.lock t.m;
    t.closed <- true;
    Condition.broadcast t.cv;
    Mutex.unlock t.m;
    List.iter Domain.join t.domains;
    t.domains <- []
  end

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let regions_run t = t.regions_run
let chunks_run t = t.chunks_run

let export_metrics ?(prefix = "pool") t m =
  Obs.Metrics.set (Obs.Metrics.gauge m (prefix ^ ".jobs")) (float_of_int t.jobs);
  Obs.Metrics.set_counter (Obs.Metrics.counter m (prefix ^ ".regions")) t.regions_run;
  Obs.Metrics.set_counter (Obs.Metrics.counter m (prefix ^ ".chunks")) t.chunks_run

let run_chunks t ~count body =
  if count < 0 then invalid_arg "Pool.run_chunks: negative count";
  t.regions_run <- t.regions_run + 1;
  t.chunks_run <- t.chunks_run + count;
  if count > 0 then
    if t.jobs = 1 || count = 1 || t.closed then
      for i = 0 to count - 1 do
        body i
      done
    else begin
      Mutex.lock t.m;
      t.generation <- t.generation + 1;
      let gen = t.generation in
      t.body <- Some body;
      t.chunk_total <- count;
      t.next_chunk <- 0;
      t.completed <- 0;
      t.failure <- None;
      Condition.broadcast t.cv;
      execute_chunks t gen;
      while t.completed < t.chunk_total do
        Condition.wait t.cv t.m
      done;
      t.body <- None;
      let fail = t.failure in
      t.failure <- None;
      Mutex.unlock t.m;
      match fail with Some e -> raise e | None -> ()
    end

let chunk_bounds ~n ~count i =
  let base = n / count and rem = n mod count in
  let lo = (i * base) + min i rem in
  (lo, lo + base + if i < rem then 1 else 0)

let chunks ~n ~count =
  if count < 1 then invalid_arg "Pool.chunks: count must be >= 1";
  if n < 0 then invalid_arg "Pool.chunks: negative n";
  let k = min count n in
  Array.init k (chunk_bounds ~n ~count:k)

let parallel_for_chunks t ~n f =
  if n < 0 then invalid_arg "Pool.parallel_for_chunks: negative n";
  let k = min t.jobs n in
  run_chunks t ~count:k (fun i ->
      let lo, hi = chunk_bounds ~n ~count:k i in
      f ~lo ~hi)

let parallel_for t ~n f =
  parallel_for_chunks t ~n (fun ~lo ~hi ->
      for i = lo to hi - 1 do
        f i
      done)

let parallel_map t f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let k = min t.jobs n in
    let parts = Array.make k [||] in
    run_chunks t ~count:k (fun i ->
        let lo, hi = chunk_bounds ~n ~count:k i in
        parts.(i) <- Array.init (hi - lo) (fun j -> f arr.(lo + j)));
    Array.concat (Array.to_list parts)
  end

let map_chunks t ~n ~chunk_size f =
  if chunk_size < 1 then invalid_arg "Pool.map_chunks: chunk_size must be >= 1";
  if n <= 0 then []
  else begin
    let k = ((n - 1) / chunk_size) + 1 in
    let parts = Array.make k None in
    run_chunks t ~count:k (fun i ->
        let lo = i * chunk_size in
        let hi = min n (lo + chunk_size) in
        parts.(i) <- Some (f ~lo ~hi));
    Array.to_list parts |> List.filter_map Fun.id
  end
