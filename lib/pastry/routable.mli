(** Pastry as a {!Routing.S} substrate.

    The greedy step is {!Route.next_hop} (so the derived [route] is
    hop-for-hop {!Route.route}); fallback candidates are the node's known
    contacts (leaf set + routing table) that are strictly numerically closer
    to the key, closest first. HIERAS rings are identifier-circle member sets
    ({!Routing.Circle}) walked by numerical closeness with contact-list
    shortcuts; the between-layer early exit fires when the key's root is
    already in the current node's leaf set. *)

type t

val make : Network.t -> t
val network : t -> Network.t

include Routing.S with type t := t
