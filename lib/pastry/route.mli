(** Pastry prefix routing with hop and latency accounting.

    At each step the current node forwards to its routing-table entry for the
    key's next digit (a node sharing one more prefix digit); when the key
    falls within the leaf-set range the numerically closest leaf is the final
    hop. If the required cell is empty the message goes to any known node
    that shares at least as long a prefix and is numerically closer — the
    "rare case" rule of the Pastry paper. Routes end at {!Network.root_of_key}. *)

type hop = { from_node : int; to_node : int; latency : float }

type result = {
  origin : int;
  key : Hashid.Id.t;
  destination : int;
  hops : hop list;
  hop_count : int;
  latency : float;
}

val route : Network.t -> origin:int -> key:Hashid.Id.t -> result
(** Raises [Failure] on non-termination (internal invariant guard). *)

val num_dist : Hashid.Id.space -> Hashid.Id.t -> Hashid.Id.t -> float
(** Circular numerical distance |a - key| as a fraction of the circle —
    Pastry's closeness metric (= [Routing.num_dist]). *)

val next_hop : Network.t -> root:int -> key:Hashid.Id.t -> cur:int -> int
(** One step of the routing procedure above: leaf-set delivery, then the
    routing-table cell, then the rare-case scan, then the numerically
    closest leaf. Returns [cur] itself only when no progress is possible
    (the route loop treats that as an invariant violation). Requires
    [root = Network.root_of_key net key] and [cur <> root]. *)
