module Id = Hashid.Id

module Base = struct
  type t = Network.t

  let name = "pastry"
  let layered_name = "hieras-pastry"
  let size = Network.size
  let host = Network.host
  let link_latency = Network.link_latency
  let guard t = 8 * (Id.digit_count4 (Network.space t) + Network.size t)
  let owner_of_key t ~key = Network.root_of_key t key

  let live_owner t ~is_alive ~key =
    let root = Network.root_of_key t key in
    if is_alive root then Some root
    else begin
      (* the root is down: ownership moves to the numerically closest live
         node (first index on ties — indices are id-sorted) *)
      let sp = Network.space t in
      let n = Network.size t in
      let best = ref (-1) and best_d = ref infinity in
      for i = 0 to n - 1 do
        if is_alive i then begin
          let d = Route.num_dist sp (Network.id t i) key in
          if d < !best_d then begin
            best := i;
            best_d := d
          end
        end
      done;
      if !best >= 0 then Some !best else None
    end

  let step t ~cur ~key = Route.next_hop t ~root:(Network.root_of_key t key) ~key ~cur

  (* every contact the node knows: leaf set + all routing-table cells *)
  let known_contacts t cur =
    let acc = ref [] in
    Array.iter (fun l -> acc := l :: !acc) (Network.leaf_set t cur);
    for r = 0 to Network.rows t - 1 do
      for c = 0 to 15 do
        match Network.table_entry t cur ~row:r ~col:c with
        | Some cand -> acc := cand :: !acc
        | None -> ()
      done
    done;
    !acc

  (* strictly numerically-closer members of [keep], closest first (index on
     ties), deduplicated — the monotone fallback order behind the preferred
     next hop *)
  let closing_contacts t ~keep ~cur ~key =
    let sp = Network.space t in
    let my = Route.num_dist sp (Network.id t cur) key in
    let by_closeness a b =
      let da = Route.num_dist sp (Network.id t a) key
      and db = Route.num_dist sp (Network.id t b) key in
      if da <> db then Float.compare da db else Int.compare a b
    in
    known_contacts t cur
    |> List.filter (fun c -> c <> cur && keep c && Route.num_dist sp (Network.id t c) key < my)
    |> List.sort_uniq by_closeness

  let candidates t ~cur ~key =
    let next = step t ~cur ~key in
    let rest =
      closing_contacts t ~keep:(fun _ -> true) ~cur ~key |> List.filter (fun c -> c <> next)
    in
    if next = cur then rest else next :: rest

  (* A HIERAS ring over a Pastry subset: the members on the identifier
     circle, walked by numerical closeness — contact-list shortcuts when a
     known contact is an in-ring member strictly closer to the key, circle
     neighbors otherwise. *)
  type ring = { circle : Routing.Circle.t }

  let make_ring t ~members =
    { circle = Routing.Circle.make ~space:(Network.space t) ~id_of:(Network.id t) ~members }

  let ring_stop _t rg ~cur ~key = Routing.Circle.root rg.circle ~key = cur

  let ring_candidates t rg ~cur ~key =
    let cands = closing_contacts t ~keep:(Routing.Circle.mem rg.circle) ~cur ~key in
    let tw = Routing.Circle.toward rg.circle ~cur ~key in
    if tw = cur || List.mem tw cands then cands else cands @ [ tw ]

  let ring_step t rg ~cur ~key =
    match ring_candidates t rg ~cur ~key with
    | next :: _ -> next
    | [] -> cur (* unreachable when [not (ring_stop ...)] *)

  let early_finish t ~cur ~key =
    (* leaf-set delivery: the current node already knows the key's root *)
    let root = Network.root_of_key t key in
    if Array.exists (( = ) root) (Network.leaf_set t cur) then Some root else None
end

include Routing.Extend (Base)

let make net = net
let network (t : t) = t
