module Id = Hashid.Id

type hop = { from_node : int; to_node : int; latency : float }

type result = {
  origin : int;
  key : Hashid.Id.t;
  destination : int;
  hops : hop list;
  hop_count : int;
  latency : float;
}

(* circular numerical distance |a - key| as a fraction of the circle *)
let num_dist sp a key =
  let d = Id.distance_cw sp a key in
  Float.min d (1.0 -. d)

let next_hop net ~root ~key ~cur =
  let sp = Network.space net in
  let id_of i = Network.id net i in
  let cur_id = id_of cur in
  let leaves = Network.leaf_set net cur in
  (* 1. leaf-set delivery: if the root is in our leaf set (or the key sits
     within the leaf range), jump straight to the numerically closest *)
  if Array.exists (( = ) root) leaves then root
  else begin
    let row = Network.shared_prefix_len net cur_id key in
    let col = Id.digit4 sp key row in
    match Network.table_entry net cur ~row ~col with
    | Some entry -> entry
    | None ->
        (* rare case: any known node with >= equal prefix and strictly
           smaller numerical distance *)
        let my_dist = num_dist sp cur_id key in
        let best = ref (-1) and best_d = ref my_dist in
        let consider cand =
          if cand <> cur then begin
            let cid = id_of cand in
            if Network.shared_prefix_len net cid key >= row then begin
              let d = num_dist sp cid key in
              if d < !best_d then begin
                best := cand;
                best_d := d
              end
            end
          end
        in
        Array.iter consider leaves;
        for r = 0 to Network.rows net - 1 do
          for c = 0 to 15 do
            match Network.table_entry net cur ~row:r ~col:c with
            | Some cand -> consider cand
            | None -> ()
          done
        done;
        if !best >= 0 then !best
        else
          (* fall back to the numerically closest leaf: guaranteed to
             make progress towards the root along the circle *)
          Array.fold_left
            (fun acc cand ->
              if num_dist sp (id_of cand) key < num_dist sp (id_of acc) key then cand
              else acc)
            cur leaves
  end

let route net ~origin ~key =
  let sp = Network.space net in
  let n = Network.size net in
  let root = Network.root_of_key net key in
  let hops = ref [] in
  let count = ref 0 in
  let total = ref 0.0 in
  let record from_node to_node latency =
    hops := { from_node; to_node; latency } :: !hops;
    incr count;
    total := !total +. latency
  in
  let current = ref origin in
  let steps = ref 0 in
  let guard = 8 * (Id.digit_count4 sp + n) in
  while !current <> root do
    incr steps;
    if !steps > guard then failwith "Pastry.Route: routing did not terminate";
    let cur = !current in
    let next = next_hop net ~root ~key ~cur in
    if next = cur then failwith "Pastry.Route: no progress possible";
    let l = Network.link_latency net cur next in
    record cur next l;
    current := next
  done;
  { origin; key; destination = !current; hops = List.rev !hops; hop_count = !count; latency = !total }
