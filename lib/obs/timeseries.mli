(** Sim-time-bucketed time series for counters and gauges.

    The metrics registry ({!Metrics}) answers "how much, in total"; a time
    series answers "when". Points are tagged with a simulated-time stamp
    (ms — [Simnet.Engine.now]) and folded into fixed-width buckets:
    {e counter} series sum the values landing in a bucket (events per
    interval — joins, messages, maintenance cost), {e gauge} series keep the
    last value written to a bucket (levels — live members, ring counts).

    Like the tracer, {!disabled} is the default everywhere a series is
    threaded through instrumented code ([Simnet.Engine], the protocol
    layers, [Workload.Churn]); emission on the disabled collector is one
    branch, no allocation.

    Determinism: sim time is deterministic, so for a fixed seed the whole
    collector is a pure function of the run; {!to_json}/{!to_text} sort
    series by name and points by bucket, so renderings are byte-stable. *)

type t

val disabled : t
val create : ?bucket_ms:float -> unit -> t
(** [bucket_ms] is the bucket width in simulated milliseconds (default
    1000.0 — one-second buckets). Raises [Invalid_argument] if
    [bucket_ms <= 0]. *)

val enabled : t -> bool
val bucket_ms : t -> float
(** 0.0 on the disabled collector. *)

type series
(** O(1) handle, analogous to a {!Metrics.counter}. Registration is
    idempotent by name; a name holds one kind ([Invalid_argument]
    otherwise). Handles from the disabled collector accept and discard
    writes. *)

val counter : t -> string -> series
val gauge : t -> string -> series

val add : series -> at:float -> float -> unit
(** Counter semantics: add to the bucket containing [at]. On a gauge series
    raises [Invalid_argument]. Stamps must be non-decreasing per series
    (equal stamps are fine — simulated time quantises); a regressed [at]
    raises [Invalid_argument], because gauge buckets keep the {e last}
    write and out-of-order stamps would corrupt that silently. *)

val set : series -> at:float -> float -> unit
(** Gauge semantics: overwrite the bucket containing [at] (last write
    wins). On a counter series raises [Invalid_argument], as does a
    stamp older than the series' newest (see {!add}). *)

type point = { t_ms : float;  (** bucket start time *) v : float }

val points : t -> string -> point list
(** Bucket-sorted points of a series ([] if unknown). Empty buckets are not
    materialised — consumers treat missing counter buckets as 0 and carry
    gauges forward. *)

val names : t -> string list
(** Sorted. *)

val to_text : t -> string
(** One aligned [series t_ms value] line per point, series sorted by name. *)

val to_json : t -> string
(** Deterministic single-line object:
    [{"bucket_ms":B,"series":{"name":{"kind":"counter"|"gauge",
    "points":[[t_ms,v],...]},...}}] — series sorted by name, points by
    bucket. *)

val export_metrics : ?prefix:string -> t -> Metrics.t -> unit
(** Per-series summary into a registry: counter [<prefix>.<name>.points]
    (materialised buckets), gauges [.first_ms]/[.last_ms] (time range),
    [.last] (final value) and [.sum] (counters only; total across buckets).
    Default prefix ["ts"]. *)
