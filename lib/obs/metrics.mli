(** A deterministic metrics registry: named counters, gauges and histograms.

    Subsystems register series by name and mutate them through O(1) typed
    handles; a {!snapshot} freezes every series into a plain value that
    renders identically on every run of a deterministic workload — snapshots
    sort by name, floats print with a round-tripping shortest representation,
    and nothing in the registry depends on wall-clock time or memory layout.
    This is what lets the test suite assert [to_text]/[to_json] equality
    across [--jobs] widths and latency-oracle backends.

    Handles are plain mutable cells with no locking: increments from a single
    domain are exact; the experiment pipeline keeps registries off the worker
    domains (workers accumulate into their own structures which the caller
    exports after the deterministic merge — see [Experiments.Runner]). *)

type t
(** A registry. Independent registries share nothing. *)

type counter
type gauge
type histogram

val create : unit -> t

(** {2 Registration}

    Registration is idempotent: registering an existing name returns the
    existing handle, so instrumentation sites need no coordination. A name
    holds exactly one metric kind — re-registering under a different kind
    raises [Invalid_argument]. *)

val counter : t -> string -> counter
val gauge : t -> string -> gauge

val histogram : ?buckets:float array -> t -> string -> histogram
(** [buckets] are strictly increasing upper bounds; an implicit [+inf]
    overflow bucket is always appended. The default buckets span the
    millisecond latency scales of the paper's topologies (1 .. 5000 ms).
    Raises [Invalid_argument] on empty or non-increasing buckets. *)

val default_buckets : float array

(** {2 Mutation} *)

val incr : counter -> unit
val add : counter -> int -> unit
val set_counter : counter -> int -> unit
(** Overwrite — used when mirroring a subsystem's own cumulative fields
    (e.g. [Simnet.Engine]'s delivery counters) into the registry. *)

val counter_value : counter -> int
val set : gauge -> float -> unit
val gauge_value : gauge -> float

val observe : histogram -> float -> unit
(** Adds [v] to the first bucket whose upper bound is [>= v] (the overflow
    bucket when none is) and to the running count/sum. *)

(** {2 Snapshots and rendering} *)

type hist_snapshot = {
  bounds : float array;  (** bucket upper bounds, as registered *)
  bucket_counts : int array;  (** per-bucket (non-cumulative); last = +inf overflow *)
  count : int;
  sum : float;
}

type value = Counter of int | Gauge of float | Hist of hist_snapshot

type snapshot = (string * value) list
(** Sorted by name; arrays are copies, so a snapshot is immutable even while
    the registry keeps moving. *)

val snapshot : t -> snapshot
val find : snapshot -> string -> value option

val to_text : snapshot -> string
(** One aligned line per series — the [--metrics] CLI rendering. *)

val to_json : snapshot -> string
(** A single-line JSON object mapping each name to
    [{"type":..,"value":..}] (counters, gauges) or
    [{"type":"histogram","count":..,"sum":..,"buckets":[{"le":..,"count":..},..]}]
    where the overflow bucket renders as ["le":"+inf"]. Embedded verbatim in
    the bench [--json] report. *)
