(** Message-level causal tracing for {!Simnet.Engine}: typed RPC spans.

    The per-lookup tracer ({!Trace}) covers the analytic routing paths;
    this module covers the {e message} layer. Every engine send becomes a
    span: a record of which RPC kind crossed the wire, between which
    nodes, at what simulated time, and — crucially — {e caused by} which
    earlier message. The engine threads a current-span register through
    delivery closures, so a send performed while handling a received
    message records that message as its parent. Stabilize cascades, join
    storms and recursive lookup forwarding chains all reconstruct as
    trees; a send from a timer or from top-level driver code starts a
    fresh root, so trees are bounded by the RPC cascades themselves.

    {2 Cost model}

    {!disabled} is the default on every engine. The enabled check is one
    branch per send and the disabled path allocates nothing beyond what
    the untraced engine always allocated — the same contract as {!Trace}.

    {2 Sampling}

    Million-node runs send far too many messages to record each one. The
    sink carries a sample rate; the keep/drop decision is
    {!Sampler.keep} applied to the {e root} span id of the causal tree,
    so a tree is kept or discarded as a whole: no sampled event ever
    references an unrecorded parent, at any rate, and the output is a
    deterministic subset of the full trace — byte-identical for any
    [--jobs]. Per-kind message counters are exact regardless of the
    sample rate (counted at send time, before the sampling decision), so
    audits can reconcile them against the engine's [sent] counter.

    {2 Event schema (JSONL)}

    One line per message, emitted at send time:
    [{"ev":"msg","ctx":C,"span":N,"parent":P,"kind":K,"bytes":B,"src":S,
    "dst":D,"at":T,"lat":L}] — ["ctx"] omitted when empty, ["parent"]
    omitted on roots; [B] is {!wire_bytes} of the kind, recorded
    explicitly so the analyzer can audit the producer's cost model
    against its own; [T] is the send instant, [L] the link latency the
    message will incur. A message that fails to arrive additionally emits
    [{"ev":"drop","ctx":C,"span":N,"at":T,"why":"dead"|"loss"}] ([T] is
    the send instant for losses, the arrival instant for dead
    destinations). Field-by-field description in DESIGN.md §14. *)

type kind =
  | Stabilize  (** stabilize request (incl. anchor re-entry / crosscheck) *)
  | Notify  (** "I believe I am your predecessor" *)
  | Fix_fingers  (** finger-slot refresh lookup *)
  | Check_pred  (** predecessor liveness ping *)
  | Join  (** join-time bootstrap traffic (landmark fetch, first lookup) *)
  | Ring  (** HIERAS ring-table duty (liveness, refill, replication, migration, refresh) *)
  | Lookup  (** application lookup initiation *)
  | Forward  (** recursive forwarding hop of any cascade *)
  | Reply  (** response leg of any request *)
  | Store_put  (** client-to-owner put request (key + value) *)
  | Store_get  (** client-to-owner get request (key only) *)
  | Store_delete  (** client-to-owner delete request *)
  | Store_replicate  (** owner pushing a full entry to a replica (also handoff) *)
  | Store_repair  (** version probe of a replica during read-repair *)
  | Store_reply  (** value-bearing response leg of a store RPC *)
  | Other  (** untyped sends (engine default) *)

val kind_name : kind -> string
(** Lowercase JSON name: ["stabilize"], ["notify"], ["fix_fingers"],
    ["check_pred"], ["join"], ["ring"], ["lookup"], ["forward"],
    ["reply"], ["store_put"], ["store_get"], ["store_delete"],
    ["store_replicate"], ["store_repair"], ["store_reply"], ["other"]. *)

val kind_of_name : string -> kind option

val all_kinds : kind list
(** Every kind once, in declaration order — the fixed iteration order of
    reports and metrics. *)

val kind_index : kind -> int
(** Dense index in declaration order, [0 .. n_kinds - 1] — for arrays of
    per-kind accumulators. *)

val n_kinds : int

val wire_bytes : kind -> int
(** Nominal on-the-wire size of one message of this kind, in bytes — a
    fixed cost model (header plus a typical payload: peer lists for
    replies, table entries for ring duties), not a measurement. The
    analyzer multiplies per-kind counts by it for bandwidth attribution,
    so relative weights matter, absolute calibration does not. *)

type t

val disabled : t
(** The null sink: {!enabled} is [false], {!next_span} returns 0 without
    consuming an id, every emission is a no-op. *)

val jsonl : ?ctx:string -> ?sample:float -> (string -> unit) -> t
(** Streaming JSONL sink; each event is one ['\n']-terminated line passed
    to the writer. [ctx] (default empty) tags every line — use it to
    disambiguate several engines writing into one file (the soak labels
    cells [<algo>.x<factor>]). [sample] (default 1) is the root-keyed
    keep rate. Raises [Invalid_argument] if [sample] is outside [0, 1]. *)

val enabled : t -> bool
val sample_rate : t -> float

val next_span : t -> int
(** Allocate the next span id (sequential from 0; 0 without allocation on
    the disabled sink). Called by the engine once per traced send. *)

val msg :
  t ->
  span:int ->
  parent:int ->
  root:int ->
  kind:kind ->
  src:int ->
  dst:int ->
  at:float ->
  lat:float ->
  unit
(** Record one send. [parent] is [-1] on a root (then [root = span]).
    Counts the kind exactly; writes the line only when the root is
    sampled in. *)

val drop : t -> span:int -> root:int -> at:float -> why:[ `Dead | `Loss ] -> unit
(** Record that the message of [span] never arrived. Counted exactly;
    written only when its tree is sampled in. *)

(** {2 Exact accounting (independent of sampling)} *)

val kind_count : t -> kind -> int
val messages : t -> int
(** Total sends recorded — equals the sum of {!kind_count} over
    {!all_kinds}, and the engine's [sent] delta since attachment. *)

val drops_dead : t -> int
val drops_loss : t -> int

val export_metrics : ?prefix:string -> t -> Metrics.t -> unit
(** Counters [<prefix>.msgs.<kind>] for every kind (zeros included),
    [<prefix>.msgs.total], [<prefix>.drops.dead] and
    [<prefix>.drops.loss] (default prefix ["netspan"]). Idempotent. *)
