(** JSON emission helpers for the observability renderers (internal). *)

val escape : string -> string
(** Escape a string for embedding between JSON double quotes (the quotes
    themselves are not added). *)

val float_repr : float -> string
(** Shortest decimal representation that round-trips to the same double —
    integers render without an exponent ([42], not [4.2e1]). *)

val number : float -> string
(** {!float_repr}, except non-finite values render as ["null"] (JSON has no
    literal for them). *)
