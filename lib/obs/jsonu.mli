(** JSON emission and parsing helpers for the observability layer.

    Emission serves the metrics/trace renderers; the parser exists for
    {!Analyze}, which consumes the JSONL trace streams and [BENCH_*.json]
    reports the emitters produced. It is a small, strict recursive-descent
    parser over the full JSON grammar — no dependency needed. *)

val escape : string -> string
(** Escape a string for embedding between JSON double quotes (the quotes
    themselves are not added). *)

val float_repr : float -> string
(** Shortest decimal representation that round-trips to the same double —
    integers render without an exponent ([42], not [4.2e1]). *)

val number : float -> string
(** {!float_repr}, except non-finite values render as ["null"] (JSON has no
    literal for them). *)

(** {2 Parsing} *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list  (** members in source order *)

val parse : string -> (json, string) result
(** Parse one complete JSON value (surrounding whitespace allowed); trailing
    garbage is an error. Escapes (including [\uXXXX], encoded as UTF-8) are
    decoded. *)

val member : string -> json -> json option
(** First member of that name when the value is an object. *)

val to_float : json -> float option
val to_string : json -> string option
val to_list : json -> json list option
