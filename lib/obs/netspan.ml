type kind =
  | Stabilize
  | Notify
  | Fix_fingers
  | Check_pred
  | Join
  | Ring
  | Lookup
  | Forward
  | Reply
  | Store_put
  | Store_get
  | Store_delete
  | Store_replicate
  | Store_repair
  | Store_reply
  | Other

let kind_name = function
  | Stabilize -> "stabilize"
  | Notify -> "notify"
  | Fix_fingers -> "fix_fingers"
  | Check_pred -> "check_pred"
  | Join -> "join"
  | Ring -> "ring"
  | Lookup -> "lookup"
  | Forward -> "forward"
  | Reply -> "reply"
  | Store_put -> "store_put"
  | Store_get -> "store_get"
  | Store_delete -> "store_delete"
  | Store_replicate -> "store_replicate"
  | Store_repair -> "store_repair"
  | Store_reply -> "store_reply"
  | Other -> "other"

let kind_of_name = function
  | "stabilize" -> Some Stabilize
  | "notify" -> Some Notify
  | "fix_fingers" -> Some Fix_fingers
  | "check_pred" -> Some Check_pred
  | "join" -> Some Join
  | "ring" -> Some Ring
  | "lookup" -> Some Lookup
  | "forward" -> Some Forward
  | "reply" -> Some Reply
  | "store_put" -> Some Store_put
  | "store_get" -> Some Store_get
  | "store_delete" -> Some Store_delete
  | "store_replicate" -> Some Store_replicate
  | "store_repair" -> Some Store_repair
  | "store_reply" -> Some Store_reply
  | "other" -> Some Other
  | _ -> None

let all_kinds =
  [
    Stabilize; Notify; Fix_fingers; Check_pred; Join; Ring; Lookup; Forward; Reply; Store_put;
    Store_get; Store_delete; Store_replicate; Store_repair; Store_reply; Other;
  ]

let kind_index = function
  | Stabilize -> 0
  | Notify -> 1
  | Fix_fingers -> 2
  | Check_pred -> 3
  | Join -> 4
  | Ring -> 5
  | Lookup -> 6
  | Forward -> 7
  | Reply -> 8
  | Store_put -> 9
  | Store_get -> 10
  | Store_delete -> 11
  | Store_replicate -> 12
  | Store_repair -> 13
  | Store_reply -> 14
  | Other -> 15

let n_kinds = 16

(* Nominal per-kind wire sizes: a fixed header (~32 bytes of addressing,
   span id, kind tag) plus a typical payload. Replies carry peer lists,
   ring duties carry table entries; pings carry nothing. Only the relative
   weights matter to the bandwidth attribution. *)
let wire_bytes = function
  | Stabilize -> 40
  | Notify -> 44
  | Fix_fingers -> 52
  | Check_pred -> 32
  | Join -> 56
  | Ring -> 72
  | Lookup -> 52
  | Forward -> 52
  | Reply -> 96
  | Store_put -> 192 (* key + value payload + version *)
  | Store_get -> 48 (* key only *)
  | Store_delete -> 48 (* key only *)
  | Store_replicate -> 192 (* full entry push to a replica *)
  | Store_repair -> 64 (* version probe / lease refresh *)
  | Store_reply -> 160 (* value-bearing response leg *)
  | Other -> 40

type sink = Null | Writer of (string -> unit)

type t = {
  sink : sink;
  ctx : string;
  ctx_json : string; (* pre-rendered ["ctx":"...",] fragment, "" when no ctx *)
  sample : float;
  mutable next_span : int;
  counts : int array; (* by kind_index; exact, sampling-independent *)
  mutable drops_dead : int;
  mutable drops_loss : int;
}

let disabled =
  {
    sink = Null;
    ctx = "";
    ctx_json = "";
    sample = 0.0;
    next_span = 0;
    counts = Array.make n_kinds 0;
    drops_dead = 0;
    drops_loss = 0;
  }

let jsonl ?(ctx = "") ?(sample = 1.0) write =
  if sample < 0.0 || sample > 1.0 then invalid_arg "Netspan.jsonl: sample must be in [0, 1]";
  {
    sink = Writer write;
    ctx;
    ctx_json = (if ctx = "" then "" else Printf.sprintf {|"ctx":"%s",|} (Jsonu.escape ctx));
    sample;
    next_span = 0;
    counts = Array.make n_kinds 0;
    drops_dead = 0;
    drops_loss = 0;
  }

let enabled t = match t.sink with Null -> false | Writer _ -> true
let sample_rate t = t.sample

let next_span t =
  match t.sink with
  | Null -> 0
  | Writer _ ->
      let id = t.next_span in
      t.next_span <- id + 1;
      id

let msg t ~span ~parent ~root ~kind ~src ~dst ~at ~lat =
  match t.sink with
  | Null -> ()
  | Writer w ->
      t.counts.(kind_index kind) <- t.counts.(kind_index kind) + 1;
      if Sampler.keep ~rate:t.sample root then
        w
          (if parent < 0 then
             Printf.sprintf
               {|{"ev":"msg",%s"span":%d,"kind":"%s","bytes":%d,"src":%d,"dst":%d,"at":%s,"lat":%s}|}
               t.ctx_json span (kind_name kind) (wire_bytes kind) src dst (Jsonu.number at)
               (Jsonu.number lat)
             ^ "\n"
           else
             Printf.sprintf
               {|{"ev":"msg",%s"span":%d,"parent":%d,"kind":"%s","bytes":%d,"src":%d,"dst":%d,"at":%s,"lat":%s}|}
               t.ctx_json span parent (kind_name kind) (wire_bytes kind) src dst (Jsonu.number at)
               (Jsonu.number lat)
             ^ "\n")

let drop t ~span ~root ~at ~why =
  match t.sink with
  | Null -> ()
  | Writer w ->
      (match why with
      | `Dead -> t.drops_dead <- t.drops_dead + 1
      | `Loss -> t.drops_loss <- t.drops_loss + 1);
      if Sampler.keep ~rate:t.sample root then
        w
          (Printf.sprintf {|{"ev":"drop",%s"span":%d,"at":%s,"why":"%s"}|} t.ctx_json span
             (Jsonu.number at)
             (match why with `Dead -> "dead" | `Loss -> "loss")
          ^ "\n")

let kind_count t k = t.counts.(kind_index k)
let messages t = Array.fold_left ( + ) 0 t.counts
let drops_dead t = t.drops_dead
let drops_loss t = t.drops_loss

let export_metrics ?(prefix = "netspan") t m =
  let c name v = Metrics.set_counter (Metrics.counter m (prefix ^ "." ^ name)) v in
  List.iter (fun k -> c ("msgs." ^ kind_name k) (kind_count t k)) all_kinds;
  c "msgs.total" (messages t);
  c "drops.dead" t.drops_dead;
  c "drops.loss" t.drops_loss
