(* Pure integer-hash sampling. The multiplicative constants fit OCaml's
   63-bit native int range; all arithmetic wraps deterministically, so the
   predicate is a function of the id alone — no RNG, no state, identical on
   every domain and every run. *)

let mix x =
  let x = x lxor (x lsr 33) in
  let x = x * 0x2545F4914F6CDD1D in
  let x = x lxor (x lsr 29) in
  let x = x * 0x27D4EB2F165667C5 in
  let x = x lxor (x lsr 32) in
  x land max_int

let bucket_bits = 30
let bucket_mask = (1 lsl bucket_bits) - 1

let keep ~rate id =
  if rate >= 1.0 then true
  else if rate <= 0.0 then false
  else mix id land bucket_mask < int_of_float (rate *. float_of_int (1 lsl bucket_bits))
