(* Bucketed sim-time series. Storage is one (bucket index -> float)
   hashtable per series: churn runs touch a few thousand buckets at most,
   and rendering sorts, so insertion order never shows. *)

type kind = Counter | Gauge

type series_state = {
  skind : kind;
  buckets : (int, float) Hashtbl.t;
  mutable last_at : float; (* newest stamp written; -inf before the first *)
}

type state = {
  width : float; (* ms *)
  tbl : (string, series_state) Hashtbl.t;
}

type t = Disabled | Enabled of state
type series = Off | On of series_state * state

let disabled = Disabled

let create ?(bucket_ms = 1000.0) () =
  if bucket_ms <= 0.0 then invalid_arg "Timeseries.create: bucket_ms must be > 0";
  Enabled { width = bucket_ms; tbl = Hashtbl.create 16 }

let enabled = function Disabled -> false | Enabled _ -> true
let bucket_ms = function Disabled -> 0.0 | Enabled st -> st.width

let kind_name = function Counter -> "counter" | Gauge -> "gauge"

let register t name kind =
  match t with
  | Disabled -> Off
  | Enabled st -> (
      match Hashtbl.find_opt st.tbl name with
      | Some s when s.skind = kind -> On (s, st)
      | Some s ->
          invalid_arg
            (Printf.sprintf "Timeseries: %s is already registered as a %s" name
               (kind_name s.skind))
      | None ->
          let s = { skind = kind; buckets = Hashtbl.create 64; last_at = Float.neg_infinity } in
          Hashtbl.add st.tbl name s;
          On (s, st))

let counter t name = register t name Counter
let gauge t name = register t name Gauge

let bucket_of st at = int_of_float (Float.floor (at /. st.width))

(* Bucketing assumes stamps arrive in time order (gauges keep the *last*
   write per bucket); a producer stamping backwards would silently corrupt
   that, so regressions fail loudly. Equal stamps are fine — many events
   share one simulated instant. The kind check comes first: a kind clash is
   the more fundamental misuse and must not be masked by a stale clock. *)
let check_monotone fn s at =
  if at < s.last_at then
    invalid_arg (Printf.sprintf "Timeseries.%s: stamp %g regresses behind %g" fn at s.last_at);
  s.last_at <- at

let add series ~at v =
  match series with
  | Off -> ()
  | On (s, st) ->
      if s.skind <> Counter then invalid_arg "Timeseries.add: gauge series";
      check_monotone "add" s at;
      let b = bucket_of st at in
      let cur = Option.value ~default:0.0 (Hashtbl.find_opt s.buckets b) in
      Hashtbl.replace s.buckets b (cur +. v)

let set series ~at v =
  match series with
  | Off -> ()
  | On (s, st) ->
      if s.skind <> Gauge then invalid_arg "Timeseries.set: counter series";
      check_monotone "set" s at;
      Hashtbl.replace s.buckets (bucket_of st at) v

(* ---- rendering --------------------------------------------------------- *)

type point = { t_ms : float; v : float }

let sorted_buckets s = Hashtbl.fold (fun b v acc -> (b, v) :: acc) s.buckets [] |> List.sort compare

let points t name =
  match t with
  | Disabled -> []
  | Enabled st -> (
      match Hashtbl.find_opt st.tbl name with
      | None -> []
      | Some s ->
          List.map (fun (b, v) -> { t_ms = float_of_int b *. st.width; v }) (sorted_buckets s))

let names = function
  | Disabled -> []
  | Enabled st ->
      Hashtbl.fold (fun name _ acc -> name :: acc) st.tbl [] |> List.sort String.compare

let to_text t =
  let buf = Buffer.create 256 in
  List.iter
    (fun name ->
      List.iter
        (fun p ->
          Buffer.add_string buf
            (Printf.sprintf "%-40s %10s %s\n" name (Jsonu.float_repr p.t_ms) (Jsonu.float_repr p.v)))
        (points t name))
    (names t);
  Buffer.contents buf

let to_json t =
  match t with
  | Disabled -> {|{"bucket_ms":0,"series":{}}|}
  | Enabled st ->
      let buf = Buffer.create 512 in
      Buffer.add_string buf (Printf.sprintf {|{"bucket_ms":%s,"series":{|} (Jsonu.number st.width));
      List.iteri
        (fun i name ->
          if i > 0 then Buffer.add_char buf ',';
          let s = Hashtbl.find st.tbl name in
          Buffer.add_string buf
            (Printf.sprintf {|"%s":{"kind":"%s","points":[|} (Jsonu.escape name)
               (kind_name s.skind));
          List.iteri
            (fun j (b, v) ->
              if j > 0 then Buffer.add_char buf ',';
              Buffer.add_string buf
                (Printf.sprintf "[%s,%s]" (Jsonu.number (float_of_int b *. st.width)) (Jsonu.number v)))
            (sorted_buckets s);
          Buffer.add_string buf "]}")
        (names t);
      Buffer.add_string buf "}}";
      Buffer.contents buf

let export_metrics ?(prefix = "ts") t reg =
  match t with
  | Disabled -> ()
  | Enabled st ->
      List.iter
        (fun name ->
          let s = Hashtbl.find st.tbl name in
          let pts = sorted_buckets s in
          let p = prefix ^ "." ^ name in
          Metrics.set_counter (Metrics.counter reg (p ^ ".points")) (List.length pts);
          match (pts, List.rev pts) with
          | (b0, _) :: _, (bn, vn) :: _ ->
              Metrics.set (Metrics.gauge reg (p ^ ".first_ms")) (float_of_int b0 *. st.width);
              Metrics.set (Metrics.gauge reg (p ^ ".last_ms")) (float_of_int bn *. st.width);
              Metrics.set (Metrics.gauge reg (p ^ ".last")) vn;
              if s.skind = Counter then
                Metrics.set
                  (Metrics.gauge reg (p ^ ".sum"))
                  (List.fold_left (fun a (_, v) -> a +. v) 0.0 pts)
          | _ -> ())
        (names t)
