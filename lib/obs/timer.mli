(** Hierarchical wall-clock phase profiler.

    A timer records a tree of named spans — one node per distinct path of
    names, accumulating call count and total time across repeated entries —
    so a run can answer "where did the time go": topology build vs. binning
    vs. join vs. lookup replay, with nesting.

    {2 Cost model}

    {!disabled} is the default everywhere a timer is threaded through
    ([Experiments.Runner], the CLIs): {!span} on the disabled timer runs the
    thunk behind a single match and allocates nothing, so instrumented code
    keeps its perf budget when profiling is off.

    {2 Determinism}

    The clock is injected at creation — production callers pass
    [Unix.gettimeofday], tests pass a counter — so every rendering
    ({!folded}, {!to_text}, {!export_metrics}) of a fake-clock timer is
    deterministic and can be asserted byte-for-byte. Span order is
    first-entry order, which for a deterministic program is itself
    deterministic. Timers are single-domain objects: keep them out of worker
    loops (the experiment pipeline only times whole phases on the calling
    domain). *)

type t

val disabled : t
(** {!span} runs its thunk directly; nothing is recorded. *)

val create : clock:(unit -> float) -> t
(** [clock] returns the current time in {e seconds} (e.g.
    [Unix.gettimeofday]; injected so [lib/obs] stays dependency-free and
    tests stay deterministic). *)

val enabled : t -> bool

val span : t -> string -> (unit -> 'a) -> 'a
(** [span t name f] runs [f] inside a span: a child named [name] of the
    currently open span (or a root). Time is accumulated even when [f]
    raises. Re-entering the same path accumulates into the same node. *)

type node = {
  name : string;
  count : int;  (** times the span was entered *)
  total_s : float;  (** inclusive wall time, seconds *)
  children : node list;  (** first-entry order *)
}

val roots : t -> node list
(** Snapshot of the recorded tree, roots in first-entry order. [] while a
    span is still open at that level records only completed entries. *)

val self_s : node -> float
(** Inclusive time minus the children's inclusive time. *)

val folded : t -> string
(** Flamegraph-ready folded-stack lines, one per tree node:
    ["root;child;leaf <self-time-in-microseconds>\n"] — feed to
    [flamegraph.pl] or speedscope. Values are self time, rounded to whole
    microseconds. *)

val to_text : t -> string
(** Aligned per-phase table (indented by depth): count, total ms, self ms,
    and share of the root's total. *)

val export_metrics : ?prefix:string -> t -> Metrics.t -> unit
(** For every node at path [a;b;c]: gauge [<prefix>.a.b.c.total_ms] and
    counter [<prefix>.a.b.c.count] (default prefix ["timer"]). Wall-clock
    values are nondeterministic with a real clock — export into a registry
    whose snapshot must stay reproducible only with an injected fake
    clock. *)
