(* Minimal JSON emission and parsing helpers shared by the observability
   renderers and the trace analyzer. Emission came first; the strict
   recursive-descent parser below was added for Obs.Analyze, which reads
   back the JSONL traces and BENCH_*.json reports the emitters produced. *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 32 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Shortest decimal representation that round-trips to the same double:
   golden traces stay byte-stable while any sub-ulp change in an accounted
   latency still produces a different line. *)
let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else
    let s = Printf.sprintf "%.15g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

(* JSON has no literal for non-finite numbers. *)
let number f = if Float.is_finite f then float_repr f else "null"

(* ---- parsing ----------------------------------------------------------- *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

let parse (s : string) : (json, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let error fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let expect c =
    match peek () with
    | Some x when x = c -> incr pos
    | Some x -> error "offset %d: expected '%c', found '%c'" !pos c x
    | None -> error "offset %d: expected '%c', found end of input" !pos c
  in
  (* UTF-8-encode a decoded \uXXXX code point (surrogate pairs handled by
     the caller) *)
  let add_utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then error "offset %d: truncated \\u escape" !pos;
    let v = ref 0 in
    for _ = 1 to 4 do
      let d =
        match s.[!pos] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | c -> error "offset %d: bad hex digit '%c'" !pos c
      in
      v := (!v * 16) + d;
      incr pos
    done;
    !v
  in
  let string_lit () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then error "offset %d: unterminated string" !pos;
      match s.[!pos] with
      | '"' -> incr pos
      | '\\' ->
          incr pos;
          (if !pos >= n then error "offset %d: truncated escape" !pos;
           match s.[!pos] with
           | '"' -> incr pos; Buffer.add_char buf '"'
           | '\\' -> incr pos; Buffer.add_char buf '\\'
           | '/' -> incr pos; Buffer.add_char buf '/'
           | 'b' -> incr pos; Buffer.add_char buf '\b'
           | 'f' -> incr pos; Buffer.add_char buf '\012'
           | 'n' -> incr pos; Buffer.add_char buf '\n'
           | 'r' -> incr pos; Buffer.add_char buf '\r'
           | 't' -> incr pos; Buffer.add_char buf '\t'
           | 'u' ->
               incr pos;
               let cp = hex4 () in
               let cp =
                 (* high surrogate: fuse with the following \uXXXX *)
                 if cp >= 0xD800 && cp <= 0xDBFF && !pos + 1 < n && s.[!pos] = '\\'
                    && s.[!pos + 1] = 'u'
                 then begin
                   pos := !pos + 2;
                   let lo = hex4 () in
                   if lo >= 0xDC00 && lo <= 0xDFFF then
                     0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
                   else error "offset %d: unpaired surrogate" !pos
                 end
                 else cp
               in
               add_utf8 buf cp
           | c -> error "offset %d: bad escape '\\%c'" !pos c);
          go ()
      | c when Char.code c < 32 -> error "offset %d: raw control character in string" !pos
      | c ->
          incr pos;
          Buffer.add_char buf c;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let number_lit () =
    let start = !pos in
    if peek () = Some '-' then incr pos;
    let digits () =
      let d0 = !pos in
      while !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false) do
        incr pos
      done;
      if !pos = d0 then error "offset %d: malformed number" !pos
    in
    (* JSON int part: 0, or a nonzero digit followed by more digits — no
       leading zeros *)
    (match peek () with
    | Some '0' -> incr pos
    | Some ('1' .. '9') -> digits ()
    | _ -> error "offset %d: malformed number" !pos);
    if peek () = Some '.' then begin
      incr pos;
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        incr pos;
        (match peek () with Some ('+' | '-') -> incr pos | _ -> ());
        digits ()
    | _ -> ());
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> error "offset %d: malformed number" start
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          Obj []
        end
        else begin
          let members = ref [] in
          let rec members_loop () =
            skip_ws ();
            let k = string_lit () in
            skip_ws ();
            expect ':';
            let v = value () in
            members := (k, v) :: !members;
            skip_ws ();
            match peek () with
            | Some ',' -> incr pos; members_loop ()
            | Some '}' -> incr pos
            | _ -> error "offset %d: expected ',' or '}'" !pos
          in
          members_loop ();
          Obj (List.rev !members)
        end
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          Arr []
        end
        else begin
          let items = ref [] in
          let rec items_loop () =
            let v = value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' -> incr pos; items_loop ()
            | Some ']' -> incr pos
            | _ -> error "offset %d: expected ',' or ']'" !pos
          in
          items_loop ();
          Arr (List.rev !items)
        end
    | Some '"' -> Str (string_lit ())
    | Some 't' ->
        if !pos + 4 <= n && String.sub s !pos 4 = "true" then begin
          pos := !pos + 4;
          Bool true
        end
        else error "offset %d: bad literal" !pos
    | Some 'f' ->
        if !pos + 5 <= n && String.sub s !pos 5 = "false" then begin
          pos := !pos + 5;
          Bool false
        end
        else error "offset %d: bad literal" !pos
    | Some 'n' ->
        if !pos + 4 <= n && String.sub s !pos 4 = "null" then begin
          pos := !pos + 4;
          Null
        end
        else error "offset %d: bad literal" !pos
    | Some ('-' | '0' .. '9') -> Num (number_lit ())
    | Some c -> error "offset %d: unexpected '%c'" !pos c
    | None -> error "offset %d: unexpected end of input" !pos
  in
  try
    let v = value () in
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "offset %d: trailing garbage" !pos) else Ok v
  with Parse_error m -> Error m

let member name = function Obj members -> List.assoc_opt name members | _ -> None
let to_float = function Num f -> Some f | _ -> None
let to_string = function Str s -> Some s | _ -> None
let to_list = function Arr l -> Some l | _ -> None
