(* Minimal JSON emission helpers shared by the metrics and trace renderers.
   Emission only — the observability surface produces JSON, it never parses
   it (consumers are jq / python / the CI smoke check). *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 32 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Shortest decimal representation that round-trips to the same double:
   golden traces stay byte-stable while any sub-ulp change in an accounted
   latency still produces a different line. *)
let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else
    let s = Printf.sprintf "%.15g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

(* JSON has no literal for non-finite numbers. *)
let number f = if Float.is_finite f then float_repr f else "null"
