type counter = { mutable c : int }
type gauge = { mutable g : float }

type histogram = {
  upper : float array; (* strictly increasing bucket upper bounds *)
  counts : int array; (* length upper + 1; last slot = overflow (+inf) *)
  mutable hcount : int;
  mutable hsum : float;
}

type metric = C of counter | G of gauge | H of histogram
type t = { tbl : (string, metric) Hashtbl.t }

let create () = { tbl = Hashtbl.create 32 }

let kind_name = function C _ -> "counter" | G _ -> "gauge" | H _ -> "histogram"

(* Registration is idempotent by name: re-registering returns the existing
   metric, so instrumentation sites need no coordination about who created a
   series first. A name can only ever hold one metric kind. *)
let register t name make describe =
  match Hashtbl.find_opt t.tbl name with
  | Some m -> (
      match describe m with
      | Some v -> v
      | None ->
          invalid_arg
            (Printf.sprintf "Metrics: %s is already registered as a %s" name (kind_name m)))
  | None ->
      let m, v = make () in
      Hashtbl.add t.tbl name m;
      v

let counter t name =
  register t name
    (fun () ->
      let c = { c = 0 } in
      (C c, c))
    (function C c -> Some c | _ -> None)

let gauge t name =
  register t name
    (fun () ->
      let g = { g = 0.0 } in
      (G g, g))
    (function G g -> Some g | _ -> None)

(* ms-oriented latency buckets: three orders of magnitude around the paper's
   transit-stub delay scales *)
let default_buckets =
  [| 1.0; 2.0; 5.0; 10.0; 20.0; 50.0; 100.0; 200.0; 500.0; 1000.0; 2000.0; 5000.0 |]

let histogram ?(buckets = default_buckets) t name =
  if Array.length buckets = 0 then invalid_arg "Metrics.histogram: empty buckets";
  Array.iteri
    (fun i b ->
      if i > 0 && b <= buckets.(i - 1) then
        invalid_arg "Metrics.histogram: buckets must be strictly increasing")
    buckets;
  register t name
    (fun () ->
      let h =
        {
          upper = Array.copy buckets;
          counts = Array.make (Array.length buckets + 1) 0;
          hcount = 0;
          hsum = 0.0;
        }
      in
      (H h, h))
    (function H h -> Some h | _ -> None)

let incr c = c.c <- c.c + 1
let add c n = c.c <- c.c + n
let set_counter c v = c.c <- v
let counter_value c = c.c
let set g v = g.g <- v
let gauge_value g = g.g

let observe h v =
  let n = Array.length h.upper in
  let i = ref 0 in
  while !i < n && v > h.upper.(!i) do
    Stdlib.incr i
  done;
  h.counts.(!i) <- h.counts.(!i) + 1;
  h.hcount <- h.hcount + 1;
  h.hsum <- h.hsum +. v

(* ---- snapshots --------------------------------------------------------- *)

type hist_snapshot = { bounds : float array; bucket_counts : int array; count : int; sum : float }
type value = Counter of int | Gauge of float | Hist of hist_snapshot
type snapshot = (string * value) list

let freeze = function
  | C c -> Counter c.c
  | G g -> Gauge g.g
  | H h ->
      Hist
        { bounds = Array.copy h.upper; bucket_counts = Array.copy h.counts; count = h.hcount; sum = h.hsum }

let snapshot t =
  Hashtbl.fold (fun name m acc -> (name, freeze m) :: acc) t.tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let find snap name = List.assoc_opt name snap

let to_text snap =
  let buf = Buffer.create 512 in
  List.iter
    (fun (name, v) ->
      match v with
      | Counter c -> Buffer.add_string buf (Printf.sprintf "%-40s %d\n" name c)
      | Gauge g -> Buffer.add_string buf (Printf.sprintf "%-40s %s\n" name (Jsonu.float_repr g))
      | Hist h ->
          Buffer.add_string buf (Printf.sprintf "%-40s count=%d sum=%s" name h.count (Jsonu.float_repr h.sum));
          Buffer.add_string buf " [";
          Array.iteri
            (fun i c ->
              if i > 0 then Buffer.add_char buf ' ';
              let le = if i < Array.length h.bounds then Jsonu.float_repr h.bounds.(i) else "+inf" in
              Buffer.add_string buf (Printf.sprintf "%s:%d" le c))
            h.bucket_counts;
          Buffer.add_string buf "]\n")
    snap;
  Buffer.contents buf

let to_json snap =
  let buf = Buffer.create 512 in
  Buffer.add_char buf '{';
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "\"%s\":" (Jsonu.escape name));
      match v with
      | Counter c -> Buffer.add_string buf (Printf.sprintf "{\"type\":\"counter\",\"value\":%d}" c)
      | Gauge g ->
          Buffer.add_string buf (Printf.sprintf "{\"type\":\"gauge\",\"value\":%s}" (Jsonu.number g))
      | Hist h ->
          Buffer.add_string buf
            (Printf.sprintf "{\"type\":\"histogram\",\"count\":%d,\"sum\":%s,\"buckets\":["
               h.count (Jsonu.number h.sum));
          Array.iteri
            (fun i c ->
              if i > 0 then Buffer.add_char buf ',';
              let le =
                if i < Array.length h.bounds then Jsonu.number h.bounds.(i) else "\"+inf\""
              in
              Buffer.add_string buf (Printf.sprintf "{\"le\":%s,\"count\":%d}" le c))
            h.bucket_counts;
          Buffer.add_string buf "]}")
    snap;
  Buffer.add_char buf '}';
  Buffer.contents buf
