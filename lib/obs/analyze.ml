(* Streaming trace analytics. One pass: hop events fold straight into
   per-algo aggregates (layer attribution, forwarding loads, node sets);
   End events close the per-lookup span, audit it against the replayed
   hops, and feed the per-lookup distributions. Only the open spans and
   the aggregates live in memory — never the trace. *)

module Imap = Map.Make (Int)
module Iset = Set.Make (Int)

(* ---- accumulation ------------------------------------------------------ *)

type span = {
  sp_algo : string;
  mutable next_seq : int;
  mutable prev_to : int; (* origin before the first hop *)
  mutable sp_hops : int;
  mutable sp_lat : float;
  mutable chain_ok : bool;
}

type agg = {
  mutable lookups : int;
  hops_sum : Stats.Summary.t;
  lat_sum : Stats.Summary.t;
  hop_hist : Stats.Histogram.t;
  lat_hist : Stats.Histogram.t;
  mutable layer_hops : int Imap.t;
  mutable layer_lat : float Imap.t;
  mutable finished : int Imap.t; (* finished_at_layer -> lookups *)
  mutable forwards : int Imap.t; (* node -> hops it forwarded *)
  mutable nodes : Iset.t; (* every node id seen in this algo's events *)
  mutable retries : int;
  mutable fallbacks : int;
  mutable layer_escapes : int;
  mutable penalty_ms : float; (* recover delay total, part of End latency *)
}

(* Net (message-level) accumulation: one entry per span keyed by (ctx, span)
   — spans from different engines sharing a file are disjoint namespaces.
   Parents are always emitted before their children (a send happens before
   the delivery it causes), so root kind and depth resolve in one pass. *)
type nspan = { nsp_root_kind : Netspan.kind; nsp_depth : int }

type net = {
  nspans : (string * int, nspan) Hashtbl.t;
  kind_counts : int array; (* by Netspan.kind_index *)
  kind_lat : Stats.Summary.t array;
  nlat_hist : Stats.Histogram.t;
  mutable node_msgs : int Imap.t; (* sender -> messages *)
  mutable node_bytes : int Imap.t; (* sender -> nominal wire bytes *)
  mutable nnodes : Iset.t; (* every node seen as src or dst *)
  class_msgs : int array; (* by class index, see class_names *)
  class_bytes : int array;
  kind_bytes_seen : int array; (* first declared "bytes" per kind, -1 = none yet *)
  depth_sum : Stats.Summary.t;
  mutable nroots : int;
  mutable ndrops_dead : int;
  mutable ndrops_loss : int;
}

(* Traffic classes, attributed by the *root* kind of each causal tree: a
   forwarding hop or reply belongs to whatever RPC started the cascade. *)
let class_names = [| "maint"; "lookup"; "join"; "store"; "other" |]

let class_of_kind = function
  | Netspan.Stabilize | Netspan.Notify | Netspan.Fix_fingers | Netspan.Check_pred | Netspan.Ring ->
      0
  | Netspan.Lookup -> 1
  | Netspan.Join -> 2
  | Netspan.Store_put | Netspan.Store_get | Netspan.Store_delete | Netspan.Store_replicate
  | Netspan.Store_repair | Netspan.Store_reply ->
      3
  | Netspan.Forward | Netspan.Reply | Netspan.Other -> 4

type t = {
  top_k : int;
  aggs : (string, agg) Hashtbl.t;
  open_spans : (int, span) Hashtbl.t;
  mutable net : net option; (* created on the first msg/drop event *)
  mutable events : int;
  mutable violations : int;
}

let create ?(top_k = 10) () =
  if top_k < 0 then invalid_arg "Analyze.create: top_k must be >= 0";
  {
    top_k;
    aggs = Hashtbl.create 4;
    open_spans = Hashtbl.create 64;
    net = None;
    events = 0;
    violations = 0;
  }

let net_of t =
  match t.net with
  | Some n -> n
  | None ->
      let n =
        {
          nspans = Hashtbl.create 1024;
          kind_counts = Array.make Netspan.n_kinds 0;
          kind_lat = Array.init Netspan.n_kinds (fun _ -> Stats.Summary.create ());
          nlat_hist = Stats.Histogram.create ~lo:0.0 ~hi:2000.0 ~bins:80;
          node_msgs = Imap.empty;
          node_bytes = Imap.empty;
          nnodes = Iset.empty;
          class_msgs = Array.make (Array.length class_names) 0;
          class_bytes = Array.make (Array.length class_names) 0;
          kind_bytes_seen = Array.make Netspan.n_kinds (-1);
          depth_sum = Stats.Summary.create ();
          nroots = 0;
          ndrops_dead = 0;
          ndrops_loss = 0;
        }
      in
      t.net <- Some n;
      n

let agg_of t algo =
  match Hashtbl.find_opt t.aggs algo with
  | Some a -> a
  | None ->
      let a =
        {
          lookups = 0;
          hops_sum = Stats.Summary.create ();
          lat_sum = Stats.Summary.create ();
          hop_hist = Stats.Histogram.create_ints ~max:63;
          lat_hist = Stats.Histogram.create ~lo:0.0 ~hi:2000.0 ~bins:80;
          layer_hops = Imap.empty;
          layer_lat = Imap.empty;
          finished = Imap.empty;
          forwards = Imap.empty;
          nodes = Iset.empty;
          retries = 0;
          fallbacks = 0;
          layer_escapes = 0;
          penalty_ms = 0.0;
        }
      in
      Hashtbl.add t.aggs algo a;
      a

let bump map key n = Imap.update key (fun v -> Some (Option.value ~default:0 v + n)) map
let bumpf map key x = Imap.update key (fun v -> Some (Option.value ~default:0.0 v +. x)) map

(* Latencies are summed in emission order on both sides of the audit, and
   the JSON float encoding round-trips, so agreement is exact; the epsilon
   only absorbs a different-order reduction from a foreign producer. *)
let lat_agrees a b = Float.abs (a -. b) <= 1e-9 *. Float.max 1.0 (Float.abs b)

let feed_event t ev =
  t.events <- t.events + 1;
  match (ev : Trace.event) with
  | Start { lookup; algo; origin; key = _ } ->
      if Hashtbl.mem t.open_spans lookup then t.violations <- t.violations + 1;
      let a = agg_of t algo in
      a.nodes <- Iset.add origin a.nodes;
      Hashtbl.replace t.open_spans lookup
        { sp_algo = algo; next_seq = 0; prev_to = origin; sp_hops = 0; sp_lat = 0.0; chain_ok = true }
  | Hop { lookup; seq; layer; from_node; to_node; latency_ms } -> (
      match Hashtbl.find_opt t.open_spans lookup with
      | None -> t.violations <- t.violations + 1 (* hop outside any span *)
      | Some sp ->
          if seq <> sp.next_seq || from_node <> sp.prev_to then sp.chain_ok <- false;
          sp.next_seq <- seq + 1;
          sp.prev_to <- to_node;
          sp.sp_hops <- sp.sp_hops + 1;
          sp.sp_lat <- sp.sp_lat +. latency_ms;
          let a = agg_of t sp.sp_algo in
          a.layer_hops <- bump a.layer_hops layer 1;
          a.layer_lat <- bumpf a.layer_lat layer latency_ms;
          a.forwards <- bump a.forwards from_node 1;
          a.nodes <- Iset.add from_node (Iset.add to_node a.nodes))
  | Recover { lookup; kind; layer = _; at_node; dead_node = _; delay_ms } -> (
      match Hashtbl.find_opt t.open_spans lookup with
      | None -> t.violations <- t.violations + 1 (* recovery outside any span *)
      | Some sp ->
          (* contiguous with the hop chain: recovery happens at the current
             position; the charged delay is part of the End latency *)
          if at_node <> sp.prev_to then sp.chain_ok <- false;
          sp.sp_lat <- sp.sp_lat +. delay_ms;
          let a = agg_of t sp.sp_algo in
          (match kind with
          | Trace.Retry -> a.retries <- a.retries + 1
          | Trace.Fallback -> a.fallbacks <- a.fallbacks + 1
          | Trace.Layer_escape -> a.layer_escapes <- a.layer_escapes + 1);
          a.penalty_ms <- a.penalty_ms +. delay_ms)
  | End { lookup; destination; hops; latency_ms; finished_at_layer } -> (
      match Hashtbl.find_opt t.open_spans lookup with
      | None -> t.violations <- t.violations + 1
      | Some sp ->
          Hashtbl.remove t.open_spans lookup;
          if
            (not sp.chain_ok) || hops <> sp.sp_hops || destination <> sp.prev_to
            || not (lat_agrees latency_ms sp.sp_lat)
          then t.violations <- t.violations + 1;
          let a = agg_of t sp.sp_algo in
          a.lookups <- a.lookups + 1;
          Stats.Summary.add a.hops_sum (float_of_int hops);
          Stats.Summary.add a.lat_sum latency_ms;
          Stats.Histogram.add a.hop_hist (float_of_int hops);
          Stats.Histogram.add a.lat_hist latency_ms;
          a.finished <- bump a.finished finished_at_layer 1;
          a.nodes <- Iset.add destination a.nodes)

(* Audited invariants of the net stream: span ids are unique per ctx, every
   referenced parent was recorded earlier (root-keyed sampling keeps causal
   trees whole, so this holds at any sample rate), drops name a known
   span, and declared wire bytes are positive and consistent per kind (the
   cost model is a function of the kind; two lines of one kind declaring
   different sizes mean a corrupt or mixed-producer trace). Breaches count
   into [violations] but still accumulate, so a report over a damaged
   trace is flagged rather than silently partial. *)
let feed_msg t ~ctx ~span ~parent ~kind ~src ~dst ~lat ~declared_bytes =
  t.events <- t.events + 1;
  let n = net_of t in
  if Hashtbl.mem n.nspans (ctx, span) then t.violations <- t.violations + 1
  else begin
    let entry =
      if parent < 0 then begin
        n.nroots <- n.nroots + 1;
        { nsp_root_kind = kind; nsp_depth = 0 }
      end
      else
        match Hashtbl.find_opt n.nspans (ctx, parent) with
        | Some p -> { nsp_root_kind = p.nsp_root_kind; nsp_depth = p.nsp_depth + 1 }
        | None ->
            (* orphan parent: flag it, then treat the span as a fresh root so
               the rest of the statistics stay defined *)
            t.violations <- t.violations + 1;
            { nsp_root_kind = kind; nsp_depth = 0 }
    in
    Hashtbl.add n.nspans (ctx, span) entry;
    let ki = Netspan.kind_index kind in
    n.kind_counts.(ki) <- n.kind_counts.(ki) + 1;
    Stats.Summary.add n.kind_lat.(ki) lat;
    Stats.Histogram.add n.nlat_hist lat;
    Stats.Summary.add n.depth_sum (float_of_int entry.nsp_depth);
    let bytes =
      match declared_bytes with
      | None -> Netspan.wire_bytes kind (* pre-bytes-field traces: fall back to the model *)
      | Some b when b <= 0 ->
          t.violations <- t.violations + 1;
          Netspan.wire_bytes kind (* don't let a bad line skew byte sums *)
      | Some b ->
          let seen = n.kind_bytes_seen.(ki) in
          if seen < 0 then n.kind_bytes_seen.(ki) <- b
          else if seen <> b then t.violations <- t.violations + 1;
          b
    in
    n.node_msgs <- bump n.node_msgs src 1;
    n.node_bytes <- bump n.node_bytes src bytes;
    n.nnodes <- Iset.add src (Iset.add dst n.nnodes);
    let c = class_of_kind entry.nsp_root_kind in
    n.class_msgs.(c) <- n.class_msgs.(c) + 1;
    n.class_bytes.(c) <- n.class_bytes.(c) + bytes
  end

let feed_drop t ~ctx ~span ~why =
  t.events <- t.events + 1;
  let n = net_of t in
  if not (Hashtbl.mem n.nspans (ctx, span)) then t.violations <- t.violations + 1;
  match why with
  | `Dead -> n.ndrops_dead <- n.ndrops_dead + 1
  | `Loss -> n.ndrops_loss <- n.ndrops_loss + 1

(* ---- JSONL decoding ---------------------------------------------------- *)

let field name j =
  match Jsonu.member name j with
  | Some v -> v
  | None -> failwith (Printf.sprintf "trace event: missing field %S" name)

let int_field name j =
  match Jsonu.to_float (field name j) with
  | Some f when Float.is_integer f -> int_of_float f
  | _ -> failwith (Printf.sprintf "trace event: field %S is not an integer" name)

let float_field name j =
  match Jsonu.to_float (field name j) with
  | Some f -> f
  | None -> failwith (Printf.sprintf "trace event: field %S is not a number" name)

let str_field name j =
  match Jsonu.to_string (field name j) with
  | Some s -> s
  | None -> failwith (Printf.sprintf "trace event: field %S is not a string" name)

let trace_event_of_json j =
  (
      match str_field "ev" j with
      | "start" ->
          Trace.Start
            {
              lookup = int_field "lookup" j;
              algo = str_field "algo" j;
              origin = int_field "origin" j;
              key = str_field "key" j;
            }
      | "hop" ->
          Trace.Hop
            {
              lookup = int_field "lookup" j;
              seq = int_field "seq" j;
              layer = int_field "layer" j;
              from_node = int_field "from" j;
              to_node = int_field "to" j;
              latency_ms = float_field "lat_ms" j;
            }
      | "recover" ->
          let kind_s = str_field "kind" j in
          let kind =
            match Trace.rkind_of_name kind_s with
            | Some k -> k
            | None -> failwith (Printf.sprintf "trace event: unknown recover kind %S" kind_s)
          in
          Trace.Recover
            {
              lookup = int_field "lookup" j;
              kind;
              layer = int_field "layer" j;
              at_node = int_field "at" j;
              dead_node = int_field "dead" j;
              delay_ms = float_field "delay_ms" j;
            }
      | "end" ->
          Trace.End
            {
              lookup = int_field "lookup" j;
              destination = int_field "dest" j;
              hops = int_field "hops" j;
              latency_ms = float_field "lat_ms" j;
              finished_at_layer = int_field "finished_at_layer" j;
            }
      | ev -> failwith (Printf.sprintf "trace event: unknown kind %S" ev))

(* Both event families share one streaming entry point: lookup traces carry
   ev start/hop/recover/end, net traces carry ev msg/drop. A single file
   (or stdin) can hold either; the accumulated state decides which report
   is available. *)
let feed_json t j =
  match str_field "ev" j with
  | "msg" ->
      let ctx =
        match Jsonu.member "ctx" j with
        | Some v -> (
            match Jsonu.to_string v with
            | Some s -> s
            | None -> failwith "net event: field \"ctx\" is not a string")
        | None -> ""
      in
      let parent = match Jsonu.member "parent" j with Some _ -> int_field "parent" j | None -> -1 in
      let kind_s = str_field "kind" j in
      let kind =
        match Netspan.kind_of_name kind_s with
        | Some k -> k
        | None -> failwith (Printf.sprintf "net event: unknown kind %S" kind_s)
      in
      ignore (float_field "at" j);
      let declared_bytes =
        match Jsonu.member "bytes" j with Some _ -> Some (int_field "bytes" j) | None -> None
      in
      feed_msg t ~ctx ~span:(int_field "span" j) ~parent ~kind ~src:(int_field "src" j)
        ~dst:(int_field "dst" j) ~lat:(float_field "lat" j) ~declared_bytes
  | "drop" ->
      let ctx =
        match Jsonu.member "ctx" j with
        | Some v -> Option.value ~default:"" (Jsonu.to_string v)
        | None -> ""
      in
      let why =
        match str_field "why" j with
        | "dead" -> `Dead
        | "loss" -> `Loss
        | s -> failwith (Printf.sprintf "net event: unknown drop reason %S" s)
      in
      feed_drop t ~ctx ~span:(int_field "span" j) ~why
  | _ -> feed_event t (trace_event_of_json j)

let is_blank line = String.for_all (function ' ' | '\t' | '\r' -> true | _ -> false) line

let feed_line t line =
  if not (is_blank line) then
    match Jsonu.parse line with
    | Error msg -> failwith (Printf.sprintf "trace line: %s" msg)
    | Ok j -> feed_json t j

let of_file ?top_k path =
  let t = create ?top_k () in
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      try
        while true do
          feed_line t (input_line ic)
        done;
        assert false
      with End_of_file -> t)

(* ---- report ------------------------------------------------------------ *)

type layer_stat = {
  layer : int;
  l_hops : int;
  hop_share : float;
  l_latency_ms : float;
  latency_share : float;
}

type hotspot = { node : int; forwards : int; fwd_share : float }

type recover_stat = { retries : int; fallbacks : int; layer_escapes : int; penalty_ms : float }

type algo_report = {
  algo : string;
  lookups : int;
  hops_mean : float;
  hops_max : float;
  latency_mean_ms : float;
  latency_max_ms : float;
  hop_hist : Stats.Histogram.t;
  latency_hist : Stats.Histogram.t;
  layers : layer_stat list;
  finished_at : (int * int) list;
  nodes_seen : int;
  forwarders : int;
  gini : float;
  imbalance : float;
  hotspots : hotspot list;
  recover : recover_stat;
}

type report = { events : int; spans_open : int; violations : int; algos : algo_report list }

(* G = (2 * sum_i i*x_i) / (n * sum x) - (n + 1) / n over ascending x,
   1-based i; 0 when every count is zero or there is at most one node. *)
let gini_of counts =
  let n = Array.length counts in
  let total = Array.fold_left ( +. ) 0.0 counts in
  if n < 2 || total <= 0.0 then 0.0
  else begin
    let sorted = Array.copy counts in
    Array.sort Float.compare sorted;
    let weighted = ref 0.0 in
    Array.iteri (fun i x -> weighted := !weighted +. (float_of_int (i + 1) *. x)) sorted;
    (2.0 *. !weighted /. (float_of_int n *. total)) -. (float_of_int (n + 1) /. float_of_int n)
  end

let algo_report_of top_k algo (a : agg) =
  let total_hops = Imap.fold (fun _ n acc -> acc + n) a.layer_hops 0 in
  let total_lat = Imap.fold (fun _ x acc -> acc +. x) a.layer_lat 0.0 in
  let layers =
    Imap.fold
      (fun layer l_hops acc ->
        let l_latency_ms = Option.value ~default:0.0 (Imap.find_opt layer a.layer_lat) in
        {
          layer;
          l_hops;
          hop_share = (if total_hops > 0 then float_of_int l_hops /. float_of_int total_hops else 0.0);
          l_latency_ms;
          latency_share = (if total_lat > 0.0 then l_latency_ms /. total_lat else 0.0);
        }
        :: acc)
      a.layer_hops []
    |> List.rev
  in
  (* Load distribution over every node seen in the algo's events: nodes
     that never forwarded count as zeros — a hotspot is only a hotspot
     relative to the idle rest of the population. *)
  let fwd_of node = Option.value ~default:0 (Imap.find_opt node a.forwards) in
  let counts = Iset.elements a.nodes |> List.map (fun n -> float_of_int (fwd_of n)) |> Array.of_list in
  let nodes_seen = Array.length counts in
  let max_fwd = Array.fold_left Float.max 0.0 counts in
  let mean_fwd = if nodes_seen > 0 then float_of_int total_hops /. float_of_int nodes_seen else 0.0 in
  let hotspots =
    Imap.bindings a.forwards
    |> List.sort (fun (n1, f1) (n2, f2) ->
           match compare f2 f1 with 0 -> compare n1 n2 | c -> c)
    |> List.filteri (fun i _ -> i < top_k)
    |> List.map (fun (node, forwards) ->
           {
             node;
             forwards;
             fwd_share =
               (if total_hops > 0 then float_of_int forwards /. float_of_int total_hops else 0.0);
           })
  in
  {
    algo;
    lookups = a.lookups;
    hops_mean = Stats.Summary.mean a.hops_sum;
    hops_max = (if a.lookups > 0 then Stats.Summary.max_value a.hops_sum else 0.0);
    latency_mean_ms = Stats.Summary.mean a.lat_sum;
    latency_max_ms = (if a.lookups > 0 then Stats.Summary.max_value a.lat_sum else 0.0);
    hop_hist = a.hop_hist;
    latency_hist = a.lat_hist;
    layers;
    finished_at = Imap.bindings a.finished;
    nodes_seen;
    forwarders = Imap.cardinal a.forwards;
    gini = gini_of counts;
    imbalance = (if mean_fwd > 0.0 then max_fwd /. mean_fwd else 0.0);
    hotspots;
    recover =
      {
        retries = a.retries;
        fallbacks = a.fallbacks;
        layer_escapes = a.layer_escapes;
        penalty_ms = a.penalty_ms;
      };
  }

(* The recover block only renders when a resilient route actually recovered
   from something, so reports from healthy traces keep their exact bytes
   (the committed goldens predate failure-aware routing). *)
let has_recover ar =
  ar.recover.retries + ar.recover.fallbacks + ar.recover.layer_escapes > 0

let report t =
  let algos =
    Hashtbl.fold (fun algo a acc -> (algo, a) :: acc) t.aggs []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    |> List.map (fun (algo, a) -> algo_report_of t.top_k algo a)
  in
  { events = t.events; spans_open = Hashtbl.length t.open_spans; violations = t.violations; algos }

(* ---- net report -------------------------------------------------------- *)

type kind_stat = { k_kind : string; k_count : int; k_lat_mean_ms : float; k_lat_max_ms : float }
type class_stat = { c_class : string; c_msgs : int; c_bytes : int; c_byte_share : float }
type band_node = { b_node : int; b_msgs : int; b_bytes : int; b_byte_share : float }

type net_report = {
  n_events : int;
  n_violations : int;
  n_msgs : int;
  n_roots : int;
  n_drops_dead : int;
  n_drops_loss : int;
  n_depth_mean : float;
  n_depth_max : float;
  n_kinds : kind_stat list;
  n_lat_hist : Stats.Histogram.t;
  n_classes : class_stat list;
  n_nodes : int;
  n_senders : int;
  n_gini : float;
  n_imbalance : float;
  n_top : band_node list;
}

let net_report t =
  match t.net with
  | None -> None
  | Some n ->
      let msgs = Array.fold_left ( + ) 0 n.kind_counts in
      let total_bytes = Array.fold_left ( + ) 0 n.class_bytes in
      let kinds =
        List.filter_map
          (fun k ->
            let i = Netspan.kind_index k in
            let c = n.kind_counts.(i) in
            if c = 0 then None
            else
              Some
                {
                  k_kind = Netspan.kind_name k;
                  k_count = c;
                  k_lat_mean_ms = Stats.Summary.mean n.kind_lat.(i);
                  k_lat_max_ms = Stats.Summary.max_value n.kind_lat.(i);
                })
          Netspan.all_kinds
      in
      let classes =
        List.init (Array.length class_names) (fun c ->
            {
              c_class = class_names.(c);
              c_msgs = n.class_msgs.(c);
              c_bytes = n.class_bytes.(c);
              c_byte_share =
                (if total_bytes > 0 then
                   float_of_int n.class_bytes.(c) /. float_of_int total_bytes
                 else 0.0);
            })
      in
      (* Bandwidth distribution over every node seen as sender or receiver:
         silent receivers count as zeros, same convention as the forwarding
         hotspots of the lookup report. *)
      let bytes_of node = Option.value ~default:0 (Imap.find_opt node n.node_bytes) in
      let counts =
        Iset.elements n.nnodes |> List.map (fun nd -> float_of_int (bytes_of nd)) |> Array.of_list
      in
      let nodes = Array.length counts in
      let max_b = Array.fold_left Float.max 0.0 counts in
      let mean_b = if nodes > 0 then float_of_int total_bytes /. float_of_int nodes else 0.0 in
      let top =
        Imap.bindings n.node_bytes
        |> List.sort (fun (n1, b1) (n2, b2) ->
               match compare b2 b1 with 0 -> compare n1 n2 | c -> c)
        |> List.filteri (fun i _ -> i < t.top_k)
        |> List.map (fun (node, bytes) ->
               {
                 b_node = node;
                 b_msgs = Option.value ~default:0 (Imap.find_opt node n.node_msgs);
                 b_bytes = bytes;
                 b_byte_share =
                   (if total_bytes > 0 then float_of_int bytes /. float_of_int total_bytes
                    else 0.0);
               })
      in
      Some
        {
          n_events = t.events;
          n_violations = t.violations;
          n_msgs = msgs;
          n_roots = n.nroots;
          n_drops_dead = n.ndrops_dead;
          n_drops_loss = n.ndrops_loss;
          n_depth_mean = Stats.Summary.mean n.depth_sum;
          n_depth_max = (if msgs > 0 then Stats.Summary.max_value n.depth_sum else 0.0);
          n_kinds = kinds;
          n_lat_hist = n.nlat_hist;
          n_classes = classes;
          n_nodes = nodes;
          n_senders = Imap.cardinal n.node_msgs;
          n_gini = gini_of counts;
          n_imbalance = (if mean_b > 0.0 then max_b /. mean_b else 0.0);
          n_top = top;
        }

(* ---- text rendering ---------------------------------------------------- *)

let fmt_f x = Printf.sprintf "%.3f" x
let fmt_pct x = Printf.sprintf "%.1f%%" (x *. 100.0)

let report_text r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "events: %d  open spans: %d  violations: %d\n" r.events r.spans_open
       r.violations);
  let summary = Stats.Text_table.create [ "algo"; "lookups"; "hops mean"; "hops max"; "lat mean ms"; "lat max ms" ] in
  List.iter
    (fun ar ->
      Stats.Text_table.add_row summary
        [
          ar.algo;
          string_of_int ar.lookups;
          fmt_f ar.hops_mean;
          Printf.sprintf "%.0f" ar.hops_max;
          fmt_f ar.latency_mean_ms;
          fmt_f ar.latency_max_ms;
        ])
    r.algos;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Stats.Text_table.render summary);
  List.iter
    (fun ar ->
      if ar.layers <> [] then begin
        let tbl =
          Stats.Text_table.create [ "layer"; "hops"; "hop share"; "latency ms"; "lat share" ]
        in
        List.iter
          (fun ls ->
            Stats.Text_table.add_row tbl
              [
                string_of_int ls.layer;
                string_of_int ls.l_hops;
                fmt_pct ls.hop_share;
                fmt_f ls.l_latency_ms;
                fmt_pct ls.latency_share;
              ])
          ar.layers;
        Buffer.add_string buf (Printf.sprintf "\n%s: per-layer attribution\n" ar.algo);
        Buffer.add_string buf (Stats.Text_table.render tbl)
      end;
      if ar.finished_at <> [] then begin
        let tbl = Stats.Text_table.create [ "finished at layer"; "lookups"; "share" ] in
        List.iter
          (fun (layer, n) ->
            Stats.Text_table.add_row tbl
              [
                string_of_int layer;
                string_of_int n;
                fmt_pct (if ar.lookups > 0 then float_of_int n /. float_of_int ar.lookups else 0.0);
              ])
          ar.finished_at;
        Buffer.add_string buf (Printf.sprintf "\n%s: ring residency\n" ar.algo);
        Buffer.add_string buf (Stats.Text_table.render tbl)
      end;
      if has_recover ar then
        Buffer.add_string buf
          (Printf.sprintf
             "\n%s: recovery (retries %d, fallbacks %d, layer escapes %d, penalty %s ms)\n"
             ar.algo ar.recover.retries ar.recover.fallbacks ar.recover.layer_escapes
             (fmt_f ar.recover.penalty_ms));
      if ar.hotspots <> [] then begin
        let tbl = Stats.Text_table.create [ "node"; "forwards"; "share of hops" ] in
        List.iter
          (fun h ->
            Stats.Text_table.add_row tbl
              [ string_of_int h.node; string_of_int h.forwards; fmt_pct h.fwd_share ])
          ar.hotspots;
        Buffer.add_string buf
          (Printf.sprintf "\n%s: forwarding hotspots (nodes %d, forwarders %d, gini %s, imbalance %s)\n"
             ar.algo ar.nodes_seen ar.forwarders (fmt_f ar.gini) (fmt_f ar.imbalance));
        Buffer.add_string buf (Stats.Text_table.render tbl)
      end)
    r.algos;
  Buffer.contents buf

let net_report_text r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "net events: %d  violations: %d\n" r.n_events r.n_violations);
  Buffer.add_string buf
    (Printf.sprintf
       "msgs: %d  roots: %d  depth mean %s max %.0f  drops: %d dead, %d loss\n" r.n_msgs
       r.n_roots (fmt_f r.n_depth_mean) r.n_depth_max r.n_drops_dead r.n_drops_loss);
  if r.n_kinds <> [] then begin
    let tbl = Stats.Text_table.create [ "kind"; "msgs"; "lat mean ms"; "lat max ms" ] in
    List.iter
      (fun k ->
        Stats.Text_table.add_row tbl
          [ k.k_kind; string_of_int k.k_count; fmt_f k.k_lat_mean_ms; fmt_f k.k_lat_max_ms ])
      r.n_kinds;
    Buffer.add_string buf "\nper-kind traffic\n";
    Buffer.add_string buf (Stats.Text_table.render tbl)
  end;
  begin
    let tbl = Stats.Text_table.create [ "class"; "msgs"; "bytes"; "byte share" ] in
    List.iter
      (fun c ->
        Stats.Text_table.add_row tbl
          [ c.c_class; string_of_int c.c_msgs; string_of_int c.c_bytes; fmt_pct c.c_byte_share ])
      r.n_classes;
    Buffer.add_string buf "\ntraffic classes (attributed by causal root)\n";
    Buffer.add_string buf (Stats.Text_table.render tbl)
  end;
  if r.n_top <> [] then begin
    let tbl = Stats.Text_table.create [ "node"; "msgs"; "bytes"; "byte share" ] in
    List.iter
      (fun b ->
        Stats.Text_table.add_row tbl
          [ string_of_int b.b_node; string_of_int b.b_msgs; string_of_int b.b_bytes;
            fmt_pct b.b_byte_share ])
      r.n_top;
    Buffer.add_string buf
      (Printf.sprintf "\nbandwidth hotspots (nodes %d, senders %d, gini %s, imbalance %s)\n"
         r.n_nodes r.n_senders (fmt_f r.n_gini) (fmt_f r.n_imbalance));
    Buffer.add_string buf (Stats.Text_table.render tbl)
  end;
  Buffer.contents buf

(* ---- JSON rendering ---------------------------------------------------- *)

let hist_json h =
  let buf = Buffer.create 128 in
  Buffer.add_char buf '[';
  let first = ref true in
  Array.iteri
    (fun i c ->
      if c > 0 then begin
        if not !first then Buffer.add_char buf ',';
        first := false;
        Buffer.add_string buf
          (Printf.sprintf "[%s,%d]" (Jsonu.number (Stats.Histogram.bin_lo h i)) c)
      end)
    (Stats.Histogram.counts h);
  Buffer.add_char buf ']';
  Buffer.contents buf

let report_json r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf {|{"schema":"hieras-trace-report","events":%d,"spans_open":%d,"violations":%d,"algos":{|}
       r.events r.spans_open r.violations);
  List.iteri
    (fun i ar ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf {|"%s":{|} (Jsonu.escape ar.algo));
      Buffer.add_string buf
        (Printf.sprintf
           {|"lookups":%d,"hops":{"mean":%s,"max":%s,"pdf":%s},"latency_ms":{"mean":%s,"max":%s,"hist":%s}|}
           ar.lookups (Jsonu.number ar.hops_mean) (Jsonu.number ar.hops_max)
           (hist_json ar.hop_hist)
           (Jsonu.number ar.latency_mean_ms)
           (Jsonu.number ar.latency_max_ms)
           (hist_json ar.latency_hist));
      Buffer.add_string buf {|,"layers":[|};
      List.iteri
        (fun j ls ->
          if j > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf
            (Printf.sprintf
               {|{"layer":%d,"hops":%d,"hop_share":%s,"latency_ms":%s,"latency_share":%s}|}
               ls.layer ls.l_hops (Jsonu.number ls.hop_share) (Jsonu.number ls.l_latency_ms)
               (Jsonu.number ls.latency_share)))
        ar.layers;
      Buffer.add_string buf {|],"finished_at":[|};
      List.iteri
        (fun j (layer, n) ->
          if j > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (Printf.sprintf "[%d,%d]" layer n))
        ar.finished_at;
      Buffer.add_string buf
        (Printf.sprintf {|],"forwarding":{"nodes":%d,"forwarders":%d,"gini":%s,"imbalance":%s,"top":[|}
           ar.nodes_seen ar.forwarders (Jsonu.number ar.gini) (Jsonu.number ar.imbalance));
      List.iteri
        (fun j h ->
          if j > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf
            (Printf.sprintf "[%d,%d,%s]" h.node h.forwards (Jsonu.number h.fwd_share)))
        ar.hotspots;
      Buffer.add_string buf "]}";
      if has_recover ar then
        Buffer.add_string buf
          (Printf.sprintf
             {|,"recover":{"retries":%d,"fallbacks":%d,"layer_escapes":%d,"penalty_ms":%s}|}
             ar.recover.retries ar.recover.fallbacks ar.recover.layer_escapes
             (Jsonu.number ar.recover.penalty_ms));
      Buffer.add_char buf '}')
    r.algos;
  Buffer.add_string buf "}}";
  Buffer.contents buf

let net_report_json r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       {|{"schema":"hieras-netspan","events":%d,"violations":%d,"msgs":%d,"roots":%d,"drops":{"dead":%d,"loss":%d},"depth":{"mean":%s,"max":%s}|}
       r.n_events r.n_violations r.n_msgs r.n_roots r.n_drops_dead r.n_drops_loss
       (Jsonu.number r.n_depth_mean) (Jsonu.number r.n_depth_max));
  Buffer.add_string buf {|,"kinds":{|};
  List.iteri
    (fun i k ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf {|"%s":{"count":%d,"lat_mean_ms":%s,"lat_max_ms":%s}|}
           (Jsonu.escape k.k_kind) k.k_count (Jsonu.number k.k_lat_mean_ms)
           (Jsonu.number k.k_lat_max_ms)))
    r.n_kinds;
  Buffer.add_string buf (Printf.sprintf {|},"latency_ms_hist":%s,"classes":{|} (hist_json r.n_lat_hist));
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf {|"%s":{"msgs":%d,"bytes":%d,"byte_share":%s}|} c.c_class c.c_msgs
           c.c_bytes (Jsonu.number c.c_byte_share)))
    r.n_classes;
  Buffer.add_string buf
    (Printf.sprintf {|},"bandwidth":{"nodes":%d,"senders":%d,"gini":%s,"imbalance":%s,"top":[|}
       r.n_nodes r.n_senders (Jsonu.number r.n_gini) (Jsonu.number r.n_imbalance));
  List.iteri
    (fun i b ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "[%d,%d,%d,%s]" b.b_node b.b_msgs b.b_bytes (Jsonu.number b.b_byte_share)))
    r.n_top;
  Buffer.add_string buf "]}}";
  Buffer.contents buf

(* ---- compare mode ------------------------------------------------------ *)

type cmp_row = { metric : string; base : float; cand : float; delta : float }
type comparison = { kind : string; threshold : float; rows : cmp_row list; regressions : cmp_row list }

let delta_of base cand =
  if base = 0.0 then if cand = 0.0 then 0.0 else infinity else (cand -. base) /. base

(* Flatten a parsed report/bench JSON into (metric, value) pairs; comparing
   two files is then a join on metric name. *)
let metrics_of_trace_report j =
  let num path v acc = match Jsonu.to_float v with Some f -> (path, f) :: acc | None -> acc in
  let acc = match Jsonu.member "violations" j with Some v -> num "violations" v [] | None -> [] in
  let acc =
    match Jsonu.member "algos" j with
    | Some (Jsonu.Obj algos) ->
        List.fold_left
          (fun acc (algo, aj) ->
            let pick acc names =
              List.fold_left
                (fun acc (label, path) ->
                  let rec dig j = function
                    | [] -> Some j
                    | k :: rest -> Option.bind (Jsonu.member k j) (fun v -> dig v rest)
                  in
                  match dig aj path with
                  | Some v -> num (algo ^ "." ^ label) v acc
                  | None -> acc)
                acc names
            in
            pick acc
              [
                ("hops.mean", [ "hops"; "mean" ]);
                ("latency_ms.mean", [ "latency_ms"; "mean" ]);
                ("latency_ms.max", [ "latency_ms"; "max" ]);
                ("forwarding.gini", [ "forwarding"; "gini" ]);
                ("recover.retries", [ "recover"; "retries" ]);
                ("recover.fallbacks", [ "recover"; "fallbacks" ]);
                ("recover.layer_escapes", [ "recover"; "layer_escapes" ]);
                ("recover.penalty_ms", [ "recover"; "penalty_ms" ]);
              ])
          acc algos
    | _ -> acc
  in
  List.rev acc

let metrics_of_bench j =
  let acc =
    match Jsonu.member "micro" j with
    | Some (Jsonu.Arr rows) ->
        List.fold_left
          (fun acc row ->
            match (Jsonu.member "name" row, Jsonu.member "ns_per_op" row) with
            | Some name, Some v -> (
                match (Jsonu.to_string name, Jsonu.to_float v) with
                | Some n, Some f -> (("micro." ^ n ^ ".ns_per_op"), f) :: acc
                | _ -> acc)
            | _ -> acc)
          [] rows
    | _ -> []
  in
  let acc =
    match Jsonu.member "figures" j with
    | Some (Jsonu.Arr rows) ->
        List.fold_left
          (fun acc row ->
            match Option.bind (Jsonu.member "id" row) Jsonu.to_string with
            | None -> acc
            | Some n ->
                List.fold_left
                  (fun acc field ->
                    match Option.bind (Jsonu.member field row) Jsonu.to_float with
                    | Some f -> (("figure." ^ n ^ "." ^ field), f) :: acc
                    | None -> acc)
                  acc
                  [ "seconds"; "minor_words"; "major_words"; "top_heap_words" ])
          acc rows
    | _ -> acc
  in
  (* packed-network footprint gates like any other metric; the whole-run GC
     totals and peak_rss_kb stay informational — the totals include the
     bechamel section (iteration counts are time-dependent) and RSS is
     machine-dependent *)
  let acc =
    match Jsonu.member "memory" j with
    | Some mem ->
        List.fold_left
          (fun acc field ->
            match Option.bind (Jsonu.member field mem) Jsonu.to_float with
            | Some f -> (("memory." ^ field), f) :: acc
            | None -> acc)
          acc
          [ "chord_bytes_resident"; "hieras_bytes_resident" ]
    | None -> acc
  in
  List.rev acc

(* Soak reports compare per cell; every extracted metric is lower-is-better
   (failure rates rather than success rates), matching delta_of. *)
let metrics_of_soak j =
  match Jsonu.member "cells" j with
  | Some (Jsonu.Arr cells) ->
      List.concat_map
        (fun cell ->
          match (Jsonu.member "algo" cell, Jsonu.member "factor" cell) with
          | Some algo, Some factor -> (
              match (Jsonu.to_string algo, Jsonu.to_float factor) with
              | Some algo, Some factor ->
                  let prefix = Printf.sprintf "soak.%s.x%s" algo (Jsonu.float_repr factor) in
                  let num name =
                    Option.bind (Jsonu.member name cell) Jsonu.to_float
                  in
                  let direct =
                    List.filter_map
                      (fun name ->
                        Option.map (fun v -> (prefix ^ "." ^ name, v)) (num name))
                      [ "messages_per_s"; "maint_ops_per_s"; "mean_convergence_ms" ]
                  in
                  let failure_rate ~ok ~total name =
                    match (num ok, num total) with
                    | Some ok, Some total when total > 0.0 ->
                        [ (prefix ^ "." ^ name, 1.0 -. (ok /. total)) ]
                    | _ -> []
                  in
                  direct
                  @ failure_rate ~ok:"lookups_ok" ~total:"lookups_issued"
                      "lookup_failure_rate"
                  @ failure_rate ~ok:"ring_ok" ~total:"ring_checks" "ring_bad_rate"
              | _ -> [])
          | _ -> [])
        cells
  | _ -> []

(* Scale runs compare on the deterministic core only — hop statistics, arena
   segment counts, resident bytes, agreement rates. Wall clock, GC and RSS
   never enter (machine-dependent); a scale-bench artifact is compared
   through its embedded ["results"] object. *)
let metrics_of_scale j =
  let j = match Jsonu.member "results" j with Some r -> r | None -> j in
  let num path label acc =
    let rec dig v = function
      | [] -> Jsonu.to_float v
      | k :: rest -> Option.bind (Jsonu.member k v) (fun v -> dig v rest)
    in
    match dig j path with Some f -> (label, f) :: acc | None -> acc
  in
  let acc =
    List.fold_left
      (fun acc algo ->
        List.fold_left
          (fun acc field ->
            num [ algo; field ] (Printf.sprintf "scale.%s.%s" algo field) acc)
          acc
          [ "hops_mean"; "hops_max"; "segments"; "bytes_resident" ])
      [] [ "chord"; "hieras" ]
  in
  let acc =
    match
      ( Option.bind (Jsonu.member "dest_match" j) Jsonu.to_float,
        Option.bind (Jsonu.member "lookups" j) Jsonu.to_float )
    with
    | Some m, Some l when l > 0.0 -> ("scale.dest_mismatch_rate", 1.0 -. (m /. l)) :: acc
    | _ -> acc
  in
  let acc = num [ "cross"; "mismatches" ] "scale.cross.mismatches" acc in
  List.rev acc

(* Tournament matrices compare per contestant: baseline means and stretch,
   plus failure rates and recovery penalty under each fault schedule — all
   lower-is-better, so the generic threshold logic applies unchanged. *)
let metrics_of_tournament j =
  match Jsonu.member "contestants" j with
  | Some (Jsonu.Arr entries) ->
      let lookups =
        Option.bind (Jsonu.member "requests" j) Jsonu.to_float |> Option.value ~default:0.0
      in
      List.concat_map
        (fun e ->
          match Option.bind (Jsonu.member "algo" e) Jsonu.to_string with
          | None -> []
          | Some algo ->
              let prefix = "tournament." ^ algo in
              let num k = Option.bind (Jsonu.member k e) Jsonu.to_float in
              let direct =
                List.filter_map
                  (fun name -> Option.map (fun v -> (prefix ^ "." ^ name, v)) (num name))
                  [ "hops_mean"; "latency_mean"; "stretch" ]
              in
              let fault name =
                match Jsonu.member name e with
                | Some f ->
                    let fnum k = Option.bind (Jsonu.member k f) Jsonu.to_float in
                    let rate =
                      match fnum "succeeded" with
                      | Some ok when lookups > 0.0 ->
                          [ (Printf.sprintf "%s.%s.failure_rate" prefix name, 1.0 -. (ok /. lookups)) ]
                      | _ -> []
                    in
                    let penalty =
                      match fnum "penalty_ms" with
                      | Some p -> [ (Printf.sprintf "%s.%s.penalty_ms" prefix name, p) ]
                      | None -> []
                    in
                    rate @ penalty
                | None -> []
              in
              direct @ fault "crash" @ fault "outage")
        entries
  | _ -> []

(* Netspan reports gate on maintenance traffic: per-kind message counts and
   class byte shares are the "how much does upkeep cost" metrics — a change
   that makes stabilization chattier shows up as a count regression at equal
   run length. Everything extracted is lower-is-better. *)
let metrics_of_netspan j =
  let num label path acc =
    let rec dig v = function
      | [] -> Jsonu.to_float v
      | k :: rest -> Option.bind (Jsonu.member k v) (fun v -> dig v rest)
    in
    match dig j path with Some f -> (label, f) :: acc | None -> acc
  in
  let acc = num "net.violations" [ "violations" ] [] in
  let acc = num "net.drops.dead" [ "drops"; "dead" ] acc in
  let acc = num "net.drops.loss" [ "drops"; "loss" ] acc in
  let acc = num "net.depth.mean" [ "depth"; "mean" ] acc in
  let acc = num "net.bandwidth.gini" [ "bandwidth"; "gini" ] acc in
  let acc = num "net.bandwidth.imbalance" [ "bandwidth"; "imbalance" ] acc in
  let acc =
    List.fold_left
      (fun acc cls ->
        num (Printf.sprintf "net.classes.%s.byte_share" cls) [ "classes"; cls; "byte_share" ] acc)
      acc
      [ "maint"; "lookup"; "join"; "store"; "other" ]
  in
  let acc =
    match Jsonu.member "kinds" j with
    | Some (Jsonu.Obj kinds) ->
        List.fold_left
          (fun acc (kname, kj) ->
            match Option.bind (Jsonu.member "count" kj) Jsonu.to_float with
            | Some f -> (Printf.sprintf "net.kinds.%s.count" kname, f) :: acc
            | None -> acc)
          acc kinds
    | _ -> acc
  in
  List.rev acc

(* Cache runs compare per cell, keyed by algo × replication factor × zipf
   skew. Unavailability is the headline gate (an acknowledged object that a
   get cannot reach is the regression the storage layer exists to prevent);
   miss rate and lookup latency ride along. All lower-is-better. *)
let metrics_of_cache j =
  match Jsonu.member "cells" j with
  | Some (Jsonu.Arr cells) ->
      List.concat_map
        (fun cell ->
          match
            ( Option.bind (Jsonu.member "algo" cell) Jsonu.to_string,
              Option.bind (Jsonu.member "replication" cell) Jsonu.to_float,
              Option.bind (Jsonu.member "alpha" cell) Jsonu.to_float )
          with
          | Some algo, Some r, Some alpha ->
              let prefix =
                Printf.sprintf "cache.%s.r%d.a%s" algo (int_of_float r) (Jsonu.float_repr alpha)
              in
              let num name = Option.bind (Jsonu.member name cell) Jsonu.to_float in
              let direct =
                List.filter_map
                  (fun name -> Option.map (fun v -> (prefix ^ "." ^ name, v)) (num name))
                  [ "latency_mean_ms" ]
              in
              let failure_rate ~ok ~total name =
                match (num ok, num total) with
                | Some ok, Some total when total > 0.0 ->
                    [ (prefix ^ "." ^ name, 1.0 -. (ok /. total)) ]
                | _ -> []
              in
              direct
              @ failure_rate ~ok:"served" ~total:"requests" "unavailability"
              @ failure_rate ~ok:"hits" ~total:"requests" "miss_rate"
              @ failure_rate ~ok:"puts_acked" ~total:"puts" "put_failure_rate"
          | _ -> [])
        cells
  | _ -> []

let classify j =
  match Jsonu.member "schema" j with
  | Some (Jsonu.Str "hieras-trace-report") -> Ok "trace-report"
  | Some (Jsonu.Str "hieras-netspan") -> Ok "netspan"
  | Some (Jsonu.Str "hieras-soak") -> Ok "soak"
  | Some (Jsonu.Str "hieras-cache") -> Ok "cache"
  | Some (Jsonu.Str "hieras-scale") | Some (Jsonu.Str "hieras-scale-bench") -> Ok "scale"
  | Some (Jsonu.Str "hieras-tournament") -> Ok "tournament"
  | _ -> if Jsonu.member "micro" j <> None then Ok "bench" else Error "unrecognised report"

let load_json path =
  match In_channel.with_open_bin path In_channel.input_all |> Jsonu.parse with
  | Ok j -> Ok j
  | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
  | exception Sys_error msg -> Error msg

let compare_files ~base ~cand ~threshold =
  match (load_json base, load_json cand) with
  | Error e, _ | _, Error e -> Error e
  | Ok bj, Ok cj -> (
      match (classify bj, classify cj) with
      | Error e, _ -> Error (Printf.sprintf "%s: %s" base e)
      | _, Error e -> Error (Printf.sprintf "%s: %s" cand e)
      | Ok bk, Ok ck when bk <> ck ->
          Error (Printf.sprintf "cannot compare a %s against a %s" bk ck)
      | Ok kind, Ok _ ->
          let extract =
            match kind with
            | "bench" -> metrics_of_bench
            | "soak" -> metrics_of_soak
            | "cache" -> metrics_of_cache
            | "scale" -> metrics_of_scale
            | "tournament" -> metrics_of_tournament
            | "netspan" -> metrics_of_netspan
            | _ -> metrics_of_trace_report
          in
          let bm = extract bj and cm = extract cj in
          let rows =
            List.filter_map
              (fun (metric, base) ->
                match List.assoc_opt metric cm with
                | Some cand -> Some { metric; base; cand; delta = delta_of base cand }
                | None -> None)
              bm
          in
          if rows = [] then Error "no common metrics to compare"
          else
            Ok
              {
                kind;
                threshold;
                rows;
                regressions = List.filter (fun r -> r.delta > threshold) rows;
              })

let comparison_text c =
  let tbl = Stats.Text_table.create [ "metric"; "base"; "candidate"; "delta"; "" ] in
  List.iter
    (fun r ->
      let flag = if r.delta > c.threshold then "REGRESSION" else "" in
      Stats.Text_table.add_row tbl
        [ r.metric; fmt_f r.base; fmt_f r.cand; fmt_pct r.delta; flag ])
    c.rows;
  Printf.sprintf "%s comparison (threshold %s)\n%s%d regression(s)\n" c.kind
    (fmt_pct c.threshold) (Stats.Text_table.render tbl) (List.length c.regressions)
