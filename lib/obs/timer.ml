(* Hierarchical phase profiler: a mutable tree of (name -> node) children,
   plus a stack of open spans. The clock is injected so the module has no
   OS dependency and tests can drive a fake, deterministic clock. *)

type tnode = {
  name : string;
  mutable count : int;
  mutable total_s : float;
  mutable children_rev : tnode list; (* newest first; reversed on read *)
}

type state = {
  clock : unit -> float;
  mutable roots_rev : tnode list;
  mutable stack : tnode list; (* innermost open span first *)
}

type t = Disabled | Enabled of state

let disabled = Disabled
let create ~clock = Enabled { clock; roots_rev = []; stack = [] }
let enabled = function Disabled -> false | Enabled _ -> true

let child_of st name =
  let siblings =
    match st.stack with [] -> st.roots_rev | parent :: _ -> parent.children_rev
  in
  match List.find_opt (fun c -> c.name = name) siblings with
  | Some c -> c
  | None ->
      let c = { name; count = 0; total_s = 0.0; children_rev = [] } in
      (match st.stack with
      | [] -> st.roots_rev <- c :: st.roots_rev
      | parent :: _ -> parent.children_rev <- c :: parent.children_rev);
      c

let span t name f =
  match t with
  | Disabled -> f ()
  | Enabled st ->
      let node = child_of st name in
      st.stack <- node :: st.stack;
      let t0 = st.clock () in
      Fun.protect
        ~finally:(fun () ->
          node.count <- node.count + 1;
          node.total_s <- node.total_s +. (st.clock () -. t0);
          match st.stack with
          | top :: rest when top == node -> st.stack <- rest
          | _ -> () (* unbalanced exit via an exception skipping frames *))
        f

(* ---- snapshots --------------------------------------------------------- *)

type node = { name : string; count : int; total_s : float; children : node list }

(* first-entry order = reverse of the newest-first sibling lists, so a
   single rev_map per level restores it *)
let rec freeze (tn : tnode) : node =
  { name = tn.name; count = tn.count; total_s = tn.total_s; children = List.rev_map freeze tn.children_rev }

let roots = function
  | Disabled -> []
  | Enabled st -> List.rev_map freeze st.roots_rev

let self_s n = Float.max 0.0 (n.total_s -. List.fold_left (fun a c -> a +. c.total_s) 0.0 n.children)

let folded t =
  let buf = Buffer.create 256 in
  let rec go path n =
    let path = if path = "" then n.name else path ^ ";" ^ n.name in
    Buffer.add_string buf
      (Printf.sprintf "%s %.0f\n" path (Float.round (self_s n *. 1e6)));
    List.iter (go path) n.children
  in
  List.iter (go "") (roots t);
  Buffer.contents buf

let to_text t =
  let buf = Buffer.create 256 in
  let rs = roots t in
  let grand = List.fold_left (fun a r -> a +. r.total_s) 0.0 rs in
  Buffer.add_string buf
    (Printf.sprintf "%-40s %7s %12s %12s %7s\n" "phase" "count" "total ms" "self ms" "share");
  let rec go depth n =
    let label = String.make (2 * depth) ' ' ^ n.name in
    let share = if grand > 0.0 then n.total_s /. grand *. 100.0 else 0.0 in
    Buffer.add_string buf
      (Printf.sprintf "%-40s %7d %12.1f %12.1f %6.1f%%\n" label n.count (n.total_s *. 1e3)
         (self_s n *. 1e3) share);
    List.iter (go (depth + 1)) n.children
  in
  List.iter (go 0) rs;
  Buffer.contents buf

let export_metrics ?(prefix = "timer") t reg =
  let rec go path n =
    let path = path ^ "." ^ n.name in
    Metrics.set (Metrics.gauge reg (path ^ ".total_ms")) (n.total_s *. 1e3);
    Metrics.set_counter (Metrics.counter reg (path ^ ".count")) n.count;
    List.iter (go path) n.children
  in
  List.iter (go prefix) (roots t)
