type rkind = Retry | Fallback | Layer_escape

type event =
  | Start of { lookup : int; algo : string; origin : int; key : string }
  | Hop of {
      lookup : int;
      seq : int;
      layer : int;
      from_node : int;
      to_node : int;
      latency_ms : float;
    }
  | Recover of {
      lookup : int;
      kind : rkind;
      layer : int;
      at_node : int;
      dead_node : int;
      delay_ms : float;
    }
  | End of {
      lookup : int;
      destination : int;
      hops : int;
      latency_ms : float;
      finished_at_layer : int;
    }

let rkind_name = function Retry -> "retry" | Fallback -> "fallback" | Layer_escape -> "layer_escape"

let rkind_of_name = function
  | "retry" -> Some Retry
  | "fallback" -> Some Fallback
  | "layer_escape" -> Some Layer_escape
  | _ -> None

type ring = { buf : event option array; cap : int; mutable head : int; mutable len : int }
type sink = Null | Ring of ring | Writer of (string -> unit)
type t = { sink : sink; sample : float; mutable next_id : int }

let check_sample sample =
  if sample < 0.0 || sample > 1.0 then invalid_arg "Trace: sample must be in [0, 1]"

let disabled = { sink = Null; sample = 1.0; next_id = 0 }

let ring ~capacity =
  if capacity < 1 then invalid_arg "Trace.ring: capacity must be >= 1";
  {
    sink = Ring { buf = Array.make capacity None; cap = capacity; head = 0; len = 0 };
    sample = 1.0;
    next_id = 0;
  }

let jsonl ?(sample = 1.0) write =
  check_sample sample;
  { sink = Writer write; sample; next_id = 0 }
let enabled t = match t.sink with Null -> false | Ring _ | Writer _ -> true

let event_to_json = function
  | Start { lookup; algo; origin; key } ->
      Printf.sprintf {|{"ev":"start","lookup":%d,"algo":"%s","origin":%d,"key":"%s"}|} lookup
        (Jsonu.escape algo) origin (Jsonu.escape key)
  | Hop { lookup; seq; layer; from_node; to_node; latency_ms } ->
      Printf.sprintf {|{"ev":"hop","lookup":%d,"seq":%d,"layer":%d,"from":%d,"to":%d,"lat_ms":%s}|}
        lookup seq layer from_node to_node (Jsonu.number latency_ms)
  | Recover { lookup; kind; layer; at_node; dead_node; delay_ms } ->
      Printf.sprintf
        {|{"ev":"recover","lookup":%d,"kind":"%s","layer":%d,"at":%d,"dead":%d,"delay_ms":%s}|}
        lookup (rkind_name kind) layer at_node dead_node (Jsonu.number delay_ms)
  | End { lookup; destination; hops; latency_ms; finished_at_layer } ->
      Printf.sprintf
        {|{"ev":"end","lookup":%d,"dest":%d,"hops":%d,"lat_ms":%s,"finished_at_layer":%d}|}
        lookup destination hops (Jsonu.number latency_ms) finished_at_layer

(* Sampling is keyed on the span id, which is allocated for every lookup
   whether or not its events are kept — so the sampled stream is a stable
   subset of the full one (same ids, Sampler.keep is pure). *)
let lookup_of = function
  | Start { lookup; _ } | Hop { lookup; _ } | Recover { lookup; _ } | End { lookup; _ } -> lookup

let emit t ev =
  match t.sink with
  | Null -> ()
  | _ when t.sample < 1.0 && not (Sampler.keep ~rate:t.sample (lookup_of ev)) -> ()
  | Writer w -> w (event_to_json ev ^ "\n")
  | Ring r ->
      r.buf.((r.head + r.len) mod r.cap) <- Some ev;
      if r.len < r.cap then r.len <- r.len + 1 else r.head <- (r.head + 1) mod r.cap

let start t ~algo ~origin ~key =
  match t.sink with
  | Null -> 0
  | _ ->
      let id = t.next_id in
      t.next_id <- id + 1;
      emit t (Start { lookup = id; algo; origin; key });
      id

let hop t ~lookup ~seq ~layer ~from_node ~to_node ~latency_ms =
  emit t (Hop { lookup; seq; layer; from_node; to_node; latency_ms })

let recover t ~lookup ~kind ~layer ~at_node ~dead_node ~delay_ms =
  emit t (Recover { lookup; kind; layer; at_node; dead_node; delay_ms })

let finish t ~lookup ~destination ~hops ~latency_ms ~finished_at_layer =
  emit t (End { lookup; destination; hops; latency_ms; finished_at_layer })

let events t =
  match t.sink with
  | Null | Writer _ -> []
  | Ring r -> List.init r.len (fun i -> Option.get r.buf.((r.head + i) mod r.cap))

let clear t =
  match t.sink with
  | Null | Writer _ -> ()
  | Ring r ->
      Array.fill r.buf 0 r.cap None;
      r.head <- 0;
      r.len <- 0
