(** Deterministic trace sampling.

    Sampling decisions must not depend on runtime state (worker count,
    arrival order, wall clock): a sampled trace has to be a stable subset
    of the full trace, byte-identical for any [--jobs]. The decision is
    therefore a pure function of the span id being sampled and the rate —
    an integer hash of the id compared against a fixed-point threshold.

    Used by {!Trace} ([?sample] on the sinks, keyed on the lookup id) and
    {!Netspan} (keyed on the {e root} span id, so a causal tree is kept or
    dropped as a whole and no sampled event ever references a missing
    parent). *)

val mix : int -> int
(** Avalanching integer hash (splitmix-style finalizer over OCaml's native
    63-bit integers): every input bit affects every output bit. The result
    is non-negative. Deterministic across runs and platforms with 63-bit
    native ints. *)

val keep : rate:float -> int -> bool
(** Pure sampling predicate: keep id [i] iff
    [mix i land 0x3FFF_FFFF < rate * 2^30]. [rate >= 1.0] keeps
    everything, [rate <= 0.0] keeps nothing. Monotone in [rate]: the set
    kept at a lower rate is a subset of the set kept at any higher rate —
    which is what makes a sampled trace a subset of the full one. *)
