(** Offline analytics over recorded observability artifacts.

    The tracer ({!Trace}) turns lookups into JSONL event streams; this
    module turns those streams back into answers — the per-layer latency
    attribution of the paper's Figures 4–7, hop/latency distributions,
    per-node forwarding hotspots and load imbalance, and ring-residency
    statistics — without re-running the experiment. It also diffs two
    analysis reports (or two [BENCH_*.json] performance snapshots) and
    flags regressions, which is what the CI perf gate runs.

    Everything is computed in one streaming pass ({!feed_line} /
    {!of_file} read line by line; the trace never resides in memory) and
    every rendering is deterministic: map iteration is sorted, floats
    print with the round-tripping shortest representation, so the JSON
    report of a fixed trace is byte-stable — pinned by
    [test/golden/report_ts64.json].

    The analyzer is also an auditor: for every span it re-derives the hop
    count and latency total from the hop events and checks them against
    the [End] event (and the seq/chain contiguity invariants of
    DESIGN.md §8); disagreements are counted in [violations] rather than
    silently averaged over. *)

(** {2 Streaming accumulation} *)

type t

val create : ?top_k:int -> unit -> t
(** [top_k] bounds the forwarding-hotspot list in the report
    (default 10). *)

val feed_event : t -> Trace.event -> unit
(** Accumulate one already-decoded event (ring-buffer replays, tests). *)

val feed_line : t -> string -> unit
(** Parse one JSONL line and accumulate it. Both event families are
    accepted: lookup-trace events ([ev] start/hop/recover/end, {!Trace})
    and message-span events ([ev] msg/drop, {!Netspan}); the report to
    render afterwards is {!report} for the former and {!net_report} for
    the latter. Blank lines are ignored. Raises [Failure] on a line that
    is not a well-formed event — a corrupt trace should fail loudly, not
    skew statistics. *)

val of_file : ?top_k:int -> string -> t
(** Stream a JSONL trace file through {!feed_line}. *)

(** {2 Reports} *)

type layer_stat = {
  layer : int;
  l_hops : int;  (** hops chosen by this layer's finger tables *)
  hop_share : float;
  l_latency_ms : float;
  latency_share : float;  (** shares each sum to 1.0 over the layers *)
}

type hotspot = { node : int; forwards : int; fwd_share : float }

type recover_stat = {
  retries : int;  (** timed-out contact attempts on dead nodes *)
  fallbacks : int;  (** dead preferred next hops replaced by a secondary *)
  layer_escapes : int;  (** HIERAS early climbs out of a partitioned ring *)
  penalty_ms : float;
      (** total recover [delay_ms] — the share of the algo's latency spent
          on timeouts and backoff rather than on overlay hops *)
}

type algo_report = {
  algo : string;
  lookups : int;
  hops_mean : float;
  hops_max : float;
  latency_mean_ms : float;
  latency_max_ms : float;
  hop_hist : Stats.Histogram.t;  (** unit bins, PDF of hops per lookup *)
  latency_hist : Stats.Histogram.t;  (** 25 ms bins over 0..2000 *)
  layers : layer_stat list;  (** ascending; [] when no hops at all *)
  finished_at : (int * int) list;
      (** (layer, lookups whose End reported finishing there), ascending *)
  nodes_seen : int;  (** distinct node ids in this algo's events *)
  forwarders : int;  (** nodes that forwarded (appeared as a hop source) *)
  gini : float;
      (** Gini coefficient of per-node forwarding counts over [nodes_seen]
          (0 = perfectly even, -> 1 = one node forwards everything) *)
  imbalance : float;  (** max / mean forwarding count over [nodes_seen] *)
  hotspots : hotspot list;  (** top-k by forwards, descending *)
  recover : recover_stat;
      (** failure-recovery totals from [Recover] events; all-zero for
          traces of the non-resilient routes *)
}

type report = {
  events : int;
  spans_open : int;  (** lookups with a Start but no End (truncated trace) *)
  violations : int;
      (** spans whose End disagreed with the replayed hops (count or
          latency), or whose hop stream broke seq/chain contiguity *)
  algos : algo_report list;  (** sorted by algo name *)
}

val report : t -> report

val report_text : report -> string
(** Human-readable rendering: one {!Stats.Text_table} per aspect
    (per-algo summary, per-layer attribution, ring residency, forwarding
    hotspots). *)

val report_json : report -> string
(** Deterministic single-line JSON (schema in DESIGN.md §9); histograms
    render as sparse [[bin_lo, count]] pairs. The per-algo ["recover"]
    object only appears when at least one recovery was counted, so
    reports over healthy traces are byte-identical to pre-resilience
    ones. *)

(** {2 Net (message-span) reports}

    The message-level stream of {!Netspan} analyzes into a different
    shape: per-RPC-kind traffic, per-node bandwidth attribution under the
    {!Netspan.wire_bytes} cost model, causal-tree depth, and a
    maintenance-versus-lookup byte split where every forwarding hop and
    reply is attributed to the {e root} kind of its causal tree. The
    analyzer also audits the stream — duplicate span ids (per ctx),
    parents that were never recorded (impossible under root-keyed
    sampling, so any occurrence is a producer bug), drops naming
    unknown spans, and declared ["bytes"] that are non-positive or
    inconsistent within a kind (the {!Netspan.wire_bytes} cost model is
    a function of the kind alone) all count into [violations]. Lines
    without a ["bytes"] field — pre-bytes-field traces — fall back to
    the analyzer's own cost model and are not audited. *)

type kind_stat = {
  k_kind : string;  (** {!Netspan.kind_name} *)
  k_count : int;
  k_lat_mean_ms : float;  (** link latency of this kind's messages *)
  k_lat_max_ms : float;
}

type class_stat = {
  c_class : string;  (** ["maint"], ["lookup"], ["join"], ["store"] or ["other"] *)
  c_msgs : int;
  c_bytes : int;  (** nominal wire bytes ({!Netspan.wire_bytes}) *)
  c_byte_share : float;  (** shares sum to 1 over the five classes *)
}

type band_node = { b_node : int; b_msgs : int; b_bytes : int; b_byte_share : float }

type net_report = {
  n_events : int;
  n_violations : int;
  n_msgs : int;  (** msg events (excludes drops) *)
  n_roots : int;  (** causal trees — parentless spans *)
  n_drops_dead : int;
  n_drops_loss : int;
  n_depth_mean : float;  (** mean causal depth over all messages *)
  n_depth_max : float;
  n_kinds : kind_stat list;  (** declaration order, zero-count kinds omitted *)
  n_lat_hist : Stats.Histogram.t;  (** 25 ms bins over 0..2000 *)
  n_classes : class_stat list;  (** maint, lookup, join, store, other — fixed order *)
  n_nodes : int;  (** nodes seen as sender or receiver *)
  n_senders : int;  (** nodes that sent at least one message *)
  n_gini : float;  (** of per-node sent bytes over [n_nodes] *)
  n_imbalance : float;  (** max / mean sent bytes over [n_nodes] *)
  n_top : band_node list;  (** top-k senders by bytes, descending *)
}

val net_report : t -> net_report option
(** [None] when no msg/drop event was fed (then use {!report}). *)

val net_report_text : net_report -> string

val net_report_json : net_report -> string
(** Deterministic single-line JSON, ["schema":"hieras-netspan"]
    (DESIGN.md §14). *)

(** {2 Compare mode} *)

type cmp_row = {
  metric : string;
  base : float;
  cand : float;
  delta : float;  (** (cand - base) / base; +inf when base = 0 < cand *)
}

type comparison = {
  kind : string;
      (** ["trace-report"], ["netspan"], ["bench"], ["soak"], ["cache"],
          ["scale"] or ["tournament"] *)
  threshold : float;
  rows : cmp_row list;  (** every metric present in both inputs *)
  regressions : cmp_row list;
      (** rows whose [delta] exceeds the threshold — all compared metrics
          are lower-is-better (latency, hops, ns/op, seconds, gini,
          violations) *)
}

val compare_files : base:string -> cand:string -> threshold:float -> (comparison, string) result
(** Load two JSON files and diff them. Both must be the same kind: trace
    reports ({!report_json} output, recognised by
    ["schema":"hieras-trace-report"]), soak results (recognised by
    ["schema":"hieras-soak"] — compared per cell on message/maintenance
    rates, mean convergence time, and lookup/ring {e failure} rates so
    every metric stays lower-is-better), bench snapshots ([BENCH_*.json],
    recognised by their ["micro"] array — compared on micro ns/op,
    per-figure seconds and GC words, and packed-network
    ["memory".*_bytes_resident]; whole-run GC totals and [peak_rss_kb]
    stay informational), or scale runs (["hieras-scale"] /
    ["hieras-scale-bench"] — compared on the deterministic core: hop
    statistics, segment counts, resident bytes and agreement rates,
    never wall clock or RSS), or tournament matrices
    (["hieras-tournament"] — compared per contestant on baseline
    hops/latency/stretch plus per-schedule lookup {e failure} rates and
    recovery penalty, all lower-is-better), or netspan reports
    (["hieras-netspan"] — compared on violations, drops, causal depth,
    bandwidth gini/imbalance, class byte shares and per-kind message
    counts: the maintenance-rate gate), or cache runs
    (["hieras-cache"] — compared per algo × replication × skew cell on
    unavailability, miss rate, put failure rate and lookup latency, all
    lower-is-better: the data-availability gate). *)

val comparison_text : comparison -> string
(** Aligned table of metric, base, candidate, delta — regressions
    flagged. *)
