(** Structured per-lookup tracing: span + hop events with pluggable sinks.

    A tracer is passed to the routing entry points ([Chord.Lookup.route],
    [Hieras.Hlookup.route]) as an optional argument; every lookup then emits
    one [Start] event, one [Hop] event per traversed overlay edge, and one
    [End] event carrying the final accounting. The per-hop stream is exactly
    the data the paper's Figures 4–7 aggregate — tracing exposes it as a
    machine-readable surface that golden-trace and invariant tests pin down.

    {2 Cost model}

    The {!disabled} tracer is the default everywhere. Instrumented code
    checks {!enabled} once per lookup and skips every event construction when
    it is false, so the disabled path costs one branch per hop and allocates
    nothing — the bench's lookup ns/op budget (< 2% overhead) depends on
    this. Tracers are single-domain objects; the parallel experiment runner
    keeps them out of worker loops.

    {2 Event stream invariants}

    For every traced lookup (enforced by [test/test_obs.ml]):
    - [Hop] events carry consecutive [seq] numbers starting at 0;
    - the hop chain is contiguous: [to_node] of hop [i] equals [from_node]
      of hop [i+1], the first [from_node] is the origin and the last
      [to_node] is the [End] event's [destination] (when there are hops);
    - [End.hops] is the hop count and [End.latency_ms] the sum of the hops'
      [latency_ms] {e plus} the [delay_ms] of every [Recover] event of the
      span, in emission order;
    - [Recover] events are contiguous with the hop chain: their [at_node] is
      the current chain position ([to_node] of the previous hop, or the
      origin before the first hop);
    - [layer] is 1 (the global ring; Chord hops are always layer 1) up to the
      HIERAS hierarchy depth. *)

type rkind = Retry | Fallback | Layer_escape
(** Failure-recovery actions of the resilient routing paths
    ([Chord.Lookup.route_resilient], [Hieras.Hlookup.route_resilient]):
    - [Retry]: a contact attempt on a dead node timed out (the [delay_ms]
      of the event is the timeout plus the exponential backoff wait charged
      to the lookup);
    - [Fallback]: the router abandoned a dead preferred next hop and picked
      a secondary candidate (next-best finger or successor-list entry);
    - [Layer_escape]: a HIERAS lower-ring loop found no live in-ring route
      and climbed to the next layer early. *)

type event =
  | Start of { lookup : int; algo : string; origin : int; key : string }
      (** [lookup] is a tracer-local sequential id; [key] is the target
          identifier in hex. *)
  | Hop of {
      lookup : int;
      seq : int;
      layer : int;  (** 1 = global ring, >= 2 = lower HIERAS rings *)
      from_node : int;
      to_node : int;
      latency_ms : float;
    }
  | Recover of {
      lookup : int;
      kind : rkind;
      layer : int;  (** layer whose routing state was being consulted *)
      at_node : int;  (** the node performing the recovery — the current hop position *)
      dead_node : int;  (** the contact that was found (or known) dead *)
      delay_ms : float;  (** latency charged to the lookup (0 for pure fallbacks) *)
    }
  | End of {
      lookup : int;
      destination : int;
      hops : int;
      latency_ms : float;
      finished_at_layer : int;  (** 1 for Chord; see [Hieras.Hlookup.result] *)
    }

type t

val disabled : t
(** The null sink: {!enabled} is [false], {!start} returns 0 without
    consuming an id, every emission is a no-op. *)

val ring : capacity:int -> t
(** In-memory ring buffer keeping the most recent [capacity] events —
    the test-suite and flight-recorder sink (never sampled: it is already
    bounded). Raises [Invalid_argument] if [capacity < 1]. *)

val jsonl : ?sample:float -> (string -> unit) -> t
(** Streaming JSONL sink: each event is rendered with {!event_to_json} and
    passed to the writer as one line terminated by ['\n']. Pass
    [output_string oc] for a file, [Buffer.add_string buf] for memory.

    [sample] (default 1) keeps the events of a deterministic subset of
    lookups: ids are allocated for {e every} lookup and the keep decision
    is {!Sampler.keep} on the id, so the sampled stream is a stable
    subset of the full trace — identical for any [--jobs], and identical
    across runs of the same seed. Raises [Invalid_argument] when outside
    [0, 1]. *)

val enabled : t -> bool

(** {2 Emission} *)

val start : t -> algo:string -> origin:int -> key:string -> int
(** Open a lookup span and return its id (0 on the disabled tracer). *)

val hop :
  t -> lookup:int -> seq:int -> layer:int -> from_node:int -> to_node:int -> latency_ms:float -> unit

val recover :
  t -> lookup:int -> kind:rkind -> layer:int -> at_node:int -> dead_node:int -> delay_ms:float -> unit

val rkind_name : rkind -> string
(** "retry", "fallback" or "layer_escape" — the JSON [kind] field. *)

val rkind_of_name : string -> rkind option

val finish :
  t -> lookup:int -> destination:int -> hops:int -> latency_ms:float -> finished_at_layer:int -> unit

val emit : t -> event -> unit

(** {2 Inspection} *)

val events : t -> event list
(** Ring sink: buffered events, oldest first. Other sinks: []. *)

val clear : t -> unit
(** Ring sink: drop buffered events (lookup ids keep counting). *)

val event_to_json : event -> string
(** One-line JSON rendering, no trailing newline. Fields: see DESIGN.md §8. *)
