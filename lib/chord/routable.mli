(** Chord as a {!Routing.S} substrate.

    The routing entry points delegate to {!Lookup} (same hop sequences, same
    trace bytes, same PR 5 resilience accounting — "chord" traces emitted
    through this module are byte-identical to the goldens); the {!Routing.BASE}
    primitives expose the greedy step, its fallback candidates and
    subset-restricted rings (member-sorted circle + restricted finger tables,
    the per-ring form of [Hnetwork]'s layer packs) so [Hieras.Make] can layer
    locality rings over it. *)

type t

val make : net:Network.t -> lat:Topology.Latency.t -> t
val network : t -> Network.t

include Routing.S with type t := t
