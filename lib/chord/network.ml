module Id = Hashid.Id

(* Packed struct-of-arrays representation (DESIGN.md §12). Node [i] is the
   i-th identifier in sorted order, so ring successor/predecessor are the
   implicit [(i ± 1) mod n] — and the successor list of [i] is the implicit
   run [i+1 .. i+r]: neither is materialized. All finger tables live in one
   shared arena: node [i]'s run-length segments are
   [f_exp/f_node.(f_off.(i) .. f_off.(i+1) - 1)]. *)
type t = {
  space : Id.space;
  ids : Id.t array; (* sorted ascending; node i has ids.(i) *)
  pre : int array; (* aligned Id.prefix_int column: one-load comparisons *)
  hosts : int array;
  succ_len : int; (* r = min succ_list_len (n-1) *)
  f_off : int array; (* n+1 segment offsets into the finger arena *)
  f_exp : Bytes.t; (* first exponent of each segment (bits <= 255) *)
  f_node : int array; (* finger node of each segment *)
}

let mk ~space ~ids ~hosts ~succ_list_len =
  let n = Array.length ids in
  if n = 0 then invalid_arg "Chord.Network: empty network";
  if Array.length hosts <> n then invalid_arg "Chord.Network: ids/hosts misaligned";
  (* sort peers by identifier, keeping host alignment *)
  let order = Array.init n (fun i -> i) in
  Array.sort (fun a b -> Id.compare ids.(a) ids.(b)) order;
  let sorted_ids = Array.map (fun i -> ids.(i)) order in
  let sorted_hosts = Array.map (fun i -> hosts.(i)) order in
  for i = 1 to n - 1 do
    if Id.equal sorted_ids.(i) sorted_ids.(i - 1) then
      invalid_arg "Chord.Network: duplicate identifiers"
  done;
  let member_nodes = Array.init n (fun i -> i) in
  let pre = Array.map Id.prefix_int sorted_ids in
  let f_off = Array.make (n + 1) 0 in
  let exp_buf = Buffer.create (n * 12) in
  let node_buf = ref (Array.make (max 16 (n * 12)) 0) in
  let seg_count = ref 0 in
  let push e v =
    if !seg_count = Array.length !node_buf then begin
      let grown = Array.make (2 * !seg_count) 0 in
      Array.blit !node_buf 0 grown 0 !seg_count;
      node_buf := grown
    end;
    Buffer.add_char exp_buf (Char.unsafe_chr e);
    !node_buf.(!seg_count) <- v;
    incr seg_count
  in
  for i = 0 to n - 1 do
    f_off.(i) <- !seg_count;
    Finger_table.pack space ~owner_id:sorted_ids.(i) ~member_ids:sorted_ids ~member_pre:pre
      ~member_nodes ~push ()
  done;
  f_off.(n) <- !seg_count;
  {
    space;
    ids = sorted_ids;
    pre;
    hosts = sorted_hosts;
    succ_len = min succ_list_len (n - 1);
    f_off;
    f_exp = Buffer.to_bytes exp_buf;
    f_node = Array.sub !node_buf 0 !seg_count;
  }

let of_ids ~space ~ids ~hosts ?(succ_list_len = 8) () = mk ~space ~ids ~hosts ~succ_list_len

let build ~space ~hosts ?(succ_list_len = 8) ?(salt = "chord-peer") () =
  let n = Array.length hosts in
  let seen = Hashtbl.create (2 * n) in
  let ids =
    Array.init n (fun i ->
        (* regenerate on collision: only reachable in tiny test spaces *)
        let rec fresh attempt =
          let id = Id.of_hash space (Printf.sprintf "%s:%d:%d" salt i attempt) in
          if Hashtbl.mem seen id then fresh (attempt + 1)
          else begin
            Hashtbl.replace seen id ();
            id
          end
        in
        fresh 0)
  in
  mk ~space ~ids ~hosts ~succ_list_len

let space t = t.space
let size t = Array.length t.ids
let id t i = t.ids.(i)
let host t i = t.hosts.(i)
let successor t i = (i + 1) mod Array.length t.ids
let predecessor t i = (i + Array.length t.ids - 1) mod Array.length t.ids
let succ_list_len t = t.succ_len

let succ_list_nth t i k =
  if k < 0 || k >= t.succ_len then invalid_arg "Chord.Network.succ_list_nth";
  (i + k + 1) mod Array.length t.ids

let successor_list t i =
  let n = Array.length t.ids in
  Array.init t.succ_len (fun k -> (i + k + 1) mod n)

let finger_table t i =
  let lo = t.f_off.(i) and hi = t.f_off.(i + 1) in
  let exps = Array.init (hi - lo) (fun k -> Char.code (Bytes.get t.f_exp (lo + k))) in
  let nodes = Array.sub t.f_node lo (hi - lo) in
  Finger_table.of_segments ~owner:i ~bits:(Id.bits t.space) ~exps ~nodes

(* Scan an arena slice for the farthest finger strictly inside (self, key) —
   identical to [Finger_table.closest_preceding_arena] over this network's
   ids, but the circular-interval class is computed once per call and every
   membership test resolves through the prefix column (one integer load; the
   full string compare runs only on a 56-bit prefix tie). Exposed so the
   HIERAS layer arenas (whose nodes index this same network) share it. *)
let closest_preceding_in_arena t ~nodes ~lo ~hi ~self ~key =
  let ids = t.ids and pre = t.pre in
  let key_pre = Id.prefix_int key in
  let cmp_key j =
    let p = Array.unsafe_get pre j in
    if p < key_pre then -1
    else if p > key_pre then 1
    else Id.compare (Array.unsafe_get ids j) key
  in
  let self_pre = Array.unsafe_get pre self in
  let above_self j =
    let p = Array.unsafe_get pre j in
    if p <> self_pre then p > self_pre
    else Id.compare (Array.unsafe_get ids j) (Array.unsafe_get ids self) > 0
  in
  let c_lo = cmp_key self in
  let rec go k =
    if k < lo then -1
    else
      let j : int = Array.unsafe_get nodes k in
      let inside =
        if c_lo < 0 then above_self j && cmp_key j < 0
        else if c_lo > 0 then above_self j || cmp_key j < 0
        else j <> self (* degenerate self = key: the whole circle but self *)
      in
      if inside then j else go (k - 1)
  in
  go (hi - 1)

let closest_preceding_finger t i ~key =
  closest_preceding_in_arena t ~nodes:t.f_node ~lo:t.f_off.(i) ~hi:t.f_off.(i + 1) ~self:i
    ~key

let preceding_candidates t i ~key =
  Finger_table.preceding_candidates_arena ~nodes:t.f_node ~lo:t.f_off.(i)
    ~hi:t.f_off.(i + 1)
    ~id_of:(fun j -> t.ids.(j))
    ~self:t.ids.(i) ~key

let successor_of_key t key =
  let n = Array.length t.ids in
  let key_pre = Id.prefix_int key in
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      let p = Array.unsafe_get t.pre mid in
      let c =
        if p < key_pre then -1
        else if p > key_pre then 1
        else Id.compare (Array.unsafe_get t.ids mid) key
      in
      if c < 0 then search (mid + 1) hi else search lo mid
  in
  let pos = search 0 n in
  if pos = n then 0 else pos

let find_node t key =
  let pos = successor_of_key t key in
  if Id.equal t.ids.(pos) key then Some pos else None

let total_finger_segments t = Array.length t.f_node

let bytes_resident t =
  let word = Sys.word_size / 8 in
  let arr len = (len + 1) * word in
  let n = Array.length t.ids in
  (* each id is a separate immutable byte string: header word + payload
     padded to a whole word (OCaml's string block layout) *)
  let id_payload = (Id.bits t.space + 7) / 8 in
  let id_block = word + (((id_payload / word) + 1) * word) in
  arr n (* ids pointer array *) + (n * id_block) + arr n (* prefix column *)
  + arr n (* hosts *)
  + arr (n + 1) (* f_off *)
  + (word + ((Bytes.length t.f_exp / word) + 1) * word) (* f_exp *)
  + arr (Array.length t.f_node)
