(** Chord greedy routing with hop and latency accounting.

    This is the baseline algorithm of every experiment in the paper: from the
    originator, repeatedly forward to the closest preceding finger until the
    key falls between the current node and its successor, then hop to that
    successor — the key's owner. Every traversed overlay edge counts as one
    hop and contributes the host-to-host delay of the underlying topology. *)

type hop = { from_node : int; to_node : int; latency : float }

type result = {
  origin : int;
  key : Hashid.Id.t;
  destination : int;  (** the key's successor — where the lookup ends *)
  hops : hop list;  (** in travel order; empty when the origin owns the key *)
  hop_count : int;
  latency : float;  (** total one-way routing latency, ms *)
}

val route :
  ?trace:Obs.Trace.t -> Network.t -> Topology.Latency.t -> origin:int -> key:Hashid.Id.t -> result
(** Raises [Failure] only on internal invariant violation (non-termination
    guard); a well-formed network always terminates in [O(log n)] hops.

    [trace] (default {!Obs.Trace.disabled}) receives one start event, one hop
    event per traversed edge (all tagged layer 1 — Chord has no hierarchy)
    and one end event mirroring the returned accounting; when disabled the
    instrumentation costs one branch per hop and allocates nothing. *)

val route_hops_only : Network.t -> origin:int -> key:Hashid.Id.t -> int * int
(** [(hop_count, destination)] without latency bookkeeping — for pure
    hop-count experiments and property tests (no topology needed). *)
