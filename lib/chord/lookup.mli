(** Chord greedy routing with hop and latency accounting.

    This is the baseline algorithm of every experiment in the paper: from the
    originator, repeatedly forward to the closest preceding finger until the
    key falls between the current node and its successor, then hop to that
    successor — the key's owner. Every traversed overlay edge counts as one
    hop and contributes the host-to-host delay of the underlying topology. *)

type hop = { from_node : int; to_node : int; latency : float }

type result = {
  origin : int;
  key : Hashid.Id.t;
  destination : int;  (** the key's successor — where the lookup ends *)
  hops : hop list;  (** in travel order; empty when the origin owns the key *)
  hop_count : int;
  latency : float;  (** total one-way routing latency, ms *)
}

val route :
  ?trace:Obs.Trace.t -> Network.t -> Topology.Latency.t -> origin:int -> key:Hashid.Id.t -> result
(** Raises [Failure] only on internal invariant violation (non-termination
    guard); a well-formed network always terminates in [O(log n)] hops.

    [trace] (default {!Obs.Trace.disabled}) receives one start event, one hop
    event per traversed edge (all tagged layer 1 — Chord has no hierarchy)
    and one end event mirroring the returned accounting; when disabled the
    instrumentation costs one branch per hop and allocates nothing. *)

val route_hops_only : Network.t -> origin:int -> key:Hashid.Id.t -> int * int
(** [(hop_count, destination)] without latency bookkeeping — for pure
    hop-count experiments and property tests (no topology needed). *)

(** {2 Failure-aware routing}

    {!route_resilient} runs the same greedy walk against a liveness
    predicate: contacting a dead preferred next hop costs the full RPC
    timeout plus [max_retries] exponentially backed-off retries (each a
    [Retry] trace event) before the router falls back ([Fallback] event)
    to the next-best finger or the first live successor-list entry.
    Successor-list liveness is heartbeat-fresh, so dead list entries are
    skipped without probe cost (but still emit fallbacks). The walk stops
    at the first live node [s] clockwise from the current node with
    [key ∈ (cur, s]] — the {e live owner}, because the skipped nodes
    between are consecutive dead successors. *)

type policy = {
  rpc_timeout_ms : float;  (** charge for one timed-out contact attempt *)
  max_retries : int;  (** extra attempts after the first timeout *)
  backoff_base_ms : float;  (** wait before retry 1 *)
  backoff_mult : float;  (** exponential factor; waits cap at the timeout *)
  succ_window : int;
      (** how many dead ring successors a HIERAS lower-ring walk skips
          before declaring the ring locally partitioned and escaping a
          layer (unused by the flat Chord walk, which scans the whole
          successor list) *)
}

val default_policy : policy
(** 500 ms timeout, 2 retries, 50 ms base backoff doubling per attempt,
    successor window 8. *)

val attempt_delay : policy -> int -> float
(** [attempt_delay p k] is the latency charged for failed contact attempt
    [k] (0-based): attempt 0 costs the bare timeout; attempt [k >= 1]
    costs [min (backoff_base * mult^(k-1)) timeout + timeout]. *)

val live_owner : Network.t -> is_alive:(int -> bool) -> key:Hashid.Id.t -> int option
(** Oracle view of where a resilient lookup must end: the first live node
    clockwise from the key ([None] when every node is dead). Dead nodes'
    key ranges are absorbed by their first live successor — exactly the
    ground truth the resilience experiment scores routes against. *)

type attempt = {
  outcome : result option;
      (** [None] when routing stalled — no live finger and no live
          successor-list entry at some node. The result's [latency]
          {e includes} [penalty_ms]; its [hops] carry pure link
          latencies. *)
  retries : int;  (** timed-out contact attempts (= [Retry] events) *)
  timeouts : int;  (** distinct dead contacts probed to exhaustion *)
  fallbacks : int;  (** dead contacts abandoned for a secondary choice *)
  penalty_ms : float;  (** total timeout + backoff latency charged *)
}

val route_resilient :
  ?trace:Obs.Trace.t ->
  ?policy:policy ->
  Network.t ->
  Topology.Latency.t ->
  is_alive:(int -> bool) ->
  origin:int ->
  key:Hashid.Id.t ->
  attempt
(** The origin must be alive (raises [Invalid_argument] otherwise).
    When every node is alive the walk, the trace hop stream and the
    returned [result] are identical to {!route}'s. On a stalled lookup
    the trace [End] event reports the stall position as destination —
    spans always close, so traces stay auditable. Raises
    [Invalid_argument] on an ill-formed policy (non-positive timeout,
    negative retries/backoff, multiplier < 1, window < 1). *)
