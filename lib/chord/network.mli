(** Oracle-built Chord networks.

    [build] computes, directly from the sorted identifier array, exactly the
    state a correct, fully-stabilized Chord deployment converges to: sorted
    successor relationships, finger tables and successor lists. The
    message-level protocol in {!Protocol} is tested to converge to this same
    fixpoint; large-scale routing experiments start from it (building a
    10 000-node network through simulated joins would dominate runtime
    without changing any measured quantity — see DESIGN.md §5).

    Nodes are dense indices [0 .. size-1] ordered by identifier; node
    [(i+1) mod size] is node [i]'s ring successor. Each node carries the
    index of the topology end-host it runs on.

    The state is a packed struct-of-arrays (DESIGN.md §12): flat id/host
    arrays plus one shared finger arena with per-node offsets — no per-node
    records or tables on the lookup hot path, which is what lets a 10^6-node
    network fit comfortably in memory. Record-style accessors
    ({!finger_table}, {!successor_list}) remain as thin views. *)

type t

val build :
  space:Hashid.Id.space ->
  hosts:int array ->
  ?succ_list_len:int ->
  ?salt:string ->
  unit ->
  t
(** One peer per element of [hosts] (the topology host each peer runs on).
    Peer identifiers are [Id.of_hash space (salt ^ index)], regenerated with
    a different suffix on the (tiny-space) event of a collision.
    [succ_list_len] defaults to 8 (Chord's [r] parameter). *)

val of_ids :
  space:Hashid.Id.space ->
  ids:Hashid.Id.t array ->
  hosts:int array ->
  ?succ_list_len:int ->
  unit ->
  t
(** Explicit identifiers (worked examples, tests). Raises [Invalid_argument]
    on duplicates or misaligned arrays. *)

val space : t -> Hashid.Id.space
val size : t -> int
val id : t -> int -> Hashid.Id.t
val host : t -> int -> int
val successor : t -> int -> int
val predecessor : t -> int -> int
val successor_list : t -> int -> int array
(** A fresh array [\[|i+1; ..; i+r|\]] (mod size) — synthesized from the
    sorted order; the packed network stores no successor lists. *)

val succ_list_len : t -> int
(** [r = min succ_list_len (size - 1)] — the length {!successor_list}
    returns. *)

val succ_list_nth : t -> int -> int -> int
(** [succ_list_nth t i k = (successor_list t i).(k)] without the array —
    the resilient route's allocation-free accessor. *)

val finger_table : t -> int -> Finger_table.t
(** A thin view materialized from the node's finger-arena slice. Prefer
    {!closest_preceding_finger} / {!preceding_candidates} on hot paths. *)

val closest_preceding_finger : t -> int -> key:Hashid.Id.t -> int
(** [Finger_table.closest_preceding] read straight off the packed arena:
    the farthest finger of node [i] strictly inside [(id i, key)], or [-1]
    when no finger makes progress. *)

val closest_preceding_in_arena :
  t -> nodes:int array -> lo:int -> hi:int -> self:int -> key:Hashid.Id.t -> int
(** The same scan over an external segment-node arena slice whose entries
    index {e this} network's nodes — what the HIERAS layer arenas use. The
    circular-interval class is fixed once per call and membership tests
    resolve through the id-prefix column, so a probe is one integer load
    except on 56-bit prefix ties. *)

val preceding_candidates : t -> int -> key:Hashid.Id.t -> int list
(** [Finger_table.preceding_candidates] off the packed arena. *)

val find_node : t -> Hashid.Id.t -> int option
(** Node with exactly this identifier. *)

val successor_of_key : t -> Hashid.Id.t -> int
(** The node that owns a key: first node clockwise from it (inclusive). *)

val total_finger_segments : t -> int
(** Sum of distinct finger-table entries over all nodes (cost model) —
    O(1): the finger arena's length. *)

val bytes_resident : t -> int
(** Approximate heap footprint of the packed network (id strings, host
    array, finger arena, offsets) in bytes. *)
