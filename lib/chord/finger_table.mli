(** Chord finger tables, run-length deduplicated.

    Conceptually a node [n] keeps [bits] fingers, finger [i] being the
    successor of [n + 2^i]. Consecutive fingers usually coincide (the paper's
    Table 2 shows it: node 121's 8 fingers name only 5 distinct peers), so we
    store one {e segment} per distinct successor: [(exp, node)] meaning
    "fingers [exp] up to the next segment's exponent all point at [node]".
    HIERAS keeps one such table per layer; restricting the candidate member
    set to a lower-layer ring is just building the table over that ring's
    members. *)

type t

val build :
  Hashid.Id.space ->
  owner:int ->
  owner_id:Hashid.Id.t ->
  member_ids:Hashid.Id.t array ->
  member_nodes:int array ->
  t
(** [build sp ~owner ~owner_id ~member_ids ~member_nodes]: [member_ids] must
    be sorted ascending and aligned with [member_nodes] (global node
    indices); the owner must be among the members. Finger [i] is the first
    member clockwise from [owner_id + 2^i]. *)

val pack :
  Hashid.Id.space ->
  owner_id:Hashid.Id.t ->
  member_ids:Hashid.Id.t array ->
  ?member_pre:int array ->
  member_nodes:int array ->
  push:(int -> int -> unit) ->
  unit ->
  unit
(** Emit exactly the [(exp, node)] segments {!build} would store, in
    ascending exponent order, through [push] — the packed-network builders
    append them to a shared arena instead of allocating a [t] per node.
    Runs of equal fingers are crossed by galloping (exponent monotonicity),
    so cost is O(segments × log run) probes rather than [bits]; each probe
    is a single id comparison against the current successor position.
    [member_pre], when given, must be the aligned {!Hashid.Id.prefix_int}
    column of [member_ids]: comparisons then resolve by one integer load
    except on (astronomically rare) prefix ties. *)

val of_segments :
  owner:int -> bits:int -> exps:int array -> nodes:int array -> t
(** Reconstruct a table from stored segments (a packed network's thin view).
    [exps]/[nodes] must be a well-formed ascending segment list as produced
    by {!pack}; only basic shape is validated. *)

val owner : t -> int

val segments : t -> (int * int) array
(** [(exp, node)] segments in ascending exponent order. *)

val finger : t -> int -> int
(** [finger t i] resolves conceptual finger [i] (0-based). *)

val distinct_count : t -> int
(** Number of stored segments = distinct finger values — the table's real
    memory footprint (used by the cost model). *)

val closest_preceding :
  t -> id_of:(int -> Hashid.Id.t) -> self:Hashid.Id.t -> key:Hashid.Id.t -> int option
(** The farthest finger strictly inside [(self, key)] on the circle — the
    next hop of Chord's greedy routing. [None] when no finger makes
    progress. *)

val closest_preceding_arena :
  nodes:int array ->
  lo:int ->
  hi:int ->
  id_of:(int -> Hashid.Id.t) ->
  self:Hashid.Id.t ->
  key:Hashid.Id.t ->
  int
(** {!closest_preceding} over the [\[lo, hi)] slice of a packed segment-node
    arena; [-1] when no finger makes progress. The allocation-free form the
    lookup hot paths use. *)

val preceding_candidates_arena :
  nodes:int array ->
  lo:int ->
  hi:int ->
  id_of:(int -> Hashid.Id.t) ->
  self:Hashid.Id.t ->
  key:Hashid.Id.t ->
  int list
(** {!preceding_candidates} over an arena slice. *)

val preceding_candidates :
  t -> id_of:(int -> Hashid.Id.t) -> self:Hashid.Id.t -> key:Hashid.Id.t -> int list
(** Every distinct finger strictly inside [(self, key)], farthest first —
    the failover order of the resilient route: the head is what
    {!closest_preceding} returns, each subsequent entry makes strictly
    less (but still some) progress. [] iff [closest_preceding] is
    [None]. *)
