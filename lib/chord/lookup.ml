module Id = Hashid.Id

type hop = { from_node : int; to_node : int; latency : float }

type result = {
  origin : int;
  key : Hashid.Id.t;
  destination : int;
  hops : hop list;
  hop_count : int;
  latency : float;
}

(* Greedy walk shared by both entry points. [record] accumulates hops. *)
let walk net ~origin ~key ~record =
  let sp = Network.space net in
  let n = Network.size net in
  let id_of i = Network.id net i in
  (* the originator knows its predecessor: if it owns the key, 0 hops *)
  if Id.in_oc key ~lo:(id_of (Network.predecessor net origin)) ~hi:(id_of origin) then origin
  else begin
    let current = ref origin in
    let steps = ref 0 in
    let guard = 4 * (Id.bits sp + n) in
    let finished = ref false in
    while not !finished do
      incr steps;
      if !steps > guard then failwith "Chord.Lookup: routing did not terminate";
      let cur = !current in
      let succ = Network.successor net cur in
      if Id.in_oc key ~lo:(id_of cur) ~hi:(id_of succ) then begin
        (* the successor owns the key: final hop *)
        record cur succ;
        current := succ;
        finished := true
      end
      else begin
        let next =
          match
            Finger_table.closest_preceding (Network.finger_table net cur) ~id_of
              ~self:(id_of cur) ~key
          with
          | Some next when next <> cur -> next
          | _ -> succ
        in
        record cur next;
        current := next
      end
    done;
    !current
  end

let route ?(trace = Obs.Trace.disabled) net lat ~origin ~key =
  let traced = Obs.Trace.enabled trace in
  let lid =
    if traced then Obs.Trace.start trace ~algo:"chord" ~origin ~key:(Id.to_hex key) else 0
  in
  let hops = ref [] in
  let total = ref 0.0 in
  let count = ref 0 in
  let record from_node to_node =
    let l = Topology.Latency.host_latency lat (Network.host net from_node) (Network.host net to_node) in
    if traced then
      Obs.Trace.hop trace ~lookup:lid ~seq:!count ~layer:1 ~from_node ~to_node ~latency_ms:l;
    hops := { from_node; to_node; latency = l } :: !hops;
    total := !total +. l;
    incr count
  in
  let destination = walk net ~origin ~key ~record in
  if traced then
    Obs.Trace.finish trace ~lookup:lid ~destination ~hops:!count ~latency_ms:!total
      ~finished_at_layer:1;
  { origin; key; destination; hops = List.rev !hops; hop_count = !count; latency = !total }

let route_hops_only net ~origin ~key =
  let count = ref 0 in
  let record _ _ = incr count in
  let destination = walk net ~origin ~key ~record in
  (!count, destination)
